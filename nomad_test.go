package nomad

import (
	"bytes"
	"strings"
	"testing"
)

func fastConfig(s Scheme) Config {
	return Config{
		Scheme:             s,
		Cores:              2,
		WarmupInstructions: 40_000,
		ROIInstructions:    80_000,
	}
}

func TestWorkloadCatalogue(t *testing.T) {
	ws := Workloads()
	if len(ws) != 15 {
		t.Fatalf("workloads = %d, want 15", len(ws))
	}
	w, err := WorkloadByAbbr("cact")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "cactusADM" || w.Class() != "Excess" || w.Suite() != "SPEC2006" {
		t.Fatalf("cact metadata wrong: %s/%s/%s", w.Name(), w.Class(), w.Suite())
	}
	if w.FootprintBytes() == 0 {
		t.Fatal("zero footprint")
	}
	if _, err := WorkloadByAbbr("bogus"); err == nil {
		t.Fatal("bogus workload found")
	}
	total := 0
	for _, c := range WorkloadClasses() {
		total += len(WorkloadsByClass(c))
	}
	if total != 15 {
		t.Fatalf("classes cover %d", total)
	}
}

func TestRunPublicAPI(t *testing.T) {
	w, _ := WorkloadByAbbr("tc")
	res, err := Run(fastConfig(SchemeNOMAD), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Cycles == 0 {
		t.Fatalf("degenerate result: %v", res)
	}
	if res.Scheme != SchemeNOMAD || res.Workload != "tc" {
		t.Fatalf("identity fields wrong: %v", res)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
	if res.Breakdown(TrafficDemand) < 0 || res.Breakdown(BandwidthKind(99)) != 0 {
		t.Fatal("Breakdown misbehaved")
	}
}

func TestRunDeterminism(t *testing.T) {
	w, _ := WorkloadByAbbr("tc")
	a, err := Run(fastConfig(SchemeTDC), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastConfig(SchemeTDC), w)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.Instructions != b.Instructions || a.TagMisses != b.TagMisses {
		t.Fatalf("repeat runs diverged: %v vs %v", a, b)
	}
}

func TestInvalidScheme(t *testing.T) {
	w, _ := WorkloadByAbbr("tc")
	if _, err := Run(Config{Scheme: "Nope"}, w); err == nil {
		t.Fatal("invalid scheme accepted")
	}
}

func TestCustomWorkload(t *testing.T) {
	w := NewWorkload(CustomSpec{
		Name:           "mini",
		FootprintPages: 2048,
		RunBlocks:      32,
		SeqPageFrac:    0.8,
		GapMean:        10,
		WriteFrac:      0.2,
	})
	if w.Class() != "Custom" {
		t.Fatalf("class = %s", w.Class())
	}
	res, err := Run(fastConfig(SchemeIdeal), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMHBGBs <= 0 {
		t.Fatal("custom streaming workload reported zero RMHB")
	}
}

func TestConfigKnobsReachBackend(t *testing.T) {
	w, _ := WorkloadByAbbr("tc")
	cfg := fastConfig(SchemeNOMAD)
	cfg.PCSHRs = 1
	small, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PCSHRs = 32
	large, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// With one PCSHR, commands queue: tag management cannot be faster
	// than with 32.
	if small.AvgTagMgmtLatency < large.AvgTagMgmtLatency {
		t.Fatalf("PCSHR knob had no effect: 1 -> %.0f, 32 -> %.0f",
			small.AvgTagMgmtLatency, large.AvgTagMgmtLatency)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	w, _ := WorkloadByAbbr("cact")
	res, err := Run(fastConfig(SchemeNOMAD), w)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for k := TrafficDemand; k <= TrafficWalk; k++ {
		sum += res.Breakdown(k)
	}
	if diff := sum - res.HBMBandwidthGBs; diff > 0.01 || diff < -0.01 {
		t.Fatalf("breakdown sums to %.3f, total %.3f", sum, res.HBMBandwidthGBs)
	}
}

func TestStallRatiosBounded(t *testing.T) {
	w, _ := WorkloadByAbbr("cact")
	for _, s := range Schemes() {
		res, err := Run(fastConfig(s), w)
		if err != nil {
			t.Fatal(err)
		}
		if res.OSStallRatio < 0 || res.OSStallRatio > 1 ||
			res.MemStallRatio < 0 || res.MemStallRatio > 1 {
			t.Fatalf("%s: stall ratios out of range: %v", s, res)
		}
		if res.HBMRowHitRate < 0 || res.HBMRowHitRate > 1 ||
			res.BufferHitRate < 0 || res.BufferHitRate > 1 {
			t.Fatalf("%s: rates out of range: %v", s, res)
		}
		if res.Seconds <= 0 || res.IPC <= 0 {
			t.Fatalf("%s: degenerate timing: %v", s, res)
		}
	}
}

func TestSelectiveCachingKnob(t *testing.T) {
	w, _ := WorkloadByAbbr("bfs")
	cfg := fastConfig(SchemeNOMAD)
	always, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CacheTouchThreshold = 2
	second, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if second.RMHBGBs >= always.RMHBGBs {
		t.Fatalf("second-touch filter did not cut fill bandwidth: %.2f vs %.2f",
			second.RMHBGBs, always.RMHBGBs)
	}
}

func TestSchemesList(t *testing.T) {
	if len(Schemes()) != 5 {
		t.Fatalf("schemes = %v", Schemes())
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 15 {
		t.Fatalf("experiments = %d, want 15", len(exps))
	}
	var buf bytes.Buffer
	if err := RunExperiment("no-such", ExperimentOptions{}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, e := range exps {
		if e.Title == "" {
			t.Fatalf("%s has no title", e.ID)
		}
		id := strings.ToLower(e.ID)
		if !strings.Contains(id, "table") && !strings.Contains(id, "fig") &&
			id != "ablations" && id != "replacement" && id != "selective" &&
			id != "cpistack" && id != "timeline" {
			t.Fatalf("unexpected experiment id %q", e.ID)
		}
	}
}
