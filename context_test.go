package nomad

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRunContextCancellation(t *testing.T) {
	// A cancelled simulation must return promptly (the engine checks ctx
	// every sampling window — microseconds of wall time), with a typed
	// *Error wrapping context.Canceled and no partial Result.
	w, _ := WorkloadByAbbr("tc")
	cfg := Config{
		Scheme:             SchemeNOMAD,
		Cores:              2,
		WarmupInstructions: 1,
		ROIInstructions:    500_000_000, // far beyond what could finish
	}
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunContext(ctx, cfg, w)
		done <- outcome{res, err}
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	cancelled := time.Now()
	select {
	case o := <-done:
		if elapsed := time.Since(cancelled); elapsed > 2*time.Second {
			t.Errorf("cancellation took %v, want well under a second", elapsed)
		}
		if o.res != nil {
			t.Error("cancelled run returned a partial Result")
		}
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", o.err)
		}
		var e *Error
		if !errors.As(o.err, &e) {
			t.Fatalf("err = %T, want *nomad.Error", o.err)
		}
		if e.Op != "run" || e.Scheme != SchemeNOMAD || e.Workload != "tc" {
			t.Fatalf("error identity wrong: %+v", e)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	w, _ := WorkloadByAbbr("tc")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, fastConfig(SchemeBaseline), w); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestErrorTypeOnBadConfig(t *testing.T) {
	w, _ := WorkloadByAbbr("tc")
	_, err := Run(Config{Scheme: "Nope"}, w)
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("err = %T, want *nomad.Error", err)
	}
	if e.Op != "validate" || e.Workload != "tc" {
		t.Fatalf("error identity wrong: %+v", e)
	}
	if e.Unwrap() == nil {
		t.Fatal("no wrapped cause")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	w, _ := WorkloadByAbbr("tc")
	res, err := Run(fastConfig(SchemeNOMAD), w)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Metrics()
	if snap == nil {
		t.Fatal("no metrics snapshot")
	}
	if snap.Cycles != res.Cycles {
		t.Fatalf("snapshot cycles %d != result cycles %d", snap.Cycles, res.Cycles)
	}
	// The stable names the docs promise, one per subsystem.
	for _, name := range []string{
		"core.0.instructions", "core.1.cycles",
		"cache.l1.0.hits", "cache.l2.1.misses", "cache.llc.misses",
		"hbm.reads", "ddr.bytes.fill",
		"scheme.reads", "frontend.tag_misses", "backend.fills",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q missing", name)
		}
	}
	var insns uint64
	for i := 0; i < 2; i++ {
		insns += snap.Counter(fmt.Sprintf("core.%d.instructions", i))
	}
	if insns != res.Instructions {
		t.Fatalf("per-core instructions sum %d != %d", insns, res.Instructions)
	}
	if h, ok := snap.Histograms["frontend.tag_mgmt_latency"]; !ok || h.Count == 0 {
		t.Fatal("tag management latency histogram missing or empty")
	} else if h.Mean() <= 0 || h.Min > h.Max {
		t.Fatalf("degenerate histogram: %+v", h)
	}
	if s, ok := snap.Series["sim.ipc"]; !ok || len(s.Values) == 0 || len(s.Cycles) != len(s.Values) {
		t.Fatal("sim.ipc series missing or malformed")
	}
}

func TestMetricsJSONByteIdentical(t *testing.T) {
	// The acceptance bar for machine-readable output: two same-seed runs
	// must marshal byte-identical metrics JSON.
	w, _ := WorkloadByAbbr("cact")
	cfg := fastConfig(SchemeNOMAD)
	a, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same-seed metrics JSON differs (%d vs %d bytes)", len(ja), len(jb))
	}
	if len(ja) < 1024 {
		t.Fatalf("suspiciously small snapshot: %d bytes", len(ja))
	}
}

func TestRunExperimentResultStructured(t *testing.T) {
	res, err := RunExperimentResult(context.Background(), "replacement", ExperimentOptions{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "replacement" || res.Title == "" {
		t.Fatalf("identity wrong: %+v", res)
	}
	var tables int
	for _, sec := range res.Sections {
		if sec.Table != nil {
			tables++
			if len(sec.Table.Header) == 0 || len(sec.Table.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range sec.Table.Rows {
				if len(row) != len(sec.Table.Header) {
					t.Fatalf("ragged row: %v vs header %v", row, sec.Table.Header)
				}
			}
		}
	}
	if tables == 0 {
		t.Fatal("no tables in report")
	}
	var text bytes.Buffer
	if err := res.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if text.Len() == 0 {
		t.Fatal("empty text rendering")
	}
}

func TestRunExperimentResultCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperimentResult(ctx, "fig9", ExperimentOptions{Fast: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
