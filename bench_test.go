// Benchmarks that regenerate the paper's tables and figures (one per
// artifact, DESIGN.md's per-experiment index). They run the experiment
// harness in fast mode, so `go test -bench=.` reproduces every artifact's
// rows at reduced precision; use cmd/experiments for full-precision output.
package nomad

import (
	"bytes"
	"strings"
	"testing"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := RunExperiment(id, ExperimentOptions{Fast: true}, &buf); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			b.Logf("\n%s", buf.String())
		}
		if !strings.Contains(buf.String(), "---") {
			b.Fatalf("%s produced no table", id)
		}
	}
}

// BenchmarkTable1 regenerates Table I (workload characteristics).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2 regenerates Fig. 2 (TDC/TiD crossover vs RMHB).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig9 regenerates Fig. 9 (IPC and DC access time, all schemes).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10 (on-package bandwidth breakdown).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11 (stall ratios and tag latency).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12 (per-class IPC vs PCSHR count).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13 (PCSHRs vs core count).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Fig. 14 (PCSHR contention: cact vs libq).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Fig. 15 (area-optimized n PCSHRs / m buffers).
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16 regenerates Fig. 16 (centralized vs distributed back-ends).
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkAblations regenerates the ablation studies (verification
// latency, critical-data-first, tag-handler cost).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// BenchmarkReplacement regenerates the replacement-policy study
// (§III-C.2's FIFO-FA vs SA-LRU miss claim).
func BenchmarkReplacement(b *testing.B) { benchExperiment(b, "replacement") }

// BenchmarkSelective regenerates the selective-caching study.
func BenchmarkSelective(b *testing.B) { benchExperiment(b, "selective") }

// BenchmarkCPIStack regenerates the CPI-stack stall attribution table
// (Fig. 11 style: where every core-cycle went, per scheme).
func BenchmarkCPIStack(b *testing.B) { benchExperiment(b, "cpistack") }

// BenchmarkTimelineExperiment regenerates the interval-telemetry burst
// trace (libquantum under TDC vs NOMAD).
func BenchmarkTimelineExperiment(b *testing.B) { benchExperiment(b, "timeline") }

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// cycles per wall second) on the default NOMAD configuration — the number
// that bounds how fast every artifact regenerates.
func BenchmarkSimulatorThroughput(b *testing.B) {
	benchThroughput(b, Config{
		Scheme:             SchemeNOMAD,
		WarmupInstructions: 1,
		ROIInstructions:    200_000,
	})
}

// BenchmarkSimulatorThroughputTimeline is BenchmarkSimulatorThroughput with
// interval telemetry enabled at the default 100k-cycle window. Comparing the
// two cycles/s numbers demonstrates the timeline capture's overhead (the
// design target is under 5%; cmd/bench records the same measurement in its
// timeline_overhead section).
func BenchmarkSimulatorThroughputTimeline(b *testing.B) {
	benchThroughput(b, Config{
		Scheme:             SchemeNOMAD,
		WarmupInstructions: 1,
		ROIInstructions:    200_000,
		Timeline:           true,
	})
}

func benchThroughput(b *testing.B, cfg Config) {
	b.Helper()
	w, err := WorkloadByAbbr("cact")
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}
