package nomad

import (
	"fmt"

	"nomad/internal/mem"
	"nomad/internal/system"
)

// BandwidthKind categorizes DRAM traffic in bandwidth breakdowns (Fig. 10).
type BandwidthKind int

// Traffic categories.
const (
	TrafficDemand BandwidthKind = iota
	TrafficMetadata
	TrafficFill
	TrafficWriteback
	TrafficWalk
	numTraffic
)

func (k BandwidthKind) String() string { return mem.Kind(k).String() }

// The public traffic enum must track the internal one; this fails to compile
// if the internal categories change without this file following.
var _ [numTraffic]struct{} = [mem.NumKinds]struct{}{}

// Result holds the measurements of one simulation's region of interest.
// Rates use the 3.2 GHz clock.
type Result struct {
	Scheme   Scheme
	Workload string
	Cores    int

	// Cycles and Seconds are the length of the measured region.
	Cycles  uint64
	Seconds float64
	// Instructions retired across all cores during the region.
	Instructions uint64
	// IPC is system throughput (instructions per cycle, all cores).
	IPC float64

	// OSStallRatio is the average fraction of cycles threads spent
	// suspended by OS routines — the paper's "application stall cycles".
	OSStallRatio float64
	// MemStallRatio is the fraction of cycles retirement was blocked by
	// an incomplete load at the ROB head.
	MemStallRatio float64

	// AvgDCAccessTime is the mean post-LLC read latency at the DRAM
	// cache controller, in cycles (Fig. 9, bottom).
	AvgDCAccessTime float64

	// LLCMisses and LLCMPMS (misses per microsecond) characterize
	// memory intensity (Table I).
	LLCMisses uint64
	LLCMPMS   float64

	// RMHBGBs is the miss-handling bandwidth: for Ideal, the fills that
	// would have been required (Table I's RMHB); otherwise the fill
	// traffic actually read from off-package memory.
	RMHBGBs float64

	// HBMBandwidthGBs / OffPkgBandwidthGBs are total consumed bandwidths;
	// HBMBreakdownGBs splits on-package traffic by category (Fig. 10).
	HBMBandwidthGBs    float64
	OffPkgBandwidthGBs float64
	HBMBreakdownGBs    [numTraffic]float64
	HBMRowHitRate      float64
	HBMUtilization     float64
	DDRUtilization     float64

	// Tag management (OS-managed schemes, Figs. 11/14/15/16).
	TagMisses         uint64
	AvgTagMgmtLatency float64
	MaxTagMgmtLatency uint64

	// NOMAD back-end behaviour (§IV-B.5).
	DataHits          uint64
	DataMisses        uint64
	BufferHitRate     float64
	SubEntryOverflows uint64

	Evictions      uint64
	DirtyEvictions uint64

	metrics *Snapshot
}

// Metrics returns the full ROI metrics snapshot the scalar fields above are
// derived from: every counter, gauge, histogram and time series under its
// stable dotted name (see DESIGN.md for the naming scheme).
func (r *Result) Metrics() *Snapshot { return r.metrics }

// Breakdown returns the on-package bandwidth of one traffic category.
func (r *Result) Breakdown(k BandwidthKind) float64 {
	if k < 0 || k >= numTraffic {
		return 0
	}
	return r.HBMBreakdownGBs[k]
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f dcAccess=%.1fcyc osStall=%.1f%% tagLat=%.0fcyc hbm=%.1fGB/s offpkg=%.1fGB/s",
		r.Scheme, r.Workload, r.IPC, r.AvgDCAccessTime, 100*r.OSStallRatio,
		r.AvgTagMgmtLatency, r.HBMBandwidthGBs, r.OffPkgBandwidthGBs)
}

func fromInternal(r *system.Result) *Result {
	out := &Result{
		Scheme:             Scheme(r.Scheme),
		Workload:           r.Workload,
		Cores:              r.Cores,
		Cycles:             r.Cycles,
		Seconds:            r.Seconds,
		Instructions:       r.Instructions,
		IPC:                r.IPC,
		OSStallRatio:       r.OSStallRatio,
		MemStallRatio:      r.MemStallRatio,
		AvgDCAccessTime:    r.AvgDCAccessTime,
		LLCMisses:          r.LLCMisses,
		LLCMPMS:            r.LLCMPMS,
		RMHBGBs:            r.RMHBGBs,
		HBMBandwidthGBs:    r.HBMGBs,
		OffPkgBandwidthGBs: r.OffPkgGBs,
		HBMRowHitRate:      r.HBMRowHitRate,
		HBMUtilization:     r.HBMUtilization,
		DDRUtilization:     r.DDRUtilization,
		TagMisses:          r.TagMisses,
		AvgTagMgmtLatency:  r.AvgTagMgmtLatency,
		MaxTagMgmtLatency:  r.MaxTagMgmtLatency,
		DataHits:           r.DataHits,
		DataMisses:         r.DataMisses,
		BufferHitRate:      r.BufferHitRate,
		SubEntryOverflows:  r.SubEntryOverflows,
		Evictions:          r.Evictions,
		DirtyEvictions:     r.DirtyEvictions,
		metrics:            fromSnapshot(r.Metrics),
	}
	if r.Seconds > 0 {
		for k := 0; k < mem.NumKinds; k++ {
			out.HBMBreakdownGBs[k] = float64(r.HBMBytesByKind[k]) / r.Seconds / 1e9
		}
	}
	return out
}
