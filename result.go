package nomad

import (
	"fmt"
	"io"

	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/obs"
	"nomad/internal/system"
)

// BandwidthKind categorizes DRAM traffic in bandwidth breakdowns (Fig. 10).
type BandwidthKind int

// Traffic categories.
const (
	TrafficDemand BandwidthKind = iota
	TrafficMetadata
	TrafficFill
	TrafficWriteback
	TrafficWalk
	numTraffic
)

func (k BandwidthKind) String() string { return mem.Kind(k).String() }

// The public traffic enum must track the internal one; this fails to compile
// if the internal categories change without this file following.
var _ [numTraffic]struct{} = [mem.NumKinds]struct{}{}

// Result holds the measurements of one simulation's region of interest.
// Rates use the 3.2 GHz clock.
type Result struct {
	Scheme   Scheme
	Workload string
	Cores    int

	// Cycles and Seconds are the length of the measured region.
	Cycles  uint64
	Seconds float64
	// Instructions retired across all cores during the region.
	Instructions uint64
	// IPC is system throughput (instructions per cycle, all cores).
	IPC float64

	// OSStallRatio is the average fraction of cycles threads spent
	// suspended by OS routines — the paper's "application stall cycles".
	OSStallRatio float64
	// MemStallRatio is the fraction of cycles retirement was blocked by
	// an incomplete load at the ROB head.
	MemStallRatio float64

	// AvgDCAccessTime is the mean post-LLC read latency at the DRAM
	// cache controller, in cycles (Fig. 9, bottom).
	AvgDCAccessTime float64

	// LLCMisses and LLCMPMS (misses per microsecond) characterize
	// memory intensity (Table I).
	LLCMisses uint64
	LLCMPMS   float64

	// RMHBGBs is the miss-handling bandwidth: for Ideal, the fills that
	// would have been required (Table I's RMHB); otherwise the fill
	// traffic actually read from off-package memory.
	RMHBGBs float64

	// HBMBandwidthGBs / OffPkgBandwidthGBs are total consumed bandwidths;
	// HBMBreakdownGBs splits on-package traffic by category (Fig. 10).
	HBMBandwidthGBs    float64
	OffPkgBandwidthGBs float64
	HBMBreakdownGBs    [numTraffic]float64
	HBMRowHitRate      float64
	HBMUtilization     float64
	DDRUtilization     float64

	// Tag management (OS-managed schemes, Figs. 11/14/15/16).
	TagMisses         uint64
	AvgTagMgmtLatency float64
	MaxTagMgmtLatency uint64

	// NOMAD back-end behaviour (§IV-B.5).
	DataHits          uint64
	DataMisses        uint64
	BufferHitRate     float64
	SubEntryOverflows uint64

	Evictions      uint64
	DirtyEvictions uint64

	// CPIStack attributes every ROI core-cycle to a named bucket
	// (Fig. 11); the buckets sum exactly to Cycles × Cores.
	CPIStack CPIStack

	metrics  *Snapshot
	trace    *metrics.TraceDump
	host     *HostProfile
	manifest *Manifest
}

// Manifest is a run's content address: the SHA-256 of the resolved
// configuration, workload definition, and module build stamp, as
// "sha256:<hex>". Because same-seed runs are byte-identical, two runs with
// the same address have the same Snapshot — the address is a sound cache
// key for results. It is host-side metadata: never part of the Snapshot,
// which marshals identically with manifests on or off.
type Manifest struct {
	// Address is "sha256:<hex>" over the canonical config/workload/build
	// document.
	Address  string `json:"address"`
	Scheme   Scheme `json:"scheme"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	// Module/Version/Revision/VCSTime/Modified stamp the code version the
	// address is relative to (runtime/debug.ReadBuildInfo). Revision is
	// empty for builds outside a VCS checkout.
	Module   string `json:"module,omitempty"`
	Version  string `json:"version,omitempty"`
	Revision string `json:"vcs_revision,omitempty"`
	VCSTime  string `json:"vcs_time,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
	// GoVersion is informational and excluded from the address.
	GoVersion string `json:"go_version,omitempty"`
}

func fromObsManifest(m *obs.Manifest) *Manifest {
	if m == nil {
		return nil
	}
	return &Manifest{
		Address:   m.Address,
		Scheme:    Scheme(m.Scheme),
		Workload:  m.Workload,
		Seed:      m.Seed,
		Module:    m.Build.Module,
		Version:   m.Build.Version,
		Revision:  m.Build.Revision,
		VCSTime:   m.Build.Time,
		Modified:  m.Build.Modified,
		GoVersion: m.Build.GoVersion,
	}
}

// Manifest returns the run's content-addressed identity, or nil for Results
// not produced by Run/RunContext/RunExperimentResult.
func (r *Result) Manifest() *Manifest { return r.manifest }

// HostProfile reports the simulator's own host-side performance during one
// run (Config.SelfProfile): wall-clock time, simulated-cycles/sec, engine
// events/sec, peak heap-in-use, and GC pauses over the profiled span.
// Host readings are inherently non-deterministic (they derive from the wall
// clock and the Go runtime) and are never part of the metrics Snapshot.
type HostProfile struct {
	WallSeconds     float64 `json:"wall_seconds"`
	SimCycles       uint64  `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	EventsExecuted  uint64  `json:"events_executed"`
	EventsPerSec    float64 `json:"events_per_sec"`
	// PeakHeapInUseBytes is the largest heap-in-use seen at any sample.
	PeakHeapInUseBytes uint64 `json:"peak_heap_in_use_bytes"`
	// GCPauses / GCPauseTotalNs cover the profiled span only.
	GCPauses       uint32 `json:"gc_pauses"`
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	// SkippedCycles / Jumps report the engine's idle-cycle fast-forward
	// effectiveness (sim.skipped_cycles / sim.jumps): cycles bulk-advanced
	// across quiescent spans, and the jumps that advanced them.
	// SkippedCycles/SimCycles is the run's skip ratio; both read 0 with
	// Config.NoFastForward set. They are host-report fields (not snapshot
	// metrics) because they differ between fast-forward on and off while
	// snapshots stay byte-identical.
	SkippedCycles uint64 `json:"skipped_cycles"`
	Jumps         uint64 `json:"jumps"`
	// Samples is the periodic capture (at most one per 100 ms; empty for
	// very short runs). Keyed by cumulative wall seconds.
	Samples []HostSample `json:"samples,omitempty"`
}

// HostSample is one point of the self-profiling capture.
type HostSample struct {
	WallSeconds    float64 `json:"wall_seconds"`
	SimCycles      uint64  `json:"sim_cycles"`
	Events         uint64  `json:"events"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	HeapInUseBytes uint64  `json:"heap_in_use_bytes"`
	GCPauseTotalNs uint64  `json:"gc_pause_total_ns"`
	NumGC          uint32  `json:"num_gc"`
}

// CPIStack is the Fig. 11-style stall attribution, summed over cores. The
// buckets partition every measured core-cycle: Total() == Cycles × Cores.
type CPIStack struct {
	// Compute is cycles not attributable to the memory system or the OS.
	Compute uint64
	// TagMiss is cycles threads were suspended inside OS tag-management
	// routines — near zero under NOMAD, dominant under blocking schemes.
	TagMiss uint64
	// Frontend is instruction-supply stall cycles.
	Frontend uint64
	// Mem splits load-retirement stalls by the blocking load's location,
	// keyed by cause name: "sram", "tlb", "mshr", "pcshr", "dram_queue",
	// "row_conflict", "bus", "dram_service".
	Mem map[string]uint64
}

// Total returns the core-cycles the stack accounts for.
func (s CPIStack) Total() uint64 {
	t := s.Compute + s.TagMiss + s.Frontend
	for _, v := range s.Mem {
		t += v
	}
	return t
}

// HasTrace reports whether the run captured events or spans (Config
// TraceDepth/SpanDepth) for WriteTrace.
func (r *Result) HasTrace() bool { return r.trace != nil }

// WriteTrace renders the run's event/span capture as Perfetto/Chrome
// trace-event JSON, loadable at https://ui.perfetto.dev. The output is
// byte-identical across same-seed runs. It fails unless the run was
// configured with Config.TraceDepth or Config.SpanDepth.
func (r *Result) WriteTrace(w io.Writer) error {
	if r.trace == nil {
		return fmt.Errorf("nomad: no trace captured; set Config.TraceDepth or Config.SpanDepth")
	}
	run := metrics.PerfettoRun{Name: string(r.Scheme) + "/" + r.Workload, Dump: r.trace}
	return metrics.WritePerfetto(w, run)
}

// Metrics returns the full ROI metrics snapshot the scalar fields above are
// derived from: every counter, gauge, histogram and time series under its
// stable dotted name (see DESIGN.md for the naming scheme).
func (r *Result) Metrics() *Snapshot { return r.metrics }

// Timeline returns the interval time-series capture of the measured region,
// or nil unless the run was configured with Config.Timeline.
func (r *Result) Timeline() *Timeline {
	if r.metrics == nil {
		return nil
	}
	return r.metrics.Timeline
}

// Digests returns the interval digest-chain capture of the measured region,
// or nil unless the run was configured with Telemetry.Digests.
func (r *Result) Digests() *DigestChain {
	if r.metrics == nil {
		return nil
	}
	return r.metrics.Digests
}

// Host returns the simulator's own host-side performance profile, or nil
// unless the run was configured with Config.SelfProfile.
func (r *Result) Host() *HostProfile { return r.host }

// Breakdown returns the on-package bandwidth of one traffic category.
func (r *Result) Breakdown(k BandwidthKind) float64 {
	if k < 0 || k >= numTraffic {
		return 0
	}
	return r.HBMBreakdownGBs[k]
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f dcAccess=%.1fcyc osStall=%.1f%% tagLat=%.0fcyc hbm=%.1fGB/s offpkg=%.1fGB/s",
		r.Scheme, r.Workload, r.IPC, r.AvgDCAccessTime, 100*r.OSStallRatio,
		r.AvgTagMgmtLatency, r.HBMBandwidthGBs, r.OffPkgBandwidthGBs)
}

func fromInternal(r *system.Result) *Result {
	out := &Result{
		Scheme:             Scheme(r.Scheme),
		Workload:           r.Workload,
		Cores:              r.Cores,
		Cycles:             r.Cycles,
		Seconds:            r.Seconds,
		Instructions:       r.Instructions,
		IPC:                r.IPC,
		OSStallRatio:       r.OSStallRatio,
		MemStallRatio:      r.MemStallRatio,
		AvgDCAccessTime:    r.AvgDCAccessTime,
		LLCMisses:          r.LLCMisses,
		LLCMPMS:            r.LLCMPMS,
		RMHBGBs:            r.RMHBGBs,
		HBMBandwidthGBs:    r.HBMGBs,
		OffPkgBandwidthGBs: r.OffPkgGBs,
		HBMRowHitRate:      r.HBMRowHitRate,
		HBMUtilization:     r.HBMUtilization,
		DDRUtilization:     r.DDRUtilization,
		TagMisses:          r.TagMisses,
		AvgTagMgmtLatency:  r.AvgTagMgmtLatency,
		MaxTagMgmtLatency:  r.MaxTagMgmtLatency,
		DataHits:           r.DataHits,
		DataMisses:         r.DataMisses,
		BufferHitRate:      r.BufferHitRate,
		SubEntryOverflows:  r.SubEntryOverflows,
		Evictions:          r.Evictions,
		DirtyEvictions:     r.DirtyEvictions,
		metrics:            fromSnapshot(r.Metrics),
		trace:              r.Trace,
		host:               fromHostReport(r.Host),
	}
	out.CPIStack = CPIStack{
		Compute:  r.CPIStack.Compute,
		TagMiss:  r.CPIStack.TagMiss,
		Frontend: r.CPIStack.Frontend,
		Mem:      make(map[string]uint64, mem.NumStallCauses),
	}
	for c := mem.StallCause(0); c < mem.NumStallCauses; c++ {
		out.CPIStack.Mem[c.String()] = r.CPIStack.Mem[c]
	}
	if r.Seconds > 0 {
		for k := 0; k < mem.NumKinds; k++ {
			out.HBMBreakdownGBs[k] = float64(r.HBMBytesByKind[k]) / r.Seconds / 1e9
		}
	}
	return out
}

func fromHostReport(h *metrics.HostReport) *HostProfile {
	if h == nil {
		return nil
	}
	out := &HostProfile{
		WallSeconds:        h.WallSeconds,
		SimCycles:          h.SimCycles,
		SimCyclesPerSec:    h.SimCyclesPerSec,
		EventsExecuted:     h.EventsExecuted,
		EventsPerSec:       h.EventsPerSec,
		PeakHeapInUseBytes: h.PeakHeapInUseBytes,
		GCPauses:           h.GCPauses,
		GCPauseTotalNs:     h.GCPauseTotalNs,
		SkippedCycles:      h.SkippedCycles,
		Jumps:              h.Jumps,
	}
	if len(h.Samples) > 0 {
		out.Samples = make([]HostSample, len(h.Samples))
		for i, s := range h.Samples {
			out.Samples[i] = HostSample(s)
		}
	}
	return out
}
