package nomad

import (
	"sort"

	"nomad/internal/metrics"
)

// Snapshot is the full region-of-interest metrics snapshot of one run: every
// counter, gauge, histogram and time series the simulator maintains, keyed by
// stable dotted names (documented in DESIGN.md). The scalar Result fields are
// derived views over it.
//
// Counter values are ROI deltas; gauges are instantaneous at ROI end;
// histogram count/sum/buckets are ROI deltas while min/max span the whole
// run; series are sampled every Window cycles during the ROI.
//
// The JSON encoding is deterministic: map keys marshal sorted, and every
// value derives from simulated state, never the wall clock — two same-seed
// runs marshal byte-identically.
type Snapshot struct {
	// Cycles is the span covered by the snapshot (the measured ROI).
	Cycles uint64 `json:"cycles"`
	// Window is the series sampling period in cycles.
	Window     uint64               `json:"window,omitempty"`
	Counters   map[string]uint64    `json:"counters"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]Histogram `json:"histograms,omitempty"`
	Series     map[string]Series    `json:"series,omitempty"`
	// Trace summarises the event/span capture; nil unless tracing was
	// enabled (Config.TraceDepth / Config.SpanDepth).
	Trace *TraceSummary `json:"trace,omitempty"`
	// Timeline is the interval time-series capture; nil unless
	// Config.Timeline was set.
	Timeline *Timeline `json:"timeline,omitempty"`
	// Digests is the interval digest chain; nil unless Telemetry.Digests
	// was set.
	Digests *DigestChain `json:"digests,omitempty"`
}

// TraceSummary counts what the trace rings captured during the ROI. Dropped
// values are ring overwrites: raise the depth (or the span sampling period)
// if they matter for the analysis.
type TraceSummary struct {
	Events        uint64 `json:"events"`
	EventsDropped uint64 `json:"events_dropped"`
	Spans         uint64 `json:"spans"`
	SpansDropped  uint64 `json:"spans_dropped"`
}

// Counter returns a counter by name, 0 if absent (schemes register only the
// metrics they have, so absence reads as zero).
func (s *Snapshot) Counter(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// Gauge returns a gauge by name, 0 if absent.
func (s *Snapshot) Gauge(name string) float64 {
	if s == nil {
		return 0
	}
	return s.Gauges[name]
}

// Histogram is one latency/occupancy distribution in log2 buckets.
type Histogram struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
	// Buckets lists only non-empty log2 buckets in ascending order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the mean observation.
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// HistogramBucket holds Count observations in the inclusive range [Lo, Hi].
type HistogramBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Series is one time series: Values[i] was sampled at cycle Cycles[i].
type Series struct {
	Window uint64    `json:"window"`
	Cycles []uint64  `json:"cycles"`
	Values []float64 `json:"values"`
}

// Timeline is the interval time-series capture of one run (Config.Timeline):
// one column per metric, one row per interval window of the measured region.
// Cycles[i] is the END of window i relative to StartCycle (the ROI boundary),
// so the first full window ends at exactly Interval cycles; a final partial
// window ends wherever the run did. Like the rest of the snapshot, the
// capture is deterministic — two same-seed runs marshal byte-identically.
type Timeline struct {
	// Interval is the window length in cycles.
	Interval uint64 `json:"interval"`
	// StartCycle is the absolute engine cycle the timeline is anchored at
	// (the MarkROI cycle).
	StartCycle uint64 `json:"start_cycle"`
	// Cycles holds window-end cycles relative to StartCycle.
	Cycles []uint64 `json:"cycles"`
	// Metrics maps each timeline metric name to its per-window column,
	// index-aligned with Cycles.
	Metrics map[string][]float64 `json:"metrics"`
}

// Windows returns the number of collected interval rows.
func (t *Timeline) Windows() int {
	if t == nil {
		return 0
	}
	return len(t.Cycles)
}

// Metric returns one column by name, nil if absent.
func (t *Timeline) Metric(name string) []float64 {
	if t == nil {
		return nil
	}
	return t.Metrics[name]
}

// MetricNames returns the collected column names, sorted.
func (t *Timeline) MetricNames() []string {
	if t == nil {
		return nil
	}
	names := make([]string, 0, len(t.Metrics))
	for name := range t.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DigestChain is the interval digest-chain capture of one run
// (Telemetry.Digests): Digests[i] is a chained FNV-1a 64 digest (16 hex
// digits) of the full metrics registry at the end of interval window i,
// folding in Digests[i-1], so a behavioral divergence in any window
// perturbs every later digest. Cycles[i] is that window's end relative to
// StartCycle (the ROI boundary). Same-seed runs produce byte-identical
// chains across engines and fast-forward modes; the first differing window
// between two runs localizes their divergence (see cmd/nomaddiff).
type DigestChain struct {
	// Algo names the chain construction ("fnv64a-chain/1").
	Algo string `json:"algo"`
	// Interval is the window length in cycles.
	Interval uint64 `json:"interval"`
	// StartCycle is the absolute engine cycle the chain is anchored at.
	StartCycle uint64 `json:"start_cycle"`
	// Cycles holds window-end cycles relative to StartCycle.
	Cycles []uint64 `json:"cycles"`
	// Digests holds one 16-hex-digit chained digest per window.
	Digests []string `json:"digests"`
}

// Windows returns the number of collected windows.
func (d *DigestChain) Windows() int {
	if d == nil {
		return 0
	}
	return len(d.Digests)
}

// Final returns the last digest in the chain ("" when empty): a one-value
// answer to "did these runs behave identically end to end?".
func (d *DigestChain) Final() string {
	if d == nil || len(d.Digests) == 0 {
		return ""
	}
	return d.Digests[len(d.Digests)-1]
}

// FirstDivergence returns the index of the first window where the two
// chains disagree — different digest or different end cycle — or the
// shorter length when one chain is a strict prefix of the other, or -1 when
// they are identical. A nil chain is treated as empty.
func (d *DigestChain) FirstDivergence(o *DigestChain) int {
	return d.internal().FirstDivergence(o.internal())
}

func (d *DigestChain) internal() *metrics.DigestChain {
	if d == nil {
		return nil
	}
	return &metrics.DigestChain{
		Algo: d.Algo, Interval: d.Interval, StartCycle: d.StartCycle,
		Cycles: d.Cycles, Digests: d.Digests,
	}
}

func fromSnapshot(s *metrics.Snapshot) *Snapshot {
	if s == nil {
		return nil
	}
	out := &Snapshot{
		Cycles:   s.Cycles,
		Window:   s.Window,
		Counters: s.Counters,
		Gauges:   s.Gauges,
	}
	if s.Trace != nil {
		t := TraceSummary(*s.Trace)
		out.Trace = &t
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]Histogram, len(s.Histograms))
		for name, h := range s.Histograms {
			buckets := make([]HistogramBucket, len(h.Buckets))
			for i, b := range h.Buckets {
				buckets[i] = HistogramBucket(b)
			}
			out.Histograms[name] = Histogram{
				Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
				Buckets: buckets,
			}
		}
	}
	if len(s.Series) > 0 {
		out.Series = make(map[string]Series, len(s.Series))
		for name, sr := range s.Series {
			out.Series[name] = Series{Window: sr.Window, Cycles: sr.Cycles, Values: sr.Values}
		}
	}
	if s.Timeline != nil {
		out.Timeline = &Timeline{
			Interval:   s.Timeline.Interval,
			StartCycle: s.Timeline.StartCycle,
			Cycles:     s.Timeline.Cycles,
			Metrics:    s.Timeline.Metrics,
		}
	}
	if s.Digests != nil {
		out.Digests = &DigestChain{
			Algo:       s.Digests.Algo,
			Interval:   s.Digests.Interval,
			StartCycle: s.Digests.StartCycle,
			Cycles:     s.Digests.Cycles,
			Digests:    s.Digests.Digests,
		}
	}
	return out
}
