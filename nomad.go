// Package nomad is a from-scratch Go reproduction of "NOMAD: Enabling
// Non-blocking OS-managed DRAM Cache via Tag-Data Decoupling" (HPCA 2023).
//
// It bundles a deterministic cycle-level simulation of a chip multiprocessor
// with a heterogeneous memory system — out-of-order cores, SRAM cache
// hierarchy, TLBs, on-package HBM and off-package DDR4 timing models, and an
// OS memory-management substrate — together with five DRAM-cache schemes:
//
//   - Baseline: off-package memory only (lower bound);
//   - TiD: hardware-managed tags-in-DRAM cache (Unison-style);
//   - TDC: blocking OS-managed tagless DRAM cache;
//   - NOMAD: the paper's non-blocking OS-managed cache (front-end OS
//     routines + PCSHR back-end hardware);
//   - Ideal: zero-penalty OS-managed cache (upper bound).
//
// Quick start:
//
//	w, _ := nomad.WorkloadByAbbr("cact")
//	res, err := nomad.Run(nomad.Config{Scheme: nomad.SchemeNOMAD}, w)
//	if err != nil { ... }
//	fmt.Println(res.IPC, res.OSStallRatio)
//
// The full evaluation (every table and figure of the paper) is reachable
// through Experiments / RunExperiment and the cmd/experiments CLI.
package nomad

import (
	"context"
	"fmt"

	"nomad/internal/system"
	"nomad/internal/workload"
)

// Scheme selects the memory-system design under test.
type Scheme string

// The five schemes of the paper's evaluation (§IV-A).
const (
	SchemeBaseline Scheme = "Baseline"
	SchemeTiD      Scheme = "TiD"
	SchemeTDC      Scheme = "TDC"
	SchemeNOMAD    Scheme = "NOMAD"
	SchemeIdeal    Scheme = "Ideal"
)

// Schemes returns all schemes in the paper's presentation order.
func Schemes() []Scheme {
	return []Scheme{SchemeBaseline, SchemeTiD, SchemeTDC, SchemeNOMAD, SchemeIdeal}
}

// Config parameterises a simulation. The zero value (plus a Scheme) selects
// the paper's evaluation configuration at the scaled capacities documented
// in DESIGN.md.
type Config struct {
	// Scheme under test; defaults to NOMAD.
	Scheme Scheme
	// Cores in the chip multiprocessor; defaults to 8.
	Cores int
	// PCSHRs in the NOMAD back-end; defaults to 16.
	PCSHRs int
	// CopyBuffers in the NOMAD back-end; 0 pairs one buffer per PCSHR.
	// Fewer buffers than PCSHRs selects the area-optimized design.
	CopyBuffers int
	// DistributedBackends partitions the back-end per HBM channel.
	DistributedBackends bool
	// TagMgmtLatency is the NOMAD tag-miss handler critical-section
	// occupancy in cycles; defaults to the paper's conservative 400.
	TagMgmtLatency uint64
	// VerifyLatency adds cycles to every DC access for the PCSHR lookup
	// (0 per the paper's CACTI analysis; set 1 for the sensitivity study).
	VerifyLatency uint64
	// CacheTouchThreshold enables selective caching for OS-managed
	// schemes: a page is cached only on its Nth uncached page-table walk.
	// 0 or 1 caches on first touch (the paper's default).
	CacheTouchThreshold uint64
	// WarmupInstructions / ROIInstructions are per-core retirement
	// targets; zero selects the defaults.
	WarmupInstructions uint64
	ROIInstructions    uint64
	// Seed perturbs workload address streams deterministically.
	Seed uint64
	// TraceDepth, when positive, records the last TraceDepth machine
	// events (tag misses, PCSHR fills/writebacks, row conflicts) of the
	// ROI; SpanDepth likewise records per-access latency spans for
	// 1-in-SpanSampleEvery loads per core (0 samples 1 in 64). A run with
	// either enabled exposes the capture through Result.WriteTrace and
	// summarises it in Snapshot.Trace.
	TraceDepth      int
	SpanDepth       int
	SpanSampleEvery uint64
	// Timeline enables interval time-series telemetry: every
	// TimelineInterval cycles of the measured region (default 100k), a set
	// of registry metrics — per-core IPC, DC hit rate, PCSHR occupancy
	// high-water, HBM/DDR bandwidth by category, row-buffer conflict rate,
	// MSHR occupancy — is snapshotted into windowed columns, exposed via
	// Result.Timeline(), Snapshot.Timeline, and (with WriteTrace) Perfetto
	// counter tracks. The first window starts exactly at ROI cycle 0 and
	// the capture is deterministic: same-seed runs marshal byte-identical
	// timelines.
	Timeline bool
	// TimelineInterval is the window length in cycles; 0 selects 100_000.
	TimelineInterval uint64
	// TimelineMetrics restricts the collected columns to names matching
	// these prefixes (e.g. "core.", "hbm.gbs."); empty collects all.
	TimelineMetrics []string
	// SelfProfile samples the simulator's own host-side performance —
	// wall-clock simulated-cycles/sec, events/sec, heap-in-use, GC pauses
	// — into Result.Host(). Host readings are inherently non-deterministic
	// and are never part of the metrics snapshot.
	SelfProfile bool
	// NoFastForward disables the engine's idle-cycle fast-forward (on by
	// default), forcing every cycle to be stepped individually. Results
	// are byte-identical either way; the switch exists for debugging and
	// for measuring the speedup. With SelfProfile set,
	// Host().SkippedCycles reports how much a fast-forwarded run skipped.
	NoFastForward bool
}

func (c Config) effectiveScheme() Scheme {
	if c.Scheme == "" {
		return SchemeNOMAD
	}
	return c.Scheme
}

func (c Config) toInternal() system.Config {
	cfg := system.DefaultConfig()
	if c.Scheme != "" {
		cfg.Scheme = system.SchemeName(c.Scheme)
	}
	if c.Cores > 0 {
		cfg.Cores = c.Cores
	}
	if c.PCSHRs > 0 {
		cfg.Backend.PCSHRs = c.PCSHRs
	}
	if c.CopyBuffers > 0 {
		cfg.Backend.CopyBuffers = c.CopyBuffers
	}
	cfg.Backend.Distributed = c.DistributedBackends
	if c.TagMgmtLatency > 0 {
		cfg.Frontend.TagMgmtLatency = c.TagMgmtLatency
	}
	cfg.Backend.VerifyLatency = c.VerifyLatency
	cfg.Frontend.CacheTouchThreshold = c.CacheTouchThreshold
	if c.WarmupInstructions > 0 {
		cfg.WarmupInstructions = c.WarmupInstructions
	}
	if c.ROIInstructions > 0 {
		cfg.ROIInstructions = c.ROIInstructions
	}
	if c.Seed > 0 {
		cfg.Seed = c.Seed
	}
	cfg.TraceDepth = c.TraceDepth
	cfg.SpanDepth = c.SpanDepth
	cfg.SpanSampleEvery = c.SpanSampleEvery
	cfg.Timeline = c.Timeline
	cfg.Interval = c.TimelineInterval
	cfg.TimelineMetrics = c.TimelineMetrics
	cfg.SelfProfile = c.SelfProfile
	cfg.FastForward = !c.NoFastForward
	return cfg
}

// Workload is one benchmark surrogate (Table I) or a custom stream
// definition.
type Workload struct {
	spec workload.Spec
}

// Name returns the full benchmark name (e.g. "cactusADM").
func (w Workload) Name() string { return w.spec.Name }

// Abbr returns the Table I abbreviation (e.g. "cact").
func (w Workload) Abbr() string { return w.spec.Abbr }

// Class returns the RMHB class: Excess, Tight, Loose, or Few.
func (w Workload) Class() string { return w.spec.Class }

// Suite returns the source suite (SPEC2006 or GAPBS).
func (w Workload) Suite() string { return w.spec.Suite }

// FootprintBytes returns the per-core streamed footprint.
func (w Workload) FootprintBytes() uint64 { return w.spec.FootprintBytes() }

// Workloads returns the fifteen Table I benchmark surrogates.
func Workloads() []Workload {
	specs := workload.Specs()
	out := make([]Workload, len(specs))
	for i, s := range specs {
		out[i] = Workload{spec: s}
	}
	return out
}

// WorkloadByAbbr looks a surrogate up by its Table I abbreviation.
func WorkloadByAbbr(abbr string) (Workload, error) {
	s, ok := workload.ByAbbr(abbr)
	if !ok {
		return Workload{}, fmt.Errorf("nomad: unknown workload %q", abbr)
	}
	return Workload{spec: s}, nil
}

// WorkloadClasses returns the class names in paper order.
func WorkloadClasses() []string { return workload.Classes() }

// WorkloadsByClass returns the surrogates of one class.
func WorkloadsByClass(class string) []Workload {
	specs := workload.ByClass(class)
	out := make([]Workload, len(specs))
	for i, s := range specs {
		out[i] = Workload{spec: s}
	}
	return out
}

// CustomSpec defines a synthetic workload through the generator's knobs.
// See the field documentation in DESIGN.md; all rates are per core.
type CustomSpec struct {
	Name string
	// FootprintPages is the streamed region in 4 KB pages.
	FootprintPages uint64
	// RunBlocks is the number of sequential 64 B blocks touched per page
	// visit (1..64); it sets spatial locality.
	RunBlocks int
	// SeqPageFrac is the probability the next page follows sequentially.
	SeqPageFrac float64
	// GapMean is the mean non-memory instruction count between memory
	// operations.
	GapMean int
	// WriteFrac is the store fraction.
	WriteFrac float64
	// HotPages/HotFrac define an LLC-resident reuse set.
	HotPages uint64
	HotFrac  float64
	// WarmPages/WarmFrac define a DC-resident (LLC-missing) reuse set.
	WarmPages uint64
	WarmFrac  float64
	// BurstPeriodOps/BurstDuty/QuietGapMult introduce phase behaviour.
	BurstPeriodOps uint64
	BurstDuty      float64
	QuietGapMult   int
	// MLP caps effective memory-level parallelism below the hardware
	// limit (dependence chains); 0 uses the core's limit.
	MLP int
}

// NewWorkload builds a custom workload from a CustomSpec.
func NewWorkload(cs CustomSpec) Workload {
	name := cs.Name
	if name == "" {
		name = "custom"
	}
	return Workload{spec: workload.Spec{
		Name: name, Abbr: name, Class: "Custom", Suite: "custom",
		FootprintPages: cs.FootprintPages,
		RunBlocks:      cs.RunBlocks,
		SeqPageFrac:    cs.SeqPageFrac,
		GapMean:        cs.GapMean,
		WriteFrac:      cs.WriteFrac,
		HotPages:       cs.HotPages,
		HotFrac:        cs.HotFrac,
		WarmPages:      cs.WarmPages,
		WarmFrac:       cs.WarmFrac,
		BurstPeriodOps: cs.BurstPeriodOps,
		BurstDuty:      cs.BurstDuty,
		QuietGapMult:   cs.QuietGapMult,
		MLP:            cs.MLP,
	}}
}

// Run simulates one (configuration, workload) pair: warmup, then a measured
// region of interest. It is deterministic for fixed inputs and safe to call
// from multiple goroutines concurrently (each call builds its own machine).
// It is RunContext with a background context.
func Run(cfg Config, w Workload) (*Result, error) {
	return RunContext(context.Background(), cfg, w)
}

// RunContext is Run with cancellation. The simulation checks ctx at engine
// sampling-window boundaries (8192 cycles — microseconds of wall time), so a
// cancelled run returns promptly without a partial Result. Errors are typed:
// every failure returns a *Error wrapping the cause, so
// errors.Is(err, context.Canceled) reports a cancelled run.
func RunContext(ctx context.Context, cfg Config, w Workload) (*Result, error) {
	fail := func(op string, err error) error {
		return &Error{Op: op, Scheme: cfg.effectiveScheme(), Workload: w.Abbr(), Err: err}
	}
	m, err := system.New(cfg.toInternal(), w.spec)
	if err != nil {
		return nil, fail("configure", err)
	}
	r, err := m.RunContext(ctx)
	if err != nil {
		return nil, fail("run", err)
	}
	return fromInternal(r), nil
}
