// Package nomad is a from-scratch Go reproduction of "NOMAD: Enabling
// Non-blocking OS-managed DRAM Cache via Tag-Data Decoupling" (HPCA 2023).
//
// It bundles a deterministic cycle-level simulation of a chip multiprocessor
// with a heterogeneous memory system — out-of-order cores, SRAM cache
// hierarchy, TLBs, on-package HBM and off-package DDR4 timing models, and an
// OS memory-management substrate — together with five DRAM-cache schemes:
//
//   - Baseline: off-package memory only (lower bound);
//   - TiD: hardware-managed tags-in-DRAM cache (Unison-style);
//   - TDC: blocking OS-managed tagless DRAM cache;
//   - NOMAD: the paper's non-blocking OS-managed cache (front-end OS
//     routines + PCSHR back-end hardware);
//   - Ideal: zero-penalty OS-managed cache (upper bound).
//
// Quick start:
//
//	w, _ := nomad.WorkloadByAbbr("cact")
//	res, err := nomad.Run(nomad.Config{Scheme: nomad.SchemeNOMAD}, w)
//	if err != nil { ... }
//	fmt.Println(res.IPC, res.OSStallRatio)
//
// The full evaluation (every table and figure of the paper) is reachable
// through Experiments / RunExperiment and the cmd/experiments CLI.
package nomad

import (
	"context"
	"fmt"

	"nomad/internal/obs"
	"nomad/internal/system"
	"nomad/internal/workload"
)

// Scheme selects the memory-system design under test.
type Scheme string

// The five schemes of the paper's evaluation (§IV-A).
const (
	SchemeBaseline Scheme = "Baseline"
	SchemeTiD      Scheme = "TiD"
	SchemeTDC      Scheme = "TDC"
	SchemeNOMAD    Scheme = "NOMAD"
	SchemeIdeal    Scheme = "Ideal"
)

// Schemes returns all schemes in the paper's presentation order.
func Schemes() []Scheme {
	return []Scheme{SchemeBaseline, SchemeTiD, SchemeTDC, SchemeNOMAD, SchemeIdeal}
}

// Workload is one benchmark surrogate (Table I) or a custom stream
// definition.
type Workload struct {
	spec workload.Spec
}

// Name returns the full benchmark name (e.g. "cactusADM").
func (w Workload) Name() string { return w.spec.Name }

// Abbr returns the Table I abbreviation (e.g. "cact").
func (w Workload) Abbr() string { return w.spec.Abbr }

// Class returns the RMHB class: Excess, Tight, Loose, or Few.
func (w Workload) Class() string { return w.spec.Class }

// Suite returns the source suite (SPEC2006 or GAPBS).
func (w Workload) Suite() string { return w.spec.Suite }

// FootprintBytes returns the per-core streamed footprint.
func (w Workload) FootprintBytes() uint64 { return w.spec.FootprintBytes() }

// Workloads returns the fifteen Table I benchmark surrogates.
func Workloads() []Workload {
	specs := workload.Specs()
	out := make([]Workload, len(specs))
	for i, s := range specs {
		out[i] = Workload{spec: s}
	}
	return out
}

// WorkloadByAbbr looks a surrogate up by its Table I abbreviation.
func WorkloadByAbbr(abbr string) (Workload, error) {
	s, ok := workload.ByAbbr(abbr)
	if !ok {
		return Workload{}, fmt.Errorf("nomad: unknown workload %q", abbr)
	}
	return Workload{spec: s}, nil
}

// WorkloadClasses returns the class names in paper order.
func WorkloadClasses() []string { return workload.Classes() }

// WorkloadsByClass returns the surrogates of one class.
func WorkloadsByClass(class string) []Workload {
	specs := workload.ByClass(class)
	out := make([]Workload, len(specs))
	for i, s := range specs {
		out[i] = Workload{spec: s}
	}
	return out
}

// CustomSpec defines a synthetic workload through the generator's knobs.
// See the field documentation in DESIGN.md; all rates are per core.
type CustomSpec struct {
	Name string
	// FootprintPages is the streamed region in 4 KB pages.
	FootprintPages uint64
	// RunBlocks is the number of sequential 64 B blocks touched per page
	// visit (1..64); it sets spatial locality.
	RunBlocks int
	// SeqPageFrac is the probability the next page follows sequentially.
	SeqPageFrac float64
	// GapMean is the mean non-memory instruction count between memory
	// operations.
	GapMean int
	// WriteFrac is the store fraction.
	WriteFrac float64
	// HotPages/HotFrac define an LLC-resident reuse set.
	HotPages uint64
	HotFrac  float64
	// WarmPages/WarmFrac define a DC-resident (LLC-missing) reuse set.
	WarmPages uint64
	WarmFrac  float64
	// BurstPeriodOps/BurstDuty/QuietGapMult introduce phase behaviour.
	BurstPeriodOps uint64
	BurstDuty      float64
	QuietGapMult   int
	// MLP caps effective memory-level parallelism below the hardware
	// limit (dependence chains); 0 uses the core's limit.
	MLP int
}

// NewWorkload builds a custom workload from a CustomSpec.
func NewWorkload(cs CustomSpec) Workload {
	name := cs.Name
	if name == "" {
		name = "custom"
	}
	return Workload{spec: workload.Spec{
		Name: name, Abbr: name, Class: "Custom", Suite: "custom",
		FootprintPages: cs.FootprintPages,
		RunBlocks:      cs.RunBlocks,
		SeqPageFrac:    cs.SeqPageFrac,
		GapMean:        cs.GapMean,
		WriteFrac:      cs.WriteFrac,
		HotPages:       cs.HotPages,
		HotFrac:        cs.HotFrac,
		WarmPages:      cs.WarmPages,
		WarmFrac:       cs.WarmFrac,
		BurstPeriodOps: cs.BurstPeriodOps,
		BurstDuty:      cs.BurstDuty,
		QuietGapMult:   cs.QuietGapMult,
		MLP:            cs.MLP,
	}}
}

// Run simulates one (configuration, workload) pair: warmup, then a measured
// region of interest. It is deterministic for fixed inputs and safe to call
// from multiple goroutines concurrently (each call builds its own machine).
// It is RunContext with a background context.
func Run(cfg Config, w Workload) (*Result, error) {
	return RunContext(context.Background(), cfg, w)
}

// RunContext is Run with cancellation. The simulation checks ctx at engine
// sampling-window boundaries (8192 cycles — microseconds of wall time), so a
// cancelled run returns promptly without a partial Result. Errors are typed:
// every failure returns a *Error wrapping the cause, so
// errors.Is(err, context.Canceled) reports a cancelled run.
func RunContext(ctx context.Context, cfg Config, w Workload) (*Result, error) {
	fail := func(op string, err error) error {
		return &Error{Op: op, Scheme: cfg.effectiveScheme(), Workload: w.Abbr(), Err: err}
	}
	if verr := cfg.Validate(); verr != nil {
		verr.Workload = w.Abbr()
		return nil, verr
	}
	icfg := cfg.toInternal()
	m, err := system.New(icfg, w.spec)
	if err != nil {
		return nil, fail("configure", err)
	}
	r, err := m.RunContext(ctx)
	if err != nil {
		return nil, fail("run", err)
	}
	out := fromInternal(r)
	out.manifest = fromObsManifest(obs.NewManifest(icfg, w.spec))
	return out, nil
}

// ManifestFor computes the content-addressed manifest a Run of (cfg, w)
// would carry, without running anything: the address is the SHA-256 of the
// resolved configuration, the workload definition, and the module build
// stamp. Because same-seed runs are byte-identical, the address fully
// identifies the result — the key for a content-addressed result cache.
func ManifestFor(cfg Config, w Workload) (*Manifest, error) {
	if verr := cfg.Validate(); verr != nil {
		verr.Workload = w.Abbr()
		return nil, verr
	}
	return fromObsManifest(obs.NewManifest(cfg.toInternal(), w.spec)), nil
}
