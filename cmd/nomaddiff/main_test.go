package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadSnapshotShapes pins the three accepted file layouts.
func TestLoadSnapshotShapes(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"nomadsim document", `{"result": {"Scheme": "TDC", "Metrics": {"cycles": 1000, "counters": {"x": 5}}}, "manifest": {}}`},
		{"bare system.Result", `{"Scheme": "TDC", "Metrics": {"cycles": 1000, "counters": {"x": 5}}}`},
		{"bare snapshot", `{"cycles": 1000, "counters": {"x": 5}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			snap, err := loadSnapshot(writeTemp(t, "r.json", c.doc))
			if err != nil {
				t.Fatal(err)
			}
			if snap.Cycles != 1000 || snap.Counters["x"] != 5 {
				t.Errorf("snapshot = %+v", snap)
			}
		})
	}
}

func TestLoadSnapshotRejects(t *testing.T) {
	for _, c := range []struct{ name, doc string }{
		{"not json", "nope"},
		{"no snapshot", `{"something": "else"}`},
	} {
		t.Run(c.name, func(t *testing.T) {
			if _, err := loadSnapshot(writeTemp(t, "r.json", c.doc)); err == nil {
				t.Error("accepted")
			}
		})
	}
	if _, err := loadSnapshot(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseSpec(t *testing.T) {
	sp, err := parseSpec("TDC/cact/7", true, true, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Cfg.Scheme != "TDC" || sp.Spec.Abbr != "cact" || sp.Cfg.Seed != 7 {
		t.Errorf("spec = %+v", sp.Cfg)
	}
	if sp.Cfg.FastForward || sp.Cfg.Engine != "heap" || sp.Cfg.ROIInstructions != 400_000 {
		t.Errorf("flags not applied: %+v", sp.Cfg)
	}
	if sp, err := parseSpec("NOMAD/pr", false, false, ""); err != nil || sp.Cfg.Seed == 0 {
		// Seed stays at the config default when the spec omits it.
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, bad := range []string{"TDC", "Bogus/cact", "TDC/bogus", "TDC/cact/x", "a/b/c/d"} {
		if _, err := parseSpec(bad, false, false, ""); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
