// Command nomaddiff structurally compares two simulation runs and localizes
// where they first diverge.
//
// File mode diffs two saved result files (nomadsim -format json output, a
// bare system.Result, or a bare metrics snapshot — the shape is detected):
//
//	nomaddiff a.json b.json
//
// Run mode executes two run specs (scheme/workload[/seed]) fresh, with
// digest chains and timelines forced on, and diffs the results; -bisect
// additionally replays each run's prefix up to the first divergent interval
// with full event tracing and writes per-run Perfetto traces:
//
//	nomaddiff -run TDC/cact/1 TDC/cact/2
//	nomaddiff -bisect -fast -out /tmp/div TDC/cact/1 TDC/cact/2
//
// Exit status: 0 when the runs are identical, 1 when they diverge, 2 on
// usage or input errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"nomad/internal/diag"
	"nomad/internal/harness"
	"nomad/internal/metrics"
	"nomad/internal/sim"
	"nomad/internal/system"
	"nomad/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runMode = flag.Bool("run", false, "arguments are run specs (scheme/workload[/seed]) to execute fresh, not files")
		bisect  = flag.Bool("bisect", false, "replay the divergent prefix with event tracing and write Perfetto traces (implies -run)")
		fast    = flag.Bool("fast", false, "with -run: shrink warmup/ROI for quick runs")
		noFF    = flag.Bool("no-ff", false, "with -run: disable idle-cycle fast-forward (results are byte-identical either way)")
		engine  = flag.String("engine", "", "with -run: event-queue implementation (wheel or heap)")
		top     = flag.Int("top", 10, "show at most this many metric deltas per table")
		out     = flag.String("out", ".", "with -bisect: directory for the per-run Perfetto traces")
		format  = flag.String("format", "text", "output format: text or json")
	)
	flag.Parse()
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q; use text, json\n", *format)
		return 2
	}
	if _, err := sim.NewScheduler(sim.Kind(*engine)); err != nil {
		fmt.Fprintf(os.Stderr, "-engine %q: use %q or %q\n", *engine, sim.KindWheel, sim.KindHeap)
		return 2
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: nomaddiff [flags] A.json B.json  |  nomaddiff -run [flags] SPEC_A SPEC_B")
		flag.PrintDefaults()
		return 2
	}
	argA, argB := flag.Arg(0), flag.Arg(1)

	// Bisection replays prefixes with tracing, which only works on fresh
	// runs — saved snapshot files carry no replayable spec.
	if !*runMode && !*bisect {
		return diffFiles(argA, argB, *format, *top)
	}

	specA, err := parseSpec(argA, *fast, *noFF, *engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	specB, err := parseSpec(argB, *fast, *noFF, *engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *bisect {
		return runBisect(specA, specB, *format, *top, *out)
	}
	return runDiff(specA, specB, *format, *top)
}

// parseSpec builds a diag.RunSpec from "scheme/workload[/seed]".
func parseSpec(s string, fast, noFF bool, engine string) (diag.RunSpec, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 && len(parts) != 3 {
		return diag.RunSpec{}, fmt.Errorf("run spec %q: want scheme/workload[/seed]", s)
	}
	sp, ok := workload.ByAbbr(parts[1])
	if !ok {
		return diag.RunSpec{}, fmt.Errorf("run spec %q: unknown workload %q", s, parts[1])
	}
	cfg := system.DefaultConfig()
	cfg.Scheme = system.SchemeName(parts[0])
	known := false
	for _, sc := range system.AllSchemes() {
		if cfg.Scheme == sc {
			known = true
			break
		}
	}
	if !known {
		return diag.RunSpec{}, fmt.Errorf("run spec %q: unknown scheme %q", s, parts[0])
	}
	if len(parts) == 3 {
		seed, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return diag.RunSpec{}, fmt.Errorf("run spec %q: bad seed %q", s, parts[2])
		}
		cfg.Seed = seed
	}
	if fast {
		cfg.WarmupInstructions = 300_000
		cfg.ROIInstructions = 400_000
	}
	cfg.FastForward = !noFF
	cfg.Engine = sim.Kind(engine)
	return diag.RunSpec{Key: s, Cfg: cfg, Spec: sp}, nil
}

// executePair runs the two specs through the harness pool and returns their
// snapshots in order. Keys are prefixed so identical specs (same run diffed
// against itself) cannot collide in the results map.
func executePair(a, b diag.RunSpec) ([2]*metrics.Snapshot, error) {
	var out [2]*metrics.Snapshot
	runs := []harness.Run{
		{Key: "A/" + a.Key, Cfg: a.Cfg, Spec: a.Spec},
		{Key: "B/" + b.Key, Cfg: b.Cfg, Spec: b.Spec},
	}
	results, err := harness.Execute(context.Background(), harness.Options{}, runs)
	if err != nil {
		return out, err
	}
	ra, rb := results["A/"+a.Key], results["B/"+b.Key]
	if ra == nil || rb == nil {
		return out, fmt.Errorf("nomaddiff: run pair did not complete")
	}
	out[0], out[1] = ra.Metrics, rb.Metrics
	return out, nil
}

// diffFiles loads two snapshots from disk and diffs them.
func diffFiles(pathA, pathB, format string, top int) int {
	a, err := loadSnapshot(pathA)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	b, err := loadSnapshot(pathB)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	d := diag.DiffSnapshots(a, b)
	if err := render(d, format, top); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if d.Identical() {
		return 0
	}
	return 1
}

// runDiff executes the two specs with digests and timelines forced on and
// diffs the resulting snapshots.
func runDiff(a, b diag.RunSpec, format string, top int) int {
	a.Cfg.Digests, a.Cfg.Timeline = true, true
	b.Cfg.Digests, b.Cfg.Timeline = true, true
	res, err := executePair(a, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	d := diag.DiffSnapshots(res[0], res[1])
	if err := render(d, format, top); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if d.Identical() {
		return 0
	}
	return 1
}

// runBisect runs the full two-pass bisection and writes the prefix traces.
func runBisect(a, b diag.RunSpec, format string, top int, outDir string) int {
	rep, err := diag.Bisect(context.Background(), a, b, diag.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else if err := rep.WriteText(os.Stdout, top); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, tr := range []struct {
		name  string
		bytes []byte
	}{{"divergence-a.json", rep.TraceA}, {"divergence-b.json", rep.TraceB}} {
		if tr.bytes == nil {
			continue
		}
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		path := filepath.Join(outDir, tr.name)
		if err := os.WriteFile(path, tr.bytes, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "wrote Perfetto trace %s — open at https://ui.perfetto.dev\n", path)
	}
	if rep.Identical {
		return 0
	}
	return 1
}

func render(d *diag.SnapshotDiff, format string, top int) error {
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	}
	return d.WriteText(os.Stdout, top)
}

// resultFile matches the three snapshot-bearing JSON shapes nomad tools
// emit; exactly one probe field is set per shape.
type resultFile struct {
	// nomadsim -format json: {"result": {..., "Metrics": {...}}, "manifest": ...}
	Result *struct {
		Metrics *metrics.Snapshot `json:"Metrics"`
	} `json:"result"`
	// bare system.Result: {..., "Metrics": {...}}
	Metrics *metrics.Snapshot `json:"Metrics"`
	// bare metrics.Snapshot: {..., "counters": {...}}
	Counters map[string]uint64 `json:"counters"`
}

// loadSnapshot reads a snapshot from any of the supported file shapes.
func loadSnapshot(path string) (*metrics.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f resultFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case f.Result != nil && f.Result.Metrics != nil:
		return f.Result.Metrics, nil
	case f.Metrics != nil:
		return f.Metrics, nil
	case f.Counters != nil:
		var s metrics.Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &s, nil
	}
	return nil, fmt.Errorf("%s: no metrics snapshot found (want nomadsim -format json output, a system.Result, or a bare snapshot)", path)
}
