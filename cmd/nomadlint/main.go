// Command nomadlint enforces the simulator's determinism contract (see
// DESIGN.md, "Determinism contract" and "Ownership domains"). It is built
// entirely on the standard library's go/ast, go/parser, go/token, and
// go/types — running it needs nothing beyond the Go toolchain already
// required to build the simulator.
//
// Usage:
//
//	go run ./cmd/nomadlint ./...
//	go run ./cmd/nomadlint -write-inventory ./...
//	go run ./cmd/nomadlint -rules wallclock,maporder ./...
//	go run ./cmd/nomadlint -rule ownership -json ./...
//
// The package pattern argument is accepted for familiarity but the analyzer
// always loads the whole module containing the working directory: the
// determinism contract is a whole-module property (metric-name uniqueness,
// forwarder resolution, and the ownership call graph cross package
// boundaries).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nomad/internal/lint"
)

// jsonFinding is the machine-readable shape of one diagnostic.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	var (
		writeInventory = flag.Bool("write-inventory", false, "regenerate internal/lint/metric_inventory.txt and ownership_inventory.txt from the live tree and exit")
		rules          = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		rule           = flag.String("rule", "", "run a single rule family (shorthand for -rules <family>)")
		listRules      = flag.Bool("list-rules", false, "print the rule names and exit")
		jsonOut        = flag.Bool("json", false, "emit findings as a JSON array of {file,line,column,rule,message}")
	)
	flag.Parse()

	if *listRules {
		for _, r := range lint.RuleNames {
			fmt.Println(r)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nomadlint:", err)
		os.Exit(2)
	}
	mod, err := lint.LoadDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nomadlint: load:", err)
		os.Exit(2)
	}

	if *writeInventory {
		writeFile := func(rel, header string, lines []string) {
			out := filepath.Join(root, "internal", "lint", rel)
			data := header + strings.Join(lines, "\n") + "\n"
			if len(lines) == 0 {
				data = header
			}
			if err := os.WriteFile(out, []byte(data), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "nomadlint:", err)
				os.Exit(2)
			}
			fmt.Printf("nomadlint: wrote %d inventory lines to %s\n", len(lines), out)
		}
		writeFile("metric_inventory.txt",
			"# Metric registration inventory. Regenerate with:\n"+
				"#   go run ./cmd/nomadlint -write-inventory ./...\n"+
				"# Format: namespace<TAB>name-pattern ('*' = run-time component).\n",
			lint.InventoryLines(mod))
		writeFile("ownership_inventory.txt",
			"# Ownership inventory. Regenerate with:\n"+
				"#   go run ./cmd/nomadlint -write-inventory ./...\n"+
				"# Format: owner<TAB>package<TAB>Type<TAB>domain\n"+
				"#         port<TAB>package<TAB>Func<TAB>reason\n",
			lint.OwnershipInventoryLines(mod))
		return
	}

	cfg := lint.DefaultConfig()
	cfg.MetricInventory = lint.EmbeddedInventory()
	cfg.OwnershipInventory = lint.EmbeddedOwnershipInventory()
	var sel []string
	if *rules != "" {
		sel = append(sel, strings.Split(*rules, ",")...)
	}
	if *rule != "" {
		sel = append(sel, *rule)
	}
	cfg.Rules = sel
	diags := lint.Run(mod, cfg)
	if *jsonOut {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "nomadlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nomadlint: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
