// Command nomadlint enforces the simulator's determinism contract (see
// DESIGN.md, "Determinism contract"). It is built entirely on the standard
// library's go/ast, go/parser, go/token, and go/types — running it needs
// nothing beyond the Go toolchain already required to build the simulator.
//
// Usage:
//
//	go run ./cmd/nomadlint ./...
//	go run ./cmd/nomadlint -write-inventory ./...
//	go run ./cmd/nomadlint -rules wallclock,maporder ./...
//
// The package pattern argument is accepted for familiarity but the analyzer
// always loads the whole module containing the working directory: the
// determinism contract is a whole-module property (metric-name uniqueness
// and forwarder resolution cross package boundaries).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nomad/internal/lint"
)

func main() {
	var (
		writeInventory = flag.Bool("write-inventory", false, "regenerate internal/lint/metric_inventory.txt from the live registrations and exit")
		rules          = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		listRules      = flag.Bool("list-rules", false, "print the rule names and exit")
	)
	flag.Parse()

	if *listRules {
		for _, r := range lint.RuleNames {
			fmt.Println(r)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nomadlint:", err)
		os.Exit(2)
	}
	mod, err := lint.LoadDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nomadlint: load:", err)
		os.Exit(2)
	}

	if *writeInventory {
		lines := lint.InventoryLines(mod)
		out := filepath.Join(root, "internal", "lint", "metric_inventory.txt")
		data := "# Metric registration inventory. Regenerate with:\n" +
			"#   go run ./cmd/nomadlint -write-inventory ./...\n" +
			"# Format: namespace<TAB>name-pattern ('*' = run-time component).\n" +
			strings.Join(lines, "\n") + "\n"
		if err := os.WriteFile(out, []byte(data), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "nomadlint:", err)
			os.Exit(2)
		}
		fmt.Printf("nomadlint: wrote %d inventory lines to %s\n", len(lines), out)
		return
	}

	cfg := lint.DefaultConfig()
	cfg.MetricInventory = lint.EmbeddedInventory()
	if *rules != "" {
		cfg.Rules = strings.Split(*rules, ",")
	}
	diags := lint.Run(mod, cfg)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nomadlint: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
