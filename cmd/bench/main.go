// Command bench is the repository's benchmark-regression pipeline: it runs
// an end-to-end simulation-throughput benchmark per scheme, measures the
// timeline-capture overhead, optionally runs the package's Go benchmarks,
// and emits one schema-stable BENCH_<date>.json. When a previous BENCH file
// exists it prints a comparison and flags metrics that moved past the
// threshold.
//
// Usage:
//
//	bench                          # run, write bench/BENCH_<date>.json, compare
//	bench -out results -threshold 0.15
//	bench -compare latest          # diff against newest committed bench/BENCH_*.json
//	bench -gobench ''              # skip the go-test benchmarks (fastest)
//	bench -fail-on-regress         # exit 1 when a regression exceeds threshold
//	bench -engine heap             # measure on the binary-heap oracle
//
// The shared CLI flags (internal/cliflags) configure the measured runs:
// -engine and -no-ff select the engine variant, -timeline measures with
// interval telemetry enabled, and -trace FILE additionally writes a Perfetto
// trace of one NOMAD run under the benchmark configuration (useful for
// seeing where simulated time goes). -profile is accepted for interface
// parity but self-profiling is always on — the measurements are host
// profiles. -format json emits the new BENCH document and comparison as one
// JSON object on stdout instead of the text summary.
//
// The comparison is advisory by default (exit 0) so CI can surface deltas
// without blocking merges; -fail-on-regress turns it into a gate. When no
// baseline exists yet (fresh checkout, empty -out dir) the run still
// succeeds: it records the new BENCH file and says so instead of failing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"nomad"
	"nomad/internal/cliflags"
	"nomad/internal/diag"
	"nomad/internal/obs"
	"nomad/internal/system"
	"nomad/internal/workload"
)

// Schema identifies the BENCH JSON layout; bump only with a migration note
// in DESIGN.md.
const Schema = "nomad-bench/1"

// benchROI keeps each end-to-end run short enough for CI while long enough
// (several interval windows) for stable cycles/sec.
const benchROI = 200_000

// File is one BENCH_<date>.json document.
type File struct {
	Schema    string    `json:"schema"`
	Date      string    `json:"date"`
	GoVersion string    `json:"go_version"`
	Host      string    `json:"host"`
	E2E       []E2E     `json:"e2e"`
	Timeline  *Overhead `json:"timeline_overhead,omitempty"`
	// Obs measures the live-observation slowdown (absent only on schema-old
	// baselines).
	Obs *ObsOverhead `json:"obs_overhead,omitempty"`
	// Digest measures the interval digest-chain capture slowdown (absent
	// only on schema-old baselines). The acceptance bar is under 2%.
	Digest *DigestOverhead `json:"digest_overhead,omitempty"`
	// FastForward measures the idle-cycle fast-forward speedup on one
	// blocking OS-managed scheme (absent when bench ran with -no-ff).
	FastForward *FFSpeedup `json:"fast_forward,omitempty"`
	// Parallel measures the shard-parallel tick phase's end-to-end speedup
	// on a multi-core config (absent only on schema-old baselines).
	Parallel *ParSpeedup `json:"parallel,omitempty"`
	GoBench  []GoBench   `json:"gobench,omitempty"`
}

// E2E is one end-to-end throughput measurement (higher cycles/sec is
// better).
type E2E struct {
	Name            string  `json:"name"`
	SimCycles       uint64  `json:"sim_cycles"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	EventsPerSec    float64 `json:"events_per_sec"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
	// SkipRatio is the fraction of simulated cycles the engine
	// fast-forwarded over (skipped_cycles / sim_cycles; 0 with -no-ff).
	SkipRatio float64 `json:"skip_ratio"`
	// Digest is the run's final chained interval digest. Deterministic:
	// a change between two BENCH files means the simulated behavior of the
	// benchmark run changed, not just its host-side speed.
	Digest string `json:"digest,omitempty"`
	// Metrics is the run's counter snapshot, kept so a throughput
	// regression can be attributed to behavioral metric deltas on
	// comparison (absent on schema-old baselines).
	Metrics map[string]uint64 `json:"metrics,omitempty"`
}

// Overhead is the timeline-capture slowdown measurement: the same run with
// and without Config.Timeline, best-of-N cycles/sec each.
type Overhead struct {
	BaseCyclesPerSec     float64 `json:"base_cycles_per_sec"`
	TimelineCyclesPerSec float64 `json:"timeline_cycles_per_sec"`
	// OverheadPct is the relative slowdown in percent; negative means the
	// timeline run happened to be faster (noise).
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsOverhead is the live-observation slowdown measurement: the same run
// bare and with an obs.RunTracker attached plus an introspection server
// being scraped throughout, best-of-N cycles/sec each. The acceptance bar
// is under 1% — observation must be effectively free.
type ObsOverhead struct {
	BaseCyclesPerSec     float64 `json:"base_cycles_per_sec"`
	ObservedCyclesPerSec float64 `json:"observed_cycles_per_sec"`
	// OverheadPct is the relative slowdown in percent; negative means the
	// observed run happened to be faster (noise).
	OverheadPct float64 `json:"overhead_pct"`
}

// DigestOverhead is the digest-chain capture slowdown measurement: the same
// run with and without Telemetry.Digests, best-of-N cycles/sec each.
type DigestOverhead struct {
	BaseCyclesPerSec   float64 `json:"base_cycles_per_sec"`
	DigestCyclesPerSec float64 `json:"digest_cycles_per_sec"`
	// OverheadPct is the relative slowdown in percent; negative means the
	// digest run happened to be faster (noise).
	OverheadPct float64 `json:"overhead_pct"`
}

// FFSpeedup is the idle-cycle fast-forward effectiveness measurement: the
// same run with fast-forward on and off, best-of-N cycles/sec each.
type FFSpeedup struct {
	Scheme          string  `json:"scheme"`
	OnCyclesPerSec  float64 `json:"on_cycles_per_sec"`
	OffCyclesPerSec float64 `json:"off_cycles_per_sec"`
	// Speedup is on/off; >1 means fast-forward helped.
	Speedup float64 `json:"speedup"`
}

// ParSpeedup is the parallel tick phase's effectiveness measurement: the
// same multi-core run sequential and with the shard-parallel engine,
// best-of-N cycles/sec each. Both runs produce byte-identical results (the
// equivalence tests pin that), so this is a pure host-speed ratio — and it
// is bounded by HostCPUs: on a single-CPU host the parallel run only pays
// barrier overhead, so Speedup is interpreted against HostCPUs, never
// gated.
type ParSpeedup struct {
	Scheme string `json:"scheme"`
	Cores  int    `json:"cores"`
	// Workers is the tick-phase worker count the parallel side ran with.
	Workers int `json:"workers"`
	// HostCPUs is runtime.NumCPU() on the measuring host — the hard ceiling
	// on any real speedup. A baseline recorded on a single-CPU host carries
	// HostCPUs 1, telling readers the Speedup there measures machinery
	// overhead, not scaling.
	HostCPUs        int     `json:"host_cpus"`
	SeqCyclesPerSec float64 `json:"seq_cycles_per_sec"`
	ParCyclesPerSec float64 `json:"par_cycles_per_sec"`
	// Speedup is par/seq; >1 means the worker pool helped.
	Speedup float64 `json:"speedup"`
}

// GoBench is one `go test -bench` result (lower ns/op is better).
type GoBench struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

func main() {
	debug.SetGCPercent(600)
	var (
		outDir  = flag.String("out", "bench", "directory for BENCH_<date>.json")
		compare = flag.String("compare", "", "previous BENCH file to diff against: a path, a glob, or 'latest' for the newest committed bench/BENCH_*.json (default: latest in -out)")
		thresh  = flag.Float64("threshold", 0.10, "relative change flagged as a regression")
		gobench = flag.String("gobench", "BenchmarkSimulatorThroughput", "go test -bench regexp ('' skips)")
		reps    = flag.Int("reps", 3, "repetitions per throughput measurement (best-of)")
		failOn  = flag.Bool("fail-on-regress", false, "exit 1 when any metric regresses past threshold")
	)
	cf := cliflags.Register(flag.CommandLine)
	flag.Parse()
	if err := cf.Check("text", "json"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := cf.Logger(os.Stderr)
	// -http serves live host metrics and pprof while bench runs; the
	// observation-overhead measurement below always builds its own private
	// server so the measurement is self-contained.
	cf.StartObs(logger)
	cf.StartPprof(os.Stderr)

	f := &File{
		Schema:    Schema,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Host:      runtime.GOOS + "/" + runtime.GOARCH,
	}

	logger.Info("end-to-end throughput", "reps", *reps)
	for _, scheme := range nomad.Schemes() {
		e, err := runE2E(cf, scheme, *reps)
		if err != nil {
			fatal("e2e %s: %v", scheme, err)
		}
		f.E2E = append(f.E2E, e)
		logger.Info("e2e", "run", e.Name,
			"mcyc_per_sec", round2(e.SimCyclesPerSec/1e6),
			"mevents_per_sec", round2(e.EventsPerSec/1e6),
			"peak_heap_mb", round2(float64(e.PeakHeapBytes)/(1024*1024)),
			"skip_pct", round2(100*e.SkipRatio))
	}

	ov, err := runOverhead(cf, *reps)
	if err != nil {
		fatal("timeline overhead: %v", err)
	}
	f.Timeline = ov
	logger.Info("timeline overhead",
		"base_mcyc_per_sec", round2(ov.BaseCyclesPerSec/1e6),
		"timeline_mcyc_per_sec", round2(ov.TimelineCyclesPerSec/1e6),
		"overhead_pct", round2(ov.OverheadPct))

	oo, err := runObsOverhead(cf, *reps)
	if err != nil {
		fatal("observation overhead: %v", err)
	}
	f.Obs = oo
	logger.Info("observation overhead",
		"base_mcyc_per_sec", round2(oo.BaseCyclesPerSec/1e6),
		"observed_mcyc_per_sec", round2(oo.ObservedCyclesPerSec/1e6),
		"overhead_pct", round2(oo.OverheadPct))

	dov, err := runDigestOverhead(cf, *reps)
	if err != nil {
		fatal("digest overhead: %v", err)
	}
	f.Digest = dov
	logger.Info("digest overhead",
		"base_mcyc_per_sec", round2(dov.BaseCyclesPerSec/1e6),
		"digest_mcyc_per_sec", round2(dov.DigestCyclesPerSec/1e6),
		"overhead_pct", round2(dov.OverheadPct))

	if !cf.NoFF {
		sp, err := runFFSpeedup(cf, *reps)
		if err != nil {
			fatal("fast-forward speedup: %v", err)
		}
		f.FastForward = sp
		logger.Info("fast-forward speedup", "scheme", sp.Scheme,
			"on_mcyc_per_sec", round2(sp.OnCyclesPerSec/1e6),
			"off_mcyc_per_sec", round2(sp.OffCyclesPerSec/1e6),
			"speedup", round2(sp.Speedup))
	}

	ps, err := runParSpeedup(cf, *reps)
	if err != nil {
		fatal("parallel speedup: %v", err)
	}
	f.Parallel = ps
	logger.Info("parallel speedup", "scheme", ps.Scheme,
		"cores", ps.Cores, "workers", ps.Workers, "host_cpus", ps.HostCPUs,
		"seq_mcyc_per_sec", round2(ps.SeqCyclesPerSec/1e6),
		"par_mcyc_per_sec", round2(ps.ParCyclesPerSec/1e6),
		"speedup", round2(ps.Speedup))

	if *gobench != "" {
		logger.Info("go test -bench", "pattern", *gobench)
		gb, err := runGoBench(*gobench)
		if err != nil {
			fatal("gobench: %v", err)
		}
		f.GoBench = gb
		for _, b := range gb {
			logger.Info("gobench", "name", b.Name, "ns_per_op", b.NsPerOp)
		}
	}

	if cf.Trace != "" {
		if err := writeTraceRun(cf); err != nil {
			fatal("trace: %v", err)
		}
		logger.Info("wrote Perfetto trace — open at https://ui.perfetto.dev", "path", cf.Trace)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal("%v", err)
	}
	outPath := filepath.Join(*outDir, "BENCH_"+f.Date+".json")
	prevPath, note := resolveBaseline(*compare, *outDir, outPath)
	if err := writeFile(outPath, f); err != nil {
		fatal("%v", err)
	}
	logger.Info("wrote BENCH file", "path", outPath)

	// Summary is the stdout rendering: a note when no baseline exists, the
	// per-metric comparison otherwise — as text lines or (with -format
	// json) one machine-readable document.
	summary := Summary{File: f}
	if prevPath == "" {
		// A missing baseline is the normal first-run state, not an error:
		// record the new file and exit clean so CI pipelines work on
		// fresh branches.
		summary.Note = note + "; recorded " + outPath + " as the new baseline"
	} else if prev, err := readFile(prevPath); err != nil {
		if !os.IsNotExist(err) {
			fatal("compare %s: %v", prevPath, err)
		}
		summary.Note = "baseline " + prevPath + " does not exist; recorded " + outPath + " as the new baseline"
	} else {
		summary.Baseline = prevPath
		summary.Deltas = Compare(prev, f, *thresh)
		summary.Added, summary.Dropped = Coverage(prev, f)
		summary.Attribution = Attribute(prev, f, summary.Deltas, 0)
	}
	regressed := false
	for _, d := range summary.Deltas {
		if d.Regression {
			regressed = true
		}
	}
	switch cf.Format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			fatal("encode: %v", err)
		}
	default:
		if summary.Baseline == "" {
			fmt.Println(summary.Note)
		} else {
			fmt.Printf("comparison vs %s (threshold %.0f%%):\n", filepath.Base(summary.Baseline), 100**thresh)
			for _, d := range summary.Deltas {
				fmt.Println("  " + d.String())
			}
			if len(summary.Added) > 0 {
				fmt.Printf("added measurements (no baseline): %s\n", strings.Join(summary.Added, ", "))
			}
			if len(summary.Dropped) > 0 {
				fmt.Printf("dropped measurements (baseline only): %s\n", strings.Join(summary.Dropped, ", "))
			}
			for _, a := range summary.Attribution {
				fmt.Printf("attribution %s: %s\n", a.Name, a.Note)
				for _, md := range a.Deltas {
					fmt.Println("  " + md.String())
				}
			}
		}
	}
	if regressed && *failOn {
		os.Exit(1)
	}
}

// Summary is the stdout document of one bench invocation: the freshly
// written BENCH file plus the comparison against the resolved baseline (or a
// note explaining why there is none).
type Summary struct {
	File     *File   `json:"file"`
	Baseline string  `json:"baseline,omitempty"`
	Note     string  `json:"note,omitempty"`
	Deltas   []Delta `json:"deltas,omitempty"`
	// Added/Dropped are measurements present in only one of the two files
	// (current only / baseline only) — the entries the deltas skip.
	Added   []string `json:"added,omitempty"`
	Dropped []string `json:"dropped,omitempty"`
	// Attribution explains each regressed e2e entry via its digest chain
	// and counter captures.
	Attribution []Attribution `json:"attribution,omitempty"`
}

// measureConfig is the simulation configuration every bench measurement
// runs: one-instruction warmup, the short bench ROI, self-profiling on (the
// measurements ARE the host profile), and the engine/telemetry variant the
// shared CLI flags selected.
func measureConfig(cf *cliflags.Common, scheme nomad.Scheme) nomad.Config {
	return nomad.Config{
		Scheme:             scheme,
		WarmupInstructions: 1,
		ROIInstructions:    benchROI,
		Engine:             nomad.EngineKind(cf.Engine),
		NoFastForward:      cf.NoFF,
		Telemetry: nomad.Telemetry{
			SelfProfile:      true,
			Timeline:         cf.Timeline,
			TimelineInterval: cf.Interval,
			TimelineMetrics:  cf.Metrics(),
			// Digest chains are always on so every E2E entry carries the
			// behavioral fingerprint comparisons attribute regressions
			// with; runDigestOverhead turns them off for its base side.
			Digests: true,
		},
	}
}

// writeTraceRun performs one NOMAD run under the benchmark configuration
// with trace capture enabled and writes the Perfetto file -trace named.
func writeTraceRun(cf *cliflags.Common) error {
	w, err := nomad.WorkloadByAbbr("cact")
	if err != nil {
		return err
	}
	cfg := measureConfig(cf, nomad.SchemeNOMAD)
	cfg.Telemetry.TraceDepth = cliflags.TraceEventDepth
	cfg.Telemetry.SpanDepth = cliflags.TraceSpanDepth
	res, err := nomad.Run(cfg, w)
	if err != nil {
		return err
	}
	out, err := os.Create(cf.Trace)
	if err != nil {
		return err
	}
	if err := res.WriteTrace(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// round2 trims measurement floats to two decimals so log records stay
// readable in both text and JSON encodings.
func round2(v float64) float64 { return math.Round(v*100) / 100 }

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}

// runE2E measures one scheme's simulation throughput on cactusADM with
// self-profiling attached, keeping the fastest of reps runs (throughput
// benchmarks take the best sample: it has the least scheduler noise).
func runE2E(cf *cliflags.Common, scheme nomad.Scheme, reps int) (E2E, error) {
	w, err := nomad.WorkloadByAbbr("cact")
	if err != nil {
		return E2E{}, err
	}
	best := E2E{Name: "e2e/" + string(scheme)}
	for i := 0; i < reps; i++ {
		res, err := nomad.Run(measureConfig(cf, scheme), w)
		if err != nil {
			return E2E{}, err
		}
		h := res.Host()
		if h == nil {
			return E2E{}, fmt.Errorf("run returned no host profile")
		}
		if h.SimCyclesPerSec > best.SimCyclesPerSec {
			best.SimCycles = h.SimCycles
			best.WallSeconds = h.WallSeconds
			best.SimCyclesPerSec = h.SimCyclesPerSec
			best.EventsPerSec = h.EventsPerSec
			best.PeakHeapBytes = h.PeakHeapInUseBytes
			best.SkipRatio = 0
			if h.SimCycles > 0 {
				best.SkipRatio = float64(h.SkippedCycles) / float64(h.SimCycles)
			}
			// Behavioral fingerprint for regression attribution. Every rep
			// runs the same seed, so any rep's digest and counters match
			// the best one's.
			best.Digest = res.Digests().Final()
			if snap := res.Metrics(); snap != nil {
				best.Metrics = snap.Counters
			}
		}
	}
	return best, nil
}

// runFFSpeedup measures end-to-end throughput with fast-forward on and off
// on single-core TDC: the blocking OS-managed scheme has the longest
// OS-suspension stalls, and a jump requires every core to be quiescent at
// once, so one core exposes the full span length (multi-core runs intersect
// the spans and see proportionally less).
func runFFSpeedup(cf *cliflags.Common, reps int) (*FFSpeedup, error) {
	w, err := nomad.WorkloadByAbbr("cact")
	if err != nil {
		return nil, err
	}
	measure := func(noFF bool) (float64, error) {
		var best float64
		for i := 0; i < reps; i++ {
			cfg := measureConfig(cf, nomad.SchemeTDC)
			cfg.Cores = 1
			cfg.NoFastForward = noFF
			res, err := nomad.Run(cfg, w)
			if err != nil {
				return 0, err
			}
			if h := res.Host(); h != nil && h.SimCyclesPerSec > best {
				best = h.SimCyclesPerSec
			}
		}
		return best, nil
	}
	on, err := measure(false)
	if err != nil {
		return nil, err
	}
	off, err := measure(true)
	if err != nil {
		return nil, err
	}
	sp := &FFSpeedup{Scheme: string(nomad.SchemeTDC), OnCyclesPerSec: on, OffCyclesPerSec: off}
	if off > 0 {
		sp.Speedup = on / off
	}
	return sp, nil
}

// runParSpeedup measures the shard-parallel tick phase's end-to-end speedup
// on multi-core NOMAD (the multi-channel HBM+DDR system): the same run with
// Workers 0 (sequential) and with one worker per available CPU (capped at
// the core count — more workers than shards is pure overhead), best-of-reps
// cycles/sec each. Fast-forward is disabled on both sides so the
// measurement covers the busy tick path the workers parallelize rather
// than the jump machinery.
func runParSpeedup(cf *cliflags.Common, reps int) (*ParSpeedup, error) {
	w, err := nomad.WorkloadByAbbr("cact")
	if err != nil {
		return nil, err
	}
	const cores = 8
	workers := runtime.NumCPU()
	if workers > cores {
		workers = cores
	}
	if workers < 2 {
		// Single-CPU host: run the full worker pool anyway so the committed
		// number covers the real machinery, with HostCPUs saying why the
		// ratio cannot exceed 1 there.
		workers = 2
	}
	measure := func(workerCount int) (float64, error) {
		var best float64
		for i := 0; i < reps; i++ {
			cfg := measureConfig(cf, nomad.SchemeNOMAD)
			cfg.Cores = cores
			cfg.Workers = workerCount
			cfg.NoFastForward = true
			res, err := nomad.Run(cfg, w)
			if err != nil {
				return 0, err
			}
			if h := res.Host(); h != nil && h.SimCyclesPerSec > best {
				best = h.SimCyclesPerSec
			}
		}
		return best, nil
	}
	seq, err := measure(0)
	if err != nil {
		return nil, err
	}
	par, err := measure(workers)
	if err != nil {
		return nil, err
	}
	sp := &ParSpeedup{
		Scheme: string(nomad.SchemeNOMAD), Cores: cores,
		Workers: workers, HostCPUs: runtime.NumCPU(),
		SeqCyclesPerSec: seq, ParCyclesPerSec: par,
	}
	if seq > 0 {
		sp.Speedup = par / seq
	}
	return sp, nil
}

// runDigestOverhead measures the digest-chain capture's slowdown: NOMAD on
// cactusADM with and without Telemetry.Digests at the default interval,
// best-of-reps cycles/sec each.
func runDigestOverhead(cf *cliflags.Common, reps int) (*DigestOverhead, error) {
	w, err := nomad.WorkloadByAbbr("cact")
	if err != nil {
		return nil, err
	}
	measure := func(digests bool) (float64, error) {
		var best float64
		for i := 0; i < reps; i++ {
			cfg := measureConfig(cf, nomad.SchemeNOMAD)
			cfg.Telemetry.Digests = digests
			res, err := nomad.Run(cfg, w)
			if err != nil {
				return 0, err
			}
			if h := res.Host(); h != nil && h.SimCyclesPerSec > best {
				best = h.SimCyclesPerSec
			}
		}
		return best, nil
	}
	base, err := measure(false)
	if err != nil {
		return nil, err
	}
	dg, err := measure(true)
	if err != nil {
		return nil, err
	}
	ov := &DigestOverhead{BaseCyclesPerSec: base, DigestCyclesPerSec: dg}
	if base > 0 {
		ov.OverheadPct = 100 * (base - dg) / base
	}
	return ov, nil
}

// runOverhead measures the timeline capture's slowdown: NOMAD on cactusADM
// with and without Config.Timeline at the default interval, best-of-reps
// cycles/sec each.
func runOverhead(cf *cliflags.Common, reps int) (*Overhead, error) {
	w, err := nomad.WorkloadByAbbr("cact")
	if err != nil {
		return nil, err
	}
	measure := func(timeline bool) (float64, error) {
		var best float64
		for i := 0; i < reps; i++ {
			cfg := measureConfig(cf, nomad.SchemeNOMAD)
			cfg.Telemetry.Timeline = timeline
			res, err := nomad.Run(cfg, w)
			if err != nil {
				return 0, err
			}
			if h := res.Host(); h != nil && h.SimCyclesPerSec > best {
				best = h.SimCyclesPerSec
			}
		}
		return best, nil
	}
	base, err := measure(false)
	if err != nil {
		return nil, err
	}
	tl, err := measure(true)
	if err != nil {
		return nil, err
	}
	ov := &Overhead{BaseCyclesPerSec: base, TimelineCyclesPerSec: tl}
	if base > 0 {
		ov.OverheadPct = 100 * (base - tl) / base
	}
	return ov, nil
}

// runObsOverhead measures the live-observation slowdown: NOMAD on cactusADM
// bare versus registered with an obs.RunTracker whose introspection server
// is scraped (GET /metrics + /runs) throughout the run, best-of-reps
// cycles/sec each. It builds a private server on a loopback port so the
// measurement covers the full observation path without needing -http.
func runObsOverhead(cf *cliflags.Common, reps int) (*ObsOverhead, error) {
	sp, ok := workload.ByAbbr("cact")
	if !ok {
		return nil, fmt.Errorf("workload cact not found")
	}
	cfg := system.DefaultConfig()
	cfg.Scheme = system.SchemeNOMAD
	cfg.WarmupInstructions = 1
	cfg.ROIInstructions = benchROI
	cfg.Engine = cf.Kind()
	cfg.FastForward = !cf.NoFF
	cfg.SelfProfile = true

	measure := func(tracker *obs.RunTracker, rep int) (float64, error) {
		m, err := system.New(cfg, sp)
		if err != nil {
			return 0, err
		}
		if tracker != nil {
			h := tracker.Start(fmt.Sprintf("bench/obs/%d", rep), obs.NewManifest(cfg, sp))
			reg := m.Metrics()
			m.SetProgress(func(p system.Progress) { h.Observe(p, reg) })
			defer h.Finish()
		}
		r, err := m.Run()
		if err != nil {
			return 0, err
		}
		if r.Host == nil {
			return 0, fmt.Errorf("run returned no host profile")
		}
		return r.Host.SimCyclesPerSec, nil
	}
	best := func(tracker *obs.RunTracker) (float64, error) {
		var b float64
		for i := 0; i < reps; i++ {
			c, err := measure(tracker, i)
			if err != nil {
				return 0, err
			}
			if c > b {
				b = c
			}
		}
		return b, nil
	}

	base, err := best(nil)
	if err != nil {
		return nil, err
	}

	tracker := obs.NewRunTracker()
	addr, err := obs.NewServer(tracker).Start("127.0.0.1:0", func(error) {})
	if err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		client := &http.Client{Timeout: time.Second}
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/runs"} {
				resp, err := client.Get("http://" + addr.String() + path)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			// The tracker refreshes registry snapshots at most every
			// 500 ms, so scraping faster only re-reads unchanged data;
			// this matches a live dashboard's cadence.
			time.Sleep(500 * time.Millisecond)
		}
	}()
	observed, err := best(tracker)
	close(stop)
	<-scraped
	if err != nil {
		return nil, err
	}

	ov := &ObsOverhead{BaseCyclesPerSec: base, ObservedCyclesPerSec: observed}
	if base > 0 {
		ov.OverheadPct = 100 * (base - observed) / base
	}
	return ov, nil
}

// runGoBench shells out to the Go toolchain for the package benchmarks and
// parses the standard -bench output.
func runGoBench(pattern string) ([]GoBench, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern, "-benchtime", "1x", ".")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%w\n%s", err, out)
	}
	return ParseGoBench(string(out)), nil
}

// ParseGoBench extracts Benchmark lines from `go test -bench` output. The
// trailing -N GOMAXPROCS suffix is stripped so names stay stable across
// machines.
func ParseGoBench(out string) []GoBench {
	var res []GoBench
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		res = append(res, GoBench{Name: name, NsPerOp: ns})
	}
	return res
}

// Delta is one compared metric.
type Delta struct {
	Name string
	// Old and New are in the metric's native unit (cycles/sec or ns/op).
	Old, New float64
	// Change is the relative change, signed so that POSITIVE is better
	// (throughput up, ns/op down).
	Change     float64
	Regression bool
}

// String renders one comparison line.
func (d Delta) String() string {
	tag := ""
	if d.Regression {
		tag = "  REGRESSION"
	}
	return fmt.Sprintf("%-40s %12.3g -> %12.3g  %+6.1f%%%s", d.Name, d.Old, d.New, 100*d.Change, tag)
}

// Compare diffs two BENCH files metric-by-metric. Metrics present in only
// one file produce no delta (schema growth is not a regression) — Coverage
// reports them so they surface instead of disappearing. threshold is the
// relative worsening flagged as a regression.
func Compare(prev, cur *File, threshold float64) []Delta {
	var deltas []Delta
	higherBetter := func(name string, old, new float64) {
		if old <= 0 {
			return
		}
		ch := (new - old) / old
		deltas = append(deltas, Delta{Name: name, Old: old, New: new, Change: ch, Regression: ch < -threshold})
	}
	lowerBetter := func(name string, old, new float64) {
		if old <= 0 {
			return
		}
		ch := (old - new) / old
		deltas = append(deltas, Delta{Name: name, Old: old, New: new, Change: ch, Regression: ch < -threshold})
	}
	prevE2E := map[string]E2E{}
	for _, e := range prev.E2E {
		prevE2E[e.Name] = e
	}
	for _, e := range cur.E2E {
		if p, ok := prevE2E[e.Name]; ok {
			higherBetter(e.Name+" cycles/s", p.SimCyclesPerSec, e.SimCyclesPerSec)
		}
	}
	if prev.Timeline != nil && cur.Timeline != nil {
		// The overhead itself is a lower-is-better percentage; compare the
		// absolute timeline-on throughput, which is what users experience.
		higherBetter("timeline cycles/s", prev.Timeline.TimelineCyclesPerSec, cur.Timeline.TimelineCyclesPerSec)
	}
	if prev.Obs != nil && cur.Obs != nil {
		higherBetter("observed cycles/s", prev.Obs.ObservedCyclesPerSec, cur.Obs.ObservedCyclesPerSec)
	}
	if prev.Digest != nil && cur.Digest != nil {
		higherBetter("digest cycles/s", prev.Digest.DigestCyclesPerSec, cur.Digest.DigestCyclesPerSec)
	}
	if prev.FastForward != nil && cur.FastForward != nil && prev.FastForward.Scheme == cur.FastForward.Scheme {
		// Gate on the absolute fast-forwarded throughput. The on/off ratio
		// stays advisory (never a Regression): it shrinks by construction
		// whenever the non-fast-forwarded busy path gets faster, which is an
		// improvement, not a regression.
		higherBetter("ff on "+cur.FastForward.Scheme+" cycles/s", prev.FastForward.OnCyclesPerSec, cur.FastForward.OnCyclesPerSec)
		if old, new := prev.FastForward.Speedup, cur.FastForward.Speedup; old > 0 {
			deltas = append(deltas, Delta{Name: "ff speedup " + cur.FastForward.Scheme + " (advisory)",
				Old: old, New: new, Change: (new - old) / old})
		}
	}
	if prev.Parallel != nil && cur.Parallel != nil && prev.Parallel.Scheme == cur.Parallel.Scheme {
		// Gate on the absolute sequential throughput of the multi-core
		// config; the parallel throughput and speedup stay advisory because
		// both are bounded by the measuring host's CPU count, which CI
		// runners do not guarantee.
		higherBetter("par seq "+cur.Parallel.Scheme+" cycles/s", prev.Parallel.SeqCyclesPerSec, cur.Parallel.SeqCyclesPerSec)
		if old, new := prev.Parallel.Speedup, cur.Parallel.Speedup; old > 0 {
			deltas = append(deltas, Delta{Name: "parallel speedup " + cur.Parallel.Scheme + " (advisory)",
				Old: old, New: new, Change: (new - old) / old})
		}
	}
	prevGB := map[string]GoBench{}
	for _, b := range prev.GoBench {
		prevGB[b.Name] = b
	}
	for _, b := range cur.GoBench {
		if p, ok := prevGB[b.Name]; ok {
			lowerBetter(b.Name+" ns/op", p.NsPerOp, b.NsPerOp)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// Coverage lists the measurements present in only one of two BENCH files —
// the entries Compare necessarily skips. Schema growth is not a regression,
// but silently comparing a shrunken file reads as "all clear" when it is
// not, so comparisons print both lists.
func Coverage(prev, cur *File) (added, dropped []string) {
	names := func(f *File) map[string]bool {
		s := map[string]bool{}
		for _, e := range f.E2E {
			s[e.Name] = true
		}
		for _, b := range f.GoBench {
			s[b.Name] = true
		}
		if f.Timeline != nil {
			s["timeline_overhead"] = true
		}
		if f.Obs != nil {
			s["obs_overhead"] = true
		}
		if f.Digest != nil {
			s["digest_overhead"] = true
		}
		if f.FastForward != nil {
			s["fast_forward"] = true
		}
		if f.Parallel != nil {
			s["parallel"] = true
		}
		return s
	}
	p, c := names(prev), names(cur)
	for n := range c {
		if !p[n] {
			added = append(added, n)
		}
	}
	for n := range p {
		if !c[n] {
			dropped = append(dropped, n)
		}
	}
	sort.Strings(added)
	sort.Strings(dropped)
	return added, dropped
}

// Attribution explains one regressed end-to-end entry by its behavioral
// captures: either the digest chains match — the simulated behavior is
// identical and the slowdown is host-side (code, toolchain, machine) — or
// they differ and the top counter deltas say what changed.
type Attribution struct {
	Name string `json:"name"`
	// BehaviorIdentical is true when both files carry the run's digest and
	// they agree.
	BehaviorIdentical bool   `json:"behavior_identical"`
	Note              string `json:"note"`
	// Deltas ranks the counter changes when the behavior differs.
	Deltas []diag.MetricDelta `json:"deltas,omitempty"`
}

// Attribute builds attributions for the regressed e2e entries in deltas,
// keeping at most topK counter deltas each (0 = 5).
func Attribute(prev, cur *File, deltas []Delta, topK int) []Attribution {
	if topK <= 0 {
		topK = 5
	}
	prevE2E := map[string]E2E{}
	for _, e := range prev.E2E {
		prevE2E[e.Name] = e
	}
	curE2E := map[string]E2E{}
	for _, e := range cur.E2E {
		curE2E[e.Name] = e
	}
	var out []Attribution
	for _, d := range deltas {
		name, ok := strings.CutSuffix(d.Name, " cycles/s")
		if !d.Regression || !ok {
			continue
		}
		p, pok := prevE2E[name]
		c, cok := curE2E[name]
		if !pok || !cok {
			continue
		}
		a := Attribution{Name: name}
		switch {
		case p.Digest == "" || c.Digest == "":
			a.Note = "no digest recorded on one side; cannot separate behavioral from host-side change"
		case p.Digest == c.Digest:
			a.BehaviorIdentical = true
			a.Note = "digest chains match: simulated behavior is identical, the slowdown is host-side"
		default:
			a.Note = fmt.Sprintf("digest %s -> %s: simulated behavior changed", p.Digest, c.Digest)
			pm := make(map[string]float64, len(p.Metrics))
			for k, v := range p.Metrics {
				pm[k] = float64(v)
			}
			cm := make(map[string]float64, len(c.Metrics))
			for k, v := range c.Metrics {
				cm[k] = float64(v)
			}
			md, _, _ := diag.RankDeltas(pm, cm)
			if len(md) > topK {
				md = md[:topK]
			}
			a.Deltas = md
		}
		out = append(out, a)
	}
	return out
}

// resolveBaseline turns the -compare flag into a baseline path, degrading
// gracefully instead of failing the pipeline:
//
//	""        latest BENCH_*.json in -out (the pre-existing default)
//	"latest"  latest committed baseline in bench/, falling back to -out
//	a glob    expanded here, so `-compare 'bench/BENCH_*.json'` works even
//	          when the shell passed the pattern through unexpanded
//	a path    used as-is
//
// An empty result means "no baseline"; note says why, for the user-facing
// message.
func resolveBaseline(compare, outDir, outPath string) (path, note string) {
	switch {
	case compare == "":
		if p := latestBenchFile(outDir, outPath); p != "" {
			return p, ""
		}
		return "", "no previous BENCH file in " + outDir
	case compare == "latest":
		if p := latestBenchFile("bench", outPath); p != "" {
			return p, ""
		}
		if outDir != "bench" {
			if p := latestBenchFile(outDir, outPath); p != "" {
				return p, ""
			}
		}
		return "", "no committed BENCH baseline found"
	case strings.ContainsAny(compare, "*?["):
		matches, _ := filepath.Glob(compare)
		sort.Strings(matches)
		for i := len(matches) - 1; i >= 0; i-- {
			if matches[i] != outPath {
				return matches[i], ""
			}
		}
		return "", "no BENCH file matches " + compare
	default:
		return compare, ""
	}
}

// latestBenchFile returns the lexically latest BENCH_*.json in dir other
// than exclude ("" when none exists). BENCH filenames embed ISO dates, so
// lexical order is chronological.
func latestBenchFile(dir, exclude string) string {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if matches[i] != exclude {
			return matches[i]
		}
	}
	return ""
}

func writeFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("unsupported schema %q (want %q)", f.Schema, Schema)
	}
	return &f, nil
}
