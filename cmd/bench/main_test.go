package main

import (
	"path/filepath"
	"testing"
)

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: nomad
BenchmarkSimulatorThroughput-8   	       1	512345678 ns/op	  92345678 cycles/s
BenchmarkFig2-8                  	       1	903456789 ns/op
PASS
ok  	nomad	2.345s
`
	got := ParseGoBench(out)
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(got), got)
	}
	if got[0].Name != "BenchmarkSimulatorThroughput" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", got[0].Name)
	}
	if got[0].NsPerOp != 512345678 {
		t.Errorf("ns/op = %v, want 512345678", got[0].NsPerOp)
	}
	if got[1].Name != "BenchmarkFig2" || got[1].NsPerOp != 903456789 {
		t.Errorf("second entry = %+v", got[1])
	}
}

func TestParseGoBenchIgnoresJunk(t *testing.T) {
	if got := ParseGoBench("FAIL\nBenchmarkX-8 bogus line\n"); len(got) != 0 {
		t.Fatalf("parsed junk as benchmarks: %+v", got)
	}
}

func TestCompare(t *testing.T) {
	prev := &File{
		Schema: Schema,
		E2E: []E2E{
			{Name: "e2e/NOMAD", SimCyclesPerSec: 100},
			{Name: "e2e/TDC", SimCyclesPerSec: 200},
			{Name: "e2e/Gone", SimCyclesPerSec: 50},
		},
		Timeline: &Overhead{TimelineCyclesPerSec: 95},
		GoBench:  []GoBench{{Name: "BenchmarkX", NsPerOp: 1000}},
	}
	cur := &File{
		Schema: Schema,
		E2E: []E2E{
			{Name: "e2e/NOMAD", SimCyclesPerSec: 85}, // -15%: regression at 10%
			{Name: "e2e/TDC", SimCyclesPerSec: 210},  // +5%: fine
			{Name: "e2e/New", SimCyclesPerSec: 70},   // no baseline: skipped
		},
		Timeline: &Overhead{TimelineCyclesPerSec: 96},
		GoBench:  []GoBench{{Name: "BenchmarkX", NsPerOp: 1200}}, // +20% ns/op: regression
	}
	deltas := Compare(prev, cur, 0.10)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %+v", len(deltas), deltas)
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["e2e/NOMAD cycles/s"]; !d.Regression {
		t.Errorf("15%% throughput drop not flagged: %+v", d)
	}
	if d := byName["e2e/TDC cycles/s"]; d.Regression {
		t.Errorf("5%% improvement flagged as regression: %+v", d)
	}
	if d := byName["BenchmarkX ns/op"]; !d.Regression {
		t.Errorf("20%% ns/op increase not flagged: %+v", d)
	}
	if d := byName["timeline cycles/s"]; d.Regression {
		t.Errorf("timeline improvement flagged: %+v", d)
	}
	if _, ok := byName["e2e/Gone cycles/s"]; ok {
		t.Error("metric absent from current file should be skipped")
	}
	if _, ok := byName["e2e/New cycles/s"]; ok {
		t.Error("metric absent from previous file should be skipped")
	}

	// The one-sided entries Compare skips must surface through Coverage.
	added, dropped := Coverage(prev, cur)
	if len(added) != 1 || added[0] != "e2e/New" {
		t.Errorf("added = %v, want [e2e/New]", added)
	}
	if len(dropped) != 1 || dropped[0] != "e2e/Gone" {
		t.Errorf("dropped = %v, want [e2e/Gone]", dropped)
	}
}

func TestCoverageSections(t *testing.T) {
	prev := &File{Schema: Schema, Timeline: &Overhead{}, FastForward: &FFSpeedup{}}
	cur := &File{Schema: Schema, Timeline: &Overhead{}, Digest: &DigestOverhead{}, Obs: &ObsOverhead{}}
	added, dropped := Coverage(prev, cur)
	if want := []string{"digest_overhead", "obs_overhead"}; len(added) != 2 || added[0] != want[0] || added[1] != want[1] {
		t.Errorf("added = %v, want %v", added, want)
	}
	if len(dropped) != 1 || dropped[0] != "fast_forward" {
		t.Errorf("dropped = %v, want [fast_forward]", dropped)
	}
}

func TestAttribute(t *testing.T) {
	prev := &File{
		Schema: Schema,
		E2E: []E2E{
			{Name: "e2e/NOMAD", SimCyclesPerSec: 100, Digest: "aaaa",
				Metrics: map[string]uint64{"dc.hits": 100, "dc.misses": 10, "same": 5}},
			{Name: "e2e/TDC", SimCyclesPerSec: 100, Digest: "cccc"},
			{Name: "e2e/Ideal", SimCyclesPerSec: 100},
		},
	}
	cur := &File{
		Schema: Schema,
		E2E: []E2E{
			{Name: "e2e/NOMAD", SimCyclesPerSec: 50, Digest: "bbbb",
				Metrics: map[string]uint64{"dc.hits": 80, "dc.misses": 30, "same": 5}},
			{Name: "e2e/TDC", SimCyclesPerSec: 50, Digest: "cccc"},
			{Name: "e2e/Ideal", SimCyclesPerSec: 50},
		},
	}
	deltas := Compare(prev, cur, 0.10)
	atts := Attribute(prev, cur, deltas, 1)
	if len(atts) != 3 {
		t.Fatalf("got %d attributions, want 3: %+v", len(atts), atts)
	}
	byName := map[string]Attribution{}
	for _, a := range atts {
		byName[a.Name] = a
	}
	// Digests differ: behavioral change with ranked counter deltas, capped
	// at topK=1 (dc.misses has the largest relative change).
	nomadAtt := byName["e2e/NOMAD"]
	if nomadAtt.BehaviorIdentical {
		t.Error("differing digests reported as identical behavior")
	}
	if len(nomadAtt.Deltas) != 1 || nomadAtt.Deltas[0].Name != "dc.misses" {
		t.Errorf("deltas = %+v, want one entry for dc.misses", nomadAtt.Deltas)
	}
	// Digests match: host-side regression, no metric deltas.
	tdcAtt := byName["e2e/TDC"]
	if !tdcAtt.BehaviorIdentical || len(tdcAtt.Deltas) != 0 {
		t.Errorf("matching digests: %+v", tdcAtt)
	}
	// No digest on either side: explicitly inconclusive.
	idealAtt := byName["e2e/Ideal"]
	if idealAtt.BehaviorIdentical || len(idealAtt.Deltas) != 0 || idealAtt.Note == "" {
		t.Errorf("digest-less entry: %+v", idealAtt)
	}

	// Non-regressed runs produce no attribution.
	if atts := Attribute(prev, prev, Compare(prev, prev, 0.10), 0); len(atts) != 0 {
		t.Errorf("self-comparison attributed: %+v", atts)
	}
}

func TestFileRoundTripAndSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	f := &File{
		Schema: Schema, Date: "2026-08-05", GoVersion: "go-test", Host: "test/none",
		E2E:      []E2E{{Name: "e2e/NOMAD", SimCycles: 1, SimCyclesPerSec: 2}},
		Timeline: &Overhead{BaseCyclesPerSec: 3, TimelineCyclesPerSec: 2.9, OverheadPct: 3.3},
	}
	path := filepath.Join(dir, "BENCH_2026-08-05.json")
	if err := writeFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != f.Date || len(got.E2E) != 1 || got.E2E[0].Name != "e2e/NOMAD" {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	bad := &File{Schema: "nomad-bench/999"}
	badPath := filepath.Join(dir, "BENCH_2026-08-06.json")
	if err := writeFile(badPath, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := readFile(badPath); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestResolveBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-08-01.json", "BENCH_2026-08-02.json"} {
		if err := writeFile(filepath.Join(dir, name), &File{Schema: Schema}); err != nil {
			t.Fatal(err)
		}
	}
	outPath := filepath.Join(dir, "BENCH_2026-08-02.json")
	prev := filepath.Join(dir, "BENCH_2026-08-01.json")

	// Default: newest file in -out other than today's own output.
	if got, _ := resolveBaseline("", dir, outPath); got != prev {
		t.Errorf("default = %q, want %q", got, prev)
	}
	// Empty -out dir: no baseline, but a reason for the message.
	if got, note := resolveBaseline("", t.TempDir(), outPath); got != "" || note == "" {
		t.Errorf("empty dir = (%q, %q), want empty path + note", got, note)
	}
	// "latest" prefers the committed bench/ dir, falling back to -out.
	if got, _ := resolveBaseline("latest", dir, outPath); got != prev {
		t.Errorf("latest fallback = %q, want %q", got, prev)
	}
	// A glob the shell did not expand resolves to the newest match.
	if got, _ := resolveBaseline(filepath.Join(dir, "BENCH_*.json"), dir, outPath); got != prev {
		t.Errorf("glob = %q, want %q", got, prev)
	}
	if got, note := resolveBaseline(filepath.Join(dir, "NOPE_*.json"), dir, outPath); got != "" || note == "" {
		t.Errorf("unmatched glob = (%q, %q), want empty path + note", got, note)
	}
	// An explicit path passes through untouched, even if it does not exist.
	explicit := filepath.Join(dir, "BENCH_missing.json")
	if got, _ := resolveBaseline(explicit, dir, outPath); got != explicit {
		t.Errorf("explicit = %q, want %q", got, explicit)
	}
}

func TestLatestBenchFile(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-08-01.json", "BENCH_2026-08-03.json", "BENCH_2026-08-02.json"} {
		if err := writeFile(filepath.Join(dir, name), &File{Schema: Schema}); err != nil {
			t.Fatal(err)
		}
	}
	latest := filepath.Join(dir, "BENCH_2026-08-03.json")
	if got := latestBenchFile(dir, ""); got != latest {
		t.Errorf("latest = %q, want %q", got, latest)
	}
	// Excluding today's own file returns the previous one.
	if got := latestBenchFile(dir, latest); got != filepath.Join(dir, "BENCH_2026-08-02.json") {
		t.Errorf("latest excluding newest = %q", got)
	}
	if got := latestBenchFile(t.TempDir(), ""); got != "" {
		t.Errorf("empty dir should return \"\", got %q", got)
	}
}
