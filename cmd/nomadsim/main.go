// Command nomadsim runs one simulation: a memory scheme on a Table I
// workload surrogate, printing the full measurement set.
//
// Usage:
//
//	nomadsim -scheme NOMAD -workload cact
//	nomadsim -scheme TiD -workload pr -cores 4 -pcshrs 8 -roi 2000000
//	nomadsim -scheme NOMAD -workload sssp -trace out.json   # Perfetto trace
//	nomadsim -list    # show workloads
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"nomad/internal/cliflags"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/obs"
	"nomad/internal/schemes"
	"nomad/internal/system"
	"nomad/internal/workload"
)

func main() {
	debug.SetGCPercent(600)
	var (
		scheme   = flag.String("scheme", "NOMAD", "Baseline | TiD | TDC | NOMAD | Ideal")
		wl       = flag.String("workload", "cact", "Table I workload abbreviation")
		cores    = flag.Int("cores", 0, "override core count")
		pcshrs   = flag.Int("pcshrs", 0, "override PCSHR count (NOMAD)")
		buffers  = flag.Int("buffers", 0, "override page copy buffer count (NOMAD)")
		distrib  = flag.Bool("distributed", false, "distributed back-ends (NOMAD)")
		warmup   = flag.Uint64("warmup", 0, "override warmup instructions per core")
		roi      = flag.Uint64("roi", 0, "override ROI instructions per core")
		seed     = flag.Uint64("seed", 0, "override workload seed")
		touch    = flag.Uint64("touch", 0, "selective caching: cache on Nth walk (OS-managed schemes)")
		asJSON   = flag.Bool("json", false, "emit the result as JSON (deprecated alias for -format json)")
		progress = flag.Bool("progress", false, "print simulated-cycle progress and ETA to stderr at each interval tick")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	cf := cliflags.Register(flag.CommandLine)
	flag.Parse()
	if err := cf.Check("text", "json"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := cf.Logger(os.Stderr)

	if *list {
		fmt.Printf("%-6s %-12s %-7s %-9s %s\n", "abbr", "name", "class", "suite", "footprint")
		for _, sp := range workload.Specs() {
			fmt.Printf("%-6s %-12s %-7s %-9s %d MB\n", sp.Abbr, sp.Name, sp.Class, sp.Suite,
				sp.FootprintBytes()/(1024*1024))
		}
		return
	}

	sp, ok := workload.ByAbbr(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *wl)
		os.Exit(2)
	}
	cfg := system.DefaultConfig()
	cfg.Scheme = system.SchemeName(*scheme)
	if *cores > 0 {
		cfg.Cores = *cores
	}
	if *pcshrs > 0 {
		cfg.Backend.PCSHRs = *pcshrs
	}
	if *buffers > 0 {
		cfg.Backend.CopyBuffers = *buffers
	}
	cfg.Backend.Distributed = *distrib
	if *warmup > 0 {
		cfg.WarmupInstructions = *warmup
	}
	if *roi > 0 {
		cfg.ROIInstructions = *roi
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}
	cfg.Frontend.CacheTouchThreshold = *touch
	cf.ApplySystem(&cfg)
	tracker := cf.StartObs(logger)
	cf.StartPprof(os.Stderr)

	m, err := system.New(cfg, sp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	man := obs.NewManifest(cfg, sp)
	key := *scheme + "/" + sp.Abbr
	h := tracker.Start(key, man) // nil-safe: nil tracker, nil handle
	if *progress || h != nil {
		var printFn func(system.Progress)
		if *progress {
			printFn = system.ProgressPrinter(os.Stderr, sp.Abbr)
		}
		reg := m.Metrics()
		m.SetProgress(func(p system.Progress) {
			if printFn != nil {
				printFn(p)
			}
			h.Observe(p, reg)
		})
	}
	r, err := m.Run()
	h.Finish()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if t := r.Metrics.Trace; t != nil {
		if t.EventsDropped > 0 {
			logger.Warn("event ring dropped events; raise trace depth for full coverage",
				"dropped", t.EventsDropped, "total", t.EventsDropped+t.Events)
		}
		if t.SpansDropped > 0 {
			logger.Warn("span ring dropped spans; raise span depth or sampling period",
				"dropped", t.SpansDropped, "total", t.SpansDropped+t.Spans)
		}
	}

	if cf.Trace != "" && r.Trace != nil {
		f, err := os.Create(cf.Trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run := metrics.PerfettoRun{Name: *scheme + "/" + sp.Abbr, Dump: r.Trace}
		if err := metrics.WritePerfetto(f, run); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote Perfetto trace to %s — open at https://ui.perfetto.dev\n", cf.Trace)
	}

	if *asJSON || cf.Format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		// The deterministic result plus the host-side manifest, as sibling
		// fields: "result" stays byte-identical across same-seed runs.
		doc := struct {
			Result   *system.Result `json:"result"`
			Manifest *obs.Manifest  `json:"manifest"`
		}{r, man}
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("manifest            %s\n", man.Address)
	fmt.Printf("scheme              %s\n", r.Scheme)
	fmt.Printf("workload            %s (%s, %s)\n", sp.Name, sp.Abbr, sp.Class)
	fmt.Printf("cores               %d\n", r.Cores)
	fmt.Printf("ROI cycles          %d (%.3f ms)\n", r.Cycles, r.Seconds*1e3)
	fmt.Printf("instructions        %d\n", r.Instructions)
	fmt.Printf("IPC (system)        %.3f\n", r.IPC)
	fmt.Printf("OS stall ratio      %.2f%%\n", 100*r.OSStallRatio)
	fmt.Printf("mem stall ratio     %.2f%%\n", 100*r.MemStallRatio)
	if total := r.CPIStack.Total(); total > 0 {
		st := r.CPIStack
		pct := func(v uint64) float64 { return 100 * float64(v) / float64(total) }
		fmt.Printf("cpi stack           compute %.1f%% tag_miss %.1f%% frontend %.1f%%\n",
			pct(st.Compute), pct(st.TagMiss), pct(st.Frontend))
		for c := mem.StallCause(0); c < mem.NumStallCauses; c++ {
			if st.Mem[c] == 0 {
				continue
			}
			fmt.Printf("  mem %-12s    %.1f%%\n", c, pct(st.Mem[c]))
		}
	}
	fmt.Printf("avg DC access time  %.1f cycles\n", r.AvgDCAccessTime)
	fmt.Printf("LLC misses          %d (%.1f per us)\n", r.LLCMisses, r.LLCMPMS)
	fmt.Printf("RMHB                %.2f GB/s\n", r.RMHBGBs)
	fmt.Printf("tag misses          %d (avg latency %.0f, max %d cycles)\n",
		r.TagMisses, r.AvgTagMgmtLatency, r.MaxTagMgmtLatency)
	fmt.Printf("evictions           %d (%d dirty)\n", r.Evictions, r.DirtyEvictions)
	fmt.Printf("data hits/misses    %d / %d (buffer hit rate %.1f%%)\n",
		r.DataHits, r.DataMisses, 100*r.BufferHitRate)
	fmt.Printf("sub-entry overflow  %d\n", r.SubEntryOverflows)
	fmt.Printf("HBM                 %.1f GB/s (util %.1f%%, row hit %.1f%%, read lat %.0f cyc)\n",
		r.HBMGBs, 100*r.HBMUtilization, 100*r.HBMRowHitRate, r.HBMAvgReadLat)
	fmt.Printf("DDR read latency    %.0f cyc\n", r.DDRAvgReadLat)
	for k := 0; k < mem.NumKinds; k++ {
		if r.HBMBytesByKind[k] == 0 {
			continue
		}
		fmt.Printf("  hbm %-10s     %.2f GB/s\n", mem.Kind(k), float64(r.HBMBytesByKind[k])/r.Seconds/1e9)
	}
	fmt.Printf("off-package         %.1f GB/s (util %.1f%%)\n", r.OffPkgGBs, 100*r.DDRUtilization)
	for k := 0; k < mem.NumKinds; k++ {
		if r.DDRBytesByKind[k] == 0 {
			continue
		}
		fmt.Printf("  ddr %-10s     %.2f GB/s\n", mem.Kind(k), float64(r.DDRBytesByKind[k])/r.Seconds/1e9)
	}
	if tid, ok := m.Scheme().(*schemes.TiD); ok {
		ts := tid.TiDStats()
		fmt.Printf("tid                 hits %d misses %d (rate %.1f%%) coalesced %d wb %d mshrStalls %d\n",
			ts.Hits, ts.Misses, 100*ts.MissRate(), ts.Coalesced, ts.Writebacks, ts.MSHRStalls)
	}
	if dc := r.Metrics.Digests; dc != nil {
		fmt.Printf("digest chain        %d windows x %d cycles, final %s (compare runs with nomaddiff)\n",
			dc.Windows(), dc.Interval, dc.Final())
	}
	if tl := r.Metrics.Timeline; tl != nil {
		fmt.Printf("timeline            %d windows x %d cycles, %d metrics (full columns with -json)\n",
			tl.Windows(), tl.Interval, len(tl.Metrics))
		printTimelineDigest(tl)
	}
	if h := r.Host; h != nil {
		fmt.Printf("host                %.2fs wall, %.2f Mcyc/s, %.2f Mevents/s, peak heap %.1f MB, %d GC pauses (%.2f ms)\n",
			h.WallSeconds, h.SimCyclesPerSec/1e6, h.EventsPerSec/1e6,
			float64(h.PeakHeapInUseBytes)/(1024*1024), h.GCPauses, float64(h.GCPauseTotalNs)/1e6)
	}
}

// timelineDigestCols are the whole-system columns the text rendering shows;
// the full per-core/per-kind set is available under -json.
var timelineDigestCols = []string{"sim.ipc", "dc.hit_rate", "hbm.row_conflict_rate", "backend.pcshr_highwater"}

// printTimelineDigest renders a compact per-window table of the digest
// columns that were actually collected.
func printTimelineDigest(tl *metrics.TimelineSnapshot) {
	var cols []string
	for _, c := range timelineDigestCols {
		if tl.Metric(c) != nil {
			cols = append(cols, c)
		}
	}
	if len(cols) == 0 {
		return
	}
	fmt.Printf("  %-14s", "end (kcyc)")
	for _, c := range cols {
		fmt.Printf("  %s", c)
	}
	fmt.Println()
	for i, end := range tl.Cycles {
		fmt.Printf("  %-14d", end/1000)
		for _, c := range cols {
			fmt.Printf("  %*.3f", len(c), tl.Metric(c)[i])
		}
		fmt.Println()
	}
}
