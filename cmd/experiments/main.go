// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run table1            # one artifact
//	experiments -run fig9,fig11        # several
//	experiments -run all               # the whole evaluation
//	experiments -list                  # show what is available
//	experiments -run fig9 -format json # machine-readable output
//
// -format selects the rendering: "text" (default) prints each table/figure
// as in the paper; "json" streams one JSON document of the structured report
// — sections plus every underlying run's full metrics snapshot — per
// completed experiment, so partial output survives cancellation, and is
// byte-identical across same-seed invocations; "csv" flattens every table
// row, prefixed by experiment ID and section index. Progress and timing go
// to stderr in the machine-readable formats so stdout stays parseable.
//
// -trace FILE additionally captures per-access latency spans and machine
// events in every run and writes one Perfetto/Chrome trace-event JSON file
// covering all completed runs; open it at https://ui.perfetto.dev. The file
// is written (with whatever completed) even when the batch is interrupted.
//
// -fast trades precision for speed (short warmup/ROI), useful for smoke
// checks. Interrupting (Ctrl-C) cancels in-flight simulations at their next
// sampling window.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"nomad/internal/cliflags"
	"nomad/internal/harness"
	"nomad/internal/metrics"
	"nomad/internal/system"
)

func main() {
	// Simulations allocate short-lived events at a high rate; a lazier GC
	// trades memory for a large speedup on small machines.
	debug.SetGCPercent(600)
	var (
		runIDs   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		fast     = flag.Bool("fast", false, "short warmup/ROI (quick, less precise)")
		parallel = flag.Int("p", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print each run's summary line (to stderr)")
		progress = flag.Bool("progress", false, "print per-run progress and ETA to stderr at each interval tick")
	)
	cf := cliflags.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if err := cf.Check("text", "json", "csv"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := cf.Logger(os.Stderr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := harness.Options{
		Fast: *fast, Parallelism: *parallel, Verbose: *verbose, Logger: logger,
	}
	cf.ApplyOptions(&opts)
	if *progress {
		opts.Progress = func(key string) func(system.Progress) {
			return system.ProgressPrinter(os.Stderr, key)
		}
	}
	opts.Tracker = cf.StartObs(logger)
	cf.StartPprof(os.Stderr)
	var exps []harness.Experiment
	if *runIDs == "all" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	var traceRuns []metrics.PerfettoRun
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		// Flush whatever trace data completed runs produced before exiting,
		// so an interrupted batch still yields an inspectable trace.
		flushTrace(cf.Trace, traceRuns)
		os.Exit(1)
	}
	for _, e := range exps {
		start := time.Now()
		if cf.Format == "text" {
			fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		}
		rep, err := e.Run(ctx, opts)
		if err != nil {
			fail("%s failed: %v", e.ID, err)
		}
		for _, warn := range rep.Warnings {
			logger.Warn("data-quality warning", "experiment", e.ID, "detail", warn)
		}
		traceRuns = append(traceRuns, collectTraces(e.ID, rep)...)
		elapsed := time.Since(start).Round(time.Millisecond)
		switch cf.Format {
		case "text":
			if err := rep.WriteText(os.Stdout); err != nil {
				fail("%s: %v", e.ID, err)
			}
			fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed)
		case "csv":
			if err := writeCSV(os.Stdout, rep); err != nil {
				fail("%s: %v", e.ID, err)
			}
			logger.Info("experiment complete", "experiment", e.ID, "elapsed", elapsed.String())
		case "json":
			// Streamed: one document per completed experiment, so output
			// survives cancellation mid-batch.
			if err := enc.Encode(rep); err != nil {
				fail("%s: encode: %v", e.ID, err)
			}
			logger.Info("experiment complete", "experiment", e.ID, "elapsed", elapsed.String())
		}
	}
	if err := flushTrace(cf.Trace, traceRuns); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
}

// collectTraces gathers the per-run trace dumps of one experiment in
// deterministic (sorted key) order.
func collectTraces(expID string, rep *harness.Report) []metrics.PerfettoRun {
	keys := make([]string, 0, len(rep.Runs))
	for k, res := range rep.Runs {
		if res.Trace != nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	runs := make([]metrics.PerfettoRun, len(keys))
	for i, k := range keys {
		runs[i] = metrics.PerfettoRun{Name: expID + "/" + k, Dump: rep.Runs[k].Trace}
	}
	return runs
}

// flushTrace writes the Perfetto file when -trace was given and any run
// produced a dump. A nil error is returned when there is nothing to do.
func flushTrace(path string, runs []metrics.PerfettoRun) error {
	if path == "" || len(runs) == 0 {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.WritePerfetto(f, runs...); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote Perfetto trace (%d runs) to %s — open at https://ui.perfetto.dev\n", len(runs), path)
	return nil
}

// writeCSV flattens every table of the report: each table emits its header
// and rows, all prefixed with the experiment ID and section index so several
// tables (and experiments) concatenate into one parseable stream. A trailing
// "manifest" section lists each run's content address and wall-clock
// duration.
func writeCSV(w io.Writer, rep *harness.Report) error {
	cw := csv.NewWriter(w)
	for si, sec := range rep.Sections {
		if sec.Table == nil {
			continue
		}
		if err := cw.Write(append([]string{"experiment", "section"}, sec.Table.Header...)); err != nil {
			return err
		}
		for _, row := range sec.Table.Rows {
			if err := cw.Write(append([]string{rep.ID, strconv.Itoa(si)}, row...)); err != nil {
				return err
			}
		}
	}
	if len(rep.Manifests) > 0 {
		if err := cw.Write([]string{"experiment", "section", "run", "manifest", "run_seconds"}); err != nil {
			return err
		}
		keys := make([]string, 0, len(rep.Manifests))
		for k := range rep.Manifests {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			addr := ""
			if m := rep.Manifests[k]; m != nil {
				addr = m.Address
			}
			secs := strconv.FormatFloat(rep.RunSeconds[k], 'f', 3, 64)
			if err := cw.Write([]string{rep.ID, "manifest", k, addr, secs}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
