// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run table1            # one artifact
//	experiments -run fig9,fig11        # several
//	experiments -run all               # the whole evaluation
//	experiments -list                  # show what is available
//	experiments -run fig9 -format json # machine-readable output
//
// -format selects the rendering: "text" (default) prints each table/figure
// as in the paper; "json" emits one JSON array of structured reports —
// sections plus every underlying run's full metrics snapshot — and is
// byte-identical across same-seed invocations; "csv" flattens every table
// row, prefixed by experiment ID and section index. Progress and timing go
// to stderr in the machine-readable formats so stdout stays parseable.
//
// -fast trades precision for speed (short warmup/ROI), useful for smoke
// checks. Interrupting (Ctrl-C) cancels in-flight simulations at their next
// sampling window.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"nomad/internal/harness"
)

func main() {
	// Simulations allocate short-lived events at a high rate; a lazier GC
	// trades memory for a large speedup on small machines.
	debug.SetGCPercent(600)
	var (
		runIDs   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		fast     = flag.Bool("fast", false, "short warmup/ROI (quick, less precise)")
		parallel = flag.Int("p", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print each run's summary line (to stderr)")
		format   = flag.String("format", "text", "output format: text, json, or csv")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *format != "text" && *format != "json" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q; use text, json, or csv\n", *format)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := harness.Options{Fast: *fast, Parallelism: *parallel, Verbose: *verbose, Log: os.Stderr}
	var exps []harness.Experiment
	if *runIDs == "all" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	var reports []*harness.Report
	for _, e := range exps {
		start := time.Now()
		if *format == "text" {
			fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		}
		rep, err := e.Run(ctx, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		switch *format {
		case "text":
			if err := rep.WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed)
		case "csv":
			if err := writeCSV(os.Stdout, rep); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", e.ID, elapsed)
		case "json":
			reports = append(reports, rep)
			fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", e.ID, elapsed)
		}
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "encode: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeCSV flattens every table of the report: each table emits its header
// and rows, all prefixed with the experiment ID and section index so several
// tables (and experiments) concatenate into one parseable stream.
func writeCSV(w io.Writer, rep *harness.Report) error {
	cw := csv.NewWriter(w)
	for si, sec := range rep.Sections {
		if sec.Table == nil {
			continue
		}
		if err := cw.Write(append([]string{"experiment", "section"}, sec.Table.Header...)); err != nil {
			return err
		}
		for _, row := range sec.Table.Rows {
			if err := cw.Write(append([]string{rep.ID, strconv.Itoa(si)}, row...)); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
