// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run table1          # one artifact
//	experiments -run fig9,fig11      # several
//	experiments -run all             # the whole evaluation
//	experiments -list                # show what is available
//
// Output is a text rendering of each table/figure. -fast trades precision
// for speed (short warmup/ROI), useful for smoke checks.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"
	"time"

	"nomad/internal/harness"
)

func main() {
	// Simulations allocate short-lived events at a high rate; a lazier GC
	// trades memory for a large speedup on small machines.
	debug.SetGCPercent(600)
	var (
		runIDs   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		fast     = flag.Bool("fast", false, "short warmup/ROI (quick, less precise)")
		parallel = flag.Int("p", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print each run's summary line")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := harness.Options{Fast: *fast, Parallelism: *parallel, Verbose: *verbose}
	var exps []harness.Experiment
	if *runIDs == "all" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		start := time.Now()
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
