package nomad_test

import (
	"fmt"
	"os"

	"nomad"
)

// Enumerating the Table I workload surrogates is deterministic.
func ExampleWorkloads() {
	for _, w := range nomad.WorkloadsByClass("Excess") {
		fmt.Printf("%s (%s, %s)\n", w.Abbr(), w.Name(), w.Suite())
	}
	// Output:
	// cact (cactusADM, SPEC2006)
	// sssp (sssp, GAPBS)
	// bwav (bwaves, SPEC2006)
}

// Run simulates one scheme on one workload. (Compile-only example: a full
// simulation takes seconds.)
func ExampleRun() {
	w, err := nomad.WorkloadByAbbr("cact")
	if err != nil {
		panic(err)
	}
	res, err := nomad.Run(nomad.Config{Scheme: nomad.SchemeNOMAD}, w)
	if err != nil {
		panic(err)
	}
	fmt.Printf("IPC %.2f, thread stalled %.1f%% of cycles\n", res.IPC, 100*res.OSStallRatio)
}

// NewWorkload builds a custom synthetic workload from generator knobs.
func ExampleNewWorkload() {
	w := nomad.NewWorkload(nomad.CustomSpec{
		Name:           "scanner",
		FootprintPages: 16384, // 64 MB sequential scan per core
		RunBlocks:      64,
		SeqPageFrac:    0.95,
		GapMean:        12,
		WriteFrac:      0.1,
	})
	fmt.Println(w.Name(), w.Class())
	// Output: scanner Custom
}

// RunExperiment regenerates a paper artifact. (Compile-only example.)
func ExampleRunExperiment() {
	if err := nomad.RunExperiment("table1", nomad.ExperimentOptions{Fast: true}, os.Stdout); err != nil {
		panic(err)
	}
}
