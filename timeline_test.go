package nomad

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func timelineFastConfig(s Scheme) Config {
	cfg := fastConfig(s)
	cfg.Timeline = true
	cfg.TimelineInterval = 50_000
	return cfg
}

func TestPublicTimelineAccessor(t *testing.T) {
	w, _ := WorkloadByAbbr("libq")
	res, err := Run(timelineFastConfig(SchemeNOMAD), w)
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline()
	if tl == nil {
		t.Fatal("Timeline() nil despite Config.Timeline")
	}
	if tl != res.Metrics().Timeline {
		t.Fatal("Timeline() disagrees with Snapshot.Timeline")
	}
	if tl.Interval != 50_000 || tl.Windows() == 0 {
		t.Fatalf("interval=%d windows=%d", tl.Interval, tl.Windows())
	}
	names := tl.MetricNames()
	if len(names) == 0 || len(names) != len(tl.Metrics) {
		t.Fatalf("MetricNames = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("MetricNames unsorted: %v", names)
		}
	}
	if col := tl.Metric("sim.ipc"); len(col) != tl.Windows() {
		t.Fatalf("sim.ipc column length %d != %d windows", len(col), tl.Windows())
	}
	if tl.Metric("no.such.metric") != nil {
		t.Fatal("unknown metric returned a column")
	}

	// Off by default.
	plain, err := Run(fastConfig(SchemeNOMAD), w)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Timeline() != nil || plain.Host() != nil {
		t.Fatal("timeline/host present without opting in")
	}
}

func TestPublicTimelineByteIdentical(t *testing.T) {
	w, _ := WorkloadByAbbr("cact")
	cfg := timelineFastConfig(SchemeNOMAD)
	capture := func() []byte {
		res, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res.Timeline())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := capture(), capture()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed timeline JSON differs (%d vs %d bytes)", len(a), len(b))
	}
}

func TestPublicSelfProfile(t *testing.T) {
	w, _ := WorkloadByAbbr("tc")
	cfg := fastConfig(SchemeNOMAD)
	cfg.SelfProfile = true
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Host()
	if h == nil {
		t.Fatal("Host() nil despite Config.SelfProfile")
	}
	if h.SimCyclesPerSec <= 0 || h.WallSeconds <= 0 || h.EventsExecuted == 0 {
		t.Fatalf("degenerate host profile: %+v", h)
	}
	// Host data must stay out of the deterministic snapshot.
	data, err := json.Marshal(res.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "wall_seconds") {
		t.Fatal("host profile leaked into the metrics snapshot")
	}
}

func TestTimelineExperiment(t *testing.T) {
	res, err := RunExperimentResult(context.Background(), "timeline",
		ExperimentOptions{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) == 0 || res.Sections[0].Table == nil {
		t.Fatal("timeline experiment produced no table")
	}
	tab := res.Sections[0].Table
	if len(tab.Rows) == 0 {
		t.Fatal("timeline table empty")
	}
	if got, want := len(tab.Header), 8; got != want {
		t.Fatalf("header has %d columns, want %d: %v", got, want, tab.Header)
	}
	for _, key := range []string{"libq/TDC", "libq/NOMAD"} {
		run, ok := res.Runs[key]
		if !ok {
			t.Fatalf("run %q missing (have %v)", key, len(res.Runs))
		}
		if run.Timeline() == nil {
			t.Fatalf("run %q has no timeline", key)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Window end") {
		t.Fatalf("text rendering missing timeline table:\n%s", buf.String())
	}
}

func TestExperimentTimelineOptionPropagates(t *testing.T) {
	// ExperimentOptions.TimelineInterval must reach every underlying run
	// (public options → harness options → system config).
	res, err := RunExperimentResult(context.Background(), "timeline",
		ExperimentOptions{Fast: true, TimelineInterval: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) == 0 {
		t.Fatal("no runs")
	}
	for key, run := range res.Runs {
		tl := run.Timeline()
		if tl == nil {
			t.Fatalf("run %q missing timeline", key)
		}
		if tl.Interval != 50_000 {
			t.Fatalf("run %q interval = %d, want the 50k override", key, tl.Interval)
		}
	}
}
