// Quickstart: simulate the NOMAD DRAM cache on one memory-intensive
// workload and compare it with the blocking OS-managed design (TDC).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nomad"
)

func main() {
	// cactusADM: the highest-RMHB workload of Table I — the case where
	// blocking miss handling hurts most.
	w, err := nomad.WorkloadByAbbr("cact")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (%s class, %d MB footprint per core)\n\n",
		w.Name(), w.Class(), w.FootprintBytes()/(1024*1024))

	// Short runs so the example completes in seconds; drop the overrides
	// for full-precision numbers.
	cfg := nomad.Config{
		WarmupInstructions: 300_000,
		ROIInstructions:    500_000,
	}

	for _, scheme := range []nomad.Scheme{nomad.SchemeTDC, nomad.SchemeNOMAD} {
		cfg.Scheme = scheme
		res, err := nomad.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s IPC %.3f | thread stalled %.1f%% of cycles | avg tag mgmt %.0f cycles | DC access %.0f cycles\n",
			scheme, res.IPC, 100*res.OSStallRatio, res.AvgTagMgmtLatency, res.AvgDCAccessTime)
	}

	fmt.Println("\nNOMAD resumes the thread after tag management instead of waiting for the")
	fmt.Println("4 KB page copy; the PCSHR back-end completes the fill in the background.")
}
