// PCSHR tuning: size the NOMAD back-end for a bursty workload — the
// trade-off behind Figs. 14 and 15 of the paper. Sweeps PCSHR count, then
// shows the area-optimized design (fewer page copy buffers than PCSHRs).
//
// Run with:
//
//	go run ./examples/pcshr_tuning
package main

import (
	"fmt"
	"log"

	"nomad"
)

func main() {
	// libquantum's bursty access pattern floods the back-end with
	// cache-fill commands during its memory-intensive phases.
	w, err := nomad.WorkloadByAbbr("libq")
	if err != nil {
		log.Fatal(err)
	}

	base := nomad.Config{
		Scheme:             nomad.SchemeNOMAD,
		WarmupInstructions: 300_000,
		ROIInstructions:    500_000,
	}

	fmt.Println("PCSHR sweep (paired page copy buffers):")
	fmt.Printf("%8s %8s %12s %14s %10s\n", "PCSHRs", "IPC", "tagLat cyc", "stall ratio", "bufHit")
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		cfg := base
		cfg.PCSHRs = n
		res, err := nomad.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %8.3f %12.0f %13.1f%% %9.1f%%\n",
			n, res.IPC, res.AvgTagMgmtLatency, 100*res.OSStallRatio, 100*res.BufferHitRate)
	}

	fmt.Println("\nArea-optimized design: keep PCSHRs (cheap, 45 B each) high, cut 4 KB buffers:")
	fmt.Printf("%14s %8s %12s\n", "(PCSHRs,bufs)", "IPC", "tagLat cyc")
	for _, nm := range [][2]int{{8, 8}, {32, 8}, {32, 16}, {32, 32}} {
		cfg := base
		cfg.PCSHRs = nm[0]
		cfg.CopyBuffers = nm[1]
		res, err := nomad.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("      (%2d,%2d)  %8.3f %12.0f\n", nm[0], nm[1], res.IPC, res.AvgTagMgmtLatency)
	}
	fmt.Println("\nExtra PCSHRs absorb command bursts (keeping tag latency down) even when")
	fmt.Println("the buffer count — the real area cost — stays small.")
}
