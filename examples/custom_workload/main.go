// Custom workload: define a synthetic application with the public generator
// knobs and find out which DRAM-cache scheme suits it.
//
// The example models an in-memory key-value store: a large streamed log
// (compaction), a DC-resident index (random lookups), and a small hot
// working set — then asks whether its RMHB class predicts the winner, as
// Table I / Fig. 2 of the paper suggest.
//
// Run with:
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"

	"nomad"
)

func main() {
	kv := nomad.NewWorkload(nomad.CustomSpec{
		Name:           "kvstore",
		FootprintPages: 24_000, // ~94 MB compaction log per core
		RunBlocks:      64,     // log scanned sequentially
		SeqPageFrac:    0.9,
		GapMean:        18,
		WriteFrac:      0.35,
		WarmPages:      1024, // ~4 MB index per core: misses the LLC, fits the DC
		WarmFrac:       0.70,
		HotPages:       128, // request-dispatch structures
		HotFrac:        0.10,
	})

	cfg := nomad.Config{
		WarmupInstructions: 300_000,
		ROIInstructions:    500_000,
	}

	// Classify first: measure RMHB under the Ideal configuration.
	cfg.Scheme = nomad.SchemeIdeal
	ideal, err := nomad.Run(cfg, kv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kvstore under Ideal: RMHB %.1f GB/s, %.0f LLC misses/us\n",
		ideal.RMHBGBs, ideal.LLCMPMS)
	switch {
	case ideal.RMHBGBs > 25.6:
		fmt.Println("-> Excess class: expect blocking OS management to struggle")
	case ideal.RMHBGBs > 18:
		fmt.Println("-> Tight class: miss handling nearly saturates off-package memory")
	case ideal.RMHBGBs > 8:
		fmt.Println("-> Loose class: OS-managed caching is comfortable")
	default:
		fmt.Println("-> Few class: any DRAM cache gets near-ideal behaviour")
	}
	fmt.Println()

	for _, s := range nomad.Schemes() {
		cfg.Scheme = s
		res, err := nomad.Run(cfg, kv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s IPC %.3f | stall %.1f%% | DC access %.0f cyc | off-pkg %.1f GB/s\n",
			s, res.IPC, 100*res.OSStallRatio, res.AvgDCAccessTime, res.OffPkgBandwidthGBs)
	}
}
