// Graphsweep: evaluate every GAP benchmark surrogate across all five memory
// schemes — the graph-analytics scenario the paper's introduction motivates
// (large footprints, poor block-level spatial locality, page-level reuse).
//
// Run with:
//
//	go run ./examples/graphsweep
package main

import (
	"fmt"
	"log"
	"sync"

	"nomad"
)

func main() {
	var graph []nomad.Workload
	for _, w := range nomad.Workloads() {
		if w.Suite() == "GAPBS" {
			graph = append(graph, w)
		}
	}

	cfg := nomad.Config{
		WarmupInstructions: 300_000,
		ROIInstructions:    500_000,
	}

	// nomad.Run is safe for concurrent use; sweep in parallel.
	type key struct{ wl, scheme string }
	results := make(map[key]*nomad.Result)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 2)
	for _, w := range graph {
		for _, s := range nomad.Schemes() {
			wg.Add(1)
			go func(w nomad.Workload, s nomad.Scheme) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				c := cfg
				c.Scheme = s
				res, err := nomad.Run(c, w)
				if err != nil {
					log.Fatalf("%s/%s: %v", s, w.Abbr(), err)
				}
				mu.Lock()
				results[key{w.Abbr(), string(s)}] = res
				mu.Unlock()
			}(w, s)
		}
	}
	wg.Wait()

	fmt.Println("IPC relative to Baseline (GAP benchmark suite surrogates):")
	fmt.Printf("%-6s %-7s %8s %8s %8s %8s\n", "graph", "class", "TiD", "TDC", "NOMAD", "Ideal")
	for _, w := range graph {
		base := results[key{w.Abbr(), "Baseline"}].IPC
		fmt.Printf("%-6s %-7s", w.Abbr(), w.Class())
		for _, s := range []nomad.Scheme{nomad.SchemeTiD, nomad.SchemeTDC, nomad.SchemeNOMAD, nomad.SchemeIdeal} {
			fmt.Printf(" %8.2f", results[key{w.Abbr(), string(s)}].IPC/base)
		}
		fmt.Println()
	}
	fmt.Println("\nHigh-RMHB graphs (sssp) favour non-blocking designs; low-RMHB graphs")
	fmt.Println("(pr, tc) run near the ideal bound under any OS-managed cache.")
}
