package nomad

import "fmt"

// Error is the typed error returned by Run and RunContext. It identifies the
// failing simulation (scheme, workload) and the stage that failed, and wraps
// the underlying cause, so callers can match with errors.Is/errors.As — in
// particular, a cancelled RunContext satisfies
// errors.Is(err, context.Canceled).
type Error struct {
	// Op is the failing stage: "configure" (machine construction) or
	// "run" (simulation, including cancellation and cycle-limit timeouts).
	Op string
	// Scheme and Workload identify the simulation that failed.
	Scheme   Scheme
	Workload string
	// Err is the underlying cause.
	Err error
}

func (e *Error) Error() string {
	return fmt.Sprintf("nomad: %s %s/%s: %v", e.Op, e.Scheme, e.Workload, e.Err)
}

// Unwrap exposes the cause to errors.Is and errors.As.
func (e *Error) Unwrap() error { return e.Err }
