package nomad

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestDefaultConfigMatchesZero pins the DefaultConfig contract: it is the
// zero Config with every default spelled out, so both must resolve to the
// same internal configuration.
func TestDefaultConfigMatchesZero(t *testing.T) {
	def := DefaultConfig().toInternal()
	zero := Config{}.toInternal()
	if !reflect.DeepEqual(def, zero) {
		t.Fatalf("DefaultConfig resolves differently from the zero Config:\n default: %+v\n zero:    %+v", def, zero)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig does not validate: %v", err)
	}
}

// TestDeprecatedTelemetryAliases pins the compatibility contract of the
// Telemetry regrouping: a Config written against the old flat fields must
// resolve to exactly the same internal configuration as the grouped form.
func TestDeprecatedTelemetryAliases(t *testing.T) {
	flat := Config{
		TraceDepth:       512,
		SpanDepth:        128,
		SpanSampleEvery:  32,
		Timeline:         true,
		TimelineInterval: 50_000,
		TimelineMetrics:  []string{"core.", "hbm.gbs."},
		SelfProfile:      true,
	}
	grouped := Config{Telemetry: Telemetry{
		TraceDepth:       512,
		SpanDepth:        128,
		SpanSampleEvery:  32,
		Timeline:         true,
		TimelineInterval: 50_000,
		TimelineMetrics:  []string{"core.", "hbm.gbs."},
		SelfProfile:      true,
	}}
	if err := flat.Validate(); err != nil {
		t.Fatalf("flat legacy config does not validate: %v", err)
	}
	if !reflect.DeepEqual(flat.toInternal(), grouped.toInternal()) {
		t.Fatalf("flat aliases resolve differently from Telemetry group:\n flat:    %+v\n grouped: %+v", flat.toInternal(), grouped.toInternal())
	}
	// Agreeing values set both ways are fine; conflicting ones are a
	// Validate error rather than a silent preference.
	both := flat
	both.Telemetry.TraceDepth = 512
	if err := both.Validate(); err != nil {
		t.Fatalf("agreeing alias + group rejected: %v", err)
	}
	both.Telemetry.TraceDepth = 1024
	err := both.Validate()
	if err == nil {
		t.Fatal("conflicting TraceDepth alias accepted")
	}
	if err.Op != "validate" {
		t.Fatalf("Op = %q, want validate", err.Op)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" for valid
	}{
		{"zero", Config{}, ""},
		{"engine wheel", Config{Engine: EngineWheel}, ""},
		{"engine heap", Config{Engine: EngineHeap}, ""},
		{"bad scheme", Config{Scheme: "Nope"}, "unknown scheme"},
		{"bad engine", Config{Engine: "splay"}, "unknown engine"},
		{"negative cores", Config{Cores: -1}, "negative core count"},
		{"negative trace depth", Config{TraceDepth: -4}, "negative trace depth"},
		{"buffers beyond pcshrs", Config{PCSHRs: 4, CopyBuffers: 8}, "exceed"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		switch {
		case tc.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.want != "" && err == nil:
			t.Errorf("%s: error missing", tc.name)
		case tc.want != "" && !strings.Contains(err.Error(), tc.want):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRunRejectsInvalidConfig pins that Run validates before building the
// machine and reports the typed validate error.
func TestRunRejectsInvalidConfig(t *testing.T) {
	w, err := WorkloadByAbbr("tc")
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := Run(Config{Engine: "splay"}, w)
	var e *Error
	if !errors.As(rerr, &e) {
		t.Fatalf("err = %T, want *nomad.Error", rerr)
	}
	if e.Op != "validate" || e.Workload != "tc" {
		t.Fatalf("error identity wrong: %+v", e)
	}
}
