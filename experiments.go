package nomad

import (
	"context"
	"fmt"
	"io"
	"log/slog"

	"nomad/internal/harness"
)

// ExperimentInfo describes one reproducible paper artifact.
type ExperimentInfo struct {
	ID    string // e.g. "table1", "fig9"
	Title string
}

// ExperimentOptions tunes experiment execution.
type ExperimentOptions struct {
	// Fast shrinks warmup/ROI for quick, lower-precision runs.
	Fast bool
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Verbose emits each run's summary line to Log as structured (slog
	// text) records.
	Verbose bool
	// Log receives verbose progress output. Nil discards it, except under
	// RunExperiment, which defaults Log to its output writer.
	Log io.Writer
	// TraceDepth/SpanDepth/SpanSampleEvery enable event and span capture
	// in every underlying run (see Config); each run's Result then
	// supports WriteTrace.
	TraceDepth      int
	SpanDepth       int
	SpanSampleEvery uint64
	// Timeline enables interval time-series capture in every underlying run
	// (see Config.Timeline); TimelineInterval and TimelineMetrics carry the
	// same meaning as their Config counterparts.
	Timeline         bool
	TimelineInterval uint64
	TimelineMetrics  []string
	// Digests enables interval digest chains in every underlying run (see
	// Telemetry.Digests).
	Digests bool
	// SelfProfile attaches host-side simulator profiling to every run
	// (Result.Host).
	SelfProfile bool
	// NoFastForward disables idle-cycle fast-forward in every run (see
	// Config.NoFastForward); results are byte-identical either way.
	NoFastForward bool
}

// Experiments lists every reproducible table and figure.
func Experiments() []ExperimentInfo {
	all := harness.All()
	out := make([]ExperimentInfo, len(all))
	for i, e := range all {
		out[i] = ExperimentInfo{ID: e.ID, Title: e.Title}
	}
	return out
}

// ExperimentResult is the structured output of one experiment: the sections
// the paper artifact prints, plus every underlying simulation Result keyed by
// run key. WriteText renders the traditional text form.
type ExperimentResult struct {
	ID       string
	Title    string
	Sections []ExperimentSection
	// Runs holds the per-simulation results the sections were derived
	// from, each carrying its full metrics snapshot. Analysis-only
	// experiments leave it empty.
	Runs map[string]*Result
	// Warnings flags data-quality issues in the underlying runs, currently
	// trace/span ring drops; empty means every capture is complete.
	Warnings []string
	// RunSeconds maps each run key to its host-side wall-clock duration.
	// Non-deterministic by nature; the per-run Results stay byte-identical
	// across same-seed invocations.
	RunSeconds map[string]float64

	rep *harness.Report
}

// ExperimentSection is one block of an experiment's output: commentary lines
// followed by an optional table.
type ExperimentSection struct {
	Notes []string
	Table *ExperimentTable
}

// ExperimentTable is one table of an experiment's output, already formatted
// to the precision the text rendering prints.
type ExperimentTable struct {
	Header []string
	Rows   [][]string
}

// WriteText renders the experiment in its traditional text form.
func (r *ExperimentResult) WriteText(w io.Writer) error { return r.rep.WriteText(w) }

// RunExperimentResult regenerates one paper artifact and returns it in
// structured form. Cancelling ctx stops queued simulations before they start
// and in-flight ones at their next sampling window;
// errors.Is(err, context.Canceled) then holds.
func RunExperimentResult(ctx context.Context, id string, opts ExperimentOptions) (*ExperimentResult, error) {
	e, ok := harness.Get(id)
	if !ok {
		return nil, fmt.Errorf("nomad: unknown experiment %q", id)
	}
	var logger *slog.Logger
	if opts.Log != nil {
		logger = slog.New(slog.NewTextHandler(opts.Log, nil))
	}
	rep, err := e.Run(ctx, harness.Options{
		Fast:            opts.Fast,
		Parallelism:     opts.Parallelism,
		Verbose:         opts.Verbose,
		Logger:          logger,
		TraceDepth:      opts.TraceDepth,
		SpanDepth:       opts.SpanDepth,
		SpanSampleEvery: opts.SpanSampleEvery,
		Timeline:        opts.Timeline,
		Interval:        opts.TimelineInterval,
		TimelineMetrics: opts.TimelineMetrics,
		Digests:         opts.Digests,
		SelfProfile:     opts.SelfProfile,
		NoFastForward:   opts.NoFastForward,
	})
	if err != nil {
		return nil, err
	}
	return fromReport(rep), nil
}

// RunExperiment regenerates one paper artifact, writing its text rendering
// to w. It is retained for compatibility; new code should prefer
// RunExperimentResult, which adds cancellation and structured access to the
// rows and the underlying runs.
func RunExperiment(id string, opts ExperimentOptions, w io.Writer) error {
	if opts.Verbose && opts.Log == nil {
		opts.Log = w
	}
	res, err := RunExperimentResult(context.Background(), id, opts)
	if err != nil {
		return err
	}
	return res.WriteText(w)
}

func fromReport(rep *harness.Report) *ExperimentResult {
	out := &ExperimentResult{
		ID: rep.ID, Title: rep.Title, Warnings: rep.Warnings,
		RunSeconds: rep.RunSeconds, rep: rep,
	}
	for _, sec := range rep.Sections {
		s := ExperimentSection{Notes: sec.Notes}
		if sec.Table != nil {
			s.Table = &ExperimentTable{Header: sec.Table.Header, Rows: sec.Table.Rows}
		}
		out.Sections = append(out.Sections, s)
	}
	if len(rep.Runs) > 0 {
		out.Runs = make(map[string]*Result, len(rep.Runs))
		for k, r := range rep.Runs {
			res := fromInternal(r.Result)
			res.manifest = fromObsManifest(r.Manifest)
			out.Runs[k] = res
		}
	}
	return out
}
