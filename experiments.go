package nomad

import (
	"fmt"
	"io"

	"nomad/internal/harness"
)

// ExperimentInfo describes one reproducible paper artifact.
type ExperimentInfo struct {
	ID    string // e.g. "table1", "fig9"
	Title string
}

// ExperimentOptions tunes experiment execution.
type ExperimentOptions struct {
	// Fast shrinks warmup/ROI for quick, lower-precision runs.
	Fast bool
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Verbose prints each run's summary line as it completes.
	Verbose bool
}

// Experiments lists every reproducible table and figure.
func Experiments() []ExperimentInfo {
	all := harness.All()
	out := make([]ExperimentInfo, len(all))
	for i, e := range all {
		out[i] = ExperimentInfo{ID: e.ID, Title: e.Title}
	}
	return out
}

// RunExperiment regenerates one paper artifact, writing its text rendering
// to w.
func RunExperiment(id string, opts ExperimentOptions, w io.Writer) error {
	e, ok := harness.Get(id)
	if !ok {
		return fmt.Errorf("nomad: unknown experiment %q", id)
	}
	return e.Run(harness.Options{
		Fast:        opts.Fast,
		Parallelism: opts.Parallelism,
		Verbose:     opts.Verbose,
	}, w)
}
