module nomad

go 1.22
