package nomad

import (
	"fmt"

	"nomad/internal/sim"
	"nomad/internal/system"
)

// EngineKind selects the simulation event-queue implementation. Runs are
// byte-identical across engines — the knob exists for differential testing
// and performance comparison, not because results differ.
type EngineKind string

const (
	// EngineWheel is the hierarchical timing wheel (the default): O(1)
	// schedule and dispatch, allocation-free steady state.
	EngineWheel EngineKind = "wheel"
	// EngineHeap is the binary min-heap the wheel replaced, kept as the
	// differential-testing oracle.
	EngineHeap EngineKind = "heap"
)

// Telemetry groups the observability knobs of a simulation. The zero value
// disables all capture, which is the right setting for plain measurement
// runs — every knob here costs some throughput when enabled.
type Telemetry struct {
	// TraceDepth, when positive, records the last TraceDepth machine
	// events (tag misses, PCSHR fills/writebacks, row conflicts) of the
	// ROI. A run with capture enabled exposes it through Result.WriteTrace
	// and summarises it in Snapshot.Trace.
	TraceDepth int
	// SpanDepth, when positive, records per-access latency spans for
	// 1-in-SpanSampleEvery loads per core into a ring of this many spans.
	SpanDepth int
	// SpanSampleEvery is the span sampling period in loads; 0 samples
	// 1 in 64.
	SpanSampleEvery uint64
	// Timeline enables interval time-series telemetry: every
	// TimelineInterval cycles of the measured region (default 100k), a set
	// of registry metrics — per-core IPC, DC hit rate, PCSHR occupancy
	// high-water, HBM/DDR bandwidth by category, row-buffer conflict rate,
	// MSHR occupancy — is snapshotted into windowed columns, exposed via
	// Result.Timeline(), Snapshot.Timeline, and (with WriteTrace) Perfetto
	// counter tracks. The first window starts exactly at ROI cycle 0 and
	// the capture is deterministic: same-seed runs marshal byte-identical
	// timelines.
	Timeline bool
	// TimelineInterval is the window length in cycles; 0 selects 100_000.
	TimelineInterval uint64
	// TimelineMetrics restricts the collected columns to names matching
	// these prefixes (e.g. "core.", "hbm.gbs."); empty collects all.
	TimelineMetrics []string
	// Digests enables interval digest chains: every TimelineInterval
	// cycles of the measured region (default 100k), a chained FNV-1a
	// digest of the full metrics registry is folded into
	// Snapshot.Digests / Result.Digests(). Chains are byte-identical
	// same-seed across engines and fast-forward modes; the first window
	// whose digests differ between two runs localizes their divergence.
	// The capture is orders of magnitude cheaper than Timeline — one hash
	// per 100k cycles.
	Digests bool
	// SelfProfile samples the simulator's own host-side performance —
	// wall-clock simulated-cycles/sec, events/sec, heap-in-use, GC pauses
	// — into Result.Host(). Host readings are inherently non-deterministic
	// and are never part of the metrics snapshot.
	SelfProfile bool
}

// Config parameterises a simulation. The zero value (plus a Scheme) selects
// the paper's evaluation configuration at the scaled capacities documented
// in DESIGN.md; DefaultConfig returns the same configuration with every
// default spelled out.
type Config struct {
	// Scheme under test; defaults to NOMAD.
	Scheme Scheme
	// Cores in the chip multiprocessor; defaults to 8.
	Cores int
	// PCSHRs in the NOMAD back-end; defaults to 16.
	PCSHRs int
	// CopyBuffers in the NOMAD back-end; 0 pairs one buffer per PCSHR.
	// Fewer buffers than PCSHRs selects the area-optimized design.
	CopyBuffers int
	// DistributedBackends partitions the back-end per HBM channel.
	DistributedBackends bool
	// TagMgmtLatency is the NOMAD tag-miss handler critical-section
	// occupancy in cycles; defaults to the paper's conservative 400.
	TagMgmtLatency uint64
	// VerifyLatency adds cycles to every DC access for the PCSHR lookup
	// (0 per the paper's CACTI analysis; set 1 for the sensitivity study).
	VerifyLatency uint64
	// CacheTouchThreshold enables selective caching for OS-managed
	// schemes: a page is cached only on its Nth uncached page-table walk.
	// 0 or 1 caches on first touch (the paper's default).
	CacheTouchThreshold uint64
	// WarmupInstructions / ROIInstructions are per-core retirement
	// targets; zero selects the defaults.
	WarmupInstructions uint64
	ROIInstructions    uint64
	// Seed perturbs workload address streams deterministically.
	Seed uint64

	// Telemetry groups the observability knobs (traces, spans, timeline,
	// self-profiling). The flat fields below are deprecated aliases kept
	// for compatibility; a knob set both ways to conflicting values is a
	// Validate error.
	Telemetry Telemetry

	// Engine selects the event-queue implementation ("" and EngineWheel
	// run the timing wheel, EngineHeap the binary-heap oracle). Results
	// are byte-identical across engines.
	Engine EngineKind

	// Workers enables the parallel tick phase: per-core shards tick
	// concurrently on this many workers (including the coordinating
	// goroutine), with cross-domain effects deferred to a per-cycle barrier
	// and replayed deterministically. 0 or 1 runs fully sequentially.
	// Results are byte-identical at every worker count; the knob trades
	// host CPUs for wall-clock speed on multi-core configurations. The
	// CLIs expose it as -parallel.
	Workers int

	// NoFastForward disables the engine's idle-cycle fast-forward (on by
	// default), forcing every cycle to be stepped individually. Results
	// are byte-identical either way; the switch exists for debugging and
	// for measuring the speedup. With self-profiling enabled,
	// Host().SkippedCycles reports how much a fast-forwarded run skipped.
	NoFastForward bool

	// Deprecated: use Telemetry.TraceDepth.
	TraceDepth int
	// Deprecated: use Telemetry.SpanDepth.
	SpanDepth int
	// Deprecated: use Telemetry.SpanSampleEvery.
	SpanSampleEvery uint64
	// Deprecated: use Telemetry.Timeline.
	Timeline bool
	// Deprecated: use Telemetry.TimelineInterval.
	TimelineInterval uint64
	// Deprecated: use Telemetry.TimelineMetrics.
	TimelineMetrics []string
	// Deprecated: use Telemetry.SelfProfile.
	SelfProfile bool
}

// DefaultConfig returns the paper's evaluation configuration with every
// default spelled out. It is equivalent to the zero Config (which resolves
// the same defaults internally) but self-documenting: callers can tweak one
// field of a fully-populated struct instead of memorising which zero values
// mean what.
func DefaultConfig() Config {
	return Config{
		Scheme:             SchemeNOMAD,
		Cores:              8,
		PCSHRs:             16,
		TagMgmtLatency:     400,
		WarmupInstructions: 700_000,
		ROIInstructions:    1_200_000,
		Seed:               1,
		Engine:             EngineWheel,
		Telemetry: Telemetry{
			SpanSampleEvery:  64,
			TimelineInterval: 100_000,
		},
	}
}

// validationError wraps a field-level complaint in the package's typed Error
// so callers can handle configuration and run failures uniformly.
func (c Config) validationError(format string, args ...interface{}) *Error {
	return &Error{Op: "validate", Scheme: c.effectiveScheme(), Err: fmt.Errorf(format, args...)}
}

// Validate reports whether the configuration is runnable, returning a typed
// *Error (Op "validate") describing the first problem found, or nil. Run and
// RunContext validate implicitly; calling Validate first gives tools a way
// to reject bad configurations before committing to a simulation.
func (c Config) Validate() *Error {
	switch c.Scheme {
	case "", SchemeBaseline, SchemeTiD, SchemeTDC, SchemeNOMAD, SchemeIdeal:
	default:
		return c.validationError("unknown scheme %q", c.Scheme)
	}
	switch c.Engine {
	case "", EngineWheel, EngineHeap:
	default:
		return c.validationError("unknown engine %q (want %q or %q)", c.Engine, EngineWheel, EngineHeap)
	}
	if c.Cores < 0 {
		return c.validationError("negative core count %d", c.Cores)
	}
	if c.Workers < 0 {
		return c.validationError("negative worker count %d", c.Workers)
	}
	if c.PCSHRs < 0 {
		return c.validationError("negative PCSHR count %d", c.PCSHRs)
	}
	if c.CopyBuffers < 0 {
		return c.validationError("negative copy buffer count %d", c.CopyBuffers)
	}
	if c.CopyBuffers > 0 && c.PCSHRs > 0 && c.CopyBuffers > c.PCSHRs {
		return c.validationError("copy buffers (%d) exceed PCSHRs (%d); buffers beyond one per PCSHR are unreachable", c.CopyBuffers, c.PCSHRs)
	}
	if c.Telemetry.TraceDepth < 0 || c.TraceDepth < 0 {
		return c.validationError("negative trace depth")
	}
	if c.Telemetry.SpanDepth < 0 || c.SpanDepth < 0 {
		return c.validationError("negative span depth")
	}
	// A knob set through both the Telemetry group and its deprecated flat
	// alias must agree: silently preferring one would hide a caller bug.
	if c.TraceDepth != 0 && c.Telemetry.TraceDepth != 0 && c.TraceDepth != c.Telemetry.TraceDepth {
		return c.validationError("TraceDepth set to %d and Telemetry.TraceDepth to %d; use only Telemetry.TraceDepth", c.TraceDepth, c.Telemetry.TraceDepth)
	}
	if c.SpanDepth != 0 && c.Telemetry.SpanDepth != 0 && c.SpanDepth != c.Telemetry.SpanDepth {
		return c.validationError("SpanDepth set to %d and Telemetry.SpanDepth to %d; use only Telemetry.SpanDepth", c.SpanDepth, c.Telemetry.SpanDepth)
	}
	if c.SpanSampleEvery != 0 && c.Telemetry.SpanSampleEvery != 0 && c.SpanSampleEvery != c.Telemetry.SpanSampleEvery {
		return c.validationError("SpanSampleEvery set to %d and Telemetry.SpanSampleEvery to %d; use only Telemetry.SpanSampleEvery", c.SpanSampleEvery, c.Telemetry.SpanSampleEvery)
	}
	if c.TimelineInterval != 0 && c.Telemetry.TimelineInterval != 0 && c.TimelineInterval != c.Telemetry.TimelineInterval {
		return c.validationError("TimelineInterval set to %d and Telemetry.TimelineInterval to %d; use only Telemetry.TimelineInterval", c.TimelineInterval, c.Telemetry.TimelineInterval)
	}
	return nil
}

func (c Config) effectiveScheme() Scheme {
	if c.Scheme == "" {
		return SchemeNOMAD
	}
	return c.Scheme
}

// effectiveTelemetry merges the Telemetry group with the deprecated flat
// aliases: the grouped field wins when set, the alias fills it otherwise
// (Validate rejects conflicting non-zero settings).
func (c Config) effectiveTelemetry() Telemetry {
	t := c.Telemetry
	if t.TraceDepth == 0 {
		t.TraceDepth = c.TraceDepth
	}
	if t.SpanDepth == 0 {
		t.SpanDepth = c.SpanDepth
	}
	if t.SpanSampleEvery == 0 {
		t.SpanSampleEvery = c.SpanSampleEvery
	}
	t.Timeline = t.Timeline || c.Timeline
	if t.TimelineInterval == 0 {
		t.TimelineInterval = c.TimelineInterval
	}
	if len(t.TimelineMetrics) == 0 {
		t.TimelineMetrics = c.TimelineMetrics
	}
	t.SelfProfile = t.SelfProfile || c.SelfProfile
	return t
}

func (c Config) toInternal() system.Config {
	cfg := system.DefaultConfig()
	if c.Scheme != "" {
		cfg.Scheme = system.SchemeName(c.Scheme)
	}
	if c.Cores > 0 {
		cfg.Cores = c.Cores
	}
	if c.PCSHRs > 0 {
		cfg.Backend.PCSHRs = c.PCSHRs
	}
	if c.CopyBuffers > 0 {
		cfg.Backend.CopyBuffers = c.CopyBuffers
	}
	cfg.Backend.Distributed = c.DistributedBackends
	if c.TagMgmtLatency > 0 {
		cfg.Frontend.TagMgmtLatency = c.TagMgmtLatency
	}
	cfg.Backend.VerifyLatency = c.VerifyLatency
	cfg.Frontend.CacheTouchThreshold = c.CacheTouchThreshold
	if c.WarmupInstructions > 0 {
		cfg.WarmupInstructions = c.WarmupInstructions
	}
	if c.ROIInstructions > 0 {
		cfg.ROIInstructions = c.ROIInstructions
	}
	if c.Seed > 0 {
		cfg.Seed = c.Seed
	}
	tel := c.effectiveTelemetry()
	cfg.TraceDepth = tel.TraceDepth
	cfg.SpanDepth = tel.SpanDepth
	cfg.SpanSampleEvery = tel.SpanSampleEvery
	if cfg.SpanSampleEvery == 0 {
		cfg.SpanSampleEvery = system.DefaultSpanSampleEvery
	}
	cfg.Timeline = tel.Timeline
	cfg.Interval = tel.TimelineInterval
	if cfg.Interval == 0 {
		cfg.Interval = sim.DefaultInterval
	}
	cfg.TimelineMetrics = tel.TimelineMetrics
	cfg.Digests = tel.Digests
	cfg.SelfProfile = tel.SelfProfile
	cfg.FastForward = !c.NoFastForward
	cfg.Engine = sim.Kind(c.Engine)
	if cfg.Engine == "" {
		cfg.Engine = sim.KindWheel
	}
	cfg.Workers = c.Workers
	return cfg
}
