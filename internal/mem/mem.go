// Package mem defines the memory request model and address geometry shared by
// every component: 64 B blocks, 4 KB pages, and the distinction between
// virtual, physical (off-package), and cache (on-package) addresses.
//
// # Address-space convention
//
// All addresses are byte addresses carried in uint64. Virtual addresses are
// per-core. After translation an access carries either a physical frame
// number (PFN, a frame in off-package DDR) or a cache frame number (CFN, a
// frame in the on-package DRAM cache), depending on the scheme and on whether
// the page is cached. Frame numbers are page indexes, not byte addresses.
package mem

// Geometry constants. The paper uses 64 B DRAM bursts (sub-blocks) and 4 KB
// pages, giving 64 sub-blocks per page — which is why PCSHR status vectors
// are 64-bit.
const (
	BlockBits = 6
	BlockSize = 1 << BlockBits // 64 B: SRAM line and DRAM burst (sub-block)

	PageBits = 12
	PageSize = 1 << PageBits // 4 KB

	SubBlocksPerPage = PageSize / BlockSize // 64
)

// PageNum returns the page number of a byte address.
func PageNum(addr uint64) uint64 { return addr >> PageBits }

// PageOffset returns the byte offset within the page.
func PageOffset(addr uint64) uint64 { return addr & (PageSize - 1) }

// BlockNum returns the block (64 B) number of a byte address.
func BlockNum(addr uint64) uint64 { return addr >> BlockBits }

// BlockAligned returns addr rounded down to its 64 B block.
func BlockAligned(addr uint64) uint64 { return addr &^ (BlockSize - 1) }

// SubBlockIndex returns the sub-block index (0..63) of addr within its page.
func SubBlockIndex(addr uint64) uint { return uint((addr >> BlockBits) & (SubBlocksPerPage - 1)) }

// FrameAddr converts a frame number (PFN or CFN) to the byte address of the
// start of the frame.
func FrameAddr(frame uint64) uint64 { return frame << PageBits }

// AddrInFrame composes a byte address from a frame number and a page offset.
func AddrInFrame(frame, offset uint64) uint64 { return frame<<PageBits | (offset & (PageSize - 1)) }

// SpaceBit tags cache-space (on-package) addresses so that CFN-based and
// PFN-based addresses never alias inside the SRAM hierarchy, which indexes
// by post-translation address.
const SpaceBit = uint64(1) << 61

// TagSpace returns addr tagged as belonging to the given space.
func TagSpace(addr uint64, s Space) uint64 {
	if s == SpaceCache {
		return addr | SpaceBit
	}
	return addr
}

// SpaceOf returns the space a tagged address belongs to.
func SpaceOf(addr uint64) Space {
	if addr&SpaceBit != 0 {
		return SpaceCache
	}
	return SpacePhysical
}

// Untag strips the space tag, leaving the device byte address.
func Untag(addr uint64) uint64 { return addr &^ SpaceBit }

// Space identifies which address space / device a post-translation request
// targets.
type Space uint8

const (
	// SpacePhysical addresses off-package memory (DDR): the address embeds
	// a PFN.
	SpacePhysical Space = iota
	// SpaceCache addresses the on-package DRAM cache (HBM): the address
	// embeds a CFN.
	SpaceCache
)

func (s Space) String() string {
	switch s {
	case SpacePhysical:
		return "physical"
	case SpaceCache:
		return "cache"
	default:
		return "invalid"
	}
}

// Kind categorizes DRAM traffic for the bandwidth breakdown of Fig. 10.
type Kind uint8

const (
	// KindDemand is demand data moved for the application (reads and
	// writebacks from the SRAM hierarchy).
	KindDemand Kind = iota
	// KindMetadata is DC metadata traffic (tags, LRU/dirty updates) — only
	// the HW-based TiD scheme generates it.
	KindMetadata
	// KindFill is cache-fill traffic (page or line copies into the DC).
	KindFill
	// KindWriteback is DC eviction traffic (dirty pages/lines copied back
	// to off-package memory).
	KindWriteback
	// KindWalk is page-table-walk traffic.
	KindWalk

	NumKinds = 5
)

func (k Kind) String() string {
	switch k {
	case KindDemand:
		return "demand"
	case KindMetadata:
		return "metadata"
	case KindFill:
		return "fill"
	case KindWriteback:
		return "writeback"
	case KindWalk:
		return "walk"
	default:
		return "invalid"
	}
}

// StallCause names the component a load is waiting on at one instant. Each
// cycle a core's ROB head is an incomplete load, exactly one cause is
// charged — whichever component currently owns the load — so the per-cause
// buckets sum exactly to the core's memory-stall cycles (the CPI stack
// invariant enforced by internal/system).
type StallCause uint8

const (
	// StallSRAM: the load is traversing the SRAM hierarchy (L1/L2/LLC
	// lookup latency, or waiting coalesced on another load's line fill).
	StallSRAM StallCause = iota
	// StallTLB: address translation (L2 TLB access or page-table walk).
	StallTLB
	// StallMSHR: parked because every MSHR of a cache level was busy.
	StallMSHR
	// StallPCSHR: parked in a PCSHR sub-entry waiting for an in-transfer
	// sub-block (NOMAD data miss; the paper's PCSHR wait).
	StallPCSHR
	// StallDRAMQueue: enqueued in a DRAM channel queue (FR-FCFS backlog).
	StallDRAMQueue
	// StallRowConflict: the issued burst had to close an open row first.
	StallRowConflict
	// StallBus: the burst waited for the channel data bus.
	StallBus
	// StallDRAMService: intrinsic activate/CAS/burst time of the access.
	StallDRAMService

	NumStallCauses = 8
)

var stallCauseNames = [NumStallCauses]string{
	"sram", "tlb", "mshr", "pcshr",
	"dram_queue", "row_conflict", "bus", "dram_service",
}

func (c StallCause) String() string {
	if int(c) < len(stallCauseNames) {
		return stallCauseNames[c]
	}
	return "invalid"
}

// Probe is the latency-provenance tag of one load: the memory system updates
// Cause as the request moves between components (live, every load), and
// SpanID marks the 1-in-N sampled loads whose per-hop spans are recorded.
// The issuing core allocates one Probe per in-flight load and reads Cause
// each cycle the load blocks retirement.
//
//nomad:owner shared
//nomad:ephemeral request descriptor payload; consumed and counted by the receiving engine
type Probe struct {
	// SpanID is nonzero only for span-sampled loads; it ties the span
	// records of one access together across components.
	SpanID uint64
	// Core is the issuing core (for span records emitted by shared
	// components that do not otherwise know it).
	Core int32
	// Cause is the component currently responsible for the load's latency.
	Cause StallCause
}

// Request is a single memory access. One Request flows from the core through
// the SRAM hierarchy; below the LLC the scheme may spawn further Requests
// (fills, metadata, writebacks) tagged with the appropriate Kind.
//
//nomad:owner shared
//nomad:ephemeral request descriptor payload; consumed and counted by the receiving engine
type Request struct {
	// Addr is the byte address in the space indicated by Space. Above the
	// TLB it is virtual; below it is physical or cache.
	Addr  uint64
	Write bool
	Space Space
	Kind  Kind
	// Core is the index of the originating core (-1 for traffic generated
	// by the OS or hardware engines).
	Core int
	// Priority marks critical-data-first requests in DRAM scheduling.
	Priority bool
	// Issue is the cycle the request entered the component measuring it
	// (used for DC access-time accounting).
	Issue uint64
	// Probe, when non-nil, is the originating load's latency-provenance
	// tag: components update Probe.Cause as they take ownership of the
	// request. Generated traffic (fills, writebacks, metadata) carries nil.
	Probe *Probe
}

// Done is a completion callback. Components hand a request downward together
// with the callback to invoke when the data is available (reads) or accepted
// (writes).
type Done func()
