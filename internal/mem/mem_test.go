package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if BlockSize != 64 || PageSize != 4096 || SubBlocksPerPage != 64 {
		t.Fatalf("geometry constants wrong: %d %d %d", BlockSize, PageSize, SubBlocksPerPage)
	}
}

func TestAddressHelpers(t *testing.T) {
	addr := uint64(0x12345)
	if PageNum(addr) != 0x12 {
		t.Errorf("PageNum = %#x", PageNum(addr))
	}
	if PageOffset(addr) != 0x345 {
		t.Errorf("PageOffset = %#x", PageOffset(addr))
	}
	if BlockAligned(0x12345) != 0x12340 {
		t.Errorf("BlockAligned = %#x", BlockAligned(0x12345))
	}
	if BlockNum(0x12345) != 0x48d {
		t.Errorf("BlockNum = %#x", BlockNum(0x12345))
	}
	if SubBlockIndex(0x345) != 13 {
		t.Errorf("SubBlockIndex = %d", SubBlockIndex(0x345))
	}
	if FrameAddr(3) != 3*4096 {
		t.Errorf("FrameAddr = %d", FrameAddr(3))
	}
}

// TestFrameRoundTrip: composing and decomposing (frame, offset) is lossless
// for any inputs.
func TestFrameRoundTrip(t *testing.T) {
	f := func(frame, offset uint64) bool {
		frame &= (1 << 40) - 1 // stay clear of the space-tag bits
		offset &= PageSize - 1
		addr := AddrInFrame(frame, offset)
		return PageNum(addr) == frame && PageOffset(addr) == offset
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSpaceTagRoundTrip: tagging never changes the device address and the
// space is always recoverable.
func TestSpaceTagRoundTrip(t *testing.T) {
	f := func(addr uint64, cacheSpace bool) bool {
		addr &= SpaceBit - 1 // device addresses live below the tag bit
		s := SpacePhysical
		if cacheSpace {
			s = SpaceCache
		}
		tagged := TagSpace(addr, s)
		return SpaceOf(tagged) == s && Untag(tagged) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindDemand: "demand", KindMetadata: "metadata", KindFill: "fill",
		KindWriteback: "writeback", KindWalk: "walk",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(200).String() != "invalid" {
		t.Errorf("invalid kind string = %q", Kind(200).String())
	}
}

func TestSpaceStrings(t *testing.T) {
	if SpacePhysical.String() != "physical" || SpaceCache.String() != "cache" {
		t.Error("space strings wrong")
	}
	if Space(9).String() != "invalid" {
		t.Error("invalid space string wrong")
	}
}

func TestSubBlockIndexCoversPage(t *testing.T) {
	seen := map[uint]bool{}
	for off := uint64(0); off < PageSize; off += BlockSize {
		seen[SubBlockIndex(off)] = true
	}
	if len(seen) != SubBlocksPerPage {
		t.Fatalf("sub-block indexes cover %d values, want %d", len(seen), SubBlocksPerPage)
	}
}
