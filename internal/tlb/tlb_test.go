package tlb

import (
	"testing"
	"testing/quick"

	"nomad/internal/mem"
	"nomad/internal/sim"
)

// fakeWalker resolves every vpn to frame = vpn+1000 after a delay, counting
// walks.
type fakeWalker struct {
	eng   *sim.Engine
	delay uint64
	walks int
	space mem.Space
}

func (w *fakeWalker) Walk(core int, vaddr uint64, done func(Entry)) {
	w.walks++
	vpn := mem.PageNum(vaddr)
	w.eng.Schedule(w.delay, func() {
		done(Entry{VPN: vpn, Frame: vpn + 1000, Space: w.space})
	})
}

type dirLog struct {
	inserted []uint64
	evicted  []uint64
}

func (d *dirLog) TLBInserted(core int, e Entry) { d.inserted = append(d.inserted, e.Frame) }
func (d *dirLog) TLBEvicted(core int, e Entry)  { d.evicted = append(d.evicted, e.Frame) }

func newTestTLB(eng *sim.Engine, l1, l2 int, space mem.Space) (*TLB, *fakeWalker, *dirLog) {
	w := &fakeWalker{eng: eng, delay: 100, space: space}
	d := &dirLog{}
	return New(eng, 0, Config{L1Entries: l1, L2Entries: l2, L2Latency: 9}, w, d), w, d
}

func translate(t *testing.T, eng *sim.Engine, tl *TLB, vaddr uint64) Entry {
	t.Helper()
	var got *Entry
	tl.Translate(vaddr, func(e Entry) { got = &e })
	if !eng.RunUntil(func() bool { return got != nil }, 10000) {
		t.Fatal("translation never completed")
	}
	return *got
}

func TestL1HitIsSynchronous(t *testing.T) {
	eng := sim.New()
	tl, w, _ := newTestTLB(eng, 4, 16, mem.SpaceCache)
	translate(t, eng, tl, 0x5000)
	start := eng.Now()
	sync := false
	tl.Translate(0x5000, func(Entry) { sync = true })
	if !sync {
		t.Fatal("L1 TLB hit was not synchronous")
	}
	if eng.Now() != start {
		t.Fatal("L1 hit advanced time")
	}
	if w.walks != 1 {
		t.Fatalf("walks = %d, want 1", w.walks)
	}
	if tl.Stats().L1Hits != 1 {
		t.Fatalf("stats %+v", tl.Stats())
	}
}

func TestL2HitLatency(t *testing.T) {
	eng := sim.New()
	tl, _, _ := newTestTLB(eng, 1, 16, mem.SpaceCache)
	translate(t, eng, tl, 0x1000)
	translate(t, eng, tl, 0x2000) // evicts 0x1000 from the 1-entry L1
	start := eng.Now()
	e := translate(t, eng, tl, 0x1000) // L2 hit
	if eng.Now()-start != 9 {
		t.Fatalf("L2 hit latency = %d, want 9", eng.Now()-start)
	}
	if e.Frame != 1+1000 {
		t.Fatalf("frame = %d", e.Frame)
	}
	if tl.Stats().L2Hits != 1 {
		t.Fatalf("stats %+v", tl.Stats())
	}
}

func TestWalkCoalescing(t *testing.T) {
	eng := sim.New()
	tl, w, _ := newTestTLB(eng, 4, 16, mem.SpaceCache)
	n := 0
	tl.Translate(0x7000, func(Entry) { n++ })
	tl.Translate(0x7040, func(Entry) { n++ }) // same page
	eng.RunUntil(func() bool { return n == 2 }, 10000)
	if n != 2 || w.walks != 1 {
		t.Fatalf("n=%d walks=%d, want 2 walks=1", n, w.walks)
	}
	if tl.Stats().Coalesced != 1 {
		t.Fatalf("coalesced = %d", tl.Stats().Coalesced)
	}
}

func TestDirectoryTracksCacheEntries(t *testing.T) {
	eng := sim.New()
	tl, _, d := newTestTLB(eng, 2, 2, mem.SpaceCache)
	translate(t, eng, tl, 0)
	translate(t, eng, tl, mem.PageSize)
	if len(d.inserted) != 2 {
		t.Fatalf("inserted = %v", d.inserted)
	}
	// Third entry evicts from the 2-entry (inclusive) L2.
	translate(t, eng, tl, 2*mem.PageSize)
	if len(d.evicted) != 1 {
		t.Fatalf("evicted = %v", d.evicted)
	}
}

func TestDirectoryIgnoresPhysicalEntries(t *testing.T) {
	eng := sim.New()
	tl, _, d := newTestTLB(eng, 2, 4, mem.SpacePhysical)
	translate(t, eng, tl, 0)
	if len(d.inserted) != 0 {
		t.Fatal("physical-space entry reported to directory")
	}
}

func TestInvalidate(t *testing.T) {
	eng := sim.New()
	tl, w, d := newTestTLB(eng, 4, 16, mem.SpaceCache)
	translate(t, eng, tl, 0x9000)
	if !tl.Resident(9) {
		t.Fatal("entry not resident after walk")
	}
	if !tl.Invalidate(9) {
		t.Fatal("Invalidate missed a resident entry")
	}
	if tl.Resident(9) {
		t.Fatal("entry resident after Invalidate")
	}
	if len(d.evicted) != 1 {
		t.Fatalf("directory not notified on invalidate: %v", d.evicted)
	}
	translate(t, eng, tl, 0x9000)
	if w.walks != 2 {
		t.Fatalf("walks = %d, want 2 after invalidation", w.walks)
	}
	if tl.Invalidate(999) {
		t.Fatal("Invalidate matched a missing entry")
	}
}

// TestInclusionProperty: after any access sequence, every L1-resident entry
// is also L2-resident (the directory relies on L2 inclusivity).
func TestInclusionProperty(t *testing.T) {
	f := func(pages []uint8) bool {
		eng := sim.New()
		tl, _, _ := newTestTLB(eng, 4, 8, mem.SpaceCache)
		n := 0
		for _, p := range pages {
			tl.Translate(uint64(p)*mem.PageSize, func(Entry) { n++ })
		}
		eng.RunUntil(func() bool { return n == len(pages) }, 100000)
		if n != len(pages) {
			return false
		}
		for vpn := range tl.l1.entries {
			if _, ok := tl.l2.entries[vpn]; !ok {
				return false
			}
		}
		return len(tl.l1.entries) <= 4 && len(tl.l2.entries) <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectoryBalanceProperty: inserted events minus evicted events equals
// current cache-space residency in the L2.
func TestDirectoryBalanceProperty(t *testing.T) {
	f := func(pages []uint8) bool {
		eng := sim.New()
		tl, _, d := newTestTLB(eng, 2, 4, mem.SpaceCache)
		n := 0
		for _, p := range pages {
			tl.Translate(uint64(p)*mem.PageSize, func(Entry) { n++ })
		}
		eng.RunUntil(func() bool { return n == len(pages) }, 100000)
		return len(d.inserted)-len(d.evicted) == len(tl.l2.entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
