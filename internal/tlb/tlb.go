// Package tlb models per-core two-level TLBs and the page-table walk path.
//
// OS-managed DRAM cache schemes store the DC tag (a cache frame number) in
// the PTE, so a TLB hit yields the on-package cache address directly — the
// "ideal DC access time" property. All scheme-specific behaviour (examining
// the PTE, invoking the DC tag miss handler, blocking the thread) lives
// behind the Walker interface, which the scheme front-end implements.
//
// The TLB also feeds the CPD TLB directory used for shootdown avoidance: a
// Directory listener is told whenever a cache-space translation enters or
// leaves the (inclusive) second-level TLB, so the eviction daemon can skip
// TLB-resident cache frames (Algorithm 2, lines 6-8).
package tlb

import (
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/sim"
)

// Entry is a completed translation: virtual page -> frame in a space.
type Entry struct {
	VPN   uint64
	Frame uint64
	Space mem.Space
}

// Walker resolves a TLB miss. Implementations model the page-table walk and
// any OS miss handling; done fires when the translation is available. vaddr
// is the full faulting virtual address: OS-managed DC schemes use its page
// offset to set the prioritized sub-block (PI) of the cache-fill command
// (critical-data-first, §III-D.2).
type Walker interface {
	Walk(core int, vaddr uint64, done func(Entry))
}

// Directory observes residency of cache-space translations in the TLB (both
// levels; the L2 is inclusive of the L1). Physical-space entries are not
// reported.
type Directory interface {
	TLBInserted(core int, e Entry)
	TLBEvicted(core int, e Entry)
}

// Config sizes the two TLB levels.
type Config struct {
	L1Entries int
	L2Entries int
	L2Latency uint64 // added cycles for an L1-miss/L2-hit translation
}

// DefaultConfig matches the evaluation setup: 64-entry L1, 1536-entry L2,
// 9-cycle L2 access.
func DefaultConfig() Config {
	return Config{L1Entries: 64, L2Entries: 1536, L2Latency: 9}
}

// Stats counts translation events for one core's TLB.
//
//nomad:owner core
type Stats struct {
	L1Hits    uint64
	L2Hits    uint64
	Misses    uint64 // page-table walks
	Coalesced uint64
}

// MissRate returns walks / lookups.
func (s *Stats) MissRate() float64 {
	t := s.L1Hits + s.L2Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

//nomad:owner core
//nomad:ephemeral TLB array working state; divergence surfaces in the registered hit/miss counters
type slot struct {
	e   Entry
	lru uint64
}

//nomad:owner core
//nomad:ephemeral TLB array working state; divergence surfaces in the registered hit/miss counters
type level struct {
	entries map[uint64]*slot
	cap     int
	tick    uint64
}

func newLevel(capacity int) *level {
	return &level{entries: make(map[uint64]*slot, capacity), cap: capacity}
}

func (l *level) lookup(vpn uint64) (*slot, bool) {
	s, ok := l.entries[vpn]
	if ok {
		l.tick++
		s.lru = l.tick
	}
	return s, ok
}

// insert adds e, returning the evicted entry if the level was full.
func (l *level) insert(e Entry) (Entry, bool) {
	if s, ok := l.entries[e.VPN]; ok {
		l.tick++
		s.e = e
		s.lru = l.tick
		return Entry{}, false
	}
	var victim Entry
	evicted := false
	if len(l.entries) >= l.cap {
		var vk uint64
		oldest := ^uint64(0)
		for k, s := range l.entries {
			if s.lru < oldest {
				oldest = s.lru
				vk = k
			}
		}
		victim = l.entries[vk].e
		delete(l.entries, vk)
		evicted = true
	}
	l.tick++
	l.entries[e.VPN] = &slot{e: e, lru: l.tick}
	return victim, evicted
}

func (l *level) invalidate(vpn uint64) (Entry, bool) {
	s, ok := l.entries[vpn]
	if !ok {
		return Entry{}, false
	}
	delete(l.entries, vpn)
	return s.e, true
}

// TLB is one core's translation state.
//
//nomad:owner core
type TLB struct {
	core   int
	cfg    Config
	eng    *sim.Engine
	walker Walker
	dir    Directory
	l1, l2 *level
	// inFlight coalesces concurrent walks to the same VPN.
	//nomad:ephemeral lookup/walk working state; divergence surfaces in the registered hit/miss and walk counters
	inFlight map[uint64]*walkOp
	stats    Stats
	// walkLat records page-table-walk latency per walk (nil until
	// RegisterMetrics; Observe on nil is a no-op).
	walkLat *metrics.Histogram
	// hits is the freelist of pooled L2-hit completions (the deferred
	// done(entry) call after the L2 latency), so L2 hits do not allocate.
	//nomad:ephemeral lookup/walk working state; divergence surfaces in the registered hit/miss and walk counters
	hits []*hitOp
	// walks is the freelist of pooled in-flight page-table walks.
	//nomad:ephemeral lookup/walk working state; divergence surfaces in the registered hit/miss and walk counters
	walks []*walkOp
}

// hitOp is one pooled deferred L2-hit completion; fn is its permanent
// scheduled callback.
//
//nomad:owner core
type hitOp struct {
	e    Entry
	done func(Entry)
	fn   func()
}

// walkOp is one pooled in-flight page-table walk: the coalesced waiter list
// plus the walk's permanent completion callback fn, built once per instance.
//
//nomad:owner core
type walkOp struct {
	vpn     uint64
	start   uint64
	waiters []func(Entry)
	fn      func(Entry)
}

func (t *TLB) getWalk() *walkOp {
	if n := len(t.walks); n > 0 {
		op := t.walks[n-1]
		t.walks = t.walks[:n-1]
		return op
	}
	op := &walkOp{} //nomadlint:ignore poolalloc -- freelist constructor: the one allocation the pool amortizes
	op.fn = func(e Entry) { t.walkDone(op, e) }
	return op
}

// walkDone completes a walk: install the entry, recycle the op, then fire
// the coalesced waiters (release-before-callback: a waiter may start a new
// walk and reuse the op; the waiter array is handed back afterwards if the
// op is still unclaimed).
func (t *TLB) walkDone(op *walkOp, e Entry) {
	t.walkLat.Observe(t.eng.Now() - op.start)
	t.install(e)
	delete(t.inFlight, op.vpn)
	ws := op.waiters
	op.waiters = nil
	t.walks = append(t.walks, op)
	for i := range ws {
		ws[i](e)
	}
	for i := range ws {
		ws[i] = nil // release the done closures
	}
	if op.waiters == nil {
		op.waiters = ws[:0]
	}
}

func (t *TLB) getHit() *hitOp {
	if n := len(t.hits); n > 0 {
		op := t.hits[n-1]
		t.hits = t.hits[:n-1]
		return op
	}
	op := &hitOp{} //nomadlint:ignore poolalloc -- freelist constructor: the one allocation the pool amortizes
	op.fn = func() {
		e, done := op.e, op.done
		op.done = nil
		t.hits = append(t.hits, op)
		done(e)
	}
	return op
}

// New builds a TLB for the given core. dir may be nil.
func New(eng *sim.Engine, core int, cfg Config, walker Walker, dir Directory) *TLB {
	return &TLB{
		core:     core,
		cfg:      cfg,
		eng:      eng,
		walker:   walker,
		dir:      dir,
		l1:       newLevel(cfg.L1Entries),
		l2:       newLevel(cfg.L2Entries),
		inFlight: make(map[uint64]*walkOp),
	}
}

// Stats returns the TLB's counters.
func (t *TLB) Stats() *Stats { return &t.stats }

// RegisterMetrics exposes the TLB's counters in reg under prefix (e.g.
// "tlb.0"), plus a walk-latency histogram. Lazy, like every other
// component's registration.
func (t *TLB) RegisterMetrics(reg *metrics.Registry, prefix string) {
	s := &t.stats
	reg.CounterFunc(prefix+".l1_hits", func() uint64 { return s.L1Hits })
	reg.CounterFunc(prefix+".l2_hits", func() uint64 { return s.L2Hits })
	reg.CounterFunc(prefix+".walks", func() uint64 { return s.Misses })
	reg.CounterFunc(prefix+".coalesced", func() uint64 { return s.Coalesced })
	t.walkLat = reg.Histogram(prefix + ".walk_latency")
}

// Translate resolves the virtual address's page. done receives the entry;
// on an L1 hit it is called synchronously (zero added latency, the paper's
// ideal DC access path), otherwise after the L2 latency or the full walk.
func (t *TLB) Translate(vaddr uint64, done func(Entry)) {
	vpn := mem.PageNum(vaddr)
	if s, ok := t.l1.lookup(vpn); ok {
		t.stats.L1Hits++
		done(s.e)
		return
	}
	if s, ok := t.l2.lookup(vpn); ok {
		t.stats.L2Hits++
		e := s.e
		t.insertL1(e)
		op := t.getHit()
		op.e = e
		op.done = done
		t.eng.Schedule(t.cfg.L2Latency, op.fn)
		return
	}
	if op, ok := t.inFlight[vpn]; ok {
		t.stats.Coalesced++
		op.waiters = append(op.waiters, done)
		return
	}
	t.stats.Misses++
	op := t.getWalk()
	op.vpn = vpn
	op.start = t.eng.Now()
	op.waiters = append(op.waiters, done)
	t.inFlight[vpn] = op
	t.walker.Walk(t.core, vaddr, op.fn)
}

// install puts a walked entry into both levels, maintaining inclusion and
// notifying the directory.
func (t *TLB) install(e Entry) {
	victim, evicted := t.l2.insert(e)
	if evicted {
		t.l1.invalidate(victim.VPN)
		if t.dir != nil && victim.Space == mem.SpaceCache {
			t.dir.TLBEvicted(t.core, victim)
		}
	}
	if t.dir != nil && e.Space == mem.SpaceCache {
		t.dir.TLBInserted(t.core, e)
	}
	t.insertL1(e)
}

// insertL1 adds e to the first level; L1 evictions stay resident in L2 so
// the directory is not notified.
func (t *TLB) insertL1(e Entry) {
	t.l1.insert(e)
}

// Invalidate removes a translation from both levels (TLB shootdown). It
// reports whether the entry was present.
func (t *TLB) Invalidate(vpn uint64) bool {
	_, ok1 := t.l1.invalidate(vpn)
	e, ok2 := t.l2.invalidate(vpn)
	if ok2 && t.dir != nil && e.Space == mem.SpaceCache {
		t.dir.TLBEvicted(t.core, e)
	}
	return ok1 || ok2
}

// Resident reports whether vpn currently has a translation cached.
func (t *TLB) Resident(vpn uint64) bool {
	_, ok := t.l2.entries[vpn]
	return ok
}
