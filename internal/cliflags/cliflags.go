// Package cliflags centralises the command-line flags the nomad CLIs share,
// so cmd/nomadsim, cmd/experiments, and cmd/bench parse
// -timeline/-trace/-profile/-no-ff/-format/-engine (and friends) with one
// canonical name, default, and help string each, instead of keeping three
// hand-rolled copies that drift apart.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"strings"

	"nomad/internal/harness"
	"nomad/internal/obs"
	"nomad/internal/sim"
	"nomad/internal/system"
)

// Trace capture depths used when -trace is given: large enough that a short
// ROI fits without wrapping, small enough to keep memory per run modest.
const (
	TraceEventDepth = 1 << 16
	TraceSpanDepth  = 1 << 15
)

// Common holds the parsed shared flags. Each CLI applies the subset that is
// meaningful to it through the Apply helpers; parsing is identical
// everywhere.
type Common struct {
	// Timeline, Interval, TimelineMetrics configure interval time-series
	// capture (-timeline, -interval, -timeline-metrics).
	Timeline        bool
	Interval        uint64
	TimelineMetrics string
	// Digests enables interval digest-chain capture (-digests).
	Digests bool
	// Trace is the Perfetto output path (-trace); a non-empty value also
	// enables event/span capture at the standard depths.
	Trace string
	// Profile enables host-side self-profiling (-profile).
	Profile bool
	// NoFF disables idle-cycle fast-forward (-no-ff).
	NoFF bool
	// Engine names the event-queue implementation (-engine): "" or
	// "wheel" for the timing wheel, "heap" for the binary-heap oracle.
	Engine string
	// Parallel is each run's tick-phase worker count (-parallel); 0 or 1
	// runs sequentially. Results are byte-identical at every worker count.
	Parallel int
	// Format selects the output rendering (-format); each CLI validates
	// it against its supported set with CheckFormat.
	Format string
	// Pprof is the net/http/pprof listen address (-pprof, "" = off).
	Pprof string
	// HTTP is the introspection-server listen address (-http, "" = off):
	// /metrics, /runs, /runs/{key}/timeline, /debug/pprof.
	HTTP string
	// LogFormat selects the slog handler for host-side structured output
	// (-log-format): "text" or "json".
	LogFormat string
}

// Register installs the shared flags on fs and returns the struct their
// values land in. Call before fs.Parse.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.BoolVar(&c.Timeline, "timeline", false, "capture interval time-series telemetry (per-window IPC, hit rates, bandwidth)")
	fs.Uint64Var(&c.Interval, "interval", 0, "timeline/progress window in cycles (0 = 100000)")
	fs.StringVar(&c.TimelineMetrics, "timeline-metrics", "", "comma-separated name prefixes restricting timeline columns (e.g. core.,hbm.gbs.)")
	fs.BoolVar(&c.Digests, "digests", false, "capture interval digest chains (per-window chained registry digests; compare runs with nomaddiff)")
	fs.StringVar(&c.Trace, "trace", "", "write a Perfetto trace to this file (open at ui.perfetto.dev)")
	fs.BoolVar(&c.Profile, "profile", false, "self-profile the simulator (wall-clock cycles/sec, heap, GC pauses)")
	fs.BoolVar(&c.NoFF, "no-ff", false, "disable idle-cycle fast-forward (results are byte-identical either way)")
	fs.StringVar(&c.Engine, "engine", "", "event-queue implementation: wheel (default) or heap (the differential-testing oracle)")
	fs.IntVar(&c.Parallel, "parallel", 0, "tick-phase workers per run (0 or 1 = sequential; results are byte-identical at any count)")
	fs.StringVar(&c.Format, "format", "text", "output format")
	fs.StringVar(&c.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. :6060) while running")
	fs.StringVar(&c.HTTP, "http", "", "serve live introspection on this address (e.g. :6060): /metrics, /runs, /runs/{key}/timeline, /debug/pprof")
	fs.StringVar(&c.LogFormat, "log-format", "text", "structured log format for warnings and progress: text or json")
	return c
}

// Check validates the flag values that have a closed domain: -engine, and
// -format against the formats this CLI supports. It returns a user-facing
// error (the caller prints it and exits 2).
func (c *Common) Check(formats ...string) error {
	if _, err := sim.NewScheduler(sim.Kind(c.Engine)); err != nil {
		return fmt.Errorf("-engine %q: use %q or %q", c.Engine, sim.KindWheel, sim.KindHeap)
	}
	if c.Parallel < 0 {
		return fmt.Errorf("-parallel %d: worker count cannot be negative", c.Parallel)
	}
	if c.HTTP != "" {
		if _, _, err := net.SplitHostPort(c.HTTP); err != nil {
			return fmt.Errorf("-http %q: want host:port or :port", c.HTTP)
		}
	}
	if c.LogFormat != "text" && c.LogFormat != "json" {
		return fmt.Errorf("-log-format %q: use text or json", c.LogFormat)
	}
	for _, f := range formats {
		if c.Format == f {
			return nil
		}
	}
	return fmt.Errorf("unknown format %q; use %s", c.Format, strings.Join(formats, ", "))
}

// Kind returns the -engine selection as a sim.Kind.
func (c *Common) Kind() sim.Kind { return sim.Kind(c.Engine) }

// Metrics returns the -timeline-metrics prefixes, nil when unset.
func (c *Common) Metrics() []string {
	if c.TimelineMetrics == "" {
		return nil
	}
	return strings.Split(c.TimelineMetrics, ",")
}

// ApplySystem writes the shared knobs into a system.Config (cmd/nomadsim).
func (c *Common) ApplySystem(cfg *system.Config) {
	if c.Trace != "" {
		cfg.TraceDepth = TraceEventDepth
		cfg.SpanDepth = TraceSpanDepth
	}
	cfg.Timeline = c.Timeline
	cfg.Interval = c.Interval
	cfg.TimelineMetrics = c.Metrics()
	cfg.Digests = c.Digests
	cfg.SelfProfile = c.Profile
	cfg.FastForward = !c.NoFF
	cfg.Engine = c.Kind()
	cfg.Workers = c.Parallel
}

// ApplyOptions writes the shared knobs into harness.Options
// (cmd/experiments).
func (c *Common) ApplyOptions(o *harness.Options) {
	if c.Trace != "" {
		o.TraceDepth = TraceEventDepth
		o.SpanDepth = TraceSpanDepth
	}
	o.Timeline = c.Timeline
	o.Interval = c.Interval
	o.TimelineMetrics = c.Metrics()
	o.Digests = c.Digests
	o.SelfProfile = c.Profile
	o.NoFastForward = c.NoFF
	o.Engine = c.Kind()
	o.Workers = c.Parallel
}

// Logger builds the host-side structured logger writing to w in the
// -log-format encoding. Call after Check.
func (c *Common) Logger(w io.Writer) *slog.Logger {
	if c.LogFormat == "json" {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.NewTextHandler(w, nil))
}

// StartObs starts the live introspection server when -http was given and
// returns the run tracker feeding it; with -http unset it returns nil, which
// every obs consumer treats as "observation off". Serve errors and the bound
// address go through log.
func (c *Common) StartObs(log *slog.Logger) *obs.RunTracker {
	if c.HTTP == "" {
		return nil
	}
	tracker := obs.NewRunTracker()
	srv := obs.NewServer(tracker)
	addr, err := srv.Start(c.HTTP, func(err error) {
		log.Error("introspection server failed", "err", err)
	})
	if err != nil {
		log.Error("introspection server failed to listen", "addr", c.HTTP, "err", err)
		return nil
	}
	log.Info("introspection server listening", "addr", addr.String())
	return tracker
}

// StartPprof starts the net/http/pprof server when -pprof was given; serve
// errors go to w. It returns immediately.
func (c *Common) StartPprof(w io.Writer) {
	if c.Pprof == "" {
		return
	}
	addr := c.Pprof
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(w, "pprof: %v\n", err)
		}
	}()
}
