package cliflags

import (
	"bytes"
	"flag"
	"io"
	"strings"
	"testing"

	"nomad/internal/harness"
	"nomad/internal/sim"
	"nomad/internal/system"
)

// parse registers the shared flags on a fresh FlagSet and parses args.
func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return c
}

func TestDefaults(t *testing.T) {
	c := parse(t)
	if c.Timeline || c.Interval != 0 || c.TimelineMetrics != "" || c.Trace != "" {
		t.Errorf("timeline defaults wrong: %+v", c)
	}
	if c.Profile || c.NoFF || c.Engine != "" || c.Pprof != "" || c.HTTP != "" {
		t.Errorf("host defaults wrong: %+v", c)
	}
	if c.Format != "text" || c.LogFormat != "text" {
		t.Errorf("format defaults wrong: format=%q log-format=%q", c.Format, c.LogFormat)
	}
	if err := c.Check("text"); err != nil {
		t.Errorf("defaults fail Check: %v", err)
	}
}

func TestEngineFlag(t *testing.T) {
	for _, eng := range []string{"", "wheel", "heap"} {
		c := parse(t, "-engine", eng)
		if err := c.Check("text"); err != nil {
			t.Errorf("-engine %q rejected: %v", eng, err)
		}
	}
	c := parse(t, "-engine", "heap")
	if c.Kind() != sim.KindHeap {
		t.Errorf("Kind() = %q, want heap", c.Kind())
	}
	c = parse(t, "-engine", "quantum")
	if err := c.Check("text"); err == nil || !strings.Contains(err.Error(), "-engine") {
		t.Errorf("bad engine not rejected: %v", err)
	}
}

func TestNoFFFlag(t *testing.T) {
	c := parse(t, "-no-ff")
	var cfg system.Config
	c.ApplySystem(&cfg)
	if cfg.FastForward {
		t.Error("-no-ff did not disable fast-forward in system.Config")
	}
	var o harness.Options
	c.ApplyOptions(&o)
	if !o.NoFastForward {
		t.Error("-no-ff did not set harness NoFastForward")
	}
	c = parse(t)
	cfg = system.Config{}
	c.ApplySystem(&cfg)
	if !cfg.FastForward {
		t.Error("fast-forward not on by default")
	}
}

func TestHTTPFlag(t *testing.T) {
	for _, addr := range []string{"", ":6060", "localhost:6060", "127.0.0.1:0"} {
		c := parse(t, "-http", addr)
		if err := c.Check("text"); err != nil {
			t.Errorf("-http %q rejected: %v", addr, err)
		}
	}
	for _, addr := range []string{"6060", "localhost", "http://x:1"} {
		c := parse(t, "-http", addr)
		if err := c.Check("text"); err == nil || !strings.Contains(err.Error(), "-http") {
			t.Errorf("-http %q not rejected: %v", addr, err)
		}
	}
}

func TestLogFormatFlag(t *testing.T) {
	for _, f := range []string{"text", "json"} {
		c := parse(t, "-log-format", f)
		if err := c.Check("text"); err != nil {
			t.Errorf("-log-format %q rejected: %v", f, err)
		}
	}
	c := parse(t, "-log-format", "yaml")
	if err := c.Check("text"); err == nil || !strings.Contains(err.Error(), "-log-format") {
		t.Errorf("bad log format not rejected: %v", err)
	}

	var buf bytes.Buffer
	parse(t, "-log-format", "json").Logger(&buf).Info("hello", "k", "v")
	if !strings.HasPrefix(buf.String(), "{") || !strings.Contains(buf.String(), `"k":"v"`) {
		t.Errorf("json logger output wrong: %q", buf.String())
	}
	buf.Reset()
	parse(t).Logger(&buf).Info("hello", "k", "v")
	if strings.HasPrefix(buf.String(), "{") || !strings.Contains(buf.String(), "k=v") {
		t.Errorf("text logger output wrong: %q", buf.String())
	}
}

func TestFormatValidation(t *testing.T) {
	c := parse(t, "-format", "csv")
	if err := c.Check("text", "json"); err == nil || !strings.Contains(err.Error(), "csv") {
		t.Errorf("unsupported format not rejected: %v", err)
	}
	if err := c.Check("text", "json", "csv"); err != nil {
		t.Errorf("supported format rejected: %v", err)
	}
}

func TestTraceEnablesCapture(t *testing.T) {
	c := parse(t, "-trace", "out.json")
	var cfg system.Config
	c.ApplySystem(&cfg)
	if cfg.TraceDepth != TraceEventDepth || cfg.SpanDepth != TraceSpanDepth {
		t.Errorf("-trace did not set capture depths: %+v", cfg)
	}
}

func TestMetricsSplit(t *testing.T) {
	if m := parse(t).Metrics(); m != nil {
		t.Errorf("unset -timeline-metrics = %v, want nil", m)
	}
	m := parse(t, "-timeline-metrics", "core.,hbm.gbs.").Metrics()
	if len(m) != 2 || m[0] != "core." || m[1] != "hbm.gbs." {
		t.Errorf("Metrics() = %v", m)
	}
}

func TestStartObsOffByDefault(t *testing.T) {
	var buf bytes.Buffer
	c := parse(t)
	if tr := c.StartObs(c.Logger(&buf)); tr != nil {
		t.Error("StartObs returned a tracker with -http unset")
	}
	if buf.Len() != 0 {
		t.Errorf("StartObs logged with -http unset: %q", buf.String())
	}
}

func TestStartObsListens(t *testing.T) {
	var buf bytes.Buffer
	c := parse(t, "-http", "127.0.0.1:0")
	tr := c.StartObs(c.Logger(&buf))
	if tr == nil {
		t.Fatalf("StartObs returned nil tracker: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "listening") {
		t.Errorf("no listen log line: %q", buf.String())
	}
}
