package cache

import (
	"testing"
	"testing/quick"

	"nomad/internal/mem"
	"nomad/internal/sim"
)

// fakeLower records accesses and completes them after a fixed delay.
type fakeLower struct {
	eng     *sim.Engine
	delay   uint64
	reads   []uint64
	writes  []uint64
	stalled bool // when set, hold requests until release
	held    []func()
}

func (f *fakeLower) Access(req *mem.Request, done mem.Done) {
	if req.Write {
		f.writes = append(f.writes, req.Addr)
	} else {
		f.reads = append(f.reads, req.Addr)
	}
	fire := func() {
		if done != nil {
			done()
		}
	}
	if f.stalled {
		f.held = append(f.held, fire)
		return
	}
	f.eng.Schedule(f.delay, fire)
}

func (f *fakeLower) release() {
	for _, h := range f.held {
		f.eng.Schedule(f.delay, h)
	}
	f.held = nil
	f.stalled = false
}

func newTestCache(eng *sim.Engine, sets, ways, mshrs int) (*Cache, *fakeLower) {
	lower := &fakeLower{eng: eng, delay: 50}
	c := New(eng, Config{Name: "T", Sets: sets, Ways: ways, Latency: 2, MSHRs: mshrs}, lower)
	return c, lower
}

func read(eng *sim.Engine, c *Cache, addr uint64) *bool {
	done := new(bool)
	req := mem.Request{Addr: addr}
	c.Access(&req, func() { *done = true })
	return done
}

func wait(t *testing.T, eng *sim.Engine, flag *bool) {
	t.Helper()
	if !eng.RunUntil(func() bool { return *flag }, 100000) {
		t.Fatal("access never completed")
	}
}

func TestMissThenHit(t *testing.T) {
	eng := sim.New()
	c, lower := newTestCache(eng, 16, 2, 4)
	d1 := read(eng, c, 0x1000)
	wait(t, eng, d1)
	if len(lower.reads) != 1 {
		t.Fatalf("lower reads = %d, want 1", len(lower.reads))
	}
	start := eng.Now()
	d2 := read(eng, c, 0x1000)
	wait(t, eng, d2)
	if got := eng.Now() - start; got > 5 {
		t.Fatalf("hit latency %d, want <= latency+epsilon", got)
	}
	if len(lower.reads) != 1 {
		t.Fatal("hit went to lower level")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCoalescing(t *testing.T) {
	eng := sim.New()
	c, lower := newTestCache(eng, 16, 2, 4)
	d1 := read(eng, c, 0x2000)
	d2 := read(eng, c, 0x2010) // same 64 B block
	wait(t, eng, d1)
	wait(t, eng, d2)
	if len(lower.reads) != 1 {
		t.Fatalf("coalesced miss fetched %d times", len(lower.reads))
	}
	if c.Stats().Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", c.Stats().Coalesced)
	}
}

func TestWritebackOnEviction(t *testing.T) {
	eng := sim.New()
	c, lower := newTestCache(eng, 1, 2, 4) // one set, 2 ways
	// Dirty block A.
	wreq := mem.Request{Addr: 0, Write: true}
	wd := new(bool)
	c.Access(&wreq, func() { *wd = true })
	wait(t, eng, wd)
	// Fill B and C in the same set: evicts A (dirty -> writeback).
	d2 := read(eng, c, 64)
	wait(t, eng, d2)
	d3 := read(eng, c, 128)
	wait(t, eng, d3)
	if len(lower.writes) != 1 || mem.BlockAligned(lower.writes[0]) != 0 {
		t.Fatalf("expected writeback of block 0, got %v", lower.writes)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestLRUOrder(t *testing.T) {
	eng := sim.New()
	c, lower := newTestCache(eng, 1, 2, 4)
	wait(t, eng, read(eng, c, 0))   // A
	wait(t, eng, read(eng, c, 64))  // B
	wait(t, eng, read(eng, c, 0))   // touch A: B is now LRU
	wait(t, eng, read(eng, c, 128)) // C evicts B
	lower.reads = nil
	wait(t, eng, read(eng, c, 0)) // A should still hit
	if len(lower.reads) != 0 {
		t.Fatal("LRU evicted the recently used block")
	}
	wait(t, eng, read(eng, c, 64)) // B was evicted: miss
	if len(lower.reads) != 1 {
		t.Fatal("expected B to have been evicted")
	}
}

func TestMSHRBackpressure(t *testing.T) {
	eng := sim.New()
	c, lower := newTestCache(eng, 64, 4, 2)
	lower.stalled = true
	flags := make([]*bool, 5)
	for i := range flags {
		flags[i] = read(eng, c, uint64(i)*64)
	}
	eng.Run(100)
	if c.OutstandingMSHRs() != 2 {
		t.Fatalf("outstanding MSHRs = %d, want cap 2", c.OutstandingMSHRs())
	}
	if c.Stats().MSHRStalls != 3 {
		t.Fatalf("MSHR stalls = %d, want 3", c.Stats().MSHRStalls)
	}
	lower.release()
	for _, f := range flags {
		wait(t, eng, f)
	}
}

func TestFlushPage(t *testing.T) {
	eng := sim.New()
	c, lower := newTestCache(eng, 64, 4, 8)
	// Dirty two blocks and clean-read one within page 5.
	base := uint64(5 * mem.PageSize)
	for _, off := range []uint64{0, 64} {
		wr := mem.Request{Addr: base + off, Write: true}
		wd := new(bool)
		c.Access(&wr, func() { *wd = true })
		wait(t, eng, wd)
	}
	wait(t, eng, read(eng, c, base+128))
	lower.writes = nil
	wbs := c.FlushPage(base)
	if wbs != 2 {
		t.Fatalf("FlushPage wrote back %d lines, want 2", wbs)
	}
	if c.Stats().FlushedLines != 3 {
		t.Fatalf("flushed %d lines, want 3", c.Stats().FlushedLines)
	}
	// All three must now miss.
	lower.reads = nil
	wait(t, eng, read(eng, c, base))
	if len(lower.reads) != 1 {
		t.Fatal("flushed line did not miss")
	}
}

func TestWriteAllocatesDirty(t *testing.T) {
	eng := sim.New()
	c, lower := newTestCache(eng, 1, 1, 4)
	wr := mem.Request{Addr: 0, Write: true}
	wd := new(bool)
	c.Access(&wr, func() { *wd = true })
	wait(t, eng, wd)
	// Evict with another block: the write-allocated line must write back.
	wait(t, eng, read(eng, c, 64))
	if len(lower.writes) != 1 {
		t.Fatal("write-allocated line was not dirty on eviction")
	}
}

func TestConfigSize(t *testing.T) {
	cfg := Config{Sets: 64, Ways: 8}
	if cfg.SizeBytes() != 64*8*64 {
		t.Fatalf("SizeBytes = %d", cfg.SizeBytes())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets did not panic")
		}
	}()
	New(sim.New(), Config{Name: "bad", Sets: 3, Ways: 1}, nil)
}

// TestMissRateProperty: for any access sequence confined to a region that
// fits entirely in the cache, every block misses at most once (no spurious
// evictions), and all accesses complete.
func TestMissRateProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		if len(seq) == 0 {
			return true
		}
		eng := sim.New()
		c, lower := newTestCache(eng, 64, 4, 8) // 256 blocks >= 256 possible addrs
		complete := 0
		distinct := map[uint8]bool{}
		for _, b := range seq {
			distinct[b] = true
			req := mem.Request{Addr: uint64(b) * 64}
			c.Access(&req, func() { complete++ })
		}
		eng.RunUntil(func() bool { return complete == len(seq) }, 1_000_000)
		// The working set fits, so each distinct block is fetched from
		// the lower level at most once.
		return complete == len(seq) && len(lower.reads) <= len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
