// Package cache implements the SRAM cache hierarchy (private L1/L2, shared
// LLC): set-associative, LRU, writeback, write-allocate, with MSHRs that
// coalesce misses to the same block — the non-blocking cache design of
// Kroft / Farkas & Jouppi that both the HW DRAM-cache scheme and the NOMAD
// back-end are modeled after.
//
// Levels are chained through the Lower interface; below the LLC sits the
// memory scheme under evaluation (Baseline, TiD, TDC, NOMAD, or Ideal).
package cache

import (
	"fmt"
	"math/bits"

	"nomad/internal/check"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/sim"
)

// Lower is the downstream side of a cache level: the next cache level or,
// below the LLC, the DRAM-cache scheme.
type Lower interface {
	// Access performs a block-granular access. done runs when a read's
	// data is available or a write is accepted.
	Access(req *mem.Request, done mem.Done)
}

// Config describes one cache level.
//
//nomad:owner host
type Config struct {
	Name    string
	Sets    int
	Ways    int
	Latency uint64 // lookup latency in cycles
	MSHRs   int
	// WriteAround, when set, makes write misses bypass allocation and go
	// straight downstream (used by nothing by default; kept for ablation).
	WriteAround bool
}

// SizeBytes returns the capacity of a cache with this geometry.
func (c Config) SizeBytes() uint64 {
	return uint64(c.Sets) * uint64(c.Ways) * mem.BlockSize
}

// Stats counts per-level events.
//
//nomad:owner core
type Stats struct {
	Hits         uint64
	Misses       uint64
	Writebacks   uint64
	Coalesced    uint64 // misses merged into an existing MSHR
	MSHRStalls   uint64 // accesses delayed because all MSHRs were busy
	FlushedLines uint64
	FlushWBs     uint64
}

// MissRate returns misses / (hits+misses).
func (s *Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// invalidTag marks an empty way in the packed tag array. Tags are block
// numbers shifted down by the set bits, so the all-ones value cannot occur.
const invalidTag = ^uint64(0)

// wayMeta is the per-way state other than the tag. Tags live in their own
// packed uint64 array so the per-lookup way scan touches a couple of cache
// lines instead of every way's full record.
//
//nomad:owner core
//nomad:ephemeral per-way tag metadata; divergence surfaces in the registered hit/miss and writeback counters
type wayMeta struct {
	lru   uint64
	dirty bool
}

type waiter struct {
	write bool
	done  mem.Done
}

// mshr is one slot of the cache's fixed MSHR file. Slots live in a flat
// array (cache-friendly scan, no map or per-miss allocation); fillFn is the
// slot's permanent fill callback, built once at construction.
//
//nomad:owner core
//nomad:ephemeral miss-status-register working state; divergence surfaces in the registered MSHR stall counters
type mshr struct {
	block   uint64
	waiters []waiter
	fillFn  func()
	// write records whether any coalesced access was a write (line will
	// be installed dirty).
	write  bool
	active bool
	idx    int32  // slot index in mshrFile
	pos    int32  // position in mshrActive while active
	start  uint64 // allocation cycle (miss-latency histogram)
}

// accessOp is a pooled in-flight Access: the request copy plus its
// completion, carried across the lookup-latency delay by a prebuilt closure
// instead of a fresh capture per access. retried marks re-admissions after
// an MSHR stall (they skip hit/miss accounting).
//
//nomad:owner core
type accessOp struct {
	req     mem.Request
	done    mem.Done
	retried bool
	runFn   func()
}

// Cache is one level. It is event-driven: Access schedules the lookup after
// the configured latency.
//
//nomad:owner core
type Cache struct {
	cfg   Config
	eng   *sim.Engine
	lower Lower
	// tags[set*Ways+way] holds each way's tag (invalidTag when empty);
	// meta is the parallel dirty/LRU state.
	//nomad:ephemeral SRAM pipeline working state; divergence surfaces in the registered hit/miss/writeback counters
	tags []uint64
	meta []wayMeta
	// mshrFile is the fixed MSHR array. Allocation goes through mshrFreeIdx
	// (a stack of free slot indexes, O(1)); the per-miss coalesce scan
	// walks mshrActive, a compact array of the active slots' block numbers
	// (mshrActiveIdx maps each entry back to its slot), so its length is
	// the actual occupancy, not the file size.
	mshrFile   []mshr
	mshrActive []uint64
	//nomad:ephemeral SRAM pipeline working state; divergence surfaces in the registered hit/miss/writeback counters
	mshrActiveIdx []int32
	//nomad:ephemeral SRAM pipeline working state; divergence surfaces in the registered hit/miss/writeback counters
	mshrFreeIdx []int32
	// ops is the accessOp freelist; wbReq and fillReq are scratch requests
	// for writebacks and downstream fills (Lower.Access copies its
	// argument, per its contract, so a single scratch per purpose suffices
	// and keeps the miss path allocation-free — a local request would
	// escape through the interface call).
	//nomad:ephemeral SRAM pipeline working state; divergence surfaces in the registered hit/miss/writeback counters
	ops []*accessOp
	//nomad:ephemeral SRAM pipeline working state; divergence surfaces in the registered hit/miss/writeback counters
	wbReq mem.Request
	//nomad:ephemeral SRAM pipeline working state; divergence surfaces in the registered hit/miss/writeback counters
	fillReq mem.Request
	// pending holds accesses stalled on MSHR exhaustion, serviced FIFO as
	// MSHRs free; pendHead indexes the next one so pops keep the backing
	// array (re-slicing would bleed capacity and force reallocations).
	//nomad:ephemeral SRAM pipeline working state; divergence surfaces in the registered hit/miss/writeback counters
	pending []pendingAccess
	//nomad:ephemeral SRAM pipeline working state; divergence surfaces in the registered hit/miss/writeback counters
	pendHead int
	//nomad:ephemeral SRAM pipeline working state; divergence surfaces in the registered hit/miss/writeback counters
	lruTick uint64
	stats   Stats
	// mshrOcc samples MSHR occupancy at each allocation (nil until
	// RegisterMetrics; Observe on nil is a no-op).
	mshrOcc *metrics.Histogram
	// missLat records miss-to-fill latency per miss (RegisterMetrics).
	missLat *metrics.Histogram
	// spans/spanKind: when set, sampled accesses (Probe.SpanID != 0)
	// record one span of this level's kind covering the full access.
	spans    *metrics.SpanRing
	spanKind metrics.SpanKind

	setMask  uint64
	setShift uint
}

type pendingAccess struct {
	req  mem.Request
	done mem.Done
}

// New builds a cache level on top of lower.
func New(eng *sim.Engine, cfg Config, lower Lower) *Cache {
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.Sets <= 0 {
		panic(fmt.Sprintf("cache %s: sets must be a positive power of two, got %d", cfg.Name, cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", cfg.Name))
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 8
	}
	c := &Cache{
		cfg:           cfg,
		eng:           eng,
		lower:         lower,
		tags:          make([]uint64, cfg.Sets*cfg.Ways),
		meta:          make([]wayMeta, cfg.Sets*cfg.Ways),
		mshrFile:      make([]mshr, cfg.MSHRs),
		mshrActive:    make([]uint64, 0, cfg.MSHRs),
		mshrActiveIdx: make([]int32, 0, cfg.MSHRs),
		mshrFreeIdx:   make([]int32, 0, cfg.MSHRs),
		setMask:       uint64(cfg.Sets - 1),
		setShift:      mem.BlockBits,
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	// Free slots pop from the stack tail; seeding it in reverse keeps
	// allocation order by ascending slot index (cosmetic, but stable).
	for i := len(c.mshrFile) - 1; i >= 0; i-- {
		m := &c.mshrFile[i]
		m.idx = int32(i)
		m.fillFn = func() { c.fill(m) }
		c.mshrFreeIdx = append(c.mshrFreeIdx, int32(i))
	}
	_ = bits.UintSize // keep math/bits for future geometry checks
	return c
}

// getOp takes an accessOp from the freelist, building the instance (and its
// permanent run closure) only on first use.
func (c *Cache) getOp() *accessOp {
	if n := len(c.ops); n > 0 {
		op := c.ops[n-1]
		c.ops = c.ops[:n-1]
		return op
	}
	op := &accessOp{} //nomadlint:ignore poolalloc -- freelist constructor: the one allocation the pool amortizes
	op.runFn = func() { c.runOp(op) }
	return op
}

// runOp fires after the lookup latency: it recycles the op, then performs
// the tag check (release-before-callback: lookup may re-enter Access).
func (c *Cache) runOp(op *accessOp) {
	req, done, retried := op.req, op.done, op.retried
	op.req = mem.Request{} // drop the probe pointer
	op.done = nil
	op.retried = false
	c.ops = append(c.ops, op)
	c.lookup(req, done, retried)
}

// Stats returns the level's counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// RegisterMetrics exposes the level's counters in reg under prefix (e.g.
// "cache.llc" or "cache.l1.3") plus an MSHR-occupancy histogram sampled at
// each miss allocation.
func (c *Cache) RegisterMetrics(reg *metrics.Registry, prefix string) {
	s := &c.stats
	reg.CounterFunc(prefix+".hits", func() uint64 { return s.Hits })
	reg.CounterFunc(prefix+".misses", func() uint64 { return s.Misses })
	reg.CounterFunc(prefix+".writebacks", func() uint64 { return s.Writebacks })
	reg.CounterFunc(prefix+".coalesced", func() uint64 { return s.Coalesced })
	reg.CounterFunc(prefix+".mshr_stalls", func() uint64 { return s.MSHRStalls })
	reg.CounterFunc(prefix+".flushed_lines", func() uint64 { return s.FlushedLines })
	reg.CounterFunc(prefix+".flush_writebacks", func() uint64 { return s.FlushWBs })
	c.mshrOcc = reg.Histogram(prefix + ".mshr_occupancy")
	c.missLat = reg.Histogram(prefix + ".miss_latency")
}

// SetSpans makes sampled accesses (Probe.SpanID != 0) record one span of
// the given kind covering this level's access, lookup to completion.
func (c *Cache) SetSpans(spans *metrics.SpanRing, kind metrics.SpanKind) {
	c.spans = spans
	c.spanKind = kind
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(block uint64) uint64 { return block & c.setMask }
func (c *Cache) tagOf(block uint64) uint64 {
	return block >> uint(bits.TrailingZeros64(uint64(c.cfg.Sets)))
}

// Access performs a cache access for req (block-aligned internally). done is
// invoked when the access completes at this level.
func (c *Cache) Access(req *mem.Request, done mem.Done) {
	if p := req.Probe; p != nil && p.SpanID != 0 && c.spans != nil {
		// Sampled span path (1-in-N accesses): the wrapping closure is an
		// accepted allocation, paid only by sampled requests.
		start := c.eng.Now()
		inner := done
		id, core := p.SpanID, p.Core
		done = func() {
			c.spans.Emit(metrics.Span{
				ID: id, Kind: c.spanKind, Core: core,
				Start: start, End: c.eng.Now(),
			})
			if inner != nil {
				inner()
			}
		}
	}
	op := c.getOp()
	op.req = *req // copy: the caller may reuse the request
	op.done = done
	c.eng.Schedule(c.cfg.Latency, op.runFn)
}

// lookup performs the tag check. retried accesses (re-admitted after MSHR
// exhaustion) are not re-counted in the hit/miss statistics.
func (c *Cache) lookup(req mem.Request, done mem.Done, retried bool) {
	block := mem.BlockNum(req.Addr)
	base := int(c.setIndex(block)) * c.cfg.Ways
	tag := c.tagOf(block)
	for i, t := range c.tags[base : base+c.cfg.Ways] {
		if t == tag {
			if !retried {
				c.stats.Hits++
			}
			m := &c.meta[base+i]
			c.lruTick++
			m.lru = c.lruTick
			if req.Write {
				m.dirty = true
			}
			if done != nil {
				done()
			}
			return
		}
	}
	c.miss(req, block, done, retried)
}

func (c *Cache) miss(req mem.Request, block uint64, done mem.Done, retried bool) {
	if !retried {
		c.stats.Misses++
	}
	for i, b := range c.mshrActive {
		if b == block {
			m := &c.mshrFile[c.mshrActiveIdx[i]]
			c.stats.Coalesced++
			m.waiters = append(m.waiters, waiter{write: req.Write, done: done})
			if req.Write {
				m.write = true
			}
			return
		}
	}
	n := len(c.mshrFreeIdx)
	if n == 0 {
		c.stats.MSHRStalls++
		if req.Probe != nil {
			req.Probe.Cause = mem.StallMSHR
		}
		c.pending = append(c.pending, pendingAccess{req: req, done: done})
		return
	}
	idx := c.mshrFreeIdx[n-1]
	c.mshrFreeIdx = c.mshrFreeIdx[:n-1]
	m := &c.mshrFile[idx]
	m.block = block
	m.write = req.Write
	m.start = c.eng.Now()
	m.active = true
	m.pos = int32(len(c.mshrActive))
	m.waiters = append(m.waiters[:0], waiter{write: req.Write, done: done})
	c.mshrActive = append(c.mshrActive, block)
	c.mshrActiveIdx = append(c.mshrActiveIdx, idx)
	c.mshrOcc.Observe(uint64(len(c.mshrActive)))

	c.fillReq = req
	c.fillReq.Addr = mem.BlockAligned(req.Addr)
	c.fillReq.Write = false // fetch the block; the write merges on fill
	c.lower.Access(&c.fillReq, m.fillFn)
}

func (c *Cache) fill(m *mshr) {
	if check.Enabled {
		check.Assert(m.active,
			"cache %s: fill for block %#x hit an inactive MSHR slot", c.cfg.Name, m.block)
		check.Assert(len(m.waiters) > 0,
			"cache %s: MSHR for block %#x filled with no waiters", c.cfg.Name, m.block)
	}
	c.missLat.Observe(c.eng.Now() - m.start)
	block := m.block
	setIdx := c.setIndex(block)
	base := int(setIdx) * c.cfg.Ways
	tag := c.tagOf(block)

	// Victim selection: invalid first, else LRU.
	victim := 0
	var oldest uint64 = ^uint64(0)
	found := false
	for i, t := range c.tags[base : base+c.cfg.Ways] {
		if t == invalidTag {
			victim = i
			found = true
			break
		}
		if c.meta[base+i].lru < oldest {
			oldest = c.meta[base+i].lru
			victim = i
		}
	}
	v := &c.meta[base+victim]
	vtag := c.tags[base+victim]
	if !found && vtag != invalidTag && v.dirty {
		c.stats.Writebacks++
		// Reconstruct the victim's block address from tag and set.
		vblock := vtag<<uint(bits.TrailingZeros64(uint64(c.cfg.Sets))) | setIdx
		c.wbReq = mem.Request{
			Addr:  vblock << mem.BlockBits,
			Write: true,
			Kind:  mem.KindDemand,
			Core:  -1,
		}
		c.lower.Access(&c.wbReq, nil) // Access copies; wbReq is scratch
	}
	c.lruTick++
	c.tags[base+victim] = tag
	*v = wayMeta{dirty: m.write, lru: c.lruTick}

	// Free the slot before firing waiters (a waiter may re-enter and claim
	// it); detach the waiter list so a re-allocation cannot clobber it
	// mid-iteration, and hand the backing array back afterwards if the slot
	// is still unclaimed.
	ws := m.waiters
	m.waiters = nil
	m.active = false
	// Swap-remove the slot's entry from the compact active arrays and
	// return the slot to the free stack.
	last := len(c.mshrActive) - 1
	moved := c.mshrActiveIdx[last]
	c.mshrActive[m.pos] = c.mshrActive[last]
	c.mshrActiveIdx[m.pos] = moved
	c.mshrFile[moved].pos = m.pos
	c.mshrActive = c.mshrActive[:last]
	c.mshrActiveIdx = c.mshrActiveIdx[:last]
	c.mshrFreeIdx = append(c.mshrFreeIdx, m.idx)
	for i := range ws {
		if ws[i].done != nil {
			ws[i].done()
		}
	}
	for i := range ws {
		ws[i] = waiter{} // release the done closures
	}
	if m.waiters == nil {
		m.waiters = ws[:0]
	}
	// An MSHR freed: admit one stalled access, FIFO, through a pooled op
	// (stalls are common under small MSHR files, so the retry must not
	// allocate either).
	if len(c.pending) > c.pendHead {
		p := c.pending[c.pendHead]
		c.pending[c.pendHead] = pendingAccess{} // release the done closure
		c.pendHead++
		if c.pendHead == len(c.pending) {
			c.pending = c.pending[:0]
			c.pendHead = 0
		}
		op := c.getOp()
		op.req = p.req
		op.done = p.done
		op.retried = true
		c.eng.Schedule(0, op.runFn)
	}
}

// FlushPage invalidates every block of the given frame-aligned address range
// (one 4 KB page) at this level, writing dirty lines back downstream. It
// models flush_cache_range in the eviction daemon (Algorithm 2, line 3) and
// returns the number of dirty lines written back.
func (c *Cache) FlushPage(pageAddr uint64) int {
	wbs := 0
	first := mem.BlockNum(pageAddr &^ (mem.PageSize - 1))
	for i := uint64(0); i < mem.SubBlocksPerPage; i++ {
		block := first + i
		base := int(c.setIndex(block)) * c.cfg.Ways
		tag := c.tagOf(block)
		for j, t := range c.tags[base : base+c.cfg.Ways] {
			if t == tag {
				m := &c.meta[base+j]
				if m.dirty {
					wbs++
					c.stats.FlushWBs++
					wb := mem.Request{
						Addr:  block << mem.BlockBits,
						Write: true,
						Kind:  mem.KindDemand,
						Core:  -1,
					}
					c.lower.Access(&wb, nil)
				}
				c.tags[base+j] = invalidTag
				m.dirty = false
				c.stats.FlushedLines++
			}
		}
	}
	return wbs
}

// OutstandingMSHRs reports how many MSHRs are in use (for tests).
func (c *Cache) OutstandingMSHRs() int { return len(c.mshrActive) }
