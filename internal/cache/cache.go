// Package cache implements the SRAM cache hierarchy (private L1/L2, shared
// LLC): set-associative, LRU, writeback, write-allocate, with MSHRs that
// coalesce misses to the same block — the non-blocking cache design of
// Kroft / Farkas & Jouppi that both the HW DRAM-cache scheme and the NOMAD
// back-end are modeled after.
//
// Levels are chained through the Lower interface; below the LLC sits the
// memory scheme under evaluation (Baseline, TiD, TDC, NOMAD, or Ideal).
package cache

import (
	"fmt"
	"math/bits"

	"nomad/internal/check"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/sim"
)

// Lower is the downstream side of a cache level: the next cache level or,
// below the LLC, the DRAM-cache scheme.
type Lower interface {
	// Access performs a block-granular access. done runs when a read's
	// data is available or a write is accepted.
	Access(req *mem.Request, done mem.Done)
}

// Config describes one cache level.
type Config struct {
	Name    string
	Sets    int
	Ways    int
	Latency uint64 // lookup latency in cycles
	MSHRs   int
	// WriteAround, when set, makes write misses bypass allocation and go
	// straight downstream (used by nothing by default; kept for ablation).
	WriteAround bool
}

// SizeBytes returns the capacity of a cache with this geometry.
func (c Config) SizeBytes() uint64 {
	return uint64(c.Sets) * uint64(c.Ways) * mem.BlockSize
}

// Stats counts per-level events.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Writebacks   uint64
	Coalesced    uint64 // misses merged into an existing MSHR
	MSHRStalls   uint64 // accesses delayed because all MSHRs were busy
	FlushedLines uint64
	FlushWBs     uint64
}

// MissRate returns misses / (hits+misses).
func (s *Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

type waiter struct {
	write bool
	done  mem.Done
}

type mshr struct {
	block   uint64
	waiters []waiter
	// write records whether any coalesced access was a write (line will
	// be installed dirty).
	write bool
	start uint64 // allocation cycle (miss-latency histogram)
}

// Cache is one level. It is event-driven: Access schedules the lookup after
// the configured latency.
type Cache struct {
	cfg   Config
	eng   *sim.Engine
	lower Lower
	sets  [][]line
	mshrs map[uint64]*mshr
	// pending holds accesses stalled on MSHR exhaustion, serviced FIFO as
	// MSHRs free.
	pending []pendingAccess
	lruTick uint64
	stats   Stats
	// mshrOcc samples MSHR occupancy at each allocation (nil until
	// RegisterMetrics; Observe on nil is a no-op).
	mshrOcc *metrics.Histogram
	// missLat records miss-to-fill latency per miss (RegisterMetrics).
	missLat *metrics.Histogram
	// spans/spanKind: when set, sampled accesses (Probe.SpanID != 0)
	// record one span of this level's kind covering the full access.
	spans    *metrics.SpanRing
	spanKind metrics.SpanKind

	setMask  uint64
	setShift uint
}

type pendingAccess struct {
	req  mem.Request
	done mem.Done
}

// New builds a cache level on top of lower.
func New(eng *sim.Engine, cfg Config, lower Lower) *Cache {
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.Sets <= 0 {
		panic(fmt.Sprintf("cache %s: sets must be a positive power of two, got %d", cfg.Name, cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", cfg.Name))
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 8
	}
	c := &Cache{
		cfg:      cfg,
		eng:      eng,
		lower:    lower,
		sets:     make([][]line, cfg.Sets),
		mshrs:    make(map[uint64]*mshr, cfg.MSHRs),
		setMask:  uint64(cfg.Sets - 1),
		setShift: mem.BlockBits,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	_ = bits.UintSize // keep math/bits for future geometry checks
	return c
}

// Stats returns the level's counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// RegisterMetrics exposes the level's counters in reg under prefix (e.g.
// "cache.llc" or "cache.l1.3") plus an MSHR-occupancy histogram sampled at
// each miss allocation.
func (c *Cache) RegisterMetrics(reg *metrics.Registry, prefix string) {
	s := &c.stats
	reg.CounterFunc(prefix+".hits", func() uint64 { return s.Hits })
	reg.CounterFunc(prefix+".misses", func() uint64 { return s.Misses })
	reg.CounterFunc(prefix+".writebacks", func() uint64 { return s.Writebacks })
	reg.CounterFunc(prefix+".coalesced", func() uint64 { return s.Coalesced })
	reg.CounterFunc(prefix+".mshr_stalls", func() uint64 { return s.MSHRStalls })
	reg.CounterFunc(prefix+".flushed_lines", func() uint64 { return s.FlushedLines })
	reg.CounterFunc(prefix+".flush_writebacks", func() uint64 { return s.FlushWBs })
	c.mshrOcc = reg.Histogram(prefix + ".mshr_occupancy")
	c.missLat = reg.Histogram(prefix + ".miss_latency")
}

// SetSpans makes sampled accesses (Probe.SpanID != 0) record one span of
// the given kind covering this level's access, lookup to completion.
func (c *Cache) SetSpans(spans *metrics.SpanRing, kind metrics.SpanKind) {
	c.spans = spans
	c.spanKind = kind
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(block uint64) uint64 { return block & c.setMask }
func (c *Cache) tagOf(block uint64) uint64 {
	return block >> uint(bits.TrailingZeros64(uint64(c.cfg.Sets)))
}

// Access performs a cache access for req (block-aligned internally). done is
// invoked when the access completes at this level.
func (c *Cache) Access(req *mem.Request, done mem.Done) {
	r := *req // copy: the caller may reuse the request
	if p := r.Probe; p != nil && p.SpanID != 0 && c.spans != nil {
		start := c.eng.Now()
		inner := done
		id, core := p.SpanID, p.Core
		done = func() {
			c.spans.Emit(metrics.Span{
				ID: id, Kind: c.spanKind, Core: core,
				Start: start, End: c.eng.Now(),
			})
			if inner != nil {
				inner()
			}
		}
	}
	c.eng.Schedule(c.cfg.Latency, func() {
		c.lookup(r, done, false)
	})
}

// lookup performs the tag check. retried accesses (re-admitted after MSHR
// exhaustion) are not re-counted in the hit/miss statistics.
func (c *Cache) lookup(req mem.Request, done mem.Done, retried bool) {
	block := mem.BlockNum(req.Addr)
	set := c.sets[c.setIndex(block)]
	tag := c.tagOf(block)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			if !retried {
				c.stats.Hits++
			}
			c.lruTick++
			l.lru = c.lruTick
			if req.Write {
				l.dirty = true
			}
			if done != nil {
				done()
			}
			return
		}
	}
	c.miss(req, block, done, retried)
}

func (c *Cache) miss(req mem.Request, block uint64, done mem.Done, retried bool) {
	if !retried {
		c.stats.Misses++
	}
	if m, ok := c.mshrs[block]; ok {
		c.stats.Coalesced++
		m.waiters = append(m.waiters, waiter{write: req.Write, done: done})
		if req.Write {
			m.write = true
		}
		return
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.stats.MSHRStalls++
		if req.Probe != nil {
			req.Probe.Cause = mem.StallMSHR
		}
		c.pending = append(c.pending, pendingAccess{req: req, done: done})
		return
	}
	m := &mshr{block: block, write: req.Write, start: c.eng.Now()}
	m.waiters = append(m.waiters, waiter{write: req.Write, done: done})
	c.mshrs[block] = m
	if check.Enabled {
		check.Assert(len(c.mshrs) <= c.cfg.MSHRs,
			"cache %s: %d MSHRs allocated, capacity %d", c.cfg.Name, len(c.mshrs), c.cfg.MSHRs)
	}
	c.mshrOcc.Observe(uint64(len(c.mshrs)))

	fill := req
	fill.Addr = mem.BlockAligned(req.Addr)
	fill.Write = false // fetch the block; the write merges on fill
	c.lower.Access(&fill, func() {
		c.fill(m)
	})
}

func (c *Cache) fill(m *mshr) {
	if check.Enabled {
		check.Assert(c.mshrs[m.block] == m,
			"cache %s: fill for block %#x does not match its MSHR", c.cfg.Name, m.block)
		check.Assert(len(m.waiters) > 0,
			"cache %s: MSHR for block %#x filled with no waiters", c.cfg.Name, m.block)
	}
	c.missLat.Observe(c.eng.Now() - m.start)
	block := m.block
	setIdx := c.setIndex(block)
	set := c.sets[setIdx]
	tag := c.tagOf(block)

	// Victim selection: invalid first, else LRU.
	victim := 0
	var oldest uint64 = ^uint64(0)
	found := false
	for i := range set {
		if !set[i].valid {
			victim = i
			found = true
			break
		}
		if set[i].lru < oldest {
			oldest = set[i].lru
			victim = i
		}
	}
	v := &set[victim]
	if check.Enabled {
		check.Assert(found || v.valid,
			"cache %s: LRU victim in set %d is invalid but was not chosen as free", c.cfg.Name, setIdx)
	}
	if !found && v.valid && v.dirty {
		c.stats.Writebacks++
		// Reconstruct the victim's block address from tag and set.
		vblock := v.tag<<uint(bits.TrailingZeros64(uint64(c.cfg.Sets))) | setIdx
		wb := mem.Request{
			Addr:  vblock << mem.BlockBits,
			Write: true,
			Kind:  mem.KindDemand,
			Core:  -1,
		}
		c.lower.Access(&wb, nil)
	}
	c.lruTick++
	*v = line{tag: tag, valid: true, dirty: m.write, lru: c.lruTick}

	delete(c.mshrs, block)
	for _, w := range m.waiters {
		if w.done != nil {
			w.done()
		}
	}
	// An MSHR freed: admit one stalled access.
	if len(c.pending) > 0 {
		p := c.pending[0]
		c.pending = c.pending[1:]
		c.eng.Schedule(0, func() { c.lookup(p.req, p.done, true) })
	}
}

// FlushPage invalidates every block of the given frame-aligned address range
// (one 4 KB page) at this level, writing dirty lines back downstream. It
// models flush_cache_range in the eviction daemon (Algorithm 2, line 3) and
// returns the number of dirty lines written back.
func (c *Cache) FlushPage(pageAddr uint64) int {
	wbs := 0
	base := mem.BlockNum(pageAddr &^ (mem.PageSize - 1))
	for i := uint64(0); i < mem.SubBlocksPerPage; i++ {
		block := base + i
		set := c.sets[c.setIndex(block)]
		tag := c.tagOf(block)
		for j := range set {
			l := &set[j]
			if l.valid && l.tag == tag {
				if l.dirty {
					wbs++
					c.stats.FlushWBs++
					wb := mem.Request{
						Addr:  block << mem.BlockBits,
						Write: true,
						Kind:  mem.KindDemand,
						Core:  -1,
					}
					c.lower.Access(&wb, nil)
				}
				l.valid = false
				l.dirty = false
				c.stats.FlushedLines++
			}
		}
	}
	return wbs
}

// OutstandingMSHRs reports how many MSHRs are in use (for tests).
func (c *Cache) OutstandingMSHRs() int { return len(c.mshrs) }
