// Package cpu models the out-of-order cores of the evaluated chip
// multiprocessor at the level the paper's results depend on: a bounded
// reorder window (instructions retire in order, at most Width per cycle), a
// bounded number of outstanding loads (memory-level parallelism), and
// OS-routine blocking — the mechanism through which the blocking TDC scheme
// loses performance and NOMAD's 400-cycle tag handler appears.
//
// The core consumes a workload.Stream and issues memory operations through a
// MemPort (translation + SRAM hierarchy, wired by internal/system). Stores
// retire through an idealized store buffer (they complete at insert but
// still traverse the hierarchy and consume bandwidth); loads hold their ROB
// position until data returns.
//
// Representation: instructions are counted, not materialized. The ROB is the
// window [retireSeq, insertSeq); only loads occupy slots in a fixed ring
// (program order), so the per-cycle work and allocation are independent of
// instruction count.
//
// Stall accounting distinguishes:
//   - OSBlocked: cycles the thread is suspended by an OS routine (the
//     paper's "application stall cycles", Fig. 11);
//   - MemStall: cycles nothing retired because the ROB head was an
//     incomplete load;
//   - FrontStall: cycles nothing retired or inserted for other reasons.
package cpu

import (
	"nomad/internal/check"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/workload"
)

// MemPort is the core's path into the memory system. Load's done callback
// fires when data is available; Store is fire-and-forget (store buffer).
// p is the load's latency-provenance probe: the memory system updates
// p.Cause as the access moves (so head-of-ROB stall cycles are charged to
// the component currently holding the load) and emits spans tagged p.SpanID
// when the load was sampled. The pointer stays valid until done fires.
type MemPort interface {
	Load(core int, vaddr uint64, p *mem.Probe, done func())
	Store(core int, vaddr uint64)
}

// Config sizes one core.
//
//nomad:owner host
type Config struct {
	Width    int // issue/retire width
	ROBSize  int
	MaxLoads int // outstanding load cap (LSQ/MSHR reach)
}

// DefaultConfig matches the evaluation setup: 4-wide, 224-entry ROB, and 6
// outstanding loads — the effective MLP cap documented as deviation #4 in
// DESIGN.md (synthetic dependency-free streams otherwise exhibit
// unrealistically deep memory-level parallelism).
func DefaultConfig() Config {
	return Config{Width: 4, ROBSize: 224, MaxLoads: 6}
}

// Stats counts one core's progress and stalls.
//
//nomad:owner core
type Stats struct {
	Instructions uint64
	Cycles       uint64
	MemOps       uint64
	Loads        uint64
	Stores       uint64
	// OSBlockedCycles: thread suspended by an OS routine.
	OSBlockedCycles uint64
	// MemStallCycles: no retirement; ROB head was a pending load.
	MemStallCycles uint64
	// FrontStallCycles: no retirement and no insertion, other causes.
	FrontStallCycles uint64
	// OSBlockEvents counts suspensions (≈ DC tag misses for OS schemes).
	OSBlockEvents uint64
	// MemStallByCause splits MemStallCycles by the head load's current
	// stall cause (CPI stack, Fig. 11). The entries sum to MemStallCycles
	// by construction: each stalled cycle charges exactly one cause.
	MemStallByCause [mem.NumStallCauses]uint64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// StallRatio returns the fraction of cycles the thread was OS-suspended.
func (s *Stats) StallRatio() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.OSBlockedCycles) / float64(s.Cycles)
}

//nomad:owner core
//nomad:ephemeral load-queue slot working state; divergence surfaces in the registered stall-cause counters
type loadSlot struct {
	pos   uint64 // absolute instruction index
	done  bool
	start uint64    // cycle the load issued (span envelope start)
	probe mem.Probe // provenance tag; address is stable (fixed ring)
	// doneFn is the slot's completion callback, built once in New (the
	// ring is fixed, so the captured slot pointer stays valid). Reusing it
	// keeps load issue allocation-free.
	doneFn func()
}

// Core is one simulated CPU. Register it as a sim.Ticker.
//
//nomad:owner core
type Core struct {
	ID   int
	cfg  Config
	port MemPort
	wl   *workload.Stream

	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	insertSeq uint64 // next instruction index to insert
	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	retireSeq uint64 // next instruction index to retire

	loads []loadSlot // ring, program order; cap = ROBSize
	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	loadHead int
	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	loadCount int
	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	inFlight int // issued loads whose data has not returned

	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	gapLeft uint64
	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	memOp *workload.Op // fetched op whose memory access is not yet inserted
	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	opBuf workload.Op

	// blockCount tracks overlapping indefinite suspensions (a core can
	// have several tag misses in flight); blockedUntil handles
	// fixed-duration suspensions. The thread runs only when both clear.
	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	blockCount int
	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	blockedUntil uint64

	// Span sampling: 1-in-sampleEvery loads (deterministic, by load
	// sequence number) get a nonzero SpanID and emit latency spans.
	spans *metrics.SpanRing
	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	sampleEvery uint64
	//nomad:ephemeral ROB and load-queue working state; divergence surfaces in the registered instruction and stall counters
	nowCycle uint64 // current cycle, visible to load-done closures

	stats Stats
}

// New builds a core. The caller registers it with the engine.
func New(id int, cfg Config, port MemPort, wl *workload.Stream) *Core {
	if cfg.Width <= 0 || cfg.ROBSize <= 0 || cfg.MaxLoads <= 0 {
		panic("cpu: Width, ROBSize, and MaxLoads must be positive")
	}
	c := &Core{
		ID:    id,
		cfg:   cfg,
		port:  port,
		wl:    wl,
		loads: make([]loadSlot, cfg.ROBSize),
	}
	for i := range c.loads {
		slot := &c.loads[i]
		slot.doneFn = func() {
			slot.done = true
			c.inFlight--
			if slot.probe.SpanID != 0 {
				c.spans.Emit(metrics.Span{
					ID:    slot.probe.SpanID,
					Kind:  metrics.SpanLoad,
					Core:  int32(c.ID),
					Start: slot.start,
					End:   c.nowCycle,
				})
			}
		}
	}
	return c
}

// Stats returns the core's counters.
func (c *Core) Stats() *Stats { return &c.stats }

// SetSpanTracing samples 1 in every loads into the ring: the k-th load is
// sampled iff k ≡ 1 (mod every), which is deterministic across same-seed
// runs (no RNG). every <= 0 or a nil ring disables sampling.
func (c *Core) SetSpanTracing(spans *metrics.SpanRing, every uint64) {
	if spans == nil || every == 0 {
		c.spans, c.sampleEvery = nil, 0
		return
	}
	c.spans, c.sampleEvery = spans, every
}

// Block suspends the thread until a matching Unblock (OS routine of unknown
// duration, e.g. a TDC page copy). Calls nest.
//
//nomad:port thread scheduling: the channel-side OS engine suspends a core; becomes a core-shard control message
func (c *Core) Block() {
	if c.blockCount == 0 {
		c.stats.OSBlockEvents++
	}
	c.blockCount++
}

// BlockFor suspends the thread for a fixed number of cycles from now (e.g.
// NOMAD's tag-management latency). now is the current cycle.
func (c *Core) BlockFor(now, cycles uint64) {
	until := now + cycles
	if !c.Blocked() {
		c.stats.OSBlockEvents++
	}
	if until > c.blockedUntil {
		c.blockedUntil = until
	}
}

// Unblock undoes one Block.
//
//nomad:port thread scheduling: the channel-side OS engine resumes a core; becomes a core-shard control message
func (c *Core) Unblock() {
	if c.blockCount == 0 {
		panic("cpu: Unblock without Block")
	}
	c.blockCount--
}

// Blocked reports whether the thread is currently OS-suspended.
func (c *Core) Blocked() bool { return c.blockCount > 0 }

// OutstandingLoads reports in-flight loads (tests).
func (c *Core) OutstandingLoads() int { return c.inFlight }

// Tick advances the core one cycle.
func (c *Core) Tick(now uint64) {
	c.stats.Cycles++
	c.nowCycle = now

	if c.blockCount > 0 || now < c.blockedUntil {
		c.stats.OSBlockedCycles++
		return
	}

	// Retire: advance retireSeq up to Width instructions, stopping at the
	// first incomplete load.
	limit := c.retireSeq + uint64(c.cfg.Width)
	if limit > c.insertSeq {
		limit = c.insertSeq
	}
	headBlocked := false
	for c.loadCount > 0 {
		h := &c.loads[c.loadHead]
		if h.pos >= limit {
			break
		}
		if !h.done {
			headBlocked = h.pos == c.retireSeq
			limit = h.pos
			break
		}
		c.loadHead++
		if c.loadHead == len(c.loads) {
			c.loadHead = 0
		}
		c.loadCount--
	}
	retired := limit - c.retireSeq
	c.retireSeq = limit
	c.stats.Instructions += retired

	// Insert up to Width new instructions.
	budget := uint64(c.cfg.Width)
	inserted := uint64(0)
	for budget > 0 && c.insertSeq-c.retireSeq < uint64(c.cfg.ROBSize) {
		if c.gapLeft > 0 {
			// Bulk-insert non-memory instructions (they complete
			// immediately).
			n := c.gapLeft
			if n > budget {
				n = budget
			}
			if space := uint64(c.cfg.ROBSize) - (c.insertSeq - c.retireSeq); n > space {
				n = space
			}
			c.gapLeft -= n
			c.insertSeq += n
			budget -= n
			inserted += n
			continue
		}
		if c.memOp != nil {
			op := c.memOp
			if op.Write {
				c.stats.MemOps++
				c.stats.Stores++
				c.insertSeq++
				budget--
				inserted++
				c.port.Store(c.ID, op.Addr)
				c.memOp = nil
				continue
			}
			if c.inFlight >= c.cfg.MaxLoads {
				break // load cap: wait for an outstanding load
			}
			c.stats.MemOps++
			c.stats.Loads++
			idx := c.loadHead + c.loadCount
			if idx >= len(c.loads) {
				idx -= len(c.loads)
			}
			slot := &c.loads[idx]
			slot.pos = c.insertSeq
			slot.done = false
			slot.start = now
			slot.probe = mem.Probe{Core: int32(c.ID), Cause: mem.StallSRAM}
			if c.sampleEvery > 0 && (c.stats.Loads-1)%c.sampleEvery == 0 {
				// SpanID packs (core, load sequence) so IDs are unique
				// across cores and stable across same-seed runs.
				slot.probe.SpanID = uint64(c.ID+1)<<40 | c.stats.Loads
			}
			c.loadCount++
			c.inFlight++
			c.insertSeq++
			budget--
			inserted++
			c.port.Load(c.ID, op.Addr, &slot.probe, slot.doneFn)
			c.memOp = nil
			continue
		}
		// Fetch the next operation.
		c.opBuf = c.wl.Next()
		c.gapLeft = c.opBuf.Gap
		c.memOp = &c.opBuf
	}

	if retired == 0 {
		switch {
		case headBlocked:
			c.stats.MemStallCycles++
			// Charge the cause the head load is waiting on right now —
			// the memory system keeps probe.Cause current as the access
			// moves, so the CPI stack attributes each stalled cycle to
			// the component actually holding the data.
			c.stats.MemStallByCause[c.loads[c.loadHead].probe.Cause]++
		case inserted == 0:
			c.stats.FrontStallCycles++
		}
	}
}

// noWork mirrors sim.NoWork ("only an event can wake me"); the cpu package
// satisfies sim.FastForwarder structurally, without importing sim.
const noWork = ^uint64(0)

// NextWork implements the fast-forward half of the sim.FastForwarder
// protocol: it reports the earliest cycle after now at which Tick could do
// anything beyond charging one stall cycle, assuming no event (load
// completion, OS unblock) runs in between. The engine separately bounds
// jumps by the event heap, so "the head load's data returns" and "an OS
// routine unblocks the thread" never need to be predicted here.
func (c *Core) NextWork(now uint64) uint64 {
	if c.blockCount > 0 {
		// Indefinitely OS-suspended: only an Unblock event resumes it.
		return noWork
	}
	if c.blockedUntil > now+1 {
		// Fixed-duration suspension: pure OSBlocked cycles until then.
		return c.blockedUntil
	}
	if c.blockedUntil > now {
		return now + 1 // resumes next cycle
	}
	// Runnable. The next Tick is a pure head-of-ROB stall iff it can
	// neither retire (head is an incomplete load at retireSeq) nor insert
	// (ROB full, or a load stuck behind the outstanding-load cap with no
	// gap instructions or fetch available). Every condition below can only
	// change through an event, so a quiescent verdict holds until one runs.
	if c.insertSeq == c.retireSeq {
		return now + 1 // empty window: Tick would fetch and insert
	}
	if c.loadCount == 0 {
		return now + 1 // non-load instructions retire
	}
	if h := &c.loads[c.loadHead]; h.done || h.pos != c.retireSeq {
		return now + 1 // head retires, or instructions before it do
	}
	if c.insertSeq-c.retireSeq >= uint64(c.cfg.ROBSize) {
		return noWork // retire blocked and ROB full: nothing can move
	}
	if c.gapLeft > 0 || c.memOp == nil || c.memOp.Write || c.inFlight < c.cfg.MaxLoads {
		return now + 1 // Tick would insert or fetch
	}
	return noWork // retire blocked, insert stuck on the load cap
}

// SkipCycles bulk-accounts n skipped cycles (now+1 .. now+n). The engine
// guarantees the span is uniform — it never extends past blockedUntil, a
// scheduled event, or any cycle NextWork flagged — so the whole span
// charges the bucket the first skipped cycle would have: OSBlockedCycles
// while suspended, otherwise MemStallCycles under the head load's current
// stall cause (unchanged across the span, since only events move it).
func (c *Core) SkipCycles(now, n uint64) {
	c.stats.Cycles += n
	if c.blockCount > 0 || now+1 < c.blockedUntil {
		c.stats.OSBlockedCycles += n
		return
	}
	if check.Enabled {
		check.Assert(c.loadCount > 0 && !c.loads[c.loadHead].done &&
			c.loads[c.loadHead].pos == c.retireSeq,
			"cpu %d: skipping %d cycles at %d without a head-of-ROB stall", c.ID, n, now)
	}
	c.stats.MemStallCycles += n
	c.stats.MemStallByCause[c.loads[c.loadHead].probe.Cause] += n
}
