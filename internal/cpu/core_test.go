package cpu

import (
	"reflect"
	"testing"

	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/sim"
	"nomad/internal/workload"
)

// fakePort completes loads after a fixed delay and records issue counts.
type fakePort struct {
	eng    *sim.Engine
	delay  uint64
	loads  int
	stores int
	// maxConcurrent tracks the peak number of outstanding loads.
	outstanding   int
	maxConcurrent int
	// cause, when not StallSRAM, is written into every load's probe
	// (exercises per-cause stall attribution).
	cause mem.StallCause
}

func (p *fakePort) Load(core int, vaddr uint64, probe *mem.Probe, done func()) {
	p.loads++
	if probe != nil && p.cause != mem.StallSRAM {
		probe.Cause = p.cause
	}
	p.outstanding++
	if p.outstanding > p.maxConcurrent {
		p.maxConcurrent = p.outstanding
	}
	p.eng.Schedule(p.delay, func() {
		p.outstanding--
		done()
	})
}

func (p *fakePort) Store(core int, vaddr uint64) { p.stores++ }

// stream builds a workload whose every op has the given gap; write fraction
// zero unless stated.
func stream(gap int, writeFrac float64) *workload.Stream {
	return workload.NewStream(workload.Spec{
		Name: "t", FootprintPages: 64, RunBlocks: 64, SeqPageFrac: 1,
		GapMean: gap, WriteFrac: writeFrac,
	}, 1)
}

func newCore(eng *sim.Engine, cfg Config, wl *workload.Stream, delay uint64) (*Core, *fakePort) {
	p := &fakePort{eng: eng, delay: delay}
	c := New(0, cfg, p, wl)
	eng.AddTicker(c)
	return c, p
}

func TestComputeBoundIPC(t *testing.T) {
	eng := sim.New()
	// Huge gaps + instant loads: IPC should approach the width.
	c, _ := newCore(eng, Config{Width: 4, ROBSize: 128, MaxLoads: 8}, stream(1000, 0), 1)
	eng.Run(10000)
	if ipc := c.Stats().IPC(); ipc < 3.5 {
		t.Fatalf("compute-bound IPC = %.2f, want ~4", ipc)
	}
}

func TestMemoryBoundThroughput(t *testing.T) {
	eng := sim.New()
	// Gap 0, load latency 100, MLP 4: ~1 load per 25 cycles.
	c, p := newCore(eng, Config{Width: 4, ROBSize: 128, MaxLoads: 4}, stream(0, 0), 100)
	eng.Run(10000)
	if p.maxConcurrent > 4 {
		t.Fatalf("outstanding loads peaked at %d, cap 4", p.maxConcurrent)
	}
	got := float64(c.Stats().Loads) / 10000
	want := 4.0 / 100.0
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("load rate %.4f/cycle, want ~%.4f", got, want)
	}
	if c.Stats().MemStallCycles == 0 {
		t.Fatal("memory-bound run recorded no memory stalls")
	}
}

func TestMLPScalesThroughput(t *testing.T) {
	rate := func(mlp int) float64 {
		eng := sim.New()
		c, _ := newCore(eng, Config{Width: 4, ROBSize: 256, MaxLoads: mlp}, stream(0, 0), 100)
		eng.Run(20000)
		return c.Stats().IPC()
	}
	low, high := rate(2), rate(8)
	if high < low*2.5 {
		t.Fatalf("IPC with MLP 8 (%.3f) should be ~4x MLP 2 (%.3f)", high, low)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	eng := sim.New()
	// All stores, slow memory: the store buffer hides everything.
	c, p := newCore(eng, Config{Width: 4, ROBSize: 64, MaxLoads: 2}, stream(3, 1.0), 500)
	eng.Run(5000)
	if ipc := c.Stats().IPC(); ipc < 3.0 {
		t.Fatalf("store-only IPC = %.2f, want ~4 (store buffer)", ipc)
	}
	if p.stores == 0 {
		t.Fatal("no stores reached the port")
	}
}

func TestBlockSuspendsThread(t *testing.T) {
	eng := sim.New()
	c, _ := newCore(eng, Config{Width: 4, ROBSize: 64, MaxLoads: 4}, stream(10, 0), 10)
	eng.Run(100)
	before := c.Stats().Instructions
	c.Block()
	eng.Run(200)
	if c.Stats().Instructions != before {
		t.Fatal("blocked core retired instructions")
	}
	if c.Stats().OSBlockedCycles != 200 {
		t.Fatalf("OSBlockedCycles = %d, want 200", c.Stats().OSBlockedCycles)
	}
	c.Unblock()
	eng.Run(200)
	if c.Stats().Instructions == before {
		t.Fatal("unblocked core made no progress")
	}
	if c.Stats().OSBlockEvents != 1 {
		t.Fatalf("OSBlockEvents = %d, want 1", c.Stats().OSBlockEvents)
	}
}

func TestBlockNesting(t *testing.T) {
	eng := sim.New()
	c, _ := newCore(eng, Config{Width: 4, ROBSize: 64, MaxLoads: 4}, stream(10, 0), 10)
	c.Block()
	c.Block()
	c.Unblock()
	if !c.Blocked() {
		t.Fatal("nested block released too early")
	}
	c.Unblock()
	if c.Blocked() {
		t.Fatal("still blocked after matching unblocks")
	}
}

func TestBlockFor(t *testing.T) {
	eng := sim.New()
	c, _ := newCore(eng, Config{Width: 4, ROBSize: 64, MaxLoads: 4}, stream(10, 0), 10)
	eng.Run(10)
	before := c.Stats().Instructions
	c.BlockFor(eng.Now(), 100)
	eng.Run(99) // blocked through cycle now+99; resumes at now+100
	if c.Stats().Instructions != before {
		t.Fatal("core retired during fixed-duration block")
	}
	eng.Run(100)
	if c.Stats().Instructions == before {
		t.Fatal("core never resumed after BlockFor")
	}
}

func TestUnblockWithoutBlockPanics(t *testing.T) {
	c := New(0, DefaultConfig(), &fakePort{eng: sim.New()}, stream(1, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("Unblock without Block did not panic")
		}
	}()
	c.Unblock()
}

func TestROBBoundsInFlightInstructions(t *testing.T) {
	eng := sim.New()
	// ROB 16, loads never complete quickly: insertSeq-retireSeq <= 16.
	c, _ := newCore(eng, Config{Width: 4, ROBSize: 16, MaxLoads: 16}, stream(0, 0), 100000)
	eng.Run(1000)
	if occ := c.insertSeq - c.retireSeq; occ > 16 {
		t.Fatalf("ROB occupancy %d exceeds size 16", occ)
	}
	if c.Stats().Instructions != 0 {
		t.Fatal("retired past an incomplete load")
	}
}

func TestStallCauseAttribution(t *testing.T) {
	eng := sim.New()
	c, p := newCore(eng, Config{Width: 4, ROBSize: 128, MaxLoads: 4}, stream(0, 0), 100)
	p.cause = mem.StallDRAMQueue
	eng.Run(10000)
	s := c.Stats()
	var sum uint64
	for _, v := range s.MemStallByCause {
		sum += v
	}
	if sum != s.MemStallCycles {
		t.Fatalf("MemStallByCause sums to %d, MemStallCycles = %d", sum, s.MemStallCycles)
	}
	if s.MemStallCycles == 0 {
		t.Fatal("memory-bound run recorded no memory stalls")
	}
	// The port tags every load StallDRAMQueue, so every stalled cycle
	// must land in that bucket.
	if s.MemStallByCause[mem.StallDRAMQueue] != s.MemStallCycles {
		t.Fatalf("dram_queue bucket = %d, want all %d stall cycles",
			s.MemStallByCause[mem.StallDRAMQueue], s.MemStallCycles)
	}
}

func TestSpanSampling(t *testing.T) {
	eng := sim.New()
	c, _ := newCore(eng, Config{Width: 4, ROBSize: 128, MaxLoads: 4}, stream(0, 0), 50)
	ring := metrics.NewSpanRing(1 << 14)
	c.SetSpanTracing(ring, 4)
	eng.Run(20000)
	spans := ring.Spans()
	if len(spans) == 0 {
		t.Fatal("sampled run emitted no spans")
	}
	loads := c.Stats().Loads
	want := (loads + 3) / 4
	// Up to MaxLoads sampled loads may still be in flight at the horizon.
	if got := uint64(len(spans)); got < want-4 || got > want {
		t.Fatalf("got %d spans for %d loads at 1-in-4, want ~%d", got, loads, want)
	}
	seen := map[uint64]bool{}
	for _, s := range spans {
		if s.Kind != metrics.SpanLoad {
			t.Fatalf("core emitted span kind %v, want load", s.Kind)
		}
		if s.End < s.Start {
			t.Fatalf("span ends (%d) before it starts (%d)", s.End, s.Start)
		}
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %#x", s.ID)
		}
		seen[s.ID] = true
		if seq := s.ID & (1<<40 - 1); (seq-1)%4 != 0 {
			t.Fatalf("span ID %#x is not a 1-in-4 sample", s.ID)
		}
	}
	// Disabling restores the untagged path.
	c.SetSpanTracing(nil, 0)
	before := ring.Len()
	eng.Run(5000)
	if ring.Len() != before {
		t.Fatal("spans emitted after tracing was disabled")
	}
}

func TestInstructionAccounting(t *testing.T) {
	eng := sim.New()
	c, p := newCore(eng, Config{Width: 4, ROBSize: 128, MaxLoads: 8}, stream(9, 0), 5)
	eng.Run(20000)
	s := c.Stats()
	// Each op is 9 gap instructions + 1 load: loads ~= instructions/10.
	ratio := float64(s.Instructions) / float64(p.loads)
	if ratio < 9 || ratio > 11.5 {
		t.Fatalf("instructions per load = %.2f, want ~10", ratio)
	}
	if s.Cycles != 20000 {
		t.Fatalf("cycles = %d", s.Cycles)
	}
}

// TestDefaultConfigValues pins the evaluation setup so the doc comment and
// the code cannot drift again: 6 outstanding loads is deliberate (DESIGN.md
// deviation #4), not the 16 an earlier comment claimed.
func TestDefaultConfigValues(t *testing.T) {
	got := DefaultConfig()
	want := Config{Width: 4, ROBSize: 224, MaxLoads: 6}
	if got != want {
		t.Fatalf("DefaultConfig() = %+v, want %+v", got, want)
	}
}

// TestFastForwardStatsEquivalence runs identical core workloads with
// fast-forward on and off and requires every statistic — including the
// per-cause stall breakdown that SkipCycles must bulk-charge — to match
// exactly.
func TestFastForwardStatsEquivalence(t *testing.T) {
	cases := []struct {
		name      string
		gap       int
		writeFrac float64
		delay     uint64
		cause     mem.StallCause
		block     bool
	}{
		{name: "memory-bound", gap: 0, delay: 100, cause: mem.StallDRAMQueue},
		{name: "compute-bound", gap: 1000, delay: 1},
		{name: "mixed", gap: 10, writeFrac: 0.3, delay: 50, cause: mem.StallPCSHR},
		{name: "blocked", gap: 10, delay: 10, block: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(ff bool) *Stats {
				eng := sim.New()
				eng.SetFastForward(ff)
				c, p := newCore(eng, Config{Width: 4, ROBSize: 64, MaxLoads: 4}, stream(tc.gap, tc.writeFrac), tc.delay)
				p.cause = tc.cause
				if tc.block {
					eng.Run(100)
					c.BlockFor(eng.Now(), 5000)
				}
				eng.Run(10000)
				return c.Stats()
			}
			on, off := run(true), run(false)
			if !reflect.DeepEqual(on, off) {
				t.Fatalf("stats diverge:\n  ff on:  %+v\n  ff off: %+v", on, off)
			}
		})
	}
}
