package osmem

import (
	"testing"
	"testing/quick"
)

func TestFirstTouchAllocation(t *testing.T) {
	m := New(2, 16)
	p1 := m.PTEOf(0, 100)
	p2 := m.PTEOf(0, 100)
	if p1 != p2 {
		t.Fatal("repeated PTEOf returned different PTEs")
	}
	p3 := m.PTEOf(1, 100) // same VPN, different core: distinct page
	if p3.Frame == p1.Frame {
		t.Fatal("different cores shared a physical frame")
	}
	if ppd := m.PPDOf(p1.Frame); ppd == nil || len(ppd.Reverse) != 1 {
		t.Fatal("PPD reverse mapping missing")
	}
}

func TestAllocateReleaseRoundTrip(t *testing.T) {
	m := New(1, 8)
	pte := m.PTEOf(0, 5)
	pfn := pte.Frame
	cfn := m.AllocateFrame(pfn)
	m.SetCached(pfn, cfn)
	if !pte.Cached || pte.Frame != cfn {
		t.Fatalf("PTE not updated: %+v", pte)
	}
	if m.FreeFrames() != 7 {
		t.Fatalf("free = %d, want 7", m.FreeFrames())
	}
	m.MarkDirty(cfn)
	gotPFN, dirty := m.ReleaseFrame(cfn)
	if gotPFN != pfn || !dirty {
		t.Fatalf("ReleaseFrame = (%d,%v), want (%d,true)", gotPFN, dirty, pfn)
	}
	if pte.Cached || pte.Frame != pfn {
		t.Fatalf("PTE not restored: %+v", pte)
	}
	if m.FreeFrames() != 8 {
		t.Fatalf("free = %d, want 8", m.FreeFrames())
	}
}

func TestFIFOOrder(t *testing.T) {
	m := New(1, 4)
	var cfns []uint64
	for i := uint64(0); i < 4; i++ {
		pte := m.PTEOf(0, i)
		cfns = append(cfns, m.AllocateFrame(pte.Frame))
	}
	for i, c := range cfns {
		if c != uint64(i) {
			t.Fatalf("allocation order %v, want sequential", cfns)
		}
	}
	victims, skips := m.EvictCandidates(2)
	if skips != 0 || len(victims) != 2 || victims[0] != 0 || victims[1] != 1 {
		t.Fatalf("victims = %v (skips %d), want [0 1]", victims, skips)
	}
}

func TestTLBDirectorySkip(t *testing.T) {
	m := New(1, 4)
	for i := uint64(0); i < 3; i++ {
		pte := m.PTEOf(0, i)
		cfn := m.AllocateFrame(pte.Frame)
		m.SetCached(pte.Frame, cfn)
	}
	m.TLBSet(0, 0, true) // frame 0 is TLB-resident
	victims, skips := m.EvictCandidates(3)
	if skips != 1 {
		t.Fatalf("skips = %d, want 1", skips)
	}
	for _, v := range victims {
		if v == 0 {
			t.Fatal("evicted a TLB-resident frame")
		}
	}
	m.TLBSet(0, 0, false)
	if m.CPDOf(0).TLBDir != 0 {
		t.Fatal("TLB directory bit not cleared")
	}
}

func TestHeadSkipsValidFrames(t *testing.T) {
	m := New(1, 4)
	// Fill all 4, evict 1..3 but leave 0 valid (as if TLB-resident kept
	// it), then wrap: the head must skip frame 0.
	for i := uint64(0); i < 4; i++ {
		pte := m.PTEOf(0, i)
		m.AllocateFrame(pte.Frame)
		m.SetCached(pte.Frame, uint64(i))
	}
	for i := uint64(1); i < 4; i++ {
		m.ReleaseFrame(i)
	}
	pte := m.PTEOf(0, 10)
	cfn := m.AllocateFrame(pte.Frame)
	if cfn == 0 {
		t.Fatal("allocated a still-valid frame")
	}
	if cfn != 1 {
		t.Fatalf("cfn = %d, want 1", cfn)
	}
}

func TestSharedPage(t *testing.T) {
	m := New(2, 8)
	pte0 := m.PTEOf(0, 7)
	pfn := pte0.Frame
	pte1 := m.MapShared(1, 7, pfn)
	if pte1.Frame != pfn {
		t.Fatalf("shared PTE frame = %d, want %d", pte1.Frame, pfn)
	}
	cfn := m.AllocateFrame(pfn)
	m.SetCached(pfn, cfn)
	if !pte0.Cached || !pte1.Cached || pte0.Frame != cfn || pte1.Frame != cfn {
		t.Fatal("shared-page caching did not update all PTEs")
	}
	m.ReleaseFrame(cfn)
	if pte0.Cached || pte1.Cached || pte0.Frame != pfn || pte1.Frame != pfn {
		t.Fatal("shared-page eviction did not restore all PTEs")
	}
}

func TestMapSharedToCachedPage(t *testing.T) {
	m := New(2, 8)
	pte0 := m.PTEOf(0, 3)
	pfn := pte0.Frame
	cfn := m.AllocateFrame(pfn)
	m.SetCached(pfn, cfn)
	pte1 := m.MapShared(1, 3, pfn)
	if !pte1.Cached || pte1.Frame != cfn {
		t.Fatalf("sharing a cached page: PTE = %+v, want cached CFN %d", pte1, cfn)
	}
}

func TestExhaustionPanics(t *testing.T) {
	m := New(1, 1)
	pte := m.PTEOf(0, 0)
	m.AllocateFrame(pte.Frame)
	defer func() {
		if recover() == nil {
			t.Fatal("allocation with zero free frames did not panic")
		}
	}()
	m.AllocateFrame(m.PTEOf(0, 1).Frame)
}

// TestFreeCountInvariant: any interleaving of allocations and batch
// evictions keeps FreeFrames consistent with the CPD valid bits, and PTEs
// always point at either their PFN (uncached) or a valid CFN (cached).
func TestFreeCountInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New(1, 32)
		next := uint64(0)
		for _, op := range ops {
			if op%4 != 0 || m.FreeFrames() == 0 {
				if m.FreeFrames() == 0 {
					victims, _ := m.EvictCandidates(8)
					for _, v := range victims {
						m.ReleaseFrame(v)
					}
					continue
				}
			}
			if op%4 == 3 && m.FreeFrames() < 32 {
				victims, _ := m.EvictCandidates(4)
				for _, v := range victims {
					m.ReleaseFrame(v)
				}
				continue
			}
			pte := m.PTEOf(0, next)
			next++
			cfn := m.AllocateFrame(pte.Frame)
			m.SetCached(pte.Frame, cfn)
		}
		if m.ValidFrames()+m.FreeFrames() != 32 {
			return false
		}
		// Every cached PTE must point at a valid CPD with matching PFN.
		for vpn := uint64(0); vpn < next; vpn++ {
			pte := m.PTEOf(0, vpn)
			if pte.Cached {
				cpd := m.CPDOf(pte.Frame)
				if !cpd.Valid {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
