//go:build invariants

package osmem

import "testing"

// TestFreeFrameAccounting churns the free queue through allocate / evict /
// release cycles and verifies the ledger against a full descriptor scan
// after every phase. It runs only under -tags invariants, alongside the
// inline check.Assert calls in AllocateFrame/ReleaseFrame.
func TestFreeFrameAccounting(t *testing.T) {
	const frames = 64
	m := New(2, frames)
	audit := func(stage string) {
		t.Helper()
		if err := m.CheckAccounting(); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}
	audit("fresh")

	// Fill the cache completely, touching pages on both cores.
	vpn := uint64(0)
	for m.FreeFrames() > 0 {
		core := int(vpn % 2)
		pte := m.PTEOf(core, vpn)
		cfn := m.AllocateFrame(pte.Frame)
		m.SetCached(pte.Frame, cfn)
		if vpn%3 == 0 {
			m.MarkDirty(cfn)
		}
		vpn++
	}
	audit("full")

	// Several eviction revolutions with interleaved re-allocation.
	for round := 0; round < 8; round++ {
		victims, _ := m.EvictCandidates(frames / 4)
		for _, cfn := range victims {
			m.ReleaseFrame(cfn)
		}
		audit("after evict")
		for range victims {
			core := int(vpn % 2)
			pte := m.PTEOf(core, vpn)
			cfn := m.AllocateFrame(pte.Frame)
			m.SetCached(pte.Frame, cfn)
			vpn++
		}
		audit("after refill")
	}

	// TLB-resident frames are skipped by the victim scan and must stay
	// allocated.
	victims, _ := m.EvictCandidates(frames)
	for i, cfn := range victims {
		if i%2 == 0 {
			m.TLBSet(cfn, 0, true)
			continue
		}
		m.ReleaseFrame(cfn)
	}
	audit("after partial release")
}
