// Package osmem implements the operating-system memory-management substrate
// shared by the OS-managed DRAM cache schemes (TDC and NOMAD): per-process
// page tables with the paper's PTE extension (cached / non-cacheable bits, a
// frame field holding either a PFN or a CFN), physical page descriptors
// (PPDs) with reverse mappings, cache page descriptors (CPDs) with valid,
// dirty-in-cache, and TLB-directory fields, and the circular free queue with
// head/tail pointers from which cache frames are allocated FIFO (Fig. 5).
//
// Everything here is functional state; timing (the 400-cycle handler
// latency, mutex contention, copy time) is modeled by the scheme front-ends
// that drive these structures.
package osmem

import (
	"fmt"

	"nomad/internal/check"
)

// PTE is a page-table entry with the NOMAD extension (Fig. 4). Frame holds a
// PFN when Cached is false and a CFN when Cached is true.
//
//nomad:owner channel
//nomad:ephemeral page-table state; divergence surfaces in the registered walk and migration counters
type PTE struct {
	Frame        uint64
	Present      bool
	Cached       bool // C bit
	NonCacheable bool // NC bit
	Dirty        bool // conventional dirty (in off-package memory)
	DirtyInCache bool // DC bit
}

// Mapping identifies one PTE by its owner: (process/core, virtual page).
type Mapping struct {
	Core int
	VPN  uint64
}

// PPD is a physical page descriptor, extended with the cached (C) and
// non-cacheable (NC) bits (Fig. 4). Reverse mappings let the eviction daemon
// find every PTE of a physical frame (Algorithm 2, lines 12-15), including
// shared pages.
//
//nomad:owner channel
//nomad:ephemeral frame placement state; divergence surfaces in the registered migration counters
type PPD struct {
	Cached       bool
	NonCacheable bool
	Dirty        bool
	// Walks counts page-table walks that found the page uncached; the
	// selective-caching policy (§V: Thermostat/KLOCs-style mechanisms the
	// OS-managed design can adopt) caches a page only after a threshold
	// of such touches.
	Walks   uint64
	Reverse []Mapping
}

// CPD is a cache page descriptor (Fig. 4): the state of one DRAM-cache
// frame.
//
//nomad:owner channel
//nomad:ephemeral cache-frame placement state; divergence surfaces in the registered migration counters
type CPD struct {
	Valid        bool
	DirtyInCache bool   // DC bit: writeback required on eviction
	PFN          uint64 // original physical frame, for reclamation
	// TLBDir has one bit per core: whether that core's TLB holds a
	// translation to this cache frame (used for shootdown avoidance).
	TLBDir uint64
}

// Manager owns page tables, descriptors, and the cache-frame free queue.
//
//nomad:owner channel
//nomad:ephemeral OS placement bookkeeping; divergence surfaces in the registered migration and walk counters
type Manager struct {
	cores      int
	pageTables []map[uint64]*PTE // per core: VPN -> PTE

	ppds    map[uint64]*PPD // PFN -> descriptor (sparse)
	nextPFN uint64

	cpds    []CPD // CFN -> descriptor (dense: the DC is small)
	head    uint64
	tail    uint64
	numFree uint64
}

// New creates a Manager for the given core count and DRAM-cache capacity in
// frames.
func New(cores int, cacheFrames uint64) *Manager {
	m := &Manager{
		cores:      cores,
		pageTables: make([]map[uint64]*PTE, cores),
		ppds:       make(map[uint64]*PPD),
		cpds:       make([]CPD, cacheFrames),
		numFree:    cacheFrames,
	}
	for i := range m.pageTables {
		m.pageTables[i] = make(map[uint64]*PTE)
	}
	return m
}

// CacheFrames returns the DRAM-cache capacity in frames.
func (m *Manager) CacheFrames() uint64 { return uint64(len(m.cpds)) }

// FreeFrames returns the current number of free cache frames.
func (m *Manager) FreeFrames() uint64 { return m.numFree }

// Head and Tail expose the free-queue pointers (for tests and stats).
func (m *Manager) Head() uint64 { return m.head }
func (m *Manager) Tail() uint64 { return m.tail }

// PTEOf returns the PTE for (core, vpn), demand-allocating the physical
// frame on first touch (conventional first-touch allocation policy).
func (m *Manager) PTEOf(core int, vpn uint64) *PTE {
	pt := m.pageTables[core]
	if pte, ok := pt[vpn]; ok {
		return pte
	}
	pfn := m.nextPFN
	m.nextPFN++
	pte := &PTE{Frame: pfn, Present: true}
	pt[vpn] = pte
	m.ppds[pfn] = &PPD{Reverse: []Mapping{{Core: core, VPN: vpn}}}
	return pte
}

// MapShared maps (core, vpn) to an existing physical frame, modeling a
// shared page: both PTEs resolve to the same PFN and the PPD's reverse
// mapping covers both.
func (m *Manager) MapShared(core int, vpn uint64, pfn uint64) *PTE {
	ppd, ok := m.ppds[pfn]
	if !ok {
		panic(fmt.Sprintf("osmem: MapShared to unallocated PFN %d", pfn))
	}
	pte := &PTE{Frame: pfn, Present: true, Cached: ppd.Cached, NonCacheable: ppd.NonCacheable}
	if ppd.Cached {
		// Shared page already cached: the new PTE must resolve to the
		// CFN, found via any existing mapping.
		for cfn := range m.cpds {
			if m.cpds[cfn].Valid && m.cpds[cfn].PFN == pfn {
				pte.Frame = uint64(cfn)
				break
			}
		}
	}
	m.pageTables[core][vpn] = pte
	ppd.Reverse = append(ppd.Reverse, Mapping{Core: core, VPN: vpn})
	return pte
}

// PPDOf returns the descriptor of a physical frame (nil if unallocated).
func (m *Manager) PPDOf(pfn uint64) *PPD { return m.ppds[pfn] }

// CPDOf returns the descriptor of a cache frame.
func (m *Manager) CPDOf(cfn uint64) *CPD { return &m.cpds[cfn] }

// AllocateFrame implements the allocation half of Algorithm 1 (lines 2-5,
// 7-11): advance the head past unfree frames (possible after TLB-shootdown
// avoidance skips), claim the frame, record the PFN, and decrement the free
// count. It returns the allocated CFN. The caller is responsible for PTE and
// timing updates.
func (m *Manager) AllocateFrame(pfn uint64) uint64 {
	n := uint64(len(m.cpds))
	if m.numFree == 0 {
		panic("osmem: no free cache frames (eviction daemon starved)")
	}
	for m.cpds[m.head].Valid {
		m.head = (m.head + 1) % n
	}
	cfn := m.head
	m.head = (m.head + 1) % n
	cpd := &m.cpds[cfn]
	if check.Enabled {
		check.Assert(!cpd.Valid, "osmem: allocating occupied cache frame %d", cfn)
	}
	cpd.Valid = true
	cpd.DirtyInCache = false
	cpd.PFN = pfn
	cpd.TLBDir = 0
	m.numFree--
	if check.Enabled {
		check.Assert(m.numFree <= n, "osmem: free count %d exceeds %d frames after allocate", m.numFree, n)
	}
	return cfn
}

// EvictCandidates implements the victim scan of Algorithm 2: starting at the
// tail, examine up to batch frames, skipping frames whose translations are
// TLB-resident (TLBDir != 0) and frames that are already free. It returns
// the CFNs to evict plus the number of TLB-shootdown-avoidance skips, and
// advances the tail past examined frames.
func (m *Manager) EvictCandidates(batch int) (victims []uint64, tlbSkips int) {
	n := uint64(len(m.cpds))
	if uint64(batch) > n {
		// Never scan more than one full revolution, or the same frame
		// would be returned twice.
		batch = int(n)
	}
	victims = make([]uint64, 0, batch)
	for i := 0; i < batch; i++ {
		cfn := m.tail
		m.tail = (m.tail + 1) % n
		cpd := &m.cpds[cfn]
		if !cpd.Valid {
			continue
		}
		if cpd.TLBDir != 0 {
			tlbSkips++ // in a TLB: skip to avoid a shootdown
			continue
		}
		victims = append(victims, cfn)
	}
	return victims, tlbSkips
}

// ReleaseFrame invalidates a cache frame and restores every PTE mapping its
// physical frame (Algorithm 2, lines 12-17). It returns the PFN and whether
// the frame was dirty in cache (writeback required).
func (m *Manager) ReleaseFrame(cfn uint64) (pfn uint64, dirty bool) {
	cpd := &m.cpds[cfn]
	if !cpd.Valid {
		panic(fmt.Sprintf("osmem: releasing free cache frame %d", cfn))
	}
	pfn = cpd.PFN
	dirty = cpd.DirtyInCache
	ppd := m.ppds[pfn]
	for _, mp := range ppd.Reverse {
		pte := m.pageTables[mp.Core][mp.VPN]
		pte.Frame = pfn
		pte.Cached = false
		pte.DirtyInCache = false
	}
	ppd.Cached = false
	cpd.Valid = false
	cpd.DirtyInCache = false
	m.numFree++
	if check.Enabled {
		check.Assert(m.numFree <= uint64(len(m.cpds)),
			"osmem: free count %d exceeds %d frames after release of %d", m.numFree, len(m.cpds), cfn)
	}
	return pfn, dirty
}

// SetCached updates every PTE of pfn to point at cfn with the C bit set
// (Algorithm 1 lines 7-10, plus the shared-page extension of §III-G).
func (m *Manager) SetCached(pfn, cfn uint64) {
	ppd := m.ppds[pfn]
	for _, mp := range ppd.Reverse {
		pte := m.pageTables[mp.Core][mp.VPN]
		pte.Frame = cfn
		pte.Cached = true
	}
	ppd.Cached = true
}

// MarkDirty sets the DC bit on a cached frame (write access path). Callers
// pass the CFN of the written page.
func (m *Manager) MarkDirty(cfn uint64) {
	m.cpds[cfn].DirtyInCache = true
}

// TLBSet sets or clears core's bit in the frame's TLB directory.
func (m *Manager) TLBSet(cfn uint64, core int, resident bool) {
	if resident {
		m.cpds[cfn].TLBDir |= 1 << uint(core)
	} else {
		m.cpds[cfn].TLBDir &^= 1 << uint(core)
	}
}

// ValidFrames counts allocated cache frames (for tests).
func (m *Manager) ValidFrames() uint64 {
	var n uint64
	for i := range m.cpds {
		if m.cpds[i].Valid {
			n++
		}
	}
	return n
}

// CheckAccounting verifies the free-frame ledger against a full descriptor
// scan: numFree + valid frames must equal capacity, and every valid frame's
// PFN must map back through its PPD with the cached bit set. It is O(frames)
// — invariant-tagged tests call it at run boundaries rather than per
// operation.
func (m *Manager) CheckAccounting() error {
	valid := m.ValidFrames()
	if m.numFree+valid != uint64(len(m.cpds)) {
		return fmt.Errorf("osmem: %d free + %d valid != %d frames", m.numFree, valid, len(m.cpds))
	}
	for cfn := range m.cpds {
		cpd := &m.cpds[cfn]
		if !cpd.Valid {
			continue
		}
		ppd := m.ppds[cpd.PFN]
		if ppd == nil {
			return fmt.Errorf("osmem: cache frame %d holds unallocated PFN %d", cfn, cpd.PFN)
		}
		if !ppd.Cached {
			return fmt.Errorf("osmem: cache frame %d holds PFN %d whose PPD is not cached", cfn, cpd.PFN)
		}
	}
	return nil
}
