// Package replacement studies DRAM-cache replacement policies on page
// reference streams, reproducing the claim of §III-C.2: the fully
// associative OS-managed cache with a simple FIFO policy incurs about 23%
// fewer DC misses than a 16-way set-associative HW cache with LRU, because
// full associativity eliminates conflict misses — which is why NOMAD can
// afford FIFO's simplicity (no access profiling on the hot path).
//
// Policies here are trace-driven and purely functional: they consume page
// reference streams (no timing), so very long streams are cheap.
package replacement

import "container/list"

// Policy simulates one cache organization over a page reference stream.
type Policy interface {
	Name() string
	// Access references a page; it reports whether the reference missed
	// (requiring a fill).
	Access(page uint64) bool
	// Misses returns the running miss count.
	Misses() uint64
	// Accesses returns the running reference count.
	Accesses() uint64
}

// counts provides the shared bookkeeping.
type counts struct {
	misses   uint64
	accesses uint64
}

func (c *counts) Misses() uint64   { return c.misses }
func (c *counts) Accesses() uint64 { return c.accesses }

// MissRate returns misses/accesses for any policy.
func MissRate(p Policy) float64 {
	if p.Accesses() == 0 {
		return 0
	}
	return float64(p.Misses()) / float64(p.Accesses())
}

// FIFO is a fully associative cache with first-in-first-out replacement —
// the OS-managed organization of TDC and NOMAD (circular free queue,
// Fig. 5).
//
//nomad:owner channel
//nomad:ephemeral replacement bookkeeping; divergence surfaces in the registered eviction counters
type FIFO struct {
	counts
	capacity int
	queue    *list.List               // front = oldest
	resident map[uint64]*list.Element // page -> queue node
}

// NewFIFO builds a fully associative FIFO cache holding capacity pages.
func NewFIFO(capacity int) *FIFO {
	if capacity <= 0 {
		panic("replacement: capacity must be positive")
	}
	return &FIFO{
		capacity: capacity,
		queue:    list.New(),
		resident: make(map[uint64]*list.Element, capacity),
	}
}

// Name implements Policy.
func (f *FIFO) Name() string { return "FIFO-FA" }

// Access implements Policy.
func (f *FIFO) Access(page uint64) bool {
	f.accesses++
	if _, ok := f.resident[page]; ok {
		return false // FIFO does not reorder on hit
	}
	f.misses++
	if f.queue.Len() >= f.capacity {
		oldest := f.queue.Front()
		f.queue.Remove(oldest)
		delete(f.resident, oldest.Value.(uint64))
	}
	f.resident[page] = f.queue.PushBack(page)
	return true
}

// LRUFA is a fully associative cache with least-recently-used replacement
// (an upper-bound reference point: what FIFO gives up by not profiling).
//
//nomad:owner channel
//nomad:ephemeral replacement bookkeeping; divergence surfaces in the registered eviction counters
type LRUFA struct {
	counts
	capacity int
	queue    *list.List // front = LRU
	resident map[uint64]*list.Element
}

// NewLRUFA builds a fully associative LRU cache holding capacity pages.
func NewLRUFA(capacity int) *LRUFA {
	if capacity <= 0 {
		panic("replacement: capacity must be positive")
	}
	return &LRUFA{
		capacity: capacity,
		queue:    list.New(),
		resident: make(map[uint64]*list.Element, capacity),
	}
}

// Name implements Policy.
func (l *LRUFA) Name() string { return "LRU-FA" }

// Access implements Policy.
func (l *LRUFA) Access(page uint64) bool {
	l.accesses++
	if e, ok := l.resident[page]; ok {
		l.queue.MoveToBack(e)
		return false
	}
	l.misses++
	if l.queue.Len() >= l.capacity {
		lru := l.queue.Front()
		l.queue.Remove(lru)
		delete(l.resident, lru.Value.(uint64))
	}
	l.resident[page] = l.queue.PushBack(page)
	return true
}

// SetAssocLRU is an n-way set-associative cache with per-set LRU — the
// organization HW-based DRAM caches are restricted to for scalability
// (§III-C.2 cites 4- and 16-way designs).
//
//nomad:owner channel
type SetAssocLRU struct {
	counts
	ways int
	sets []setState
}

//nomad:owner channel
//nomad:ephemeral replacement bookkeeping; divergence surfaces in the registered eviction counters
type setState struct {
	pages []uint64 // index 0 = LRU
}

// NewSetAssocLRU builds a capacity-page cache organized as capacity/ways
// sets of the given associativity.
func NewSetAssocLRU(capacity, ways int) *SetAssocLRU {
	if capacity <= 0 || ways <= 0 || capacity%ways != 0 {
		panic("replacement: capacity must be a positive multiple of ways")
	}
	return &SetAssocLRU{
		ways: ways,
		sets: make([]setState, capacity/ways),
	}
}

// Name implements Policy.
func (s *SetAssocLRU) Name() string { return "SA-LRU" }

// Access implements Policy.
func (s *SetAssocLRU) Access(page uint64) bool {
	s.accesses++
	set := &s.sets[page%uint64(len(s.sets))]
	for i, p := range set.pages {
		if p == page {
			// Move to MRU position.
			set.pages = append(append(set.pages[:i], set.pages[i+1:]...), page)
			return false
		}
	}
	s.misses++
	if len(set.pages) >= s.ways {
		set.pages = set.pages[1:] // evict LRU
	}
	set.pages = append(set.pages, page)
	return true
}
