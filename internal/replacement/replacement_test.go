package replacement

import (
	"testing"
	"testing/quick"
)

func refString(p Policy, pages ...uint64) {
	for _, pg := range pages {
		p.Access(pg)
	}
}

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO(2)
	refString(f, 1, 2, 1) // 1,2 miss; 1 hits
	if f.Misses() != 2 || f.Accesses() != 3 {
		t.Fatalf("misses=%d accesses=%d", f.Misses(), f.Accesses())
	}
	// 3 evicts 1 (oldest), even though 1 was just referenced: FIFO.
	refString(f, 3, 1)
	if f.Misses() != 4 {
		t.Fatalf("FIFO did not evict in insertion order: misses=%d", f.Misses())
	}
}

func TestLRUFABasics(t *testing.T) {
	l := NewLRUFA(2)
	refString(l, 1, 2, 1) // 1,2 miss; 1 hit promotes 1
	refString(l, 3)       // evicts 2 (LRU), not 1
	refString(l, 1)
	if l.Misses() != 3 {
		t.Fatalf("LRU evicted the recently used page: misses=%d", l.Misses())
	}
}

func TestSetAssocConflictMisses(t *testing.T) {
	// 4 pages mapping to the same set of a 2-way cache conflict even
	// though total capacity (8) would hold them.
	s := NewSetAssocLRU(8, 2)
	sets := uint64(4)
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 4; i++ {
			s.Access(i * sets) // all land in set 0
		}
	}
	if s.Misses() != 12 {
		t.Fatalf("conflict thrash misses = %d, want 12 (every access)", s.Misses())
	}
	// The fully associative FIFO holds all four.
	f := NewFIFO(8)
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 4; i++ {
			f.Access(i * sets)
		}
	}
	if f.Misses() != 4 {
		t.Fatalf("FA FIFO misses = %d, want 4 (compulsory only)", f.Misses())
	}
}

func TestMissRate(t *testing.T) {
	f := NewFIFO(4)
	refString(f, 1, 2, 1, 2)
	if got := MissRate(f); got != 0.5 {
		t.Fatalf("miss rate = %v", got)
	}
	if MissRate(NewFIFO(1)) != 0 {
		t.Fatal("empty policy miss rate not 0")
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewFIFO(0) },
		func() { NewLRUFA(-1) },
		func() { NewSetAssocLRU(10, 3) }, // not a multiple
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad constructor did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestOccupancyInvariant: no policy ever retains more pages than its
// capacity, and re-referencing a resident page never misses.
func TestOccupancyInvariant(t *testing.T) {
	f := func(refs []uint16) bool {
		const capacity = 32
		fifo := NewFIFO(capacity)
		lru := NewLRUFA(capacity)
		sa := NewSetAssocLRU(capacity, 4)
		for _, r := range refs {
			pg := uint64(r % 256)
			fifo.Access(pg)
			lru.Access(pg)
			sa.Access(pg)
			// Immediate re-reference must hit in every policy.
			if fifo.Access(pg) || lru.Access(pg) || sa.Access(pg) {
				return false
			}
		}
		if len(fifo.resident) > capacity || len(lru.resident) > capacity {
			return false
		}
		for i := range sa.sets {
			if len(sa.sets[i].pages) > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestLRUStackProperty: LRU is a stack algorithm, so on any reference
// stream a larger fully associative LRU cache never misses more than a
// smaller one (the inclusion property).
func TestLRUStackProperty(t *testing.T) {
	f := func(refs []uint16) bool {
		small := NewLRUFA(16)
		large := NewLRUFA(64)
		for _, r := range refs {
			pg := uint64(r % 512)
			small.Access(pg)
			large.Access(pg)
		}
		return large.Misses() <= small.Misses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
