package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run(5)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run(1)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events out of FIFO order: %v", got)
		}
	}
}

func TestZeroDelayRunsSameCycle(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(1, func() {
		e.Schedule(0, func() { ran = true })
	})
	e.Run(1)
	if !ran {
		t.Fatal("zero-delay event did not run within the same cycle")
	}
}

func TestTickersRunBeforeEvents(t *testing.T) {
	e := New()
	var order []string
	e.AddTicker(TickerFunc(func(now uint64) {
		if now == 1 {
			order = append(order, "tick")
		}
	}))
	e.Schedule(1, func() { order = append(order, "event") })
	e.Run(1)
	if len(order) != 2 || order[0] != "tick" || order[1] != "event" {
		t.Fatalf("order = %v, want [tick event]", order)
	}
}

func TestTickerEveryCycle(t *testing.T) {
	e := New()
	n := 0
	e.AddTicker(TickerFunc(func(uint64) { n++ }))
	e.Run(100)
	if n != 100 {
		t.Fatalf("ticker ran %d times, want 100", n)
	}
}

func TestAtPastPanics(t *testing.T) {
	e := New()
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestNilEventPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestRunUntil(t *testing.T) {
	e := New()
	done := false
	e.Schedule(50, func() { done = true })
	if !e.RunUntil(func() bool { return done }, 1000) {
		t.Fatal("RunUntil did not observe the condition")
	}
	if e.Now() != 50 {
		t.Fatalf("stopped at cycle %d, want 50", e.Now())
	}
	if e.RunUntil(func() bool { return false }, 10) {
		t.Fatal("RunUntil reported success for an impossible condition")
	}
}

func TestPending(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.Schedule(6, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run(10)
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}

// TestEventOrderProperty: for any random set of delays, events fire in
// nondecreasing cycle order, and equal cycles preserve insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		n := 50 + rng.Intn(200)
		delays := make([]uint64, n)
		for i := range delays {
			delays[i] = uint64(rng.Intn(40))
		}
		type fired struct {
			cycle uint64
			idx   int
		}
		var log []fired
		for i, d := range delays {
			i := i
			e.Schedule(d+1, func() { log = append(log, fired{e.Now(), i}) })
		}
		e.Run(50)
		if len(log) != n {
			return false
		}
		if !sort.SliceIsSorted(log, func(a, b int) bool {
			if log[a].cycle != log[b].cycle {
				return log[a].cycle < log[b].cycle
			}
			return log[a].idx < log[b].idx
		}) {
			return false
		}
		// Cycle order must match delay order.
		for i, f := range log {
			_ = i
			if f.cycle != delays[f.idx]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSampler(t *testing.T) {
	e := New()
	var fired []uint64
	e.SetSampler(10, func(now uint64) { fired = append(fired, now) })
	if e.SampleWindow() != 10 {
		t.Fatalf("SampleWindow = %d", e.SampleWindow())
	}
	e.Run(35)
	if len(fired) != 3 || fired[0] != 10 || fired[1] != 20 || fired[2] != 30 {
		t.Fatalf("sampler fired at %v, want [10 20 30]", fired)
	}
	// Disabling stops further samples.
	e.SetSampler(0, nil)
	if e.SampleWindow() != 0 {
		t.Fatal("SampleWindow not zero after disable")
	}
	e.Run(20)
	if len(fired) != 3 {
		t.Fatalf("sampler fired after disable: %v", fired)
	}
}

func TestSamplerReEnableResetsPhase(t *testing.T) {
	e := New()
	var fired []uint64
	fn := func(now uint64) { fired = append(fired, now) }
	e.SetSampler(10, fn)
	e.Run(25) // fires at 10, 20
	e.SetSampler(0, nil)
	e.Run(30) // disabled: nothing fires, now = 55
	e.SetSampler(10, fn)
	e.Run(25) // re-enabled at 55: fires at 65, 75 — not at a stale nextSample
	if len(fired) != 4 || fired[2] != 65 || fired[3] != 75 {
		t.Fatalf("sampler fired at %v, want [10 20 65 75]", fired)
	}
}

func TestIntervalHook(t *testing.T) {
	e := New()
	var fired []uint64
	e.SetInterval(100, func(now uint64) { fired = append(fired, now) })
	if e.Interval() != 100 {
		t.Fatalf("Interval = %d", e.Interval())
	}
	e.Run(350)
	if len(fired) != 3 || fired[0] != 100 || fired[1] != 200 || fired[2] != 300 {
		t.Fatalf("interval hook fired at %v, want [100 200 300]", fired)
	}
	// Disabling stops further firings.
	e.SetInterval(0, nil)
	if e.Interval() != 0 {
		t.Fatal("Interval not zero after disable")
	}
	e.Run(200)
	if len(fired) != 3 {
		t.Fatalf("interval hook fired after disable: %v", fired)
	}
}

func TestIntervalDefault(t *testing.T) {
	e := New()
	e.SetInterval(0, func(uint64) {})
	if e.Interval() != DefaultInterval {
		t.Fatalf("Interval = %d, want DefaultInterval %d", e.Interval(), DefaultInterval)
	}
}

func TestIntervalReanchors(t *testing.T) {
	// Re-registering mid-run restarts the phase at the current cycle — the
	// property RunContext relies on to align windows with the ROI boundary.
	e := New()
	var fired []uint64
	fn := func(now uint64) { fired = append(fired, now) }
	e.SetInterval(100, fn)
	e.Run(250) // fires at 100, 200; now = 250
	e.SetInterval(100, fn)
	e.Run(250) // re-anchored: fires at 350, 450 — not 300
	if len(fired) != 4 || fired[2] != 350 || fired[3] != 450 {
		t.Fatalf("interval hook fired at %v, want [100 200 350 450]", fired)
	}
}

func TestIntervalAndSamplerCoexist(t *testing.T) {
	// The sampler fires first within a cycle; both fire on their own period.
	e := New()
	var order []string
	e.SetSampler(50, func(now uint64) { order = append(order, "s") })
	e.SetInterval(100, func(now uint64) { order = append(order, "i") })
	e.Run(101)
	want := []string{"s", "s", "i"} // 50, 100(sampler), 100(interval)
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestExecutedCounts(t *testing.T) {
	e := New()
	if e.Executed() != 0 {
		t.Fatal("fresh engine has executed events")
	}
	for i := 0; i < 5; i++ {
		e.Schedule(uint64(i+1), func() {})
	}
	e.Run(10)
	if e.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed())
	}
}
