// Package sim provides the deterministic simulation engine that drives every
// component in the repository: a cycle-ordered event queue plus a set of
// per-cycle tickers.
//
// Two execution styles coexist:
//
//   - Event-driven components (caches, OS routines, completion callbacks)
//     schedule closures with Engine.Schedule / Engine.At.
//   - Cycle-driven components (CPU cores, DRAM channel schedulers) register a
//     Ticker and are invoked once per simulated cycle.
//
// Determinism: events scheduled for the same cycle run in FIFO order of
// scheduling (a monotonically increasing sequence number breaks heap ties),
// and tickers run in registration order before the cycle's events. A given
// (configuration, workload, seed) therefore always produces identical
// statistics, which the tests rely on.
package sim

import "fmt"

// Ticker is a component that needs to observe every simulated cycle.
type Ticker interface {
	// Tick is called exactly once per cycle, after the cycle counter has
	// advanced and before that cycle's scheduled events run.
	Tick(now uint64)
}

// TickerFunc adapts a plain function to the Ticker interface.
type TickerFunc func(now uint64)

// Tick implements Ticker.
func (f TickerFunc) Tick(now uint64) { f(now) }

type event struct {
	cycle uint64
	seq   uint64
	fn    func()
}

// eventHeap is a hand-rolled binary min-heap ordered by (cycle, seq). It is
// typed (no interface boxing) because event scheduling is the simulator's
// hottest allocation path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the closure for GC
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// Engine is the simulation clock. The zero value is not usable; call New.
type Engine struct {
	now      uint64
	seq      uint64
	executed uint64
	events   eventHeap
	tickers  []Ticker

	// Sampling hook: fn runs every sampleEvery cycles (metrics time
	// series). Kept separate from tickers because it fires at window
	// granularity, not per cycle.
	sampleEvery uint64
	sampleFn    func(now uint64)
	nextSample  uint64

	// Interval hook: a second, coarser windowed hook (default 100k cycles)
	// used for timeline telemetry and progress reporting. Re-registering it
	// re-anchors the phase, which is how interval boundaries are aligned to
	// the region-of-interest start.
	intervalEvery uint64
	intervalFn    func(now uint64)
	nextInterval  uint64
}

// DefaultInterval is the interval-hook period (in cycles) used when a caller
// passes 0 to SetInterval.
const DefaultInterval = 100_000

// New returns an Engine at cycle 0 with no pending work.
func New() *Engine {
	return &Engine{}
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// AddTicker registers t to be invoked every cycle. Tickers run in
// registration order.
func (e *Engine) AddTicker(t Ticker) {
	e.tickers = append(e.tickers, t)
}

// Schedule runs fn delay cycles from now. A delay of 0 runs fn later in the
// current cycle (after already-queued same-cycle events).
func (e *Engine) Schedule(delay uint64, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(cycle uint64, fn func()) {
	if cycle < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, now is %d", cycle, e.now))
	}
	if fn == nil {
		panic("sim: scheduling a nil event")
	}
	e.seq++
	e.events.push(event{cycle: cycle, seq: e.seq, fn: fn})
}

// SetSampler registers fn to run every `every` cycles, after that cycle's
// tickers and events. The metrics registry hangs its time-series sampling
// off this hook. A nil fn or zero period disables sampling.
func (e *Engine) SetSampler(every uint64, fn func(now uint64)) {
	if every == 0 || fn == nil {
		e.sampleFn = nil
		return
	}
	e.sampleEvery = every
	e.sampleFn = fn
	e.nextSample = e.now + every
}

// SampleWindow returns the configured sampling period (0 when disabled).
func (e *Engine) SampleWindow() uint64 {
	if e.sampleFn == nil {
		return 0
	}
	return e.sampleEvery
}

// SetInterval registers fn to run every `every` cycles (0 selects
// DefaultInterval), after that cycle's tickers, events, and sampler. The
// first firing is exactly `every` cycles from now: re-registering at the
// region-of-interest boundary re-anchors the phase so interval windows align
// with the measured region. A nil fn disables the hook.
func (e *Engine) SetInterval(every uint64, fn func(now uint64)) {
	if fn == nil {
		e.intervalFn = nil
		return
	}
	if every == 0 {
		every = DefaultInterval
	}
	e.intervalEvery = every
	e.intervalFn = fn
	e.nextInterval = e.now + every
}

// Interval returns the configured interval period (0 when disabled).
func (e *Engine) Interval() uint64 {
	if e.intervalFn == nil {
		return 0
	}
	return e.intervalEvery
}

// Executed returns the number of events run so far — the denominator of the
// simulator's own events/sec throughput (host self-profiling).
func (e *Engine) Executed() uint64 { return e.executed }

// Step advances the clock by one cycle: tickers first, then every event due
// at the new cycle (including events those events schedule for the same
// cycle), then the sampler if its window elapsed.
func (e *Engine) Step() {
	e.now++
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
	e.drain()
	if e.sampleFn != nil && e.now >= e.nextSample {
		e.sampleFn(e.now)
		e.nextSample += e.sampleEvery
	}
	if e.intervalFn != nil && e.now >= e.nextInterval {
		e.intervalFn(e.now)
		e.nextInterval += e.intervalEvery
	}
}

// drain runs all events due at or before the current cycle.
func (e *Engine) drain() {
	for len(e.events) > 0 && e.events[0].cycle <= e.now {
		ev := e.events.pop()
		e.executed++
		ev.fn()
	}
}

// Run advances the clock by cycles steps.
func (e *Engine) Run(cycles uint64) {
	for i := uint64(0); i < cycles; i++ {
		e.Step()
	}
}

// RunUntil advances the clock until pred returns true or maxCycles elapse.
// It reports whether pred was satisfied.
func (e *Engine) RunUntil(pred func() bool, maxCycles uint64) bool {
	for i := uint64(0); i < maxCycles; i++ {
		if pred() {
			return true
		}
		e.Step()
	}
	return pred()
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) }
