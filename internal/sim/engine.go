// Package sim provides the deterministic simulation engine that drives every
// component in the repository: a cycle-ordered event queue plus a set of
// per-cycle tickers.
//
// Two execution styles coexist:
//
//   - Event-driven components (caches, OS routines, completion callbacks)
//     schedule closures with Engine.Schedule / Engine.At.
//   - Cycle-driven components (CPU cores, DRAM channel schedulers) register a
//     Ticker and are invoked once per simulated cycle.
//
// Determinism: events scheduled for the same cycle run in FIFO order of
// scheduling, and tickers run in registration order before the cycle's
// events. A given (configuration, workload, seed) therefore always produces
// identical statistics, which the tests rely on.
//
// The event queue itself sits behind the Scheduler interface: the default
// WheelScheduler (hierarchical timing wheel, allocation-free steady state)
// and the original HeapScheduler (binary min-heap, kept as the
// differential-testing oracle) are interchangeable via WithScheduler, and
// the equivalence tests prove both produce byte-identical runs.
//
// Fast-forward: when every registered ticker also implements FastForwarder
// and reports quiescence, Run/RunUntil jump the clock directly to the next
// cycle at which anything can happen — the earliest ticker wake-up, the
// scheduler's NextDue, or the next sampler/interval boundary — instead of
// stepping one cycle at a time. Skipped cycles are bulk-accounted through
// SkipCycles, and the jump target always lands on a real Step, so a run
// with fast-forward enabled is state-identical (byte-identical snapshots,
// timelines, and traces) to the same run stepped cycle by cycle. See
// DESIGN.md, "Idle-cycle fast-forward".
//
// Parallel mode: the Parallel option shards the tick phase across worker
// goroutines along the ownership domains while keeping the event phase
// sequential, and remains byte-identical to this sequential engine. See
// parallel.go and DESIGN.md, "Parallel engine".
package sim

import (
	"fmt"

	"nomad/internal/check"
)

// Ticker is a component that needs to observe every simulated cycle.
type Ticker interface {
	// Tick is called exactly once per cycle, after the cycle counter has
	// advanced and before that cycle's scheduled events run.
	Tick(now uint64)
}

// NoWork is the NextWork return value meaning "only a scheduled event can
// give this ticker work": the ticker is quiescent indefinitely.
const NoWork = ^uint64(0)

// FastForwarder is the optional Ticker extension that enables idle-cycle
// fast-forward. The engine only jumps when every registered ticker
// implements it.
type FastForwarder interface {
	Ticker
	// NextWork reports the earliest cycle after now at which this ticker's
	// Tick might do anything beyond per-cycle stall accounting, assuming no
	// scheduled event runs in between (the engine separately bounds jumps
	// by the event queue). Returning now+1 declines fast-forward for this
	// cycle; returning NoWork means only an event can create work. The
	// contract: for every cycle c in (now, NextWork(now)), Tick(c) must be
	// exactly equivalent to the per-cycle share of SkipCycles.
	NextWork(now uint64) uint64
	// SkipCycles bulk-accounts n skipped cycles (now+1 .. now+n) that the
	// engine verified are quiescent for every ticker. Implementations
	// charge the same stall buckets n of their Ticks would have charged.
	SkipCycles(now, n uint64)
}

// TickerFunc adapts a plain function to the Ticker interface.
type TickerFunc func(now uint64)

// Tick implements Ticker.
func (f TickerFunc) Tick(now uint64) { f(now) }

// Engine is the simulation clock. The zero value is not usable; call New.
//
//nomad:owner shared
//nomad:ephemeral event-engine bookkeeping; the interval digest chain derived from it is the observable record
type Engine struct {
	now      uint64
	executed uint64
	sched    Scheduler
	tickers  []Ticker

	// Fast-forward state: ff mirrors tickers when every registered ticker
	// implements FastForwarder (allFF); skipped/jumps count bulk-advanced
	// cycles and the jumps that advanced them.
	fastForward bool
	allFF       bool
	ff          []FastForwarder
	skipped     uint64
	jumps       uint64

	// Sampling hook: fn runs every sampleEvery cycles (metrics time
	// series). Kept separate from tickers because it fires at window
	// granularity, not per cycle.
	sampleEvery uint64
	sampleFn    func(now uint64)
	nextSample  uint64

	// Interval hook: a second, coarser windowed hook (default 100k cycles)
	// used for timeline telemetry and progress reporting. Re-registering it
	// re-anchors the phase, which is how interval boundaries are aligned to
	// the region-of-interest start.
	intervalEvery uint64
	intervalFn    func(now uint64)
	nextInterval  uint64

	// Parallel tick-phase state (see parallel.go). par is non-nil on a root
	// engine built with the Parallel option; rootEng is non-nil on a shard
	// facade returned by NewShard. inTick is true on the root exactly while
	// shard tickers run concurrently: it is written by the coordinator
	// before the epoch publish and after the join (both sequenced by the
	// runner's atomics), so workers read a stable value.
	par     *parallelRunner
	rootEng *Engine
	inTick  bool
}

// DefaultInterval is the interval-hook period (in cycles) used when a caller
// passes 0 to SetInterval.
const DefaultInterval = 100_000

// Option configures an Engine at construction.
type Option func(*Engine)

// WithScheduler selects the event-queue implementation. The default is the
// timing wheel; pass NewHeapScheduler() (or NewScheduler(KindHeap)) to run
// on the binary-heap oracle instead.
func WithScheduler(s Scheduler) Option {
	return func(e *Engine) {
		if s != nil {
			e.sched = s
		}
	}
}

// New returns an Engine at cycle 0 with no pending work, running on the
// timing-wheel scheduler unless WithScheduler overrides it. Fast-forward is
// enabled by default; it only takes effect while every registered ticker
// implements FastForwarder, so engines driving plain Tickers behave exactly
// as before.
func New(opts ...Option) *Engine {
	e := &Engine{fastForward: true, allFF: true, sched: NewWheelScheduler()}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// SchedulerImpl returns the engine's event queue (for tests and tooling that
// need to inspect which implementation is driving the run).
func (e *Engine) SchedulerImpl() Scheduler { return e.sched }

// AddTicker registers t to be invoked every cycle. Tickers run in
// registration order. A ticker that does not implement FastForwarder
// disables fast-forward for the whole engine (conservative: the engine can
// no longer prove a span is quiescent).
func (e *Engine) AddTicker(t Ticker) {
	e.tickers = append(e.tickers, t)
	// On a shard facade the ticker runs in the shard's tick list, but the
	// fast-forward bookkeeping (quiescence polling, bulk skip accounting)
	// stays centralized on the root, which is the engine that jumps.
	r := e.Root()
	if f, ok := t.(FastForwarder); ok && r.allFF {
		r.ff = append(r.ff, f)
	} else {
		r.allFF = false
		r.ff = nil
	}
}

// SetFastForward enables or disables idle-cycle fast-forward. It is on by
// default; disabling forces the engine to step every cycle (the -no-ff
// escape hatch, and the reference behaviour the equivalence tests compare
// against).
func (e *Engine) SetFastForward(on bool) { e.fastForward = on }

// FastForwardEnabled reports whether fast-forward is switched on (it may
// still be inert if a registered ticker does not support it).
func (e *Engine) FastForwardEnabled() bool { return e.fastForward }

// SkippedCycles returns the total cycles bulk-advanced by fast-forward
// jumps. Deliberately not part of the metrics snapshot: it differs between
// fast-forward on and off, and snapshots must be byte-identical across the
// two (it surfaces through the host-side self-profile instead).
func (e *Engine) SkippedCycles() uint64 { return e.skipped }

// Jumps returns the number of fast-forward jumps taken.
func (e *Engine) Jumps() uint64 { return e.jumps }

// Schedule runs fn delay cycles from now. A delay of 0 runs fn later in the
// current cycle (after already-queued same-cycle events).
func (e *Engine) Schedule(delay uint64, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(cycle uint64, fn func()) {
	if cycle < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, now is %d", cycle, e.now))
	}
	e.sched.ScheduleAt(cycle, fn)
}

// SetSampler registers fn to run every `every` cycles, after that cycle's
// tickers and events. The metrics registry hangs its time-series sampling
// off this hook. A nil fn or zero period disables sampling.
func (e *Engine) SetSampler(every uint64, fn func(now uint64)) {
	if every == 0 || fn == nil {
		e.sampleFn = nil
		return
	}
	e.sampleEvery = every
	e.sampleFn = fn
	e.nextSample = e.now + every
}

// SampleWindow returns the configured sampling period (0 when disabled).
func (e *Engine) SampleWindow() uint64 {
	if e.sampleFn == nil {
		return 0
	}
	return e.sampleEvery
}

// SetInterval registers fn to run every `every` cycles (0 selects
// DefaultInterval), after that cycle's tickers, events, and sampler. The
// first firing is exactly `every` cycles from now: re-registering at the
// region-of-interest boundary re-anchors the phase so interval windows align
// with the measured region. A nil fn disables the hook.
//
// Boundary exactness is a contract: the hook fires at every elapsed
// boundary with the boundary cycle as now, and fast-forward jumps never
// pass nextInterval (tryJump bounds on it), so hook-driven captures — the
// metrics timeline and the interval digest chains — observe identical
// machine state at identical cycles across engines and fast-forward modes.
func (e *Engine) SetInterval(every uint64, fn func(now uint64)) {
	if fn == nil {
		e.intervalFn = nil
		return
	}
	if every == 0 {
		every = DefaultInterval
	}
	e.intervalEvery = every
	e.intervalFn = fn
	e.nextInterval = e.now + every
}

// Interval returns the configured interval period (0 when disabled).
func (e *Engine) Interval() uint64 {
	if e.intervalFn == nil {
		return 0
	}
	return e.intervalEvery
}

// Executed returns the number of events run so far — the denominator of the
// simulator's own events/sec throughput (host self-profiling).
func (e *Engine) Executed() uint64 { return e.executed }

// Step advances the clock by one cycle: any event still due at the current
// cycle first (events scheduled for cycle N outside a Step — engine setup at
// cycle 0, hook callbacks — run before cycle N ends, observing Now() == N),
// then tickers, then every event due at the new cycle (including events
// those events schedule for the same cycle), then the sampler and interval
// hooks for every window boundary that has elapsed.
func (e *Engine) Step() {
	e.validateShard("Step")
	// Unconditional Advance: besides draining stragglers, it slides the
	// scheduler's clock to e.now, so events the tickers are about to
	// schedule take the wheel's O(1) near-window path even right after a
	// fast-forward jump.
	e.executed += e.sched.Advance(e.now)
	e.now++
	if e.par != nil {
		e.par.runTicks(e, e.now)
	} else {
		for _, t := range e.tickers {
			t.Tick(e.now)
		}
	}
	e.executed += e.sched.Advance(e.now)
	// Both hooks catch up to every elapsed boundary, each firing with the
	// boundary cycle as now, so a multi-window advance cannot shift the
	// window phase. (Single-cycle steps hit each boundary exactly; the
	// loops also keep the phase honest should the clock ever move faster.)
	if e.sampleFn != nil {
		for e.now >= e.nextSample {
			boundary := e.nextSample
			e.nextSample += e.sampleEvery
			e.sampleFn(boundary)
			if e.sampleFn == nil {
				break
			}
		}
	}
	if e.intervalFn != nil {
		for e.now >= e.nextInterval {
			boundary := e.nextInterval
			e.nextInterval += e.intervalEvery
			e.intervalFn(boundary)
			if e.intervalFn == nil {
				break
			}
		}
	}
}

// minJump is the smallest span worth jumping over. A jump's fixed cost —
// polling every ticker, bulk-accounting, one landing Step — is comparable
// to stepping a handful of quiescent cycles, so shorter spans are cheaper
// to step. Skipping a span is always optional, so the threshold cannot
// affect results, only throughput.
const minJump = 8

// tryJump attempts one fast-forward jump, never advancing past limit (the
// last cycle the caller may reach). It returns false — leaving the clock
// untouched — when fast-forward is inert or the nearest ticker wake-up,
// event, or hook boundary is within minJump cycles. On success the skipped
// span (now+1 .. target-1) is bulk-accounted through every ticker's
// SkipCycles and the clock lands on the target via one normal Step, so
// ticker/event/hook ordering at the target is identical to the stepped
// engine.
func (e *Engine) tryJump(limit uint64) bool {
	if !e.fastForward || !e.allFF {
		return false
	}
	target := limit
	// The scheduler's NextDue is the cheapest bound and, in busy phases,
	// the one that usually forbids jumping — check it before polling
	// tickers.
	if due := e.sched.NextDue(); due < target {
		target = due
	}
	if e.sampleFn != nil && e.nextSample < target {
		target = e.nextSample
	}
	if e.intervalFn != nil && e.nextInterval < target {
		target = e.nextInterval
	}
	if target < e.now+1+minJump {
		return false
	}
	for _, f := range e.ff {
		if w := f.NextWork(e.now); w < target {
			if w < e.now+1+minJump {
				return false
			}
			target = w
		}
	}
	if check.Enabled {
		// A jump must never pass a due event or hook boundary: everything
		// that can happen before the target is provably nothing.
		check.Assert(target > e.now+1, "sim: jump to %d from %d saves nothing", target, e.now)
		check.Assert(e.sched.NextDue() >= target,
			"sim: jump to %d passes event due at %d", target, e.sched.NextDue())
		check.Assert(e.sampleFn == nil || e.nextSample >= target,
			"sim: jump to %d passes sample boundary %d", target, e.nextSample)
		check.Assert(e.intervalFn == nil || e.nextInterval >= target,
			"sim: jump to %d passes interval boundary %d", target, e.nextInterval)
		check.Assert(target <= limit, "sim: jump to %d passes caller limit %d", target, limit)
	}
	n := target - e.now - 1
	for _, f := range e.ff {
		f.SkipCycles(e.now, n)
	}
	e.skipped += n
	e.jumps++
	e.now = target - 1
	e.Step()
	return true
}

// Run advances the clock by cycles cycles, fast-forwarding across quiescent
// spans when enabled (the observable end state is identical either way).
func (e *Engine) Run(cycles uint64) {
	end := e.now + cycles
	for e.now < end {
		if !e.tryJump(end) {
			e.Step()
		}
	}
}

// RunUntil advances the clock until pred returns true or maxCycles elapse.
// It reports whether pred was satisfied. pred is evaluated at every cycle
// the engine actually executes; fast-forward skips only spans in which no
// ticker, event, or hook runs, so a pred that depends on simulation
// progress (retired instructions, completed events) is checked at exactly
// the cycles where its value can change.
func (e *Engine) RunUntil(pred func() bool, maxCycles uint64) bool {
	end := e.now + maxCycles
	for e.now < end {
		if pred() {
			return true
		}
		if !e.tryJump(end) {
			e.Step()
		}
	}
	return pred()
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return e.sched.Pending() }
