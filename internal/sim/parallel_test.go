package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// parShardTicker is a synthetic core-domain ticker: it owns private state
// (its rng), schedules events against its own engine, and routes shared-log
// appends through Defer — the same discipline the real core shards follow.
type parShardTicker struct {
	id   int
	eng  *Engine
	rng  uint64
	log  *[]string
	busy uint64 // cycles of work remaining; NextWork-driven
}

func (s *parShardTicker) next() uint64 {
	// xorshift64: deterministic, private to the shard.
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

func (s *parShardTicker) Tick(now uint64) {
	if s.busy == 0 {
		return
	}
	s.busy--
	r := s.next()
	delay := r % 5
	id, rr := s.id, r
	s.eng.Schedule(delay, func() {
		*s.log = append(*s.log, fmt.Sprintf("ev shard=%d sched@%d delay=%d r=%d", id, now, delay, rr))
		if rr%7 == 0 {
			// Refuel from the event phase: wakes the quiescent shard and
			// exercises the post-jump tick path.
			s.busy += 3
		}
	})
	if r%3 == 0 {
		s.eng.Defer(func() {
			*s.log = append(*s.log, fmt.Sprintf("call shard=%d c=%d", id, now))
		})
	}
}

func (s *parShardTicker) NextWork(now uint64) uint64 {
	if s.busy > 0 {
		return now + 1
	}
	return NoWork
}

func (s *parShardTicker) SkipCycles(now, n uint64) {}

// parRootTicker is a channel-domain stand-in: it runs on the coordinator and
// may touch the shared log directly, exactly like the DRAM devices do with
// the trace ring. It works every 17th cycle and fast-forwards in between so
// the test covers jumps.
type parRootTicker struct{ log *[]string }

func (r *parRootTicker) Tick(now uint64) {
	if now%17 == 0 {
		*r.log = append(*r.log, fmt.Sprintf("root c=%d", now))
	}
}

func (r *parRootTicker) NextWork(now uint64) uint64 { return (now/17 + 1) * 17 }

func (r *parRootTicker) SkipCycles(now, n uint64) {}

// buildParMachine wires one root ticker plus nShards shard tickers onto eng.
// With workers == 0 the engine is sequential and every ticker lands on the
// root, in the same order the parallel build creates its shards.
func buildParMachine(eng *Engine, nShards int, log *[]string) []*parShardTicker {
	eng.AddTicker(&parRootTicker{log: log})
	shards := make([]*parShardTicker, nShards)
	for i := 0; i < nShards; i++ {
		s := &parShardTicker{id: i, eng: eng.NewShard(), rng: uint64(i)*2654435761 + 1, log: log, busy: 40}
		s.eng.AddTicker(s)
		shards[i] = s
	}
	return shards
}

func runParMachine(t *testing.T, workers, nShards int, cycles uint64) ([]string, uint64, uint64) {
	t.Helper()
	var opts []Option
	if workers > 0 {
		opts = append(opts, Parallel(workers))
	}
	eng := New(opts...)
	defer eng.StopWorkers()
	var log []string
	buildParMachine(eng, nShards, &log)
	eng.Run(cycles)
	return log, eng.Now(), eng.Jumps()
}

// TestParallelByteIdenticalLog pins the core determinism claim at the engine
// level: the parallel tick phase (any worker count, with fast-forward jumps
// in play) produces exactly the sequential engine's event order and
// tick-phase call order.
func TestParallelByteIdenticalLog(t *testing.T) {
	const nShards = 7
	const cycles = 3000
	refLog, refNow, refJumps := runParMachine(t, 0, nShards, cycles)
	if len(refLog) == 0 {
		t.Fatal("reference run produced an empty log")
	}
	if refJumps == 0 {
		t.Fatal("reference run never fast-forwarded; the test wants jump coverage")
	}
	for _, workers := range []int{1, 2, 4} {
		log, now, jumps := runParMachine(t, workers, nShards, cycles)
		if now != refNow {
			t.Fatalf("workers=%d: final cycle %d, sequential %d", workers, now, refNow)
		}
		if jumps != refJumps {
			t.Errorf("workers=%d: %d jumps, sequential %d", workers, jumps, refJumps)
		}
		if !reflect.DeepEqual(log, refLog) {
			for i := range refLog {
				if i >= len(log) || log[i] != refLog[i] {
					t.Fatalf("workers=%d: log diverges at entry %d: got %q, want %q",
						workers, i, log[i:min(i+3, len(log))], refLog[i:min(i+3, len(refLog))])
				}
			}
			t.Fatalf("workers=%d: log is a strict prefix: %d entries vs %d", workers, len(log), len(refLog))
		}
	}
}

// TestParallelStopWorkersFallback: after StopWorkers the engine must keep
// producing identical results on the coordinator-only path.
func TestParallelStopWorkersFallback(t *testing.T) {
	refLog, refNow, _ := runParMachine(t, 0, 4, 2000)

	eng := New(Parallel(4))
	var log []string
	buildParMachine(eng, 4, &log)
	eng.Run(1000)
	eng.StopWorkers()
	eng.Run(1000)
	if eng.Now() != refNow {
		t.Fatalf("final cycle %d, want %d", eng.Now(), refNow)
	}
	if !reflect.DeepEqual(log, refLog) {
		t.Fatalf("coordinator-only continuation diverged: %d entries vs %d", len(log), len(refLog))
	}
	eng.StopWorkers() // idempotent
}

func TestDeferOutsideTickRunsImmediately(t *testing.T) {
	eng := New(Parallel(2))
	defer eng.StopWorkers()
	sh := eng.NewShard()
	ran := false
	sh.Defer(func() { ran = true })
	if !ran {
		t.Fatal("Defer outside the tick phase must run immediately")
	}
	seq := New()
	ran = false
	seq.Defer(func() { ran = true })
	if !ran {
		t.Fatal("Defer on a sequential engine must run immediately")
	}
}

func TestNewShardSequentialReturnsRoot(t *testing.T) {
	eng := New()
	if sh := eng.NewShard(); sh != eng {
		t.Fatal("NewShard on a sequential engine must return the engine itself")
	}
	if eng.ParallelWorkers() != 0 {
		t.Fatalf("sequential engine reports %d workers", eng.ParallelWorkers())
	}
}

func TestShardFacadeGuards(t *testing.T) {
	eng := New(Parallel(2))
	defer eng.StopWorkers()
	sh := eng.NewShard()
	if sh == eng {
		t.Fatal("parallel NewShard must return a facade")
	}
	if sh.Root() != eng || eng.Root() != eng {
		t.Fatal("Root must resolve to the owning engine")
	}
	mustPanic(t, "Step on facade", func() { sh.Step() })
	mustPanic(t, "NewShard on facade", func() { sh.NewShard() })
	eng.AddTicker(TickerFunc(func(uint64) {}))
	eng.Step() // starts the workers
	mustPanic(t, "NewShard after start", func() { eng.NewShard() })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
