package sim

import (
	"fmt"
	"math/bits"
)

// Wheel geometry. The near wheel covers wheelSize consecutive cycles in
// power-of-two buckets; anything further out sits in the overflow calendar
// (a (cycle, seq) min-heap) until the window slides over it. 2048 cycles
// comfortably covers every latency the models schedule on the hot path —
// SRAM lookups (4..38), DRAM bursts (~60..200), the 400-cycle tag handler,
// buffer reads — so overflow traffic is limited to rare far-future work
// (long OS suspensions, pathological configs).
const (
	wheelBits  = 11
	wheelSize  = 1 << wheelBits // cycles covered by the near wheel
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64 // occupancy-bitmap words
)

// WheelScheduler is a hierarchical timing wheel: the default engine queue.
//
//   - Schedule/ScheduleAt is O(1): events within the wheel window append to
//     the bucket of their cycle; farther events go to the overflow heap.
//   - Dispatch is batched per cycle: Advance drains one bucket at a time
//     (FIFO by append order), instead of one heap pop per event.
//   - NextDue is an occupancy-bitmap scan (one uint64 word per 64 buckets),
//     which is what the engine's fast-forward jump logic polls instead of a
//     heap-head peek.
//   - The steady-state busy path allocates nothing: buckets and the
//     overflow slice retain their capacity across laps, and events are
//     stored by value (the closure is the caller's only allocation).
//
// FIFO-within-cycle, the determinism contract's backbone, holds by
// construction: direct inserts append in scheduling order, and overflow
// events migrate into their bucket in (cycle, seq) order exactly when the
// window first reaches them — before any direct insert for that cycle is
// possible — so bucket order is globally FIFO.
//
//nomad:owner shared
//nomad:ephemeral scheduler queue state; event order is digested by the interval digest chain
type WheelScheduler struct {
	now uint64
	seq uint64

	buckets    [wheelSize][]func()
	occ        [wheelWords]uint64
	wheelCount int

	overflow eventHeap

	// due memoizes NextDue (valid when dueValid): the engine polls NextDue
	// every cycle, and the earliest pending cycle only changes on an
	// earlier insert (O(1) min-update) or a bucket drain (invalidate), so
	// the bitmap scan runs once per drained bucket instead of per cycle.
	due      uint64
	dueValid bool
}

// NewWheelScheduler returns an empty timing-wheel scheduler at cycle 0.
func NewWheelScheduler() *WheelScheduler { return &WheelScheduler{} }

// Schedule implements Scheduler.
func (w *WheelScheduler) Schedule(delay uint64, fn func()) { w.ScheduleAt(w.now+delay, fn) }

// ScheduleAt implements Scheduler.
func (w *WheelScheduler) ScheduleAt(cycle uint64, fn func()) {
	if cycle < w.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, now is %d", cycle, w.now))
	}
	if fn == nil {
		panic("sim: scheduling a nil event")
	}
	w.seq++
	if w.dueValid && cycle < w.due {
		w.due = cycle
	}
	if cycle-w.now < wheelSize {
		idx := cycle & wheelMask
		w.buckets[idx] = append(w.buckets[idx], fn)
		w.occ[idx>>6] |= 1 << (idx & 63)
		w.wheelCount++
		return
	}
	w.overflow.push(event{cycle: cycle, seq: w.seq, fn: fn})
}

// nextWheel returns the earliest occupied bucket's cycle, or NoEvent. The
// scan starts at the current cycle's bit and walks the bitmap circularly;
// on the busy path the hit is in the first word.
func (w *WheelScheduler) nextWheel() uint64 {
	if w.wheelCount == 0 {
		return NoEvent
	}
	p := w.now & wheelMask
	word := p >> 6
	if x := w.occ[word] >> (p & 63); x != 0 {
		return w.now + uint64(bits.TrailingZeros64(x))
	}
	for i := uint64(1); i <= wheelWords; i++ {
		wi := (word + i) & (wheelWords - 1)
		if x := w.occ[wi]; x != 0 {
			idx := wi<<6 + uint64(bits.TrailingZeros64(x))
			return w.now + ((idx - p) & wheelMask)
		}
	}
	// wheelCount > 0 guarantees an occupied bucket; the circular scan
	// above must have found it.
	panic("sim: wheel occupancy bitmap inconsistent with event count")
}

// NextDue implements Scheduler. Overflow events are always at least a full
// window away, so the wheel wins whenever it holds anything. The result is
// memoized; sliding the window does not invalidate it (the pending set and
// its cycles are unchanged), only drains and earlier inserts do.
func (w *WheelScheduler) NextDue() uint64 {
	if w.dueValid {
		return w.due
	}
	due := w.nextWheel()
	if due == NoEvent && len(w.overflow) > 0 {
		due = w.overflow[0].cycle
	}
	w.due = due
	w.dueValid = true
	return due
}

// slideTo moves the window start to n and migrates every overflow event the
// window now covers into its bucket. Heap pops deliver migrants in
// (cycle, seq) order, and migration for a cycle completes before any direct
// insert for it can occur (direct inserts require cycle-now < wheelSize),
// so bucket order stays FIFO.
func (w *WheelScheduler) slideTo(n uint64) {
	w.now = n
	for len(w.overflow) > 0 && w.overflow[0].cycle-n < wheelSize {
		ev := w.overflow.pop()
		idx := ev.cycle & wheelMask
		w.buckets[idx] = append(w.buckets[idx], ev.fn)
		w.occ[idx>>6] |= 1 << (idx & 63)
		w.wheelCount++
	}
}

// Advance implements Scheduler: batched per-cycle dispatch. Handlers may
// schedule new events for the cycle being drained (the loop re-reads the
// bucket, so appends made mid-drain are picked up in FIFO position).
func (w *WheelScheduler) Advance(now uint64) uint64 {
	var ran uint64
	for {
		due := w.NextDue()
		if due > now { // NoEvent compares greater than any cycle
			break
		}
		if due > w.now {
			w.slideTo(due)
		}
		idx := due & wheelMask
		b := w.buckets[idx]
		for i := 0; i < len(b); i++ {
			fn := b[i]
			b[i] = nil // release the closure for GC
			w.wheelCount--
			ran++
			fn()
			b = w.buckets[idx] // handler appends may have grown/moved it
		}
		w.buckets[idx] = b[:0]
		w.occ[idx>>6] &^= 1 << (idx & 63)
		w.dueValid = false // the drained bucket may have been the cached due
	}
	if now > w.now {
		w.slideTo(now)
	}
	return ran
}

// Pending implements Scheduler.
func (w *WheelScheduler) Pending() int { return w.wheelCount + len(w.overflow) }
