package sim

import (
	"math/rand"
	"testing"
)

// ffTicker is a test FastForwarder: quiescent except at the cycles in busy,
// recording every Tick and every SkipCycles span.
type ffTicker struct {
	busy  map[uint64]bool // cycles at which the ticker claims work
	ticks []uint64
	skips [][2]uint64 // (first, last) skipped cycle per SkipCycles call
}

func (f *ffTicker) Tick(now uint64) { f.ticks = append(f.ticks, now) }

func (f *ffTicker) NextWork(now uint64) uint64 {
	for c := now + 1; c <= now+1_000_000; c++ {
		if f.busy[c] {
			return c
		}
	}
	return NoWork
}

func (f *ffTicker) SkipCycles(now, n uint64) {
	f.skips = append(f.skips, [2]uint64{now + 1, now + n})
}

// TestCycleZeroEventObservesNowZero pins the cycle-0 fix: an event scheduled
// with At(0, fn) before the first Step must observe Now() == 0, not 1.
func TestCycleZeroEventObservesNowZero(t *testing.T) {
	e := New()
	observed := uint64(999)
	e.At(0, func() { observed = e.Now() })
	e.Run(1)
	if observed != 0 {
		t.Fatalf("At(0) event observed Now() == %d, want 0", observed)
	}
	if e.Now() != 1 {
		t.Fatalf("Run(1) left clock at %d, want 1", e.Now())
	}
}

// TestCycleZeroEventBeforeTickers checks the cycle-0 event also runs before
// cycle 1's tickers, preserving event/ticker ordering across the fix.
func TestCycleZeroEventBeforeTickers(t *testing.T) {
	e := New()
	var order []string
	e.At(0, func() { order = append(order, "event0") })
	e.AddTicker(TickerFunc(func(now uint64) { order = append(order, "tick") }))
	e.Schedule(1, func() { order = append(order, "event1") })
	e.Run(1)
	want := []string{"event0", "tick", "event1"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestHookCatchUp pins the phase-drift fix: if the clock somehow moves more
// than one window past a hook boundary in a single Step, the hook fires once
// per elapsed boundary with the boundary cycle as now, instead of firing
// once and drifting.
func TestHookCatchUp(t *testing.T) {
	e := New()
	var samples, intervals []uint64
	e.SetSampler(10, func(now uint64) { samples = append(samples, now) })
	e.SetInterval(25, func(now uint64) { intervals = append(intervals, now) })
	e.now = 49 // white-box: simulate a multi-window advance
	e.Step()   // now = 50
	wantS := []uint64{10, 20, 30, 40, 50}
	if len(samples) != len(wantS) {
		t.Fatalf("sampler fired at %v, want %v", samples, wantS)
	}
	for i := range wantS {
		if samples[i] != wantS[i] {
			t.Fatalf("sampler fired at %v, want %v", samples, wantS)
		}
	}
	if len(intervals) != 2 || intervals[0] != 25 || intervals[1] != 50 {
		t.Fatalf("interval hook fired at %v, want [25 50]", intervals)
	}
	// Phase is intact: the next boundaries are 60 and 75.
	e.Run(25) // now = 75
	if samples[len(samples)-1] != 70 || intervals[len(intervals)-1] != 75 {
		t.Fatalf("post-catch-up boundaries: sampler %v, interval %v", samples, intervals)
	}
}

// TestHookReRegisterInsideCallback re-registers each hook from within its own
// callback; the new registration must anchor at the firing boundary and the
// old phase must not fire again.
func TestHookReRegisterInsideCallback(t *testing.T) {
	e := New()
	var fired []uint64
	var second func(now uint64)
	second = func(now uint64) { fired = append(fired, now) }
	e.SetSampler(10, func(now uint64) {
		fired = append(fired, now)
		e.SetSampler(7, second)
	})
	e.Run(20)
	// First registration fires at 10 and swaps in the 7-cycle sampler,
	// which then fires at 17 (10+7).
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 17 {
		t.Fatalf("sampler fired at %v, want [10 17]", fired)
	}

	e2 := New()
	var ifired []uint64
	e2.SetInterval(10, func(now uint64) {
		ifired = append(ifired, now)
		e2.SetInterval(0, nil) // disable from inside the callback
	})
	e2.Run(40)
	if len(ifired) != 1 || ifired[0] != 10 {
		t.Fatalf("interval hook fired at %v, want [10]", ifired)
	}
}

// TestFastForwardSkipsIdleSpan: a fully quiescent engine with one pending
// event jumps straight to the event cycle.
func TestFastForwardSkipsIdleSpan(t *testing.T) {
	e := New()
	f := &ffTicker{busy: map[uint64]bool{}}
	e.AddTicker(f)
	fired := uint64(0)
	e.Schedule(100, func() { fired = e.Now() })
	e.Run(200)
	if fired != 100 {
		t.Fatalf("event fired at %d, want 100", fired)
	}
	if e.Now() != 200 {
		t.Fatalf("clock at %d, want 200", e.Now())
	}
	// Two jumps: to the event at 100, then to the run limit at 200. Each
	// jump lands with one real Step; every other cycle is skipped.
	if e.Jumps() != 2 {
		t.Fatalf("Jumps = %d, want 2", e.Jumps())
	}
	if e.SkippedCycles() != 198 {
		t.Fatalf("SkippedCycles = %d, want 198", e.SkippedCycles())
	}
	if len(f.ticks) != 2 || f.ticks[0] != 100 || f.ticks[1] != 200 {
		t.Fatalf("ticks = %v, want [100 200]", f.ticks)
	}
	if len(f.skips) != 2 || f.skips[0] != [2]uint64{1, 99} || f.skips[1] != [2]uint64{101, 199} {
		t.Fatalf("skips = %v, want [[1 99] [101 199]]", f.skips)
	}
}

// TestFastForwardHonorsNextWork: the jump stops at the earliest ticker
// wake-up even with no events pending.
func TestFastForwardHonorsNextWork(t *testing.T) {
	e := New()
	f := &ffTicker{busy: map[uint64]bool{40: true}}
	e.AddTicker(f)
	e.Run(50)
	// The ticker must be stepped (not skipped) at its busy cycle.
	for _, s := range f.skips {
		if s[0] <= 40 && 40 <= s[1] {
			t.Fatalf("busy cycle 40 was skipped: %v", f.skips)
		}
	}
	seen := false
	for _, c := range f.ticks {
		if c == 40 {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("busy cycle 40 never ticked: %v", f.ticks)
	}
}

// TestFastForwardHonorsHookBoundaries: jumps clamp to sampler and interval
// boundaries so hooks fire at exactly the same cycles as a stepped run.
func TestFastForwardHonorsHookBoundaries(t *testing.T) {
	e := New()
	e.AddTicker(&ffTicker{busy: map[uint64]bool{}})
	var samples, intervals []uint64
	e.SetSampler(10, func(now uint64) { samples = append(samples, now) })
	e.SetInterval(25, func(now uint64) { intervals = append(intervals, now) })
	e.Run(50)
	wantS := []uint64{10, 20, 30, 40, 50}
	if len(samples) != len(wantS) {
		t.Fatalf("sampler fired at %v, want %v", samples, wantS)
	}
	for i := range wantS {
		if samples[i] != wantS[i] {
			t.Fatalf("sampler fired at %v, want %v", samples, wantS)
		}
	}
	if len(intervals) != 2 || intervals[0] != 25 || intervals[1] != 50 {
		t.Fatalf("interval hook fired at %v, want [25 50]", intervals)
	}
}

// TestFastForwardInertWithPlainTicker: one non-FastForwarder ticker disables
// jumping entirely.
func TestFastForwardInertWithPlainTicker(t *testing.T) {
	e := New()
	e.AddTicker(&ffTicker{busy: map[uint64]bool{}})
	n := 0
	e.AddTicker(TickerFunc(func(uint64) { n++ }))
	e.Run(100)
	if e.Jumps() != 0 || e.SkippedCycles() != 0 {
		t.Fatalf("jumped with a plain ticker registered: jumps=%d skipped=%d", e.Jumps(), e.SkippedCycles())
	}
	if n != 100 {
		t.Fatalf("plain ticker ran %d times, want 100", n)
	}
}

// TestFastForwardDisabledBySwitch: SetFastForward(false) forces per-cycle
// stepping even for all-FastForwarder engines.
func TestFastForwardDisabledBySwitch(t *testing.T) {
	e := New()
	f := &ffTicker{busy: map[uint64]bool{}}
	e.AddTicker(f)
	e.SetFastForward(false)
	if e.FastForwardEnabled() {
		t.Fatal("FastForwardEnabled after SetFastForward(false)")
	}
	e.Run(100)
	if e.Jumps() != 0 || e.SkippedCycles() != 0 {
		t.Fatalf("jumped while disabled: jumps=%d skipped=%d", e.Jumps(), e.SkippedCycles())
	}
	if len(f.ticks) != 100 {
		t.Fatalf("ticker ran %d times, want 100", len(f.ticks))
	}
}

// TestFastForwardEquivalence runs randomized schedules through a
// fast-forwarding engine and a stepped engine and requires identical event
// firing cycles, hook firings, tick counts at busy cycles, and final state.
func TestFastForwardEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		busy := map[uint64]bool{}
		for i := 0; i < 10; i++ {
			busy[uint64(1+rng.Intn(400))] = true
		}
		type trace struct {
			events  []uint64
			samples []uint64
			ticks   []uint64
		}
		run := func(ff bool) trace {
			var tr trace
			e := New()
			e.SetFastForward(ff)
			f := &ffTicker{busy: busy}
			e.AddTicker(f)
			e.SetSampler(37, func(now uint64) { tr.samples = append(tr.samples, now) })
			r := rand.New(rand.NewSource(seed + 1))
			for i := 0; i < 30; i++ {
				e.Schedule(uint64(1+r.Intn(400)), func() { tr.events = append(tr.events, e.Now()) })
			}
			e.Run(450)
			// Keep only the ticks a stepped and jumped run must share:
			// busy cycles (quiescent-span ticks are exactly what jumps
			// elide, by contract equivalent to SkipCycles).
			for _, c := range f.ticks {
				if busy[c] {
					tr.ticks = append(tr.ticks, c)
				}
			}
			return tr
		}
		a, b := run(true), run(false)
		eq := func(x, y []uint64) bool {
			if len(x) != len(y) {
				return false
			}
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
			return true
		}
		if !eq(a.events, b.events) {
			t.Fatalf("seed %d: event cycles differ: ff=%v stepped=%v", seed, a.events, b.events)
		}
		if !eq(a.samples, b.samples) {
			t.Fatalf("seed %d: sample cycles differ: ff=%v stepped=%v", seed, a.samples, b.samples)
		}
		if !eq(a.ticks, b.ticks) {
			t.Fatalf("seed %d: busy-cycle ticks differ: ff=%v stepped=%v", seed, a.ticks, b.ticks)
		}
	}
}

// TestEventFIFOAcrossHeapChurn grows and shrinks the heap by scheduling new
// events from inside running events under a seeded random schedule, and
// requires global (cycle, insertion) order to hold throughout.
func TestEventFIFOAcrossHeapChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := New()
	type fired struct {
		cycle uint64
		id    int
	}
	var log []fired
	nextID := 0
	var add func(depth int) // schedules one event that may schedule more
	add = func(depth int) {
		id := nextID
		nextID++
		e.Schedule(uint64(1+rng.Intn(30)), func() {
			log = append(log, fired{e.Now(), id})
			if depth > 0 && rng.Intn(2) == 0 {
				for i := 0; i < 1+rng.Intn(3); i++ {
					add(depth - 1)
				}
			}
		})
	}
	for i := 0; i < 100; i++ {
		add(3)
	}
	e.Run(200)
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending after drain window", e.Pending())
	}
	if len(log) != nextID {
		t.Fatalf("fired %d of %d events", len(log), nextID)
	}
	for i := 1; i < len(log); i++ {
		if log[i].cycle < log[i-1].cycle {
			t.Fatalf("event %d fired at %d after event %d at %d", log[i].id, log[i].cycle, log[i-1].id, log[i-1].cycle)
		}
	}
	// Same-cycle events fire in insertion order. IDs are assigned in
	// scheduling order, so within one cycle they must increase.
	byCycle := map[uint64][]int{}
	for _, f := range log {
		byCycle[f.cycle] = append(byCycle[f.cycle], f.id)
	}
	for c, ids := range byCycle {
		for i := 1; i < len(ids); i++ {
			if ids[i] < ids[i-1] {
				t.Fatalf("cycle %d: same-cycle events out of FIFO order: %v", c, ids)
			}
		}
	}
}

// TestRunUntilBoundaries pins RunUntil's edge semantics: pred is evaluated
// before any cycle runs, maxCycles bounds the advance exactly, and a pred
// that becomes true on the final permitted cycle is still observed.
func TestRunUntilBoundaries(t *testing.T) {
	// pred already true: no cycles run.
	e := New()
	if !e.RunUntil(func() bool { return true }, 100) {
		t.Fatal("RunUntil(true) = false")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %d for an already-true pred", e.Now())
	}

	// maxCycles == 0: no advance, pred decides the result.
	if e.RunUntil(func() bool { return false }, 0) {
		t.Fatal("RunUntil(false, 0) = true")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %d with maxCycles 0", e.Now())
	}

	// pred becomes true on exactly the last permitted cycle.
	e2 := New()
	done := false
	e2.Schedule(10, func() { done = true })
	if !e2.RunUntil(func() bool { return done }, 10) {
		t.Fatal("RunUntil missed a pred satisfied on the final cycle")
	}
	if e2.Now() != 10 {
		t.Fatalf("stopped at %d, want 10", e2.Now())
	}

	// Exhaustion: the clock advances exactly maxCycles.
	e3 := New()
	if e3.RunUntil(func() bool { return false }, 25) {
		t.Fatal("RunUntil reported success for an impossible pred")
	}
	if e3.Now() != 25 {
		t.Fatalf("clock at %d after exhaustion, want 25", e3.Now())
	}

	// Fast-forward variant: pred driven by an event, engine fully
	// quiescent, same stopping cycle as the stepped run above.
	e4 := New()
	e4.AddTicker(&ffTicker{busy: map[uint64]bool{}})
	done4 := false
	e4.Schedule(10, func() { done4 = true })
	if !e4.RunUntil(func() bool { return done4 }, 10) {
		t.Fatal("fast-forward RunUntil missed the pred")
	}
	if e4.Now() != 10 {
		t.Fatalf("fast-forward stopped at %d, want 10", e4.Now())
	}
	if e4.Jumps() == 0 {
		t.Fatal("fast-forward RunUntil never jumped across the idle span")
	}
}
