package sim

import (
	"reflect"
	"testing"
)

// byteProgram interprets a fuzz input as a deterministic scheduler program:
// each byte picks a delay class, a handler re-schedule decision, or an
// advance overshoot. Both schedulers consume the same byte stream in
// dispatch order, so the first ordering divergence also derails the program
// — exactly the snowballing property the seeded differential test relies
// on, but with the fuzzer searching the program space instead of rand.
type byteProgram struct {
	data []byte
	pos  int
}

func (p *byteProgram) next() byte {
	if p.pos >= len(p.data) {
		return 0
	}
	b := p.data[p.pos]
	p.pos++
	return b
}

// delay maps one byte onto the wheel's interesting delay classes:
// same-cycle, hot-path, DRAM-ish, in-window, and overflow-calendar.
func (p *byteProgram) delay() uint64 {
	b := p.next()
	switch b % 5 {
	case 0:
		return 0
	case 1:
		return uint64(b%16) + 1
	case 2:
		return uint64(b)*3 + 40
	case 3:
		return uint64(b)%(wheelSize-1) + 1
	default:
		return uint64(b)*97 + wheelSize
	}
}

// run drives s through the byte program and returns the dispatch order and
// every NextDue observation.
func (p *byteProgram) run(s Scheduler) ([]int, []uint64) {
	const maxEvents = 2000
	var fired []int
	var due []uint64
	var now uint64
	nextID := 0

	var schedule func(at uint64)
	schedule = func(at uint64) {
		id := nextID
		nextID++
		s.ScheduleAt(at, func() {
			fired = append(fired, id)
			for p.next()%3 == 0 && nextID < maxEvents {
				schedule(now + p.delay())
			}
		})
	}

	for i := 0; i < 4; i++ {
		schedule(0)
	}
	for i := 0; i < 16; i++ {
		schedule(p.delay())
	}

	for s.Pending() > 0 {
		d := s.NextDue()
		due = append(due, d)
		target := d
		switch p.next() % 4 {
		case 0:
			target = d + uint64(p.next())*uint64(wheelSize)/64
		case 1:
			target = d + uint64(p.next()%8)
		}
		if target < now {
			target = now
		}
		now = target
		s.Advance(now)
		if p.next()%4 == 0 && nextID < maxEvents {
			schedule(now + p.delay())
			if p.next()%2 == 0 {
				schedule(now)
				s.Advance(now)
			}
		}
	}
	return fired, due
}

// FuzzSchedulerDifferential runs every fuzz input through the timing wheel
// and the binary-heap oracle and requires identical dispatch order and
// identical NextDue at every observation point — the determinism contract
// TestSchedulerDifferential pins on fixed seeds, searched by the fuzzer.
func FuzzSchedulerDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	seed := make([]byte, 256)
	for i := range seed {
		seed[i] = byte(i * 31)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		hp := &byteProgram{data: data}
		heapFired, heapDue := hp.run(NewHeapScheduler())
		wp := &byteProgram{data: data}
		wheelFired, wheelDue := wp.run(NewWheelScheduler())
		if !reflect.DeepEqual(heapFired, wheelFired) {
			i := 0
			for i < len(heapFired) && i < len(wheelFired) && heapFired[i] == wheelFired[i] {
				i++
			}
			t.Fatalf("dispatch order diverges at position %d (heap ran %d events, wheel %d)",
				i, len(heapFired), len(wheelFired))
		}
		if !reflect.DeepEqual(heapDue, wheelDue) {
			t.Fatalf("NextDue sequences diverge:\n heap:  %v\n wheel: %v", heapDue, wheelDue)
		}
	})
}
