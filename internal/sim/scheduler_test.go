package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

// schedTrace is the observable behaviour of one scheduler run: every event
// dispatch in order, and NextDue as observed before every advance. Two
// schedulers satisfying the determinism contract must produce identical
// traces for the same program.
type schedTrace struct {
	fired []int
	due   []uint64
}

// runProgram drives s through a randomized event program: a burst of cycle-0
// events, top-level schedules across every delay class the wheel
// distinguishes (same-cycle, near-wheel, far overflow), re-scheduling from
// inside running handlers (including delay 0 into the cycle being drained),
// repeated advances to the same cycle, and fast-forward-style jumps that
// overshoot NextDue. The rand stream is consumed in dispatch order, so a
// scheduler that deviates from the reference order also derails the program
// itself — small ordering bugs snowball instead of hiding.
func runProgram(t *testing.T, s Scheduler, seed int64) schedTrace {
	t.Helper()
	const maxEvents = 4000
	rng := rand.New(rand.NewSource(seed))
	var tr schedTrace
	var now uint64
	nextID := 0

	// delay picks from the wheel's interesting delay classes; 0 means "the
	// current cycle" and from inside a handler lands in the bucket being
	// drained.
	delay := func() uint64 {
		switch rng.Intn(6) {
		case 0:
			return 0
		case 1:
			return uint64(rng.Intn(16)) + 1 // hot-path latencies
		case 2:
			return uint64(rng.Intn(400)) + 40 // DRAM-ish
		case 3:
			return uint64(rng.Intn(wheelSize-1)) + 1 // anywhere in the window
		case 4:
			return uint64(rng.Intn(4*wheelSize)) + wheelSize // overflow calendar
		default:
			return uint64(rng.Intn(100_000)) + wheelSize // far overflow
		}
	}

	var schedule func(at uint64)
	schedule = func(at uint64) {
		id := nextID
		nextID++
		s.ScheduleAt(at, func() {
			tr.fired = append(tr.fired, id)
			for rng.Intn(3) == 0 && nextID < maxEvents {
				// now is the advance target, so a 0 delay lands at or after
				// the cycle being drained but within the running Advance —
				// the re-scheduling-from-a-handler case the contract pins.
				schedule(now + delay())
			}
		})
	}

	// Cycle-0 burst, then a seed population across all delay classes.
	for i := 0; i < 8; i++ {
		schedule(0)
	}
	for i := 0; i < 32; i++ {
		schedule(delay())
	}

	for s.Pending() > 0 {
		due := s.NextDue()
		tr.due = append(tr.due, due)
		target := due
		switch rng.Intn(4) {
		case 0:
			// Fast-forward-style jump: overshoot the next event, forcing a
			// multi-bucket (and possibly overflow-migrating) drain.
			target = due + uint64(rng.Intn(3*wheelSize))
		case 1:
			target = due + uint64(rng.Intn(8))
		}
		if target < now {
			target = now
		}
		now = target
		s.Advance(now)
		if rng.Intn(4) == 0 && nextID < maxEvents {
			// Top-up mid-run, sometimes straight into the already-drained
			// current cycle followed by a second Advance to the same now —
			// the engine's pre-drain pattern.
			schedule(now + delay())
			if rng.Intn(2) == 0 {
				schedule(now)
				s.Advance(now)
			}
		}
	}
	return tr
}

// TestSchedulerDifferential drives the timing wheel and the binary-heap
// oracle through identical randomized event programs and requires identical
// dispatch order and identical NextDue at every observation point.
func TestSchedulerDifferential(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		heap := runProgram(t, NewHeapScheduler(), seed)
		wheel := runProgram(t, NewWheelScheduler(), seed)
		if len(heap.fired) == 0 {
			t.Fatalf("seed %d: empty program", seed)
		}
		if !reflect.DeepEqual(heap.fired, wheel.fired) {
			i := 0
			for i < len(heap.fired) && i < len(wheel.fired) && heap.fired[i] == wheel.fired[i] {
				i++
			}
			t.Fatalf("seed %d: dispatch order diverges at position %d (heap ran %d events, wheel %d)",
				seed, i, len(heap.fired), len(wheel.fired))
		}
		if !reflect.DeepEqual(heap.due, wheel.due) {
			t.Fatalf("seed %d: NextDue sequences diverge:\n heap:  %v\n wheel: %v", seed, heap.due, wheel.due)
		}
	}
}

// TestWheelOverflowMigrationFIFO pins the subtle half of the FIFO proof:
// events that migrate from the overflow calendar into a bucket must sort
// before any event scheduled directly into that bucket afterwards, because
// migration happens the moment the window first covers the cycle.
func TestWheelOverflowMigrationFIFO(t *testing.T) {
	w := NewWheelScheduler()
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }
	far := uint64(3 * wheelSize)
	w.ScheduleAt(far, rec(1))   // overflow
	w.ScheduleAt(far+1, rec(2)) // overflow, later cycle
	w.ScheduleAt(far, rec(3))   // overflow, same cycle as 1: FIFO after it
	w.Advance(far - 10)         // slides the window: 1,3 and 2 migrate
	w.ScheduleAt(far, rec(4))   // direct insert after migration
	w.Advance(far + 1)
	want := []int{1, 3, 4, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dispatch order %v, want %v", got, want)
	}
}

// TestWheelNextDueMemo pins the memoization contract: an earlier insert
// updates the cached value, a drain invalidates it, and sliding the window
// (which cannot change the pending set) keeps it.
func TestWheelNextDueMemo(t *testing.T) {
	w := NewWheelScheduler()
	w.ScheduleAt(100, func() {})
	if d := w.NextDue(); d != 100 {
		t.Fatalf("NextDue = %d, want 100", d)
	}
	w.ScheduleAt(40, func() {}) // earlier insert while memoized
	if d := w.NextDue(); d != 40 {
		t.Fatalf("NextDue after earlier insert = %d, want 40", d)
	}
	w.Advance(40) // drain invalidates
	if d := w.NextDue(); d != 100 {
		t.Fatalf("NextDue after drain = %d, want 100", d)
	}
	w.Advance(99) // slide only: pending set unchanged
	if d := w.NextDue(); d != 100 {
		t.Fatalf("NextDue after slide = %d, want 100", d)
	}
	w.Advance(100)
	if d := w.NextDue(); d != NoEvent {
		t.Fatalf("NextDue on empty = %d, want NoEvent", d)
	}
}

// benchPushPop is the event queue's steady-state busy pattern: schedule one
// event and advance one cycle against a background of pending work, the
// sequence every DRAM/cache callback follows. The wheel must report ~0
// allocs/op here.
func benchPushPop(b *testing.B, k Kind) {
	s, err := NewScheduler(k)
	if err != nil {
		b.Fatal(err)
	}
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.Schedule(uint64(i%16)+1, fn)
	}
	var now uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(4, fn)
		now++
		s.Advance(now)
	}
}

// benchBurst measures batched same-cycle dispatch: 64 events into one cycle,
// drained in one Advance — the wheel's bucket drain against the heap's 64
// pops.
func benchBurst(b *testing.B, k Kind) {
	s, err := NewScheduler(k)
	if err != nil {
		b.Fatal(err)
	}
	fn := func() {}
	var now uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		for j := 0; j < 64; j++ {
			s.ScheduleAt(now, fn)
		}
		s.Advance(now)
	}
}

// benchNextDue measures the per-cycle idle poll (the fast-forward jump
// bound): NextDue with one far-future event pending. The wheel memoizes
// this; the heap peeks its root.
func benchNextDue(b *testing.B, k Kind) {
	s, err := NewScheduler(k)
	if err != nil {
		b.Fatal(err)
	}
	s.Schedule(1<<20, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.NextDue() == NoEvent {
			b.Fatal("queue unexpectedly empty")
		}
	}
}

func BenchmarkSchedulerWheelPushPop(b *testing.B) { benchPushPop(b, KindWheel) }
func BenchmarkSchedulerHeapPushPop(b *testing.B)  { benchPushPop(b, KindHeap) }
func BenchmarkSchedulerWheelBurst(b *testing.B)   { benchBurst(b, KindWheel) }
func BenchmarkSchedulerHeapBurst(b *testing.B)    { benchBurst(b, KindHeap) }
func BenchmarkSchedulerWheelNextDue(b *testing.B) { benchNextDue(b, KindWheel) }
func BenchmarkSchedulerHeapNextDue(b *testing.B)  { benchNextDue(b, KindHeap) }
