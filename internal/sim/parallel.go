// Parallel execution mode: shard the per-cycle tick phase across worker
// goroutines along the lint-enforced ownership domains, keeping the event
// phase — and therefore the determinism contract — sequential.
//
// The ownership analysis (internal/lint, `//nomad:owner`) splits simulation
// state into core-domain shards (cpu/tlb/L1-L2/workload per core),
// channel-domain tickers (the DRAM devices), and shared-domain components
// (LLC, scheme front/back-ends, OS memory manager). Core shards never read
// each other's state inside Tick, and every cross-domain effect a core tick
// can produce funnels through one of the `//nomad:port` mediation sites. The
// parallel engine exploits exactly that structure:
//
//   - Each core shard is a facade Engine (NewShard) whose scheduler defers:
//     during the tick phase every Schedule/At lands in the shard's ordered
//     buffer instead of the shared event queue, and port-site calls that
//     would touch shared state (page walks, store notifications, span
//     emissions) are deferred through the same buffer via Defer.
//   - Worker goroutines tick the shards concurrently; the coordinator joins
//     them at a conservative barrier each cycle and replays every buffer in
//     (shard index, intra-shard FIFO) order, which reassigns global event
//     sequence numbers in exactly the order the sequential engine would have
//     assigned them (sequential ticks run in registration order, and each
//     tick's calls are FIFO within it).
//   - Channel-domain tickers (DRAM devices) and the whole event phase run on
//     the coordinator: DRAM issue writes core-owned latency-provenance
//     probes and the shared trace ring at tick time, and the upward
//     completion chains (fill -> L2 -> L1 -> core) are zero-latency
//     synchronous, so the safe cross-domain lookahead is a single tick
//     phase. The DRAM timing constants guarantee the other direction:
//     every deferred call's first shared-side effect is an event at least
//     the minimum cross-domain latency (walk latency, cache lookup
//     latency, TRCD+TCL+TBL) in the future, so replaying it at the
//     barrier — same cycle, same arguments — is indistinguishable from
//     the inline call.
//
// The result is byte-identical to the sequential engine (snapshots,
// timelines, Perfetto traces, digest chains), which
// internal/system.TestParallelByteIdentical pins for every scheme and
// worker count. See DESIGN.md, "Parallel engine".
//
// This file is the one place in the model allowed to use goroutines: the
// nomadlint concurrency rule exempts it by name (Config.ConcurrencyAllowFiles)
// precisely because the workers synchronize only through the epoch/done
// atomics below and never touch the event queue.
package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"nomad/internal/check"
)

// deferredOp is one buffered effect of a shard's tick phase: either an event
// to place on the shared queue (fn != nil) or a deferred cross-domain call
// to invoke at the barrier (call != nil).
//
//nomad:owner shared
//nomad:ephemeral tick-phase deferral record; its replay lands in engine state the digest chain records
type deferredOp struct {
	cycle uint64
	fn    func()
	call  func()
}

// shardSched is the scheduler facade a shard engine runs on. During the
// parallel tick phase it buffers ScheduleAt calls in program order; outside
// it (event phase, barrier replay, sequential setup) it forwards straight to
// the root scheduler.
//
//nomad:owner shared
//nomad:ephemeral tick-phase deferral buffer; replay lands in the root scheduler whose order the digest chain records
type shardSched struct {
	root *Engine
	buf  []deferredOp
}

func (s *shardSched) Schedule(delay uint64, fn func()) {
	s.ScheduleAt(s.root.now+delay, fn)
}

func (s *shardSched) ScheduleAt(cycle uint64, fn func()) {
	if s.root.inTick {
		s.buf = append(s.buf, deferredOp{cycle: cycle, fn: fn})
		return
	}
	s.root.sched.ScheduleAt(cycle, fn)
}

func (s *shardSched) NextDue() uint64           { return s.root.sched.NextDue() }
func (s *shardSched) Advance(now uint64) uint64 { return s.root.sched.Advance(now) }
func (s *shardSched) Pending() int              { return s.root.sched.Pending() }

// parWorker is one tick-phase worker: a static subset of the shards plus the
// epoch handshake word it spins on. Padding keeps the hot atomics on
// separate cache lines.
//
//nomad:owner host
type parWorker struct {
	shards []*Engine
	_      [64]byte
	done   atomic.Uint64
	_      [64]byte
}

// stopEpoch is the epoch sentinel that shuts worker goroutines down.
const stopEpoch = ^uint64(0)

// parallelRunner drives the two-phase cycle: coordinator ticks the root
// (channel-domain) tickers, publishes an epoch, workers tick their core
// shards concurrently while deferring every shared-side effect, the
// coordinator joins them and replays the buffers in shard order.
//
//nomad:owner host
type parallelRunner struct {
	workers int
	shards  []*Engine    // every shard, in deterministic creation order
	pool    []*parWorker // pool[0] is executed inline by the coordinator
	epoch   atomic.Uint64
	cycle   uint64 // cycle workers tick at; published via epoch
	// spinLimit is how long barrier waits spin before yielding: 1024 when
	// the whole pool fits on the host's CPUs (the waited-on party is truly
	// running, so spinning is the fast path), 0 when the host is
	// oversubscribed (the waited-on party only progresses when the waiter
	// yields, so every spin is a wasted slice of its CPU). A host-speed
	// policy only — results are byte-identical either way.
	spinLimit int
	started   bool
	stopped   bool
}

// Parallel enables the parallel tick phase with the given number of workers
// (including the coordinator itself, which executes one worker's share
// inline). workers <= 0 leaves the engine sequential; workers == 1 runs the
// full shard/defer/replay machinery on the coordinator alone, which the
// equivalence tests use to isolate ordering bugs from concurrency bugs.
func Parallel(workers int) Option {
	return func(e *Engine) {
		if workers <= 0 {
			return
		}
		e.par = &parallelRunner{workers: workers}
	}
}

// ParallelWorkers reports the configured tick-phase worker count (0 when the
// engine is sequential).
func (e *Engine) ParallelWorkers() int {
	if e.par == nil {
		return 0
	}
	return e.par.workers
}

// NewShard returns the engine a tick-phase shard's components should be
// wired to. On a sequential engine it returns the engine itself, so callers
// wire components identically in both modes. On a parallel engine it returns
// a facade whose AddTicker assigns tickers to this shard and whose scheduler
// defers during the tick phase; shards tick in creation order, which must
// therefore match the registration order a sequential build would use.
func (e *Engine) NewShard() *Engine {
	if e.rootEng != nil {
		panic("sim: NewShard on a shard facade")
	}
	if e.par == nil {
		return e
	}
	if e.par.started {
		panic("sim: NewShard after the first parallel Step")
	}
	s := &Engine{now: e.now, rootEng: e}
	s.sched = &shardSched{root: e}
	e.par.shards = append(e.par.shards, s)
	return s
}

// Root returns the engine owning the event queue: the engine itself, or the
// parent of a shard facade.
func (e *Engine) Root() *Engine {
	if e.rootEng != nil {
		return e.rootEng
	}
	return e
}

// Deferring reports whether calls made right now against this engine are
// being deferred to the tick-phase barrier. Port mediation sites use it to
// decide between calling through directly and buffering via Defer.
func (e *Engine) Deferring() bool {
	return e.rootEng != nil && e.rootEng.inTick
}

// Defer runs call at the tick-phase barrier, in program order with the
// shard's buffered schedules, preserving the exact call order a sequential
// tick would have produced. Outside the tick phase (or on a sequential
// engine) the call runs immediately.
func (e *Engine) Defer(call func()) {
	if e.Deferring() {
		s := e.sched.(*shardSched)
		s.buf = append(s.buf, deferredOp{call: call})
		return
	}
	call()
}

// StopWorkers shuts the tick-phase worker goroutines down. Idempotent and
// safe on sequential engines; the engine remains usable afterwards but falls
// back to coordinator-only parallel execution if stepped again.
func (e *Engine) StopWorkers() {
	r := e.par
	if r == nil || !r.started || r.stopped {
		return
	}
	r.stopped = true
	r.epoch.Store(stopEpoch)
}

// start distributes shards round-robin over the worker pool and launches the
// spinning goroutines (pool[0] runs inline on the coordinator).
func (r *parallelRunner) start() {
	n := r.workers
	if n > len(r.shards) {
		n = len(r.shards)
	}
	if n < 1 {
		n = 1
	}
	r.pool = make([]*parWorker, n)
	for i := range r.pool {
		r.pool[i] = &parWorker{}
	}
	for i, s := range r.shards {
		w := r.pool[i%n]
		w.shards = append(w.shards, s)
	}
	r.started = true
	r.spinLimit = 1024
	if runtime.GOMAXPROCS(0) < len(r.pool) {
		r.spinLimit = 0
	}
	for _, w := range r.pool[1:] {
		w := w
		go func() { //nomadlint:ignore concurrency -- the parallel engine's worker pool; exempted by name in the lint config
			var last uint64
			spins := 0
			for {
				ep := r.epoch.Load()
				if ep == stopEpoch {
					return
				}
				if ep == last {
					if spins < r.spinLimit {
						spins++
					} else {
						runtime.Gosched()
					}
					continue
				}
				last = ep
				spins = 0
				cyc := r.cycle
				for _, s := range w.shards {
					for _, t := range s.tickers {
						t.Tick(cyc)
					}
				}
				w.done.Store(ep)
			}
		}()
	}
}

// runTicks executes one cycle's tick phase: root tickers inline (channel
// domain, registration order), then the parallel core-shard phase, then the
// deterministic buffer replay.
func (r *parallelRunner) runTicks(e *Engine, now uint64) {
	for _, t := range e.tickers {
		t.Tick(now)
	}
	if len(r.shards) == 0 {
		return
	}
	if !r.started {
		r.start()
	}
	for _, s := range r.shards {
		s.now = now
	}
	r.cycle = now
	e.inTick = true
	ep := r.epoch.Load() + 1
	if r.stopped || len(r.pool) == 1 {
		// Coordinator-only: every shard ticks here, same deferral rules.
		for _, s := range r.shards {
			for _, t := range s.tickers {
				t.Tick(now)
			}
		}
	} else {
		r.epoch.Store(ep)
		w0 := r.pool[0]
		for _, s := range w0.shards {
			for _, t := range s.tickers {
				t.Tick(now)
			}
		}
		spins := 0
		for _, w := range r.pool[1:] {
			for w.done.Load() != ep {
				if spins < r.spinLimit {
					spins++
				} else {
					runtime.Gosched()
				}
			}
		}
	}
	e.inTick = false
	// Replay: shard order, intra-shard FIFO. Sequential ticks run in this
	// exact order and each tick's schedule/port calls are FIFO within it,
	// so the root scheduler assigns the same sequence numbers — and
	// therefore the same same-cycle event order — as the sequential engine.
	for _, s := range r.shards {
		ss := s.sched.(*shardSched)
		buf := ss.buf
		for i := range buf {
			op := &buf[i]
			if op.fn != nil {
				if check.Enabled {
					check.Assert(op.cycle >= now,
						"sim: shard deferred an event at cycle %d, now is %d", op.cycle, now)
				}
				e.sched.ScheduleAt(op.cycle, op.fn)
				op.fn = nil
			} else {
				op.call()
				op.call = nil
			}
		}
		ss.buf = buf[:0]
	}
}

// validateShard panics on engine entry points that only make sense on the
// root engine.
func (e *Engine) validateShard(what string) {
	if e.rootEng != nil {
		panic(fmt.Sprintf("sim: %s on a shard facade", what))
	}
}
