package sim

import "fmt"

// NoEvent is the NextDue return value of a scheduler with no pending events.
const NoEvent = ^uint64(0)

// Scheduler is the event-queue half of the engine: it owns every scheduled
// closure and the clock-ordered dispatch of those closures. The Engine owns
// tickers, hooks, and fast-forward; it talks to the queue exclusively
// through this interface, so queue implementations are swappable (the
// -engine=heap|wheel CLI flag, Config.Engine in the public API).
//
// The determinism contract a Scheduler must satisfy:
//
//   - Events for the same cycle dispatch in FIFO order of scheduling,
//     including events scheduled from inside a running handler for the
//     current cycle (they run after everything already queued there).
//   - Advance(now) dispatches every event due at or before now before
//     returning, in (cycle, FIFO) order.
//   - NextDue never under-reports: there is no pending event earlier than
//     its return value. Fast-forward jumps are bounded by it.
//
// Two implementations exist: WheelScheduler (hierarchical timing wheel,
// the default — O(1) schedule and dispatch, allocation-free steady state)
// and HeapScheduler (binary min-heap, the original engine — kept as the
// differential-testing oracle the randomized equivalence tests drive both
// against). See DESIGN.md, "Event engine v2".
type Scheduler interface {
	// Schedule enqueues fn delay cycles after the scheduler's current
	// cycle. A delay of 0 runs fn later within the current cycle.
	Schedule(delay uint64, fn func())
	// ScheduleAt enqueues fn at the given absolute cycle, which must not
	// precede the scheduler's current cycle.
	ScheduleAt(cycle uint64, fn func())
	// NextDue returns the earliest cycle holding a pending event, or
	// NoEvent when the queue is empty.
	NextDue() uint64
	// Advance moves the scheduler's clock to now (monotonically) and
	// dispatches every event due at or before now. It returns the number
	// of events dispatched.
	Advance(now uint64) uint64
	// Pending reports how many events are queued.
	Pending() int
}

// Kind names a Scheduler implementation for config/CLI selection.
type Kind string

const (
	// KindWheel selects the hierarchical timing wheel (the default).
	KindWheel Kind = "wheel"
	// KindHeap selects the binary-heap oracle.
	KindHeap Kind = "heap"
)

// NewScheduler builds a scheduler of the given kind ("" selects the wheel).
func NewScheduler(k Kind) (Scheduler, error) {
	switch k {
	case KindWheel, "":
		return NewWheelScheduler(), nil
	case KindHeap:
		return NewHeapScheduler(), nil
	default:
		return nil, fmt.Errorf("sim: unknown scheduler kind %q (want %q or %q)", k, KindWheel, KindHeap)
	}
}

// event is one scheduled closure, keyed by (cycle, seq): seq is the global
// scheduling sequence number that breaks same-cycle ties FIFO.
type event struct {
	cycle uint64
	seq   uint64
	fn    func()
}

// eventHeap is a hand-rolled binary min-heap ordered by (cycle, seq). It is
// typed (no interface boxing) and backs both the HeapScheduler and the
// wheel's far-future overflow calendar.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the closure for GC
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// HeapScheduler is the original event queue: a binary min-heap keyed by
// (cycle, seq). O(log n) per operation, but with a trivially auditable
// ordering proof — which is why it survives as the oracle the randomized
// differential tests compare the wheel against.
//
//nomad:owner shared
//nomad:ephemeral scheduler queue state; event order is digested by the interval digest chain
type HeapScheduler struct {
	now     uint64
	seq     uint64
	pending eventHeap
}

// NewHeapScheduler returns an empty heap scheduler at cycle 0.
func NewHeapScheduler() *HeapScheduler { return &HeapScheduler{} }

// Schedule implements Scheduler.
func (h *HeapScheduler) Schedule(delay uint64, fn func()) { h.ScheduleAt(h.now+delay, fn) }

// ScheduleAt implements Scheduler.
func (h *HeapScheduler) ScheduleAt(cycle uint64, fn func()) {
	if cycle < h.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, now is %d", cycle, h.now))
	}
	if fn == nil {
		panic("sim: scheduling a nil event")
	}
	h.seq++
	h.pending.push(event{cycle: cycle, seq: h.seq, fn: fn})
}

// NextDue implements Scheduler.
func (h *HeapScheduler) NextDue() uint64 {
	if len(h.pending) == 0 {
		return NoEvent
	}
	return h.pending[0].cycle
}

// Advance implements Scheduler.
func (h *HeapScheduler) Advance(now uint64) uint64 {
	if now > h.now {
		h.now = now
	}
	var ran uint64
	for len(h.pending) > 0 && h.pending[0].cycle <= h.now {
		ev := h.pending.pop()
		ran++
		ev.fn()
	}
	return ran
}

// Pending implements Scheduler.
func (h *HeapScheduler) Pending() int { return len(h.pending) }
