package lint

import "testing"

func TestConcurrencyBad(t *testing.T) {
	diags := lintSnippet(t, `package model

func spawn(work func()) {
	go work() // line 4: goroutine
}

func pipe(c chan int) int { // line 7: chan type
	c <- 1 // line 8: send
	select { // line 9: select
	default:
	}
	v := <-c // line 12: receive
	close(c) // line 13: close
	return v
}
`, snippetConfig(), nil)
	wantDiags(t, diags,
		[2]any{"concurrency", 4},
		[2]any{"concurrency", 7},
		[2]any{"concurrency", 8},
		[2]any{"concurrency", 9},
		[2]any{"concurrency", 12},
		[2]any{"concurrency", 13},
	)
}

func TestConcurrencyGood(t *testing.T) {
	// A user-defined close function is not the channel builtin.
	diags := lintSnippet(t, `package model

type file struct{ open bool }

func closeFile(f *file) { f.open = false }

func shut(f *file) { closeFile(f) }
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestConcurrencyAllowFiles(t *testing.T) {
	// A file on the ConcurrencyAllowFiles list (the parallel engine) may
	// launch goroutines; the ban stays in force for every other model file.
	src := `package model

func spawn(work func()) {
	go work()
}
`
	cfg := snippetConfig()
	cfg.ConcurrencyAllowFiles = []string{"m/model/model.go"}
	wantDiags(t, lintSnippet(t, src, cfg, nil))

	cfg.ConcurrencyAllowFiles = []string{"m/model/other.go"}
	wantDiags(t, lintSnippet(t, src, cfg, nil), [2]any{"concurrency", 4})
}

func TestConcurrencyDefaultAllowsParallelEngine(t *testing.T) {
	// The repo's own config sanctions exactly internal/sim/parallel.go.
	cfg := DefaultConfig()
	if !cfg.concurrencyAllowed("/work/repo/internal/sim/parallel.go") {
		t.Error("internal/sim/parallel.go not exempt from the concurrency rule")
	}
	if cfg.concurrencyAllowed("/work/repo/internal/sim/engine.go") {
		t.Error("internal/sim/engine.go must stay under the goroutine ban")
	}
}

func TestConcurrencyNonModelExempt(t *testing.T) {
	diags := lintSnippet(t, `package model

func ok() {}
`, snippetConfig(), map[string]map[string]string{
		"m/harness": {"m/harness/h.go": `package harness

func Fan(n int, work func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) { work(i); done <- struct{}{} }(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
`},
	})
	wantDiags(t, diags)
}
