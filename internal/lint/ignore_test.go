package lint

import (
	"strings"
	"testing"
)

func TestIgnoreSameLine(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func stamp() time.Time {
	return time.Now() //nomadlint:ignore wallclock -- host-facing timestamp for logs
}
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestIgnorePrecedingLine(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func stamp() time.Time {
	//nomadlint:ignore wallclock -- host-facing timestamp for logs
	return time.Now()
}
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestIgnoreMultipleRules(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func eta(rem float64) time.Duration {
	//nomadlint:ignore floatclock, wallclock -- display-only estimate
	return time.Duration(rem * float64(time.Second))
}
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestIgnoreWrongRuleDoesNotSuppress(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func stamp() time.Time {
	//nomadlint:ignore maporder -- irrelevant rule
	return time.Now()
}
`, snippetConfig(), nil)
	wantDiags(t, diags, [2]any{"wallclock", 7})
}

func TestIgnoreMissingReason(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func stamp() time.Time {
	//nomadlint:ignore wallclock
	return time.Now()
}
`, snippetConfig(), nil)
	if len(diags) != 2 {
		t.Fatalf("want directive + wallclock diagnostics, got %v", diags)
	}
	var sawDirective, sawWallclock bool
	for _, d := range diags {
		switch d.Rule {
		case "directive":
			sawDirective = true
			if !strings.Contains(d.Message, "justification") {
				t.Errorf("directive message = %q", d.Message)
			}
		case "wallclock":
			// The malformed directive must not suppress.
			sawWallclock = true
		}
	}
	if !sawDirective || !sawWallclock {
		t.Errorf("got %v", rulesOf(diags))
	}
}

func TestIgnoreTrivialReason(t *testing.T) {
	// Punctuation or an "ok"-style shrug is not a justification: the
	// directive is diagnosed and must not suppress.
	for _, reason := range []string{".", "ok", "x", "-- --", "a b c"} {
		diags := lintSnippet(t, `package model

import "time"

func stamp() time.Time {
	//nomadlint:ignore wallclock -- `+reason+`
	return time.Now()
}
`, snippetConfig(), nil)
		var sawDirective, sawWallclock bool
		for _, d := range diags {
			switch d.Rule {
			case "directive":
				sawDirective = true
				if !strings.Contains(d.Message, "not substantive") {
					t.Errorf("reason %q: directive message = %q", reason, d.Message)
				}
			case "wallclock":
				sawWallclock = true
			}
		}
		if !sawDirective || !sawWallclock {
			t.Errorf("reason %q: got %v, want directive + unsuppressed wallclock", reason, rulesOf(diags))
		}
	}
}

func TestIgnoreSubstantiveReasonAccepted(t *testing.T) {
	// Three consecutive letters anywhere marks a real word; the directive
	// parses and suppresses.
	diags := lintSnippet(t, `package model

import "time"

func stamp() time.Time {
	//nomadlint:ignore wallclock -- UI-only
	return time.Now()
}
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestIgnoreUnknownRule(t *testing.T) {
	diags := lintSnippet(t, `package model

//nomadlint:ignore nosuchrule -- reason here
func ok() {}
`, snippetConfig(), nil)
	wantDiags(t, diags, [2]any{"directive", 3})
}
