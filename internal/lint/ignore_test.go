package lint

import (
	"strings"
	"testing"
)

func TestIgnoreSameLine(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func stamp() time.Time {
	return time.Now() //nomadlint:ignore wallclock -- host-facing timestamp for logs
}
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestIgnorePrecedingLine(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func stamp() time.Time {
	//nomadlint:ignore wallclock -- host-facing timestamp for logs
	return time.Now()
}
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestIgnoreMultipleRules(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func eta(rem float64) time.Duration {
	//nomadlint:ignore floatclock, wallclock -- display-only estimate
	return time.Duration(rem * float64(time.Second))
}
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestIgnoreWrongRuleDoesNotSuppress(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func stamp() time.Time {
	//nomadlint:ignore maporder -- irrelevant rule
	return time.Now()
}
`, snippetConfig(), nil)
	wantDiags(t, diags, [2]any{"wallclock", 7})
}

func TestIgnoreMissingReason(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func stamp() time.Time {
	//nomadlint:ignore wallclock
	return time.Now()
}
`, snippetConfig(), nil)
	if len(diags) != 2 {
		t.Fatalf("want directive + wallclock diagnostics, got %v", diags)
	}
	var sawDirective, sawWallclock bool
	for _, d := range diags {
		switch d.Rule {
		case "directive":
			sawDirective = true
			if !strings.Contains(d.Message, "justification") {
				t.Errorf("directive message = %q", d.Message)
			}
		case "wallclock":
			// The malformed directive must not suppress.
			sawWallclock = true
		}
	}
	if !sawDirective || !sawWallclock {
		t.Errorf("got %v", rulesOf(diags))
	}
}

func TestIgnoreUnknownRule(t *testing.T) {
	diags := lintSnippet(t, `package model

//nomadlint:ignore nosuchrule -- reason here
func ok() {}
`, snippetConfig(), nil)
	wantDiags(t, diags, [2]any{"directive", 3})
}
