package lint

import (
	"go/ast"
	"go/types"
)

// checkFloatClock flags float-to-integer conversions in model packages
// (metrics excepted): cycle and tick arithmetic must stay in integers end to
// end, because a float round-trip silently truncates and makes results
// depend on rounding mode and operation order. Reporting code converting
// integers *to* float is fine; converting a float *back* into an integer
// (uint64(f), time.Duration(f*...)) is the contract violation.
func checkFloatClock(mod *Module, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, p := range mod.Sorted() {
		if !cfg.isModel(mod.Path, p.Path) {
			continue
		}
		if p.Path == mod.Path+"/internal/metrics" || p.Path == "internal/metrics" {
			// Metrics reduce counters into rates and percentiles; float
			// math is its whole job.
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				tv, ok := p.Info.Types[call.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				dst, ok := tv.Type.Underlying().(*types.Basic)
				if !ok || dst.Info()&types.IsInteger == 0 {
					return true
				}
				atv, ok := p.Info.Types[call.Args[0]]
				if !ok || atv.Type == nil {
					return true
				}
				src, ok := atv.Type.Underlying().(*types.Basic)
				if !ok || src.Info()&types.IsFloat == 0 {
					return true
				}
				if atv.Value != nil {
					// Constant conversions (uint64(1e6)) are exact or
					// rejected by the compiler; they cannot drift at
					// run time.
					return true
				}
				diags = append(diags, Diagnostic{
					Pos: mod.Fset.Position(call.Pos()), Rule: "floatclock",
					Message: "model code converts float to " + tv.Type.String() + "; keep cycle/tick arithmetic in integers (metrics package owns float reduction)",
				})
				return true
			})
		}
	}
	return diags
}
