package lint

import "testing"

func TestFloatClockBad(t *testing.T) {
	diags := lintSnippet(t, `package model

import "time"

func eta(frac float64, elapsed uint64) uint64 {
	rem := float64(elapsed) * (1 - frac) / frac
	return uint64(rem) // line 7: float -> integer
}

func stretch(f float64) time.Duration {
	return time.Duration(f * 1e9) // line 11: float -> integer-kind named type
}
`, snippetConfig(), nil)
	wantDiags(t, diags,
		[2]any{"floatclock", 7},
		[2]any{"floatclock", 11},
	)
}

func TestFloatClockGood(t *testing.T) {
	diags := lintSnippet(t, `package model

// Integer-to-float for reporting is fine; so are constant conversions.
func rate(hits, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

const budget = uint64(1e6)

func scale(c uint64) uint64 { return c * 2 }
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestFloatClockMetricsExempt(t *testing.T) {
	diags := lintSnippet(t, `package model

func ok() {}
`, Config{ModelPackages: []string{"model", "internal/metrics"}},
		map[string]map[string]string{
			"m/internal/metrics": {"metrics.go": fakeStd["m/internal/metrics"]["metrics.go"] + `
func Percentile(samples []float64, p float64) uint64 {
	if len(samples) == 0 {
		return 0
	}
	return uint64(samples[int(p*float64(len(samples)-1))])
}
`},
		})
	wantDiags(t, diags)
}
