package lint

import (
	"strconv"
	"strings"
)

// checkObsBoundary enforces the observability boundary: host-side
// introspection (internal/obs), divergence diagnosis (internal/diag), and
// structured logging (log/slog) are one-way consumers of the model. A model
// package importing any of them would let host-side, wall-clock-coupled
// machinery leak into simulation state, so the imports are banned outright
// in contract scope.
func checkObsBoundary(mod *Module, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, p := range mod.Sorted() {
		if !cfg.isModel(mod.Path, p.Path) {
			continue
		}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				ipath, _ := strconv.Unquote(imp.Path.Value)
				var msg string
				switch {
				case ipath == "log/slog":
					msg = "model package imports log/slog; structured logging is host-side only — model state must surface through metrics and Results"
				case ipath == "internal/obs" || strings.HasSuffix(ipath, "/internal/obs"):
					msg = "model package imports " + ipath + "; observability observes the model, never the reverse — attach manifests and trackers at the harness/CLI layer"
				case ipath == "internal/diag" || strings.HasSuffix(ipath, "/internal/diag"):
					msg = "model package imports " + ipath + "; divergence diagnosis consumes snapshots and digest chains the model produces — diff and bisect at the harness/CLI layer"
				default:
					continue
				}
				diags = append(diags, Diagnostic{
					Pos: mod.Fset.Position(imp.Pos()), Rule: "obsboundary",
					Message: msg,
				})
			}
		}
	}
	return diags
}
