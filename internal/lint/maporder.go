package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// orderInsensitiveBuiltins may be called inside a map-range body without
// making iteration order observable: they are pure with respect to order
// (append is special-cased separately — collecting keys for a later sort is
// the sanctioned idiom).
var orderInsensitiveBuiltins = map[string]bool{
	"len": true, "cap": true, "append": true, "delete": true,
	"make": true, "copy": true, "min": true, "max": true,
}

// checkMapOrder flags `range` over a map in model packages when the loop
// body could observe iteration order. Two body shapes are allowed without a
// directive, because they are order-insensitive by construction:
//
//   - pure reductions: assignments, comparisons, branches — no function
//     calls other than order-insensitive builtins (min/max/len/append/...),
//     and no floating-point accumulation (float += reorders rounding);
//   - key collection: append of values into a slice for a subsequent sort
//     (the collect-then-sort idiom).
//
// Anything that calls a user function per iteration, or accumulates floats,
// is flagged: either restructure over sorted keys or annotate with
// //nomadlint:ignore maporder -- <why order cannot matter>.
func checkMapOrder(mod *Module, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, p := range mod.Sorted() {
		if !cfg.isModel(mod.Path, p.Path) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[rng.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if why, bad := orderSensitive(p.Info, rng.Body); bad {
					diags = append(diags, Diagnostic{
						Pos: mod.Fset.Position(rng.Pos()), Rule: "maporder",
						Message: "range over map with an order-sensitive body (" + why + "); iterate sorted keys or annotate with //nomadlint:ignore maporder -- <reason>",
					})
				}
				return true
			})
		}
	}
	return diags
}

// orderSensitive inspects a map-range body and reports the first construct
// that could leak iteration order, if any.
func orderSensitive(info *types.Info, body *ast.BlockStmt) (why string, bad bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if bad {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); isBuiltin && orderInsensitiveBuiltins[id.Name] {
						return true
					}
				}
			}
			// Conversions (T(x)) are pure; allow them.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true
			}
			why, bad = "calls a function per iteration", true
			return false
		case *ast.AssignStmt:
			// Floating-point accumulation depends on visit order.
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN ||
				n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
				for _, lhs := range n.Lhs {
					if tv, ok := info.Types[lhs]; ok && tv.Type != nil {
						if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
							why, bad = "accumulates floating point across iterations", true
							return false
						}
					}
				}
			}
		case *ast.ReturnStmt:
			why, bad = "returns from inside the iteration", true
			return false
		}
		return true
	})
	return why, bad
}
