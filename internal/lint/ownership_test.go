package lint

import (
	"strings"
	"testing"
)

// ownershipConfig scopes the interprocedural rules to the m/model overlay
// package and restricts the run to the named families so snippets cannot
// trip unrelated syntactic rules.
func ownershipConfig(rules ...string) Config {
	return Config{
		ModelPackages:     []string{"model"},
		OwnershipPackages: []string{"model"},
		Rules:             rules,
	}
}

func TestOwnershipUnannotatedMutableStruct(t *testing.T) {
	diags := lintSnippet(t, `package model

type counter struct { // line 3: mutable, unannotated
	n int
}

func (c *counter) inc() { c.n++ }

type frozen struct { // immutable: only read, never flagged
	v int
}

func (f frozen) get() int { return f.v }
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags, [2]any{"ownership", 3})
}

func TestOwnershipAnnotatedCleanAndGrammar(t *testing.T) {
	diags := lintSnippet(t, `package model

//nomad:owner core
type ok struct{ n int }

func (o *ok) inc() { o.n++ }

//nomad:owner planet
type badDomain struct{ n int } // line 9: unknown domain (also unannotated)

func (b *badDomain) inc() { b.n++ }

//nomad:owner core
//nomad:owner shared
type dup struct{ n int } // duplicate annotation

func (d *dup) inc() { d.n++ }

//nomad:owner core
type notStruct int // owner on a non-struct type

//nomad:owner core
func misplacedOwner() {}

//nomad:port
func reasonlessPort() {}
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags,
		[2]any{"ownership", 8},  // unknown domain "planet"
		[2]any{"ownership", 9},  // badDomain stays unannotated -> mutable without owner
		[2]any{"ownership", 14}, // duplicate //nomad:owner
		[2]any{"ownership", 19}, // owner on a non-struct type
		[2]any{"ownership", 22}, // owner on a function
		[2]any{"ownership", 25}, // port without a reason
	)
}

func TestOwnershipCrossDomainWrite(t *testing.T) {
	diags := lintSnippet(t, `package model

//nomad:owner core
type coreSide struct{ peer *chanSide }

//nomad:owner channel
type chanSide struct{ x int }

func (c *coreSide) step() { c.peer.x++ } // line 9: core writes channel state
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags, [2]any{"ownership", 9})
	if !strings.Contains(diags[0].Message, "//nomad:port") {
		t.Errorf("message should point at the port mechanism: %s", diags[0].Message)
	}
}

func TestOwnershipPortMediatesWrite(t *testing.T) {
	diags := lintSnippet(t, `package model

//nomad:owner core
type coreSide struct{ peer *chanSide }

//nomad:owner channel
type chanSide struct{ x int }

//nomad:port test crossing: core hands the value to the channel shard
func (c *coreSide) step() { c.peer.x++ }
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags)
}

func TestOwnershipCrossDomainMutatingCall(t *testing.T) {
	diags := lintSnippet(t, `package model

//nomad:owner core
type coreSide struct {
	peer *chanSide
	n    int
}

func (c *coreSide) step() {
	c.n++
	c.peer.bump() // line 11: core calls a mutating channel method
}

//nomad:owner channel
type chanSide struct{ x int }

func (s *chanSide) bump() { s.x++ }
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags, [2]any{"ownership", 11})
}

func TestOwnershipPortMediatesCall(t *testing.T) {
	diags := lintSnippet(t, `package model

//nomad:owner core
type coreSide struct {
	peer *chanSide
	n    int
}

func (c *coreSide) step() {
	c.n++
	c.peer.bump()
}

//nomad:owner channel
type chanSide struct{ x int }

//nomad:port test crossing: the bump is a mediated shard message
func (s *chanSide) bump() { s.x++ }
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags)
}

func TestOwnershipPooledRetention(t *testing.T) {
	diags := lintSnippet(t, `package model

// op is a pooled carrier recycled by its owning core shard.
//
//nomad:owner core
type op struct{ v int }

func (o *op) touch() { o.v++ }

//nomad:owner channel
type holder struct{ held *op }

func (h *holder) keep(o *op) { h.held = o } // line 13: retains pooled ptr
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags, [2]any{"ownership", 13})
	if !strings.Contains(diags[0].Message, "recycle") {
		t.Errorf("message should explain the recycling hazard: %s", diags[0].Message)
	}
}

func TestOwnershipIgnoreDirective(t *testing.T) {
	diags := lintSnippet(t, `package model

//nomad:owner core
type coreSide struct{ peer *chanSide }

//nomad:owner channel
type chanSide struct{ x int }

func (c *coreSide) step() {
	//nomadlint:ignore ownership -- test fixture: crossing is mediated elsewhere
	c.peer.x++
}
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags)
}

func TestOwnershipInventoryDiff(t *testing.T) {
	src := `package model

//nomad:owner core
type tracked struct{ n int }

func (s *tracked) inc() { s.n++ }

//nomad:port test crossing: fixture port
func cross() {}
`
	cfg := ownershipConfig("ownership")
	cfg.OwnershipInventory = []string{
		"owner\tmodel\ttracked\tcore",
		"port\tmodel\tcross\ttest crossing: fixture port",
	}
	wantDiags(t, lintSnippet(t, src, cfg, nil))

	// A missing line is flagged at the annotation; a stale line is flagged
	// positionlessly.
	cfg.OwnershipInventory = []string{
		"owner\tmodel\ttracked\tcore",
		"owner\tmodel\tghost\tshared",
	}
	diags := lintSnippet(t, src, cfg, nil)
	wantDiags(t, diags,
		[2]any{"ownership", 0}, // stale "ghost" line, no position
		[2]any{"ownership", 8}, // port annotation not in inventory
	)
	if !strings.Contains(diags[0].Message, "no longer annotated") {
		t.Errorf("stale-line message: %s", diags[0].Message)
	}
}

// TestOwnershipScopeGate: with no OwnershipPackages configured the
// interprocedural rules do not run at all — the legacy snippet tests and
// downstream Config users keep their behavior.
func TestOwnershipScopeGate(t *testing.T) {
	diags := lintSnippet(t, `package model

type counter struct{ n int }

func (c *counter) inc() { c.n++ }
`, snippetConfig(), nil)
	wantDiags(t, diags)
}
