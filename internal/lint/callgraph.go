package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The call graph is the shared spine of the interprocedural rules
// (ownership, statecover). Nodes are function declarations and function
// literals; edges record how control can move between them:
//
//   - static:  direct calls to a named function or method (generic
//     instantiations are resolved to their origin declaration)
//   - closure: a function literal created inside its encloser — the literal
//     belongs to the domain of the code that built it (creator-domain rule)
//   - iface:   interface dispatch, resolved conservatively to every module
//     type implementing the interface
//   - dynamic: invocation of a func value; targets come from a
//     flow-insensitive propagation of function values through variables,
//     parameters, and struct fields (the pooled doneFn/forwarder pattern)
type edgeKind uint8

const (
	edgeStatic edgeKind = iota
	edgeClosure
	edgeIface
	edgeDynamic
)

type cgEdge struct {
	to   *cgNode
	kind edgeKind
	pos  token.Pos
}

type cgNode struct {
	fn   *types.Func  // named function/method; nil for literals
	lit  *ast.FuncLit // literal; nil for named functions
	pkg  *Package
	recv *types.TypeName // receiver base type for methods, else nil
	encl *cgNode         // lexical encloser for literals
	out  []cgEdge

	port   bool // declared //nomad:port
	inPort bool // is a port or lexically inside one: writes/calls are mediated

	// Ownership domain state, filled by checkOwnership: seed is the domain
	// owned by the receiver type, mask the set of domains whose code can
	// reach this function without crossing a port.
	seed, mask uint8
}

func (n *cgNode) name() string {
	if n.fn != nil {
		if n.recv != nil {
			return n.recv.Name() + "." + n.fn.Name()
		}
		return n.fn.Name()
	}
	return "func literal"
}

type callGraph struct {
	mod    *Module
	nodes  []*cgNode
	byFunc map[*types.Func]*cgNode
	byLit  map[*ast.FuncLit]*cgNode
}

// recvTypeName resolves a method's receiver to its origin named type.
func recvTypeName(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin().Obj()
	}
	return nil
}

type dynSite struct {
	from *cgNode
	key  types.Object
	pos  token.Pos
}

type ifaceSite struct {
	from *cgNode
	m    *types.Func
	pos  token.Pos
}

// flowBinding defers "function values flowing into object dst" resolution
// until every literal has a node.
type flowBinding struct {
	p   *Package
	dst types.Object
	src ast.Expr
}

type cgBuilder struct {
	mod        *Module
	ann        *annotations
	g          *callGraph
	flow       map[types.Object]map[*cgNode]bool
	copies     map[types.Object]map[types.Object]bool
	bindings   []flowBinding
	dyn        []dynSite
	ifaceSites []ifaceSite
}

// buildCallGraph constructs the module call graph. ann supplies the port
// set; it may be empty but not nil.
func buildCallGraph(mod *Module, ann *annotations) *callGraph {
	b := &cgBuilder{
		mod:    mod,
		ann:    ann,
		g:      &callGraph{mod: mod, byFunc: map[*types.Func]*cgNode{}, byLit: map[*ast.FuncLit]*cgNode{}},
		flow:   map[types.Object]map[*cgNode]bool{},
		copies: map[types.Object]map[types.Object]bool{},
	}
	// Pass 1: nodes for every function declaration with a body.
	for _, p := range mod.Sorted() {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &cgNode{fn: fn, pkg: p, recv: recvTypeName(fn)}
				if _, ok := ann.ports[fn]; ok {
					n.port, n.inPort = true, true
				}
				b.g.nodes = append(b.g.nodes, n)
				b.g.byFunc[fn] = n
			}
		}
	}
	// Pass 2: walk bodies — literal nodes, call edges, value flow.
	for _, p := range mod.Sorted() {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					if fn, ok := p.Info.Defs[d.Name].(*types.Func); ok {
						b.walkFunc(p, b.g.byFunc[fn], d.Body)
					}
				case *ast.GenDecl:
					// Package-level var initializers contribute to value
					// flow (func-typed tables) but have no node of their
					// own.
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok || len(vs.Names) != len(vs.Values) {
							continue
						}
						for i, nm := range vs.Names {
							if obj := p.Info.Defs[nm]; obj != nil {
								b.bindings = append(b.bindings, flowBinding{p, obj, vs.Values[i]})
							}
						}
					}
				}
			}
		}
	}
	b.resolveBindings()
	b.fixpoint()
	for _, site := range b.dyn {
		for to := range b.flow[site.key] {
			site.from.out = append(site.from.out, cgEdge{to: to, kind: edgeDynamic, pos: site.pos})
		}
	}
	b.resolveIfaces()
	return b.g
}

// walkFunc visits one declared function body, tracking the innermost
// enclosing node as literals open and close (ast.Inspect signals subtree
// exit with a nil node).
func (b *cgBuilder) walkFunc(p *Package, root *cgNode, body *ast.BlockStmt) {
	if root == nil {
		return
	}
	cur := root
	var nodeStack []ast.Node
	var enclStack []*cgNode
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := nodeStack[len(nodeStack)-1]
			nodeStack = nodeStack[:len(nodeStack)-1]
			if _, ok := top.(*ast.FuncLit); ok {
				cur = enclStack[len(enclStack)-1]
				enclStack = enclStack[:len(enclStack)-1]
			}
			return true
		}
		nodeStack = append(nodeStack, n)
		switch x := n.(type) {
		case *ast.FuncLit:
			ln := &cgNode{lit: x, pkg: p, encl: cur, inPort: cur.inPort}
			b.g.nodes = append(b.g.nodes, ln)
			b.g.byLit[x] = ln
			cur.out = append(cur.out, cgEdge{to: ln, kind: edgeClosure, pos: x.Pos()})
			enclStack = append(enclStack, cur)
			cur = ln
		case *ast.CallExpr:
			b.visitCall(p, cur, x)
		case *ast.AssignStmt:
			if (x.Tok == token.ASSIGN || x.Tok == token.DEFINE) && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if dst := lhsObj(p.Info, x.Lhs[i]); dst != nil {
						b.bindings = append(b.bindings, flowBinding{p, dst, x.Rhs[i]})
					}
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i, nm := range x.Names {
					if obj := p.Info.Defs[nm]; obj != nil {
						b.bindings = append(b.bindings, flowBinding{p, obj, x.Values[i]})
					}
				}
			}
		case *ast.CompositeLit:
			b.visitComposite(p, x)
		}
		return true
	})
}

// lhsObj resolves an assignment target to the object function values flow
// into: a variable, or a struct field.
func lhsObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Defs[x]; obj != nil {
			return obj
		}
		return info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}

// visitCall classifies one call expression: builtin, conversion, static,
// interface dispatch, or a dynamic func-value invocation.
func (b *cgBuilder) visitCall(p *Package, cur *cgNode, call *ast.CallExpr) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation F[T](…).
	base := fun
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		base = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		base = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch f := base.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[f]
		if obj == nil {
			obj = p.Info.Defs[f]
		}
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[f]; ok {
			obj = s.Obj()
		} else {
			obj = p.Info.Uses[f.Sel]
		}
	default:
		return // call of a call result etc.: no target information
	}
	switch o := obj.(type) {
	case *types.Func:
		fn := o.Origin()
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			b.ifaceSites = append(b.ifaceSites, ifaceSite{from: cur, m: fn, pos: call.Pos()})
			return
		}
		if to := b.g.byFunc[fn]; to != nil {
			cur.out = append(cur.out, cgEdge{to: to, kind: edgeStatic, pos: call.Pos()})
			b.bindArgs(p, sig, call)
		}
	case *types.Var:
		// Func value held in a variable, parameter, or field (base of an
		// indexed func table included).
		b.dyn = append(b.dyn, dynSite{from: cur, key: o, pos: call.Pos()})
	}
}

// bindArgs flows call arguments into the callee's parameter objects.
func (b *cgBuilder) bindArgs(p *Package, sig *types.Signature, call *ast.CallExpr) {
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pv *types.Var
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pv = params.At(params.Len() - 1)
		case i < params.Len():
			pv = params.At(i)
		}
		if pv != nil {
			b.bindings = append(b.bindings, flowBinding{p, pv, arg})
		}
	}
}

// visitComposite flows composite-literal elements into struct field objects.
func (b *cgBuilder) visitComposite(p *Package, cl *ast.CompositeLit) {
	tv, ok := p.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					b.bindings = append(b.bindings, flowBinding{p, obj, kv.Value})
				}
			}
			continue
		}
		if i < st.NumFields() {
			b.bindings = append(b.bindings, flowBinding{p, st.Field(i), el})
		}
	}
}

func (b *cgBuilder) addFlow(dst types.Object, n *cgNode) {
	set := b.flow[dst]
	if set == nil {
		set = map[*cgNode]bool{}
		b.flow[dst] = set
	}
	set[n] = true
}

func (b *cgBuilder) addCopy(dst, src types.Object) {
	set := b.copies[dst]
	if set == nil {
		set = map[types.Object]bool{}
		b.copies[dst] = set
	}
	set[src] = true
}

// resolveBindings turns each deferred binding into flow sources or copy
// edges, now that every literal has a node.
func (b *cgBuilder) resolveBindings() {
	for _, bd := range b.bindings {
		b.flowInto(bd.p, bd.dst, bd.src)
	}
}

func (b *cgBuilder) flowInto(p *Package, dst types.Object, e ast.Expr) {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if n := b.g.byLit[x]; n != nil {
			b.addFlow(dst, n)
		}
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		switch o := obj.(type) {
		case *types.Func:
			if n := b.g.byFunc[o.Origin()]; n != nil {
				b.addFlow(dst, n)
			}
		case *types.Var:
			b.addCopy(dst, o)
		}
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[x]; ok {
			switch s.Kind() {
			case types.FieldVal:
				b.addCopy(dst, s.Obj())
			case types.MethodVal:
				if fn, ok := s.Obj().(*types.Func); ok {
					if n := b.g.byFunc[fn.Origin()]; n != nil {
						b.addFlow(dst, n)
					}
				}
			}
			return
		}
		switch o := p.Info.Uses[x.Sel].(type) {
		case *types.Func:
			if n := b.g.byFunc[o.Origin()]; n != nil {
				b.addFlow(dst, n)
			}
		case *types.Var:
			b.addCopy(dst, o)
		}
	case *ast.CallExpr:
		// append(slice, fn…) keeps flowing into the slice's object.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if bi, ok := p.Info.Uses[id].(*types.Builtin); ok && bi.Name() == "append" {
				for _, a := range x.Args {
					b.flowInto(p, dst, a)
				}
			}
		}
	}
}

// fixpoint propagates flow sets along copy edges until stable.
func (b *cgBuilder) fixpoint() {
	for changed := true; changed; {
		changed = false
		for dst, srcs := range b.copies {
			for src := range srcs {
				for n := range b.flow[src] {
					if !b.flow[dst][n] {
						b.addFlow(dst, n)
						changed = true
					}
				}
			}
		}
	}
}

// resolveIfaces connects each interface dispatch site to every module type
// that implements the interface — the conservative fallback when the
// concrete type is not statically known.
func (b *cgBuilder) resolveIfaces() {
	if len(b.ifaceSites) == 0 {
		return
	}
	var concrete []*types.TypeName
	for _, p := range b.mod.Sorted() {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			concrete = append(concrete, tn)
		}
	}
	for _, site := range b.ifaceSites {
		sig, ok := site.m.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, tn := range concrete {
			T := tn.Type()
			if !types.Implements(T, iface) && !types.Implements(types.NewPointer(T), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(T, true, tn.Pkg(), site.m.Name())
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if n := b.g.byFunc[fn.Origin()]; n != nil {
				site.from.out = append(site.from.out, cgEdge{to: n, kind: edgeIface, pos: site.pos})
			}
		}
	}
}
