package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// writeAllow is the domain write matrix: which domains may write state owned
// by each domain without going through a port. host may touch anything it
// owns plus shared (setup and reporting run at barriers); shared state is
// mediated by design (carriers, scheduler, orchestrator — merged at shard
// barriers); core and channel state is writable only by its own domain and
// by host-phase code.
var writeAllow = map[uint8]uint8{
	domCore:    domCore | domHost,
	domChannel: domChannel | domHost,
	domShared:  domCore | domChannel | domShared | domHost,
	domHost:    domHost | domShared,
}

// seedDomains assigns each annotated type's methods their owner domain and
// propagates domain reachability through the graph. Propagation stops at
// ports (a port forwards only its own seed: the crossing is mediated), at
// methods of annotated types (they re-seed to their owner), and never
// follows dynamic edges (a callback belongs to the domain that created it;
// cross-domain delivery is assumed mediated by shared-owned queues).
func seedDomains(cg *callGraph, ann *annotations) {
	var work []*cgNode
	for _, n := range cg.nodes {
		if n.fn != nil && n.recv != nil {
			if oi, ok := ann.owners[n.recv]; ok {
				n.seed = oi.domain
				n.mask = oi.domain
			}
		}
		if n.mask != 0 {
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		out := n.mask
		if n.port {
			out = n.seed
		}
		if out == 0 {
			continue
		}
		for _, e := range n.out {
			if e.kind == edgeDynamic {
				continue
			}
			t := e.to
			if t.port {
				continue
			}
			if t.fn != nil && t.recv != nil {
				if _, owned := ann.owners[t.recv]; owned {
					continue
				}
			}
			if nm := t.mask | out; nm != t.mask {
				t.mask = nm
				work = append(work, t)
			}
		}
	}
}

// mutatingMethods computes, per annotated type, the methods that write the
// type's own fields directly or via same-type method calls.
func mutatingMethods(cg *callGraph, ann *annotations, acc *accesses) map[*types.Func]bool {
	mut := map[*types.Func]bool{}
	for _, w := range acc.writes {
		n := w.node
		if n == nil || n.fn == nil || n.recv == nil {
			continue
		}
		if _, owned := ann.owners[n.recv]; !owned {
			continue
		}
		if w.tn == n.recv {
			mut[n.fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range cg.nodes {
			if n.fn == nil || n.recv == nil || mut[n.fn] {
				continue
			}
			if _, owned := ann.owners[n.recv]; !owned {
				continue
			}
			for _, e := range n.out {
				if e.kind != edgeStatic {
					continue
				}
				t := e.to
				if t.fn != nil && t.recv == n.recv && mut[t.fn] {
					mut[n.fn] = true
					changed = true
					break
				}
			}
		}
	}
	return mut
}

// checkOwnership runs the ownership rule: annotation coverage, the domain
// write matrix, cross-domain mutating calls, pooled-pointer retention, and
// the committed-inventory diff.
func checkOwnership(mod *Module, cfg *Config, ann *annotations, cg *callGraph, acc *accesses) []Diagnostic {
	var diags []Diagnostic
	scope := func(ip string) bool { return cfg.isOwnership(mod.Path, ip) }

	// (a) every mutable struct in scope carries an owner annotation.
	for _, si := range ann.structs {
		if !scope(si.pkg.Path) || !acc.mutable[si.tn] {
			continue
		}
		if _, ok := ann.owners[si.tn]; ok {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos: si.pos, Rule: "ownership",
			Message: "mutable struct " + si.tn.Name() + " has no ownership domain; annotate with //nomad:owner core|channel|shared|host (DESIGN.md \"Ownership domains\")",
		})
	}

	seedDomains(cg, ann)

	// (b) field writes must respect the domain write matrix.
	for _, w := range acc.writes {
		if w.node == nil || w.node.inPort || !scope(w.node.pkg.Path) {
			continue
		}
		oi, ok := ann.owners[w.tn]
		if !ok {
			continue
		}
		mask := w.node.mask
		if mask == 0 {
			mask = domHost
		}
		bad := mask &^ writeAllow[oi.domain]
		if bad == 0 {
			continue
		}
		target := w.tn.Name()
		if w.field != "" {
			target += "." + w.field
		}
		diags = append(diags, Diagnostic{
			Pos: mod.Fset.Position(w.pos), Rule: "ownership",
			Message: fmt.Sprintf("%s-domain code writes %s, owned by %s; cross-domain writes must go through a //nomad:port mediation site", domainNames(bad), target, domainName(oi.domain)),
		})
	}

	// (c) core and channel must not call each other's mutating methods
	// except through ports.
	mut := mutatingMethods(cg, ann, acc)
	for _, n := range cg.nodes {
		if n.inPort || !scope(n.pkg.Path) {
			continue
		}
		mask := n.mask
		if mask == 0 {
			mask = domHost
		}
		if mask&(domCore|domChannel) == 0 {
			continue
		}
		for _, e := range n.out {
			if e.kind != edgeStatic && e.kind != edgeIface {
				continue
			}
			t := e.to
			if t.fn == nil || t.recv == nil || t.port || !mut[t.fn] {
				continue
			}
			oi, ok := ann.owners[t.recv]
			if !ok {
				continue
			}
			if (mask&domCore != 0 && oi.domain == domChannel) || (mask&domChannel != 0 && oi.domain == domCore) {
				diags = append(diags, Diagnostic{
					Pos: mod.Fset.Position(e.pos), Rule: "ownership",
					Message: fmt.Sprintf("%s-domain code calls mutating method %s owned by %s; mediate the crossing with a //nomad:port function", domainNames(mask&(domCore|domChannel)), t.name(), domainName(oi.domain)),
				})
			}
		}
	}

	// (d) pooled carriers must not be retained across a domain boundary:
	// a shard recycling an object another shard still points at is the
	// aliasing bug class that breaks a sharded engine silently.
	pooled := ann.pooled
	for _, w := range acc.writes {
		if w.field == "" || w.node == nil {
			continue
		}
		dst, ok := ann.owners[w.tn]
		if !ok {
			continue
		}
		for _, v := range w.vals {
			tv, ok := w.pkg.Info.Types[v]
			if !ok || tv.Type == nil {
				continue
			}
			ptr, ok := tv.Type.Underlying().(*types.Pointer)
			if !ok {
				continue
			}
			ptn := namedStructOf(ptr.Elem())
			if ptn == nil || !pooled[ptn] {
				continue
			}
			po, ok := ann.owners[ptn]
			if !ok || po.domain == dst.domain {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos: mod.Fset.Position(v.Pos()), Rule: "ownership",
				Message: fmt.Sprintf("pooled *%s (owner %s) retained in %s.%s (owner %s); pooled carriers must not be stored across a domain boundary — the owning pool may recycle them", ptn.Name(), domainName(po.domain), w.tn.Name(), w.field, domainName(dst.domain)),
			})
		}
	}

	// Inventory diff: the committed ownership map is the reviewable artifact.
	if cfg.OwnershipInventory != nil {
		want := map[string]bool{}
		for _, l := range cfg.OwnershipInventory {
			l = strings.TrimSpace(l)
			if l != "" && !strings.HasPrefix(l, "#") {
				want[l] = true
			}
		}
		lines, poss := ownershipLines(mod, ann)
		seen := map[string]bool{}
		for i, l := range lines {
			if seen[l] {
				continue
			}
			seen[l] = true
			if !want[l] {
				diags = append(diags, Diagnostic{
					Pos: poss[i], Rule: "ownership",
					Message: fmt.Sprintf("%q is not in the committed ownership inventory; run nomadlint -write-inventory and review the diff", strings.ReplaceAll(l, "\t", " ")),
				})
			}
		}
		stale := make([]string, 0)
		for l := range want {
			if !seen[l] {
				stale = append(stale, strings.ReplaceAll(l, "\t", " "))
			}
		}
		sort.Strings(stale)
		for _, l := range stale {
			diags = append(diags, Diagnostic{
				Rule:    "ownership",
				Message: fmt.Sprintf("ownership inventory lists %q which is no longer annotated; run nomadlint -write-inventory", l),
			})
		}
	}
	return diags
}

// ownershipLines renders the live owner and port annotations as sorted
// inventory lines ("owner<TAB>pkg<TAB>Type<TAB>domain" and
// "port<TAB>pkg<TAB>Func<TAB>reason"), with the position backing each line.
func ownershipLines(mod *Module, ann *annotations) ([]string, []token.Position) {
	type entry struct {
		line string
		pos  token.Position
	}
	var entries []entry
	rel := func(ip string) string {
		if r, ok := strings.CutPrefix(ip, mod.Path+"/"); ok {
			return r
		}
		return ip
	}
	for _, si := range ann.structs {
		oi, ok := ann.owners[si.tn]
		if !ok {
			continue
		}
		entries = append(entries, entry{
			line: "owner\t" + rel(si.pkg.Path) + "\t" + si.tn.Name() + "\t" + domainName(oi.domain),
			pos:  oi.pos,
		})
	}
	for fn, pi := range ann.ports {
		name := fn.Name()
		if tn := recvTypeName(fn); tn != nil {
			name = tn.Name() + "." + name
		}
		pkg := ""
		if fn.Pkg() != nil {
			pkg = rel(fn.Pkg().Path())
		}
		entries = append(entries, entry{
			line: "port\t" + pkg + "\t" + name + "\t" + pi.reason,
			pos:  pi.pos,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].line < entries[j].line })
	lines := make([]string, len(entries))
	poss := make([]token.Position, len(entries))
	for i, e := range entries {
		lines[i] = e.line
		poss[i] = e.pos
	}
	return lines, poss
}

// OwnershipInventoryLines loads the module's owner and port annotations and
// renders the sorted committed-inventory lines.
func OwnershipInventoryLines(mod *Module) []string {
	lines, _ := ownershipLines(mod, parseAnnotations(mod))
	return lines
}
