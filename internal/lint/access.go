package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fieldWrite is one mutation of struct state: a selector assignment, a
// compound assignment or ++/--, an element store through a field
// (c.tags[i] = v), or a whole-struct store through a pointer (*v = T{…},
// field == "").
type fieldWrite struct {
	node  *cgNode // enclosing function; nil only for package-level code
	pkg   *Package
	tn    *types.TypeName
	field string
	pos   token.Pos
	vals  []ast.Expr // value expressions stored (append unwrapped)
}

// accesses is the module-wide field-access index shared by the ownership
// and state-coverage rules.
type accesses struct {
	writes       []fieldWrite
	readsBy      map[*cgNode]map[fieldKey]bool
	mutable      map[*types.TypeName]bool
	wholeWritten map[*types.TypeName]bool
	mutFields    map[fieldKey]token.Pos
}

type accCollector struct {
	mod *Module
	cg  *callGraph
	acc *accesses
	// skip marks selector nodes consumed as write targets so the read sweep
	// does not double-count them.
	skip map[ast.Expr]bool
}

// collectAccesses walks every function body and records field writes and
// reads, attributed to the call-graph node they occur in.
func collectAccesses(mod *Module, cg *callGraph) *accesses {
	c := &accCollector{
		mod: mod,
		cg:  cg,
		acc: &accesses{
			readsBy:      map[*cgNode]map[fieldKey]bool{},
			mutable:      map[*types.TypeName]bool{},
			wholeWritten: map[*types.TypeName]bool{},
			mutFields:    map[fieldKey]token.Pos{},
		},
		skip: map[ast.Expr]bool{},
	}
	for _, p := range mod.Sorted() {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				c.walkBody(p, cg.byFunc[fn], fd.Body)
			}
		}
	}
	return c.acc
}

func (c *accCollector) walkBody(p *Package, root *cgNode, body *ast.BlockStmt) {
	cur := root
	var nodeStack []ast.Node
	var enclStack []*cgNode
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := nodeStack[len(nodeStack)-1]
			nodeStack = nodeStack[:len(nodeStack)-1]
			if _, ok := top.(*ast.FuncLit); ok {
				cur = enclStack[len(enclStack)-1]
				enclStack = enclStack[:len(enclStack)-1]
			}
			return true
		}
		nodeStack = append(nodeStack, n)
		switch x := n.(type) {
		case *ast.FuncLit:
			if ln := c.cg.byLit[x]; ln != nil {
				enclStack = append(enclStack, cur)
				cur = ln
			} else {
				// Literal outside the graph (shouldn't happen for bodies we
				// walk); keep attribution at the encloser.
				enclStack = append(enclStack, cur)
			}
		case *ast.AssignStmt:
			var vals []ast.Expr
			if (x.Tok == token.ASSIGN || x.Tok == token.DEFINE) && len(x.Lhs) == len(x.Rhs) {
				vals = x.Rhs
			}
			for i, lhs := range x.Lhs {
				var v []ast.Expr
				if vals != nil {
					v = unwrapValues(p.Info, vals[i])
				}
				c.writeTarget(p, cur, lhs, v)
			}
		case *ast.IncDecStmt:
			c.writeTarget(p, cur, x.X, nil)
		case *ast.SelectorExpr:
			if c.skip[x] {
				return true
			}
			if tn, fname := structFieldOf(p.Info, x); tn != nil {
				set := c.acc.readsBy[cur]
				if set == nil {
					set = map[fieldKey]bool{}
					c.acc.readsBy[cur] = set
				}
				set[fieldKey{tn, fname}] = true
			}
		}
		return true
	})
}

// unwrapValues flattens an RHS into the value expressions actually stored:
// append(x, a, b) stores a and b (and whatever x already held).
func unwrapValues(info *types.Info, e ast.Expr) []ast.Expr {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if bi, ok := info.Uses[id].(*types.Builtin); ok && bi.Name() == "append" && len(call.Args) > 1 {
				return call.Args[1:]
			}
		}
	}
	return []ast.Expr{e}
}

// writeTarget records the mutation an assignment target denotes, if any.
func (c *accCollector) writeTarget(p *Package, cur *cgNode, lhs ast.Expr, vals []ast.Expr) {
	lhs = ast.Unparen(lhs)
	switch x := lhs.(type) {
	case *ast.SelectorExpr:
		if tn, fname := structFieldOf(p.Info, x); tn != nil {
			c.skip[x] = true
			c.record(p, cur, tn, fname, x.Sel.Pos(), vals)
		}
	case *ast.IndexExpr:
		// c.tags[i] = v, possibly nested (c.a[i][j] = v): the mutated state
		// is the field holding the container.
		base := ast.Unparen(x.X)
		for {
			ix, ok := base.(*ast.IndexExpr)
			if !ok {
				break
			}
			base = ast.Unparen(ix.X)
		}
		if sel, ok := base.(*ast.SelectorExpr); ok {
			if tn, fname := structFieldOf(p.Info, sel); tn != nil {
				c.skip[sel] = true
				c.record(p, cur, tn, fname, sel.Sel.Pos(), vals)
			}
		}
	case *ast.StarExpr:
		// *v = T{…}: a whole-struct store through a pointer.
		if tv, ok := p.Info.Types[x.X]; ok && tv.Type != nil {
			if ptr, ok := tv.Type.Underlying().(*types.Pointer); ok {
				if tn := namedStructOf(ptr.Elem()); tn != nil {
					c.acc.writes = append(c.acc.writes, fieldWrite{node: cur, pkg: p, tn: tn, field: "", pos: x.Pos(), vals: vals})
					c.acc.mutable[tn] = true
					c.acc.wholeWritten[tn] = true
				}
			}
		}
	}
}

func (c *accCollector) record(p *Package, cur *cgNode, tn *types.TypeName, fname string, pos token.Pos, vals []ast.Expr) {
	c.acc.writes = append(c.acc.writes, fieldWrite{node: cur, pkg: p, tn: tn, field: fname, pos: pos, vals: vals})
	c.acc.mutable[tn] = true
	key := fieldKey{tn, fname}
	if _, ok := c.acc.mutFields[key]; !ok {
		c.acc.mutFields[key] = pos
	}
}

// structFieldOf resolves a selector to (declaring named struct, field name)
// when it denotes a struct field access, else (nil, "").
func structFieldOf(info *types.Info, sel *ast.SelectorExpr) (*types.TypeName, string) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	if tn := namedStructOf(s.Recv()); tn != nil {
		return tn, s.Obj().Name()
	}
	return nil, ""
}

// namedStructOf dereferences pointers and returns the origin TypeName when
// t is (a pointer to) a named struct type.
func namedStructOf(t types.Type) *types.TypeName {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n.Origin().Obj()
}
