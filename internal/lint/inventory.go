package lint

import (
	_ "embed"
	"strings"
)

// rawInventory is the committed metric inventory, regenerated with
// `go run ./cmd/nomadlint -write-inventory ./...`. Keeping it in the tree
// turns every metric rename into a reviewable diff.
//
//go:embed metric_inventory.txt
var rawInventory string

// EmbeddedInventory returns the committed inventory lines. The result is
// never nil — an empty inventory still arms the comparison, so a fresh
// checkout cannot silently skip the check.
func EmbeddedInventory() []string {
	return inventoryLines(rawInventory)
}

// rawOwnershipInventory is the committed ownership inventory: every
// //nomad:owner struct and //nomad:port mediation site in the model, so a
// PR moving state between domains always shows as a reviewable diff here.
// Regenerated with `go run ./cmd/nomadlint -write-inventory ./...`.
//
//go:embed ownership_inventory.txt
var rawOwnershipInventory string

// EmbeddedOwnershipInventory returns the committed ownership inventory
// lines, never nil.
func EmbeddedOwnershipInventory() []string {
	return inventoryLines(rawOwnershipInventory)
}

func inventoryLines(raw string) []string {
	lines := []string{}
	for _, l := range strings.Split(raw, "\n") {
		l = strings.TrimRight(l, "\r")
		if strings.TrimSpace(l) == "" || strings.HasPrefix(l, "#") {
			continue
		}
		lines = append(lines, l)
	}
	return lines
}
