package lint

import (
	"strings"
	"testing"
)

// statecoverMetrics is the fake registry overlay shared by the coverage
// snippets.
func statecoverMetrics() map[string]map[string]string {
	return map[string]map[string]string{
		"m/internal/metrics": fakeStd["m/internal/metrics"],
	}
}

func TestStateCoverUncoveredField(t *testing.T) {
	diags := lintSnippet(t, `package model

import "m/internal/metrics"

//nomad:owner core
type unit struct {
	hits  uint64
	depth int // line 8: mutated, never registered
}

func (u *unit) step() { u.hits++; u.depth++ }

func register(r *metrics.Registry, u *unit) {
	r.CounterFunc("unit.hits", func() uint64 { return u.hits })
}
`, ownershipConfig("statecover"), statecoverMetrics())
	wantDiags(t, diags, [2]any{"statecover", 8})
	if !strings.Contains(diags[0].Message, "//nomad:ephemeral") {
		t.Errorf("message should name the escape hatch: %s", diags[0].Message)
	}
}

func TestStateCoverEphemeralField(t *testing.T) {
	diags := lintSnippet(t, `package model

import "m/internal/metrics"

//nomad:owner core
type unit struct {
	hits  uint64
	depth int //nomad:ephemeral scratch cursor; divergence shows in hits
}

func (u *unit) step() { u.hits++; u.depth++ }

func register(r *metrics.Registry, u *unit) {
	r.CounterFunc("unit.hits", func() uint64 { return u.hits })
}
`, ownershipConfig("statecover"), statecoverMetrics())
	wantDiags(t, diags)
}

func TestStateCoverEphemeralStruct(t *testing.T) {
	diags := lintSnippet(t, `package model

// scratch is working state with no registered counters at all.
//
//nomad:owner core
//nomad:ephemeral pure working state; divergence surfaces downstream
type scratch struct {
	a int
	b int
}

func (s *scratch) step() { s.a++; s.b++ }
`, ownershipConfig("statecover"), statecoverMetrics())
	wantDiags(t, diags)
}

func TestStateCoverEphemeralNeedsReason(t *testing.T) {
	diags := lintSnippet(t, `package model

//nomad:owner core
type unit struct {
	depth int //nomad:ephemeral
}

func (u *unit) step() { u.depth++ }
`, ownershipConfig("statecover"), statecoverMetrics())
	// The reasonless marker is diagnosed and does NOT exempt the field.
	wantDiags(t, diags, [2]any{"statecover", 5}, [2]any{"statecover", 5})
}

func TestStateCoverExemptions(t *testing.T) {
	diags := lintSnippet(t, `package model

import "m/internal/metrics"

// hostCfg is host-owned: never part of the deterministic snapshot.
//
//nomad:owner host
type hostCfg struct{ runs int }

func (h *hostCfg) bump() { h.runs++ }

// wired holds only callback and metrics plumbing.
//
//nomad:owner core
type wired struct {
	cb   func()
	hist *metrics.Histogram
}

func (w *wired) set(f func(), h *metrics.Histogram) { w.cb = f; w.hist = h }

// unowned is the ownership rule's finding, not statecover's.
type unowned struct{ n int }

func (u *unowned) inc() { u.n++ }
`, ownershipConfig("statecover"), statecoverMetrics())
	wantDiags(t, diags)
}

func TestStateCoverMethodValueRegistration(t *testing.T) {
	diags := lintSnippet(t, `package model

import "m/internal/metrics"

//nomad:owner core
type unit struct{ hits uint64 }

func (u *unit) step() { u.hits++ }

func (u *unit) sample() uint64 { return u.hits }

func register(r *metrics.Registry, u *unit) {
	r.CounterFunc("unit.hits", u.sample) // method value as root
}
`, ownershipConfig("statecover"), statecoverMetrics())
	wantDiags(t, diags)
}

func TestStateCoverTransitiveCoverage(t *testing.T) {
	diags := lintSnippet(t, `package model

import "m/internal/metrics"

//nomad:owner core
type unit struct{ hits uint64 }

func (u *unit) step() { u.hits++ }

func (u *unit) total() uint64 { return u.hits }

func register(r *metrics.Registry, u *unit) {
	// Coverage must follow the call graph out of the closure.
	r.CounterFunc("unit.hits", func() uint64 { return u.total() })
}
`, ownershipConfig("statecover"), statecoverMetrics())
	wantDiags(t, diags)
}
