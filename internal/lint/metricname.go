package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// regMethods maps metrics.Registry registration methods to the namespace
// they claim names in. The Registry keeps two independent name spaces: the
// snapshot space (Counter/Gauge/Histogram/Series) and the interval-timeline
// space (IntervalFunc) — "sim.ipc" may legally exist in both.
var regMethods = map[string]string{
	"Counter":      "metric",
	"CounterFunc":  "metric",
	"GaugeFunc":    "metric",
	"Histogram":    "metric",
	"SeriesFunc":   "metric",
	"IntervalFunc": "interval",
}

// ---- name patterns -------------------------------------------------------

type segKind int

const (
	segLit  segKind = iota // literal text
	segStar                // run-time value outside static reach (loop index, enum String())
	segHole                // a string parameter of the enclosing function
)

// seg is one piece of a metric-name pattern; pat is their concatenation.
type seg struct {
	kind segKind
	lit  string
	hole *types.Var
}

type pat []seg

// norm merges adjacent literals and collapses adjacent stars.
func (p pat) norm() pat {
	out := make(pat, 0, len(p))
	for _, s := range p {
		if n := len(out); n > 0 {
			if s.kind == segLit && out[n-1].kind == segLit {
				out[n-1].lit += s.lit
				continue
			}
			if s.kind == segStar && out[n-1].kind == segStar {
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

func (p pat) hasHoles() bool {
	for _, s := range p {
		if s.kind == segHole {
			return true
		}
	}
	return false
}

// render flattens a hole-free pattern; stars become "*".
func (p pat) render() string {
	var b strings.Builder
	for _, s := range p {
		switch s.kind {
		case segLit:
			b.WriteString(s.lit)
		default:
			b.WriteString("*")
		}
	}
	return b.String()
}

// key renders any pattern for set membership; holes keep the parameter name
// so two templates over different parameters stay distinct.
func (p pat) key() string {
	var b strings.Builder
	for _, s := range p {
		switch s.kind {
		case segLit:
			b.WriteString(s.lit)
		case segStar:
			b.WriteString("*")
		case segHole:
			b.WriteString("{" + s.hole.Name() + "}")
		}
	}
	return b.String()
}

// ---- per-function expression context ------------------------------------

// funcCtx is the environment a name expression is evaluated in: the
// enclosing function's string parameters become holes, and single-assigned
// local string variables are resolved through their initializer.
type funcCtx struct {
	pkg     *Package
	fn      *types.Func
	params  map[*types.Var]bool
	assigns map[*types.Var][]ast.Expr
	memo    map[*types.Var]pat
	busy    map[*types.Var]bool
}

func newFuncCtx(pkg *Package, fd *ast.FuncDecl) *funcCtx {
	cx := &funcCtx{
		pkg:     pkg,
		params:  map[*types.Var]bool{},
		assigns: map[*types.Var][]ast.Expr{},
		memo:    map[*types.Var]pat{},
		busy:    map[*types.Var]bool{},
	}
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	cx.fn = fn
	if fn != nil {
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			v := sig.Params().At(i)
			if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				cx.params[v] = true
			}
		}
	}
	if fd.Body != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok {
					cx.assigns[v] = append(cx.assigns[v], as.Rhs[i])
				}
			}
			return true
		})
	}
	return cx
}

// patternOf statically evaluates a metric-name expression to a pattern.
func (cx *funcCtx) patternOf(e ast.Expr) pat {
	e = ast.Unparen(e)
	// Constant strings (literals, consts, folded concatenation) resolve
	// exactly.
	if tv, ok := cx.pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return pat{{kind: segLit, lit: constant.StringVal(tv.Value)}}
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return append(cx.patternOf(e.X), cx.patternOf(e.Y)...).norm()
		}
	case *ast.Ident:
		obj := cx.pkg.Info.Uses[e]
		v, ok := obj.(*types.Var)
		if !ok {
			break
		}
		if cx.params[v] {
			return pat{{kind: segHole, hole: v}}
		}
		if p, ok := cx.memo[v]; ok {
			return p
		}
		if rhss := cx.assigns[v]; len(rhss) == 1 && !cx.busy[v] {
			cx.busy[v] = true
			p := cx.patternOf(rhss[0])
			cx.busy[v] = false
			cx.memo[v] = p
			return p
		}
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if pkgName, ok := packageOf(cx.pkg.Info, sel); ok && pkgName == "fmt" && sel.Sel.Name == "Sprintf" && len(e.Args) > 0 {
				f := cx.patternOf(e.Args[0])
				if !f.hasHoles() && len(f) == 1 && f[0].kind == segLit {
					return cx.sprintfPat(f[0].lit, e.Args[1:])
				}
			}
		}
	}
	return pat{{kind: segStar}}
}

// sprintfPat substitutes each format verb with the pattern of its argument.
func (cx *funcCtx) sprintfPat(format string, args []ast.Expr) pat {
	var out pat
	lit := func(s string) { out = append(out, seg{kind: segLit, lit: s}) }
	ai := 0
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			lit(string(c))
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			lit("%")
			continue
		}
		for i < len(format) && strings.ContainsRune("+-# 0123456789.[]", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		if ai < len(args) {
			out = append(out, cx.patternOf(args[ai])...)
			ai++
		} else {
			out = append(out, seg{kind: segStar})
		}
	}
	return out.norm()
}

// ---- collection ----------------------------------------------------------

// template is a registration whose name still depends on parameters of the
// function it sits in: the function forwards names downward (RegisterMetrics
// methods, intervalRate-style helpers).
type template struct {
	ns string
	p  pat
}

// emission is one fully-resolved registration.
type emission struct {
	ns   string
	name string
	pos  token.Position
}

type callRec struct {
	pkg    *Package
	call   *ast.CallExpr
	callee *types.Func
	cx     *funcCtx
}

// isRegistryMethod recognizes registration methods on metrics.Registry.
func isRegistryMethod(fn *types.Func) (ns string, ok bool) {
	ns, ok = regMethods[fn.Name()]
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != "Registry" {
		return "", false
	}
	tp := named.Obj().Pkg()
	return ns, tp != nil && strings.HasSuffix(tp.Path(), "metrics")
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// collectMetrics resolves every metric registration in the module to a
// (namespace, name-pattern) emission, chasing names through forwarding
// functions to a fixpoint, and reports hygiene diagnostics found on the way
// (dynamic names, duplicate registrations in one function).
func collectMetrics(mod *Module) ([]emission, []Diagnostic) {
	var recs []callRec
	var diags []Diagnostic
	for _, p := range mod.Sorted() {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				cx := newFuncCtx(p, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := calleeOf(p.Info, call); fn != nil {
						recs = append(recs, callRec{pkg: p, call: call, callee: fn, cx: cx})
					}
					return true
				})
			}
		}
	}

	forw := map[*types.Func][]template{}
	var emissions []emission
	// perFunc detects copy-paste duplicates: the same name pattern written
	// twice in one function body. Mutually-exclusive registrations living
	// in different functions (scheme switch arms) are deliberately out of
	// scope.
	perFunc := map[*types.Func]map[string]token.Position{}
	processed := map[string]bool{}

	noteDirect := func(cx *funcCtx, ns string, p pat, pos token.Position) {
		if cx.fn == nil {
			return
		}
		set := perFunc[cx.fn]
		if set == nil {
			set = map[string]token.Position{}
			perFunc[cx.fn] = set
		}
		k := ns + "\x00" + p.key()
		if first, dup := set[k]; dup {
			diags = append(diags, Diagnostic{
				Pos: pos, Rule: "metricname",
				Message: fmt.Sprintf("duplicate %s registration %q in one function (first at %s:%d); the registry will panic", ns, p.key(), first.Filename, first.Line),
			})
			return
		}
		set[k] = pos
	}

	substitute := func(rec callRec, t template) pat {
		sig := rec.callee.Type().(*types.Signature)
		idx := func(v *types.Var) int {
			for i := 0; i < sig.Params().Len(); i++ {
				if sig.Params().At(i) == v {
					return i
				}
			}
			return -1
		}
		var out pat
		for _, s := range t.p {
			if s.kind != segHole {
				out = append(out, s)
				continue
			}
			i := idx(s.hole)
			if i < 0 || i >= len(rec.call.Args) {
				out = append(out, seg{kind: segStar})
				continue
			}
			out = append(out, rec.cx.patternOf(rec.call.Args[i])...)
		}
		return out.norm()
	}

	for round := 0; round < 16; round++ {
		changed := false
		for ri, rec := range recs {
			var tmpls []template
			direct := false
			if ns, ok := isRegistryMethod(rec.callee); ok {
				sig := rec.callee.Type().(*types.Signature)
				if sig.Params().Len() > 0 {
					tmpls = []template{{ns: ns, p: pat{{kind: segHole, hole: sig.Params().At(0)}}}}
					direct = true
				}
			} else {
				tmpls = forw[rec.callee]
			}
			for ti, t := range tmpls {
				key := fmt.Sprintf("%d.%d", ri, ti)
				if processed[key] {
					continue
				}
				processed[key] = true
				changed = true
				np := substitute(rec, t)
				pos := mod.Fset.Position(rec.call.Pos())
				if direct {
					noteDirect(rec.cx, t.ns, np, pos)
				}
				if np.hasHoles() {
					if rec.cx.fn != nil {
						forw[rec.cx.fn] = append(forw[rec.cx.fn], template{ns: t.ns, p: np})
					}
					continue
				}
				emissions = append(emissions, emission{ns: t.ns, name: np.render(), pos: pos})
			}
		}
		if !changed {
			break
		}
	}

	for _, e := range emissions {
		diags = append(diags, validateName(e)...)
	}
	return emissions, diags
}

// validateName enforces the subsys.name convention on one emission.
func validateName(e emission) []Diagnostic {
	var diags []Diagnostic
	bad := func(msg string) {
		diags = append(diags, Diagnostic{Pos: e.pos, Rule: "metricname", Message: msg})
	}
	if !strings.ContainsAny(e.name, "abcdefghijklmnopqrstuvwxyz") {
		bad(fmt.Sprintf("%s name %q has no literal part; metric names must be statically readable", e.ns, e.name))
		return diags
	}
	if !strings.Contains(e.name, ".") {
		bad(fmt.Sprintf("%s name %q is not namespaced; use the subsys.name convention", e.ns, e.name))
		return diags
	}
	for _, segm := range strings.Split(e.name, ".") {
		if segm == "" {
			bad(fmt.Sprintf("%s name %q has an empty dotted segment", e.ns, e.name))
			return diags
		}
		for _, r := range segm {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' && r != '*' {
				bad(fmt.Sprintf("%s name %q contains %q; names are lowercase [a-z0-9_] segments joined by dots", e.ns, e.name, string(r)))
				return diags
			}
		}
	}
	return diags
}

// InventoryLines loads the module's metric registrations and renders the
// sorted inventory, one "namespace<TAB>pattern" line per distinct
// registration ("*" marks run-time components such as core indices).
func InventoryLines(mod *Module) []string {
	emissions, _ := collectMetrics(mod)
	set := map[string]bool{}
	for _, e := range emissions {
		set[e.ns+"\t"+e.name] = true
	}
	lines := make([]string, 0, len(set))
	for l := range set {
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return lines
}

// checkMetricNames runs the hygiene checks and, when the config carries a
// committed inventory, diffs the live registrations against it so metric
// renames are always a reviewed, explicit act.
func checkMetricNames(mod *Module, cfg *Config) []Diagnostic {
	emissions, diags := collectMetrics(mod)
	if cfg.MetricInventory == nil {
		return diags
	}
	want := map[string]bool{}
	for _, l := range cfg.MetricInventory {
		l = strings.TrimSpace(l)
		if l != "" && !strings.HasPrefix(l, "#") {
			want[l] = true
		}
	}
	seen := map[string]bool{}
	for _, e := range emissions {
		line := e.ns + "\t" + e.name
		if seen[line] {
			continue
		}
		seen[line] = true
		if !want[line] {
			diags = append(diags, Diagnostic{
				Pos: e.pos, Rule: "metricname",
				Message: fmt.Sprintf("%s %q is not in the committed inventory; run nomadlint -write-inventory and review the diff", e.ns, e.name),
			})
		}
	}
	stale := make([]string, 0)
	for l := range want {
		if !seen[l] {
			stale = append(stale, strings.ReplaceAll(l, "\t", " "))
		}
	}
	sort.Strings(stale)
	for _, l := range stale {
		diags = append(diags, Diagnostic{
			Rule:    "metricname",
			Message: fmt.Sprintf("inventory lists %q which is no longer registered; run nomadlint -write-inventory", l),
		})
	}
	return diags
}
