package lint

import "testing"

func TestMapOrderBad(t *testing.T) {
	diags := lintSnippet(t, `package model

import "fmt"

func emit(m map[string]int) []string {
	var out []string
	for k, v := range m { // line 7: calls per iteration
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // line 15: float accumulation
		s += v
	}
	return s
}

func find(m map[string]int) int {
	for _, v := range m { // line 22: early return leaks order
		if v > 0 {
			return v
		}
	}
	return 0
}
`, snippetConfig(), nil)
	wantDiags(t, diags,
		[2]any{"maporder", 7},
		[2]any{"maporder", 15},
		[2]any{"maporder", 22},
	)
}

func TestMapOrderGood(t *testing.T) {
	diags := lintSnippet(t, `package model

import "sort"

// Collect-then-sort: the sanctioned idiom.
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Pure integer reductions are order-insensitive.
func stats(m map[uint64]uint64) (n, maxv uint64) {
	for _, v := range m {
		n += v
		maxv = max(maxv, v)
	}
	return n, maxv
}

// LRU-style victim scan over unique tick values.
func victim(m map[uint64]uint64) uint64 {
	var best, bestTick uint64 = 0, ^uint64(0)
	for k, tick := range m {
		if tick < bestTick {
			best, bestTick = k, tick
		}
	}
	return best
}

// Ranging a slice is always fine.
func total(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestMapOrderNonModelExempt(t *testing.T) {
	diags := lintSnippet(t, `package model

func ok() {}
`, snippetConfig(), map[string]map[string]string{
		"m/harness": {"m/harness/h.go": `package harness

import "fmt"

func Emit(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`},
	})
	wantDiags(t, diags)
}
