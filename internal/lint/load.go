// Package lint implements nomadlint, a stdlib-only static analyzer that
// enforces the simulator's determinism contract (DESIGN.md): model packages
// must not read wall-clock time, global randomness, or the environment; must
// not iterate maps in observable order; must not use goroutines or channels;
// must register metrics under literal, unique, subsys.name-style names; and
// must not push cycle counts through floating point.
//
// The analyzer is built purely on go/ast, go/parser, go/token, and go/types
// with the source importer — no golang.org/x/tools dependency — so the
// module's go.mod stays empty.
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory on disk ("" for overlay packages)
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. The linter reports them
	// but still runs syntactic rules; semantic rules degrade gracefully on
	// untyped expressions.
	TypeErrors []error
}

// Module is the loaded unit of analysis: every package of one Go module.
type Module struct {
	Path string // module path from go.mod
	Root string // module root directory ("" for overlay modules)
	Fset *token.FileSet
	Pkgs map[string]*Package // import path -> package
}

// Sorted returns the module's packages in import-path order.
func (m *Module) Sorted() []*Package {
	out := make([]*Package, 0, len(m.Pkgs))
	for _, p := range m.Pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// LoadDir loads and type-checks every package under root, the directory
// containing go.mod. Test files (_test.go), hidden directories, and testdata
// trees are skipped, matching the build graph the simulator ships.
func LoadDir(root string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		mod:  &Module{Path: modPath, Root: root, Fset: fset, Pkgs: map[string]*Package{}},
		std:  importer.ForCompiler(fset, "source", nil),
		srcs: map[string]map[string]string{},
	}

	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		files := map[string]string{}
		for _, e := range ents {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			files[filepath.Join(dir, name)] = string(src)
		}
		if len(files) > 0 {
			ld.srcs[ip] = files
			ld.mod.Pkgs[ip] = &Package{Path: ip, Dir: dir}
		}
	}

	for ip := range ld.mod.Pkgs {
		if _, err := ld.check(ip); err != nil {
			return nil, err
		}
	}
	return ld.mod, nil
}

// LoadOverlay type-checks an in-memory module: overlay maps an import path
// to its files (name -> source). Paths under modPath are module-local; any
// other overlay path shadows the corresponding stdlib or external package,
// letting tests supply fast fake dependencies (bodyless declarations type-
// check fine). Imports not found in the overlay fall back to the stdlib
// source importer.
func LoadOverlay(modPath string, overlay map[string]map[string]string) (*Module, error) {
	fset := token.NewFileSet()
	ld := &loader{
		mod:  &Module{Path: modPath, Fset: fset, Pkgs: map[string]*Package{}},
		std:  importer.ForCompiler(fset, "source", nil),
		srcs: map[string]map[string]string{},
	}
	for ip, files := range overlay {
		ld.srcs[ip] = files
		if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
			ld.mod.Pkgs[ip] = &Package{Path: ip}
		}
	}
	for ip := range ld.mod.Pkgs {
		if _, err := ld.check(ip); err != nil {
			return nil, err
		}
	}
	return ld.mod, nil
}

// loader type-checks packages recursively, resolving module-local (and
// overlay) imports from its own cache and everything else through the
// stdlib source importer.
type loader struct {
	mod      *Module
	std      types.Importer
	srcs     map[string]map[string]string // import path -> filename -> source
	checking map[string]bool
	// shadow caches type-checked overlay packages that are not part of the
	// module (fake stdlib substitutes).
	shadow map[string]*types.Package
}

func (l *loader) check(ip string) (*types.Package, error) {
	if p, ok := l.mod.Pkgs[ip]; ok && p.Types != nil {
		return p.Types, nil
	}
	if tp, ok := l.shadow[ip]; ok {
		return tp, nil
	}
	files, ok := l.srcs[ip]
	if !ok {
		return nil, fmt.Errorf("lint: no sources for package %s", ip)
	}
	if l.checking == nil {
		l.checking = map[string]bool{}
	}
	if l.checking[ip] {
		return nil, fmt.Errorf("lint: import cycle through %s", ip)
	}
	l.checking[ip] = true
	defer delete(l.checking, ip)

	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var asts []*ast.File
	for _, name := range names {
		if !buildIncluded(files[name]) {
			continue
		}
		f, err := parser.ParseFile(l.mod.Fset, name, files[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var terrs []error
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if _, ok := l.srcs[path]; ok {
				return l.check(path)
			}
			return l.std.Import(path)
		}),
		Error: func(err error) { terrs = append(terrs, err) },
	}
	tp, err := conf.Check(ip, l.mod.Fset, asts, info)
	if tp == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", ip, err)
	}

	if p, ok := l.mod.Pkgs[ip]; ok {
		p.Files = asts
		p.Types = tp
		p.Info = info
		p.TypeErrors = terrs
	} else {
		if l.shadow == nil {
			l.shadow = map[string]*types.Package{}
		}
		l.shadow[ip] = tp
	}
	return tp, nil
}

// buildIncluded evaluates a file's build constraint (//go:build or +build)
// against the default tag set — no custom tags, host GOOS/GOARCH. Files
// gated behind tags like `invariants` are excluded, exactly as in the build
// the simulator ships.
func buildIncluded(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			continue
		}
		ok := expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" || strings.HasPrefix(tag, "go1")
		})
		if !ok {
			return false
		}
	}
	return true
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
