package lint

import "testing"

func TestWallclockBad(t *testing.T) {
	diags := lintSnippet(t, `package model

import (
	"os"
	"time"
)

func tick() time.Duration {
	start := time.Now()      // line 9: banned
	time.Sleep(time.Second)  // line 10: banned
	_ = os.Getenv("SEED")    // line 11: banned
	return time.Since(start) // line 12: banned
}
`, snippetConfig(), nil)
	wantDiags(t, diags,
		[2]any{"wallclock", 9},
		[2]any{"wallclock", 10},
		[2]any{"wallclock", 11},
		[2]any{"wallclock", 12},
	)
}

func TestWallclockRandImport(t *testing.T) {
	diags := lintSnippet(t, `package model

import "math/rand"

func roll() int { return rand.Intn(6) }
`, snippetConfig(), nil)
	if len(diags) == 0 || diags[0].Rule != "wallclock" {
		t.Fatalf("want wallclock diagnostic for math/rand import, got %v", diags)
	}
}

func TestWallclockGood(t *testing.T) {
	// Duration as a unit type and method calls on values are fine; only
	// the host-clock constructors are banned.
	diags := lintSnippet(t, `package model

import "time"

const window = 500 * time.Millisecond

func span(a, b time.Time) time.Duration { return b.Sub(a) }
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestWallclockNonModelExempt(t *testing.T) {
	cfg := snippetConfig()
	diags := lintSnippet(t, `package model

func ok() {}
`, cfg, map[string]map[string]string{
		"m/harness": {"m/harness/h.go": `package harness

import "time"

func Stamp() time.Time { return time.Now() }
`},
	})
	wantDiags(t, diags)
}

func TestWallclockAllowFile(t *testing.T) {
	cfg := snippetConfig()
	cfg.AllowFiles = []string{"m/model/model.go"}
	diags := lintSnippet(t, `package model

import "time"

func Stamp() time.Time { return time.Now() }
`, cfg, nil)
	wantDiags(t, diags)
}
