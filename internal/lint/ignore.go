package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//nomadlint:ignore rule1,rule2 -- reason
//
// The directive suppresses matching diagnostics on its own line and, when it
// is the only thing on its line, on the following line. The reason is
// mandatory: a suppression without a recorded justification is itself
// diagnosed (rule "directive").
const ignorePrefix = "//nomadlint:ignore"

// ignoreEntry is one parsed directive.
type ignoreEntry struct {
	rules map[string]bool
}

// ignoreIndex maps file -> line -> directive for suppression lookup.
type ignoreIndex struct {
	byLine    map[string]map[int]ignoreEntry
	malformed []Diagnostic
}

// collectIgnores parses every //nomadlint:ignore comment in the module.
func collectIgnores(mod *Module) *ignoreIndex {
	idx := &ignoreIndex{byLine: map[string]map[int]ignoreEntry{}}
	for _, p := range mod.Sorted() {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					idx.add(mod.Fset, c)
				}
			}
		}
	}
	return idx
}

func (idx *ignoreIndex) add(fset *token.FileSet, c *ast.Comment) {
	pos := fset.Position(c.Pos())
	rest := strings.TrimPrefix(c.Text, ignorePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //nomadlint:ignoreXYZ — not a directive, not diagnosed.
		return
	}
	spec, reason, found := strings.Cut(rest, "--")
	spec = strings.TrimSpace(spec)
	reason = strings.TrimSpace(reason)
	if !found || reason == "" {
		idx.malformed = append(idx.malformed, Diagnostic{
			Pos: pos, Rule: "directive",
			Message: "ignore directive needs a justification: //nomadlint:ignore <rules> -- <reason>",
		})
		return
	}
	if !substantiveReason(reason) {
		// "-- ." or "-- ok" would otherwise read as a silent waiver; the
		// justification is the reviewable record of why the rule is wrong
		// here, so demand at least one real word.
		idx.malformed = append(idx.malformed, Diagnostic{
			Pos: pos, Rule: "directive",
			Message: "ignore directive justification " + strconvQuote(reason) + " is not substantive; explain why the rule does not apply at this site",
		})
		return
	}
	if spec == "" {
		idx.malformed = append(idx.malformed, Diagnostic{
			Pos: pos, Rule: "directive",
			Message: "ignore directive names no rules",
		})
		return
	}
	entry := ignoreEntry{rules: map[string]bool{}}
	for _, r := range strings.Split(spec, ",") {
		r = strings.TrimSpace(r)
		if !knownRule(r) {
			idx.malformed = append(idx.malformed, Diagnostic{
				Pos: pos, Rule: "directive",
				Message: "ignore directive names unknown rule " + strconvQuote(r),
			})
			continue
		}
		entry.rules[r] = true
	}
	if len(entry.rules) == 0 {
		return
	}
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		lines = map[int]ignoreEntry{}
		idx.byLine[pos.Filename] = lines
	}
	// Suppress on the directive's own line (trailing comment) and on the
	// next line (standalone comment above the flagged statement). Merging
	// keeps multiple directives for one line additive.
	for _, ln := range []int{pos.Line, pos.Line + 1} {
		if prev, ok := lines[ln]; ok {
			for r := range entry.rules {
				prev.rules[r] = true
			}
			continue
		}
		merged := ignoreEntry{rules: map[string]bool{}}
		for r := range entry.rules {
			merged.rules[r] = true
		}
		lines[ln] = merged
	}
}

// suppressed reports whether d is covered by a directive.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	lines, ok := idx.byLine[d.Pos.Filename]
	if !ok {
		return false
	}
	e, ok := lines[d.Pos.Line]
	return ok && e.rules[d.Rule]
}

// substantiveReason accepts a justification only when it contains at least
// one run of three or more letters — a real word, not punctuation or an
// "ok"-style shrug.
func substantiveReason(reason string) bool {
	run := 0
	for _, r := range reason {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
			run++
			if run >= 3 {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}

func knownRule(r string) bool {
	for _, n := range RuleNames {
		if n == r {
			return true
		}
	}
	return false
}

func strconvQuote(s string) string { return "\"" + s + "\"" }
