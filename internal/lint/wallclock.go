package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// bannedTimeFuncs are the package-level time functions that read the host
// clock or create host timers. Pure types and constants (time.Duration,
// time.Millisecond) stay legal: model code may use Duration as a unit.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// bannedOSFuncs read the process environment, an input the determinism
// contract forbids inside the model.
var bannedOSFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// checkWallclock flags wall-clock reads, global randomness, and environment
// access inside model packages. Simulated time comes only from the engine;
// randomness only from seeded rand.Rand instances threaded through
// configuration — math/rand's global functions (and, transitively, its
// import) are banned outright.
func checkWallclock(mod *Module, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, p := range mod.Sorted() {
		if !cfg.isModel(mod.Path, p.Path) {
			continue
		}
		for _, f := range p.Files {
			pos := mod.Fset.Position(f.Pos())
			if cfg.fileAllowed(pos.Filename) {
				continue
			}
			for _, imp := range f.Imports {
				ipath, _ := strconv.Unquote(imp.Path.Value)
				if ipath == "math/rand" || ipath == "math/rand/v2" {
					diags = append(diags, Diagnostic{
						Pos: mod.Fset.Position(imp.Pos()), Rule: "wallclock",
						Message: "model package imports " + ipath + "; seeded determinism requires rand.Rand instances wired through config, not global randomness",
					})
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgName, ok := packageOf(p.Info, sel)
				if !ok {
					return true
				}
				switch {
				case pkgName == "time" && bannedTimeFuncs[sel.Sel.Name]:
					diags = append(diags, Diagnostic{
						Pos: mod.Fset.Position(call.Pos()), Rule: "wallclock",
						Message: "model code reads the host clock via time." + sel.Sel.Name + "; simulated time must come from the engine",
					})
				case pkgName == "os" && bannedOSFuncs[sel.Sel.Name]:
					diags = append(diags, Diagnostic{
						Pos: mod.Fset.Position(call.Pos()), Rule: "wallclock",
						Message: "model code reads the environment via os." + sel.Sel.Name + "; configuration must flow through Config structs",
					})
				}
				return true
			})
		}
	}
	return diags
}

// packageOf resolves sel's qualifier to an imported package path, if the
// qualifier is a package name (not a value).
func packageOf(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
