package lint

import "testing"

// The call-graph edge cases pin the analyzer's resolution strategy: where it
// is exact (static calls, method values handed to registrations), where it
// is conservative (interface dispatch fans out to every implementer), and
// where it deliberately stops (dynamic calls through stored func values —
// the creator-domain rule — and files excluded by build constraints).

func TestCallGraphInterfaceConservativeFallback(t *testing.T) {
	// a.step calls through an interface; the analyzer cannot know the
	// dynamic type, so it must fan out to every module implementer and
	// flag the core->channel mutating call.
	diags := lintSnippet(t, `package model

type mutator interface{ bump() }

//nomad:owner core
type coreSide struct {
	m mutator
	n int
}

func (c *coreSide) step() {
	c.n++
	c.m.bump() // line 13: may dispatch to the channel-side implementer
}

//nomad:owner channel
type chanSide struct{ x int }

func (s *chanSide) bump() { s.x++ }
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags, [2]any{"ownership", 13})
}

func TestCallGraphDynamicCallStopsPropagation(t *testing.T) {
	// A func value stored in a field and invoked later belongs to the
	// domain that created it: invocation through the field must NOT leak
	// the caller's domain into the callee (cross-domain delivery of
	// callbacks is mediated by shared-owned queues by design).
	diags := lintSnippet(t, `package model

//nomad:owner channel
type chanSide struct{ x int }

func (s *chanSide) makeDone() func() {
	return func() { s.x++ } // channel-created callback
}

//nomad:owner core
type coreSide struct {
	done func()
	n    int
}

func (c *coreSide) arm(f func()) { c.done = f }

func (c *coreSide) fire() {
	c.n++
	c.done() // dynamic: must not paint the callback core
}
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags)
}

func TestCallGraphBuildTaggedFileExcluded(t *testing.T) {
	// A violation behind a build tag the simulator does not ship with is
	// invisible to the analyzer, matching the compiled build graph.
	diags := lintSnippet(t, `package model

//nomad:owner core
type coreSide struct{ peer *chanSide }

func (c *coreSide) idle() { _ = c.peer }

//nomad:owner channel
type chanSide struct{ x int }

func (s *chanSide) step() { s.x++ }
`, ownershipConfig("ownership"), map[string]map[string]string{
		"m/model-extra": {"m/model/tagged.go": `//go:build debughooks

package model

func debugPoke(c *coreSide) { c.peer.x++ } // would be a violation
`},
	})
	wantDiags(t, diags)
}

func TestCallGraphGenericsInstantiation(t *testing.T) {
	// Generic structs are analyzed at their origin: two instantiations
	// must produce one finding at the generic field declaration, and
	// method bodies of instantiated types must resolve through Origin().
	diags := lintSnippet(t, `package model

//nomad:owner core
type ring[T any] struct {
	buf  []T
	head int // line 6: mutated via both instantiations, flagged once
}

func (r *ring[T]) push(v T) {
	r.buf = append(r.buf, v)
	r.head++
}

//nomad:owner core
//nomad:ephemeral fixture: instantiation driver state
type driver struct {
	a ring[int]
	b ring[string]
}

func (d *driver) step() {
	d.a.push(1)
	d.b.push("s")
}
`, ownershipConfig("ownership", "statecover"), nil)
	wantDiags(t, diags,
		[2]any{"statecover", 5}, // ring.buf
		[2]any{"statecover", 6}, // ring.head
	)
}

func TestCallGraphStaticForwarderPropagation(t *testing.T) {
	// Domain reachability must flow through plain (non-method) forwarder
	// functions: core -> helper -> channel write is still a violation even
	// though the helper itself is domainless.
	diags := lintSnippet(t, `package model

//nomad:owner core
type coreSide struct{ peer *chanSide }

func (c *coreSide) step() { poke(c.peer) }

func poke(s *chanSide) { s.x++ } // line 8: reached from core

//nomad:owner channel
type chanSide struct{ x int }

func (s *chanSide) own() { s.x++ }
`, ownershipConfig("ownership"), nil)
	wantDiags(t, diags, [2]any{"ownership", 8})
}
