package lint

import "testing"

func TestPoolAllocBad(t *testing.T) {
	diags := lintSnippet(t, `package model

// request is pooled: instances recycle through the device freelist.
type request struct {
	addr uint64
	fn   func()
}

type device struct{ free []*request }

func (d *device) access(addr uint64) *request {
	r := &request{addr: addr} // line 12: bypasses the freelist
	return r
}

func fresh() *request {
	return new(request) // line 17: bypasses the freelist
}
`, snippetConfig(), nil)
	wantDiags(t, diags,
		[2]any{"poolalloc", 12},
		[2]any{"poolalloc", 17},
	)
}

func TestPoolAllocIgnoreEscape(t *testing.T) {
	diags := lintSnippet(t, `package model

// request is pooled.
type request struct{ fn func() }

type device struct{ free []*request }

func (d *device) get() *request {
	if n := len(d.free); n > 0 {
		r := d.free[n-1]
		d.free = d.free[:n-1]
		return r
	}
	r := &request{} //nomadlint:ignore poolalloc -- freelist constructor
	r.fn = func() {}
	return r
}
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestPoolAllocUnmarkedTypesFree(t *testing.T) {
	diags := lintSnippet(t, `package model

// config holds immutable setup state (not pool-managed).
type config struct{ n int }

func setup() *config { return &config{n: 4} }
`, snippetConfig(), nil)
	wantDiags(t, diags)
}

func TestPoolAllocOutsideModelFree(t *testing.T) {
	diags := lintSnippet(t, `package model

func ok() {}
`, snippetConfig(), map[string]map[string]string{
		"m/tool": {"tool.go": `package tool

// job is pooled in spirit, but this package is not in contract scope.
type job struct{ fn func() }

func spawn() *job { return &job{} }
`},
	})
	wantDiags(t, diags)
}
