package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkStateCover flags mutable model fields that are invisible to
// observability: not read by anything reachable from a metrics registration
// (the counters, series, and interval samplers the snapshot fold and digest
// chain consume), not metrics machinery themselves, not callbacks, and not
// annotated //nomad:ephemeral. Such state can survive into the ROI while
// escaping every digest — the divergence class nomaddiff cannot localize.
func checkStateCover(mod *Module, cfg *Config, ann *annotations, cg *callGraph, acc *accesses) []Diagnostic {
	covered := coveredFields(mod, cg, acc)
	var diags []Diagnostic
	for _, si := range ann.structs {
		if !cfg.isOwnership(mod.Path, si.pkg.Path) {
			continue
		}
		oi, owned := ann.owners[si.tn]
		if !owned {
			continue // unannotated mutable structs are the ownership rule's finding
		}
		if oi.domain == domHost {
			continue // host state (configs, results) never enters the deterministic snapshot
		}
		if ann.ephType[si.tn] || ann.pooled[si.tn] {
			// Pooled carriers are recycled in-flight state; their pool
			// population is ephemeral by contract.
			continue
		}
		for _, fi := range si.fields {
			key := fieldKey{si.tn, fi.name}
			if _, mut := acc.mutFields[key]; !mut && !acc.wholeWritten[si.tn] {
				continue
			}
			if ann.ephField[key] || covered[key] {
				continue
			}
			if isFuncValued(fi.ftype) || isMetricsValued(fi.ftype) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos: fi.pos, Rule: "statecover",
				Message: "mutable field " + si.tn.Name() + "." + fi.name + " is invisible to observability: no metrics registration reads it; register it, or annotate //nomad:ephemeral <reason> if divergence in it is observable elsewhere",
			})
		}
	}
	return diags
}

// coveredFields computes the set of fields read by code reachable from any
// metrics-registration argument (closures and named functions handed to
// Registry methods), following every edge kind — coverage errs generous.
func coveredFields(mod *Module, cg *callGraph, acc *accesses) map[fieldKey]bool {
	var roots []*cgNode
	for _, p := range mod.Sorted() {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(p.Info, call)
				if fn == nil {
					return true
				}
				if _, ok := isRegistryMethod(fn); !ok {
					return true
				}
				for _, arg := range call.Args {
					if r := rootNodeOf(p, cg, arg); r != nil {
						roots = append(roots, r)
					}
				}
				return true
			})
		}
	}
	covered := map[fieldKey]bool{}
	seen := map[*cgNode]bool{}
	for len(roots) > 0 {
		n := roots[len(roots)-1]
		roots = roots[:len(roots)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		for k := range acc.readsBy[n] {
			covered[k] = true
		}
		for _, e := range n.out {
			if !seen[e.to] {
				roots = append(roots, e.to)
			}
		}
	}
	return covered
}

// rootNodeOf resolves a registration argument to its call-graph node:
// a function literal, a named function, or a method value.
func rootNodeOf(p *Package, cg *callGraph, arg ast.Expr) *cgNode {
	switch x := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return cg.byLit[x]
	case *ast.Ident:
		if fn, ok := p.Info.Uses[x].(*types.Func); ok {
			return cg.byFunc[fn.Origin()]
		}
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[x]; ok && s.Kind() == types.MethodVal {
			if fn, ok := s.Obj().(*types.Func); ok {
				return cg.byFunc[fn.Origin()]
			}
		}
		if fn, ok := p.Info.Uses[x.Sel].(*types.Func); ok {
			return cg.byFunc[fn.Origin()]
		}
	}
	return nil
}

// isFuncValued reports whether t stores callbacks (possibly inside
// containers): callback slots are wiring, not digestable state.
func isFuncValued(t types.Type) bool {
	t = elemType(t)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// isMetricsValued reports whether t is (a container of) a type from the
// metrics package — registry plumbing is host-observability machinery, with
// its own determinism story.
func isMetricsValued(t types.Type) bool {
	t = elemType(t)
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && strings.HasSuffix(pkg.Path(), "metrics")
}

// elemType unwraps pointers, slices, arrays, and map values.
func elemType(t types.Type) types.Type {
	for t != nil {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Array:
			t = tt.Elem()
		case *types.Map:
			t = tt.Elem()
		default:
			return t
		}
	}
	return nil
}
