package lint

import "testing"

// fakeObs provides overlay stand-ins for the host-side packages the
// obsboundary rule bans from model code.
var fakeObs = map[string]map[string]string{
	"m/internal/obs": {"obs.go": `package obs
type RunTracker struct{}
func NewRunTracker() *RunTracker
`},
	"m/internal/diag": {"diag.go": `package diag
func DiffSnapshots(a, b any) any
`},
	"log/slog": {"slog.go": `package slog
type Logger struct{}
func (l *Logger) Info(msg string, args ...any)
func Default() *Logger
`},
}

func TestObsBoundaryFlagsModelImports(t *testing.T) {
	src := `package model

import (
	"log/slog"
	"m/internal/diag"
	"m/internal/obs"
)

func bad() {
	slog.Default().Info("leak")
	_ = obs.NewRunTracker()
	_ = diag.DiffSnapshots(nil, nil)
}
`
	diags := lintSnippet(t, src, snippetConfig(), fakeObs)
	wantDiags(t, diags,
		[2]any{"obsboundary", 4},
		[2]any{"obsboundary", 5},
		[2]any{"obsboundary", 6},
	)
}

func TestObsBoundaryAllowsHostPackages(t *testing.T) {
	// The same imports outside contract scope are fine: obs and slog are
	// exactly the host-side layer.
	src := `package model

func ok() {}
`
	host := `package host

import (
	"log/slog"
	"m/internal/diag"
	"m/internal/obs"
)

func use() {
	slog.Default().Info("host-side")
	_ = obs.NewRunTracker()
	_ = diag.DiffSnapshots(nil, nil)
}
`
	extra := map[string]map[string]string{
		"m/host": {"host.go": host},
	}
	for ip, files := range fakeObs {
		extra[ip] = files
	}
	diags := lintSnippet(t, src, snippetConfig(), extra)
	wantDiags(t, diags)
}

func TestObsBoundaryIgnoreDirective(t *testing.T) {
	src := `package model

import (
	//nomadlint:ignore obsboundary -- exercising the escape hatch
	"log/slog"
)

var _ = slog.Default
`
	diags := lintSnippet(t, src, snippetConfig(), fakeObs)
	wantDiags(t, diags)
}
