package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// pooledDocMarker identifies pool-managed types by convention: a struct
// whose type doc comment contains the word "pooled" declares that instances
// must come from its freelist, not from raw composite literals. The marker
// keeps the rule self-maintaining — adding a new pool means documenting the
// type (which the code must do anyway), not editing the linter.
var pooledDocMarker = regexp.MustCompile(`(?i)\bpooled\b`)

// checkPoolAlloc flags raw allocations (&T{...}, new(T)) of pool-managed
// types in model packages. The model hot paths recycle their event/request
// carriers through freelists so the steady-state busy path allocates
// nothing; a stray &request{} silently reintroduces per-event garbage and
// splits the object population between pooled and unpooled instances. The
// freelist constructor itself carries a //nomadlint:ignore poolalloc
// directive — it is the one allocation the pool amortizes.
func checkPoolAlloc(mod *Module, cfg *Config) []Diagnostic {
	// Pass 1: collect pooled type objects across model packages.
	pooled := map[types.Object]bool{}
	for _, p := range mod.Sorted() {
		if !cfg.isModel(mod.Path, p.Path) {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if _, ok := ts.Type.(*ast.StructType); !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					if doc == nil || !pooledDocMarker.MatchString(doc.Text()) {
						continue
					}
					if obj := p.Info.Defs[ts.Name]; obj != nil {
						pooled[obj] = true
					}
				}
			}
		}
	}
	if len(pooled) == 0 {
		return nil
	}

	pooledType := func(t types.Type) (string, bool) {
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		if pooled[named.Obj()] {
			return named.Obj().Name(), true
		}
		return "", false
	}

	// Pass 2: flag raw allocations of those types.
	var diags []Diagnostic
	for _, p := range mod.Sorted() {
		if !cfg.isModel(mod.Path, p.Path) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.UnaryExpr:
					cl, ok := e.X.(*ast.CompositeLit)
					if !ok {
						return true
					}
					tv, ok := p.Info.Types[cl]
					if !ok || tv.Type == nil {
						return true
					}
					if name, ok := pooledType(tv.Type); ok {
						diags = append(diags, Diagnostic{
							Pos: mod.Fset.Position(e.Pos()), Rule: "poolalloc",
							Message: "raw &" + name + "{} bypasses the freelist; acquire pooled instances from their pool (or justify with //nomadlint:ignore poolalloc -- <reason>)",
						})
					}
				case *ast.CallExpr:
					id, ok := e.Fun.(*ast.Ident)
					if !ok || len(e.Args) != 1 {
						return true
					}
					if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "new" {
						return true
					}
					tv, ok := p.Info.Types[e.Args[0]]
					if !ok || !tv.IsType() {
						return true
					}
					if name, ok := pooledType(tv.Type); ok {
						diags = append(diags, Diagnostic{
							Pos: mod.Fset.Position(e.Pos()), Rule: "poolalloc",
							Message: "new(" + name + ") bypasses the freelist; acquire pooled instances from their pool (or justify with //nomadlint:ignore poolalloc -- <reason>)",
						})
					}
				}
				return true
			})
		}
	}
	return diags
}
