package lint

import (
	"fmt"
	"go/token"
	"path"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// RuleNames lists every rule the analyzer implements, in report order.
// "directive" is the meta-rule covering malformed //nomadlint:ignore
// comments and is always active.
var RuleNames = []string{
	"wallclock",
	"maporder",
	"concurrency",
	"metricname",
	"floatclock",
	"poolalloc",
	"obsboundary",
	"ownership",
	"statecover",
	"directive",
}

// Config scopes the determinism contract.
type Config struct {
	// ModelPackages are import-path suffixes (relative to the module path)
	// of packages holding simulation state, where the full contract
	// applies. A package matches when its path equals modPath+"/"+entry.
	ModelPackages []string
	// AllowFiles exempts individual files (slash-separated path suffixes,
	// e.g. "internal/metrics/hostprof.go") from the wallclock rule: these
	// knowingly read host state and are documented as non-deterministic.
	AllowFiles []string
	// ConcurrencyAllowFiles exempts individual files (same suffix matching
	// as AllowFiles) from the concurrency rule. The goroutine ban stays in
	// force for every other model file: the single default entry is the
	// parallel engine itself, whose worker pool synchronizes exclusively
	// through its barrier atomics and is proven byte-identical to the
	// sequential engine by the equivalence tests.
	ConcurrencyAllowFiles []string
	// Rules restricts the run to a subset of RuleNames; empty means all.
	Rules []string
	// MetricInventory, when non-nil, is the committed inventory the
	// collected metric registrations are compared against (one
	// "namespace<TAB>pattern" per line). Nil skips the comparison.
	MetricInventory []string
	// OwnershipPackages are the import-path suffixes where the
	// interprocedural ownership and state-coverage rules apply: the model
	// packages holding shardable simulation state (internal/metrics is model
	// scope for the syntactic rules but hosts the observability machinery,
	// so it is not ownership scope). Empty disables both rules.
	OwnershipPackages []string
	// OwnershipInventory, when non-nil, is the committed ownership
	// inventory the live owner/port annotations are compared against. Nil
	// skips the comparison.
	OwnershipInventory []string
}

// DefaultConfig returns the contract for this repository: every package
// that holds simulation state is a model package; the host-profiling file
// is the single wallclock exemption.
func DefaultConfig() Config {
	return Config{
		ModelPackages: []string{
			"internal/sim",
			"internal/mem",
			"internal/dram",
			"internal/cache",
			"internal/core",
			"internal/cpu",
			"internal/osmem",
			"internal/schemes",
			"internal/tlb",
			"internal/replacement",
			"internal/workload",
			"internal/system",
			"internal/metrics",
		},
		AllowFiles:            []string{"internal/metrics/hostprof.go"},
		ConcurrencyAllowFiles: []string{"internal/sim/parallel.go"},
		OwnershipPackages: []string{
			"internal/sim",
			"internal/mem",
			"internal/dram",
			"internal/cache",
			"internal/core",
			"internal/cpu",
			"internal/osmem",
			"internal/schemes",
			"internal/tlb",
			"internal/replacement",
			"internal/workload",
			"internal/system",
		},
	}
}

// ruleEnabled reports whether the named rule runs under this config.
func (c *Config) ruleEnabled(name string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	for _, r := range c.Rules {
		if r == name {
			return true
		}
	}
	return false
}

// isModel reports whether the package at import path ip is in contract
// scope.
func (c *Config) isModel(modPath, ip string) bool {
	for _, m := range c.ModelPackages {
		if ip == modPath+"/"+m || ip == m {
			return true
		}
	}
	return false
}

// isOwnership reports whether the package at import path ip is in
// ownership-analysis scope.
func (c *Config) isOwnership(modPath, ip string) bool {
	for _, m := range c.OwnershipPackages {
		if ip == modPath+"/"+m || ip == m {
			return true
		}
	}
	return false
}

// fileAllowed reports whether filename is exempt from wallclock.
func (c *Config) fileAllowed(filename string) bool {
	return suffixMatch(filename, c.AllowFiles)
}

// concurrencyAllowed reports whether filename is exempt from the
// concurrency rule.
func (c *Config) concurrencyAllowed(filename string) bool {
	return suffixMatch(filename, c.ConcurrencyAllowFiles)
}

// suffixMatch reports whether filename ends in one of the slash-separated
// path suffixes.
func suffixMatch(filename string, suffixes []string) bool {
	f := path.Clean(strings.ReplaceAll(filename, "\\", "/"))
	for _, a := range suffixes {
		if strings.HasSuffix(f, "/"+a) || f == a {
			return true
		}
	}
	return false
}

// Run executes the configured rules over a loaded module and returns the
// surviving diagnostics sorted by position. Type errors are reported first:
// a module that does not compile cannot be certified.
func Run(mod *Module, cfg Config) []Diagnostic {
	var diags []Diagnostic
	for _, p := range mod.Sorted() {
		for _, err := range p.TypeErrors {
			diags = append(diags, Diagnostic{
				Rule:    "typecheck",
				Message: err.Error(),
			})
		}
	}

	ign := collectIgnores(mod)
	diags = append(diags, ign.malformed...)

	if cfg.ruleEnabled("wallclock") {
		diags = append(diags, checkWallclock(mod, &cfg)...)
	}
	if cfg.ruleEnabled("maporder") {
		diags = append(diags, checkMapOrder(mod, &cfg)...)
	}
	if cfg.ruleEnabled("concurrency") {
		diags = append(diags, checkConcurrency(mod, &cfg)...)
	}
	if cfg.ruleEnabled("metricname") {
		diags = append(diags, checkMetricNames(mod, &cfg)...)
	}
	if cfg.ruleEnabled("floatclock") {
		diags = append(diags, checkFloatClock(mod, &cfg)...)
	}
	if cfg.ruleEnabled("poolalloc") {
		diags = append(diags, checkPoolAlloc(mod, &cfg)...)
	}
	if cfg.ruleEnabled("obsboundary") {
		diags = append(diags, checkObsBoundary(mod, &cfg)...)
	}
	// The interprocedural rules share one call graph and access index;
	// both are gated on ownership scope being configured.
	if len(cfg.OwnershipPackages) > 0 && (cfg.ruleEnabled("ownership") || cfg.ruleEnabled("statecover")) {
		ann := parseAnnotations(mod)
		for _, d := range ann.diags {
			if cfg.ruleEnabled(d.Rule) {
				diags = append(diags, d)
			}
		}
		cg := buildCallGraph(mod, ann)
		acc := collectAccesses(mod, cg)
		if cfg.ruleEnabled("ownership") {
			diags = append(diags, checkOwnership(mod, &cfg, ann, cg, acc)...)
		}
		if cfg.ruleEnabled("statecover") {
			diags = append(diags, checkStateCover(mod, &cfg, ann, cg, acc)...)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Rule != "directive" && ign.suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Rule < kept[j].Rule
	})
	return kept
}
