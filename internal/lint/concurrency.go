package lint

import (
	"go/ast"
	"go/token"
)

// checkConcurrency flags goroutine launches and channel machinery inside
// model packages. The simulator is single-threaded by design: event order is
// the determinism contract's backbone, and a goroutine or channel anywhere
// in the model makes event order scheduler-dependent. (sync.Mutex guarding
// host-facing output is fine; spawning is not.)
func checkConcurrency(mod *Module, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, p := range mod.Sorted() {
		if !cfg.isModel(mod.Path, p.Path) {
			continue
		}
		for _, f := range p.Files {
			if cfg.concurrencyAllowed(mod.Fset.Position(f.Pos()).Filename) {
				// The parallel engine's worker pool is the one sanctioned
				// use of goroutines in the model; see
				// Config.ConcurrencyAllowFiles.
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					diags = append(diags, Diagnostic{
						Pos: mod.Fset.Position(n.Pos()), Rule: "concurrency",
						Message: "model code launches a goroutine; the simulator is single-threaded and event-ordered",
					})
				case *ast.SendStmt:
					diags = append(diags, Diagnostic{
						Pos: mod.Fset.Position(n.Pos()), Rule: "concurrency",
						Message: "model code sends on a channel; use the event engine, not channels",
					})
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						diags = append(diags, Diagnostic{
							Pos: mod.Fset.Position(n.Pos()), Rule: "concurrency",
							Message: "model code receives from a channel; use the event engine, not channels",
						})
					}
				case *ast.SelectStmt:
					diags = append(diags, Diagnostic{
						Pos: mod.Fset.Position(n.Pos()), Rule: "concurrency",
						Message: "model code uses select; use the event engine, not channels",
					})
				case *ast.ChanType:
					diags = append(diags, Diagnostic{
						Pos: mod.Fset.Position(n.Pos()), Rule: "concurrency",
						Message: "model code declares a channel type; use the event engine, not channels",
					})
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
						if obj := p.Info.Uses[id]; obj != nil && obj.Pkg() == nil {
							// Builtin close: only valid on channels.
							diags = append(diags, Diagnostic{
								Pos: mod.Fset.Position(n.Pos()), Rule: "concurrency",
								Message: "model code closes a channel; use the event engine, not channels",
							})
						}
					}
				}
				return true
			})
		}
	}
	return diags
}
