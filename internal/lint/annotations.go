package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Ownership-domain annotation grammar (DESIGN.md "Ownership domains"):
//
//	//nomad:owner core|channel|shared|host    on a struct type's doc comment
//	//nomad:port <reason>                     on a function/method doc comment
//	//nomad:ephemeral <reason>                on a struct or field doc comment
//
// The owner annotation assigns every mutable model struct to the shard
// domain that will own it in the parallel engine; ports are the audited
// mediation sites where one domain may legitimately reach into another;
// ephemeral marks state that deliberately stays outside digest coverage.
const (
	ownerMarker = "//nomad:owner"
	portMarker  = "//nomad:port"
	ephMarker   = "//nomad:ephemeral"
)

// Domain bits. A function's domain set is the union of the domains whose
// state it can be reached from without crossing a port; the empty set means
// host (setup, harness, reporting) and is materialized as domHost at check
// time.
const (
	domCore uint8 = 1 << iota
	domChannel
	domShared
	domHost
)

func parseDomain(s string) (uint8, bool) {
	switch s {
	case "core":
		return domCore, true
	case "channel":
		return domChannel, true
	case "shared":
		return domShared, true
	case "host":
		return domHost, true
	}
	return 0, false
}

func domainName(bit uint8) string {
	switch bit {
	case domCore:
		return "core"
	case domChannel:
		return "channel"
	case domShared:
		return "shared"
	case domHost:
		return "host"
	}
	return "?"
}

// domainNames renders a mask as "core+channel" in declaration order.
func domainNames(mask uint8) string {
	var parts []string
	for _, b := range []uint8{domCore, domChannel, domShared, domHost} {
		if mask&b != 0 {
			parts = append(parts, domainName(b))
		}
	}
	return strings.Join(parts, "+")
}

// fieldKey identifies a struct field by its declaring (origin) type and
// name, stable across generic instantiations.
type fieldKey struct {
	tn   *types.TypeName
	name string
}

type ownerInfo struct {
	domain uint8
	pos    token.Position
}

type portInfo struct {
	reason string
	pos    token.Position
}

type fieldInfo struct {
	name  string
	pos   token.Position
	ftype types.Type
}

type structInfo struct {
	tn     *types.TypeName
	pkg    *Package
	pos    token.Position
	fields []fieldInfo
}

// annotations is the parsed annotation state of a module plus the struct
// catalog both analyzers walk.
type annotations struct {
	owners   map[*types.TypeName]ownerInfo
	ports    map[*types.Func]portInfo
	ephType  map[*types.TypeName]bool
	ephField map[fieldKey]bool
	// pooled mirrors poolalloc's doc-marker convention at the type level,
	// shared here so the retention check needs no second doc scan.
	pooled  map[*types.TypeName]bool
	structs []structInfo
	diags   []Diagnostic
}

// cutMarker returns the text after marker when c is that directive (the
// marker must end at a word boundary, so //nomad:ownership is not an owner
// directive).
func cutMarker(text, marker string) (string, bool) {
	if text == marker {
		return "", true
	}
	if rest, ok := strings.CutPrefix(text, marker); ok && (rest[0] == ' ' || rest[0] == '\t') {
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// parseAnnotations scans every doc comment in the module for ownership
// annotations. Grammar violations and misplaced annotations are diagnosed
// under the rule that owns the marker ("ownership" for owner/port,
// "statecover" for ephemeral).
func parseAnnotations(mod *Module) *annotations {
	ann := &annotations{
		owners:   map[*types.TypeName]ownerInfo{},
		ports:    map[*types.Func]portInfo{},
		ephType:  map[*types.TypeName]bool{},
		ephField: map[fieldKey]bool{},
		pooled:   map[*types.TypeName]bool{},
	}
	for _, p := range mod.Sorted() {
		for _, f := range p.Files {
			consumed := map[*ast.Comment]bool{}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						ann.scanTypeSpec(mod, p, d, ts, consumed)
					}
				case *ast.FuncDecl:
					ann.scanFuncDecl(mod, p, d, consumed)
				}
			}
			// Any marker not consumed by a declaration scan sits somewhere
			// the annotation has no meaning (inside a body, on a var, …).
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if consumed[c] {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					switch {
					case isMarker(c.Text, ownerMarker):
						ann.bad(pos, "ownership", "//nomad:owner belongs on a struct type's doc comment")
					case isMarker(c.Text, portMarker):
						ann.bad(pos, "ownership", "//nomad:port belongs on a function or method doc comment")
					case isMarker(c.Text, ephMarker):
						ann.bad(pos, "statecover", "//nomad:ephemeral belongs on a struct or field doc comment")
					}
				}
			}
		}
	}
	return ann
}

func isMarker(text, marker string) bool {
	_, ok := cutMarker(text, marker)
	return ok
}

func (a *annotations) bad(pos token.Position, rule, msg string) {
	a.diags = append(a.diags, Diagnostic{Pos: pos, Rule: rule, Message: msg})
}

func (a *annotations) scanTypeSpec(mod *Module, p *Package, gd *ast.GenDecl, ts *ast.TypeSpec, consumed map[*ast.Comment]bool) {
	doc := ts.Doc
	if doc == nil {
		doc = gd.Doc
	}
	st, isStruct := ts.Type.(*ast.StructType)
	tn, _ := p.Info.Defs[ts.Name].(*types.TypeName)
	if doc != nil {
		for _, c := range doc.List {
			pos := mod.Fset.Position(c.Pos())
			if rest, ok := cutMarker(c.Text, ownerMarker); ok {
				consumed[c] = true
				switch {
				case !isStruct || tn == nil:
					a.bad(pos, "ownership", "//nomad:owner belongs on a struct type declaration")
				case len(strings.Fields(rest)) != 1:
					a.bad(pos, "ownership", "usage: //nomad:owner core|channel|shared|host")
				default:
					d, ok := parseDomain(rest)
					if !ok {
						a.bad(pos, "ownership", "unknown ownership domain "+strconvQuote(rest)+"; domains are core, channel, shared, host")
						break
					}
					if _, dup := a.owners[tn]; dup {
						a.bad(pos, "ownership", "duplicate //nomad:owner annotation on "+tn.Name())
						break
					}
					a.owners[tn] = ownerInfo{domain: d, pos: pos}
				}
			}
			if rest, ok := cutMarker(c.Text, ephMarker); ok {
				consumed[c] = true
				switch {
				case !isStruct || tn == nil:
					a.bad(pos, "statecover", "//nomad:ephemeral belongs on a struct or field declaration")
				case rest == "":
					a.bad(pos, "statecover", "//nomad:ephemeral needs a reason: //nomad:ephemeral <why this state may escape digests>")
				default:
					a.ephType[tn] = true
				}
			}
			if isMarker(c.Text, portMarker) {
				consumed[c] = true
				a.bad(pos, "ownership", "//nomad:port belongs on a function or method doc comment")
			}
		}
	}
	if !isStruct || tn == nil {
		return
	}
	if doc != nil && pooledDocMarker.MatchString(doc.Text()) {
		a.pooled[tn] = true
	}
	si := structInfo{tn: tn, pkg: p, pos: mod.Fset.Position(ts.Name.Pos())}
	for _, fl := range st.Fields.List {
		eph := a.scanFieldComments(mod, fl, tn, consumed)
		for _, nm := range fl.Names {
			var ft types.Type
			if v, ok := p.Info.Defs[nm].(*types.Var); ok {
				ft = v.Type()
			}
			si.fields = append(si.fields, fieldInfo{name: nm.Name, pos: mod.Fset.Position(nm.Pos()), ftype: ft})
			if eph {
				a.ephField[fieldKey{tn, nm.Name}] = true
			}
		}
	}
	a.structs = append(a.structs, si)
}

// scanFieldComments handles //nomad:ephemeral on a field's doc or trailing
// line comment and rejects the other markers there.
func (a *annotations) scanFieldComments(mod *Module, fl *ast.Field, tn *types.TypeName, consumed map[*ast.Comment]bool) bool {
	eph := false
	for _, grp := range []*ast.CommentGroup{fl.Doc, fl.Comment} {
		if grp == nil {
			continue
		}
		for _, c := range grp.List {
			pos := mod.Fset.Position(c.Pos())
			if rest, ok := cutMarker(c.Text, ephMarker); ok {
				consumed[c] = true
				if rest == "" {
					a.bad(pos, "statecover", "//nomad:ephemeral needs a reason: //nomad:ephemeral <why this state may escape digests>")
				} else {
					eph = true
				}
			}
			if isMarker(c.Text, ownerMarker) {
				consumed[c] = true
				a.bad(pos, "ownership", "//nomad:owner belongs on a struct type's doc comment, not a field")
			}
			if isMarker(c.Text, portMarker) {
				consumed[c] = true
				a.bad(pos, "ownership", "//nomad:port belongs on a function or method doc comment")
			}
		}
	}
	return eph
}

func (a *annotations) scanFuncDecl(mod *Module, p *Package, fd *ast.FuncDecl, consumed map[*ast.Comment]bool) {
	if fd.Doc == nil {
		return
	}
	for _, c := range fd.Doc.List {
		pos := mod.Fset.Position(c.Pos())
		if rest, ok := cutMarker(c.Text, portMarker); ok {
			consumed[c] = true
			if rest == "" {
				a.bad(pos, "ownership", "//nomad:port needs a reason: //nomad:port <why this crossing is mediated>")
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				a.ports[fn] = portInfo{reason: rest, pos: pos}
			}
		}
		if isMarker(c.Text, ownerMarker) {
			consumed[c] = true
			a.bad(pos, "ownership", "//nomad:owner belongs on a struct type's doc comment, not a function")
		}
		if isMarker(c.Text, ephMarker) {
			consumed[c] = true
			a.bad(pos, "statecover", "//nomad:ephemeral belongs on a struct or field declaration")
		}
	}
}
