package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Fake dependency packages for overlay tests: bodyless declarations
// type-check fine and keep the tests independent of stdlib sources.
var fakeStd = map[string]map[string]string{
	"time": {"time.go": `package time
type Time struct{}
func (t Time) Sub(u Time) Duration
func (t Time) IsZero() bool
type Duration int64
const (
	Nanosecond  Duration = 1
	Millisecond Duration = 1e6
	Second      Duration = 1e9
)
func Now() Time
func Since(t Time) Duration
func Sleep(d Duration)
`},
	"os": {"os.go": `package os
func Getenv(key string) string
func LookupEnv(key string) (string, bool)
func Environ() []string
`},
	"math/rand": {"rand.go": `package rand
func Intn(n int) int
func Int63() int64
`},
	"fmt": {"fmt.go": `package fmt
func Sprintf(format string, a ...any) string
func Println(a ...any) (int, error)
`},
	"sort": {"sort.go": `package sort
func Strings(x []string)
func Ints(x []int)
`},
	"m/internal/metrics": {"metrics.go": `package metrics
type Registry struct{}
type Histogram struct{}
func (r *Registry) Counter(name string) *Histogram
func (r *Registry) CounterFunc(name string, fn func() uint64)
func (r *Registry) GaugeFunc(name string, fn func() float64)
func (r *Registry) Histogram(name string) *Histogram
func (r *Registry) SeriesFunc(name string, fn func(now uint64) float64)
func (r *Registry) IntervalFunc(name string, prime func(now uint64), sample func(now uint64) float64)
`},
}

// snippetConfig treats m/model as the single model package.
func snippetConfig() Config {
	return Config{ModelPackages: []string{"model"}}
}

// lintSnippet type-checks src as package m/model plus any extra packages and
// runs the configured rules.
func lintSnippet(t *testing.T, src string, cfg Config, extra map[string]map[string]string) []Diagnostic {
	t.Helper()
	overlay := map[string]map[string]string{
		"m/model": {"m/model/model.go": src},
	}
	for ip, files := range fakeStd {
		overlay[ip] = files
	}
	for ip, files := range extra {
		overlay[ip] = files
	}
	mod, err := LoadOverlay("m", overlay)
	if err != nil {
		t.Fatalf("LoadOverlay: %v", err)
	}
	for _, p := range mod.Sorted() {
		for _, e := range p.TypeErrors {
			t.Fatalf("snippet does not type-check: %v", e)
		}
	}
	return Run(mod, cfg)
}

// rulesOf extracts the rule of each diagnostic, in order.
func rulesOf(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Rule
	}
	return out
}

// wantDiags asserts the exact sequence of (rule, line) pairs.
func wantDiags(t *testing.T, diags []Diagnostic, want ...[2]any) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(diags), diags, len(want))
	}
	for i, w := range want {
		if diags[i].Rule != w[0].(string) || diags[i].Pos.Line != w[1].(int) {
			t.Errorf("diag %d = %s at line %d, want %s at line %d (%s)",
				i, diags[i].Rule, diags[i].Pos.Line, w[0], w[1], diags[i].Message)
		}
	}
}

// TestRepoIsClean is the meta-test: nomadlint must exit clean on the module
// that ships it, with the committed inventory. Skipped under -short (it
// type-checks the whole module, including stdlib imports from source).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is not a -short test")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	mod, err := LoadDir(root)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	cfg := DefaultConfig()
	cfg.MetricInventory = EmbeddedInventory()
	cfg.OwnershipInventory = EmbeddedOwnershipInventory()
	diags := Run(mod, cfg)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestInventoryMatchesTree guards the committed inventory file itself: the
// lines collected from the live tree must equal the embedded file. Also not
// a -short test.
func TestInventoryMatchesTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is not a -short test")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadDir(root)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	got := strings.Join(InventoryLines(mod), "\n")
	want := strings.Join(EmbeddedInventory(), "\n")
	if got != want {
		t.Errorf("inventory drift; run `go run ./cmd/nomadlint -write-inventory ./...`\ncollected:\n%s\nembedded:\n%s", got, want)
	}
}

// TestOwnershipInventoryMatchesTree is the same freshness guard for the
// ownership inventory: the owner/port lines collected from the live tree
// must equal the embedded ownership_inventory.txt.
func TestOwnershipInventoryMatchesTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is not a -short test")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadDir(root)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	got := strings.Join(OwnershipInventoryLines(mod), "\n")
	want := strings.Join(EmbeddedOwnershipInventory(), "\n")
	if got != want {
		t.Errorf("ownership inventory drift; run `go run ./cmd/nomadlint -write-inventory ./...`\ncollected:\n%s\nembedded:\n%s", got, want)
	}
}
