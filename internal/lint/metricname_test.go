package lint

import (
	"strings"
	"testing"
)

func TestMetricNameResolution(t *testing.T) {
	overlay := map[string]map[string]string{
		"m/model": {"m/model/model.go": `package model

import (
	"fmt"

	"m/internal/metrics"
)

// helper forwards its name argument into the registry.
func helper(reg *metrics.Registry, name string) {
	reg.CounterFunc(name+".hits", func() uint64 { return 0 })
	reg.IntervalFunc(name+".rate", nil, nil)
}

func Register(reg *metrics.Registry, cores int) {
	reg.Counter("sim.events")
	for i := 0; i < cores; i++ {
		p := fmt.Sprintf("core.%d", i)
		reg.CounterFunc(p+".instructions", func() uint64 { return 0 })
	}
	helper(reg, "cache.llc")
	helper(reg, fmt.Sprintf("cache.l1.%d", cores))
}
`},
	}
	for ip, files := range fakeStd {
		if _, ok := overlay[ip]; !ok {
			overlay[ip] = files
		}
	}
	mod, err := LoadOverlay("m", overlay)
	if err != nil {
		t.Fatalf("LoadOverlay: %v", err)
	}
	lines := InventoryLines(mod)
	want := []string{
		"interval\tcache.l1.*.rate",
		"interval\tcache.llc.rate",
		"metric\tcache.l1.*.hits",
		"metric\tcache.llc.hits",
		"metric\tcore.*.instructions",
		"metric\tsim.events",
	}
	if strings.Join(lines, "\n") != strings.Join(want, "\n") {
		t.Errorf("inventory =\n%s\nwant:\n%s", strings.Join(lines, "\n"), strings.Join(want, "\n"))
	}
}

func TestMetricNameConvention(t *testing.T) {
	diags := lintSnippet(t, `package model

import "m/internal/metrics"

func dynName() string

func Register(reg *metrics.Registry) {
	reg.Counter("NoNamespace") // line 8: no dot
	reg.Counter("sim.BadCase") // line 9: uppercase segment
	reg.Counter("sim..double") // line 10: empty segment
	reg.Counter(dynName())     // line 11: fully dynamic
}
`, snippetConfig(), nil)
	wantDiags(t, diags,
		[2]any{"metricname", 8},
		[2]any{"metricname", 9},
		[2]any{"metricname", 10},
		[2]any{"metricname", 11},
	)
}

func TestMetricNameDuplicate(t *testing.T) {
	diags := lintSnippet(t, `package model

import "m/internal/metrics"

func Register(reg *metrics.Registry) {
	reg.Counter("sim.events")
	reg.Counter("sim.events") // line 7: duplicate in one function
	// Same name in the other namespace is legal: separate claim maps.
	reg.IntervalFunc("sim.events", nil, nil)
}
`, snippetConfig(), nil)
	wantDiags(t, diags, [2]any{"metricname", 7})
}

func TestMetricNameInventoryDiff(t *testing.T) {
	cfg := snippetConfig()
	cfg.MetricInventory = []string{
		"metric\tsim.events",
		"metric\tsim.retired", // stale: no longer registered
	}
	diags := lintSnippet(t, `package model

import "m/internal/metrics"

func Register(reg *metrics.Registry) {
	reg.Counter("sim.events")
	reg.Counter("sim.cycles") // line 7: not in inventory
}
`, cfg, nil)
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", diags)
	}
	var missing, stale bool
	for _, d := range diags {
		if d.Pos.Line == 7 && strings.Contains(d.Message, "not in the committed inventory") {
			missing = true
		}
		if strings.Contains(d.Message, `"metric sim.retired" which is no longer registered`) {
			stale = true
		}
	}
	if !missing || !stale {
		t.Errorf("want one missing + one stale diagnostic, got %v", diags)
	}
}
