package metrics

// EventKind identifies a typed trace event.
type EventKind uint8

// The event vocabulary covers the paper's mechanisms end to end: tag-miss
// handling in the OS front-end, PCSHR lifecycle in the back-end, DC fills,
// and DRAM row conflicts.
const (
	// EvTagMissBegin: a core entered the DC tag miss handler.
	// A = virtual page number, B = core ID.
	EvTagMissBegin EventKind = iota
	// EvTagMissEnd: the handler resumed the thread. A = VPN, B = latency
	// in cycles.
	EvTagMissEnd
	// EvPCSHRAlloc: a back-end command occupied a PCSHR. A = CFN (fills)
	// or PFN (writebacks), B = 0 for fill / 1 for writeback.
	EvPCSHRAlloc
	// EvPCSHRRetire: a PCSHR completed and was recycled. A/B as above.
	EvPCSHRRetire
	// EvPCSHROverflow: a data miss found every sub-entry busy.
	// A = CFN or PFN, B = sub-block index.
	EvPCSHROverflow
	// EvFillStart: a fill acquired a page copy buffer and began moving
	// data. A = CFN, B = PFN.
	EvFillStart
	// EvFillDone: a fill's 64 sub-block writes all completed. A = CFN,
	// B = PFN.
	EvFillDone
	// EvRowConflict: a DRAM burst closed an open row. A = byte address,
	// B = bank index.
	EvRowConflict

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"tag_miss_begin", "tag_miss_end",
	"pcshr_alloc", "pcshr_retire", "pcshr_overflow",
	"fill_start", "fill_done",
	"row_conflict",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "invalid"
}

// Event is one trace record. A and B are kind-specific operands (see the
// EventKind documentation).
type Event struct {
	Cycle uint64    `json:"cycle"`
	Kind  EventKind `json:"kind"`
	A     uint64    `json:"a"`
	B     uint64    `json:"b"`
}

// Trace is a fixed-capacity ring buffer of events. Emit overwrites the
// oldest record once full, so the trace always holds the most recent
// window of activity; Dropped reports how much history was lost. A nil
// *Trace is valid and ignores Emit, which lets components call it
// unconditionally on hot paths.
type Trace struct {
	buf []Event
	n   uint64 // total events emitted
}

func newTrace(depth int) *Trace {
	if depth <= 0 {
		depth = 4096
	}
	return &Trace{buf: make([]Event, depth)}
}

// Emit records one event. Nil-safe and allocation-free.
func (t *Trace) Emit(cycle uint64, kind EventKind, a, b uint64) {
	if t == nil {
		return
	}
	t.buf[t.n%uint64(len(t.buf))] = Event{Cycle: cycle, Kind: kind, A: a, B: b}
	t.n++
}

// Len returns the number of events currently held.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten.
func (t *Trace) Dropped() uint64 {
	if t == nil || t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Reset discards every event, keeping the storage (MarkROI calls it so
// exported traces cover the measured region instead of being diluted — or
// fully evicted — by warmup events).
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.n = 0
}

// Events returns the retained events in chronological order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	depth := uint64(len(t.buf))
	if t.n <= depth {
		return append([]Event(nil), t.buf[:t.n]...)
	}
	out := make([]Event, 0, depth)
	start := t.n % depth
	out = append(out, t.buf[start:]...)
	out = append(out, t.buf[:start]...)
	return out
}
