// Interval time-series telemetry: windowed columns of registry-derived
// values, sampled by the engine's interval hook (default every 100k
// simulated cycles). Unlike the per-window Series (8192-cycle samples of two
// whole-machine rates), timeline metrics are a configurable set of
// per-interval columns — IPC per core, DC hit rate, PCSHR occupancy
// high-water, bandwidth by category, row-conflict rate, MSHR occupancy —
// designed for Fig. 14-style transient analysis (burst phases, warm-up,
// tag-miss storms after MarkROI).
//
// Determinism: every value derives from simulated state only, interval
// boundaries are exact cycle counts re-anchored at MarkROI (the first window
// starts at ROI cycle 0), and the JSON encoding sorts map keys — two
// same-seed runs marshal byte-identical timelines.
package metrics

import "strings"

// intervalEntry is one registered timeline metric.
type intervalEntry struct {
	name string
	// prime re-baselines the closure's delta state at timeline start.
	prime func(now uint64)
	// sample returns the value of the window that just ended.
	sample func(now uint64) float64
	values []float64
}

// IntervalFunc registers a timeline metric sampled once per interval window
// while a timeline is active (BeginTimeline). prime is called at timeline
// start so delta-based closures can re-baseline; it may be nil. Names live
// in their own namespace (they appear under Snapshot.Timeline, not
// Counters) and are dropped silently when a filter (SetTimelineFilter) is
// set and no prefix matches — filtered metrics cost nothing.
func (r *Registry) IntervalFunc(name string, prime func(now uint64), sample func(now uint64) float64) {
	if r.inames == nil {
		r.inames = map[string]bool{}
	}
	if r.inames[name] {
		panic("metrics: duplicate interval metric " + name)
	}
	r.inames[name] = true
	if len(r.tlFilter) > 0 && !matchesPrefix(name, r.tlFilter) {
		return
	}
	r.intervals = append(r.intervals, intervalEntry{name: name, prime: prime, sample: sample})
}

func matchesPrefix(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// SetTimelineFilter restricts subsequent IntervalFunc registrations to names
// matching one of the given prefixes (empty keeps everything). Call it
// before components register, i.e. before RegisterMetrics runs.
func (r *Registry) SetTimelineFilter(prefixes []string) { r.tlFilter = prefixes }

// BeginTimeline starts (or restarts) timeline collection with the given
// interval, anchored at cycle now: the first window covers (now, now+every].
// Prior windows are discarded, so calling it at the ROI boundary aligns the
// timeline exactly with the measured region.
func (r *Registry) BeginTimeline(now, every uint64) {
	r.tlActive = true
	r.tlStart = now
	r.tlLast = now
	r.tlEvery = every
	r.tlCycles = r.tlCycles[:0]
	for i := range r.intervals {
		e := &r.intervals[i]
		e.values = e.values[:0]
		if e.prime != nil {
			e.prime(now)
		}
	}
}

// TimelineActive reports whether BeginTimeline has been called.
func (r *Registry) TimelineActive() bool { return r.tlActive }

// SampleInterval closes the interval window ending at cycle now: one value
// per registered timeline metric (after BeginTimeline) and one chained
// digest (after BeginDigests). The engine's interval hook calls it; each
// capture is independently a no-op until its Begin.
func (r *Registry) SampleInterval(now uint64) {
	if r.tlActive && now > r.tlLast {
		r.tlCycles = append(r.tlCycles, now-r.tlStart)
		for i := range r.intervals {
			e := &r.intervals[i]
			e.values = append(e.values, e.sample(now))
		}
		r.tlLast = now
	}
	r.sampleDigest(now)
}

// FinishTimeline closes the final (possibly partial) window at cycle now —
// timeline row and digest alike — so runs shorter than one interval still
// produce one of each. Call it once, after the simulation's last cycle and
// before Snapshot.
func (r *Registry) FinishTimeline(now uint64) { r.SampleInterval(now) }

// TimelineSnapshot is the collected timeline in serializable form: column
// per metric, one row per interval window. Cycles[i] is the END of window i
// relative to StartCycle (the MarkROI cycle), so the first full window ends
// at exactly Interval; a final partial window ends wherever the run did.
type TimelineSnapshot struct {
	Interval   uint64               `json:"interval"`
	StartCycle uint64               `json:"start_cycle"`
	Cycles     []uint64             `json:"cycles"`
	Metrics    map[string][]float64 `json:"metrics"`
}

// Windows returns the number of collected rows.
func (t *TimelineSnapshot) Windows() int {
	if t == nil {
		return 0
	}
	return len(t.Cycles)
}

// Metric returns one column by name, nil if absent.
func (t *TimelineSnapshot) Metric(name string) []float64 {
	if t == nil {
		return nil
	}
	return t.Metrics[name]
}

// timelineSnapshot renders the collected timeline, or nil when inactive.
func (r *Registry) timelineSnapshot() *TimelineSnapshot {
	if !r.tlActive {
		return nil
	}
	t := &TimelineSnapshot{
		Interval:   r.tlEvery,
		StartCycle: r.tlStart,
		Cycles:     append([]uint64(nil), r.tlCycles...),
		Metrics:    make(map[string][]float64, len(r.intervals)),
	}
	for i := range r.intervals {
		e := &r.intervals[i]
		t.Metrics[e.name] = append([]float64(nil), e.values...)
	}
	return t
}
