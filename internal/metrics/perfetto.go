// Perfetto/Chrome trace-event export: renders the event-trace ring and the
// span ring as duration/instant events that load directly in ui.perfetto.dev
// (or chrome://tracing).
//
// Layout: each run becomes a block of processes —
//
//	<run> cores     per-core tag-miss slices plus the sampled access spans
//	                (one lane group per core; overlapping accesses get
//	                separate lanes so slices nest instead of colliding)
//	<run> backend   PCSHR lifecycle lanes: occupancy slices with the data
//	                movement (fill start→done) nested, overflow instants
//	<run> hbm/ddr   per-bank row-conflict instants
//
// Timestamps: the trace-event "ts"/"dur" fields are nominally microseconds;
// the exporter writes raw CPU-cycle counts instead (1 displayed "us" = 1
// cycle). Cycles are the simulator's native unit and integers keep the
// export byte-identical across same-seed runs.
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sort"
)

// TraceDump captures a registry's rings at one instant, in exportable form.
// Timeline, when present, is additionally rendered as counter tracks.
type TraceDump struct {
	Events        []Event           `json:"events,omitempty"`
	EventsDropped uint64            `json:"events_dropped,omitempty"`
	Spans         []Span            `json:"spans,omitempty"`
	SpansDropped  uint64            `json:"spans_dropped,omitempty"`
	Timeline      *TimelineSnapshot `json:"timeline,omitempty"`
}

// Dump snapshots the attached rings and the interval timeline, or returns
// nil when neither tracing nor the timeline is on.
func (r *Registry) Dump() *TraceDump {
	tl := r.timelineSnapshot()
	if r.trace == nil && r.spans == nil && tl == nil {
		return nil
	}
	return &TraceDump{
		Events:        r.trace.Events(),
		EventsDropped: r.trace.Dropped(),
		Spans:         r.spans.Spans(),
		SpansDropped:  r.spans.Dropped(),
		Timeline:      tl,
	}
}

// PerfettoRun is one run's dump labelled for export (the label becomes the
// process-name prefix, e.g. "cact/NOMAD").
type PerfettoRun struct {
	Name string
	Dump *TraceDump
}

// traceEvent is one Chrome trace-event record.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   uint64 `json:"ts"`
	// Dur is a pointer so complete ("X") events always carry it — even
	// zero-length ones — while instants omit it entirely.
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// dur boxes a duration for traceEvent.Dur.
func dur(v uint64) *uint64 { return &v }

// perfettoFile is the JSON-object trace format ({"traceEvents": [...]}),
// which tolerates the metadata fields Perfetto ignores.
type perfettoFile struct {
	TraceEvents []traceEvent      `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData"`
}

// Process IDs within one run's block (runs are offset by pidStride).
const (
	pidCores    = 1
	pidBackend  = 2
	pidHBM      = 3
	pidDDR      = 4
	pidTimeline = 5
	pidStride   = 8
)

// Per-core tid layout inside the cores process: tid coreID+1 carries the
// tag-miss slices; access-span lanes start at spanLaneBase + core*spanLanes.
const (
	spanLaneBase = 1000
	spanLanes    = 64
)

// WritePerfetto renders the runs as one Chrome trace-event JSON document.
// The output is deterministic: identical dumps marshal byte-identically.
func WritePerfetto(w io.Writer, runs ...PerfettoRun) error {
	f := perfettoFile{
		TraceEvents: []traceEvent{},
		OtherData: map[string]string{
			"clock": "cpu-cycles",
			"note":  "ts/dur are CPU cycle counts (1 displayed us = 1 cycle)",
		},
	}
	for i, run := range runs {
		f.TraceEvents = append(f.TraceEvents, exportRun(i*pidStride, run)...)
	}
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// exportRun renders one run's block: metadata first (sorted by pid/tid),
// then content events in deterministic construction order.
func exportRun(base int, run PerfettoRun) []traceEvent {
	if run.Dump == nil {
		return nil
	}
	b := &runBuilder{base: base, threads: map[int]map[int]string{}}
	name := run.Name
	if name == "" {
		name = "run"
	}
	b.process(pidCores, name+" cores")
	b.process(pidBackend, name+" backend")
	b.process(pidHBM, name+" hbm banks")
	b.process(pidDDR, name+" ddr banks")
	if run.Dump.Timeline != nil {
		b.process(pidTimeline, name+" timeline")
	}

	b.exportEvents(run.Dump.Events)
	b.exportSpans(run.Dump.Spans)
	b.exportTimeline(run.Dump.Timeline)

	return append(b.metadata(), b.events...)
}

// exportTimeline renders the interval timeline as Perfetto counter tracks:
// one "C" (counter) series per metric, a point at each window boundary, so
// IPC, DC hit rate, PCSHR high-water, and bandwidth plot as graphs alongside
// the event and span tracks.
func (b *runBuilder) exportTimeline(tl *TimelineSnapshot) {
	if tl == nil || len(tl.Cycles) == 0 {
		return
	}
	names := make([]string, 0, len(tl.Metrics))
	for name := range tl.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		values := tl.Metrics[name]
		for i, end := range tl.Cycles {
			if i >= len(values) {
				break
			}
			b.emit(traceEvent{Name: name, Ph: "C",
				Ts: tl.StartCycle + end, Pid: pidTimeline,
				Args: map[string]any{"value": values[i]}})
		}
	}
}

type runBuilder struct {
	base      int
	events    []traceEvent
	processes []traceEvent
	threads   map[int]map[int]string // pid -> tid -> name
}

func (b *runBuilder) process(pid int, name string) {
	b.processes = append(b.processes, traceEvent{
		Name: "process_name", Ph: "M", Pid: b.base + pid,
		Args: map[string]any{"name": name},
	})
	b.threads[pid] = map[int]string{}
}

func (b *runBuilder) thread(pid, tid int, name string) {
	if _, ok := b.threads[pid][tid]; !ok {
		b.threads[pid][tid] = name
	}
}

func (b *runBuilder) emit(ev traceEvent) {
	ev.Pid += b.base
	b.events = append(b.events, ev)
}

// metadata renders process/thread name records sorted by (pid, tid).
func (b *runBuilder) metadata() []traceEvent {
	out := append([]traceEvent(nil), b.processes...)
	pids := make([]int, 0, len(b.threads))
	for pid := range b.threads {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		tids := make([]int, 0, len(b.threads[pid]))
		for tid := range b.threads[pid] {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			out = append(out, traceEvent{
				Name: "thread_name", Ph: "M", Pid: b.base + pid, Tid: tid,
				Args: map[string]any{"name": b.threads[pid][tid]},
			})
		}
	}
	return out
}

// exportEvents renders the typed event ring: tag-miss pairs become per-core
// slices, the PCSHR lifecycle becomes occupancy lanes with fill movement
// nested, and row conflicts become per-bank instants.
func (b *runBuilder) exportEvents(events []Event) {
	type openMiss struct {
		start uint64
		core  int
	}
	tagOpen := map[uint64]openMiss{} // vpn -> begin

	// PCSHR lifecycle intervals, collected then lane-assigned.
	type pcshrKey struct {
		frame uint64
		wb    bool
	}
	type pcshrSlice struct {
		key        pcshrKey
		start, end uint64
		open       bool
		peer       uint64 // the other frame number (PFN for fills)
		fillStart  uint64
		fillEnd    uint64
		hasFill    bool
	}
	var slices []pcshrSlice
	openSlice := map[pcshrKey]int{} // key -> index into slices

	var maxCycle uint64
	for _, ev := range events {
		if ev.Cycle > maxCycle {
			maxCycle = ev.Cycle
		}
	}

	for _, ev := range events {
		switch ev.Kind {
		case EvTagMissBegin:
			tagOpen[ev.A] = openMiss{start: ev.Cycle, core: int(ev.B)}
		case EvTagMissEnd:
			begin, ok := tagOpen[ev.A]
			if !ok {
				// The begin record was overwritten by the ring; keep
				// the resume visible as an instant.
				b.emit(traceEvent{Name: "tag miss end", Ph: "i", S: "t",
					Ts: ev.Cycle, Pid: pidCores, Tid: 1,
					Args: map[string]any{"vpn": ev.A, "latency_cycles": ev.B}})
				continue
			}
			delete(tagOpen, ev.A)
			tid := begin.core + 1
			b.thread(pidCores, tid, "core "+itoa(begin.core)+" tag-miss")
			b.emit(traceEvent{Name: "tag miss", Ph: "X",
				Ts: begin.start, Dur: dur(ev.Cycle - begin.start),
				Pid: pidCores, Tid: tid,
				Args: map[string]any{"vpn": ev.A, "latency_cycles": ev.B}})
		case EvPCSHRAlloc:
			k := pcshrKey{frame: ev.A, wb: ev.B == 1}
			openSlice[k] = len(slices)
			slices = append(slices, pcshrSlice{key: k, start: ev.Cycle, open: true})
		case EvPCSHRRetire:
			k := pcshrKey{frame: ev.A, wb: ev.B == 1}
			if i, ok := openSlice[k]; ok {
				slices[i].end = ev.Cycle
				slices[i].open = false
				delete(openSlice, k)
			}
		case EvFillStart:
			if i, ok := openSlice[pcshrKey{frame: ev.A}]; ok {
				slices[i].fillStart = ev.Cycle
				slices[i].hasFill = true
				slices[i].peer = ev.B
			}
		case EvFillDone:
			if i, ok := openSlice[pcshrKey{frame: ev.A}]; ok && slices[i].hasFill {
				slices[i].fillEnd = ev.Cycle
			}
		case EvPCSHROverflow:
			b.thread(pidBackend, 0, "overflow")
			b.emit(traceEvent{Name: "sub-entry overflow", Ph: "i", S: "t",
				Ts: ev.Cycle, Pid: pidBackend, Tid: 0,
				Args: map[string]any{"frame": ev.A, "sub_block": ev.B}})
		case EvRowConflict:
			dev, ch, bank := int(ev.B>>32), int(ev.B>>16)&0xffff, int(ev.B)&0xffff
			pid := pidHBM
			if dev == 1 {
				pid = pidDDR
			}
			tid := ch<<8 | bank + 1
			b.thread(pid, tid, "ch"+itoa(ch)+" bank"+itoa(bank))
			b.emit(traceEvent{Name: "row conflict", Ph: "i", S: "t",
				Ts: ev.Cycle, Pid: pid, Tid: tid,
				Args: map[string]any{"addr": ev.A}})
		}
	}

	// Unfinished tag misses: visible as instants at their begin cycle.
	vpns := make([]uint64, 0, len(tagOpen))
	for vpn := range tagOpen {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		o := tagOpen[vpn]
		tid := o.core + 1
		b.thread(pidCores, tid, "core "+itoa(o.core)+" tag-miss")
		b.emit(traceEvent{Name: "tag miss (open)", Ph: "i", S: "t",
			Ts: o.start, Pid: pidCores, Tid: tid,
			Args: map[string]any{"vpn": vpn}})
	}

	// Lane-assign the PCSHR slices (greedy interval packing in start
	// order, which is how the ring recorded them).
	var laneBusyUntil []uint64
	for _, s := range slices {
		end := s.end
		if s.open {
			end = maxCycle
		}
		lane := -1
		for l, busy := range laneBusyUntil {
			if busy <= s.start {
				lane = l
				break
			}
		}
		if lane == -1 {
			lane = len(laneBusyUntil)
			laneBusyUntil = append(laneBusyUntil, 0)
		}
		laneBusyUntil[lane] = end
		tid := lane + 1
		b.thread(pidBackend, tid, "pcshr lane "+itoa(lane))
		name := "fill"
		args := map[string]any{"cfn": s.key.frame}
		if s.key.wb {
			name = "writeback"
			args = map[string]any{"pfn": s.key.frame}
		}
		if s.open {
			args["truncated"] = true
		}
		b.emit(traceEvent{Name: name, Ph: "X",
			Ts: s.start, Dur: dur(end - s.start), Pid: pidBackend, Tid: tid, Args: args})
		if s.hasFill {
			fe := s.fillEnd
			if fe == 0 {
				fe = end
			}
			b.emit(traceEvent{Name: "page copy", Ph: "X",
				Ts: s.fillStart, Dur: dur(fe - s.fillStart), Pid: pidBackend, Tid: tid,
				Args: map[string]any{"cfn": s.key.frame, "pfn": s.peer}})
		}
	}
}

// exportSpans renders the sampled access spans: the spans of one access (one
// SpanID) share a lane of their core's lane group, lanes packed greedily so
// concurrent sampled accesses never interleave on one track.
func (b *runBuilder) exportSpans(spans []Span) {
	if len(spans) == 0 {
		return
	}
	// Group by access.
	type access struct {
		id         uint64
		core       int32
		start, end uint64
		spans      []Span
	}
	idx := map[uint64]int{}
	var accesses []access
	for _, s := range spans {
		i, ok := idx[s.ID]
		if !ok {
			i = len(accesses)
			idx[s.ID] = i
			accesses = append(accesses, access{id: s.ID, core: s.Core,
				start: math.MaxUint64})
		}
		a := &accesses[i]
		a.spans = append(a.spans, s)
		if s.Start < a.start {
			a.start = s.Start
		}
		if s.End > a.end {
			a.end = s.End
		}
	}
	sort.SliceStable(accesses, func(i, j int) bool {
		if accesses[i].start != accesses[j].start {
			return accesses[i].start < accesses[j].start
		}
		return accesses[i].id < accesses[j].id
	})

	// Per-core greedy lane packing.
	lanes := map[int32][]uint64{} // core -> lane busy-until
	for _, a := range accesses {
		busy := lanes[a.core]
		lane := -1
		for l, until := range busy {
			if until <= a.start {
				lane = l
				break
			}
		}
		if lane == -1 {
			lane = len(busy)
			busy = append(busy, 0)
		}
		busy[lane] = a.end
		lanes[a.core] = busy
		if lane >= spanLanes {
			lane = spanLanes - 1 // cap; later slices may overlap visually
		}
		tid := spanLaneBase + int(a.core)*spanLanes + lane
		b.thread(pidCores, tid, "core "+itoa(int(a.core))+" access["+itoa(lane)+"]")
		// Longest-first so nested slices render inside their parents.
		sort.SliceStable(a.spans, func(i, j int) bool {
			si, sj := a.spans[i], a.spans[j]
			if si.Start != sj.Start {
				return si.Start < sj.Start
			}
			di, dj := si.End-si.Start, sj.End-sj.Start
			if di != dj {
				return di > dj
			}
			return si.Kind < sj.Kind
		})
		for _, s := range a.spans {
			b.emit(traceEvent{Name: s.Kind.String(), Ph: "X",
				Ts: s.Start, Dur: dur(s.End - s.Start), Pid: pidCores, Tid: tid,
				Args: map[string]any{"span_id": s.ID}})
		}
	}
}

// itoa is a tiny strconv.Itoa for non-negative ints (avoids the import in
// the hot-free export path; determinism over micro-elegance).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	if n < 0 {
		return "-" + itoa(-n)
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
