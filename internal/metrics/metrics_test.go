package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCounterAndFunc(t *testing.T) {
	r := NewRegistry(64)
	c := r.Counter("a.owned")
	var raw uint64
	r.CounterFunc("a.lazy", func() uint64 { return raw })
	c.Inc()
	c.Add(4)
	raw = 7
	s := r.Snapshot(10)
	if s.Counter("a.owned") != 5 || s.Counter("a.lazy") != 7 {
		t.Fatalf("counters wrong: %v", s.Counters)
	}
	if s.Counter("missing") != 0 {
		t.Fatal("missing counter not zero")
	}
	if s.Cycles != 10 || s.Window != 64 {
		t.Fatalf("snapshot metadata wrong: %+v", s)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry(1)
	r.Counter("x")
	r.Counter("x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(1)
	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 1, 3, 400, 400, 1 << 40} {
		h.Observe(v)
	}
	hs := r.Snapshot(1).Histograms["lat"]
	if hs.Count != 7 || hs.Min != 0 || hs.Max != 1<<40 {
		t.Fatalf("histogram summary wrong: %+v", hs)
	}
	want := map[uint64]uint64{0: 1, 1: 2, 2: 1, 256: 2, 1 << 40: 1} // keyed by bucket Lo
	for _, b := range hs.Buckets {
		if want[b.Lo] != b.Count {
			t.Fatalf("bucket lo=%d count=%d, want %d", b.Lo, b.Count, want[b.Lo])
		}
		if b.Lo != 0 && (b.Lo > b.Hi || b.Hi >= 2*b.Lo) {
			t.Fatalf("bucket bounds wrong: %+v", b)
		}
		delete(want, b.Lo)
	}
	if len(want) != 0 {
		t.Fatalf("buckets missing: %v", want)
	}
	// Nil histogram is a no-op, not a crash.
	var nh *Histogram
	nh.Observe(5)
	if nh.Count() != 0 || nh.Mean() != 0 {
		t.Fatal("nil histogram misbehaved")
	}
}

func TestMarkROIDiffs(t *testing.T) {
	r := NewRegistry(8)
	c := r.Counter("n")
	h := r.Histogram("h")
	r.SeriesFunc("s", func(now uint64) float64 { return float64(now) })
	c.Add(10)
	h.Observe(100)
	r.Sample(8)
	r.MarkROI(16)
	c.Add(3)
	h.Observe(7)
	r.Sample(24)
	s := r.Snapshot(32)
	if s.Cycles != 16 {
		t.Fatalf("ROI cycles = %d, want 16", s.Cycles)
	}
	if s.Counter("n") != 3 {
		t.Fatalf("counter not diffed: %d", s.Counter("n"))
	}
	hs := s.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 7 {
		t.Fatalf("histogram not diffed: %+v", hs)
	}
	if hs.Min != 7 || hs.Max != 100 {
		t.Fatalf("histogram min/max should span the whole run: %+v", hs)
	}
	se := s.Series["s"]
	if len(se.Values) != 1 || se.Cycles[0] != 24 {
		t.Fatalf("pre-mark samples not trimmed: %+v", se)
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry(1)
	v := 1.5
	r.GaugeFunc("g", func() float64 { return v })
	r.MarkROI(0)
	v = 2.5
	if got := r.Snapshot(1).Gauge("g"); got != 2.5 {
		t.Fatalf("gauge = %v, want instantaneous 2.5", got)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRegistry(4)
		r.Counter("z.last").Add(3)
		r.Counter("a.first").Add(1)
		r.GaugeFunc("m.gauge", func() float64 { return 0.25 })
		r.Histogram("h").Observe(9)
		r.SeriesFunc("sr", func(now uint64) float64 { return 2 })
		r.Sample(4)
		b, err := json.Marshal(r.Snapshot(8))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", a, b)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewRegistry(1)
	tr := r.EnableTrace(4)
	if r.Trace() != tr {
		t.Fatal("trace not attached")
	}
	for i := uint64(0); i < 6; i++ {
		tr.Emit(i, EvRowConflict, i, 0)
	}
	if tr.Len() != 4 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 4/2", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if ev.Cycle != uint64(i)+2 {
			t.Fatalf("events out of order: %+v", evs)
		}
	}
	var nt *Trace
	nt.Emit(1, EvFillStart, 0, 0) // must not crash
	if nt.Len() != 0 || nt.Events() != nil || nt.Dropped() != 0 {
		t.Fatal("nil trace misbehaved")
	}
	if EvTagMissBegin.String() != "tag_miss_begin" || EventKind(200).String() != "invalid" {
		t.Fatal("event kind names wrong")
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		b      int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{10, 512, 1023},
		{64, 1 << 63, ^uint64(0)},
	}
	for _, c := range cases {
		lo, hi := bucketBounds(c.b)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("bucketBounds(%d) = %d..%d, want %d..%d", c.b, lo, hi, c.lo, c.hi)
		}
	}
}

func TestCounterNamesSorted(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("b")
	r.Counter("a")
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestTraceRingExactCapacity(t *testing.T) {
	tr := newTrace(4)
	for i := uint64(0); i < 4; i++ {
		tr.Emit(i, EvRowConflict, i, 0)
	}
	// Exactly at capacity: everything retained, nothing dropped.
	if tr.Len() != 4 || tr.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 4/0", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if ev.Cycle != uint64(i) {
			t.Fatalf("events reordered at capacity boundary: %+v", evs)
		}
	}
	// One past capacity: the oldest entry is the (single) drop, and the
	// rotation copy stays chronological across the wrap point.
	tr.Emit(4, EvRowConflict, 4, 0)
	if tr.Len() != 4 || tr.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 4/1", tr.Len(), tr.Dropped())
	}
	for i, ev := range tr.Events() {
		if ev.Cycle != uint64(i)+1 {
			t.Fatalf("events out of order after wrap: %+v", tr.Events())
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("reset did not clear the ring")
	}
}

func TestSpanRing(t *testing.T) {
	r := NewRegistry(1)
	sr := r.EnableSpans(2)
	if r.Spans() != sr {
		t.Fatal("span ring not attached")
	}
	for i := uint64(1); i <= 3; i++ {
		sr.Emit(Span{ID: i, Kind: SpanLoad, Start: i, End: i + 10})
	}
	if sr.Len() != 2 || sr.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 2/1", sr.Len(), sr.Dropped())
	}
	spans := sr.Spans()
	if spans[0].ID != 2 || spans[1].ID != 3 {
		t.Fatalf("wrap order wrong: %+v", spans)
	}
	var ns *SpanRing
	ns.Emit(Span{}) // must not crash
	if ns.Len() != 0 || ns.Spans() != nil || ns.Dropped() != 0 {
		t.Fatal("nil span ring misbehaved")
	}
	if SpanPCSHRWait.String() != "pcshr_wait" || SpanKind(200).String() != "invalid" {
		t.Fatal("span kind names wrong")
	}
}

func TestMarkROIResetsRings(t *testing.T) {
	r := NewRegistry(1)
	tr := r.EnableTrace(8)
	sr := r.EnableSpans(8)
	for i := uint64(0); i < 12; i++ {
		tr.Emit(i, EvRowConflict, i, 0)
		sr.Emit(Span{ID: i + 1, Kind: SpanLoad, Start: i, End: i + 1})
	}
	r.MarkROI(100)
	if tr.Len() != 0 || tr.Dropped() != 0 || sr.Len() != 0 || sr.Dropped() != 0 {
		t.Fatal("MarkROI did not clear the trace rings")
	}
	// Post-ROI captures surface in the snapshot summary.
	tr.Emit(101, EvTagMissBegin, 7, 0)
	sr.Emit(Span{ID: 9, Kind: SpanDDR, Start: 101, End: 140})
	s := r.Snapshot(200)
	if s.Trace == nil {
		t.Fatal("snapshot missing trace summary")
	}
	if s.Trace.Events != 1 || s.Trace.Spans != 1 ||
		s.Trace.EventsDropped != 0 || s.Trace.SpansDropped != 0 {
		t.Fatalf("trace summary = %+v", s.Trace)
	}
}
