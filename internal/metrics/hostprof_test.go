package metrics

import (
	"testing"
	"time"
)

func TestHostProfilerNilSafe(t *testing.T) {
	var p *HostProfiler
	p.MaybeSample(1, 1) // must not panic
	if r := p.Finish(1, 1); r != nil {
		t.Fatalf("nil profiler produced a report: %+v", r)
	}
}

func TestHostProfilerFinish(t *testing.T) {
	p := NewHostProfiler(time.Hour) // period long enough that no sample fires
	r := p.Finish(320_000, 12_345)
	if r == nil {
		t.Fatal("no report")
	}
	if r.SimCycles != 320_000 || r.EventsExecuted != 12_345 {
		t.Fatalf("cycles/events = %d/%d", r.SimCycles, r.EventsExecuted)
	}
	if r.WallSeconds <= 0 {
		t.Fatalf("wall = %v", r.WallSeconds)
	}
	if r.SimCyclesPerSec <= 0 || r.EventsPerSec <= 0 {
		t.Fatalf("rates = %v / %v", r.SimCyclesPerSec, r.EventsPerSec)
	}
	if r.PeakHeapInUseBytes == 0 {
		t.Fatal("peak heap not captured")
	}
	if len(r.Samples) != 0 {
		t.Fatalf("samples fired despite hour-long period: %d", len(r.Samples))
	}
}

func TestHostProfilerSamples(t *testing.T) {
	p := NewHostProfiler(time.Nanosecond)
	time.Sleep(time.Millisecond)
	p.MaybeSample(100, 10)
	time.Sleep(time.Millisecond)
	p.MaybeSample(300, 25)
	r := p.Finish(400, 30)
	if len(r.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(r.Samples))
	}
	s := r.Samples[1]
	if s.SimCycles != 300 || s.Events != 25 {
		t.Fatalf("second sample = %+v", s)
	}
	if s.CyclesPerSec <= 0 {
		t.Fatalf("rate = %v", s.CyclesPerSec)
	}
	if s.WallSeconds <= r.Samples[0].WallSeconds {
		t.Fatal("wall time not monotonic across samples")
	}
}

func TestHostProfilerThrottles(t *testing.T) {
	p := NewHostProfiler(time.Hour)
	for i := 0; i < 100; i++ {
		p.MaybeSample(uint64(i), uint64(i))
	}
	if r := p.Finish(100, 100); len(r.Samples) != 0 {
		t.Fatalf("throttle let %d samples through", len(r.Samples))
	}
}
