// Package metrics is the simulator's observability layer: a stats registry
// of named counters, gauges, log2-bucket histograms, and cycle-windowed time
// series, plus an optional ring buffer of typed trace events.
//
// Design constraints, in order:
//
//  1. Zero allocation on simulation hot paths. Components either keep plain
//     uint64 fields and expose them lazily (CounterFunc / GaugeFunc read the
//     live value only when a snapshot or sample is taken), or hold a
//     *Histogram / *Trace whose Observe / Emit writes into fixed
//     pre-allocated storage.
//  2. Determinism. A snapshot of a deterministic simulation is itself
//     deterministic: map-free registration order, no wall-clock anywhere,
//     and encoding/json's sorted map keys make two same-seed runs
//     byte-identical when marshalled.
//  3. Stable names. Every metric is registered under a dotted lowercase
//     path (see DESIGN.md, "Metric naming scheme"); names are part of the
//     public API surfaced through nomad.Snapshot.
//
// The registry separates warmup from the measured region of interest:
// MarkROI captures a baseline, and Snapshot reports counter and histogram
// deltas against it (gauges are instantaneous; series keep only post-mark
// samples).
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
)

// Counter is a registry-owned monotonic counter. The zero value is not
// usable; obtain one from Registry.Counter.
type Counter struct {
	v uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Histogram accumulates uint64 observations into fixed log2 buckets:
// bucket 0 holds the value 0 and bucket i (1..64) holds values in
// [2^(i-1), 2^i). Observe is allocation-free. Min and Max span the whole
// run (they are not rewound by MarkROI); counts and sums are.
type Histogram struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [65]uint64
}

// Observe records one value. A nil receiver is a no-op so components can
// call unconditionally whether or not metrics are wired.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// histBase is the MarkROI baseline of one histogram.
type histBase struct {
	count   uint64
	sum     uint64
	buckets [65]uint64
}

type counterEntry struct {
	name string
	read func() uint64
}

type gaugeEntry struct {
	name string
	read func() float64
}

type histEntry struct {
	name string
	h    *Histogram
}

type seriesEntry struct {
	name   string
	sample func(now uint64) float64
	cycles []uint64
	values []float64
}

// Registry holds every metric of one simulated machine. It is not safe for
// concurrent use; each Machine owns one (simulations are single-threaded).
type Registry struct {
	counters []counterEntry
	gauges   []gaugeEntry
	hists    []histEntry
	series   []seriesEntry
	names    map[string]bool
	trace    *Trace
	spans    *SpanRing
	window   uint64

	// Interval timeline state (timeline.go): registered columns, the name
	// namespace, the registration filter, and the collected windows.
	intervals []intervalEntry
	inames    map[string]bool
	tlFilter  []string
	tlActive  bool
	tlStart   uint64
	tlLast    uint64
	tlEvery   uint64
	tlCycles  []uint64

	// Interval digest-chain state (digest.go): sorted fold orders fixed at
	// BeginDigests, the schema digest, and the collected chain.
	digActive     bool
	digStart      uint64
	digLast       uint64
	digEvery      uint64
	digSchema     uint64
	digCycles     []uint64
	digests       []uint64
	digCounterIdx []int
	digGaugeIdx   []int
	digHistIdx    []int

	marked       bool
	markCycle    uint64
	baseCounters []uint64
	baseHists    []histBase
	markSample   []int // per-series index of the first post-mark sample
}

// NewRegistry returns an empty registry with the given sampling window (in
// cycles; informational, recorded into snapshots).
func NewRegistry(window uint64) *Registry {
	return &Registry{names: map[string]bool{}, window: window}
}

// Window returns the sampling window the registry was built with.
func (r *Registry) Window() uint64 { return r.window }

func (r *Registry) claim(name string) {
	if r.names[name] {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.names[name] = true
}

// Counter registers and returns a registry-owned counter.
func (r *Registry) Counter(name string) *Counter {
	r.claim(name)
	c := &Counter{}
	r.counters = append(r.counters, counterEntry{name: name, read: c.Value})
	return c
}

// CounterFunc registers a counter whose value is read lazily from fn — the
// zero-hot-path-cost way to expose a component's existing uint64 field.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.claim(name)
	r.counters = append(r.counters, counterEntry{name: name, read: fn})
}

// GaugeFunc registers an instantaneous value read lazily from fn. Gauges
// are not rewound by MarkROI.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.claim(name)
	r.gauges = append(r.gauges, gaugeEntry{name: name, read: fn})
}

// Histogram registers and returns a log2-bucket histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.claim(name)
	h := &Histogram{}
	r.hists = append(r.hists, histEntry{name: name, h: h})
	return h
}

// SeriesFunc registers a time series sampled once per window by Sample. fn
// receives the current cycle and returns the point value (typically a rate
// over the elapsed window, computed from a delta the closure tracks).
func (r *Registry) SeriesFunc(name string, fn func(now uint64) float64) {
	r.claim(name)
	r.series = append(r.series, seriesEntry{name: name, sample: fn})
}

// Sample appends one point to every registered series. The simulation
// engine calls it once per sampling window.
func (r *Registry) Sample(now uint64) {
	for i := range r.series {
		s := &r.series[i]
		s.cycles = append(s.cycles, now)
		s.values = append(s.values, s.sample(now))
	}
}

// EnableTrace attaches a ring buffer of depth events and returns it.
// Calling it again replaces the buffer.
func (r *Registry) EnableTrace(depth int) *Trace {
	r.trace = newTrace(depth)
	return r.trace
}

// Trace returns the attached event trace, or nil.
func (r *Registry) Trace() *Trace { return r.trace }

// EnableSpans attaches a ring buffer of depth sampled-access spans and
// returns it. Calling it again replaces the buffer.
func (r *Registry) EnableSpans(depth int) *SpanRing {
	r.spans = NewSpanRing(depth)
	return r.spans
}

// Spans returns the attached span ring, or nil.
func (r *Registry) Spans() *SpanRing { return r.spans }

// MarkROI captures the current counter and histogram state as the baseline
// that Snapshot diffs against, discards series samples taken so far, and
// resets the event-trace and span rings so exported traces cover the
// measured region only. Call it at the warmup / region-of-interest boundary.
func (r *Registry) MarkROI(now uint64) {
	r.trace.Reset()
	r.spans.Reset()
	if r.tlActive {
		// Re-anchor an active timeline so its first window starts at the
		// ROI boundary (the engine hook is re-anchored by the caller).
		r.BeginTimeline(now, r.tlEvery)
	}
	if r.digActive {
		// Same for an active digest chain: warmup windows are discarded so
		// the chain covers exactly the measured region.
		r.BeginDigests(now, r.digEvery)
	}
	r.marked = true
	r.markCycle = now
	r.baseCounters = make([]uint64, len(r.counters))
	for i, c := range r.counters {
		r.baseCounters[i] = c.read()
	}
	r.baseHists = make([]histBase, len(r.hists))
	for i, he := range r.hists {
		r.baseHists[i] = histBase{count: he.h.count, sum: he.h.sum, buckets: he.h.buckets}
	}
	r.markSample = make([]int, len(r.series))
	for i := range r.series {
		r.markSample[i] = len(r.series[i].cycles)
	}
}

// Snapshot captures every metric at cycle now, as a delta against the
// MarkROI baseline (or since construction if MarkROI was never called).
// Counters and histogram counts/sums/buckets are deltas; gauges and
// histogram min/max are instantaneous whole-run values.
func (r *Registry) Snapshot(now uint64) *Snapshot {
	s := &Snapshot{
		Cycles:   now - r.markCycle,
		Window:   r.window,
		Counters: make(map[string]uint64, len(r.counters)),
		Timeline: r.timelineSnapshot(),
		Digests:  r.digestSnapshot(),
	}
	if r.trace != nil || r.spans != nil {
		s.Trace = &TraceSummary{
			Events:        uint64(r.trace.Len()),
			EventsDropped: r.trace.Dropped(),
			Spans:         uint64(r.spans.Len()),
			SpansDropped:  r.spans.Dropped(),
		}
	}
	for i, c := range r.counters {
		v := c.read()
		if r.marked {
			v -= r.baseCounters[i]
		}
		s.Counters[c.name] = v
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for _, g := range r.gauges {
			s.Gauges[g.name] = g.read()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for i, he := range r.hists {
			s.Histograms[he.name] = r.histSnapshot(i, he.h)
		}
	}
	if len(r.series) > 0 {
		s.Series = make(map[string]SeriesSnapshot, len(r.series))
		for i := range r.series {
			se := &r.series[i]
			from := 0
			if r.marked {
				from = r.markSample[i]
			}
			s.Series[se.name] = SeriesSnapshot{
				Window: r.window,
				Cycles: append([]uint64(nil), se.cycles[from:]...),
				Values: append([]float64(nil), se.values[from:]...),
			}
		}
	}
	return s
}

func (r *Registry) histSnapshot(i int, h *Histogram) HistogramSnapshot {
	var base histBase
	if r.marked {
		base = r.baseHists[i]
	}
	hs := HistogramSnapshot{
		Count: h.count - base.count,
		Sum:   h.sum - base.sum,
		Min:   h.min,
		Max:   h.max,
	}
	for b := 0; b < len(h.buckets); b++ {
		n := h.buckets[b] - base.buckets[b]
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(b)
		hs.Buckets = append(hs.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
	}
	return hs
}

// bucketBounds returns the inclusive value range of log2 bucket b.
func bucketBounds(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 0
	}
	lo = uint64(1) << (b - 1)
	if b == 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1)<<b - 1
}

// CounterNames returns all registered counter names, sorted (tests,
// documentation tooling).
func (r *Registry) CounterNames() []string {
	names := make([]string, len(r.counters))
	for i, c := range r.counters {
		names[i] = c.name
	}
	sort.Strings(names)
	return names
}
