// Host self-profiling: how fast is the *simulator* running? A HostProfiler
// samples wall-clock simulation throughput (simulated cycles/sec, engine
// events/sec), Go heap-in-use, and cumulative GC pause time while a machine
// runs, and condenses them into a HostReport.
//
// Everything here reads the wall clock and runtime memory statistics, so a
// HostReport is inherently NON-deterministic. It is therefore kept out of
// the metrics Snapshot (which must marshal byte-identically across same-seed
// runs) and attached to results only when self-profiling is explicitly
// enabled.
package metrics

import (
	"runtime"
	"time"
)

// HostSample is one point of the self-profiling time series.
type HostSample struct {
	// WallSeconds since profiling started.
	WallSeconds float64 `json:"wall_seconds"`
	// SimCycles / Events are cumulative simulated cycles and engine events.
	SimCycles uint64 `json:"sim_cycles"`
	Events    uint64 `json:"events"`
	// CyclesPerSec / EventsPerSec are rates over the elapsed sample window.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	// HeapInUseBytes is runtime heap-in-use at the sample.
	HeapInUseBytes uint64 `json:"heap_in_use_bytes"`
	// GCPauseTotalNs / NumGC are cumulative since process start.
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	NumGC          uint32 `json:"num_gc"`
}

// HostReport summarizes one run's host-side performance.
type HostReport struct {
	WallSeconds     float64 `json:"wall_seconds"`
	SimCycles       uint64  `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	EventsExecuted  uint64  `json:"events_executed"`
	EventsPerSec    float64 `json:"events_per_sec"`
	// PeakHeapInUseBytes is the largest heap-in-use observed at any sample.
	PeakHeapInUseBytes uint64 `json:"peak_heap_in_use_bytes"`
	// GCPauses / GCPauseTotalNs cover the profiled span only.
	GCPauses       uint32 `json:"gc_pauses"`
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	// SkippedCycles / Jumps report the engine's idle-cycle fast-forward
	// effectiveness (the sim.skipped_cycles and sim.jumps readings): cycles
	// bulk-advanced without stepping, and the jumps that advanced them.
	// They live here rather than in the metrics snapshot because they
	// differ between fast-forward on and off, while snapshots are required
	// to stay byte-identical across the two. SkippedCycles/SimCycles is the
	// run's skip ratio. The caller fills them in (the profiler itself never
	// touches engine internals).
	SkippedCycles uint64 `json:"skipped_cycles"`
	Jumps         uint64 `json:"jumps"`
	// Samples is the periodic capture (empty for very short runs).
	Samples []HostSample `json:"samples,omitempty"`
}

// HostProfiler collects HostSamples while a simulation runs. It is owned by
// one machine and is not safe for concurrent use.
type HostProfiler struct {
	start      time.Time
	lastSample time.Time
	lastCycles uint64
	lastEvents uint64
	minPeriod  time.Duration
	startGCNs  uint64
	startNumGC uint32
	peakHeap   uint64
	samples    []HostSample
}

// DefaultHostSamplePeriod spaces host samples far enough apart that
// runtime.ReadMemStats (a brief stop-the-world) stays invisible in the
// throughput numbers it is measuring.
const DefaultHostSamplePeriod = 100 * time.Millisecond

// NewHostProfiler starts profiling now. minPeriod bounds the sampling rate
// (0 selects DefaultHostSamplePeriod).
func NewHostProfiler(minPeriod time.Duration) *HostProfiler {
	if minPeriod <= 0 {
		minPeriod = DefaultHostSamplePeriod
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now := time.Now()
	return &HostProfiler{
		start:      now,
		lastSample: now,
		minPeriod:  minPeriod,
		startGCNs:  ms.PauseTotalNs,
		startNumGC: ms.NumGC,
		peakHeap:   ms.HeapInuse,
	}
}

// MaybeSample records one sample if at least minPeriod elapsed since the
// last; callers invoke it from their run loop at simulation-chunk
// granularity. simCycles and events are the engine's cumulative counts.
func (p *HostProfiler) MaybeSample(simCycles, events uint64) {
	if p == nil {
		return
	}
	now := time.Now()
	dt := now.Sub(p.lastSample)
	if dt < p.minPeriod {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapInuse > p.peakHeap {
		p.peakHeap = ms.HeapInuse
	}
	s := HostSample{
		WallSeconds:    now.Sub(p.start).Seconds(),
		SimCycles:      simCycles,
		Events:         events,
		HeapInUseBytes: ms.HeapInuse,
		GCPauseTotalNs: ms.PauseTotalNs,
		NumGC:          ms.NumGC,
	}
	if secs := dt.Seconds(); secs > 0 {
		s.CyclesPerSec = float64(simCycles-p.lastCycles) / secs
		s.EventsPerSec = float64(events-p.lastEvents) / secs
	}
	p.samples = append(p.samples, s)
	p.lastSample = now
	p.lastCycles = simCycles
	p.lastEvents = events
}

// Finish takes a final reading and returns the report.
func (p *HostProfiler) Finish(simCycles, events uint64) *HostReport {
	if p == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapInuse > p.peakHeap {
		p.peakHeap = ms.HeapInuse
	}
	wall := time.Since(p.start).Seconds()
	r := &HostReport{
		WallSeconds:        wall,
		SimCycles:          simCycles,
		EventsExecuted:     events,
		PeakHeapInUseBytes: p.peakHeap,
		GCPauses:           ms.NumGC - p.startNumGC,
		GCPauseTotalNs:     ms.PauseTotalNs - p.startGCNs,
		Samples:            p.samples,
	}
	if wall > 0 {
		r.SimCyclesPerSec = float64(simCycles) / wall
		r.EventsPerSec = float64(events) / wall
	}
	return r
}
