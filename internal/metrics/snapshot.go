package metrics

// Snapshot is the serializable state of a Registry at one instant, diffed
// against the MarkROI baseline. Its JSON encoding is deterministic for a
// deterministic simulation: encoding/json sorts map keys and the values
// derive only from simulated state (never wall clock), so two same-seed
// runs marshal byte-identically.
type Snapshot struct {
	// Cycles is the span covered by the snapshot (since MarkROI).
	Cycles uint64 `json:"cycles"`
	// Window is the series sampling period in cycles.
	Window     uint64                       `json:"window,omitempty"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string]SeriesSnapshot    `json:"series,omitempty"`
	// Trace summarizes the event-trace and span rings (present only when
	// tracing was enabled) so truncated exports are visible, not silent.
	Trace *TraceSummary `json:"trace,omitempty"`
	// Timeline is the interval time-series capture (present only when the
	// timeline was enabled): per-interval columns aligned to the ROI.
	Timeline *TimelineSnapshot `json:"timeline,omitempty"`
	// Digests is the interval digest chain (present only when digests were
	// enabled): one chained registry digest per interval window, the
	// divergence-localization primitive diag builds on.
	Digests *DigestChain `json:"digests,omitempty"`
}

// TraceSummary reports how much of the run's event and span history the
// rings retained. Dropped counts are overwritten records: a nonzero value
// means the exported trace starts mid-run.
type TraceSummary struct {
	Events        uint64 `json:"events"`
	EventsDropped uint64 `json:"events_dropped"`
	Spans         uint64 `json:"spans"`
	SpansDropped  uint64 `json:"spans_dropped"`
}

// Counter returns a counter by name, 0 if absent (schemes register only
// the metrics they have, so readers treat absence as zero).
func (s *Snapshot) Counter(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// Gauge returns a gauge by name, 0 if absent.
func (s *Snapshot) Gauge(name string) float64 {
	if s == nil {
		return 0
	}
	return s.Gauges[name]
}

// HistogramSnapshot is one histogram's state: count/sum/buckets are ROI
// deltas, min/max span the whole run.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
	// Buckets lists only non-empty log2 buckets in ascending order.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the mean of the snapshotted observations.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Bucket is one non-empty log2 histogram bucket: Count observations fell
// in the inclusive value range [Lo, Hi].
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// SeriesSnapshot is one time series: Values[i] was sampled at Cycles[i].
type SeriesSnapshot struct {
	Window uint64    `json:"window"`
	Cycles []uint64  `json:"cycles"`
	Values []float64 `json:"values"`
}
