package metrics

import "testing"

// BenchmarkTraceEmit measures the event-ring hot path: one record into a
// pre-allocated ring, no allocation, no branches beyond the wrap.
func BenchmarkTraceEmit(b *testing.B) {
	tr := newTrace(1 << 14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(uint64(i), EvRowConflict, uint64(i), 0)
	}
}

// BenchmarkTraceEmitNil measures the disabled path every component pays
// unconditionally: a nil receiver check.
func BenchmarkTraceEmitNil(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(uint64(i), EvRowConflict, uint64(i), 0)
	}
}

// BenchmarkSpanEmit measures the span-ring hot path.
func BenchmarkSpanEmit(b *testing.B) {
	sr := NewSpanRing(1 << 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr.Emit(Span{ID: uint64(i), Kind: SpanLoad, Start: uint64(i), End: uint64(i) + 40})
	}
}

// BenchmarkSpanEmitNil measures the disabled span path.
func BenchmarkSpanEmitNil(b *testing.B) {
	var sr *SpanRing
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr.Emit(Span{ID: uint64(i), Kind: SpanLoad, Start: uint64(i), End: uint64(i) + 40})
	}
}
