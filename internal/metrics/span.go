package metrics

// SpanKind identifies which hop of the memory path a span covers.
type SpanKind uint8

// The span vocabulary follows one sampled load from issue to data return:
// the whole-load envelope, translation, each SRAM level, the scheme's
// post-LLC path, and the component that finally produced the data.
const (
	// SpanLoad: core load issue to data return (the envelope).
	SpanLoad SpanKind = iota
	// SpanTLB: translation (L1/L2 TLB access or full page-table walk).
	SpanTLB
	// SpanL1 / SpanL2 / SpanLLC: one SRAM level's access, including any
	// miss handling below it.
	SpanL1
	SpanL2
	SpanLLC
	// SpanScheme: the post-LLC path of the scheme under test (tag/data-hit
	// verification plus the DRAM or buffer service).
	SpanScheme
	// SpanPCSHRWait: a NOMAD data miss parked in a PCSHR sub-entry until
	// its sub-block arrived.
	SpanPCSHRWait
	// SpanBuffer: a data miss serviced from a page copy buffer.
	SpanBuffer
	// SpanHBM / SpanDDR: DRAM device service (enqueue to data burst end).
	SpanHBM
	SpanDDR

	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	"load", "tlb", "l1", "l2", "llc",
	"scheme", "pcshr_wait", "buffer", "hbm", "ddr",
}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "invalid"
}

// Span is one recorded hop of a sampled access: the access's SpanID ties the
// hops together, Kind names the hop, and [Start, End] are cycle timestamps.
type Span struct {
	ID    uint64   `json:"id"`
	Kind  SpanKind `json:"kind"`
	Core  int32    `json:"core"`
	Start uint64   `json:"start"`
	End   uint64   `json:"end"`
}

// SpanRing is a fixed-capacity ring buffer of spans, the span counterpart of
// Trace: Emit overwrites the oldest record once full, Dropped reports lost
// history, and a nil *SpanRing ignores Emit so components hook spans in
// unconditionally.
type SpanRing struct {
	buf []Span
	n   uint64 // total spans emitted
}

// NewSpanRing returns a ring holding depth spans (default 4096 when
// depth <= 0). Exported for tests; simulations obtain one through
// Registry.EnableSpans.
func NewSpanRing(depth int) *SpanRing {
	if depth <= 0 {
		depth = 4096
	}
	return &SpanRing{buf: make([]Span, depth)}
}

// Emit records one span. Nil-safe and allocation-free.
func (r *SpanRing) Emit(s Span) {
	if r == nil {
		return
	}
	r.buf[r.n%uint64(len(r.buf))] = s
	r.n++
}

// Len returns the number of spans currently held.
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Dropped returns how many spans were overwritten.
func (r *SpanRing) Dropped() uint64 {
	if r == nil || r.n <= uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Spans returns the retained spans in emission order.
func (r *SpanRing) Spans() []Span {
	if r == nil {
		return nil
	}
	depth := uint64(len(r.buf))
	if r.n <= depth {
		return append([]Span(nil), r.buf[:r.n]...)
	}
	out := make([]Span, 0, depth)
	start := r.n % depth
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// Reset discards every span, keeping the storage (MarkROI calls it so
// exported spans cover the measured region only).
func (r *SpanRing) Reset() {
	if r == nil {
		return
	}
	r.n = 0
}
