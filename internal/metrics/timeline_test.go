package metrics

import (
	"encoding/json"
	"testing"
)

func TestIntervalFuncCollects(t *testing.T) {
	r := NewRegistry(10)
	var v uint64
	var base uint64
	r.IntervalFunc("x.rate",
		func(now uint64) { base = v },
		func(now uint64) float64 { d := v - base; base = v; return float64(d) })

	r.BeginTimeline(0, 100)
	v = 5
	r.SampleInterval(100)
	v = 12
	r.SampleInterval(200)
	r.FinishTimeline(250)

	tl := r.Snapshot(250).Timeline
	if tl == nil {
		t.Fatal("no timeline in snapshot")
	}
	if tl.Interval != 100 || tl.StartCycle != 0 {
		t.Fatalf("interval/start = %d/%d", tl.Interval, tl.StartCycle)
	}
	if tl.Windows() != 3 {
		t.Fatalf("windows = %d, want 3 (two full + one partial)", tl.Windows())
	}
	wantCycles := []uint64{100, 200, 250}
	for i, c := range wantCycles {
		if tl.Cycles[i] != c {
			t.Fatalf("Cycles = %v, want %v", tl.Cycles, wantCycles)
		}
	}
	col := tl.Metric("x.rate")
	if len(col) != 3 || col[0] != 5 || col[1] != 7 || col[2] != 0 {
		t.Fatalf("column = %v, want [5 7 0]", col)
	}
}

func TestTimelineInactiveIsNil(t *testing.T) {
	r := NewRegistry(10)
	r.IntervalFunc("x", nil, func(uint64) float64 { return 1 })
	r.SampleInterval(100) // no BeginTimeline: must be a no-op
	if tl := r.Snapshot(100).Timeline; tl != nil {
		t.Fatalf("timeline without BeginTimeline: %+v", tl)
	}
}

func TestTimelineDuplicateNamePanics(t *testing.T) {
	r := NewRegistry(10)
	r.IntervalFunc("dup", nil, func(uint64) float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate interval metric did not panic")
		}
	}()
	r.IntervalFunc("dup", nil, func(uint64) float64 { return 0 })
}

func TestTimelineSeparateNamespace(t *testing.T) {
	// An interval metric may share its name with a counter: they live in
	// different namespaces (Counters vs Timeline.Metrics).
	r := NewRegistry(10)
	c := r.Counter("shared.name")
	r.IntervalFunc("shared.name", nil, func(uint64) float64 { return 1 })
	c.Add(3)
	r.BeginTimeline(0, 10)
	r.SampleInterval(10)
	s := r.Snapshot(10)
	if s.Counters["shared.name"] != 3 || s.Timeline.Metric("shared.name")[0] != 1 {
		t.Fatal("namespaces collided")
	}
}

func TestTimelineFilter(t *testing.T) {
	r := NewRegistry(10)
	r.SetTimelineFilter([]string{"core.", "hbm.gbs."})
	r.IntervalFunc("core.0.ipc", nil, func(uint64) float64 { return 1 })
	r.IntervalFunc("hbm.gbs.fill", nil, func(uint64) float64 { return 2 })
	r.IntervalFunc("ddr.row_conflict_rate", nil, func(uint64) float64 { return 3 })
	r.BeginTimeline(0, 10)
	r.SampleInterval(10)
	tl := r.Snapshot(10).Timeline
	if len(tl.Metrics) != 2 {
		t.Fatalf("filter kept %d metrics, want 2: %v", len(tl.Metrics), tl.Metrics)
	}
	if tl.Metric("ddr.row_conflict_rate") != nil {
		t.Fatal("filtered metric still collected")
	}
	// Filtered names still occupy the namespace: re-registering must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering filtered name did not panic")
		}
	}()
	r.IntervalFunc("ddr.row_conflict_rate", nil, func(uint64) float64 { return 0 })
}

func TestBeginTimelineReprimes(t *testing.T) {
	// BeginTimeline discards earlier windows and re-runs prime closures, so
	// delta metrics restart from the new anchor (the MarkROI property).
	r := NewRegistry(10)
	var v, base uint64
	r.IntervalFunc("d", func(now uint64) { base = v },
		func(now uint64) float64 { d := v - base; base = v; return float64(d) })
	r.BeginTimeline(0, 100)
	v = 50
	r.SampleInterval(100)
	v = 80
	r.BeginTimeline(150, 100) // warmup over: re-anchor
	v = 95
	r.SampleInterval(250)
	tl := r.Snapshot(250).Timeline
	if tl.StartCycle != 150 || tl.Windows() != 1 {
		t.Fatalf("start=%d windows=%d, want 150/1", tl.StartCycle, tl.Windows())
	}
	if got := tl.Metric("d")[0]; got != 15 {
		t.Fatalf("delta after re-begin = %v, want 15 (95-80, not 95-50)", got)
	}
}

func TestSampleIntervalGuardsDuplicates(t *testing.T) {
	r := NewRegistry(10)
	r.IntervalFunc("x", nil, func(uint64) float64 { return 1 })
	r.BeginTimeline(0, 100)
	r.SampleInterval(100)
	r.FinishTimeline(100) // run ended exactly on a boundary: no extra row
	if tl := r.Snapshot(100).Timeline; tl.Windows() != 1 {
		t.Fatalf("windows = %d, want 1", tl.Windows())
	}
}

func TestTimelineSnapshotIsDeepCopy(t *testing.T) {
	r := NewRegistry(10)
	r.IntervalFunc("x", nil, func(uint64) float64 { return 1 })
	r.BeginTimeline(0, 100)
	r.SampleInterval(100)
	tl := r.Snapshot(100).Timeline
	tl.Cycles[0] = 999
	tl.Metrics["x"][0] = -1
	if tl2 := r.Snapshot(100).Timeline; tl2.Cycles[0] != 100 || tl2.Metrics["x"][0] != 1 {
		t.Fatal("snapshot shares storage with registry")
	}
}

func TestTimelineJSONDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRegistry(10)
		for _, name := range []string{"b.two", "a.one", "c.three"} {
			n := name
			r.IntervalFunc(n, nil, func(now uint64) float64 { return float64(len(n)) + float64(now) })
		}
		r.BeginTimeline(0, 100)
		r.SampleInterval(100)
		r.SampleInterval(200)
		data, err := json.Marshal(r.Snapshot(200).Timeline)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if string(build()) != string(build()) {
		t.Fatal("timeline JSON not byte-identical across identical builds")
	}
}

func TestMarkROIReanchorsTimeline(t *testing.T) {
	r := NewRegistry(10)
	r.IntervalFunc("x", nil, func(uint64) float64 { return 1 })
	r.BeginTimeline(0, 100)
	r.SampleInterval(100)
	r.MarkROI(137)
	tl := r.Snapshot(300).Timeline
	if tl.StartCycle != 137 || tl.Windows() != 0 {
		t.Fatalf("after MarkROI: start=%d windows=%d, want 137/0", tl.StartCycle, tl.Windows())
	}
}
