package metrics

import (
	"encoding/json"
	"testing"
)

// digestFixture builds a registry with one of each metric kind and an
// active digest chain anchored at 0 with interval 100.
func digestFixture() (*Registry, *Counter, *Histogram, *float64) {
	r := NewRegistry(0)
	c := r.Counter("d.count")
	g := new(float64)
	r.GaugeFunc("d.gauge", func() float64 { return *g })
	h := r.Histogram("d.hist")
	r.BeginDigests(0, 100)
	return r, c, h, g
}

func chain(r *Registry) *DigestChain { return r.Snapshot(0).Digests }

// TestDigestDeterministic: identical state sequences produce identical
// chains, and the chain length tracks the sampled windows.
func TestDigestDeterministic(t *testing.T) {
	build := func() *DigestChain {
		r, c, h, g := digestFixture()
		c.Add(3)
		*g = 1.5
		h.Observe(7)
		r.SampleInterval(100)
		c.Add(2)
		r.SampleInterval(200)
		return chain(r)
	}
	a, b := build(), build()
	if a.Windows() != 2 {
		t.Fatalf("windows = %d, want 2", a.Windows())
	}
	if a.FirstDivergence(b) != -1 {
		t.Errorf("identical sequences diverged: %+v vs %+v", a, b)
	}
	if a.Algo != DigestAlgo || a.Interval != 100 || a.StartCycle != 0 {
		t.Errorf("chain header = %+v", a)
	}
	if a.Cycles[0] != 100 || a.Cycles[1] != 200 {
		t.Errorf("cycles = %v, want ROI-relative window ends", a.Cycles)
	}
	if a.Final() != a.Digests[1] {
		t.Errorf("Final() = %s, want last digest %s", a.Final(), a.Digests[1])
	}
}

// TestDigestChaining: a state difference in window 0 changes every later
// digest even when the later per-window state is identical.
func TestDigestChaining(t *testing.T) {
	build := func(first uint64) *DigestChain {
		r, c, _, _ := digestFixture()
		c.Add(first)
		r.SampleInterval(100)
		// Window 1 adds nothing on either side; without chaining its digest
		// would collapse to the same value for both runs whenever the
		// per-window fold saw equal state.
		r.SampleInterval(200)
		return chain(r)
	}
	a, b := build(1), build(2)
	if a.Digests[0] == b.Digests[0] {
		t.Fatal("differing window-0 state produced equal digests")
	}
	if a.Digests[1] == b.Digests[1] {
		t.Error("window-1 digests equal despite differing predecessors: not chained")
	}
	if i := a.FirstDivergence(b); i != 0 {
		t.Errorf("FirstDivergence = %d, want 0", i)
	}
}

// TestDigestGaugeSensitivity: gauges fold through Float64bits, so a gauge
// change alone must change the digest.
func TestDigestGaugeSensitivity(t *testing.T) {
	build := func(v float64) *DigestChain {
		r, _, _, g := digestFixture()
		*g = v
		r.SampleInterval(100)
		return chain(r)
	}
	if build(1.0).Final() == build(1.0000000001).Final() {
		t.Error("tiny gauge change not reflected in digest")
	}
}

// TestFirstDivergenceCases pins the prefix/nil/empty semantics.
func TestFirstDivergenceCases(t *testing.T) {
	r, c, _, _ := digestFixture()
	c.Add(1)
	r.SampleInterval(100)
	r.SampleInterval(200)
	full := chain(r)

	r2, c2, _, _ := digestFixture()
	c2.Add(1)
	r2.SampleInterval(100)
	prefix := chain(r2)

	if i := full.FirstDivergence(prefix); i != 1 {
		t.Errorf("strict prefix: FirstDivergence = %d, want shorter length 1", i)
	}
	if i := prefix.FirstDivergence(full); i != 1 {
		t.Errorf("strict prefix (reversed): FirstDivergence = %d, want 1", i)
	}
	var nilChain *DigestChain
	if i := nilChain.FirstDivergence(nil); i != -1 {
		t.Errorf("nil vs nil = %d, want -1", i)
	}
	if i := nilChain.FirstDivergence(full); i != 0 {
		t.Errorf("nil vs non-empty = %d, want 0", i)
	}
	if nilChain.Windows() != 0 || nilChain.Final() != "" {
		t.Error("nil chain accessors not zero-valued")
	}
}

// TestDigestSnapshotJSON: digests are hex strings in JSON (uint64 survives
// generic JSON tooling), and absent entirely before BeginDigests.
func TestDigestSnapshotJSON(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("d.c").Add(1)
	if r.Snapshot(50).Digests != nil {
		t.Error("digests present before BeginDigests")
	}
	r.BeginDigests(0, 100)
	r.SampleInterval(100)
	enc, err := json.Marshal(r.Snapshot(100).Digests)
	if err != nil {
		t.Fatal(err)
	}
	var dec DigestChain
	if err := json.Unmarshal(enc, &dec); err != nil {
		t.Fatal(err)
	}
	if len(dec.Digests) != 1 || len(dec.Digests[0]) != 16 {
		t.Errorf("digest encoding = %v, want one 16-hex-char string", dec.Digests)
	}
}

// TestDigestMarkROIReanchors: MarkROI restarts an active chain at the ROI
// boundary, like the timeline.
func TestDigestMarkROIReanchors(t *testing.T) {
	r, c, _, _ := digestFixture()
	c.Add(5)
	r.SampleInterval(100)
	r.MarkROI(150)
	c.Add(1)
	r.SampleInterval(250)
	dc := r.Snapshot(250).Digests
	if dc.StartCycle != 150 {
		t.Errorf("StartCycle = %d, want re-anchored 150", dc.StartCycle)
	}
	if dc.Windows() != 1 || dc.Cycles[0] != 100 {
		t.Errorf("post-ROI chain = %+v, want one window ending at ROI-relative 100", dc)
	}
}

// TestSampleDigestIdempotentAtSameCycle: FinishTimeline at an exact window
// boundary must not append a duplicate zero-length window.
func TestSampleDigestIdempotentAtSameCycle(t *testing.T) {
	r, c, _, _ := digestFixture()
	c.Add(1)
	r.SampleInterval(100)
	r.FinishTimeline(100)
	if dc := chain(r); dc.Windows() != 1 {
		t.Errorf("windows = %d after same-cycle finish, want 1", dc.Windows())
	}
}
