// Interval digest chains: a cheap chained FNV-1a 64 digest of the whole
// registry, folded once per interval window while a chain is active. Two
// runs whose simulated behavior is identical produce byte-identical chains;
// the FIRST window whose digests differ localizes a divergence to one
// interval without comparing full snapshots — the primitive diag.Bisect and
// cmd/nomaddiff build on.
//
// Chain construction: digest[i] = H(digest[i-1] || schema || state_i) where
// H is FNV-1a 64 over 8-byte little-endian words, schema is a one-time fold
// of every registered metric name in sorted order, and state_i folds every
// counter value, gauge bit pattern, and histogram count/sum at the window's
// end cycle. Folding the previous digest means a divergence in any window
// perturbs every later digest, so comparing final digests alone already
// answers "did these runs behave identically?".
//
// Determinism: values derive from simulated state only, the fold order is
// the sorted registration order fixed at BeginDigests, and interval
// boundaries are exact cycle counts re-anchored at MarkROI — the chain is
// byte-identical across engines and fast-forward modes, same-seed.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// DigestAlgo identifies the chain construction; bump only with a migration
// note in DESIGN.md.
const DigestAlgo = "fnv64a-chain/1"

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvFold folds one 64-bit word into an FNV-1a 64 state, byte-wise
// little-endian (the canonical FNV-1a byte loop, unrolled over the word).
func fnvFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// fnvFoldString folds a string byte-wise into an FNV-1a 64 state.
func fnvFoldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// BeginDigests starts (or restarts) digest-chain collection with the given
// interval, anchored at cycle now: the first window covers (now, now+every].
// Prior windows are discarded, so calling it at the ROI boundary aligns the
// chain exactly with the measured region (MarkROI re-anchors an active chain
// the same way it re-anchors the timeline). The fold order — every counter,
// gauge, and histogram in sorted-name order — is fixed here, so call it
// after registration is complete.
func (r *Registry) BeginDigests(now, every uint64) {
	r.digActive = true
	r.digStart = now
	r.digLast = now
	r.digEvery = every
	r.digCycles = r.digCycles[:0]
	r.digests = r.digests[:0]

	r.digCounterIdx = sortedIdx(len(r.counters), func(i int) string { return r.counters[i].name })
	r.digGaugeIdx = sortedIdx(len(r.gauges), func(i int) string { return r.gauges[i].name })
	r.digHistIdx = sortedIdx(len(r.hists), func(i int) string { return r.hists[i].name })

	// The schema digest folds every name once, up front, so per-window folds
	// touch only values: the name set cannot change mid-run.
	h := uint64(fnvOffset64)
	h = fnvFoldString(h, DigestAlgo)
	for _, i := range r.digCounterIdx {
		h = fnvFoldString(h, r.counters[i].name)
	}
	for _, i := range r.digGaugeIdx {
		h = fnvFoldString(h, r.gauges[i].name)
	}
	for _, i := range r.digHistIdx {
		h = fnvFoldString(h, r.hists[i].name)
	}
	r.digSchema = h
}

// sortedIdx returns 0..n-1 sorted by the name each index resolves to.
func sortedIdx(n int, name func(int) string) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return name(idx[a]) < name(idx[b]) })
	return idx
}

// DigestsActive reports whether BeginDigests has been called.
func (r *Registry) DigestsActive() bool { return r.digActive }

// sampleDigest closes the digest window ending at cycle now. SampleInterval
// calls it from the engine's interval hook; it is a no-op until
// BeginDigests.
func (r *Registry) sampleDigest(now uint64) {
	if !r.digActive || now <= r.digLast {
		return
	}
	prev := uint64(0)
	if n := len(r.digests); n > 0 {
		prev = r.digests[n-1]
	}
	h := fnvFold(r.digSchema, prev)
	for _, i := range r.digCounterIdx {
		h = fnvFold(h, r.counters[i].read())
	}
	for _, i := range r.digGaugeIdx {
		h = fnvFold(h, math.Float64bits(r.gauges[i].read()))
	}
	for _, i := range r.digHistIdx {
		hist := r.hists[i].h
		h = fnvFold(h, hist.count)
		h = fnvFold(h, hist.sum)
	}
	r.digCycles = append(r.digCycles, now-r.digStart)
	r.digests = append(r.digests, h)
	r.digLast = now
}

// DigestChain is the collected chain in serializable form: Digests[i] is the
// chained digest at the end of window i, Cycles[i] that window's end cycle
// relative to StartCycle (the MarkROI cycle). Digests are fixed-width
// lowercase hex so the JSON survives tools that parse numbers as float64.
type DigestChain struct {
	// Algo names the chain construction (DigestAlgo).
	Algo string `json:"algo"`
	// Interval is the window length in cycles.
	Interval uint64 `json:"interval"`
	// StartCycle is the absolute engine cycle the chain is anchored at.
	StartCycle uint64 `json:"start_cycle"`
	// Cycles holds window-end cycles relative to StartCycle.
	Cycles []uint64 `json:"cycles"`
	// Digests holds one 16-hex-digit chained digest per window.
	Digests []string `json:"digests"`
}

// Windows returns the number of collected windows.
func (d *DigestChain) Windows() int {
	if d == nil {
		return 0
	}
	return len(d.Digests)
}

// Final returns the last digest in the chain ("" when empty). Because every
// digest folds its predecessor, equal finals over equal window counts mean
// the whole chains agree.
func (d *DigestChain) Final() string {
	if d == nil || len(d.Digests) == 0 {
		return ""
	}
	return d.Digests[len(d.Digests)-1]
}

// FirstDivergence returns the index of the first window where the two chains
// disagree — different digest or different end cycle — or the shorter length
// when one chain is a strict prefix of the other, or -1 when they are
// identical. A nil chain is treated as empty.
func (d *DigestChain) FirstDivergence(o *DigestChain) int {
	dn, on := d.Windows(), o.Windows()
	n := dn
	if on < n {
		n = on
	}
	for i := 0; i < n; i++ {
		if d.Digests[i] != o.Digests[i] || d.Cycles[i] != o.Cycles[i] {
			return i
		}
	}
	if dn != on {
		return n
	}
	return -1
}

// digestSnapshot renders the collected chain, or nil when inactive.
func (r *Registry) digestSnapshot() *DigestChain {
	if !r.digActive {
		return nil
	}
	d := &DigestChain{
		Algo:       DigestAlgo,
		Interval:   r.digEvery,
		StartCycle: r.digStart,
		Cycles:     append([]uint64(nil), r.digCycles...),
		Digests:    make([]string, len(r.digests)),
	}
	for i, v := range r.digests {
		d.Digests[i] = fmt.Sprintf("%016x", v)
	}
	return d
}
