package core

import (
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/osmem"
	"nomad/internal/sim"
	"nomad/internal/tlb"
)

// Thread is the front-end's view of an application thread: OS routines
// suspend it while they run on its CPU (§IV-A: "CPUs executing OS routines
// are stalled during timing simulations as if the OS occupies the CPUs").
type Thread interface {
	Block()
	Unblock()
}

// Flusher invalidates the SRAM-cached lines of one DRAM-cache frame,
// writing dirty lines back to the DC (flush_cache_range, Algorithm 2 line
// 3). The system wires this to the full cache hierarchy.
type Flusher interface {
	FlushFrame(cfn uint64)
}

// Shootdowner performs an actual TLB shootdown: invalidate one core's
// translation for a virtual page. The TLB directory lets the eviction
// daemon avoid this protocol (Algorithm 2, lines 6-8), but when reclaim
// would otherwise starve — every frame TLB-resident, possible only when TLB
// reach rivals DC capacity — the OS must fall back to it, exactly as
// conventional kernels do.
type Shootdowner interface {
	Shootdown(coreID int, vpn uint64)
}

// FillBackend is the data-management engine fills and writebacks are
// offloaded to. The NOMAD Backend implements it; the blocking TDC front-end
// substitutes synchronous copies instead.
type FillBackend interface {
	Send(cmd Command, accepted mem.Done)
}

// transferTracker is the optional back-end view the eviction paths consult:
// a frame whose fill is still streaming through the data-management engine
// must not be reclaimed, or the recycled CFN would carry two concurrent
// fills through the PCSHR CAM (whose byCFN index tolerates one). The NOMAD
// Backend implements it; blocking (TDC) mode has no in-flight fills to
// track.
type transferTracker interface {
	InTransfer(cfn uint64) bool
}

// FrontendConfig parameterises the OS routines.
//
//nomad:owner host
type FrontendConfig struct {
	// TagMgmtLatency is the handler's critical-section occupancy: two
	// dependent on-package reads plus synchronization, conservatively
	// 400 cycles in the paper.
	TagMgmtLatency uint64
	// Blocking selects TDC behaviour: the faulting thread waits for the
	// whole page copy, there is no global mutex (TDC locks only the
	// critical PTEs), and no tag-management penalty is charged.
	Blocking bool
	// WalkLatency is the page-table-walk cost preceding any handling.
	WalkLatency uint64
	// EvictionLowWater triggers the background daemon when free frames
	// drop below it; EvictionBatch frames are reclaimed per invocation.
	EvictionLowWater uint64
	EvictionBatch    int
	// DaemonBase/DaemonPerFrame model the daemon's critical-section
	// occupancy (CPD scans, PTE restores via reverse mappings).
	DaemonBase     uint64
	DaemonPerFrame uint64
	// CacheTouchThreshold enables selective caching (§V): a page is
	// cached only on its Nth uncached page-table walk; earlier touches
	// are served from off-package memory. 0 or 1 caches on first touch
	// (the paper's default behaviour).
	CacheTouchThreshold uint64
}

// DefaultFrontendConfig matches the evaluation setup.
func DefaultFrontendConfig() FrontendConfig {
	return FrontendConfig{
		TagMgmtLatency:   400,
		WalkLatency:      120,
		EvictionLowWater: 96,
		EvictionBatch:    128,
		DaemonBase:       100,
		DaemonPerFrame:   20,
	}
}

func (c FrontendConfig) normalized() FrontendConfig {
	d := DefaultFrontendConfig()
	if c.WalkLatency == 0 {
		c.WalkLatency = d.WalkLatency
	}
	if c.EvictionLowWater == 0 {
		c.EvictionLowWater = d.EvictionLowWater
	}
	if c.EvictionBatch == 0 {
		c.EvictionBatch = d.EvictionBatch
	}
	if c.DaemonBase == 0 {
		c.DaemonBase = d.DaemonBase
	}
	if c.DaemonPerFrame == 0 {
		c.DaemonPerFrame = d.DaemonPerFrame
	}
	return c
}

// FrontendStats counts OS-routine events.
//
//nomad:owner channel
type FrontendStats struct {
	TagHits     uint64 // walks that found the page cached
	TagMisses   uint64
	Uncacheable uint64
	// TagMgmtLatencySum/Max measure arrival-to-resume time of the tag
	// miss handler (Fig. 11/14: 400 cycles uncontended, up to thousands
	// under mutex and PCSHR contention).
	TagMgmtLatencySum uint64
	TagMgmtLatencyMax uint64
	// MutexWaitSum isolates the lock-queue component.
	MutexWaitSum   uint64
	DaemonRuns     uint64
	Evictions      uint64
	DirtyEvictions uint64
	TLBSkips       uint64 // victims skipped for TLB-shootdown avoidance
	FillSkips      uint64 // victims skipped because their fill is in flight
	DirectReclaims uint64
	// SelectiveBypasses counts walks that declined to cache a page under
	// the selective-caching policy.
	SelectiveBypasses uint64
	// ForcedShootdowns counts TLB shootdowns issued when reclaim would
	// otherwise starve (tiny caches only; zero in the paper's regime).
	ForcedShootdowns uint64
}

// AvgTagMgmtLatency returns the mean tag-management latency in cycles.
func (s *FrontendStats) AvgTagMgmtLatency() float64 {
	if s.TagMisses == 0 {
		return 0
	}
	return float64(s.TagMgmtLatencySum) / float64(s.TagMisses)
}

// mutexSim models the cache_frame_management_mutex: a FIFO critical
// section in simulated time.
//
//nomad:owner channel
//nomad:ephemeral modeled lock word; contention surfaces in the registered OS-blocked cycle counters
type mutexSim struct {
	busy    bool
	waiters []func()
}

// lock runs fn when the mutex is acquired; fn receives unlock.
func (m *mutexSim) lock(fn func(unlock func())) {
	if m.busy {
		m.waiters = append(m.waiters, func() { fn(m.unlock) })
		return
	}
	m.busy = true
	fn(m.unlock)
}

func (m *mutexSim) unlock() {
	if len(m.waiters) > 0 {
		next := m.waiters[0]
		m.waiters = m.waiters[1:]
		next()
		return
	}
	m.busy = false
}

// Frontend implements the NOMAD OS routines (and, with Blocking set, the
// TDC variant). It satisfies tlb.Walker and tlb.Directory.
//
//nomad:owner channel
type Frontend struct {
	cfg     FrontendConfig
	eng     *sim.Engine
	mm      *osmem.Manager
	backend FillBackend // non-blocking mode
	//nomad:ephemeral walk orchestration state; divergence surfaces in the registered frontend.* counters
	tracker  transferTracker                            // backend's in-flight-fill view, if any
	copier   func(srcPFN, dstCFN uint64, done mem.Done) // blocking fills
	wbCopier func(srcCFN, dstPFN uint64, done mem.Done) // blocking writebacks
	threads  []Thread
	flusher  Flusher

	//nomad:ephemeral walk orchestration state; divergence surfaces in the registered frontend.* counters
	shootdowner Shootdowner

	mu mutexSim
	//nomad:ephemeral walk orchestration state; divergence surfaces in the registered frontend.* counters
	daemonRunning bool
	stats         FrontendStats
	// tagLat observes each tag miss handler's arrival-to-resume latency
	// (nil until RegisterMetrics); trace records begin/end events.
	tagLat *metrics.Histogram
	trace  *metrics.Trace

	// walks is the freelist of pooled in-flight page-table walks.
	//nomad:ephemeral walk orchestration state; divergence surfaces in the registered frontend.* counters
	walks []*fwalkOp
}

// fwalkOp is one pooled in-flight walk, carried across the walk-latency
// delay by its prebuilt fn callback.
//
//nomad:owner channel
type fwalkOp struct {
	coreID int
	vaddr  uint64
	done   func(tlb.Entry)
	fn     func()
}

func (f *Frontend) getWalk() *fwalkOp {
	if n := len(f.walks); n > 0 {
		op := f.walks[n-1]
		f.walks = f.walks[:n-1]
		return op
	}
	op := &fwalkOp{} //nomadlint:ignore poolalloc -- freelist constructor: the one allocation the pool amortizes
	op.fn = func() { f.runWalk(op) }
	return op
}

// runWalk fires after the walk latency: recycle the op, then resolve the
// PTE (release-before-callback: handlers below may start another walk).
func (f *Frontend) runWalk(op *fwalkOp) {
	coreID, vaddr, done := op.coreID, op.vaddr, op.done
	op.done = nil
	f.walks = append(f.walks, op)
	vpn := mem.PageNum(vaddr)
	pte := f.mm.PTEOf(coreID, vpn)
	switch {
	case pte.NonCacheable:
		f.stats.Uncacheable++
		done(tlb.Entry{VPN: vpn, Frame: pte.Frame, Space: mem.SpacePhysical})
	case pte.Cached:
		f.stats.TagHits++
		done(tlb.Entry{VPN: vpn, Frame: pte.Frame, Space: mem.SpaceCache})
	case !f.shouldCache(pte):
		// Selective caching: not hot enough yet; run from off-package
		// memory (equivalent to the (hit, miss) case of §III-E).
		f.stats.SelectiveBypasses++
		done(tlb.Entry{VPN: vpn, Frame: pte.Frame, Space: mem.SpacePhysical})
	case f.cfg.Blocking:
		f.blockingMiss(coreID, vpn, pte, done)
	default:
		f.tagMiss(coreID, vpn, mem.PageOffset(vaddr), pte, done)
	}
}

// SetShootdowner wires the TLB shootdown fallback (optional; without it,
// reclaim starvation panics).
func (f *Frontend) SetShootdowner(s Shootdowner) { f.shootdowner = s }

// NewFrontend builds the OS front-end. For non-blocking (NOMAD) mode pass a
// backend; for blocking (TDC) mode pass fill/writeback copier functions.
func NewFrontend(eng *sim.Engine, cfg FrontendConfig, mm *osmem.Manager, threads []Thread, flusher Flusher, backend FillBackend,
	copier, wbCopier func(src, dst uint64, done mem.Done)) *Frontend {
	f := &Frontend{
		cfg:      cfg.normalized(),
		eng:      eng,
		mm:       mm,
		backend:  backend,
		copier:   copier,
		wbCopier: wbCopier,
		threads:  threads,
		flusher:  flusher,
	}
	if !f.cfg.Blocking && backend == nil {
		panic("core: non-blocking front-end requires a backend")
	}
	if f.cfg.Blocking && (copier == nil || wbCopier == nil) {
		panic("core: blocking front-end requires copier functions")
	}
	f.tracker, _ = backend.(transferTracker)
	return f
}

// Stats returns the front-end counters.
func (f *Frontend) Stats() *FrontendStats { return &f.stats }

// RegisterMetrics exposes the OS-routine counters in reg under prefix
// (conventionally "os") plus a tag-management latency histogram, and
// attaches the trace for tag-miss begin/end events.
func (f *Frontend) RegisterMetrics(reg *metrics.Registry, prefix string) {
	s := &f.stats
	reg.CounterFunc(prefix+".tag_hits", func() uint64 { return s.TagHits })
	reg.CounterFunc(prefix+".tag_misses", func() uint64 { return s.TagMisses })
	reg.CounterFunc(prefix+".uncacheable", func() uint64 { return s.Uncacheable })
	reg.CounterFunc(prefix+".tag_mgmt_latency_sum", func() uint64 { return s.TagMgmtLatencySum })
	reg.GaugeFunc(prefix+".tag_mgmt_latency_max", func() float64 { return float64(s.TagMgmtLatencyMax) })
	reg.CounterFunc(prefix+".mutex_wait_sum", func() uint64 { return s.MutexWaitSum })
	reg.CounterFunc(prefix+".daemon_runs", func() uint64 { return s.DaemonRuns })
	reg.CounterFunc(prefix+".evictions", func() uint64 { return s.Evictions })
	reg.CounterFunc(prefix+".dirty_evictions", func() uint64 { return s.DirtyEvictions })
	reg.CounterFunc(prefix+".tlb_skips", func() uint64 { return s.TLBSkips })
	reg.CounterFunc(prefix+".fill_skips", func() uint64 { return s.FillSkips })
	reg.CounterFunc(prefix+".direct_reclaims", func() uint64 { return s.DirectReclaims })
	reg.CounterFunc(prefix+".selective_bypasses", func() uint64 { return s.SelectiveBypasses })
	reg.CounterFunc(prefix+".forced_shootdowns", func() uint64 { return s.ForcedShootdowns })
	reg.GaugeFunc(prefix+".free_frames", func() float64 { return float64(f.mm.FreeFrames()) })
	f.tagLat = reg.Histogram(prefix + ".tag_mgmt_latency")
	f.trace = reg.Trace()
}

// Manager exposes the underlying OS memory state.
func (f *Frontend) Manager() *osmem.Manager { return f.mm }

// Walk implements tlb.Walker: the page-table walk plus, for cacheable
// uncached pages, DC tag miss handling.
//
//nomad:port page-walk entry: the core-side TLB asks the channel-side OS engine to translate; becomes a cross-shard request
func (f *Frontend) Walk(coreID int, vaddr uint64, done func(tlb.Entry)) {
	op := f.getWalk()
	op.coreID = coreID
	op.vaddr = vaddr
	op.done = done
	f.eng.Schedule(f.cfg.WalkLatency, op.fn)
}

// shouldCache applies the selective-caching policy to an uncached,
// cacheable page.
func (f *Frontend) shouldCache(pte *osmem.PTE) bool {
	if f.cfg.CacheTouchThreshold <= 1 {
		return true
	}
	ppd := f.mm.PPDOf(pte.Frame)
	ppd.Walks++
	return ppd.Walks >= f.cfg.CacheTouchThreshold
}

// tagMiss is Algorithm 1: allocate a frame, offload the fill, update the
// PTE, resume the thread — all inside the cache-frame mutex, with the
// thread suspended for the handler's duration.
func (f *Frontend) tagMiss(coreID int, vpn, offset uint64, pte *osmem.PTE, done func(tlb.Entry)) {
	f.stats.TagMisses++
	arrival := f.eng.Now()
	f.trace.Emit(arrival, metrics.EvTagMissBegin, vpn, uint64(coreID))
	thread := f.threads[coreID]
	thread.Block()
	f.mu.lock(func(unlock func()) {
		start := f.eng.Now()
		f.stats.MutexWaitSum += start - arrival
		if f.mm.FreeFrames() == 0 {
			f.directReclaim()
		}
		pfn := pte.Frame
		cfn := f.mm.AllocateFrame(pfn)
		// Offload the cache fill before the tag update (Algorithm 1
		// line 6), passing the faulting offset so the back-end
		// prioritizes the demanded sub-block (critical-data-first).
		// Interface acceptance is part of the critical section, so
		// PCSHR exhaustion lengthens tag management.
		f.backend.Send(Command{Type: CmdFill, PFN: pfn, CFN: cfn, Offset: offset}, func() {
			f.mm.SetCached(pfn, cfn)
			f.maybeEvict()
			end := start + f.cfg.TagMgmtLatency
			if now := f.eng.Now(); now > end {
				end = now
			}
			f.eng.At(end, func() {
				lat := end - arrival
				f.stats.TagMgmtLatencySum += lat
				if lat > f.stats.TagMgmtLatencyMax {
					f.stats.TagMgmtLatencyMax = lat
				}
				f.tagLat.Observe(lat)
				f.trace.Emit(end, metrics.EvTagMissEnd, vpn, lat)
				thread.Unblock()
				unlock()
				done(tlb.Entry{VPN: vpn, Frame: cfn, Space: mem.SpaceCache})
			})
		})
	})
}

// blockingMiss is the TDC path: the thread stays suspended until the page
// copy completes; allocation locks only the PTE (no global mutex, no
// tag-management penalty).
func (f *Frontend) blockingMiss(coreID int, vpn uint64, pte *osmem.PTE, done func(tlb.Entry)) {
	f.stats.TagMisses++
	thread := f.threads[coreID]
	thread.Block()
	if f.mm.FreeFrames() == 0 {
		f.directReclaim()
	}
	pfn := pte.Frame
	cfn := f.mm.AllocateFrame(pfn)
	f.mm.SetCached(pfn, cfn)
	f.maybeEvict()
	f.copier(pfn, cfn, func() {
		thread.Unblock()
		done(tlb.Entry{VPN: vpn, Frame: cfn, Space: mem.SpaceCache})
	})
}

// evictable reports whether cfn may be reclaimed now. Frames whose fill is
// still in flight are skipped exactly like TLB-resident frames: the tail has
// already passed them, so the next revolution reconsiders them once the
// transfer drains. Without this, a tiny cache under churn can release a
// mid-fill frame, re-allocate the same CFN, and issue a second concurrent
// fill that collides in the back-end's byCFN CAM.
func (f *Frontend) evictable(cfn uint64) bool {
	if f.tracker != nil && f.tracker.InTransfer(cfn) {
		f.stats.FillSkips++
		return false
	}
	return true
}

// maybeEvict sets the eviction flag when free frames run low and schedules
// the background daemon.
func (f *Frontend) maybeEvict() {
	if f.daemonRunning || f.mm.FreeFrames() >= f.cfg.EvictionLowWater {
		return
	}
	f.daemonRunning = true
	f.eng.Schedule(1, f.runDaemon)
}

// runDaemon is Algorithm 2. In NOMAD mode it holds the cache-frame mutex
// for its critical section (competing with tag miss handlers); in TDC mode
// reclamation is immediate.
func (f *Frontend) runDaemon() {
	f.stats.DaemonRuns++
	if f.cfg.Blocking {
		f.evictBatch()
		f.daemonFinished()
		return
	}
	f.mu.lock(func(unlock func()) {
		victims, skips := f.mm.EvictCandidates(f.cfg.EvictionBatch)
		f.stats.TLBSkips += uint64(skips)
		// Functional phase under the mutex: flush, restore PTEs,
		// release frames, collect dirty victims (Algorithm 2). The
		// critical section is charged as base + per-frame work.
		wbs := make([]Command, 0, len(victims))
		for _, cfn := range victims {
			if !f.evictable(cfn) {
				continue
			}
			f.stats.Evictions++
			if f.flusher != nil {
				f.flusher.FlushFrame(cfn)
			}
			pfn, dirty := f.mm.ReleaseFrame(cfn)
			if dirty {
				f.stats.DirtyEvictions++
				wbs = append(wbs, Command{Type: CmdWriteback, PFN: pfn, CFN: cfn})
			}
		}
		hold := f.cfg.DaemonBase + f.cfg.DaemonPerFrame*uint64(len(victims))
		f.eng.Schedule(hold, func() {
			// Writeback commands are issued after the mutex is
			// released: offloading them to the back-end can stall
			// on PCSHR acceptance, and holding the lock across
			// those waits would starve tag miss handlers (a
			// deviation from the letter of Algorithm 2, documented
			// in DESIGN.md).
			unlock()
			f.sendWritebacks(wbs, 0)
		})
	})
}

func (f *Frontend) daemonFinished() {
	f.daemonRunning = false
	if f.mm.FreeFrames() < f.cfg.EvictionLowWater {
		f.daemonRunning = true
		f.eng.Schedule(1, f.runDaemon)
	}
}

// sendWritebacks chains writeback commands through interface acceptance,
// pacing on PCSHR availability.
func (f *Frontend) sendWritebacks(wbs []Command, i int) {
	if i >= len(wbs) {
		f.daemonFinished()
		return
	}
	f.backend.Send(wbs[i], func() { f.sendWritebacks(wbs, i+1) })
}

// evictBatch is the TDC daemon body: functional reclamation with
// fire-and-forget writebacks.
func (f *Frontend) evictBatch() {
	victims, skips := f.mm.EvictCandidates(f.cfg.EvictionBatch)
	f.stats.TLBSkips += uint64(skips)
	for _, cfn := range victims {
		if !f.evictable(cfn) {
			continue
		}
		f.stats.Evictions++
		if f.flusher != nil {
			f.flusher.FlushFrame(cfn)
		}
		pfn, dirty := f.mm.ReleaseFrame(cfn)
		if dirty {
			f.stats.DirtyEvictions++
			f.wbCopier(cfn, pfn, nil)
		}
	}
}

// directReclaim synchronously frees a batch when allocation would otherwise
// starve (direct reclaim in a real kernel). It bypasses timing: the cost is
// absorbed into the surrounding handler latency, and it is rare by
// construction (the low-water mark exceeds the maximum number of concurrent
// handlers).
func (f *Frontend) directReclaim() {
	f.stats.DirectReclaims++
	attempts := 0
	for f.mm.FreeFrames() == 0 {
		if attempts++; attempts > 2*int(f.mm.CacheFrames())/f.cfg.EvictionBatch+2 {
			// Every frame is TLB-resident (possible only when TLB
			// reach rivals DC capacity): fall back to real TLB
			// shootdowns, like a conventional kernel.
			f.forcedReclaim()
			continue
		}
		victims, skips := f.mm.EvictCandidates(f.cfg.EvictionBatch)
		f.stats.TLBSkips += uint64(skips)
		for _, cfn := range victims {
			if !f.evictable(cfn) {
				continue
			}
			f.stats.Evictions++
			if f.flusher != nil {
				f.flusher.FlushFrame(cfn)
			}
			pfn, dirty := f.mm.ReleaseFrame(cfn)
			if dirty {
				f.stats.DirtyEvictions++
				if f.cfg.Blocking {
					f.wbCopier(cfn, pfn, nil)
				} else {
					f.backend.Send(Command{Type: CmdWriteback, PFN: pfn, CFN: cfn}, nil)
				}
			}
		}
	}
}

// forcedReclaim shoots down the TLB entries pinning frames at the FIFO tail
// and releases those frames. Only reachable when shootdown avoidance has
// starved reclaim completely.
func (f *Frontend) forcedReclaim() {
	if f.shootdowner == nil {
		panic("core: direct reclaim found no evictable frames and no shootdown path is wired")
	}
	// Phase 1: shoot down every TLB-resident frame in the next batch
	// window so the normal victim scan can proceed.
	n := f.mm.CacheFrames()
	tail := f.mm.Tail()
	batch := uint64(f.cfg.EvictionBatch)
	if batch > n {
		batch = n
	}
	for i := uint64(0); i < batch; i++ {
		cfn := (tail + i) % n
		if cpd := f.mm.CPDOf(cfn); cpd.Valid && cpd.TLBDir != 0 {
			f.shootdownFrame(cfn)
		}
	}
	// Phase 2: regular eviction over the now-unpinned window.
	victims, _ := f.mm.EvictCandidates(int(batch))
	for _, cfn := range victims {
		if !f.evictable(cfn) {
			continue
		}
		f.stats.Evictions++
		if f.flusher != nil {
			f.flusher.FlushFrame(cfn)
		}
		pfn, dirty := f.mm.ReleaseFrame(cfn)
		if dirty {
			f.stats.DirtyEvictions++
			if f.cfg.Blocking {
				f.wbCopier(cfn, pfn, nil)
			} else {
				f.backend.Send(Command{Type: CmdWriteback, PFN: pfn, CFN: cfn}, nil)
			}
		}
	}
}

// shootdownFrame invalidates every TLB translation of one cache frame.
func (f *Frontend) shootdownFrame(cfn uint64) {
	cpd := f.mm.CPDOf(cfn)
	ppd := f.mm.PPDOf(cpd.PFN)
	for _, mp := range ppd.Reverse {
		f.stats.ForcedShootdowns++
		f.shootdowner.Shootdown(mp.Core, mp.VPN)
	}
	cpd.TLBDir = 0
}

// TLBInserted implements tlb.Directory.
func (f *Frontend) TLBInserted(coreID int, e tlb.Entry) {
	f.mm.TLBSet(e.Frame, coreID, true)
}

// TLBEvicted implements tlb.Directory.
func (f *Frontend) TLBEvicted(coreID int, e tlb.Entry) {
	f.mm.TLBSet(e.Frame, coreID, false)
}
