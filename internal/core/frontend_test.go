package core

import (
	"testing"

	"nomad/internal/mem"
	"nomad/internal/osmem"
	"nomad/internal/sim"
	"nomad/internal/tlb"
)

// fakeThread records suspension state.
type fakeThread struct {
	blocked int
	events  int
}

func (f *fakeThread) Block() {
	f.blocked++
	f.events++
}
func (f *fakeThread) Unblock() { f.blocked-- }

// fakeBackend accepts commands after a configurable delay and records them.
type fakeBackend struct {
	eng      *sim.Engine
	delay    uint64
	commands []Command
}

func (f *fakeBackend) Send(cmd Command, accepted mem.Done) {
	f.commands = append(f.commands, cmd)
	if accepted == nil {
		return
	}
	if f.delay == 0 {
		accepted()
		return
	}
	f.eng.Schedule(f.delay, accepted)
}

type fakeFlusher struct{ flushed []uint64 }

func (f *fakeFlusher) FlushFrame(cfn uint64) { f.flushed = append(f.flushed, cfn) }

type frontendEnv struct {
	eng     *sim.Engine
	mm      *osmem.Manager
	threads []*fakeThread
	backend *fakeBackend
	flusher *fakeFlusher
	fe      *Frontend
}

func newFrontendEnv(t *testing.T, cfg FrontendConfig, frames uint64, cores int) *frontendEnv {
	t.Helper()
	env := &frontendEnv{
		eng:     sim.New(),
		mm:      osmem.New(cores, frames),
		flusher: &fakeFlusher{},
	}
	env.backend = &fakeBackend{eng: env.eng}
	threads := make([]Thread, cores)
	for i := 0; i < cores; i++ {
		ft := &fakeThread{}
		env.threads = append(env.threads, ft)
		threads[i] = ft
	}
	env.fe = NewFrontend(env.eng, cfg, env.mm, threads, env.flusher, env.backend, nil, nil)
	return env
}

func walk(t *testing.T, env *frontendEnv, core int, vaddr uint64) (tlb.Entry, uint64) {
	t.Helper()
	var got *tlb.Entry
	start := env.eng.Now()
	env.fe.Walk(core, vaddr, func(e tlb.Entry) { got = &e })
	if !env.eng.RunUntil(func() bool { return got != nil }, 1_000_000) {
		t.Fatal("walk never completed")
	}
	return *got, env.eng.Now() - start
}

func TestTagMissHandling(t *testing.T) {
	cfg := DefaultFrontendConfig()
	env := newFrontendEnv(t, cfg, 1024, 1)
	e, lat := walk(t, env, 0, 0x5040)
	if e.Space != mem.SpaceCache {
		t.Fatalf("entry space = %v, want cache", e.Space)
	}
	// Walk latency + 400-cycle handler (uncontended).
	want := cfg.WalkLatency + cfg.TagMgmtLatency
	if lat != want {
		t.Fatalf("tag miss latency = %d, want %d", lat, want)
	}
	if env.threads[0].blocked != 0 || env.threads[0].events != 1 {
		t.Fatalf("thread state: %+v", env.threads[0])
	}
	if len(env.backend.commands) != 1 {
		t.Fatalf("commands = %v", env.backend.commands)
	}
	cmd := env.backend.commands[0]
	if cmd.Type != CmdFill || cmd.Offset != 0x40 {
		t.Fatalf("fill command = %+v, want offset 0x40", cmd)
	}
	pte := env.mm.PTEOf(0, 5)
	if !pte.Cached || pte.Frame != cmd.CFN {
		t.Fatalf("PTE not updated: %+v", pte)
	}
	if env.fe.Stats().TagMisses != 1 {
		t.Fatalf("stats %+v", env.fe.Stats())
	}
}

func TestTagHitNoBlocking(t *testing.T) {
	cfg := DefaultFrontendConfig()
	env := newFrontendEnv(t, cfg, 1024, 1)
	walk(t, env, 0, 0x5000)
	e, lat := walk(t, env, 0, 0x5000) // now cached: tag hit
	if lat != cfg.WalkLatency {
		t.Fatalf("tag hit latency = %d, want walk-only %d", lat, cfg.WalkLatency)
	}
	if e.Space != mem.SpaceCache {
		t.Fatal("tag hit did not yield a cache-space entry")
	}
	if env.threads[0].events != 1 {
		t.Fatal("tag hit suspended the thread")
	}
}

func TestMutexSerializesHandlers(t *testing.T) {
	cfg := DefaultFrontendConfig()
	env := newFrontendEnv(t, cfg, 1024, 2)
	var lat [2]uint64
	done := 0
	for c := 0; c < 2; c++ {
		c := c
		start := env.eng.Now()
		env.fe.Walk(c, uint64(c)*mem.PageSize, func(tlb.Entry) {
			lat[c] = env.eng.Now() - start
			done++
		})
	}
	env.eng.RunUntil(func() bool { return done == 2 }, 1_000_000)
	fast, slow := lat[0], lat[1]
	if fast > slow {
		fast, slow = slow, fast
	}
	if fast != cfg.WalkLatency+cfg.TagMgmtLatency {
		t.Fatalf("first handler latency = %d", fast)
	}
	if slow != cfg.WalkLatency+2*cfg.TagMgmtLatency {
		t.Fatalf("second handler latency = %d, want serialized %d", slow, cfg.WalkLatency+2*cfg.TagMgmtLatency)
	}
	if env.fe.Stats().MutexWaitSum != cfg.TagMgmtLatency {
		t.Fatalf("mutex wait = %d", env.fe.Stats().MutexWaitSum)
	}
}

func TestBackendAcceptanceExtendsHandler(t *testing.T) {
	cfg := DefaultFrontendConfig()
	env := newFrontendEnv(t, cfg, 1024, 1)
	env.backend.delay = 1000 // acceptance slower than the 400-cycle handler
	_, lat := walk(t, env, 0, 0)
	if lat != cfg.WalkLatency+1000 {
		t.Fatalf("latency = %d, want walk+acceptance %d", lat, cfg.WalkLatency+1000)
	}
}

func TestEvictionDaemon(t *testing.T) {
	cfg := DefaultFrontendConfig()
	cfg.EvictionLowWater = 8
	cfg.EvictionBatch = 4
	env := newFrontendEnv(t, cfg, 16, 1)
	// Allocate past the low-water mark; mark everything dirty.
	for i := uint64(0); i < 9; i++ {
		e, _ := walk(t, env, 0, i*mem.PageSize)
		env.mm.MarkDirty(e.Frame)
	}
	env.eng.Run(50_000)
	s := env.fe.Stats()
	if s.DaemonRuns == 0 || s.Evictions == 0 {
		t.Fatalf("daemon never ran: %+v", s)
	}
	if s.DirtyEvictions != s.Evictions {
		t.Fatalf("dirty evictions %d != evictions %d", s.DirtyEvictions, s.Evictions)
	}
	// Writeback commands reached the back-end.
	wbs := 0
	for _, c := range env.backend.commands {
		if c.Type == CmdWriteback {
			wbs++
		}
	}
	if wbs == 0 {
		t.Fatal("no writeback commands sent")
	}
	if len(env.flusher.flushed) == 0 {
		t.Fatal("victims not flushed from SRAM")
	}
	// Evicted PTEs must be restored to their PFNs.
	restored := 0
	for i := uint64(0); i < 9; i++ {
		if !env.mm.PTEOf(0, i).Cached {
			restored++
		}
	}
	if restored == 0 {
		t.Fatal("no PTEs restored after eviction")
	}
}

func TestDaemonSkipsTLBResidentFrames(t *testing.T) {
	cfg := DefaultFrontendConfig()
	cfg.EvictionLowWater = 8
	cfg.EvictionBatch = 16
	env := newFrontendEnv(t, cfg, 16, 1)
	var frames []uint64
	e0, _ := walk(t, env, 0, 0)
	frames = append(frames, e0.Frame)
	// Pin the first frame in the (simulated) TLB before the daemon can
	// possibly run.
	env.fe.TLBInserted(0, tlb.Entry{VPN: 0, Frame: frames[0], Space: mem.SpaceCache})
	for i := uint64(1); i < 9; i++ {
		e, _ := walk(t, env, 0, i*mem.PageSize)
		frames = append(frames, e.Frame)
	}
	env.eng.Run(50_000)
	if env.mm.CPDOf(frames[0]).Valid == false {
		t.Fatal("TLB-resident frame was evicted")
	}
	if env.fe.Stats().TLBSkips == 0 {
		t.Fatal("no TLB-shootdown-avoidance skips recorded")
	}
	env.fe.TLBEvicted(0, tlb.Entry{VPN: 0, Frame: frames[0], Space: mem.SpaceCache})
	if env.mm.CPDOf(frames[0]).TLBDir != 0 {
		t.Fatal("TLB directory bit not cleared")
	}
}

func TestDirectReclaim(t *testing.T) {
	cfg := DefaultFrontendConfig()
	cfg.EvictionLowWater = 1
	cfg.EvictionBatch = 2
	env := newFrontendEnv(t, cfg, 4, 1)
	// Exhaust the cache behind the front-end's back so the next tag miss
	// finds zero free frames before the background daemon can help.
	for i := uint64(100); i < 104; i++ {
		pte := env.mm.PTEOf(0, i)
		cfn := env.mm.AllocateFrame(pte.Frame)
		env.mm.SetCached(pte.Frame, cfn)
	}
	walk(t, env, 0, 0)
	if env.fe.Stats().DirectReclaims == 0 {
		t.Fatal("allocation past capacity without direct reclaim")
	}
}

func TestBlockingModeWaitsForCopy(t *testing.T) {
	cfg := DefaultFrontendConfig()
	cfg.Blocking = true
	eng := sim.New()
	mm := osmem.New(1, 64)
	ft := &fakeThread{}
	copyDelay := uint64(5000)
	copies := 0
	copier := func(src, dst uint64, done mem.Done) {
		copies++
		eng.Schedule(copyDelay, func() {
			if done != nil {
				done()
			}
		})
	}
	fe := NewFrontend(eng, cfg, mm, []Thread{ft}, nil, nil, copier, copier)
	var got *tlb.Entry
	start := eng.Now()
	fe.Walk(0, 0, func(e tlb.Entry) { got = &e })
	eng.RunUntil(func() bool { return got != nil }, 100_000)
	lat := eng.Now() - start
	if lat < copyDelay {
		t.Fatalf("blocking walk returned after %d cycles, before the %d-cycle copy", lat, copyDelay)
	}
	if copies != 1 {
		t.Fatalf("copies = %d", copies)
	}
	if ft.blocked != 0 || ft.events != 1 {
		t.Fatalf("thread: %+v", ft)
	}
	// Blocking mode charges no tag-management latency.
	if fe.Stats().TagMgmtLatencySum != 0 {
		t.Fatalf("blocking mode recorded tag latency %d", fe.Stats().TagMgmtLatencySum)
	}
}

func TestUncacheablePage(t *testing.T) {
	cfg := DefaultFrontendConfig()
	env := newFrontendEnv(t, cfg, 64, 1)
	pte := env.mm.PTEOf(0, 3)
	pte.NonCacheable = true
	e, lat := walk(t, env, 0, 3*mem.PageSize)
	if e.Space != mem.SpacePhysical {
		t.Fatal("NC page translated to cache space")
	}
	if lat != cfg.WalkLatency {
		t.Fatalf("NC walk latency = %d", lat)
	}
	if env.fe.Stats().Uncacheable != 1 {
		t.Fatalf("stats %+v", env.fe.Stats())
	}
}

func TestSharedPageCaching(t *testing.T) {
	// §III-G: caching a shared page updates every PTE via the reverse
	// mapping, so the second process gets a tag hit without a second
	// fill.
	cfg := DefaultFrontendConfig()
	cfg.EvictionLowWater = 4 // keep the daemon quiet in this tiny cache
	env := newFrontendEnv(t, cfg, 64, 2)
	pte0 := env.mm.PTEOf(0, 5)
	env.mm.MapShared(1, 9, pte0.Frame) // core 1 vpn 9 -> same physical page
	e0, _ := walk(t, env, 0, 5*mem.PageSize)
	if e0.Space != mem.SpaceCache {
		t.Fatal("walk did not cache")
	}
	e1, lat := walk(t, env, 1, 9*mem.PageSize)
	if e1.Space != mem.SpaceCache || e1.Frame != e0.Frame {
		t.Fatalf("shared mapping resolved to %+v, want CFN %d", e1, e0.Frame)
	}
	if lat != cfg.WalkLatency {
		t.Fatalf("second process paid a tag miss (%d cycles) on a shared cached page", lat)
	}
	if len(env.backend.commands) != 1 {
		t.Fatalf("shared page filled %d times", len(env.backend.commands))
	}
	// Eviction restores both PTEs.
	env.mm.ReleaseFrame(e0.Frame)
	if env.mm.PTEOf(0, 5).Cached || env.mm.PTEOf(1, 9).Cached {
		t.Fatal("eviction left a stale shared PTE")
	}
}

func TestSelectiveCaching(t *testing.T) {
	cfg := DefaultFrontendConfig()
	cfg.CacheTouchThreshold = 2
	env := newFrontendEnv(t, cfg, 64, 1)
	// First walk: bypassed (physical), no fill.
	e1, lat1 := walk(t, env, 0, 0)
	if e1.Space != mem.SpacePhysical {
		t.Fatalf("first touch cached the page: %+v", e1)
	}
	if lat1 != cfg.WalkLatency {
		t.Fatalf("bypass latency = %d, want walk-only", lat1)
	}
	if len(env.backend.commands) != 0 {
		t.Fatal("bypassed page generated a fill")
	}
	if env.fe.Stats().SelectiveBypasses != 1 {
		t.Fatalf("bypasses = %d", env.fe.Stats().SelectiveBypasses)
	}
	// Second walk: hot enough, cached.
	e2, _ := walk(t, env, 0, 0)
	if e2.Space != mem.SpaceCache {
		t.Fatalf("second touch did not cache: %+v", e2)
	}
	if len(env.backend.commands) != 1 {
		t.Fatalf("fills = %d", len(env.backend.commands))
	}
}

func TestConstructorValidation(t *testing.T) {
	eng := sim.New()
	mm := osmem.New(1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("non-blocking front-end without backend did not panic")
		}
	}()
	NewFrontend(eng, FrontendConfig{}, mm, nil, nil, nil, nil, nil)
}
