package core

import (
	"testing"
	"testing/quick"

	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/sim"
)

func testDevices(eng *sim.Engine) (hbm, ddr *dram.Device) {
	return dram.New(eng, dram.HBMConfig()), dram.New(eng, dram.DDRConfig())
}

func newTestBackend(eng *sim.Engine, cfg BackendConfig) (*Backend, *dram.Device, *dram.Device) {
	hbm, ddr := testDevices(eng)
	return NewBackend(eng, cfg, hbm, ddr), hbm, ddr
}

func waitFor(t *testing.T, eng *sim.Engine, pred func() bool, max uint64) {
	t.Helper()
	if !eng.RunUntil(pred, max) {
		t.Fatal("condition never satisfied")
	}
}

func TestFillCompletes(t *testing.T) {
	eng := sim.New()
	b, hbm, ddr := newTestBackend(eng, DefaultBackendConfig())
	var completed []Command
	b.onComplete = func(c Command) { completed = append(completed, c) }

	accepted := false
	b.Send(Command{Type: CmdFill, PFN: 7, CFN: 3, Offset: 256}, func() { accepted = true })
	if !accepted {
		t.Fatal("fill not accepted immediately with free PCSHRs")
	}
	if !b.InTransfer(3) {
		t.Fatal("CFN 3 not marked in transfer")
	}
	waitFor(t, eng, func() bool { return len(completed) == 1 }, 200_000)
	if b.InTransfer(3) {
		t.Fatal("CFN 3 still in transfer after completion")
	}
	if ddr.Stats().Reads != 64 {
		t.Fatalf("DDR fill reads = %d, want 64", ddr.Stats().Reads)
	}
	if hbm.Stats().Writes != 64 {
		t.Fatalf("HBM fill writes = %d, want 64", hbm.Stats().Writes)
	}
	if hbm.Stats().BytesByKind[mem.KindFill] != 64*64 {
		t.Fatalf("HBM fill bytes = %d", hbm.Stats().BytesByKind[mem.KindFill])
	}
	if b.Stats().Fills != 1 {
		t.Fatalf("fills = %d", b.Stats().Fills)
	}
	if b.ActivePCSHRs() != 0 {
		t.Fatalf("PCSHRs still active: %d", b.ActivePCSHRs())
	}
}

func TestWritebackCompletes(t *testing.T) {
	eng := sim.New()
	b, hbm, ddr := newTestBackend(eng, DefaultBackendConfig())
	done := false
	b.onComplete = func(Command) { done = true }
	b.Send(Command{Type: CmdWriteback, PFN: 9, CFN: 4}, nil)
	waitFor(t, eng, func() bool { return done }, 200_000)
	if hbm.Stats().Reads != 64 || ddr.Stats().Writes != 64 {
		t.Fatalf("writeback moved %d HBM reads / %d DDR writes", hbm.Stats().Reads, ddr.Stats().Writes)
	}
	if ddr.Stats().BytesByKind[mem.KindWriteback] != 64*64 {
		t.Fatal("writeback bytes miscategorized")
	}
}

func TestCriticalDataFirst(t *testing.T) {
	eng := sim.New()
	b, _, _ := newTestBackend(eng, DefaultBackendConfig())
	// Demand offset points at sub-block 40.
	b.Send(Command{Type: CmdFill, PFN: 1, CFN: 1, Offset: 40 * 64}, nil)
	// Wait until the first sub-block lands in the buffer.
	r := b.byCFN[1]
	waitFor(t, eng, func() bool { return r.bvec != 0 }, 50_000)
	if r.bvec&(1<<40) == 0 {
		t.Fatalf("first arrived sub-block not the prioritized one: bvec=%x", r.bvec)
	}
}

func TestDataHitNoMatch(t *testing.T) {
	eng := sim.New()
	b, _, _ := newTestBackend(eng, DefaultBackendConfig())
	b.Send(Command{Type: CmdFill, PFN: 1, CFN: 1}, nil)
	if got := b.CheckCacheAccess(2, 0, false, nil, func() {}); got != DataHit {
		t.Fatalf("access to idle CFN = %v, want DataHit", got)
	}
	if b.Stats().DataHits != 1 {
		t.Fatalf("data hits = %d", b.Stats().DataHits)
	}
}

func TestReadDataMissParksAndWakes(t *testing.T) {
	eng := sim.New()
	b, _, _ := newTestBackend(eng, DefaultBackendConfig())
	b.Send(Command{Type: CmdFill, PFN: 1, CFN: 5, Offset: 0}, nil)
	served := false
	res := b.CheckCacheAccess(5, 63, false, nil, func() { served = true })
	if res != Parked {
		t.Fatalf("miss on un-arrived sub-block = %v, want Parked", res)
	}
	waitFor(t, eng, func() bool { return served }, 200_000)
	if b.Stats().SubEntryWaits != 1 {
		t.Fatalf("sub-entry waits = %d", b.Stats().SubEntryWaits)
	}
}

func TestBufferHit(t *testing.T) {
	eng := sim.New()
	b, hbm, _ := newTestBackend(eng, DefaultBackendConfig())
	b.Send(Command{Type: CmdFill, PFN: 1, CFN: 6, Offset: 0}, nil)
	r := b.byCFN[6]
	waitFor(t, eng, func() bool { return r.bvec&1 != 0 }, 50_000)
	demandBefore := hbm.Stats().BytesByKind[mem.KindDemand]
	served := false
	res := b.CheckCacheAccess(6, 0, false, nil, func() { served = true })
	if res != ServedFromBuffer {
		t.Fatalf("arrived sub-block access = %v, want ServedFromBuffer", res)
	}
	waitFor(t, eng, func() bool { return served }, 1000)
	if hbm.Stats().BytesByKind[mem.KindDemand] != demandBefore {
		t.Fatal("buffer hit consumed on-package bandwidth")
	}
	if b.Stats().BufferHits != 1 {
		t.Fatalf("buffer hits = %d", b.Stats().BufferHits)
	}
}

func TestWriteMissAbsorbed(t *testing.T) {
	eng := sim.New()
	cfg := DefaultBackendConfig()
	b, _, ddr := newTestBackend(eng, cfg)
	done := false
	b.onComplete = func(Command) { done = true }
	b.Send(Command{Type: CmdFill, PFN: 2, CFN: 7, Offset: 0}, nil)
	// Immediately write sub-block 63, before its read is issued.
	wrote := false
	if res := b.CheckCacheAccess(7, 63, true, nil, func() { wrote = true }); res != Absorbed {
		t.Fatalf("write miss = %v, want Absorbed", res)
	}
	waitFor(t, eng, func() bool { return done && wrote }, 200_000)
	if ddr.Stats().Reads != 63 {
		t.Fatalf("DDR reads = %d, want 63 (one absorbed)", ddr.Stats().Reads)
	}
	if b.Stats().WriteMissAbsorbed != 1 {
		t.Fatalf("absorbed = %d", b.Stats().WriteMissAbsorbed)
	}
}

func TestSubEntryOverflow(t *testing.T) {
	eng := sim.New()
	cfg := DefaultBackendConfig()
	cfg.SubEntries = 2
	b, _, _ := newTestBackend(eng, cfg)
	b.Send(Command{Type: CmdFill, PFN: 1, CFN: 8, Offset: 0}, nil)
	served := 0
	for si := uint(50); si < 54; si++ {
		b.CheckCacheAccess(8, si, false, nil, func() { served++ })
	}
	if b.Stats().SubEntryOverflows != 2 {
		t.Fatalf("overflows = %d, want 2", b.Stats().SubEntryOverflows)
	}
	waitFor(t, eng, func() bool { return served == 4 }, 300_000)
}

func TestPCSHRExhaustionDelaysAcceptance(t *testing.T) {
	eng := sim.New()
	cfg := DefaultBackendConfig()
	cfg.PCSHRs = 2
	b, _, _ := newTestBackend(eng, cfg)
	accepted := 0
	for i := uint64(0); i < 3; i++ {
		b.Send(Command{Type: CmdFill, PFN: i, CFN: i}, func() { accepted++ })
	}
	if accepted != 2 {
		t.Fatalf("accepted = %d immediately, want 2 (PCSHRs exhausted)", accepted)
	}
	waitFor(t, eng, func() bool { return accepted == 3 }, 300_000)
	if b.Stats().AcceptWaitSum == 0 {
		t.Fatal("third command accepted with zero wait")
	}
}

func TestAreaOptimizedBufferSharing(t *testing.T) {
	eng := sim.New()
	cfg := DefaultBackendConfig()
	cfg.PCSHRs = 4
	cfg.CopyBuffers = 1
	b, _, _ := newTestBackend(eng, cfg)
	completed := 0
	b.onComplete = func(Command) { completed++ }
	accepted := 0
	for i := uint64(0); i < 4; i++ {
		b.Send(Command{Type: CmdFill, PFN: i, CFN: i}, func() { accepted++ })
	}
	if accepted != 4 {
		t.Fatalf("accepted = %d, want 4 (PCSHRs available even without buffers)", accepted)
	}
	waitFor(t, eng, func() bool { return completed == 4 }, 2_000_000)
	if b.Stats().BufferWaitSum == 0 {
		t.Fatal("no buffer waiting recorded with 1 buffer for 4 commands")
	}
}

func TestFillsPreemptWritebackAcceptance(t *testing.T) {
	eng := sim.New()
	cfg := DefaultBackendConfig()
	cfg.PCSHRs = 1
	b, _, _ := newTestBackend(eng, cfg)
	var order []CommandType
	b.Send(Command{Type: CmdWriteback, PFN: 1, CFN: 1}, func() { order = append(order, CmdWriteback) })
	// Queue one writeback and one fill behind the busy register.
	b.Send(Command{Type: CmdWriteback, PFN: 2, CFN: 2}, func() { order = append(order, CmdWriteback) })
	b.Send(Command{Type: CmdFill, PFN: 3, CFN: 3}, func() { order = append(order, CmdFill) })
	waitFor(t, eng, func() bool { return len(order) == 3 }, 1_000_000)
	if order[1] != CmdFill {
		t.Fatalf("acceptance order = %v; fill should preempt queued writeback", order)
	}
}

func TestDistributedGrouping(t *testing.T) {
	eng := sim.New()
	cfg := DefaultBackendConfig()
	cfg.PCSHRs = 16
	cfg.Distributed = true
	b, _, _ := newTestBackend(eng, cfg)
	if len(b.groups) != 8 {
		t.Fatalf("groups = %d, want 8 (one per HBM channel)", len(b.groups))
	}
	// Consecutive CFNs (FIFO allocation) land in distinct groups.
	if b.groupOf(0) == b.groupOf(1) {
		t.Fatal("consecutive CFNs share a distributed group")
	}
	done := 0
	b.onComplete = func(Command) { done++ }
	for i := uint64(0); i < 8; i++ {
		b.Send(Command{Type: CmdFill, PFN: i, CFN: i}, nil)
	}
	if b.ActivePCSHRs() != 8 {
		t.Fatalf("active PCSHRs = %d, want 8 across groups", b.ActivePCSHRs())
	}
	waitFor(t, eng, func() bool { return done == 8 }, 1_000_000)
}

func TestPhysicalAccessDuringWriteback(t *testing.T) {
	eng := sim.New()
	b, _, _ := newTestBackend(eng, DefaultBackendConfig())
	b.Send(Command{Type: CmdWriteback, PFN: 11, CFN: 2}, nil)
	served := false
	res := b.CheckPhysicalAccess(11, 63, false, nil, func() { served = true })
	if res != Parked && res != ServedFromBuffer {
		t.Fatalf("physical access during writeback = %v", res)
	}
	waitFor(t, eng, func() bool { return served }, 300_000)
	if b.CheckPhysicalAccess(12, 0, false, nil, nil) != DataHit {
		t.Fatal("unrelated PFN matched a writeback PCSHR")
	}
}

// TestFillInvariantProperty: regardless of which sub-blocks demand writes
// absorb mid-fill, the command completes with exactly 64 destination writes
// and every parked access is eventually serviced.
func TestFillInvariantProperty(t *testing.T) {
	f := func(absorbs []uint8, reads []uint8) bool {
		eng := sim.New()
		b, hbm, _ := newTestBackend(eng, DefaultBackendConfig())
		completed := false
		b.onComplete = func(Command) { completed = true }
		b.Send(Command{Type: CmdFill, PFN: 1, CFN: 1, Offset: 0}, nil)
		pending := 0
		for _, a := range absorbs {
			b.CheckCacheAccess(1, uint(a%64), true, nil, func() { pending-- })
			pending++
		}
		for _, rd := range reads {
			if res := b.CheckCacheAccess(1, uint(rd%64), false, nil, func() { pending-- }); res != DataHit {
				pending++
			}
		}
		eng.RunUntil(func() bool { return completed && pending == 0 }, 2_000_000)
		return completed && pending == 0 && hbm.Stats().Writes == 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNoCriticalFirstAblation(t *testing.T) {
	eng := sim.New()
	cfg := DefaultBackendConfig()
	cfg.NoCriticalFirst = true
	b, _, _ := newTestBackend(eng, cfg)
	b.Send(Command{Type: CmdFill, PFN: 1, CFN: 1, Offset: 40 * 64}, nil)
	r := b.byCFN[1]
	waitFor(t, eng, func() bool { return r.bvec != 0 }, 50_000)
	// Without critical-data-first the fill is strictly sequential: the
	// demanded sub-block 40 cannot be the first to arrive.
	if r.bvec&(1<<40) != 0 && r.bvec == 1<<40 {
		t.Fatal("sequential-only fill delivered the demanded block first")
	}
	if r.bvec&1 == 0 && r.bvec&2 == 0 {
		t.Fatalf("sequential fill did not start at sub-block 0: bvec=%x", r.bvec)
	}
}

func TestCopier(t *testing.T) {
	eng := sim.New()
	hbm, ddr := testDevices(eng)
	c := NewCopier(eng, 4)
	done := false
	c.Copy(ddr, 5, hbm, 9, mem.KindFill, func() { done = true })
	waitFor(t, eng, func() bool { return done }, 200_000)
	if ddr.Stats().Reads != 64 || hbm.Stats().Writes != 64 {
		t.Fatalf("copier moved %d reads / %d writes", ddr.Stats().Reads, hbm.Stats().Writes)
	}
}

func TestBackendString(t *testing.T) {
	eng := sim.New()
	b, _, _ := newTestBackend(eng, DefaultBackendConfig())
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}
