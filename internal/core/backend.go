// Package core implements the paper's contribution: the NOMAD DRAM cache
// with decoupled tag-data management. The front-end (frontend.go) is the OS
// side — DC tag miss handler and background eviction daemon operating on the
// osmem substrate. This file is the back-end hardware: the memory-mapped
// command interface, page copy status/information holding registers
// (PCSHRs), and page copy buffers (§III-D), supporting centralized and
// distributed organizations (§III-F) and the area-optimized n-PCSHR /
// m-buffer split (§IV-B.7).
package core

import (
	"fmt"
	"math/bits"

	"nomad/internal/check"
	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/sim"
)

// CommandType distinguishes the two back-end commands (the T bit).
type CommandType uint8

const (
	CmdFill CommandType = iota
	CmdWriteback
)

func (t CommandType) String() string {
	if t == CmdFill {
		return "fill"
	}
	return "writeback"
}

// Command is what the front-end writes into the interface register: type,
// PFN, CFN, and the faulting offset (76 bits in hardware).
type Command struct {
	Type   CommandType
	PFN    uint64
	CFN    uint64
	Offset uint64 // byte offset of the demand access (sets P/PI on fills)
}

// BackendConfig sizes the back-end hardware.
//
//nomad:owner host
type BackendConfig struct {
	// PCSHRs is the total number of page copy status registers.
	PCSHRs int
	// CopyBuffers is the number of 4 KB page copy buffers; 0 means one
	// per PCSHR (the default design). Fewer buffers than PCSHRs is the
	// area-optimized design: commands occupy PCSHRs immediately but wait
	// for a buffer before moving data.
	CopyBuffers int
	// SubEntries is the number of pending-access sub-entries per PCSHR.
	SubEntries int
	// MaxReadsInFlight paces each PCSHR's sub-block reads.
	MaxReadsInFlight int
	// Distributed partitions the PCSHR and buffer pools into one group
	// per HBM channel, with commands routed by CFN low bits (§III-F).
	// FIFO frame allocation spreads consecutive CFNs uniformly across
	// groups, which is why NOMAD tolerates distribution (Fig. 16).
	Distributed bool
	// BufferReadLatency is the latency of servicing a data miss from a
	// page copy buffer instead of the on-package DRAM.
	BufferReadLatency uint64
	// VerifyLatency is the PCSHR CAM-lookup cost added to every DC
	// access. The paper's CACTI analysis gives 0.21 CPU cycles, i.e. 0
	// in an integer model; it is configurable for the +1-cycle
	// sensitivity study (§IV-B.5).
	VerifyLatency uint64
	// NoCriticalFirst disables critical-data-first scheduling (the P/PI
	// mechanism of §III-D.2) for ablation: fills proceed strictly
	// sequentially and demand misses are not elevated.
	NoCriticalFirst bool
}

// DefaultBackendConfig returns the evaluation default: 16 PCSHRs, paired
// buffers, 4 sub-entries, centralized.
func DefaultBackendConfig() BackendConfig {
	return BackendConfig{
		PCSHRs:            16,
		CopyBuffers:       0,
		SubEntries:        4,
		MaxReadsInFlight:  8,
		BufferReadLatency: 20,
	}
}

func (c BackendConfig) normalized() BackendConfig {
	if c.PCSHRs <= 0 {
		c.PCSHRs = 16
	}
	if c.CopyBuffers <= 0 || c.CopyBuffers > c.PCSHRs {
		c.CopyBuffers = c.PCSHRs
	}
	if c.SubEntries <= 0 {
		c.SubEntries = 4
	}
	if c.MaxReadsInFlight <= 0 {
		c.MaxReadsInFlight = 8
	}
	if c.BufferReadLatency == 0 {
		c.BufferReadLatency = 20
	}
	return c
}

// BackendStats counts back-end events.
//
//nomad:owner channel
type BackendStats struct {
	Fills      uint64
	Writebacks uint64
	// DataHits: DC accesses with no matching PCSHR (whole page present).
	DataHits uint64
	// DataMisses: DC accesses that matched an in-transfer page.
	DataMisses uint64
	// BufferHits: data misses serviced directly from a page copy buffer
	// (the paper reports 91.6% of data misses hit the buffer).
	BufferHits uint64
	// SubEntryWaits: data misses that had to wait for a sub-block.
	SubEntryWaits uint64
	// SubEntryOverflows: data misses that found all sub-entries busy.
	SubEntryOverflows uint64
	// WriteMissAbsorbed: write data misses deposited into a buffer,
	// saving the corresponding off-package read.
	WriteMissAbsorbed uint64
	// AcceptWaitSum/AcceptCount: cycles commands waited for a free PCSHR
	// (the PCSHR-contention component of tag-management latency).
	AcceptWaitSum uint64
	AcceptCount   uint64
	// BufferWaitSum: cycles PCSHRs waited for a copy buffer
	// (area-optimized design).
	BufferWaitSum uint64
	// PCSHROccupancySum samples occupancy at each acceptance.
	PCSHROccupancySum uint64
}

// BufferHitRate returns buffer hits / data misses.
func (s *BackendStats) BufferHitRate() float64 {
	if s.DataMisses == 0 {
		return 0
	}
	return float64(s.BufferHits) / float64(s.DataMisses)
}

type subEntry struct {
	si   uint
	done mem.Done
	// probe/parkedAt carry latency provenance: while parked the probe
	// reads StallPCSHR, and the wake emits a pcshr_wait span.
	probe    *mem.Probe
	parkedAt uint64
}

//nomad:owner channel
//nomad:ephemeral PCSHR working state; divergence surfaces in the registered backend.* counters and occupancy histograms
type pcshr struct {
	// b is the owning Backend: the register itself is the dram.Completer
	// for its sub-block bursts, so issuing a read or write costs no
	// closure allocation (the callback routes through Complete with a
	// packed argument).
	b     *Backend
	valid bool
	// epoch invalidates in-flight DRAM callbacks from a previous
	// occupancy of this register: a write-absorbed sub-block lets the
	// command complete while its superseded off-package read is still in
	// flight.
	epoch uint64
	cmd   Command
	// prio holds prioritized sub-block indexes not yet read-issued;
	// prioHead indexes the next one. Consuming by index (not re-slicing)
	// keeps the backing array, so an epoch's appends reuse capacity left
	// by earlier occupancies instead of reallocating.
	prio       []uint
	prioHead   int
	nextSeq    uint   // next sequential sub-block to consider
	rvec       uint64 // read issued (or skipped via write-miss absorption)
	bvec       uint64 // sub-block present in the page copy buffer
	wvec       uint64 // destination write issued
	writesDone uint
	inFlight   int
	started    bool   // has a copy buffer
	bufWaitAt  uint64 // cycle the register began waiting for a buffer
	subs       []subEntry
	// overflow queues sub-entry arrivals beyond cfg.SubEntries; ovHead
	// indexes the next to drain (same capacity-preserving scheme as prio).
	overflow []subEntry
	ovHead   int
	group    int
}

type pendingCmd struct {
	cmd     Command
	arrival uint64
	done    mem.Done
}

//nomad:owner channel
//nomad:ephemeral copy-buffer group working state; divergence surfaces in the registered buffer-wait counters and histograms
type group struct {
	regs     []*pcshr
	freeBufs int
	bufs     int // total buffers in the group
	// fillQueue has acceptance priority over wbQueue: a waiting cache
	// fill is on an application thread's critical path (inside the tag
	// miss handler), while writebacks are background work.
	fillQueue  []pendingCmd
	wbQueue    []pendingCmd
	bufWaiters []*pcshr
}

// Backend is the NOMAD back-end hardware. HBM holds the DRAM cache; DDR is
// the off-package memory.
//
//nomad:owner channel
type Backend struct {
	cfg    BackendConfig
	eng    *sim.Engine
	hbm    *dram.Device
	ddr    *dram.Device
	groups []group
	// byCFN indexes active PCSHRs by CFN for O(1) access checks (models
	// the CAM).
	//nomad:ephemeral fill/writeback routing indexes; divergence surfaces in the registered backend.* counters
	byCFN map[uint64]*pcshr
	// byPFN indexes active *writeback* PCSHRs by PFN so physical-space
	// accesses racing a writeback are serviced coherently.
	//nomad:ephemeral fill/writeback routing indexes; divergence surfaces in the registered backend.* counters
	byPFN map[uint64]*pcshr
	stats BackendStats
	// pcshrOcc samples register occupancy at each acceptance; bufInUse
	// samples buffers in use at each buffer grant (nil until
	// RegisterMetrics). trace records the PCSHR and fill lifecycle.
	pcshrOcc *metrics.Histogram
	bufInUse *metrics.Histogram
	// occPeak is the highest register occupancy seen since the last
	// timeline interval read (Fig. 14's burst high-water mark).
	occPeak int
	trace   *metrics.Trace
	spans   *metrics.SpanRing
	// onComplete, if set, is called when any command completes (tests).
	onComplete func(Command)
}

// NewBackend builds the back-end over the two DRAM devices.
func NewBackend(eng *sim.Engine, cfg BackendConfig, hbm, ddr *dram.Device) *Backend {
	cfg = cfg.normalized()
	ngroups := 1
	if cfg.Distributed {
		ngroups = hbm.Config().Channels
		if cfg.PCSHRs%ngroups != 0 && cfg.PCSHRs > ngroups {
			// Round up so every group has at least one register.
			cfg.PCSHRs = ((cfg.PCSHRs + ngroups - 1) / ngroups) * ngroups
		}
		if cfg.PCSHRs < ngroups {
			ngroups = cfg.PCSHRs // tiny configs: fewer groups than channels
		}
	}
	b := &Backend{
		cfg:    cfg,
		eng:    eng,
		hbm:    hbm,
		ddr:    ddr,
		groups: make([]group, ngroups),
		byCFN:  make(map[uint64]*pcshr),
		byPFN:  make(map[uint64]*pcshr),
	}
	per := cfg.PCSHRs / ngroups
	bufPer := cfg.CopyBuffers / ngroups
	if bufPer == 0 {
		bufPer = 1
	}
	for g := range b.groups {
		b.groups[g].regs = make([]*pcshr, per)
		for i := range b.groups[g].regs {
			b.groups[g].regs[i] = &pcshr{group: g, b: b}
		}
		b.groups[g].freeBufs = bufPer
		b.groups[g].bufs = bufPer
	}
	return b
}

// Stats returns the back-end counters.
func (b *Backend) Stats() *BackendStats { return &b.stats }

// RegisterMetrics exposes the back-end counters in reg under prefix
// (conventionally "backend") plus PCSHR- and buffer-occupancy histograms,
// and attaches the trace for PCSHR/fill lifecycle events.
func (b *Backend) RegisterMetrics(reg *metrics.Registry, prefix string) {
	s := &b.stats
	reg.CounterFunc(prefix+".fills", func() uint64 { return s.Fills })
	reg.CounterFunc(prefix+".writebacks", func() uint64 { return s.Writebacks })
	reg.CounterFunc(prefix+".data_hits", func() uint64 { return s.DataHits })
	reg.CounterFunc(prefix+".data_misses", func() uint64 { return s.DataMisses })
	reg.CounterFunc(prefix+".buffer_hits", func() uint64 { return s.BufferHits })
	reg.CounterFunc(prefix+".sub_entry_waits", func() uint64 { return s.SubEntryWaits })
	reg.CounterFunc(prefix+".sub_entry_overflows", func() uint64 { return s.SubEntryOverflows })
	reg.CounterFunc(prefix+".write_miss_absorbed", func() uint64 { return s.WriteMissAbsorbed })
	reg.CounterFunc(prefix+".accept_wait_sum", func() uint64 { return s.AcceptWaitSum })
	reg.CounterFunc(prefix+".accept_count", func() uint64 { return s.AcceptCount })
	reg.CounterFunc(prefix+".buffer_wait_sum", func() uint64 { return s.BufferWaitSum })
	reg.CounterFunc(prefix+".pcshr_occupancy_sum", func() uint64 { return s.PCSHROccupancySum })
	reg.SeriesFunc(prefix+".active_pcshrs", func(now uint64) float64 { return float64(b.ActivePCSHRs()) })
	// Timeline column: per-interval PCSHR occupancy high-water. The peak is
	// maintained at each allocation and read-and-reset once per window, so
	// a burst that fills the registers mid-window is visible even if they
	// drain again before the boundary.
	reg.IntervalFunc(prefix+".pcshr_highwater",
		func(now uint64) { b.occPeak = b.ActivePCSHRs() },
		func(now uint64) float64 {
			hw := b.occPeak
			if cur := b.ActivePCSHRs(); cur > hw {
				hw = cur
			}
			b.occPeak = b.ActivePCSHRs()
			return float64(hw)
		})
	b.pcshrOcc = reg.Histogram(prefix + ".pcshr_occupancy")
	b.bufInUse = reg.Histogram(prefix + ".buffer_in_use")
	b.trace = reg.Trace()
	b.spans = reg.Spans()
}

// emitSpan records one hop of a sampled access (no-op otherwise).
func (b *Backend) emitSpan(p *mem.Probe, kind metrics.SpanKind, start, end uint64) {
	if b.spans == nil || p == nil || p.SpanID == 0 {
		return
	}
	b.spans.Emit(metrics.Span{ID: p.SpanID, Kind: kind, Core: p.Core, Start: start, End: end})
}

// Config returns the normalized configuration.
func (b *Backend) Config() BackendConfig { return b.cfg }

func (b *Backend) groupOf(cfn uint64) *group {
	return &b.groups[int(cfn)%len(b.groups)]
}

// Send writes a command into the back-end interface. accepted fires when a
// PCSHR has been allocated (the interface returns to the idle state); until
// then the interface is busy and the OS routine holding it is stalled —
// which is how PCSHR exhaustion shows up as tag-management latency
// (Fig. 14).
func (b *Backend) Send(cmd Command, accepted mem.Done) {
	g := b.groupOf(cmd.CFN)
	pc := pendingCmd{cmd: cmd, arrival: b.eng.Now(), done: accepted}
	if cmd.Type == CmdFill {
		g.fillQueue = append(g.fillQueue, pc)
	} else {
		g.wbQueue = append(g.wbQueue, pc)
	}
	b.drainCommands(g)
}

func (b *Backend) drainCommands(g *group) {
	for len(g.fillQueue)+len(g.wbQueue) > 0 {
		var free *pcshr
		occupied := 0
		for _, r := range g.regs {
			if r.valid {
				occupied++
			} else if free == nil {
				free = r
			}
		}
		if free == nil {
			return
		}
		var pc pendingCmd
		if len(g.fillQueue) > 0 {
			pc = g.fillQueue[0]
			g.fillQueue = g.fillQueue[1:]
		} else {
			pc = g.wbQueue[0]
			g.wbQueue = g.wbQueue[1:]
		}
		b.stats.AcceptWaitSum += b.eng.Now() - pc.arrival
		b.stats.AcceptCount++
		b.stats.PCSHROccupancySum += uint64(occupied)
		b.pcshrOcc.Observe(uint64(occupied))
		if occupied+1 > b.occPeak {
			b.occPeak = occupied + 1
		}
		b.allocate(free, pc.cmd)
		if pc.done != nil {
			pc.done()
		}
	}
}

func (b *Backend) allocate(r *pcshr, cmd Command) {
	if check.Enabled {
		check.Assert(!r.valid, "backend: allocating an occupied PCSHR (cfn %#x)", cmd.CFN)
		if cmd.Type == CmdFill {
			_, dup := b.byCFN[cmd.CFN]
			check.Assert(!dup, "backend: second concurrent fill for cfn %#x", cmd.CFN)
		} else {
			_, dup := b.byPFN[cmd.PFN]
			check.Assert(!dup, "backend: second concurrent writeback for pfn %#x", cmd.PFN)
		}
	}
	*r = pcshr{valid: true, cmd: cmd, group: r.group, epoch: r.epoch + 1, b: r.b,
		prio: r.prio[:0], subs: r.subs[:0], overflow: r.overflow[:0]}
	b.trace.Emit(b.eng.Now(), metrics.EvPCSHRAlloc, cmd.CFN, cmd.PFN)
	if cmd.Type == CmdFill {
		b.stats.Fills++
		if !b.cfg.NoCriticalFirst {
			// Critical-data-first: the P bit is set and PI is
			// deduced from the interface register's offset field.
			r.prio = append(r.prio, uint(cmd.Offset>>mem.BlockBits)&(mem.SubBlocksPerPage-1))
		}
		b.byCFN[cmd.CFN] = r
	} else {
		b.stats.Writebacks++
		b.byPFN[cmd.PFN] = r
		// A writeback's source frame has already been released by the
		// OS, so CFN accesses to it cannot occur; no byCFN entry.
	}
	g := &b.groups[r.group]
	if g.freeBufs > 0 {
		g.freeBufs--
		b.bufInUse.Observe(uint64(g.bufs - g.freeBufs))
		b.start(r)
	} else {
		r.bufWaitAt = b.eng.Now()
		g.bufWaiters = append(g.bufWaiters, r)
	}
}

func (b *Backend) start(r *pcshr) {
	r.started = true
	if r.cmd.Type == CmdFill {
		b.trace.Emit(b.eng.Now(), metrics.EvFillStart, r.cmd.CFN, r.cmd.PFN)
	}
	b.issueReads(r)
}

// issueReads keeps up to MaxReadsInFlight sub-block reads outstanding,
// prioritized sub-blocks first, then sequential order.
func (b *Backend) issueReads(r *pcshr) {
	for r.inFlight < b.cfg.MaxReadsInFlight {
		si, priority, ok := b.nextRead(r)
		if !ok {
			return
		}
		r.rvec |= 1 << si
		r.inFlight++
		arg := r.epoch<<8 | uint64(si)<<1 | completeRead
		if r.cmd.Type == CmdFill {
			src := mem.AddrInFrame(r.cmd.PFN, uint64(si)*mem.BlockSize)
			b.ddr.AccessArg(src, false, mem.KindFill, priority, r, arg)
		} else {
			src := mem.AddrInFrame(r.cmd.CFN, uint64(si)*mem.BlockSize)
			b.hbm.AccessArg(src, false, mem.KindWriteback, priority, r, arg)
		}
	}
}

// Completion-argument packing for pcshr.Complete: bit 0 distinguishes read
// arrivals from write completions, bits 1..7 carry the sub-block index, and
// the rest is the register epoch that invalidates stale callbacks.
const (
	completeWrite = uint64(0)
	completeRead  = uint64(1)
)

// Complete implements dram.Completer: one long-lived callback object per
// register instead of one closure per burst.
func (r *pcshr) Complete(arg uint64) {
	epoch := arg >> 8
	si := uint(arg>>1) & 0x7f
	if arg&1 == completeRead {
		r.b.readArrived(r, epoch, si)
	} else {
		r.b.writeDone(r, epoch)
	}
}

// nextRead picks the next sub-block to read. Demand-triggered (prioritized)
// sub-blocks come first and ride the DRAM priority path
// (critical-data-first), then the remaining sub-blocks in sequential order.
func (b *Backend) nextRead(r *pcshr) (si uint, priority, ok bool) {
	for r.prioHead < len(r.prio) {
		si = r.prio[r.prioHead]
		r.prioHead++
		if r.rvec&(1<<si) == 0 {
			return si, true, true
		}
	}
	r.prio = r.prio[:0] // fully consumed: rewind so later appends reuse it
	r.prioHead = 0
	for r.nextSeq < mem.SubBlocksPerPage {
		si = r.nextSeq
		r.nextSeq++
		if r.rvec&(1<<si) == 0 {
			return si, false, true
		}
	}
	return 0, false, false
}

// readArrived: a sub-block landed in the page copy buffer.
func (b *Backend) readArrived(r *pcshr, epoch uint64, si uint) {
	if r.epoch != epoch {
		return // register was recycled; this read belongs to a dead command
	}
	r.inFlight--
	if r.bvec&(1<<si) != 0 {
		// A demand write already deposited fresher data for this
		// sub-block; drop the stale read.
		b.issueReads(r)
		return
	}
	r.bvec |= 1 << si
	b.serviceSubEntries(r, si)
	b.issueWrite(r, si)
	b.issueReads(r)
}

// issueWrite moves a buffered sub-block to its destination.
func (b *Backend) issueWrite(r *pcshr, si uint) {
	r.wvec |= 1 << si
	arg := r.epoch<<8 | uint64(si)<<1 | completeWrite
	if r.cmd.Type == CmdFill {
		dst := mem.AddrInFrame(r.cmd.CFN, uint64(si)*mem.BlockSize)
		b.hbm.AccessArg(dst, true, mem.KindFill, false, r, arg)
	} else {
		dst := mem.AddrInFrame(r.cmd.PFN, uint64(si)*mem.BlockSize)
		b.ddr.AccessArg(dst, true, mem.KindWriteback, false, r, arg)
	}
}

func (b *Backend) writeDone(r *pcshr, epoch uint64) {
	if r.epoch != epoch {
		return
	}
	r.writesDone++
	if r.writesDone == mem.SubBlocksPerPage {
		b.complete(r)
	}
}

func (b *Backend) complete(r *pcshr) {
	cmd := r.cmd
	if check.Enabled {
		// PCSHR retirement: every sub-block was read (or write-absorbed),
		// buffered, and written out, and no access is still parked.
		check.Assert(r.writesDone == mem.SubBlocksPerPage,
			"backend: retiring PCSHR for %s %#x with %d/%d writes done",
			cmd.Type, cmd.CFN, r.writesDone, uint(mem.SubBlocksPerPage))
		check.Assert(bits.OnesCount64(r.rvec) == mem.SubBlocksPerPage &&
			bits.OnesCount64(r.bvec) == mem.SubBlocksPerPage &&
			bits.OnesCount64(r.wvec) == mem.SubBlocksPerPage,
			"backend: retiring PCSHR for %s %#x with incomplete vectors r=%#x b=%#x w=%#x",
			cmd.Type, cmd.CFN, r.rvec, r.bvec, r.wvec)
		check.Assert(len(r.subs) == 0 && len(r.overflow) == r.ovHead,
			"backend: retiring PCSHR for %s %#x with %d sub-entries and %d overflow waiters parked",
			cmd.Type, cmd.CFN, len(r.subs), len(r.overflow)-r.ovHead)
		// r.inFlight may legitimately be nonzero here: a write-absorbed
		// sub-block lets the command finish while its superseded read is
		// still in flight (the epoch check drops it on arrival).
	}
	b.trace.Emit(b.eng.Now(), metrics.EvPCSHRRetire, cmd.CFN, cmd.PFN)
	if cmd.Type == CmdFill {
		b.trace.Emit(b.eng.Now(), metrics.EvFillDone, cmd.CFN, cmd.PFN)
		delete(b.byCFN, cmd.CFN)
	} else {
		delete(b.byPFN, cmd.PFN)
	}
	// Service any stragglers (shouldn't exist: every sub-block was
	// serviced on arrival) and recycle the buffer and register.
	g := &b.groups[r.group]
	// Reset the register, preserving the Completer backref and the parked
	// slices' capacity (their contents are gone: all empty per the
	// invariants above, and prio entries were consumed by nextRead).
	*r = pcshr{group: r.group, epoch: r.epoch + 1, b: r.b,
		prio: r.prio[:0], subs: r.subs[:0], overflow: r.overflow[:0]}
	if len(g.bufWaiters) > 0 {
		next := g.bufWaiters[0]
		g.bufWaiters = g.bufWaiters[1:]
		b.stats.BufferWaitSum += b.eng.Now() - next.bufWaitAt
		b.start(next)
	} else {
		g.freeBufs++
	}
	if check.Enabled {
		check.Assert(g.freeBufs >= 0 && g.freeBufs <= g.bufs,
			"backend: group free-buffer count %d outside [0,%d]", g.freeBufs, g.bufs)
	}
	b.drainCommands(g)
	if b.onComplete != nil {
		b.onComplete(cmd)
	}
}

// scheduleDone fires a completion callback after the buffer-read latency,
// tolerating nil (writes from cache writebacks carry no callback).
func (b *Backend) scheduleDone(done mem.Done) {
	if done == nil {
		return
	}
	b.eng.Schedule(b.cfg.BufferReadLatency, done)
}

// serviceSubEntries wakes pending accesses for sub-block si and promotes
// overflow entries into freed sub-entry slots.
func (b *Backend) serviceSubEntries(r *pcshr, si uint) {
	kept := r.subs[:0]
	for _, se := range r.subs {
		if se.si == si {
			b.emitSpan(se.probe, metrics.SpanPCSHRWait, se.parkedAt, b.eng.Now())
			b.scheduleDone(se.done)
		} else {
			kept = append(kept, se)
		}
	}
	r.subs = kept
	for r.ovHead < len(r.overflow) && len(r.subs) < b.cfg.SubEntries {
		se := r.overflow[r.ovHead]
		r.overflow[r.ovHead] = subEntry{} // release the done/probe refs
		r.ovHead++
		if se.si == si || r.bvec&(1<<se.si) != 0 {
			b.emitSpan(se.probe, metrics.SpanPCSHRWait, se.parkedAt, b.eng.Now())
			b.scheduleDone(se.done)
			continue
		}
		b.park(r, se)
	}
	if r.ovHead == len(r.overflow) {
		r.overflow = r.overflow[:0] // fully drained: rewind
		r.ovHead = 0
	}
}

func (b *Backend) park(r *pcshr, se subEntry) {
	r.subs = append(r.subs, se)
	if b.cfg.NoCriticalFirst {
		return
	}
	// Demand for a not-yet-read sub-block elevates it to the priority
	// path (critical-data-first beyond the initial PI); an already-issued
	// read is promoted in the source device's queue.
	if r.rvec&(1<<se.si) == 0 {
		r.prio = append(r.prio, se.si)
		if r.started {
			b.issueReads(r)
		}
		return
	}
	if r.cmd.Type == CmdFill {
		b.ddr.Promote(mem.AddrInFrame(r.cmd.PFN, uint64(se.si)*mem.BlockSize))
	} else {
		b.hbm.Promote(mem.AddrInFrame(r.cmd.CFN, uint64(se.si)*mem.BlockSize))
	}
}

// AccessResult describes how the back-end disposed of a DC access check.
type AccessResult uint8

const (
	// DataHit: no PCSHR matched; the access proceeds to the DRAM cache.
	DataHit AccessResult = iota
	// ServedFromBuffer: the access was completed from a page copy
	// buffer; the caller must NOT access DRAM (bandwidth saved).
	ServedFromBuffer
	// Parked: the access waits in a sub-entry; done fires when the
	// sub-block arrives. The caller must not access DRAM.
	Parked
	// Absorbed: a write data miss was deposited into the buffer.
	Absorbed
)

// CheckCacheAccess verifies data presence for an access to cache frame cfn
// (every DC access performs this PCSHR lookup, §III-D.3). For results other
// than DataHit the back-end takes ownership of completion and will invoke
// done; for DataHit the caller proceeds to the on-package DRAM and invokes
// done itself. VerifyLatency is charged by the caller (see scheme adapter).
// p, when non-nil, is the access's latency-provenance probe: parked
// accesses read StallPCSHR and sampled ones emit buffer / pcshr_wait spans.
func (b *Backend) CheckCacheAccess(cfn uint64, si uint, write bool, p *mem.Probe, done mem.Done) AccessResult {
	r, ok := b.byCFN[cfn]
	if !ok {
		b.stats.DataHits++
		return DataHit
	}
	b.stats.DataMisses++
	if write {
		// Write data miss: deposit into the page copy buffer, set B
		// (and suppress the off-package read if not yet issued).
		if r.rvec&(1<<si) == 0 {
			r.rvec |= 1 << si
			b.stats.WriteMissAbsorbed++
		}
		first := r.bvec&(1<<si) == 0
		r.bvec |= 1 << si
		if first {
			b.serviceSubEntries(r, si)
			b.issueWrite(r, si)
		}
		b.scheduleDone(done)
		return Absorbed
	}
	if r.bvec&(1<<si) != 0 {
		// Page copy buffer hit: serviced without touching the
		// on-package DRAM.
		b.stats.BufferHits++
		b.emitSpan(p, metrics.SpanBuffer, b.eng.Now(), b.eng.Now()+b.cfg.BufferReadLatency)
		b.scheduleDone(done)
		return ServedFromBuffer
	}
	b.stats.SubEntryWaits++
	if p != nil {
		p.Cause = mem.StallPCSHR
	}
	se := subEntry{si: si, done: done, probe: p, parkedAt: b.eng.Now()}
	if len(r.subs) >= b.cfg.SubEntries {
		b.stats.SubEntryOverflows++
		b.trace.Emit(b.eng.Now(), metrics.EvPCSHROverflow, cfn, uint64(si))
		r.overflow = append(r.overflow, se)
		return Parked
	}
	b.park(r, se)
	return Parked
}

// CheckPhysicalAccess consults writeback PCSHRs for an access to physical
// frame pfn. A page being written back has been un-cached by the OS, so
// demand accesses target off-package memory; serving them from the copy
// buffer keeps them coherent with the not-yet-written data.
func (b *Backend) CheckPhysicalAccess(pfn uint64, si uint, write bool, p *mem.Probe, done mem.Done) AccessResult {
	r, ok := b.byPFN[pfn]
	if !ok {
		return DataHit
	}
	b.stats.DataMisses++
	if write {
		first := r.bvec&(1<<si) == 0
		if r.rvec&(1<<si) == 0 {
			r.rvec |= 1 << si
		}
		r.bvec |= 1 << si
		if first {
			b.serviceSubEntries(r, si)
			b.issueWrite(r, si)
		}
		b.scheduleDone(done)
		return Absorbed
	}
	if r.bvec&(1<<si) != 0 {
		b.stats.BufferHits++
		b.emitSpan(p, metrics.SpanBuffer, b.eng.Now(), b.eng.Now()+b.cfg.BufferReadLatency)
		b.scheduleDone(done)
		return ServedFromBuffer
	}
	b.stats.SubEntryWaits++
	if p != nil {
		p.Cause = mem.StallPCSHR
	}
	se := subEntry{si: si, done: done, probe: p, parkedAt: b.eng.Now()}
	if len(r.subs) >= b.cfg.SubEntries {
		b.stats.SubEntryOverflows++
		b.trace.Emit(b.eng.Now(), metrics.EvPCSHROverflow, pfn, uint64(si))
		r.overflow = append(r.overflow, se)
		return Parked
	}
	b.park(r, se)
	return Parked
}

// InTransfer reports whether cfn has an active fill (for tests).
func (b *Backend) InTransfer(cfn uint64) bool {
	_, ok := b.byCFN[cfn]
	return ok
}

// ActivePCSHRs counts occupied registers across groups.
func (b *Backend) ActivePCSHRs() int {
	n := 0
	for gi := range b.groups {
		for _, r := range b.groups[gi].regs {
			if r.valid {
				n++
			}
		}
	}
	return n
}

// String describes the back-end organization.
func (b *Backend) String() string {
	org := "centralized"
	if b.cfg.Distributed {
		org = fmt.Sprintf("distributed(%d groups)", len(b.groups))
	}
	return fmt.Sprintf("backend{%d PCSHRs, %d buffers, %s}", b.cfg.PCSHRs, b.cfg.CopyBuffers, org)
}
