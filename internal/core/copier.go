package core

import (
	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/sim"
)

// Copier performs OS-driven page copies without back-end hardware. The
// blocking TDC scheme uses it both for miss-handling cache fills (the
// application thread waits for the copy to finish) and for eviction
// writebacks (fire-and-forget from the background daemon).
//
// A copy moves one 4 KB page as 64 sub-block reads from the source device
// followed by 64 writes to the destination, with a bounded number of reads
// in flight — the same data movement the NOMAD back-end performs, minus the
// PCSHRs, buffersharing, and critical-data-first logic.
type Copier struct {
	eng              *sim.Engine
	maxReadsInFlight int
}

// NewCopier builds a Copier with the given read pacing (<=0 selects 4).
func NewCopier(eng *sim.Engine, maxReadsInFlight int) *Copier {
	if maxReadsInFlight <= 0 {
		maxReadsInFlight = 8
	}
	return &Copier{eng: eng, maxReadsInFlight: maxReadsInFlight}
}

// Copy moves srcFrame on src to dstFrame on dst, tagging all traffic with
// kind. done (may be nil) fires when the last destination write completes.
func (c *Copier) Copy(src *dram.Device, srcFrame uint64, dst *dram.Device, dstFrame uint64, kind mem.Kind, done mem.Done) {
	var (
		nextRead   uint
		reads      int
		writesDone uint
	)
	var issue func()
	issue = func() {
		for reads < c.maxReadsInFlight && nextRead < mem.SubBlocksPerPage {
			si := nextRead
			nextRead++
			reads++
			srcAddr := mem.AddrInFrame(srcFrame, uint64(si)*mem.BlockSize)
			dstAddr := mem.AddrInFrame(dstFrame, uint64(si)*mem.BlockSize)
			src.Access(srcAddr, false, kind, false, func() {
				reads--
				dst.Access(dstAddr, true, kind, false, func() {
					writesDone++
					if writesDone == mem.SubBlocksPerPage && done != nil {
						done()
					}
				})
				issue()
			})
		}
	}
	issue()
}
