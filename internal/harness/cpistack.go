package harness

import (
	"context"
	"fmt"

	"nomad/internal/mem"
	"nomad/internal/system"
	"nomad/internal/workload"
)

// cpistackWorkloads spans the Fig. 11 spectrum: cact/sssp are the
// high-RMHB workloads where blocking tag management dominates, mcf is the
// loose-region case where it does not.
var cpistackWorkloads = []string{"cact", "sssp", "mcf"}

func init() {
	register(Experiment{
		ID:    "cpistack",
		Title: "Fig. 11: CPI-stack stall attribution per scheme (where do cycles go?)",
		Run:   runCPIStack,
	})
}

func runCPIStack(ctx context.Context, opts Options) (*Report, error) {
	var runs []Run
	for _, abbr := range cpistackWorkloads {
		sp, ok := workload.ByAbbr(abbr)
		if !ok {
			return nil, fmt.Errorf("cpistack: unknown workload %q", abbr)
		}
		for _, scheme := range system.AllSchemes() {
			cfg := opts.BaseConfig()
			cfg.Scheme = scheme
			runs = append(runs, Run{Key: key(abbr, scheme), Cfg: cfg, Spec: sp})
		}
	}
	res, err := Execute(ctx, opts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("cpistack", res)
	header := []interface{}{"Workload", "Scheme", "Compute%", "TagMiss%", "Front%"}
	for c := mem.StallCause(0); c < mem.NumStallCauses; c++ {
		header = append(header, c.String()+"%")
	}
	hs := make([]string, len(header))
	for i, h := range header {
		hs[i] = fmt.Sprint(h)
	}
	t := NewTable(hs...)
	for _, abbr := range cpistackWorkloads {
		for _, scheme := range system.AllSchemes() {
			r := res[key(abbr, scheme)]
			st := r.CPIStack
			total := float64(st.Total())
			pct := func(v uint64) float64 { return 100 * float64(v) / total }
			row := []interface{}{abbr, string(scheme), pct(st.Compute), pct(st.TagMiss), pct(st.Frontend)}
			for _, v := range st.Mem {
				row = append(row, pct(v))
			}
			t.Addf(row...)
		}
	}
	rep.add(t,
		"Fig. 11: every ROI core-cycle attributed to a named bucket (buckets sum to 100%).",
		"TagMiss is thread suspension inside OS tag-management routines: it dominates the",
		"blocking OS-managed scheme (TDC) on high-RMHB workloads and is near zero under",
		"NOMAD, whose tag-data decoupling services misses without suspending threads.",
		"The mem buckets split load stalls by the blocking load's location (pcshr = ",
		"NOMAD sub-entry wait; dram_queue/row_conflict/bus/dram_service = device time).")
	return rep, nil
}
