package harness

import (
	"context"
	"fmt"
	"math"

	"nomad/internal/system"
	"nomad/internal/workload"
)

func systemScheme(s string) system.SchemeName { return system.SchemeName(s) }

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Fig. 9: IPC relative to Baseline and average DC access time, all schemes x all workloads",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Fig. 10: on-package DRAM bandwidth breakdown and row-buffer hit rates",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Fig. 11: application stall cycle ratios and tag management latency (TDC vs NOMAD)",
		Run:   runFig11,
	})
}

// mainMatrix runs every scheme on every Table I workload (shared by Figs. 9,
// 10, and 11).
func mainMatrix(ctx context.Context, opts Options, schemes []system.SchemeName) (Results, error) {
	var runs []Run
	for _, sp := range workload.Specs() {
		for _, s := range schemes {
			cfg := opts.BaseConfig()
			cfg.Scheme = s
			runs = append(runs, Run{Key: key(sp.Abbr, s), Cfg: cfg, Spec: sp})
		}
	}
	return Execute(ctx, opts, runs)
}

func runFig9(ctx context.Context, opts Options) (*Report, error) {
	res, err := mainMatrix(ctx, opts, system.AllSchemes())
	if err != nil {
		return nil, err
	}
	rep := newReport("fig9", res)

	t := NewTable("Class", "Workload", "TiD", "TDC", "NOMAD", "Ideal")
	var gm = map[system.SchemeName]float64{"TiD": 1, "TDC": 1, "NOMAD": 1, "Ideal": 1}
	n := 0
	for _, sp := range workload.Specs() {
		base := res[key(sp.Abbr, system.SchemeBaseline)].IPC
		row := []interface{}{sp.Class, sp.Abbr}
		for _, s := range []system.SchemeName{system.SchemeTiD, system.SchemeTDC, system.SchemeNOMAD, system.SchemeIdeal} {
			rel := res[key(sp.Abbr, s)].IPC / base
			gm[s] *= rel
			row = append(row, rel)
		}
		n++
		t.Addf(row...)
	}
	pow := 1.0 / float64(n)
	t.Addf("", "gmean", geo(gm["TiD"], pow), geo(gm["TDC"], pow), geo(gm["NOMAD"], pow), geo(gm["Ideal"], pow))
	rep.add(t,
		"Fig. 9 (top): IPC relative to Baseline. Paper shape: NOMAD ~ Ideal > TDC on",
		"Loose/Few; NOMAD > TiD > TDC~1.0 on Excess; NOMAD best overall.")

	t2 := NewTable("Class", "Workload", "Baseline", "TiD", "TDC", "NOMAD", "Ideal")
	for _, sp := range workload.Specs() {
		row := []interface{}{sp.Class, sp.Abbr}
		for _, s := range system.AllSchemes() {
			row = append(row, res[key(sp.Abbr, s)].AvgDCAccessTime)
		}
		t2.Addf(row...)
	}
	rep.add(t2,
		"Fig. 9 (bottom): average DC access time in CPU cycles (post-LLC read latency at",
		"the DC controller). Paper shape: OS-managed ~ Ideal; TiD inflated by metadata traffic.")

	// Headline numbers (§IV-B.5): NOMAD vs TDC and vs TiD.
	var nomadOverTDC, nomadOverTiD = 1.0, 1.0
	for _, sp := range workload.Specs() {
		nomadOverTDC *= res[key(sp.Abbr, system.SchemeNOMAD)].IPC / res[key(sp.Abbr, system.SchemeTDC)].IPC
		nomadOverTiD *= res[key(sp.Abbr, system.SchemeNOMAD)].IPC / res[key(sp.Abbr, system.SchemeTiD)].IPC
	}
	rep.add(nil, fmt.Sprintf("Headline: NOMAD improves IPC by %.1f%% over TDC (paper: 16.7%%) and %.1f%% over TiD (paper: 25.5%%), gmean.",
		100*(geo(nomadOverTDC, pow)-1), 100*(geo(nomadOverTiD, pow)-1)))
	return rep, nil
}

// geo returns the geometric mean given the product of n values and 1/n.
func geo(prod, pow float64) float64 {
	if prod <= 0 {
		return 0
	}
	return math.Pow(prod, pow)
}

func runFig10(ctx context.Context, opts Options) (*Report, error) {
	schemes := []system.SchemeName{system.SchemeTiD, system.SchemeTDC, system.SchemeNOMAD}
	res, err := mainMatrix(ctx, opts, schemes)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig10", res)
	t := NewTable("Workload", "Scheme", "Demand", "Metadata", "Fill", "Writeback", "Total GB/s", "RowHit%")
	for _, sp := range workload.Specs() {
		for _, s := range schemes {
			r := res[key(sp.Abbr, s)]
			toGBs := func(b uint64) float64 {
				if r.Seconds == 0 {
					return 0
				}
				return float64(b) / r.Seconds / 1e9
			}
			t.Addf(sp.Abbr, string(s),
				toGBs(r.HBMBytesByKind[0]), toGBs(r.HBMBytesByKind[1]),
				toGBs(r.HBMBytesByKind[2]), toGBs(r.HBMBytesByKind[3]),
				r.HBMGBs, 100*r.HBMRowHitRate)
		}
	}
	rep.add(t,
		"Fig. 10: on-package (HBM) bandwidth usage breakdown in GB/s and row-buffer hit",
		"rate. Paper shape: TiD burns bandwidth on metadata; OS schemes on page fills;",
		"high-spatial-locality workloads show high row hit rates.")
	return rep, nil
}

func runFig11(ctx context.Context, opts Options) (*Report, error) {
	schemes := []system.SchemeName{system.SchemeTDC, system.SchemeNOMAD}
	res, err := mainMatrix(ctx, opts, schemes)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig11", res)
	t := NewTable("Class", "Workload", "TDC stall%", "NOMAD stall%", "TDC tagLat", "NOMAD tagLat")
	var reduction float64
	n := 0
	for _, sp := range workload.Specs() {
		d := res[key(sp.Abbr, system.SchemeTDC)]
		m := res[key(sp.Abbr, system.SchemeNOMAD)]
		t.Addf(sp.Class, sp.Abbr, 100*d.OSStallRatio, 100*m.OSStallRatio,
			d.AvgTagMgmtLatency, m.AvgTagMgmtLatency)
		if d.OSStallRatio > 0 {
			reduction += (d.OSStallRatio - m.OSStallRatio) / d.OSStallRatio
			n++
		}
	}
	rep.add(t,
		"Fig. 11: application stall cycle ratio (thread suspended by OS routines) and",
		"average tag management latency. Paper: TDC stalls ~43%/29%/15%/4% by class;",
		"NOMAD cuts stall cycles by 76.1% on average; NOMAD tag latency 400..3200 cycles.")
	if n > 0 {
		rep.add(nil, fmt.Sprintf("Headline: NOMAD reduces application stall cycles by %.1f%% on average (paper: 76.1%%).",
			100*reduction/float64(n)))
	}
	return rep, nil
}
