package harness

import (
	"context"
	"fmt"
	"math/rand"

	"nomad/internal/mem"
	"nomad/internal/replacement"
	"nomad/internal/workload"
)

// The replacement study examines the claim of §III-C.2: "the
// fully-associative nature of the OS-managed design combined with the FIFO
// replacement policy exhibits about 23% less DC misses on average than a
// 16-way set-associative HW-based DRAM cache using an LRU policy" — the
// argument for why NOMAD's simple FIFO free queue is not a compromise.
//
// Part A sweeps working-set-to-capacity ratios with a skewed page-reuse
// trace (medium reuse distances are where associativity matters: full
// associativity eliminates conflict misses exactly when the working set is
// near capacity). Part B replays the Table I surrogates; their reuse is
// deliberately bimodal (DC-resident warm sets + one-sweep streams), so all
// policies converge there — an honest limitation of the synthetic traces,
// noted in EXPERIMENTS.md.
func init() {
	register(Experiment{
		ID:    "replacement",
		Title: "Replacement study (§III-C.2): FIFO fully-associative vs 16-way SA-LRU DC misses",
		Run:   runReplacement,
	})
}

func runReplacement(_ context.Context, opts Options) (*Report, error) {
	const capacity = 32768 // pages: the 128 MB scaled DC
	visits := 8 * capacity
	if opts.Fast {
		visits = 3 * capacity
	}

	rep := newReport("replacement", nil)
	t := NewTable("Strided fraction", "FIFO-FA%", "SA-LRU16%", "LRU-FA%", "FIFO/SA-LRU")
	var sumRel float64
	fractions := []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5}
	sets := uint64(capacity / 16)
	for _, frac := range fractions {
		// Working set = 0.9x capacity: fits fully associative caches,
		// stresses aliased sets.
		pages := uint64(capacity) * 9 / 10
		aliased := uint64(float64(pages) * frac)
		fifo := replacement.NewFIFO(capacity)
		sa := replacement.NewSetAssocLRU(capacity, 16)
		lru := replacement.NewLRUFA(capacity)
		rng := rand.New(rand.NewSource(42))
		// The aliased portion is spread over a few column residues;
		// the rest is uniform.
		residues := uint64(32)
		for i := 0; i < visits; i++ {
			var pg uint64
			if aliased > 0 && rng.Float64() < frac {
				// Column walk: fixed residue mod sets.
				col := uint64(rng.Int63n(int64(residues)))
				row := uint64(rng.Int63n(int64(aliased/residues + 1)))
				pg = 1<<41 | col | row*sets
			} else {
				pg = uint64(rng.Int63n(int64(pages - aliased + 1)))
			}
			fifo.Access(pg)
			sa.Access(pg)
			lru.Access(pg)
		}
		rel := replacement.MissRate(fifo) / replacement.MissRate(sa)
		sumRel += rel
		t.Addf(fmt.Sprintf("%.2f", frac),
			100*replacement.MissRate(fifo),
			100*replacement.MissRate(sa),
			100*replacement.MissRate(lru),
			rel)
	}
	rep.add(t,
		"A. Array traversals with power-of-two strides (column walks over grids with",
		"power-of-two leading dimensions, as in stencil/HPC codes): strided pages alias",
		"into few sets, so the set-associative cache takes conflict misses the fully",
		"associative FIFO design cannot have. The sweep varies the strided fraction.")
	rep.add(nil,
		fmt.Sprintf("Average FIFO-FA / SA-LRU16 miss ratio over the sweep: %.2f (paper's benchmark", sumRel/float64(len(fractions))),
		"average: ~0.77, i.e. 23% fewer misses).")

	t2 := NewTable("Class", "Workload", "FIFO-FA%", "SA-LRU16%", "FIFO/SA-LRU")
	const cores = 8
	for _, sp := range workload.Specs() {
		fifo := replacement.NewFIFO(capacity)
		sa := replacement.NewSetAssocLRU(capacity, 16)
		streams := make([]*workload.Stream, cores)
		last := make([]uint64, cores)
		for c := range streams {
			streams[c] = workload.NewStream(sp, uint64(c)*7919+1)
			last[c] = ^uint64(0)
		}
		for i := 0; i < visits; {
			c := i % cores
			page := mem.PageNum(streams[c].Next().Addr)<<4 | uint64(c)
			if page == last[c] {
				continue
			}
			last[c] = page
			fifo.Access(page)
			sa.Access(page)
			i++
		}
		t2.Addf(sp.Class, sp.Abbr,
			100*replacement.MissRate(fifo),
			100*replacement.MissRate(sa),
			replacement.MissRate(fifo)/replacement.MissRate(sa))
	}
	rep.add(t2,
		"B. Table I surrogates (reuse is bimodal by construction: resident warm sets +",
		"one-sweep streams, so policies converge; see EXPERIMENTS.md).")
	return rep, nil
}
