package harness

import (
	"context"
	"fmt"

	"nomad/internal/workload"
)

// Paper-reported Table I values for side-by-side comparison.
var paperTable1 = map[string][3]float64{ // abbr -> {RMHB GB/s, LLC MPMS, footprint GB}
	"cact": {43.8, 486.6, 11.9},
	"sssp": {38.8, 511.1, 2.3},
	"bwav": {31.7, 588.1, 4.5},
	"les":  {26.5, 532.8, 7.5},
	"libq": {25.1, 210.6, 4.0},
	"gems": {24.8, 269.2, 6.3},
	"bfs":  {23.1, 298.5, 2.4},
	"cc":   {13.5, 183.1, 2.3},
	"lbm":  {12.4, 270.5, 3.2},
	"mcf":  {12.2, 472.0, 2.8},
	"bc":   {10.8, 533.7, 1.3},
	"ast":  {6.9, 72.1, 1.0},
	"pr":   {3.4, 691.9, 4.8},
	"sop":  {1.7, 310.2, 1.2},
	"tc":   {1.66, 226.3, 2.3},
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table I: workload characteristics under the ideal OS-managed configuration",
		Run:   runTable1,
	})
}

func runTable1(ctx context.Context, opts Options) (*Report, error) {
	specs := workload.Specs()
	runs := make([]Run, 0, len(specs))
	for _, sp := range specs {
		cfg := opts.BaseConfig()
		cfg.Scheme = "Ideal"
		runs = append(runs, Run{Key: sp.Abbr, Cfg: cfg, Spec: sp})
	}
	res, err := Execute(ctx, opts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("table1", res)
	t := NewTable("Class", "Workload", "RMHB GB/s", "(paper)", "LLC MPMS", "(paper)", "Footprint MB", "(paper GB)", "IdealIPC")
	for _, sp := range specs {
		r := res[sp.Abbr]
		p := paperTable1[sp.Abbr]
		t.Addf(sp.Class, sp.Abbr,
			r.RMHBGBs, fmt.Sprintf("(%.1f)", p[0]),
			r.LLCMPMS, fmt.Sprintf("(%.1f)", p[1]),
			float64(sp.FootprintBytes())/(1024*1024), fmt.Sprintf("(%.1f)", p[2]),
			r.IPC)
	}
	rep.add(t,
		"Table I: workload characteristics (measured under Ideal config; paper values in parens).",
		"RMHB = required miss-handling bandwidth of off-package memory; MPMS = LLC misses/us.",
		"Footprints are the paper's scaled 1/64 (see DESIGN.md); class boundaries are relative",
		"to the scaled off-package bandwidth of 25.6 GB/s.")
	return rep, nil
}
