package harness

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nomad/internal/metrics"
	"nomad/internal/system"
	"nomad/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ablations", "replacement", "selective", "cpistack", "timeline"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := Get("fig99"); ok {
		t.Error("found nonexistent experiment")
	}
}

func TestAllStableOrder(t *testing.T) {
	a, b := All(), All()
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("All() order is not stable")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("A", "BB")
	tb.Addf("x", 1.5)
	tb.Add("longer", "y")
	var buf bytes.Buffer
	tb.Write(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "BB") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.50") {
		t.Fatalf("float not formatted: %q", lines[2])
	}
}

func TestReportWriteText(t *testing.T) {
	rep := &Report{ID: "x", Title: "X"}
	tb := NewTable("A")
	tb.Add("1")
	rep.add(tb, "first note", "second note")
	rep.add(nil, "closing line")
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := "first note\nsecond note\n\nA\n-\n1\n\nclosing line\n"
	if out != want {
		t.Fatalf("WriteText:\n%q\nwant:\n%q", out, want)
	}
}

func TestKey(t *testing.T) {
	if got := key("a", 1, true); got != "a/1/true" {
		t.Fatalf("key = %q", got)
	}
}

func testConfig() system.Config {
	cfg := system.DefaultConfig()
	cfg.Cores = 2
	cfg.Scheme = system.SchemeNOMAD
	cfg.CacheFrames = 4096
	cfg.WarmupInstructions = 30_000
	cfg.ROIInstructions = 60_000
	return cfg
}

func TestExecuteParallelDeterminism(t *testing.T) {
	// The same run executed twice (even concurrently) must give identical
	// results: the public determinism guarantee the harness relies on.
	sp, _ := workload.ByAbbr("tc")
	cfg := testConfig()
	runs := []Run{
		{Key: "a", Cfg: cfg, Spec: sp},
		{Key: "b", Cfg: cfg, Spec: sp},
	}
	res, err := Execute(context.Background(), Options{Parallelism: 2}, runs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res["a"], res["b"]
	if a.IPC != b.IPC || a.Cycles != b.Cycles || a.TagMisses != b.TagMisses {
		t.Fatalf("identical runs diverged:\n%v\n%v", a, b)
	}
}

func TestExecuteDeterministicAcrossWorkerCounts(t *testing.T) {
	// A batch must produce identical results whether it runs on 1 worker
	// or many: scheduling must not leak into simulation outcomes.
	sp, _ := workload.ByAbbr("tc")
	cfg := testConfig()
	var runs []Run
	for _, k := range []string{"a", "b", "c"} {
		runs = append(runs, Run{Key: k, Cfg: cfg, Spec: sp})
	}
	serial, err := Execute(context.Background(), Options{Parallelism: 1}, runs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Execute(context.Background(), Options{Parallelism: 3}, runs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		s, p := serial[k], parallel[k]
		if s.Cycles != p.Cycles || s.Instructions != p.Instructions || s.IPC != p.IPC {
			t.Fatalf("run %q diverged across worker counts:\n%v\n%v", k, s, p)
		}
	}
}

func TestExecuteJoinsAllErrors(t *testing.T) {
	// Every failing run must be reported (errors.Join), annotated with its
	// key, and successful runs must still be returned.
	sp, _ := workload.ByAbbr("tc")
	good := testConfig()
	bad := testConfig()
	bad.Scheme = "NoSuchScheme"
	runs := []Run{
		{Key: "bad1", Cfg: bad, Spec: sp},
		{Key: "ok", Cfg: good, Spec: sp},
		{Key: "bad2", Cfg: bad, Spec: sp},
	}
	res, err := Execute(context.Background(), Options{Parallelism: 2}, runs)
	if err == nil {
		t.Fatal("invalid scheme did not error")
	}
	for _, want := range []string{`"bad1"`, `"bad2"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
	if res["ok"] == nil {
		t.Error("successful run missing from partial results")
	}
	if res["bad1"] != nil || res["bad2"] != nil {
		t.Error("failed runs present in results")
	}
}

func TestExecuteCancelledMidBatch(t *testing.T) {
	// Cancelling during a batch returns ctx.Err() (exactly once, not per
	// run) and whatever completed before the cancellation.
	sp, _ := workload.ByAbbr("tc")
	cfg := testConfig()
	cfg.WarmupInstructions = 0
	cfg.ROIInstructions = 5_000_000 // long enough to straddle the cancel
	var runs []Run
	for i := 0; i < 4; i++ {
		runs = append(runs, Run{Key: key("r", i), Cfg: cfg, Spec: sp})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := Execute(ctx, Options{Parallelism: 2}, runs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := strings.Count(err.Error(), context.Canceled.Error()); n != 1 {
		t.Fatalf("context.Canceled reported %d times, want once: %v", n, err)
	}
}

func TestExecuteBoundsParallelism(t *testing.T) {
	// Options.Parallelism is the worker-pool size: no more than that many
	// simulations may be in flight at once.
	sp, _ := workload.ByAbbr("tc")
	cfg := testConfig()
	cfg.WarmupInstructions = 10_000
	cfg.ROIInstructions = 20_000
	var runs []Run
	for i := 0; i < 6; i++ {
		runs = append(runs, Run{Key: key("r", i), Cfg: cfg, Spec: sp})
	}
	// Each in-flight simulation polls ctx.Err() every sampling window, so
	// the peak number of concurrent Err() sections bounds the number of
	// concurrent runs. Exceeding the limit can only happen if Execute
	// really runs too many simulations at once; the check cannot fail
	// spuriously.
	var inFlight, peak atomic.Int64
	ctx := &countingContext{Context: context.Background(), inFlight: &inFlight, peak: &peak}
	if _, err := Execute(ctx, Options{Parallelism: 2}, runs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("observed %d concurrent runs, want <= 2", p)
	}
}

// countingContext tracks the peak number of concurrent Err() sections. The
// brief hold makes overlap between concurrently running simulations (which
// poll Err() every sampling window) observable.
type countingContext struct {
	context.Context
	inFlight *atomic.Int64
	peak     *atomic.Int64
}

func (c *countingContext) Err() error {
	n := c.inFlight.Add(1)
	for {
		p := c.peak.Load()
		if n <= p || c.peak.CompareAndSwap(p, n) {
			break
		}
	}
	time.Sleep(100 * time.Microsecond)
	c.inFlight.Add(-1)
	return c.Context.Err()
}

func TestOptionsBaseConfig(t *testing.T) {
	slow := Options{}.BaseConfig()
	fast := Options{Fast: true}.BaseConfig()
	if fast.ROIInstructions >= slow.ROIInstructions {
		t.Fatal("fast mode did not shrink the ROI")
	}
	if (Options{}).workers() < 1 {
		t.Fatal("workers < 1")
	}
	if (Options{Parallelism: 3}).workers() != 3 {
		t.Fatal("explicit parallelism ignored")
	}
}

func TestBaseConfigCarriesTelemetryOptions(t *testing.T) {
	opts := Options{
		Timeline:        true,
		Interval:        12_345,
		TimelineMetrics: []string{"core.", "hbm."},
		SelfProfile:     true,
		TraceDepth:      7,
	}
	cfg := opts.BaseConfig()
	if !cfg.Timeline || cfg.Interval != 12_345 || !cfg.SelfProfile || cfg.TraceDepth != 7 {
		t.Fatalf("options not carried into config: %+v", cfg)
	}
	if len(cfg.TimelineMetrics) != 2 || cfg.TimelineMetrics[0] != "core." {
		t.Fatalf("timeline metrics filter lost: %v", cfg.TimelineMetrics)
	}
}

func TestDropWarnings(t *testing.T) {
	mk := func(evDrop, spDrop uint64) *RunResult {
		return &RunResult{Result: &system.Result{Metrics: &metrics.Snapshot{
			Trace: &metrics.TraceSummary{
				Events: 10, EventsDropped: evDrop,
				Spans: 20, SpansDropped: spDrop,
			},
		}}}
	}
	res := Results{
		"b/clean":   mk(0, 0),
		"a/events":  mk(5, 0),
		"c/spans":   mk(0, 3),
		"d/notrace": {Result: &system.Result{Metrics: &metrics.Snapshot{}}},
	}
	warns := dropWarnings(res)
	if len(warns) != 2 {
		t.Fatalf("warnings = %v, want 2", warns)
	}
	// Sorted by key: a/events first, c/spans second.
	if !strings.Contains(warns[0], "a/events") || !strings.Contains(warns[0], "dropped 5 of 15 events") {
		t.Fatalf("event warning wrong: %q", warns[0])
	}
	if !strings.Contains(warns[1], "c/spans") || !strings.Contains(warns[1], "dropped 3 of 23 spans") {
		t.Fatalf("span warning wrong: %q", warns[1])
	}
}

func TestNewReportAttachesWarnings(t *testing.T) {
	res := Results{"k": &RunResult{Result: &system.Result{Metrics: &metrics.Snapshot{
		Trace: &metrics.TraceSummary{Events: 1, EventsDropped: 2},
	}}}}
	rep := newReport("fig2", res)
	if len(rep.Warnings) != 1 || !strings.Contains(rep.Warnings[0], "k:") {
		t.Fatalf("warnings = %v", rep.Warnings)
	}
}
