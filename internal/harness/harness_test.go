package harness

import (
	"bytes"
	"strings"
	"testing"

	"nomad/internal/system"
	"nomad/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ablations", "replacement", "selective"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := Get("fig99"); ok {
		t.Error("found nonexistent experiment")
	}
}

func TestAllStableOrder(t *testing.T) {
	a, b := All(), All()
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("All() order is not stable")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("A", "BB")
	tb.addf("x", 1.5)
	tb.add("longer", "y")
	var buf bytes.Buffer
	tb.write(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "BB") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.50") {
		t.Fatalf("float not formatted: %q", lines[2])
	}
}

func TestKey(t *testing.T) {
	if got := key("a", 1, true); got != "a/1/true" {
		t.Fatalf("key = %q", got)
	}
}

func TestExecuteParallelDeterminism(t *testing.T) {
	// The same run executed twice (even concurrently) must give identical
	// results: the public determinism guarantee the harness relies on.
	sp, _ := workload.ByAbbr("tc")
	cfg := system.DefaultConfig()
	cfg.Cores = 2
	cfg.Scheme = system.SchemeNOMAD
	cfg.CacheFrames = 4096
	cfg.WarmupInstructions = 30_000
	cfg.ROIInstructions = 60_000
	runs := []Run{
		{Key: "a", Cfg: cfg, Spec: sp},
		{Key: "b", Cfg: cfg, Spec: sp},
	}
	var buf bytes.Buffer
	res, err := Execute(Options{Parallelism: 2}, &buf, runs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res["a"], res["b"]
	if a.IPC != b.IPC || a.Cycles != b.Cycles || a.TagMisses != b.TagMisses {
		t.Fatalf("identical runs diverged:\n%v\n%v", a, b)
	}
}

func TestExecuteReportsErrors(t *testing.T) {
	cfg := system.DefaultConfig()
	cfg.Scheme = "NoSuchScheme"
	sp, _ := workload.ByAbbr("tc")
	var buf bytes.Buffer
	_, err := Execute(Options{}, &buf, []Run{{Key: "bad", Cfg: cfg, Spec: sp}})
	if err == nil {
		t.Fatal("invalid scheme did not error")
	}
}

func TestOptionsBaseConfig(t *testing.T) {
	slow := Options{}.BaseConfig()
	fast := Options{Fast: true}.BaseConfig()
	if fast.ROIInstructions >= slow.ROIInstructions {
		t.Fatal("fast mode did not shrink the ROI")
	}
	if (Options{}).workers() < 1 {
		t.Fatal("workers < 1")
	}
	if (Options{Parallelism: 3}).workers() != 3 {
		t.Fatal("explicit parallelism ignored")
	}
}
