// Package harness reproduces every table and figure of the paper's
// evaluation. Each experiment is registered under the paper's artifact name
// (table1, fig2, fig9..fig16) and produces a structured Report holding the
// same rows or series the paper plots, plus each underlying run's full
// metrics snapshot; Report.WriteText renders the traditional text form.
//
// Runs are deterministic; independent runs execute in parallel across OS
// threads (each simulation is single-threaded and self-contained).
package harness

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"nomad/internal/obs"
	"nomad/internal/sim"
	"nomad/internal/system"
	"nomad/internal/workload"
)

// Options tunes experiment execution.
type Options struct {
	// Fast shrinks warmup/ROI for quick smoke runs (benchmarks, CI); the
	// shapes survive, the precision drops.
	Fast bool
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Verbose emits each run's one-line summary through Logger.
	Verbose bool
	// Logger receives host-side structured output (verbose run summaries);
	// nil discards it. Host-side only: nothing logged here derives from or
	// feeds back into simulation state.
	Logger *slog.Logger
	// TraceDepth/SpanDepth, when positive, enable the typed event-trace
	// ring and per-access latency spans in every run (see system.Config);
	// each Result then carries a Trace dump for Perfetto export.
	TraceDepth int
	SpanDepth  int
	// SpanSampleEvery overrides the span sampling period (0 = default).
	SpanSampleEvery uint64
	// Timeline enables interval time-series capture in every run; Interval
	// overrides the window length in cycles (0 = sim.DefaultInterval) and
	// TimelineMetrics restricts the collected columns by name prefix.
	Timeline        bool
	Interval        uint64
	TimelineMetrics []string
	// Digests enables interval digest chains in every run (see
	// system.Config.Digests): one chained registry digest per interval
	// window, for run comparison and divergence localization.
	Digests bool
	// SelfProfile attaches host-side simulator profiling to every run
	// (Result.Host). Host readings are non-deterministic.
	SelfProfile bool
	// NoFastForward disables idle-cycle fast-forward in every run (see
	// system.Config.FastForward); results are byte-identical either way.
	NoFastForward bool
	// Engine selects the event-queue implementation for every run ("" is
	// the timing wheel; sim.KindHeap runs on the binary-heap oracle).
	// Results are byte-identical across engines.
	Engine sim.Kind
	// Workers enables each run's parallel tick phase with that many workers
	// (see system.Config.Workers); results are byte-identical at every
	// worker count. Orthogonal to Parallelism, which bounds how many whole
	// runs execute concurrently.
	Workers int
	// Progress, when non-nil, is called once per run with its key and must
	// return a Machine.SetProgress callback (or nil). Callbacks fire on
	// worker goroutines; system.ProgressPrinter returns a suitable one.
	Progress func(key string) func(system.Progress)
	// Tracker, when non-nil, registers every run with the live
	// introspection tracker: manifest, progress fractions, and throttled
	// registry snapshots for the -http server. Observation is host-side
	// only and never perturbs results.
	Tracker *obs.RunTracker
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// BaseConfig returns the evaluation configuration, scaled down when fast.
func (o Options) BaseConfig() system.Config {
	cfg := system.DefaultConfig()
	if o.Fast {
		cfg.WarmupInstructions = 300_000
		cfg.ROIInstructions = 400_000
	}
	cfg.TraceDepth = o.TraceDepth
	cfg.SpanDepth = o.SpanDepth
	cfg.SpanSampleEvery = o.SpanSampleEvery
	cfg.Timeline = o.Timeline
	cfg.Interval = o.Interval
	cfg.TimelineMetrics = o.TimelineMetrics
	cfg.Digests = o.Digests
	cfg.SelfProfile = o.SelfProfile
	cfg.FastForward = !o.NoFastForward
	cfg.Engine = o.Engine
	cfg.Workers = o.Workers
	return cfg
}

// Run is one simulation request.
type Run struct {
	Key  string // unique identifier within the batch
	Cfg  system.Config
	Spec workload.Spec
}

// RunResult is one completed simulation plus its host-side run metadata.
// The embedded system.Result keeps field access (res.IPC, res.Metrics)
// working unchanged; the metadata is deliberately excluded from the
// RunResult's own JSON so Report.Runs stays exactly the deterministic
// simulation output — manifests and durations surface through the Report's
// Manifests/RunSeconds maps instead.
type RunResult struct {
	*system.Result
	// Manifest is the run's content address (config + workload + build).
	Manifest *obs.Manifest `json:"-"`
	// WallSeconds is the run's host-side wall-clock duration.
	WallSeconds float64 `json:"-"`
}

// Results maps Run.Key to the outcome.
type Results map[string]*RunResult

// Execute runs the batch on a pool of opts.workers() goroutines and returns
// results by key. Results are deterministic and independent of the worker
// count: each simulation is self-contained, and verbose summaries are
// emitted in input order after the batch completes.
//
// On failure every per-run error is collected and joined (errors.Join),
// each annotated with its run key; the returned Results still holds every
// run that completed — including the partial result of a run cancelled
// inside its measured region — so callers may render partial output.
// Cancelling ctx stops queued runs before they start and in-flight
// simulations at their next sampling window; ctx.Err() is then reported once
// rather than per run.
func Execute(ctx context.Context, opts Options, runs []Run) (Results, error) {
	type outcome struct {
		res *RunResult
		err error
		// key is the run's tracker-deduplicated identity ("" when the run
		// never reached the tracker); progress callbacks, host logs, and
		// /runs all agree on it.
		key string
	}
	outcomes := make([]outcome, len(runs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // cancelled: drain without starting work
				}
				r := runs[i]
				m, err := system.New(r.Cfg, r.Spec)
				if err != nil {
					outcomes[i] = outcome{err: err}
					continue
				}
				man := obs.NewManifest(r.Cfg, r.Spec)
				h := opts.Tracker.Start(r.Key, man) // nil-safe: nil tracker, nil handle
				// The tracker may have suffixed a repeated key (#n); from
				// here on the run's identity is the deduplicated key, so
				// progress lines, host logs, and /runs never disagree about
				// which run is which.
				key := r.Key
				if hk := h.Key(); hk != "" {
					key = hk
				}
				var userFn func(system.Progress)
				if opts.Progress != nil {
					userFn = opts.Progress(key)
				}
				if userFn != nil || h != nil {
					reg := m.Metrics()
					m.SetProgress(func(p system.Progress) {
						if userFn != nil {
							userFn(p)
						}
						h.Observe(p, reg)
					})
				}
				start := time.Now()
				res, err := m.RunContext(ctx)
				h.Finish()
				o := outcome{err: err, key: key}
				if res != nil {
					o.res = &RunResult{
						Result:      res,
						Manifest:    man,
						WallSeconds: time.Since(start).Seconds(),
					}
				}
				outcomes[i] = o
			}
		}()
	}
	for i := range runs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	results := make(Results, len(runs))
	var errs []error
	for i, o := range outcomes {
		r := runs[i]
		logKey := o.key
		if logKey == "" {
			logKey = r.Key
		}
		// A run can carry both a result and an error (cancelled mid-ROI):
		// keep the partial result as documented, and report the error.
		if o.res != nil {
			results[r.Key] = o.res
			if opts.Verbose && opts.Logger != nil && o.err == nil {
				opts.Logger.Info("run complete", "run", logKey,
					"summary", o.res.Result.String(),
					"wall_seconds", o.res.WallSeconds,
					"manifest", o.res.Manifest.Address)
			}
		}
		if o.err != nil {
			if !errors.Is(o.err, context.Canceled) && !errors.Is(o.err, context.DeadlineExceeded) {
				errs = append(errs, fmt.Errorf("run %q: %w", logKey, o.err))
			}
		}
	}
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return results, fmt.Errorf("harness: %w", errors.Join(errs...))
	}
	return results, nil
}

// key builds a batch key from parts.
func key(parts ...interface{}) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprint(p)
	}
	return s
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, opts Options) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in a stable order.
func All() []Experiment {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Experiment, len(ids))
	for i, id := range ids {
		out[i] = registry[id]
	}
	return out
}
