// Package harness reproduces every table and figure of the paper's
// evaluation. Each experiment is registered under the paper's artifact name
// (table1, fig2, fig9..fig16) and prints a text rendering of the same rows
// or series the paper plots.
//
// Runs are deterministic; independent runs execute in parallel across OS
// threads (each simulation is single-threaded and self-contained).
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"nomad/internal/system"
	"nomad/internal/workload"
)

// Options tunes experiment execution.
type Options struct {
	// Fast shrinks warmup/ROI for quick smoke runs (benchmarks, CI); the
	// shapes survive, the precision drops.
	Fast bool
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Verbose prints each run's one-line summary as it completes.
	Verbose bool
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// BaseConfig returns the evaluation configuration, scaled down when fast.
func (o Options) BaseConfig() system.Config {
	cfg := system.DefaultConfig()
	if o.Fast {
		cfg.WarmupInstructions = 300_000
		cfg.ROIInstructions = 400_000
	}
	return cfg
}

// Run is one simulation request.
type Run struct {
	Key  string // unique identifier within the batch
	Cfg  system.Config
	Spec workload.Spec
}

// Results maps Run.Key to the outcome.
type Results map[string]*system.Result

// Execute runs the batch in parallel and returns results by key. The first
// error aborts the batch.
func Execute(opts Options, out io.Writer, runs []Run) (Results, error) {
	type outcome struct {
		key string
		res *system.Result
		err error
	}
	sem := make(chan struct{}, opts.workers())
	ch := make(chan outcome, len(runs))
	var wg sync.WaitGroup
	for _, r := range runs {
		wg.Add(1)
		go func(r Run) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, err := system.New(r.Cfg, r.Spec)
			if err != nil {
				ch <- outcome{key: r.Key, err: err}
				return
			}
			res, err := m.Run()
			ch <- outcome{key: r.Key, res: res, err: err}
		}(r)
	}
	wg.Wait()
	close(ch)
	results := make(Results, len(runs))
	var errs []outcome
	for o := range ch {
		if o.err != nil {
			errs = append(errs, o)
			continue
		}
		results[o.key] = o.res
		if opts.Verbose {
			fmt.Fprintf(out, "# %s: %s\n", o.key, o.res)
		}
	}
	if len(errs) > 0 {
		return results, fmt.Errorf("harness: run %q failed: %w", errs[0].key, errs[0].err)
	}
	return results, nil
}

// key builds a batch key from parts.
func key(parts ...interface{}) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprint(p)
	}
	return s
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(opts Options, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in a stable order.
func All() []Experiment {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Experiment, len(ids))
	for i, id := range ids {
		out[i] = registry[id]
	}
	return out
}
