package harness

import (
	"fmt"
	"io"
	"strings"
)

// table renders aligned text tables for experiment output.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table {
	return &table{header: header}
}

func (t *table) addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
