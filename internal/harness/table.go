package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is an experiment's row/column data: a header plus pre-formatted
// cells. It renders as aligned text (Write) and marshals directly to JSON or
// CSV through the exported fields.
type Table struct {
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// NewTable returns a table with the given column header.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// Addf appends a row, formatting float64 cells as %.2f and everything else
// with fmt.Sprint.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Add appends a row of pre-formatted cells.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
