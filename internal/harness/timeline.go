package harness

import (
	"context"
	"fmt"

	"nomad/internal/workload"
)

// timelineWorkload is libquantum: the paper's example of bursty RMHB
// behaviour (Fig. 14), whose alternating memory-intensive and quiet phases
// make tag-miss storms visible in a per-interval trace.
const timelineWorkload = "libq"

// timelineSchemes contrasts the blocking OS-managed design against NOMAD:
// under TDC the bursts translate into tag-management stalls; under NOMAD the
// back-end absorbs them.
var timelineSchemes = []string{"TDC", "NOMAD"}

// timelineMaxRows caps the rendered table; longer runs are strided (the full
// per-window data stays available in the JSON report under each run's
// metrics snapshot).
const timelineMaxRows = 40

func init() {
	register(Experiment{
		ID:    "timeline",
		Title: "Timeline: Fig. 14-style interval trace of libquantum's bursty phases (TDC vs NOMAD)",
		Run:   runTimeline,
	})
}

func runTimeline(ctx context.Context, opts Options) (*Report, error) {
	sp, ok := workload.ByAbbr(timelineWorkload)
	if !ok {
		return nil, fmt.Errorf("timeline: unknown workload %q", timelineWorkload)
	}
	// Capture everything the interval layer offers; the table below renders
	// a digest, the JSON report carries the full columns.
	topts := opts
	topts.Timeline = true
	topts.TimelineMetrics = nil

	var runs []Run
	for _, scheme := range timelineSchemes {
		cfg := topts.BaseConfig()
		cfg.Scheme = systemScheme(scheme)
		runs = append(runs, Run{Key: key(timelineWorkload, scheme), Cfg: cfg, Spec: sp})
	}
	res, err := Execute(ctx, topts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("timeline", res)
	t := NewTable("Window end (kcyc)",
		"TDC IPC", "TDC DC hit", "TDC fill GB/s",
		"NOMAD IPC", "NOMAD DC hit", "NOMAD fill GB/s", "PCSHR hiwater")

	tdc := res[key(timelineWorkload, "TDC")].Metrics.Timeline
	nmd := res[key(timelineWorkload, "NOMAD")].Metrics.Timeline
	windows := tdc.Windows()
	if n := nmd.Windows(); n < windows {
		windows = n
	}
	stride := 1
	if windows > timelineMaxRows {
		stride = (windows + timelineMaxRows - 1) / timelineMaxRows
	}
	col := func(vals []float64, i int) string {
		if i >= len(vals) {
			return "-"
		}
		return fmt.Sprintf("%.3f", vals[i])
	}
	for i := 0; i < windows; i += stride {
		t.Add(fmt.Sprintf("%d", tdc.Cycles[i]/1000),
			col(tdc.Metric("sim.ipc"), i),
			col(tdc.Metric("dc.hit_rate"), i),
			col(tdc.Metric("hbm.gbs.fill"), i),
			col(nmd.Metric("sim.ipc"), i),
			col(nmd.Metric("dc.hit_rate"), i),
			col(nmd.Metric("hbm.gbs.fill"), i),
			col(nmd.Metric("backend.pcshr_highwater"), i))
	}
	notes := []string{
		"Interval trace of libquantum's bursty phases (cf. Fig. 14): per-window IPC,",
		"DRAM-cache hit rate, HBM fill bandwidth, and (NOMAD) the PCSHR occupancy",
		"high-water mark. Under TDC, fill bursts coincide with IPC dips — threads",
		"block inside tag management; under NOMAD the same bursts raise PCSHR",
		"occupancy instead while IPC holds.",
		fmt.Sprintf("Windows are %d kcycles; the first starts at ROI cycle 0.", tdc.Interval/1000),
	}
	if stride > 1 {
		notes = append(notes, fmt.Sprintf(
			"Showing every %d-th of %d windows; full columns are in the JSON report.",
			stride, windows))
	}
	rep.add(t, notes...)
	return rep, nil
}
