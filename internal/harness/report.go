package harness

import (
	"fmt"
	"io"
	"sort"

	"nomad/internal/obs"
)

// Report is the structured output of one experiment: the sections the text
// rendering prints, plus every underlying simulation Result (each carrying
// its full metrics snapshot) keyed by run key.
type Report struct {
	ID       string    `json:"id"`
	Title    string    `json:"title"`
	Sections []Section `json:"sections"`
	// Runs holds the raw per-simulation results the sections were derived
	// from. Analysis-only experiments (replacement) leave it empty.
	Runs Results `json:"runs,omitempty"`
	// Warnings flags data-quality issues in the underlying runs — currently
	// trace/span ring drops (the capture lost its oldest entries). Sorted by
	// run key; empty means every capture is complete.
	Warnings []string `json:"warnings,omitempty"`
	// Manifests maps each run key to its content-addressed manifest
	// (config + workload + build stamp; see obs.Manifest). Host-side
	// metadata: it rides next to the runs rather than inside them so
	// Report.Runs stays exactly the deterministic simulation output.
	Manifests map[string]*obs.Manifest `json:"manifests,omitempty"`
	// RunSeconds maps each run key to its wall-clock duration. Host-side
	// and non-deterministic by nature — the one Report field that differs
	// between two same-seed invocations.
	RunSeconds map[string]float64 `json:"run_seconds,omitempty"`
}

// Section is one block of a report: commentary lines followed by an optional
// table.
type Section struct {
	Notes []string `json:"notes,omitempty"`
	Table *Table   `json:"table,omitempty"`
}

// newReport starts a report for the registered experiment id, lifting each
// run's host-side metadata (manifest, wall-clock duration) into the report
// maps.
func newReport(id string, res Results) *Report {
	rep := &Report{ID: id, Title: registry[id].Title, Runs: res, Warnings: dropWarnings(res)}
	if len(res) > 0 {
		rep.Manifests = make(map[string]*obs.Manifest, len(res))
		rep.RunSeconds = make(map[string]float64, len(res))
		for k, r := range res {
			if r == nil {
				continue
			}
			rep.Manifests[k] = r.Manifest
			rep.RunSeconds[k] = r.WallSeconds
		}
	}
	return rep
}

// dropWarnings scans run snapshots for ring-buffer overwrites: a dropped
// event or span means the exported trace silently lost its oldest entries,
// which matters for any analysis that assumes full coverage.
func dropWarnings(res Results) []string {
	var warns []string
	for k, r := range res {
		if r == nil || r.Metrics == nil || r.Metrics.Trace == nil {
			continue
		}
		t := r.Metrics.Trace
		if t.EventsDropped > 0 {
			warns = append(warns, fmt.Sprintf(
				"%s: event ring dropped %d of %d events; raise trace depth for full coverage",
				k, t.EventsDropped, t.EventsDropped+t.Events))
		}
		if t.SpansDropped > 0 {
			warns = append(warns, fmt.Sprintf(
				"%s: span ring dropped %d of %d spans; raise span depth or sampling period",
				k, t.SpansDropped, t.SpansDropped+t.Spans))
		}
	}
	sort.Strings(warns)
	return warns
}

// add appends a section built from notes and an optional table.
func (r *Report) add(t *Table, notes ...string) {
	r.Sections = append(r.Sections, Section{Notes: notes, Table: t})
}

// WriteText renders the report in the traditional text form: sections
// separated by blank lines, each as its commentary, a blank line, then the
// aligned table.
func (r *Report) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	for i, sec := range r.Sections {
		if i > 0 {
			fmt.Fprintln(ew)
		}
		for _, n := range sec.Notes {
			fmt.Fprintln(ew, n)
		}
		if sec.Table != nil {
			if len(sec.Notes) > 0 {
				fmt.Fprintln(ew)
			}
			sec.Table.Write(ew)
		}
	}
	return ew.err
}

// errWriter latches the first write error so rendering code can print
// unconditionally.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
		return len(p), nil
	}
	return n, nil
}
