package harness

import (
	"context"
	"fmt"

	"nomad/internal/system"
	"nomad/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Fig. 12: per-class average IPC and off-package bandwidth vs number of PCSHRs",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Fig. 13: Excess-class IPC vs PCSHRs for increasing CPU core count (normalized to 32 PCSHRs)",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Fig. 14: stall rate and tag management latency vs PCSHRs (cact: highest RMHB; libq: bursty RMHB)",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Fig. 15: area-optimized design — (n PCSHRs, m page copy buffers) for bursty workloads",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Fig. 16: centralized vs distributed back-ends vs number of PCSHRs",
		Run:   runFig16,
	})
}

var pcshrSweep = []int{1, 2, 4, 8, 16, 32}

func runFig12(ctx context.Context, opts Options) (*Report, error) {
	var runs []Run
	for _, sp := range workload.Specs() {
		base := opts.BaseConfig()
		base.Scheme = system.SchemeBaseline
		runs = append(runs, Run{Key: key(sp.Abbr, "base"), Cfg: base, Spec: sp})
		for _, n := range pcshrSweep {
			cfg := opts.BaseConfig()
			cfg.Scheme = system.SchemeNOMAD
			cfg.Backend.PCSHRs = n
			runs = append(runs, Run{Key: key(sp.Abbr, n), Cfg: cfg, Spec: sp})
		}
	}
	res, err := Execute(ctx, opts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("fig12", res)
	t := NewTable("Class", "Metric", "1", "2", "4", "8", "16", "32")
	for _, class := range workload.Classes() {
		specs := workload.ByClass(class)
		ipcRow := []interface{}{class, "IPC rel base"}
		bwRow := []interface{}{class, "off-pkg GB/s"}
		for _, n := range pcshrSweep {
			prod := 1.0
			bw := 0.0
			for _, sp := range specs {
				prod *= res[key(sp.Abbr, n)].IPC / res[key(sp.Abbr, "base")].IPC
				bw += res[key(sp.Abbr, n)].OffPkgGBs
			}
			ipcRow = append(ipcRow, geo(prod, 1/float64(len(specs))))
			bwRow = append(bwRow, bw/float64(len(specs)))
		}
		t.Addf(ipcRow...)
		t.Addf(bwRow...)
	}
	rep.add(t,
		"Fig. 12: NOMAD per-class average IPC (relative to Baseline) and off-package",
		"bandwidth vs #PCSHRs. Paper shape: performance saturates by ~8 PCSHRs for the",
		"Excess class (off-package bandwidth becomes the bottleneck); Loose/Few need 1-2.")
	return rep, nil
}

var fig13Cores = []int{2, 4, 8, 16}
var fig13PCSHRs = []int{2, 4, 8, 16, 32}

func runFig13(ctx context.Context, opts Options) (*Report, error) {
	specs := workload.ByClass("Excess")
	var runs []Run
	for _, cores := range fig13Cores {
		for _, n := range fig13PCSHRs {
			for _, sp := range specs {
				cfg := opts.BaseConfig()
				cfg.Scheme = system.SchemeNOMAD
				cfg.Cores = cores
				cfg.Backend.PCSHRs = n
				runs = append(runs, Run{Key: key(sp.Abbr, cores, n), Cfg: cfg, Spec: sp})
			}
		}
	}
	res, err := Execute(ctx, opts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("fig13", res)
	t := NewTable("Cores", "2", "4", "8", "16", "32")
	for _, cores := range fig13Cores {
		row := []interface{}{fmt.Sprintf("%d", cores)}
		ref := 1.0
		{
			prod := 1.0
			for _, sp := range specs {
				prod *= res[key(sp.Abbr, cores, 32)].IPC
			}
			ref = geo(prod, 1/float64(len(specs)))
		}
		for _, n := range fig13PCSHRs {
			prod := 1.0
			for _, sp := range specs {
				prod *= res[key(sp.Abbr, cores, n)].IPC
			}
			row = append(row, geo(prod, 1/float64(len(specs)))/ref)
		}
		t.Addf(row...)
	}
	rep.add(t,
		"Fig. 13: Excess-class average IPC with different PCSHR counts, relative to the",
		"32-PCSHR setup, for increasing core counts. Paper shape: beyond 8 PCSHRs the",
		"off-package memory bounds performance, so more cores do not need more PCSHRs.")
	return rep, nil
}

func runFig14(ctx context.Context, opts Options) (*Report, error) {
	wls := []string{"cact", "libq"}
	var runs []Run
	for _, abbr := range wls {
		sp, _ := workload.ByAbbr(abbr)
		for _, n := range pcshrSweep {
			cfg := opts.BaseConfig()
			cfg.Scheme = system.SchemeNOMAD
			cfg.Backend.PCSHRs = n
			runs = append(runs, Run{Key: key(abbr, n), Cfg: cfg, Spec: sp})
		}
	}
	res, err := Execute(ctx, opts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("fig14", res)
	t := NewTable("Workload", "Metric", "1", "2", "4", "8", "16", "32")
	for _, abbr := range wls {
		stall := []interface{}{abbr, "stall %"}
		lat := []interface{}{abbr, "tagLat cyc"}
		for _, n := range pcshrSweep {
			r := res[key(abbr, n)]
			stall = append(stall, 100*r.OSStallRatio)
			lat = append(lat, r.AvgTagMgmtLatency)
		}
		t.Addf(stall...)
		t.Addf(lat...)
	}
	rep.add(t,
		"Fig. 14: stall rates and tag management latency vs #PCSHRs for cact (highest",
		"RMHB) and libq (bursty RMHB). Paper shape: the bursty workload suffers more",
		"PCSHR contention; going 16->32 PCSHRs cuts libq tag latency markedly.")
	return rep, nil
}

// fig15Configs are (n PCSHRs, m page copy buffers) pairs.
var fig15Configs = [][2]int{{8, 8}, {16, 8}, {32, 8}, {16, 16}, {32, 16}, {32, 32}}

func runFig15(ctx context.Context, opts Options) (*Report, error) {
	wls := []string{"libq", "gems"}
	var runs []Run
	for _, abbr := range wls {
		sp, _ := workload.ByAbbr(abbr)
		base := opts.BaseConfig()
		base.Scheme = system.SchemeBaseline
		runs = append(runs, Run{Key: key(abbr, "base"), Cfg: base, Spec: sp})
		for _, nm := range fig15Configs {
			cfg := opts.BaseConfig()
			cfg.Scheme = system.SchemeNOMAD
			cfg.Backend.PCSHRs = nm[0]
			cfg.Backend.CopyBuffers = nm[1]
			runs = append(runs, Run{Key: key(abbr, nm[0], nm[1]), Cfg: cfg, Spec: sp})
		}
	}
	res, err := Execute(ctx, opts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("fig15", res)
	hdr := []string{"Workload", "Metric"}
	for _, nm := range fig15Configs {
		hdr = append(hdr, fmt.Sprintf("(%d,%d)", nm[0], nm[1]))
	}
	t := NewTable(hdr...)
	for _, abbr := range wls {
		ipc := []interface{}{abbr, "IPC rel base"}
		lat := []interface{}{abbr, "tagLat cyc"}
		for _, nm := range fig15Configs {
			r := res[key(abbr, nm[0], nm[1])]
			ipc = append(ipc, r.IPC/res[key(abbr, "base")].IPC)
			lat = append(lat, r.AvgTagMgmtLatency)
		}
		t.Addf(ipc...)
		t.Addf(lat...)
	}
	rep.add(t,
		"Fig. 15: area-optimized back-end — n PCSHRs with m (<n) page copy buffers.",
		"Paper shape: bursty workloads want more PCSHRs (to absorb command bursts and",
		"keep tag latency down) but buffers need not scale proportionally.")
	return rep, nil
}

var fig16PCSHRs = []int{8, 16, 32}

func runFig16(ctx context.Context, opts Options) (*Report, error) {
	specs := workload.ByClass("Excess")
	var runs []Run
	for _, sp := range specs {
		base := opts.BaseConfig()
		base.Scheme = system.SchemeBaseline
		runs = append(runs, Run{Key: key(sp.Abbr, "base"), Cfg: base, Spec: sp})
		for _, n := range fig16PCSHRs {
			for _, dist := range []bool{false, true} {
				cfg := opts.BaseConfig()
				cfg.Scheme = system.SchemeNOMAD
				cfg.Backend.PCSHRs = n
				cfg.Backend.Distributed = dist
				runs = append(runs, Run{Key: key(sp.Abbr, n, dist), Cfg: cfg, Spec: sp})
			}
		}
	}
	res, err := Execute(ctx, opts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("fig16", res)
	t := NewTable("Org", "Metric", "8", "16", "32")
	for _, dist := range []bool{false, true} {
		name := "centralized"
		if dist {
			name = "distributed"
		}
		ipc := []interface{}{name, "IPC rel base"}
		lat := []interface{}{name, "tagLat cyc"}
		for _, n := range fig16PCSHRs {
			prod := 1.0
			sum := 0.0
			for _, sp := range specs {
				r := res[key(sp.Abbr, n, dist)]
				prod *= r.IPC / res[key(sp.Abbr, "base")].IPC
				sum += r.AvgTagMgmtLatency
			}
			ipc = append(ipc, geo(prod, 1/float64(len(specs))))
			lat = append(lat, sum/float64(len(specs)))
		}
		t.Addf(ipc...)
		t.Addf(lat...)
	}
	rep.add(t,
		"Fig. 16: centralized vs distributed back-ends (Excess class average). Paper",
		"shape: FIFO allocation spreads page-copy commands uniformly, so the distributed",
		"organization matches the centralized one.")
	return rep, nil
}
