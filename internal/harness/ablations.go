package harness

import (
	"context"
	"fmt"

	"nomad/internal/system"
	"nomad/internal/workload"
)

// The ablation experiment is not a paper figure; it quantifies the design
// choices the paper argues for qualitatively:
//
//   - §IV-B.5: even a full CPU cycle of PCSHR data-verification latency on
//     every DC access costs only ~0.1% performance;
//   - §III-D.2 / Fig. 7b: critical-data-first scheduling is what makes the
//     faulting request hit the page copy buffer after resume;
//   - §IV-A: the 400-cycle conservative tag-management estimate — how
//     sensitive is NOMAD to the OS handler's cost?
func init() {
	register(Experiment{
		ID:    "ablations",
		Title: "Ablations: data-verification latency, critical-data-first, tag-handler cost",
		Run:   runAblations,
	})
}

var ablationWorkloads = []string{"cact", "libq", "pr"}

func runAblations(ctx context.Context, opts Options) (*Report, error) {
	var runs []Run
	for _, abbr := range ablationWorkloads {
		sp, ok := workload.ByAbbr(abbr)
		if !ok {
			return nil, fmt.Errorf("ablations: unknown workload %q", abbr)
		}
		// A: verification latency sweep.
		for _, v := range []uint64{0, 1, 5, 20} {
			cfg := opts.BaseConfig()
			cfg.Scheme = system.SchemeNOMAD
			cfg.Backend.VerifyLatency = v
			runs = append(runs, Run{Key: key(abbr, "verify", v), Cfg: cfg, Spec: sp})
		}
		// B: critical-data-first off.
		cfg := opts.BaseConfig()
		cfg.Scheme = system.SchemeNOMAD
		cfg.Backend.NoCriticalFirst = true
		runs = append(runs, Run{Key: key(abbr, "nocdf"), Cfg: cfg, Spec: sp})
		// C: tag-management latency sweep.
		for _, lat := range []uint64{100, 400, 800, 1600} {
			cfg := opts.BaseConfig()
			cfg.Scheme = system.SchemeNOMAD
			cfg.Frontend.TagMgmtLatency = lat
			runs = append(runs, Run{Key: key(abbr, "taglat", lat), Cfg: cfg, Spec: sp})
		}
	}
	res, err := Execute(ctx, opts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("ablations", res)
	t := NewTable("Workload", "0cyc", "1cyc", "5cyc", "20cyc")
	for _, abbr := range ablationWorkloads {
		base := res[key(abbr, "verify", uint64(0))].IPC
		t.Addf(abbr, 1.0,
			res[key(abbr, "verify", uint64(1))].IPC/base,
			res[key(abbr, "verify", uint64(5))].IPC/base,
			res[key(abbr, "verify", uint64(20))].IPC/base)
	}
	rep.add(t,
		"A. PCSHR data-verification latency added to every DC access (IPC relative to",
		"   0 cycles). Paper: one full cycle costs ~0.1% on average.")

	t2 := NewTable("Workload", "IPC on", "IPC off", "bufHit% on", "bufHit% off")
	for _, abbr := range ablationWorkloads {
		on := res[key(abbr, "verify", uint64(0))]
		off := res[key(abbr, "nocdf")]
		t2.Addf(abbr, on.IPC, off.IPC, 100*on.BufferHitRate, 100*off.BufferHitRate)
	}
	rep.add(t2, "B. Critical-data-first scheduling (P/PI + demand elevation) on vs off.")

	t3 := NewTable("Workload", "Metric", "100", "400", "800", "1600")
	for _, abbr := range ablationWorkloads {
		ipc := []interface{}{abbr, "IPC"}
		stall := []interface{}{abbr, "stall %"}
		for _, lat := range []uint64{100, 400, 800, 1600} {
			r := res[key(abbr, "taglat", lat)]
			ipc = append(ipc, r.IPC)
			stall = append(stall, 100*r.OSStallRatio)
		}
		t3.Addf(ipc...)
		t3.Addf(stall...)
	}
	rep.add(t3, "C. Tag miss handler critical-section cost (the paper conservatively uses 400).")
	return rep, nil
}
