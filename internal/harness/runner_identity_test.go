package harness

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"

	"nomad/internal/obs"
	"nomad/internal/system"
	"nomad/internal/workload"
)

// TestExecuteDuplicateKeyAgreement: when a batch repeats a key, the tracker
// deduplicates it with a "#n" suffix — and the progress callback, the
// verbose host log, and the tracker's Statuses must all agree on the
// deduplicated identity (they used to disagree: progress and logs kept the
// original key).
func TestExecuteDuplicateKeyAgreement(t *testing.T) {
	sp, _ := workload.ByAbbr("tc")
	cfg := testConfig()
	runs := []Run{
		{Key: "dup", Cfg: cfg, Spec: sp},
		{Key: "dup", Cfg: cfg, Spec: sp},
	}
	tracker := obs.NewRunTracker()
	var progressKeys []string
	var logBuf bytes.Buffer
	opts := Options{
		Parallelism: 1, // deterministic start order: first run claims "dup"
		Verbose:     true,
		Logger:      slog.New(slog.NewTextHandler(&logBuf, nil)),
		Tracker:     tracker,
		Progress: func(key string) func(system.Progress) {
			progressKeys = append(progressKeys, key)
			return nil
		},
	}
	if _, err := Execute(context.Background(), opts, runs); err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{"dup", "dup#2"}
	if len(progressKeys) != 2 || progressKeys[0] != wantKeys[0] || progressKeys[1] != wantKeys[1] {
		t.Errorf("progress callback keys = %v, want %v", progressKeys, wantKeys)
	}
	var trackerKeys []string
	for _, s := range tracker.Statuses() {
		trackerKeys = append(trackerKeys, s.Key)
	}
	if len(trackerKeys) != 2 || trackerKeys[0] != wantKeys[0] || trackerKeys[1] != wantKeys[1] {
		t.Errorf("tracker keys = %v, want %v", trackerKeys, wantKeys)
	}
	logs := logBuf.String()
	for _, k := range wantKeys {
		if !strings.Contains(logs, "run="+k) {
			t.Errorf("verbose log missing run=%s:\n%s", k, logs)
		}
	}
}

// TestExecuteCancelledPartialResult pins the documented partial-output
// contract: a run cancelled inside its measured region still surfaces its
// partial result in Results (it used to be dropped because the error branch
// won over the result).
func TestExecuteCancelledPartialResult(t *testing.T) {
	sp, _ := workload.ByAbbr("tc")
	cfg := testConfig()
	cfg.WarmupInstructions = 0
	cfg.ROIInstructions = 50_000_000 // far beyond the cancellation point
	cfg.Interval = 20_000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{
		Parallelism: 1,
		// Cancel deterministically once the run is inside its ROI: the next
		// sampling-window boundary then stops it mid-region.
		Progress: func(key string) func(system.Progress) {
			return func(p system.Progress) {
				if p.Phase == "roi" {
					cancel()
				}
			}
		},
	}
	res, err := Execute(ctx, opts, []Run{{Key: "k", Cfg: cfg, Spec: sp}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	partial := res["k"]
	if partial == nil {
		t.Fatal("cancelled run's partial result missing from Results")
	}
	if partial.Metrics == nil || partial.Metrics.Cycles == 0 {
		t.Fatalf("partial result has no measured cycles: %+v", partial.Result)
	}
	if partial.Instructions >= cfg.ROIInstructions {
		t.Fatalf("run retired %d instructions; cancellation never interrupted it", partial.Instructions)
	}
}
