package harness

import (
	"context"
	"fmt"

	"nomad/internal/workload"
)

// fig2Workloads are the six high-MPMS benchmarks of Fig. 2 (les excluded
// per §II-C), ordered by descending RMHB.
var fig2Workloads = []string{"cact", "sssp", "bwav", "mcf", "bc", "pr"}

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Fig. 2: IPC of blocking OS-managed (TDC) relative to HW-based (TiD) vs required miss-handling bandwidth",
		Run:   runFig2,
	})
}

func runFig2(ctx context.Context, opts Options) (*Report, error) {
	var runs []Run
	for _, abbr := range fig2Workloads {
		sp, ok := workload.ByAbbr(abbr)
		if !ok {
			return nil, fmt.Errorf("fig2: unknown workload %q", abbr)
		}
		for _, scheme := range []string{"TDC", "TiD", "Ideal"} {
			cfg := opts.BaseConfig()
			cfg.Scheme = systemScheme(scheme)
			runs = append(runs, Run{Key: key(abbr, scheme), Cfg: cfg, Spec: sp})
		}
	}
	res, err := Execute(ctx, opts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("fig2", res)
	t := NewTable("Workload", "Class", "RMHB GB/s", "IPC TDC/TiD", "Paper trend")
	for _, abbr := range fig2Workloads {
		sp, _ := workload.ByAbbr(abbr)
		ratio := res[key(abbr, "TDC")].IPC / res[key(abbr, "TiD")].IPC
		trend := "TiD wins (<1)"
		if sp.Class == "Loose" || sp.Class == "Few" {
			trend = "TDC wins (>1)"
		}
		t.Addf(abbr, sp.Class, res[key(abbr, "Ideal")].RMHBGBs, ratio, trend)
	}
	rep.add(t,
		"Fig. 2: the blocking OS-managed scheme wins at low RMHB (ideal access time),",
		"loses at high RMHB (miss-handling stalls). RMHB measured under Ideal config.",
		"Paper shape: TDC/TiD < 1 for cact/sssp/bwav, > 1 for mcf/bc/pr.")
	return rep, nil
}
