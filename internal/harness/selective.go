package harness

import (
	"context"
	"fmt"

	"nomad/internal/system"
	"nomad/internal/workload"
)

// The selective-caching study exercises the flexibility argument of §V:
// unlike HW-based designs whose selective caching is baked into the
// controller, an OS-managed cache can adopt any page-placement policy in
// software. Here NOMAD's front-end caches a page only on its Nth uncached
// page-table walk, which filters single-sweep streaming pages out of the
// cache and saves fill bandwidth on low-locality workloads.
func init() {
	register(Experiment{
		ID:    "selective",
		Title: "Selective caching (§V): cache-on-Nth-touch policy on low-locality workloads",
		Run:   runSelective,
	})
}

var selectiveWorkloads = []string{"sssp", "bfs", "bc", "pr"}

func runSelective(ctx context.Context, opts Options) (*Report, error) {
	thresholds := []uint64{1, 2, 3}
	var runs []Run
	for _, abbr := range selectiveWorkloads {
		sp, ok := workload.ByAbbr(abbr)
		if !ok {
			return nil, fmt.Errorf("selective: unknown workload %q", abbr)
		}
		for _, th := range thresholds {
			cfg := opts.BaseConfig()
			cfg.Scheme = system.SchemeNOMAD
			cfg.Frontend.CacheTouchThreshold = th
			runs = append(runs, Run{Key: key(abbr, th), Cfg: cfg, Spec: sp})
		}
	}
	res, err := Execute(ctx, opts, runs)
	if err != nil {
		return nil, err
	}

	rep := newReport("selective", res)
	t := NewTable("Workload", "Metric", "N=1", "N=2", "N=3")
	for _, abbr := range selectiveWorkloads {
		ipc := []interface{}{abbr, "IPC"}
		fill := []interface{}{abbr, "fill GB/s"}
		stall := []interface{}{abbr, "stall %"}
		for _, th := range thresholds {
			r := res[key(abbr, th)]
			ipc = append(ipc, r.IPC)
			fill = append(fill, r.RMHBGBs)
			stall = append(stall, 100*r.OSStallRatio)
		}
		t.Addf(ipc...)
		t.Addf(fill...)
		t.Addf(stall...)
	}
	rep.add(t,
		"NOMAD with cache-on-Nth-walk selective caching. N>=2 eliminates nearly all",
		"fill bandwidth and miss-handling stalls (streaming pages are walked once per",
		"sweep), but it also forfeits the DC for TLB-resident reuse: hot pages never",
		"re-walk, so they never pass the filter. The mechanism plugs into the NOMAD",
		"front-end with ~20 lines of OS code — the paper's flexibility argument — while",
		"the results show why production policies need hotness signals beyond walk",
		"counts (cf. Thermostat, Kleio).")
	return rep, nil
}
