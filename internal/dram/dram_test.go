package dram

import (
	"testing"
	"testing/quick"

	"nomad/internal/mem"
	"nomad/internal/sim"
)

func testConfig() Config {
	return Config{
		Name:               "test",
		Channels:           2,
		Banks:              4,
		RowBytes:           2048,
		Timing:             Timing{TRCD: 45, TRP: 45, TCL: 45, TBL: 13},
		InflightPerChannel: 8,
	}
}

func run(eng *sim.Engine, max uint64, pred func() bool) bool {
	return eng.RunUntil(pred, max)
}

func TestSingleReadLatency(t *testing.T) {
	eng := sim.New()
	d := New(eng, testConfig())
	done := false
	var completed uint64
	d.Access(0, false, mem.KindDemand, false, func() {
		done = true
		completed = eng.Now()
	})
	if !run(eng, 1000, func() bool { return done }) {
		t.Fatal("read never completed")
	}
	// Closed bank: tRCD + tCL + TBL, issued on the cycle after Access.
	want := uint64(45 + 45 + 13 + 1)
	if completed != want {
		t.Fatalf("read completed at %d, want %d", completed, want)
	}
	if d.Stats().RowMisses != 1 || d.Stats().Reads != 1 {
		t.Fatalf("stats: %+v", d.Stats())
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	latency := func(second uint64) uint64 {
		eng := sim.New()
		d := New(eng, testConfig())
		var t1 uint64
		first := false
		d.Access(0, false, mem.KindDemand, false, func() { first = true })
		run(eng, 1000, func() bool { return first })
		start := eng.Now()
		second2 := false
		d.Access(second, false, mem.KindDemand, false, func() {
			second2 = true
			t1 = eng.Now() - start
		})
		run(eng, 10000, func() bool { return second2 })
		return t1
	}
	// Same channel (block interleave: +2 blocks keeps channel 0), same row.
	hit := latency(128)
	// Same channel and bank, different row: banks=4, rowBytes=2048 per
	// channel => channel-local row covers 32 blocks; bank repeats every
	// 4 rows. Block 0 and channel-local block 128 (global 256) share bank
	// 0 with different rows.
	conflict := latency(256 * 64)
	if hit >= conflict {
		t.Fatalf("row hit latency %d should beat row conflict %d", hit, conflict)
	}
	_ = conflict
}

func TestChannelInterleave(t *testing.T) {
	d := New(sim.New(), testConfig())
	if d.ChannelOf(0) == d.ChannelOf(64) {
		t.Fatal("adjacent blocks should interleave across channels")
	}
	if d.ChannelOf(0) != d.ChannelOf(128) {
		t.Fatal("stride-2 blocks should share a channel")
	}
}

func TestBandwidthAccounting(t *testing.T) {
	eng := sim.New()
	d := New(eng, testConfig())
	n := 0
	for i := 0; i < 10; i++ {
		d.Access(uint64(i*64), i%2 == 0, mem.Kind(i%3), false, func() { n++ })
	}
	run(eng, 10000, func() bool { return n == 10 })
	if got := d.Stats().TotalBytes(); got != 10*64 {
		t.Fatalf("TotalBytes = %d, want %d", got, 640)
	}
	if d.Stats().Reads+d.Stats().Writes != 10 {
		t.Fatalf("reads+writes = %d", d.Stats().Reads+d.Stats().Writes)
	}
}

func TestPriorityBeatsQueue(t *testing.T) {
	eng := sim.New()
	cfg := testConfig()
	cfg.InflightPerChannel = 1
	d := New(eng, cfg)
	var order []string
	complete := 0
	// Saturate channel 0 with plain requests, then add a priority one.
	for i := 0; i < 8; i++ {
		d.Access(uint64(i)*128, false, mem.KindFill, false, func() { order = append(order, "plain"); complete++ })
	}
	d.Access(9*128, false, mem.KindDemand, true, func() { order = append(order, "prio"); complete++ })
	run(eng, 100000, func() bool { return complete == 9 })
	// The priority request must not be served last; it should jump most
	// of the queue (the first request may already be in flight).
	for i, s := range order {
		if s == "prio" {
			if i > 2 {
				t.Fatalf("priority request served at position %d of %d", i, len(order))
			}
			return
		}
	}
	t.Fatal("priority request never completed")
}

func TestPromote(t *testing.T) {
	eng := sim.New()
	cfg := testConfig()
	cfg.InflightPerChannel = 1
	d := New(eng, cfg)
	complete := 0
	var promotedAt, lastPlain int
	for i := 0; i < 8; i++ {
		d.Access(uint64(i)*128, false, mem.KindFill, false, func() { complete++; lastPlain = complete })
	}
	target := uint64(9 * 128)
	d.Access(target, false, mem.KindFill, false, func() { complete++; promotedAt = complete })
	if !d.Promote(target) {
		t.Fatal("Promote found no queued request")
	}
	run(eng, 100000, func() bool { return complete == 9 })
	if promotedAt > 3 {
		t.Fatalf("promoted request completed at position %d, want early", promotedAt)
	}
	_ = lastPlain
	if d.Promote(target) {
		t.Fatal("Promote matched after the request left the queue")
	}
}

func TestThroughputBusBound(t *testing.T) {
	eng := sim.New()
	d := New(eng, testConfig())
	// 200 row-hit reads on one channel: throughput should approach one
	// burst per TBL cycles.
	complete := 0
	for i := 0; i < 200; i++ {
		// Same channel-local row: blocks 0..31 of channel 0 cover one
		// row; use consecutive rows on different banks to keep hits.
		d.Access(uint64(i%32)*128, false, mem.KindDemand, false, func() { complete++ })
	}
	run(eng, 200_000, func() bool { return complete == 200 })
	elapsed := eng.Now()
	minCycles := uint64(200 * 13) // bus-bound floor
	if elapsed < minCycles {
		t.Fatalf("completed too fast: %d < %d", elapsed, minCycles)
	}
	if elapsed > 3*minCycles {
		t.Fatalf("row-hit stream too slow: %d cycles for 200 bursts (floor %d)", elapsed, minCycles)
	}
	if d.Stats().RowHitRate() < 0.8 {
		t.Fatalf("row hit rate %.2f, want > 0.8", d.Stats().RowHitRate())
	}
}

// TestAllRequestsComplete: any random batch of requests completes exactly
// once, and byte accounting matches.
func TestAllRequestsComplete(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		if len(addrs) == 0 || len(addrs) > 300 {
			return true
		}
		eng := sim.New()
		d := New(eng, testConfig())
		complete := 0
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			d.Access(uint64(a)*64, w, mem.KindDemand, false, func() { complete++ })
		}
		want := len(addrs)
		eng.RunUntil(func() bool { return complete == want }, 2_000_000)
		return complete == want && d.Stats().TotalBytes() == uint64(want)*64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPeakBandwidth(t *testing.T) {
	d := New(sim.New(), testConfig())
	want := 2.0 * 64.0 / 13.0
	if got := d.PeakBandwidthBytesPerCycle(); got != want {
		t.Fatalf("peak bandwidth %.3f, want %.3f", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two channels did not panic")
		}
	}()
	cfg := testConfig()
	cfg.Channels = 3
	New(sim.New(), cfg)
}
