// Package dram models DRAM devices (on-package HBM and off-package DDR4) at
// the level the NOMAD paper exercises: channels, banks, row buffers, and a
// shared per-channel data bus. Timing is expressed in CPU cycles.
//
// The model captures:
//
//   - Row-buffer locality: row hits cost tCL, row misses tRCD+tCL, and row
//     conflicts tRP+tRCD+tCL before the data burst.
//   - Bus occupancy: each 64 B burst occupies the channel data bus for TBL
//     cycles, so sustained bandwidth is 64 B / TBL per channel. Metadata,
//     fill, and writeback traffic all compete for the same bus, which is how
//     the TiD scheme's metadata overhead and the OS schemes' page-copy
//     traffic show up as longer effective access times (Figs. 9 and 10).
//   - Bank parallelism: activations to distinct banks overlap; only data
//     bursts serialize on the bus.
//   - Critical-data-first scheduling: requests flagged Priority are selected
//     ahead of others (used by TiD MSHRs and the NOMAD back-end).
//
// Refresh and power states are not modeled; the paper's effects do not
// depend on them.
package dram

import (
	"fmt"
	"math/bits"

	"nomad/internal/check"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/sim"
)

// Timing holds device timing parameters in CPU cycles.
type Timing struct {
	TRCD uint64 // activate -> column command
	TRP  uint64 // precharge
	TCL  uint64 // column command -> first data beat
	TBL  uint64 // data-bus occupancy of one 64 B burst
}

// Config describes one DRAM device (a set of channels with identical
// geometry).
type Config struct {
	Name     string
	Channels int
	Banks    int // banks per channel
	RowBytes uint64
	Timing   Timing
	// InflightPerChannel bounds how many requests a channel scheduler has
	// issued but not completed; it approximates the command-queue depth
	// visible to FR-FCFS reordering.
	InflightPerChannel int
}

// HBMConfig returns the on-package DRAM configuration used throughout the
// evaluation: 8 channels x 16 banks, ~16 GB/s per channel (128 GB/s total) at
// a 3.2 GHz CPU clock.
func HBMConfig() Config {
	return Config{
		Name:               "HBM",
		Channels:           8,
		Banks:              16,
		RowBytes:           2048,
		Timing:             Timing{TRCD: 45, TRP: 45, TCL: 45, TBL: 13},
		InflightPerChannel: 16,
	}
}

// DDRConfig returns the off-package memory configuration: 2 channels x 16
// banks, ~12.8 GB/s per channel (25.6 GB/s total). The total is deliberately
// sized so the Excess-class workloads' required miss-handling bandwidth
// exceeds it, the Tight class saturates it, and the Loose class half-fills
// it, matching Table I / Fig. 2.
func DDRConfig() Config {
	return Config{
		Name:               "DDR4",
		Channels:           2,
		Banks:              16,
		RowBytes:           4096,
		Timing:             Timing{TRCD: 45, TRP: 45, TCL: 45, TBL: 16},
		InflightPerChannel: 16,
	}
}

// Stats accumulates device-wide counters.
//
//nomad:owner channel
type Stats struct {
	Reads  uint64
	Writes uint64
	// BytesByKind records data-bus bytes per traffic category (Fig. 10).
	BytesByKind  [mem.NumKinds]uint64
	RowHits      uint64
	RowMisses    uint64 // closed-row activations
	RowConflicts uint64
	// BusBusyCycles is the total number of cycles any channel's data bus
	// was transferring data (sum over channels).
	BusBusyCycles uint64
	// ReadLatencySum/ReadCount measure arrival-to-data latency of reads.
	ReadLatencySum uint64
	ReadCount      uint64
	// QueueFullRejects counts requests that found the channel queue full
	// and were retried by the caller.
	QueueFullRejects uint64
}

// RowHitRate returns the fraction of bursts that hit an open row.
func (s *Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// TotalBytes returns all data-bus bytes moved.
func (s *Stats) TotalBytes() uint64 {
	var t uint64
	for _, b := range s.BytesByKind {
		t += b
	}
	return t
}

// Completer receives a completion callback carrying a caller-packed argument.
// It exists so high-rate callers (the NOMAD back-end's per-burst completions)
// can route completions through one long-lived object + a uint64 instead of
// allocating a fresh closure per burst.
type Completer interface {
	Complete(arg uint64)
}

// request is pooled: Device.getRequest/release recycle instances through a
// freelist, and completeFn is built once per instance so steady-state traffic
// schedules completions without allocating.
//
//nomad:owner channel
type request struct {
	addr       uint64
	row        uint64
	arrival    uint64
	arg        uint64
	done       mem.Done
	comp       Completer
	probe      *mem.Probe // nil for untagged traffic
	ch         *channel
	completeFn func()
	kind       mem.Kind
	bank       int32
	write      bool
	priority   bool
}

//nomad:owner channel
//nomad:ephemeral DRAM timing state; divergence surfaces in the registered row-hit/busy counters
type bank struct {
	openRow int64 // -1 = closed
	readyAt uint64
	// Per-bank row-buffer outcomes (Fig. 10's locality analysis at bank
	// granularity; exposed through the metrics registry).
	rowHits      uint64
	rowMisses    uint64
	rowConflicts uint64
}

//nomad:owner channel
//nomad:ephemeral DRAM timing state; divergence surfaces in the registered row-hit/busy counters
type channel struct {
	idx       int // channel index within the device (trace labels)
	queue     []*request
	busFreeAt uint64
	inflight  int
	banks     []bank
}

// Device is one DRAM device instance bound to a simulation engine. It
// registers itself as a ticker; callers enqueue requests with Access.
//
//nomad:owner channel
type Device struct {
	cfg   Config
	eng   *sim.Engine
	chans []channel
	stats Stats
	trace *metrics.Trace
	//nomad:ephemeral DRAM device wiring and timing state; divergence surfaces in the registered channel counters
	devID   uint64 // trace device tag (0 = hbm, 1 = ddr)
	latHist *metrics.Histogram

	chanShift    uint
	chanMask     uint64
	blocksPerRow uint64
	maxQueue     int
	// queued counts requests waiting in all channel queues, so the
	// per-cycle Tick skips the channel sweep entirely when nothing is
	// waiting (the common cycle: in-flight bursts complete via events).
	//nomad:ephemeral DRAM device wiring and timing state; divergence surfaces in the registered channel counters
	queued int

	// free is the request freelist. The device is single-threaded (engine
	// discipline), so a plain slice beats sync.Pool and is deterministic.
	//nomad:ephemeral DRAM device wiring and timing state; divergence surfaces in the registered channel counters
	free []*request
}

// getRequest takes a request from the freelist, building the instance (and
// its permanent completion closure) only on first use.
func (d *Device) getRequest() *request {
	if n := len(d.free); n > 0 {
		r := d.free[n-1]
		d.free = d.free[:n-1]
		return r
	}
	r := &request{} //nomadlint:ignore poolalloc -- freelist constructor: the one allocation the pool amortizes
	r.completeFn = func() { d.complete(r) }
	return r
}

// complete fires when a request's data burst finishes: it frees the inflight
// slot, recycles the request, and only then invokes the caller's callback.
// Release-before-callback matters — the callback may re-enter Access and is
// then handed this same instance, which is fine because every field it needs
// was copied out first.
func (d *Device) complete(r *request) {
	r.ch.inflight--
	done, comp, arg := r.done, r.comp, r.arg
	r.done, r.comp, r.probe, r.ch = nil, nil, nil, nil
	d.free = append(d.free, r)
	if comp != nil {
		comp.Complete(arg)
	} else if done != nil {
		done()
	}
}

// New creates a Device and registers its scheduler with the engine.
func New(eng *sim.Engine, cfg Config) *Device {
	if cfg.Channels <= 0 || cfg.Banks <= 0 {
		panic("dram: channels and banks must be positive")
	}
	if cfg.Channels&(cfg.Channels-1) != 0 {
		panic("dram: channel count must be a power of two")
	}
	d := &Device{
		cfg:          cfg,
		eng:          eng,
		chans:        make([]channel, cfg.Channels),
		chanShift:    uint(bits.TrailingZeros(uint(cfg.Channels))),
		chanMask:     uint64(cfg.Channels - 1),
		blocksPerRow: cfg.RowBytes / mem.BlockSize,
		maxQueue:     64,
	}
	for i := range d.chans {
		d.chans[i].idx = i
		d.chans[i].banks = make([]bank, cfg.Banks)
		for b := range d.chans[i].banks {
			d.chans[i].banks[b].openRow = -1
		}
	}
	eng.AddTicker(d)
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a pointer to the device's counters.
func (d *Device) Stats() *Stats { return &d.stats }

// SetTrace attaches an event trace (row-conflict events) under device tag
// dev, which the exporter unpacks to group banks per device (0 = hbm,
// 1 = ddr). Nil disables.
func (d *Device) SetTrace(t *metrics.Trace, dev uint64) {
	d.trace = t
	d.devID = dev
}

// RegisterMetrics exposes the device's counters in reg under prefix (e.g.
// "dram.hbm"): device-wide totals, per-kind bytes, and per-bank row-buffer
// outcomes. Registration is lazy — snapshots read the live fields — so the
// scheduling hot path is untouched.
func (d *Device) RegisterMetrics(reg *metrics.Registry, prefix string) {
	s := &d.stats
	reg.CounterFunc(prefix+".reads", func() uint64 { return s.Reads })
	reg.CounterFunc(prefix+".writes", func() uint64 { return s.Writes })
	reg.CounterFunc(prefix+".row_hits", func() uint64 { return s.RowHits })
	reg.CounterFunc(prefix+".row_misses", func() uint64 { return s.RowMisses })
	reg.CounterFunc(prefix+".row_conflicts", func() uint64 { return s.RowConflicts })
	reg.CounterFunc(prefix+".bus_busy_cycles", func() uint64 { return s.BusBusyCycles })
	reg.CounterFunc(prefix+".read_latency_sum", func() uint64 { return s.ReadLatencySum })
	reg.CounterFunc(prefix+".read_count", func() uint64 { return s.ReadCount })
	reg.CounterFunc(prefix+".queue_full_rejects", func() uint64 { return s.QueueFullRejects })
	d.latHist = reg.Histogram(prefix + ".read_latency")
	for k := 0; k < mem.NumKinds; k++ {
		k := k
		reg.CounterFunc(fmt.Sprintf("%s.bytes.%s", prefix, mem.Kind(k)),
			func() uint64 { return s.BytesByKind[k] })
	}
	for ci := range d.chans {
		for bi := range d.chans[ci].banks {
			b := &d.chans[ci].banks[bi]
			bp := fmt.Sprintf("%s.ch%d.bank%d", prefix, ci, bi)
			reg.CounterFunc(bp+".row_hits", func() uint64 { return b.rowHits })
			reg.CounterFunc(bp+".row_misses", func() uint64 { return b.rowMisses })
			reg.CounterFunc(bp+".row_conflicts", func() uint64 { return b.rowConflicts })
		}
	}
}

// ChannelOf returns the channel index a byte address maps to. Blocks
// interleave across channels so a 4 KB page spreads over all channels.
func (d *Device) ChannelOf(addr uint64) int {
	return int(mem.BlockNum(addr) & d.chanMask)
}

// mapAddr computes (channel, bank, row) for a byte address. Channel-local
// consecutive blocks share a row, and consecutive rows rotate across banks.
func (d *Device) mapAddr(addr uint64) (ch, bk int, row uint64) {
	blk := mem.BlockNum(addr)
	ch = int(blk & d.chanMask)
	local := blk >> d.chanShift
	rowGlobal := local / d.blocksPerRow
	bk = int(rowGlobal % uint64(d.cfg.Banks))
	row = rowGlobal / uint64(d.cfg.Banks)
	return ch, bk, row
}

// Access enqueues one 64 B burst. done is invoked when the data burst
// completes (reads: data available; writes: data accepted). Access never
// rejects: if the channel queue is full the request is parked and retried,
// preserving FIFO fairness, so callers can treat the device as always
// accepting (back-pressure manifests as latency).
func (d *Device) Access(addr uint64, write bool, kind mem.Kind, priority bool, done mem.Done) {
	d.AccessProbe(addr, write, kind, priority, nil, done)
}

// AccessProbe is Access carrying a latency-provenance probe. While the
// request sits in the channel queue the probe reads StallDRAMQueue; at
// issue it switches to the dominant cost the burst pays (row conflict >
// bus wait > plain service). p may be nil (Access delegates here).
func (d *Device) AccessProbe(addr uint64, write bool, kind mem.Kind, priority bool, p *mem.Probe, done mem.Done) {
	r := d.getRequest()
	r.done = done
	r.probe = p
	d.enqueue(r, addr, write, kind, priority)
}

// AccessArg is Access with a Completer callback: on completion,
// comp.Complete(arg) fires instead of a done closure. The allocation-free
// path for callers issuing many bursts against one long-lived object.
func (d *Device) AccessArg(addr uint64, write bool, kind mem.Kind, priority bool, comp Completer, arg uint64) {
	r := d.getRequest()
	r.comp = comp
	r.arg = arg
	d.enqueue(r, addr, write, kind, priority)
}

func (d *Device) enqueue(r *request, addr uint64, write bool, kind mem.Kind, priority bool) {
	ch, bk, row := d.mapAddr(addr)
	if r.probe != nil {
		r.probe.Cause = mem.StallDRAMQueue
	}
	r.addr, r.write, r.kind, r.priority = addr, write, kind, priority
	r.arrival = d.eng.Now()
	r.bank, r.row = int32(bk), row
	c := &d.chans[ch]
	if len(c.queue) >= d.maxQueue {
		d.stats.QueueFullRejects++
	}
	c.queue = append(c.queue, r)
	d.queued++
}

// QueueLen returns the current queue length of channel ch (for tests and
// back-pressure-aware callers).
func (d *Device) QueueLen(ch int) int { return len(d.chans[ch].queue) }

// Promote raises a queued request for the given 64 B block to the priority
// class (critical-data-first for a demand that arrived after the request was
// issued, e.g. an MSHR/PCSHR coalesce on an in-flight line fill). It reports
// whether a queued request matched; a false return usually means the request
// already left the queue.
func (d *Device) Promote(addr uint64) bool {
	ch, _, _ := d.mapAddr(addr)
	block := mem.BlockAligned(addr)
	for _, r := range d.chans[ch].queue {
		if mem.BlockAligned(r.addr) == block && !r.priority {
			r.priority = true
			return true
		}
	}
	return false
}

// Tick drives every channel scheduler one cycle.
func (d *Device) Tick(now uint64) {
	if d.queued == 0 {
		return
	}
	for i := range d.chans {
		d.tickChannel(&d.chans[i], now)
	}
}

// NextWork implements sim.FastForwarder: a channel scheduler has work at
// now+1 only when it holds queued requests and a free inflight slot —
// everything else it is waiting for (a completion freeing an inflight slot,
// new traffic from an event or a core tick) arrives through the event heap
// or another ticker, both of which bound the engine's jumps. Bus and bank
// occupancy are carried as absolute cycle stamps (busFreeAt/readyAt), not
// per-cycle state, so an idle-until channel needs no per-cycle ticks.
func (d *Device) NextWork(now uint64) uint64 {
	if d.queued == 0 {
		return sim.NoWork
	}
	for i := range d.chans {
		c := &d.chans[i]
		if len(c.queue) > 0 && c.inflight < d.cfg.InflightPerChannel {
			return now + 1
		}
	}
	return sim.NoWork
}

// SkipCycles implements sim.FastForwarder. Nothing accrues per idle cycle:
// BusBusyCycles and every other counter are charged in bulk at issue time
// (issue reserves the whole TBL bus window at once), so skipped ticks are
// accounting no-ops by construction.
func (d *Device) SkipCycles(now, n uint64) {}

func (d *Device) tickChannel(c *channel, now uint64) {
	for c.inflight < d.cfg.InflightPerChannel && len(c.queue) > 0 {
		idx := d.pick(c)
		r := c.queue[idx]
		c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
		c.queue[:cap(c.queue)][len(c.queue)] = nil // drop the vacated slot's ref
		d.queued--
		d.issue(c, r, now)
	}
	if check.Enabled {
		check.Assert(c.inflight >= 0 && c.inflight <= d.cfg.InflightPerChannel,
			"dram %s ch%d: inflight %d outside [0,%d]",
			d.cfg.Name, c.idx, c.inflight, d.cfg.InflightPerChannel)
	}
}

// pick implements priority > row-hit > age selection (FR-FCFS with
// critical-data-first), scanning the bounded channel queue.
func (d *Device) pick(c *channel) int {
	best := 0
	bestScore := d.score(c, c.queue[0])
	for i := 1; i < len(c.queue); i++ {
		if s := d.score(c, c.queue[i]); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

func (d *Device) score(c *channel, r *request) int {
	s := 0
	if r.priority {
		s += 4
	}
	if c.banks[r.bank].openRow == int64(r.row) {
		s += 2
	}
	return s
}

// issue computes the request's timing against bank and bus state, reserves
// the bus window, and schedules the completion callback.
func (d *Device) issue(c *channel, r *request, now uint64) {
	b := &c.banks[r.bank]
	prevBusFree, prevBankReady := c.busFreeAt, b.readyAt
	start := now
	if b.readyAt > start {
		start = b.readyAt
	}
	var rowReady uint64
	conflict := false
	switch {
	case b.openRow == int64(r.row):
		d.stats.RowHits++
		b.rowHits++
		rowReady = start
	case b.openRow == -1:
		d.stats.RowMisses++
		b.rowMisses++
		rowReady = start + d.cfg.Timing.TRCD
	default:
		conflict = true
		d.stats.RowConflicts++
		b.rowConflicts++
		d.trace.Emit(now, metrics.EvRowConflict, r.addr,
			d.devID<<32|uint64(c.idx)<<16|uint64(r.bank))
		rowReady = start + d.cfg.Timing.TRP + d.cfg.Timing.TRCD
	}
	b.openRow = int64(r.row)

	dataStart := rowReady + d.cfg.Timing.TCL
	busWait := c.busFreeAt > dataStart
	if busWait {
		dataStart = c.busFreeAt
	}
	dataEnd := dataStart + d.cfg.Timing.TBL
	if r.probe != nil {
		switch {
		case conflict:
			r.probe.Cause = mem.StallRowConflict
		case busWait:
			r.probe.Cause = mem.StallBus
		default:
			r.probe.Cause = mem.StallDRAMService
		}
	}
	c.busFreeAt = dataEnd
	// The bank can accept the next column command to the same row once
	// this one's data slot is reserved.
	b.readyAt = rowReady + d.cfg.Timing.TBL

	if check.Enabled {
		// Bank-state transitions never move time backwards: the open row is
		// the one just accessed, and the bus/bank reservations are monotone.
		check.Assert(b.openRow == int64(r.row),
			"dram %s ch%d bank%d: open row %d after access to row %d",
			d.cfg.Name, c.idx, r.bank, b.openRow, r.row)
		check.Assert(c.busFreeAt >= prevBusFree,
			"dram %s ch%d: bus reservation regressed %d -> %d",
			d.cfg.Name, c.idx, prevBusFree, c.busFreeAt)
		check.Assert(b.readyAt >= prevBankReady,
			"dram %s ch%d bank%d: readyAt regressed %d -> %d",
			d.cfg.Name, c.idx, r.bank, prevBankReady, b.readyAt)
		check.Assert(dataEnd >= dataStart && dataStart >= start && start >= now,
			"dram %s ch%d: burst window [%d,%d] precedes issue at %d",
			d.cfg.Name, c.idx, dataStart, dataEnd, now)
	}

	d.stats.BusBusyCycles += d.cfg.Timing.TBL
	d.stats.BytesByKind[r.kind] += mem.BlockSize
	if r.write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
		d.stats.ReadLatencySum += dataEnd - r.arrival
		d.stats.ReadCount++
		d.latHist.Observe(dataEnd - r.arrival)
	}

	c.inflight++
	r.ch = c
	d.eng.At(dataEnd, r.completeFn)
}

// PeakBandwidthBytesPerCycle returns the device's aggregate data-bus
// bandwidth (bytes per CPU cycle), used to convert measured byte counts into
// utilization and GB/s.
func (d *Device) PeakBandwidthBytesPerCycle() float64 {
	return float64(d.cfg.Channels) * float64(mem.BlockSize) / float64(d.cfg.Timing.TBL)
}

// String identifies the device.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%dch x %dbk)", d.cfg.Name, d.cfg.Channels, d.cfg.Banks)
}
