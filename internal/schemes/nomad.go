package schemes

import (
	"nomad/internal/core"
	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/osmem"
	"nomad/internal/sim"
	"nomad/internal/tlb"
)

// NOMAD assembles the paper's design: the OS front-end (tag management in
// PTEs/TLBs, Algorithm 1 and 2) over the hardware back-end (PCSHRs and page
// copy buffers). The scheme's post-LLC path performs the data-hit
// verification of §III-D.3: every cache-space access CAM-matches the PCSHR
// CFN tags before touching the on-package DRAM.
type NOMAD struct {
	eng      *sim.Engine
	hbm, ddr *dram.Device
	mm       *osmem.Manager
	frontend *core.Frontend
	backend  *core.Backend
	stats    AccessStats
	spanTap
}

// NewNOMAD builds the full NOMAD scheme. threads and flusher are supplied by
// the system assembly.
func NewNOMAD(eng *sim.Engine, hbm, ddr *dram.Device, mm *osmem.Manager,
	fcfg core.FrontendConfig, bcfg core.BackendConfig,
	threads []core.Thread, flusher core.Flusher) *NOMAD {
	fcfg.Blocking = false
	backend := core.NewBackend(eng, bcfg, hbm, ddr)
	frontend := core.NewFrontend(eng, fcfg, mm, threads, flusher, backend, nil, nil)
	return &NOMAD{eng: eng, hbm: hbm, ddr: ddr, mm: mm, frontend: frontend,
		backend: backend, spanTap: spanTap{now: eng.Now}}
}

// Name implements Scheme.
func (n *NOMAD) Name() string { return "NOMAD" }

// Access implements Scheme: data-hit verification, then DRAM or page copy
// buffer.
//
//nomad:port post-LLC access entry: the core side hands the request to the channel-side scheme engine; becomes a cross-shard queue push
func (n *NOMAD) Access(req *mem.Request, done mem.Done) {
	addr := mem.Untag(req.Addr)
	if req.Write {
		n.stats.Writes++
	} else {
		done = n.stats.recordRead(n.now, done)
	}
	done = n.wrap(req.Probe, metrics.SpanScheme, done)
	verify := n.backend.Config().VerifyLatency

	if mem.SpaceOf(req.Addr) == mem.SpaceCache {
		if !req.Write {
			n.stats.CacheSpaceReads++
		}
		cfn := mem.PageNum(addr)
		si := mem.SubBlockIndex(addr)
		if verify > 0 {
			// Sensitivity-study path (VerifyLatency > 0): the deferred
			// closure allocation is accepted — the paper default is 0.
			write := req.Write
			kind := req.Kind
			prio := req.Priority
			probe := req.Probe
			n.eng.Schedule(verify, func() {
				if n.backend.CheckCacheAccess(cfn, si, write, probe, done) == core.DataHit {
					n.hbm.AccessProbe(addr, write, kind, prio, probe,
						n.wrap(probe, metrics.SpanHBM, done))
				}
			})
			return
		}
		if n.backend.CheckCacheAccess(cfn, si, req.Write, req.Probe, done) == core.DataHit {
			n.hbm.AccessProbe(addr, req.Write, req.Kind, req.Priority, req.Probe,
				n.wrap(req.Probe, metrics.SpanHBM, done))
		}
		return
	}

	if !req.Write {
		n.stats.PhysSpaceReads++
	}
	pfn := mem.PageNum(addr)
	si := mem.SubBlockIndex(addr)
	if n.backend.CheckPhysicalAccess(pfn, si, req.Write, req.Probe, done) == core.DataHit {
		n.ddr.AccessProbe(addr, req.Write, req.Kind, req.Priority, req.Probe,
			n.wrap(req.Probe, metrics.SpanDDR, done))
	}
}

// Walker implements Scheme.
func (n *NOMAD) Walker() tlb.Walker { return n.frontend }

// Directory implements Scheme.
func (n *NOMAD) Directory() tlb.Directory { return n.frontend }

// NoteStore implements Scheme: sets the dirty-in-cache bit alongside the
// conventional PTE dirty bit (no extra cost, §III-C.1).
func (n *NOMAD) NoteStore(coreID int, e tlb.Entry) {
	if e.Space == mem.SpaceCache {
		n.mm.MarkDirty(e.Frame)
	}
}

// Drained implements Scheme.
func (n *NOMAD) Drained() bool { return n.backend.ActivePCSHRs() == 0 }

// Frontend exposes the OS routines (stats, tests).
func (n *NOMAD) Frontend() *core.Frontend { return n.frontend }

// Backend exposes the hardware engine (stats, tests).
func (n *NOMAD) Backend() *core.Backend { return n.backend }

// AccessStats returns the scheme's DC-controller statistics.
func (n *NOMAD) AccessStats() *AccessStats { return &n.stats }
