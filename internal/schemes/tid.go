package schemes

import (
	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/osmem"
	"nomad/internal/sim"
	"nomad/internal/tlb"
)

// TiD line geometry: 1 KB cache lines (16 sub-blocks), 4-way set-associative
// with an ideal way predictor (§IV-A).
const (
	tidLineBits   = 10
	tidLineSize   = 1 << tidLineBits
	tidSubPerLine = tidLineSize / mem.BlockSize // 16
	tidWays       = 4
)

// TiDConfig sizes the HW-based scheme.
//
//nomad:owner host
type TiDConfig struct {
	// CapacityBytes is the DRAM cache capacity (same on-package DRAM as
	// the OS-managed schemes).
	CapacityBytes uint64
	MSHRs         int
}

// TiDStats counts HW-scheme events beyond AccessStats.
//
//nomad:owner channel
type TiDStats struct {
	Hits       uint64
	Misses     uint64
	Coalesced  uint64
	Writebacks uint64
	MSHRStalls uint64
}

// MissRate returns misses / (hits + misses).
func (s *TiDStats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

//nomad:owner channel
//nomad:ephemeral tag array working state; divergence surfaces in the registered tid.* counters
type tidLine struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

type tidWaiter struct {
	si    uint // sub-block within the line
	write bool
	done  mem.Done
}

//nomad:owner channel
//nomad:ephemeral tag MSHR working state; divergence surfaces in the registered tid.* counters
type tidMSHR struct {
	lineAddr uint64 // PA >> tidLineBits
	set      uint64
	way      int
	arrived  uint32 // bitmap of fetched sub-blocks
	issued   uint32
	inFlight int
	writes   int
	waiters  []tidWaiter
	dirty    bool // any coalesced write
}

type tidPending struct {
	req  mem.Request
	done mem.Done
}

// TiD is the HW-based DRAM cache: tags live in the on-package DRAM, so
// every access spends on-package bandwidth on metadata reads and updates
// (Fig. 1a); misses are handled non-blocking by MSHRs with
// critical-data-first early restart. This is the tag-management mechanism
// of Unison Cache with a 1 KB line, 4 ways, and an ideal way predictor.
//
//nomad:owner channel
type TiD struct {
	eng      *sim.Engine
	hbm, ddr *dram.Device
	mm       *osmem.Manager
	walk     uint64

	//nomad:ephemeral tag-engine working state; divergence surfaces in the registered tid.* counters
	sets    [][]tidLine
	numSets uint64
	//nomad:ephemeral tag-engine working state; divergence surfaces in the registered tid.* counters
	mshrs   map[uint64]*tidMSHR
	maxMSHR int
	//nomad:ephemeral tag-engine working state; divergence surfaces in the registered tid.* counters
	pending []tidPending
	//nomad:ephemeral tag-engine working state; divergence surfaces in the registered tid.* counters
	lruTick  uint64
	metaBase uint64

	stats    AccessStats
	tidStats TiDStats
	spanTap
}

// NewTiD builds the HW-based scheme.
func NewTiD(eng *sim.Engine, hbm, ddr *dram.Device, mm *osmem.Manager, walkLatency uint64, cfg TiDConfig) *TiD {
	lines := cfg.CapacityBytes / tidLineSize
	numSets := lines / tidWays
	if numSets == 0 {
		numSets = 1
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 32
	}
	t := &TiD{
		eng: eng, hbm: hbm, ddr: ddr, mm: mm, walk: walkLatency,
		sets:     make([][]tidLine, numSets),
		numSets:  numSets,
		mshrs:    make(map[uint64]*tidMSHR),
		maxMSHR:  cfg.MSHRs,
		metaBase: cfg.CapacityBytes, // metadata region above the data array
		spanTap:  spanTap{now: eng.Now},
	}
	for i := range t.sets {
		t.sets[i] = make([]tidLine, tidWays)
	}
	return t
}

// Name implements Scheme.
func (t *TiD) Name() string { return "TiD" }

func (t *TiD) lineOf(addr uint64) (lineAddr, set, tag uint64) {
	lineAddr = addr >> tidLineBits
	set = lineAddr % t.numSets
	tag = lineAddr / t.numSets
	return
}

// dataAddr maps (set, way, offset) into the on-package data array.
func (t *TiD) dataAddr(set uint64, way int, offset uint64) uint64 {
	return (set*tidWays+uint64(way))<<tidLineBits | (offset & (tidLineSize - 1))
}

// metaAddr is the on-package address of a set's tag/state block.
func (t *TiD) metaAddr(set uint64) uint64 {
	return t.metaBase + set*mem.BlockSize
}

// Access implements Scheme. All post-LLC traffic is physical-space (TiD
// keeps conventional translation); the DC controller probes tags in the
// on-package DRAM on every access.
//
//nomad:port post-LLC access entry: the core side hands the request to the channel-side scheme engine; becomes a cross-shard queue push
func (t *TiD) Access(req *mem.Request, done mem.Done) {
	addr := mem.Untag(req.Addr)
	if req.Write {
		t.stats.Writes++
	} else {
		t.stats.CacheSpaceReads++
		done = t.stats.recordRead(t.now, done)
	}
	done = t.wrap(req.Probe, metrics.SpanScheme, done)
	t.lookup(mem.Request{Addr: addr, Write: req.Write, Kind: req.Kind,
		Core: req.Core, Probe: req.Probe}, done)
}

func (t *TiD) lookup(req mem.Request, done mem.Done) {
	lineAddr, set, tag := t.lineOf(req.Addr)

	// Tag probe: one 64 B metadata read per access. The ideal way
	// predictor lets the data access proceed in parallel, so the probe
	// costs bandwidth, not serialized latency (§II-A).
	t.hbm.Access(t.metaAddr(set), false, mem.KindMetadata, false, nil)

	ways := t.sets[set]
	for w := range ways {
		l := &ways[w]
		if l.valid && l.tag == tag {
			t.tidStats.Hits++
			t.lruTick++
			l.lru = t.lruTick
			if req.Write {
				l.dirty = true
			}
			da := t.dataAddr(set, w, req.Addr)
			t.hbm.AccessProbe(da, req.Write, mem.KindDemand, false, req.Probe,
				t.wrap(req.Probe, metrics.SpanHBM, done))
			// LRU/dirty metadata update.
			t.hbm.Access(t.metaAddr(set), true, mem.KindMetadata, false, nil)
			return
		}
	}
	t.miss(req, lineAddr, set, done)
}

func (t *TiD) miss(req mem.Request, lineAddr, set uint64, done mem.Done) {
	t.tidStats.Misses++
	si := uint((req.Addr >> mem.BlockBits) & (tidSubPerLine - 1))
	if m, ok := t.mshrs[lineAddr]; ok {
		t.tidStats.Coalesced++
		if m.arrived&(1<<si) != 0 {
			// Sub-block already fetched: early-restart hit on the
			// in-fill line.
			da := t.dataAddr(m.set, m.way, req.Addr)
			t.hbm.AccessProbe(da, req.Write, mem.KindDemand, false, req.Probe,
				t.wrap(req.Probe, metrics.SpanHBM, done))
			if req.Write {
				m.dirty = true
			}
			return
		}
		m.waiters = append(m.waiters, tidWaiter{si: si, write: req.Write, done: done})
		if req.Probe != nil {
			// Parked in the DC MSHR until the sub-block lands.
			req.Probe.Cause = mem.StallMSHR
		}
		if req.Write {
			m.dirty = true
		}
		// Critical-data-first applies to every demanded sub-block, not
		// just the one that opened the MSHR: fetch it out of band, or
		// promote the already-issued fill read to the priority class.
		if m.issued&(1<<si) == 0 {
			t.fetchSub(m, si, true, req.Probe)
		} else {
			t.ddr.Promote(m.lineAddr<<tidLineBits | uint64(si)*mem.BlockSize)
		}
		return
	}
	if len(t.mshrs) >= t.maxMSHR {
		t.tidStats.MSHRStalls++
		if req.Probe != nil {
			req.Probe.Cause = mem.StallMSHR
		}
		t.pending = append(t.pending, tidPending{req: req, done: done})
		return
	}

	// Victim selection and eviction (writeback of the whole 1 KB line if
	// dirty), then allocation.
	ways := t.sets[set]
	way := 0
	oldest := ^uint64(0)
	for w := range ways {
		if !ways[w].valid {
			way = w
			oldest = 0
			break
		}
		if ways[w].lru < oldest {
			oldest = ways[w].lru
			way = w
		}
	}
	v := &ways[way]
	if v.valid && v.dirty {
		t.tidStats.Writebacks++
		victimLine := v.tag*t.numSets + set
		for s := uint64(0); s < tidSubPerLine; s++ {
			src := t.dataAddr(set, way, s*mem.BlockSize)
			dst := victimLine<<tidLineBits | s*mem.BlockSize
			t.hbm.Access(src, false, mem.KindWriteback, false, func() {
				t.ddr.Access(dst, true, mem.KindWriteback, false, nil)
			})
		}
	}
	v.valid = false
	v.dirty = false

	m := &tidMSHR{lineAddr: lineAddr, set: set, way: way}
	m.waiters = append(m.waiters, tidWaiter{si: si, write: req.Write, done: done})
	m.dirty = req.Write
	t.mshrs[lineAddr] = m

	// Critical-data-first: fetch the demanded sub-block with priority,
	// then the rest of the line. The demand's probe rides the priority
	// fetch so its stall cycles attribute to the DDR path, not the MSHR.
	t.fetchSub(m, si, true, req.Probe)
	t.issueFills(m)
}

// issueFills keeps up to eight line-fill reads outstanding.
func (t *TiD) issueFills(m *tidMSHR) {
	for m.inFlight < 8 {
		var si uint
		found := false
		for s := uint(0); s < tidSubPerLine; s++ {
			if m.issued&(1<<s) == 0 {
				si = s
				found = true
				break
			}
		}
		if !found {
			return
		}
		t.fetchSub(m, si, false, nil)
	}
}

func (t *TiD) fetchSub(m *tidMSHR, si uint, priority bool, p *mem.Probe) {
	if m.issued&(1<<si) != 0 {
		return
	}
	m.issued |= 1 << si
	m.inFlight++
	src := m.lineAddr<<tidLineBits | uint64(si)*mem.BlockSize
	t.ddr.AccessProbe(src, false, mem.KindFill, priority, p,
		t.wrap(p, metrics.SpanDDR, func() {
			t.subArrived(m, si)
		}))
}

func (t *TiD) subArrived(m *tidMSHR, si uint) {
	m.inFlight--
	m.arrived |= 1 << si
	// Fill the sub-block into the data array.
	da := t.dataAddr(m.set, m.way, uint64(si)*mem.BlockSize)
	t.hbm.Access(da, true, mem.KindFill, false, func() {
		m.writes++
		if m.writes == tidSubPerLine {
			t.fillComplete(m)
		}
	})
	// Early restart: serve waiters for this sub-block.
	kept := m.waiters[:0]
	for _, w := range m.waiters {
		if w.si == si {
			wa := t.dataAddr(m.set, m.way, uint64(w.si)*mem.BlockSize)
			t.hbm.Access(wa, w.write, mem.KindDemand, false, w.done)
		} else {
			kept = append(kept, w)
		}
	}
	m.waiters = kept
	t.issueFills(m)
}

func (t *TiD) fillComplete(m *tidMSHR) {
	l := &t.sets[m.set][m.way]
	t.lruTick++
	*l = tidLine{tag: m.lineAddr / t.numSets, valid: true, dirty: m.dirty, lru: t.lruTick}
	// Tag install / state update.
	t.hbm.Access(t.metaAddr(m.set), true, mem.KindMetadata, false, nil)
	delete(t.mshrs, m.lineAddr)
	if len(t.pending) > 0 {
		p := t.pending[0]
		t.pending = t.pending[1:]
		t.eng.Schedule(0, func() { t.lookup(p.req, p.done) })
	}
}

// Walker implements Scheme: conventional translation only.
func (t *TiD) Walker() tlb.Walker { return tidWalker{t} }

type tidWalker struct{ t *TiD }

//nomad:port page-walk entry: the core-side TLB asks the channel-side OS engine to translate; becomes a cross-shard request
func (w tidWalker) Walk(coreID int, vaddr uint64, done func(tlb.Entry)) {
	w.t.eng.Schedule(w.t.walk, func() {
		vpn := mem.PageNum(vaddr)
		pte := w.t.mm.PTEOf(coreID, vpn)
		done(tlb.Entry{VPN: vpn, Frame: pte.Frame, Space: mem.SpacePhysical})
	})
}

// Directory implements Scheme.
func (t *TiD) Directory() tlb.Directory { return nil }

// NoteStore implements Scheme.
func (t *TiD) NoteStore(coreID int, e tlb.Entry) {}

// Drained implements Scheme.
func (t *TiD) Drained() bool { return len(t.mshrs) == 0 }

// AccessStats returns the scheme's DC-controller statistics.
func (t *TiD) AccessStats() *AccessStats { return &t.stats }

// TiDStats returns the HW-scheme counters.
func (t *TiD) TiDStats() *TiDStats { return &t.tidStats }
