package schemes

import (
	"nomad/internal/core"
	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/osmem"
	"nomad/internal/sim"
	"nomad/internal/tlb"
)

// Ideal is the zero-penalty OS-managed DRAM cache: tag misses cost nothing,
// page data is instantly present (no fill or writeback traffic), eviction is
// free. It is the upper bound of OS-managed DC performance (§IV-A) and the
// configuration under which Table I's workload characteristics — required
// miss-handling bandwidth (RMHB) and LLC MPMS — are measured: RMHB is the
// fill bandwidth that *would have been* needed, accumulated in
// WouldFillBytes.
//
//nomad:owner channel
type Ideal struct {
	eng      *sim.Engine
	hbm      *dram.Device
	ddr      *dram.Device
	mm       *osmem.Manager
	walk     uint64
	lowWater uint64
	batch    int

	stats AccessStats
	// WouldFillBytes counts 4 KB per tag miss: the miss-handling traffic
	// an actual fill engine would generate.
	WouldFillBytes uint64
	TagMisses      uint64

	//nomad:ephemeral oracle bookkeeping; divergence surfaces in the registered scheme counters
	sd core.Shootdowner
	spanTap
}

// SetShootdowner wires the TLB shootdown fallback used when every frame is
// TLB-resident (tiny caches only).
func (s *Ideal) SetShootdowner(sd core.Shootdowner) { s.sd = sd }

// NewIdeal builds the ideal scheme.
func NewIdeal(eng *sim.Engine, hbm, ddr *dram.Device, mm *osmem.Manager, walkLatency uint64) *Ideal {
	low := uint64(96)
	if max := mm.CacheFrames() / 4; low > max {
		low = max // tiny caches (tests): keep the watermark reachable
	}
	batch := 128
	if b := int(mm.CacheFrames() / 2); batch > b && b > 0 {
		batch = b
	}
	return &Ideal{
		eng: eng, hbm: hbm, ddr: ddr, mm: mm, walk: walkLatency,
		lowWater: low, batch: batch, spanTap: spanTap{now: eng.Now},
	}
}

// Name implements Scheme.
func (s *Ideal) Name() string { return "Ideal" }

// Access implements Scheme.
func (s *Ideal) Access(req *mem.Request, done mem.Done) {
	addr := mem.Untag(req.Addr)
	if req.Write {
		s.stats.Writes++
	} else {
		done = s.stats.recordRead(s.now, done)
	}
	if mem.SpaceOf(req.Addr) == mem.SpaceCache {
		if !req.Write {
			s.stats.CacheSpaceReads++
		}
		done = s.wrap(req.Probe, metrics.SpanHBM, done)
		s.hbm.AccessProbe(addr, req.Write, req.Kind, req.Priority, req.Probe, done)
	} else {
		if !req.Write {
			s.stats.PhysSpaceReads++
		}
		done = s.wrap(req.Probe, metrics.SpanDDR, done)
		s.ddr.AccessProbe(addr, req.Write, req.Kind, req.Priority, req.Probe, done)
	}
}

// Walker implements Scheme.
func (s *Ideal) Walker() tlb.Walker { return idealWalker{s} }

type idealWalker struct{ s *Ideal }

//nomad:port page-walk entry: the core-side TLB asks the channel-side OS engine to translate; becomes a cross-shard request
func (w idealWalker) Walk(coreID int, vaddr uint64, done func(tlb.Entry)) {
	s := w.s
	s.eng.Schedule(s.walk, func() {
		vpn := mem.PageNum(vaddr)
		pte := s.mm.PTEOf(coreID, vpn)
		if pte.NonCacheable {
			done(tlb.Entry{VPN: vpn, Frame: pte.Frame, Space: mem.SpacePhysical})
			return
		}
		if !pte.Cached {
			// Instant, penalty-free tag miss handling.
			s.TagMisses++
			s.WouldFillBytes += mem.PageSize
			if s.mm.FreeFrames() <= s.lowWater {
				s.evict()
			}
			pfn := pte.Frame
			cfn := s.mm.AllocateFrame(pfn)
			s.mm.SetCached(pfn, cfn)
		}
		done(tlb.Entry{VPN: vpn, Frame: pte.Frame, Space: mem.SpaceCache})
	})
}

func (s *Ideal) evict() {
	sweeps := 0
	for s.mm.FreeFrames() <= s.lowWater {
		victims, _ := s.mm.EvictCandidates(s.batch)
		for _, cfn := range victims {
			s.mm.ReleaseFrame(cfn)
		}
		if len(victims) > 0 {
			sweeps = 0
			continue
		}
		// Shootdown-avoidance starvation (TLB reach >= DC capacity):
		// fall back to real shootdowns over the next window.
		if sweeps++; sweeps > int(s.mm.CacheFrames())/s.batch+1 {
			if s.sd == nil {
				panic("schemes: ideal eviction starved and no shootdown path is wired")
			}
			n := s.mm.CacheFrames()
			tail := s.mm.Tail()
			for i := uint64(0); i < uint64(s.batch) && i < n; i++ {
				cfn := (tail + i) % n
				cpd := s.mm.CPDOf(cfn)
				if cpd.Valid && cpd.TLBDir != 0 {
					for _, mp := range s.mm.PPDOf(cpd.PFN).Reverse {
						s.sd.Shootdown(mp.Core, mp.VPN)
					}
					cpd.TLBDir = 0
				}
			}
			sweeps = 0
		}
	}
}

// Directory implements Scheme: the ideal scheme still avoids evicting
// TLB-resident frames so translations never go stale.
func (s *Ideal) Directory() tlb.Directory { return idealDir{s} }

type idealDir struct{ s *Ideal }

func (d idealDir) TLBInserted(coreID int, e tlb.Entry) { d.s.mm.TLBSet(e.Frame, coreID, true) }
func (d idealDir) TLBEvicted(coreID int, e tlb.Entry)  { d.s.mm.TLBSet(e.Frame, coreID, false) }

// NoteStore implements Scheme.
func (s *Ideal) NoteStore(coreID int, e tlb.Entry) {
	if e.Space == mem.SpaceCache {
		s.mm.MarkDirty(e.Frame)
	}
}

// Drained implements Scheme.
func (s *Ideal) Drained() bool { return true }

// AccessStats returns the scheme's DC-controller statistics.
func (s *Ideal) AccessStats() *AccessStats { return &s.stats }
