package schemes

import (
	"nomad/internal/core"
	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/osmem"
	"nomad/internal/sim"
	"nomad/internal/tlb"
)

// TDC is the state-of-the-art blocking OS-managed DRAM cache (Lee et al.,
// "A Fully Associative, Tagless DRAM Cache", ISCA 2015), implemented — per
// §IV-A — like the NOMAD front-end except for the blocking miss handling:
// on a DC tag miss the OS copies the whole page and only then resumes the
// thread. Page copies from different cores proceed in parallel (only the
// critical PTEs are locked) and no tag-management penalty is charged, which
// isolates the blocking-vs-non-blocking comparison.
//
//nomad:owner channel
type TDC struct {
	eng      *sim.Engine
	hbm, ddr *dram.Device
	mm       *osmem.Manager
	//nomad:ephemeral tag-engine working state; divergence surfaces in the registered scheme counters
	frontend *core.Frontend
	stats    AccessStats
	//nomad:ephemeral tag-engine working state; divergence surfaces in the registered scheme counters
	inflightCopies int
	spanTap
}

// NewTDC builds the blocking OS-managed scheme.
func NewTDC(eng *sim.Engine, hbm, ddr *dram.Device, mm *osmem.Manager,
	fcfg core.FrontendConfig, threads []core.Thread, flusher core.Flusher) *TDC {
	t := &TDC{eng: eng, hbm: hbm, ddr: ddr, mm: mm, spanTap: spanTap{now: eng.Now}}
	// The TDC page copy is OS software running on the faulting CPU — a
	// cache-line copy loop with the memory-level parallelism of a memcpy
	// (~2 outstanding lines), not a hardware DMA engine. This is the
	// fundamental reason the blocking scheme cannot saturate off-package
	// bandwidth on Excess-class workloads while NOMAD's back-end can
	// (§II-B: the miss is "penalized by thousands of cycles mainly due to
	// the cache-fill execution").
	copier := core.NewCopier(eng, 2)
	fill := func(pfn, cfn uint64, done mem.Done) {
		t.inflightCopies++
		copier.Copy(ddr, pfn, hbm, cfn, mem.KindFill, func() {
			t.inflightCopies--
			if done != nil {
				done()
			}
		})
	}
	wb := func(cfn, pfn uint64, done mem.Done) {
		t.inflightCopies++
		copier.Copy(hbm, cfn, ddr, pfn, mem.KindWriteback, func() {
			t.inflightCopies--
			if done != nil {
				done()
			}
		})
	}
	fcfg.Blocking = true
	fcfg.TagMgmtLatency = 0
	t.frontend = core.NewFrontend(eng, fcfg, mm, threads, flusher, nil, fill, wb)
	return t
}

// Name implements Scheme.
func (t *TDC) Name() string { return "TDC" }

// Access implements Scheme: with coupled tag-data management a tag hit
// guarantees a data hit, so cache-space accesses go straight to the
// on-package DRAM.
//
//nomad:port post-LLC access entry: the core side hands the request to the channel-side scheme engine; becomes a cross-shard queue push
func (t *TDC) Access(req *mem.Request, done mem.Done) {
	addr := mem.Untag(req.Addr)
	if req.Write {
		t.stats.Writes++
	} else {
		done = t.stats.recordRead(t.now, done)
	}
	if mem.SpaceOf(req.Addr) == mem.SpaceCache {
		if !req.Write {
			t.stats.CacheSpaceReads++
		}
		done = t.wrap(req.Probe, metrics.SpanHBM, done)
		t.hbm.AccessProbe(addr, req.Write, req.Kind, req.Priority, req.Probe, done)
	} else {
		if !req.Write {
			t.stats.PhysSpaceReads++
		}
		done = t.wrap(req.Probe, metrics.SpanDDR, done)
		t.ddr.AccessProbe(addr, req.Write, req.Kind, req.Priority, req.Probe, done)
	}
}

// Walker implements Scheme.
func (t *TDC) Walker() tlb.Walker { return t.frontend }

// Directory implements Scheme.
func (t *TDC) Directory() tlb.Directory { return t.frontend }

// NoteStore implements Scheme.
func (t *TDC) NoteStore(coreID int, e tlb.Entry) {
	if e.Space == mem.SpaceCache {
		t.mm.MarkDirty(e.Frame)
	}
}

// Drained implements Scheme.
func (t *TDC) Drained() bool { return t.inflightCopies == 0 }

// Frontend exposes the OS routines (stats, tests).
func (t *TDC) Frontend() *core.Frontend { return t.frontend }

// AccessStats returns the scheme's DC-controller statistics.
func (t *TDC) AccessStats() *AccessStats { return &t.stats }
