// Package schemes implements the five memory schemes of the evaluation
// (§IV-A) behind one interface: Baseline (off-package only), TiD (HW-based,
// Unison-style tags-in-DRAM), TDC (blocking OS-managed), NOMAD, and Ideal
// (zero-penalty OS-managed upper bound).
//
// A Scheme sits below the shared LLC (it is the DC controller plus, for the
// OS-managed designs, the OS front-end), and above the two DRAM devices.
package schemes

import (
	"nomad/internal/mem"
	"nomad/internal/tlb"
)

// Scheme is one memory-system design under test.
type Scheme interface {
	Name() string
	// Access handles post-LLC traffic (demand misses and writebacks).
	// The request address is space-tagged (mem.TagSpace).
	Access(req *mem.Request, done mem.Done)
	// Walker resolves TLB misses (scheme-specific: OS-managed schemes
	// run DC tag miss handling here).
	Walker() tlb.Walker
	// Directory observes TLB residency of cache-space translations (nil
	// for schemes that do not need it).
	Directory() tlb.Directory
	// NoteStore is invoked after a store's translation so OS-managed
	// schemes can set the dirty-in-cache bit (free in real hardware,
	// §III-C.1).
	NoteStore(coreID int, e tlb.Entry)
	// Drained reports whether background work has quiesced (used to
	// drain between warmup and measurement windows if desired).
	Drained() bool
}

// AccessStats measures the effective DC access time at the DC controller
// (Fig. 9's right axis) — time from the post-LLC request entering the
// scheme until its data is available.
type AccessStats struct {
	Reads          uint64
	ReadLatencySum uint64
	Writes         uint64
	// CacheSpaceReads counts reads served by the on-package DRAM path.
	CacheSpaceReads uint64
	PhysSpaceReads  uint64
}

// AvgReadLatency returns the mean post-LLC read latency in cycles.
func (s *AccessStats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.Reads)
}

// recordRead wraps done to account a read's latency.
func (s *AccessStats) recordRead(now func() uint64, done mem.Done) mem.Done {
	start := now()
	s.Reads++
	return func() {
		s.ReadLatencySum += now() - start
		if done != nil {
			done()
		}
	}
}
