// Package schemes implements the five memory schemes of the evaluation
// (§IV-A) behind one interface: Baseline (off-package only), TiD (HW-based,
// Unison-style tags-in-DRAM), TDC (blocking OS-managed), NOMAD, and Ideal
// (zero-penalty OS-managed upper bound).
//
// A Scheme sits below the shared LLC (it is the DC controller plus, for the
// OS-managed designs, the OS front-end), and above the two DRAM devices.
package schemes

import (
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/tlb"
)

// Scheme is one memory-system design under test.
type Scheme interface {
	Name() string
	// Access handles post-LLC traffic (demand misses and writebacks).
	// The request address is space-tagged (mem.TagSpace).
	Access(req *mem.Request, done mem.Done)
	// Walker resolves TLB misses (scheme-specific: OS-managed schemes
	// run DC tag miss handling here).
	Walker() tlb.Walker
	// Directory observes TLB residency of cache-space translations (nil
	// for schemes that do not need it).
	Directory() tlb.Directory
	// NoteStore is invoked after a store's translation so OS-managed
	// schemes can set the dirty-in-cache bit (free in real hardware,
	// §III-C.1).
	NoteStore(coreID int, e tlb.Entry)
	// Drained reports whether background work has quiesced (used to
	// drain between warmup and measurement windows if desired).
	Drained() bool
}

// AccessStats measures the effective DC access time at the DC controller
// (Fig. 9's right axis) — time from the post-LLC request entering the
// scheme until its data is available.
//
//nomad:owner channel
type AccessStats struct {
	Reads          uint64
	ReadLatencySum uint64
	Writes         uint64
	// CacheSpaceReads counts reads served by the on-package DRAM path.
	CacheSpaceReads uint64
	PhysSpaceReads  uint64
	// Lat, when set (system wiring), gets one observation per read — the
	// distribution behind AvgReadLatency (Fig. 9's right axis).
	Lat *metrics.Histogram

	// recs is the readRec freelist: recordRead recycles its latency
	// wrappers so the per-read hot path does not allocate.
	//nomad:ephemeral read-latency ring consumed by the registered latency histogram at flush
	recs []*readRec
}

// readRec is one pooled in-flight read measurement; fn is its permanent
// completion wrapper, built once per instance.
//
//nomad:owner channel
type readRec struct {
	start uint64
	now   func() uint64
	done  mem.Done
	fn    mem.Done
}

// getRec takes a readRec from the freelist, building the instance only on
// first use. The wrapper recycles its record before chaining to done, so a
// re-entrant read can reuse it immediately.
func (s *AccessStats) getRec() *readRec {
	if n := len(s.recs); n > 0 {
		r := s.recs[n-1]
		s.recs = s.recs[:n-1]
		return r
	}
	r := &readRec{} //nomadlint:ignore poolalloc -- freelist constructor: the one allocation the pool amortizes
	r.fn = func() {
		lat := r.now() - r.start
		s.ReadLatencySum += lat
		s.Lat.Observe(lat)
		done := r.done
		r.done, r.now = nil, nil
		s.recs = append(s.recs, r)
		if done != nil {
			done()
		}
	}
	return r
}

// AvgReadLatency returns the mean post-LLC read latency in cycles.
func (s *AccessStats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.Reads)
}

// recordRead wraps done to account a read's latency (pooled: the returned
// wrapper is recycled at completion, so steady-state reads do not allocate).
func (s *AccessStats) recordRead(now func() uint64, done mem.Done) mem.Done {
	s.Reads++
	r := s.getRec()
	r.start = now()
	r.now = now
	r.done = done
	return r.fn
}

// spanTap is the span-emission hook every scheme embeds: wrap() records a
// hop of a sampled access (Probe.SpanID != 0) into the attached ring. The
// zero value is disabled; schemes set now at construction and the system
// wiring attaches the ring via SetSpans.
//
//nomad:owner channel
type spanTap struct {
	spans *metrics.SpanRing
	now   func() uint64
}

// SetSpans attaches the span ring sampled accesses emit into (nil disables).
func (st *spanTap) SetSpans(spans *metrics.SpanRing) { st.spans = spans }

// wrap returns done wrapped to emit one span of the given kind covering
// now()..completion. Untagged or unsampled requests pass through untouched.
func (st *spanTap) wrap(p *mem.Probe, kind metrics.SpanKind, done mem.Done) mem.Done {
	if st.spans == nil || p == nil || p.SpanID == 0 {
		return done
	}
	start := st.now()
	id, core := p.SpanID, p.Core
	return func() {
		st.spans.Emit(metrics.Span{
			ID: id, Kind: kind, Core: core, Start: start, End: st.now(),
		})
		if done != nil {
			done()
		}
	}
}
