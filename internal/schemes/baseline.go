package schemes

import (
	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/osmem"
	"nomad/internal/sim"
	"nomad/internal/tlb"
)

// Baseline models a traditional system with only off-package memory: the
// lower bound of DRAM cache performance (§IV-A). Every post-LLC access goes
// to DDR; translation is a plain page-table walk.
type Baseline struct {
	eng   *sim.Engine
	ddr   *dram.Device
	mm    *osmem.Manager
	walk  uint64
	stats AccessStats
	spanTap
}

// NewBaseline builds the baseline scheme.
func NewBaseline(eng *sim.Engine, ddr *dram.Device, mm *osmem.Manager, walkLatency uint64) *Baseline {
	return &Baseline{eng: eng, ddr: ddr, mm: mm, walk: walkLatency, spanTap: spanTap{now: eng.Now}}
}

// Name implements Scheme.
func (b *Baseline) Name() string { return "Baseline" }

// Access implements Scheme.
//
//nomad:port post-LLC access entry: the core side hands the request to the channel-side scheme engine; becomes a cross-shard queue push
func (b *Baseline) Access(req *mem.Request, done mem.Done) {
	if req.Write {
		b.stats.Writes++
	} else {
		b.stats.PhysSpaceReads++
		done = b.stats.recordRead(b.now, done)
	}
	done = b.wrap(req.Probe, metrics.SpanDDR, done)
	b.ddr.AccessProbe(mem.Untag(req.Addr), req.Write, req.Kind, req.Priority, req.Probe, done)
}

// Walker implements Scheme.
func (b *Baseline) Walker() tlb.Walker { return baselineWalker{b} }

type baselineWalker struct{ b *Baseline }

//nomad:port page-walk entry: the core-side TLB asks the channel-side OS engine to translate; becomes a cross-shard request
func (w baselineWalker) Walk(coreID int, vaddr uint64, done func(tlb.Entry)) {
	w.b.eng.Schedule(w.b.walk, func() {
		vpn := mem.PageNum(vaddr)
		pte := w.b.mm.PTEOf(coreID, vpn)
		done(tlb.Entry{VPN: vpn, Frame: pte.Frame, Space: mem.SpacePhysical})
	})
}

// Directory implements Scheme.
func (b *Baseline) Directory() tlb.Directory { return nil }

// NoteStore implements Scheme.
func (b *Baseline) NoteStore(coreID int, e tlb.Entry) {}

// Drained implements Scheme.
func (b *Baseline) Drained() bool { return true }

// AccessStats returns the scheme's DC-controller statistics.
func (b *Baseline) AccessStats() *AccessStats { return &b.stats }
