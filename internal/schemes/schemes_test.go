package schemes

import (
	"testing"

	"nomad/internal/core"
	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/osmem"
	"nomad/internal/sim"
	"nomad/internal/tlb"
)

type env struct {
	eng *sim.Engine
	hbm *dram.Device
	ddr *dram.Device
	mm  *osmem.Manager
}

func newEnv(cores int, frames uint64) *env {
	eng := sim.New()
	return &env{
		eng: eng,
		hbm: dram.New(eng, dram.HBMConfig()),
		ddr: dram.New(eng, dram.DDRConfig()),
		mm:  osmem.New(cores, frames),
	}
}

type idleThread struct{ blocked int }

func (t *idleThread) Block()   { t.blocked++ }
func (t *idleThread) Unblock() { t.blocked-- }

func (e *env) threads(n int) []core.Thread {
	ts := make([]core.Thread, n)
	for i := range ts {
		ts[i] = &idleThread{}
	}
	return ts
}

// translate runs a walk to completion.
func translate(t *testing.T, e *env, s Scheme, coreID int, vaddr uint64) tlb.Entry {
	t.Helper()
	var got *tlb.Entry
	s.Walker().Walk(coreID, vaddr, func(en tlb.Entry) { got = &en })
	if !e.eng.RunUntil(func() bool { return got != nil }, 1_000_000) {
		t.Fatal("walk never completed")
	}
	return *got
}

// access issues one post-LLC request and waits for completion.
func access(t *testing.T, e *env, s Scheme, addr uint64, space mem.Space, write bool) {
	t.Helper()
	done := false
	req := mem.Request{Addr: mem.TagSpace(addr, space), Write: write, Kind: mem.KindDemand}
	s.Access(&req, func() { done = true })
	if write {
		e.eng.Run(2000) // writes may carry no completion guarantee
		return
	}
	if !e.eng.RunUntil(func() bool { return done }, 1_000_000) {
		t.Fatal("access never completed")
	}
}

func TestBaselineUsesOnlyDDR(t *testing.T) {
	e := newEnv(1, 64)
	b := NewBaseline(e.eng, e.ddr, e.mm, 100)
	en := translate(t, e, b, 0, 0x3000)
	if en.Space != mem.SpacePhysical {
		t.Fatal("baseline produced a cache-space translation")
	}
	access(t, e, b, mem.AddrInFrame(en.Frame, 0), mem.SpacePhysical, false)
	if e.hbm.Stats().TotalBytes() != 0 {
		t.Fatal("baseline touched on-package DRAM")
	}
	if e.ddr.Stats().Reads != 1 {
		t.Fatalf("DDR reads = %d", e.ddr.Stats().Reads)
	}
	if b.AccessStats().Reads != 1 {
		t.Fatal("access not recorded")
	}
}

func TestIdealCachesWithoutTraffic(t *testing.T) {
	e := newEnv(1, 64)
	s := NewIdeal(e.eng, e.hbm, e.ddr, e.mm, 100)
	en := translate(t, e, s, 0, 0)
	if en.Space != mem.SpaceCache {
		t.Fatal("ideal walk did not cache the page")
	}
	if s.TagMisses != 1 || s.WouldFillBytes != mem.PageSize {
		t.Fatalf("would-fill accounting: %d misses, %d bytes", s.TagMisses, s.WouldFillBytes)
	}
	if e.ddr.Stats().TotalBytes() != 0 {
		t.Fatal("ideal scheme generated off-package traffic")
	}
	access(t, e, s, mem.AddrInFrame(en.Frame, 64), mem.SpaceCache, false)
	if e.hbm.Stats().Reads != 1 {
		t.Fatal("cache-space read did not reach HBM")
	}
}

func TestIdealEvictionKeepsFreeFrames(t *testing.T) {
	e := newEnv(1, 128)
	s := NewIdeal(e.eng, e.hbm, e.ddr, e.mm, 10)
	for i := uint64(0); i < 500; i++ {
		translate(t, e, s, 0, i*mem.PageSize)
	}
	if e.mm.FreeFrames() == 0 {
		t.Fatal("ideal eviction failed to keep free frames")
	}
}

func TestTDCBlockingFill(t *testing.T) {
	e := newEnv(1, 1024)
	th := e.threads(1)
	s := NewTDC(e.eng, e.hbm, e.ddr, e.mm, core.DefaultFrontendConfig(), th, nil)
	start := e.eng.Now()
	en := translate(t, e, s, 0, 0)
	elapsed := e.eng.Now() - start
	if en.Space != mem.SpaceCache {
		t.Fatal("TDC tag miss did not cache the page")
	}
	// The thread waited for the whole 4 KB copy: 64 reads + 64 writes.
	if e.ddr.Stats().Reads != 64 || e.hbm.Stats().Writes != 64 {
		t.Fatalf("copy moved %d/%d", e.ddr.Stats().Reads, e.hbm.Stats().Writes)
	}
	if elapsed < 2000 {
		t.Fatalf("blocking fill took only %d cycles", elapsed)
	}
	if th[0].(*idleThread).blocked != 0 {
		t.Fatal("thread left blocked")
	}
	if !s.Drained() {
		t.Fatal("copies still in flight")
	}
}

func TestNOMADDecoupledFill(t *testing.T) {
	e := newEnv(1, 1024)
	th := e.threads(1)
	s := NewNOMAD(e.eng, e.hbm, e.ddr, e.mm, core.DefaultFrontendConfig(), core.DefaultBackendConfig(), th, nil)
	start := e.eng.Now()
	en := translate(t, e, s, 0, 0x40)
	elapsed := e.eng.Now() - start
	// Thread resumes after walk + tag management, not after the copy.
	want := core.DefaultFrontendConfig().WalkLatency + core.DefaultFrontendConfig().TagMgmtLatency
	if elapsed != want {
		t.Fatalf("NOMAD tag miss latency = %d, want %d", elapsed, want)
	}
	if s.Drained() {
		t.Fatal("fill completed implausibly fast (should be in flight)")
	}
	// Demand access to the faulted page: data miss handled by back-end.
	access(t, e, s, mem.AddrInFrame(en.Frame, 0x40), mem.SpaceCache, false)
	if s.Backend().Stats().DataMisses == 0 {
		t.Fatal("access during fill not detected as data miss")
	}
	if !e.eng.RunUntil(func() bool { return s.Drained() }, 1_000_000) {
		t.Fatal("fill never completed")
	}
	// After the fill, the same access is a data hit straight to HBM.
	before := s.Backend().Stats().DataHits
	access(t, e, s, mem.AddrInFrame(en.Frame, 0x40), mem.SpaceCache, false)
	if s.Backend().Stats().DataHits != before+1 {
		t.Fatal("post-fill access not a data hit")
	}
}

func TestNOMADNoteStoreSetsDirty(t *testing.T) {
	e := newEnv(1, 64)
	s := NewNOMAD(e.eng, e.hbm, e.ddr, e.mm, core.DefaultFrontendConfig(), core.DefaultBackendConfig(), e.threads(1), nil)
	en := translate(t, e, s, 0, 0)
	s.NoteStore(0, en)
	if !e.mm.CPDOf(en.Frame).DirtyInCache {
		t.Fatal("NoteStore did not set the DC bit")
	}
}

func TestTiDMetadataTraffic(t *testing.T) {
	e := newEnv(1, 1024)
	s := NewTiD(e.eng, e.hbm, e.ddr, e.mm, 100, TiDConfig{CapacityBytes: 1024 * mem.PageSize})
	en := translate(t, e, s, 0, 0)
	if en.Space != mem.SpacePhysical {
		t.Fatal("TiD should keep conventional translation")
	}
	// First access: miss -> 1 KB fill from DDR.
	access(t, e, s, mem.AddrInFrame(en.Frame, 0), mem.SpacePhysical, false)
	e.eng.Run(20000) // let the fill finish
	if got := e.ddr.Stats().BytesByKind[mem.KindFill]; got != 1024 {
		t.Fatalf("fill bytes = %d, want 1024 (one TiD line)", got)
	}
	if e.hbm.Stats().BytesByKind[mem.KindMetadata] == 0 {
		t.Fatal("no metadata traffic on access")
	}
	// Second access to the same line: hit, still costs metadata.
	meta := e.hbm.Stats().BytesByKind[mem.KindMetadata]
	access(t, e, s, mem.AddrInFrame(en.Frame, 64), mem.SpacePhysical, false)
	e.eng.Run(1000)
	if e.hbm.Stats().BytesByKind[mem.KindMetadata] <= meta {
		t.Fatal("hit consumed no metadata bandwidth")
	}
	if s.TiDStats().Hits != 1 || s.TiDStats().Misses != 1 {
		t.Fatalf("tid stats %+v", s.TiDStats())
	}
}

func TestTiDSetAssociativeEviction(t *testing.T) {
	e := newEnv(1, 1024)
	// Tiny cache: 4 lines = 1 set of 4 ways.
	s := NewTiD(e.eng, e.hbm, e.ddr, e.mm, 100, TiDConfig{CapacityBytes: 4 * 1024})
	// Write-allocate 5 distinct lines mapping to the single set: the LRU
	// victim (dirty) must be written back.
	for i := uint64(0); i < 5; i++ {
		done := false
		req := mem.Request{Addr: i * 1024, Write: true, Kind: mem.KindDemand}
		s.Access(&req, nil)
		e.eng.RunUntil(func() bool { done = s.Drained(); return done }, 1_000_000)
	}
	if s.TiDStats().Writebacks == 0 {
		t.Fatal("no writeback despite conflict eviction of dirty line")
	}
	if e.ddr.Stats().BytesByKind[mem.KindWriteback] == 0 {
		t.Fatal("writeback bytes missing on DDR")
	}
}

func TestNOMADPhysicalAccessPath(t *testing.T) {
	e := newEnv(1, 64)
	s := NewNOMAD(e.eng, e.hbm, e.ddr, e.mm, core.DefaultFrontendConfig(), core.DefaultBackendConfig(), e.threads(1), nil)
	// A non-cacheable page keeps a physical translation; its accesses go
	// to DDR through the writeback-PCSHR check.
	pte := e.mm.PTEOf(0, 4)
	pte.NonCacheable = true
	en := translate(t, e, s, 0, 4*mem.PageSize)
	if en.Space != mem.SpacePhysical {
		t.Fatal("NC page not physical")
	}
	access(t, e, s, mem.AddrInFrame(en.Frame, 0), mem.SpacePhysical, false)
	if e.ddr.Stats().Reads != 1 {
		t.Fatalf("DDR reads = %d", e.ddr.Stats().Reads)
	}
}

func TestNOMADVerifyLatency(t *testing.T) {
	e := newEnv(1, 64)
	bcfg := core.DefaultBackendConfig()
	bcfg.VerifyLatency = 50
	s := NewNOMAD(e.eng, e.hbm, e.ddr, e.mm, core.DefaultFrontendConfig(), bcfg, e.threads(1), nil)
	en := translate(t, e, s, 0, 0)
	if !e.eng.RunUntil(func() bool { return s.Drained() }, 1_000_000) {
		t.Fatal("fill stuck")
	}
	start := e.eng.Now()
	done := false
	req := mem.Request{Addr: mem.TagSpace(mem.AddrInFrame(en.Frame, 0), mem.SpaceCache)}
	s.Access(&req, func() { done = true })
	e.eng.RunUntil(func() bool { return done }, 100_000)
	if lat := e.eng.Now() - start; lat < 50 {
		t.Fatalf("access latency %d ignores the 50-cycle verification", lat)
	}
}

func TestTDCAccessPaths(t *testing.T) {
	e := newEnv(1, 1024)
	s := NewTDC(e.eng, e.hbm, e.ddr, e.mm, core.DefaultFrontendConfig(), e.threads(1), nil)
	en := translate(t, e, s, 0, 0)
	access(t, e, s, mem.AddrInFrame(en.Frame, 0), mem.SpaceCache, false)
	if s.AccessStats().CacheSpaceReads != 1 {
		t.Fatal("cache-space read not recorded")
	}
	access(t, e, s, 12345<<12, mem.SpacePhysical, true)
	if s.AccessStats().Writes != 1 {
		t.Fatal("write not recorded")
	}
	s.NoteStore(0, en)
	if !e.mm.CPDOf(en.Frame).DirtyInCache {
		t.Fatal("TDC NoteStore did not set the DC bit")
	}
	if s.Name() != "TDC" || s.Directory() == nil || s.Frontend() == nil {
		t.Fatal("TDC accessors broken")
	}
}

func TestTiDMSHRStall(t *testing.T) {
	e := newEnv(1, 1024)
	s := NewTiD(e.eng, e.hbm, e.ddr, e.mm, 100, TiDConfig{CapacityBytes: 1 << 20, MSHRs: 1})
	completed := 0
	// Two misses to different lines with one MSHR: the second stalls.
	for i := uint64(0); i < 2; i++ {
		req := mem.Request{Addr: i * 2048, Kind: mem.KindDemand}
		s.Access(&req, func() { completed++ })
	}
	if !e.eng.RunUntil(func() bool { return completed == 2 }, 1_000_000) {
		t.Fatal("stalled access never completed")
	}
	if s.TiDStats().MSHRStalls != 1 {
		t.Fatalf("MSHR stalls = %d, want 1", s.TiDStats().MSHRStalls)
	}
}

func TestTiDEarlyRestartOnArrivedSubBlock(t *testing.T) {
	e := newEnv(1, 1024)
	s := NewTiD(e.eng, e.hbm, e.ddr, e.mm, 100, TiDConfig{CapacityBytes: 1 << 20})
	first := false
	req := mem.Request{Addr: 0, Kind: mem.KindDemand}
	s.Access(&req, func() { first = true })
	// Wait for the demanded sub-block, then access it again mid-fill.
	if !e.eng.RunUntil(func() bool { return first }, 1_000_000) {
		t.Fatal("first access never completed")
	}
	if s.Drained() {
		t.Skip("fill already complete; early-restart window missed")
	}
	second := false
	req2 := mem.Request{Addr: 0, Kind: mem.KindDemand}
	s.Access(&req2, func() { second = true })
	if !e.eng.RunUntil(func() bool { return second }, 1_000_000) {
		t.Fatal("early-restart access never completed")
	}
}

func TestIdealNonCacheable(t *testing.T) {
	e := newEnv(1, 64)
	s := NewIdeal(e.eng, e.hbm, e.ddr, e.mm, 10)
	pte := e.mm.PTEOf(0, 2)
	pte.NonCacheable = true
	en := translate(t, e, s, 0, 2*mem.PageSize)
	if en.Space != mem.SpacePhysical {
		t.Fatal("NC page cached by Ideal")
	}
	s.NoteStore(0, en) // must not panic on physical entries
}

func TestSchemeNames(t *testing.T) {
	e := newEnv(1, 64)
	names := map[string]bool{}
	for _, s := range []Scheme{
		NewBaseline(e.eng, e.ddr, e.mm, 1),
		NewIdeal(e.eng, e.hbm, e.ddr, e.mm, 1),
		NewTiD(e.eng, e.hbm, e.ddr, e.mm, 1, TiDConfig{CapacityBytes: 1 << 20}),
	} {
		names[s.Name()] = true
	}
	if !names["Baseline"] || !names["Ideal"] || !names["TiD"] {
		t.Fatalf("names = %v", names)
	}
}
