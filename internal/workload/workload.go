// Package workload generates deterministic synthetic memory-access streams
// standing in for the SPEC CPU2006 and GAP benchmarks of Table I.
//
// The paper characterizes each benchmark by two scalars — required
// miss-handling bandwidth (RMHB) of the off-package memory, and last-level
// cache misses per microsecond (LLC MPMS) — plus memory footprint and
// spatial locality. Each surrogate here is a parameterised generator tuned
// (see specs.go) so that, measured under the Ideal OS-managed configuration,
// it lands in the paper's class (Excess / Tight / Loose / Few) with the
// paper's orderings. That is sufficient because every evaluation figure is
// driven by those characteristics, not by the benchmarks' computation.
package workload

// Op is one unit of work for a core: Gap non-memory instructions followed by
// one memory access.
type Op struct {
	Gap   uint64
	Addr  uint64 // virtual byte address
	Write bool
}

// Spec parameterises one synthetic benchmark.
//
//nomad:owner host
type Spec struct {
	Name  string
	Abbr  string
	Class string // Excess, Tight, Loose, Few
	Suite string // SPEC2006 or GAPBS

	// FootprintPages is the streamed working set in 4 KB pages (per core).
	FootprintPages uint64
	// HotPages is an additional small reuse set that stays LLC-resident.
	HotPages uint64
	// HotFrac is the probability an access targets the hot set.
	HotFrac float64
	// WarmPages is a medium reuse set: larger than the LLC but smaller
	// than the DRAM cache, so its accesses miss the LLC (raising MPMS)
	// yet mostly hit the DC (leaving RMHB low). It is what separates
	// high-MPMS/low-RMHB benchmarks such as pr and mcf from the
	// streaming Excess class.
	WarmPages uint64
	// WarmFrac is the probability an access targets the warm set.
	WarmFrac float64
	// RunBlocks is how many sequential 64 B blocks are touched per page
	// visit: 64 = full-page streaming (high spatial locality), small
	// values model pointer-chasing graph kernels.
	RunBlocks int
	// SeqPageFrac is the probability the next page visited follows the
	// previous one sequentially (vs. a pseudo-random jump).
	SeqPageFrac float64
	// GapMean is the mean number of non-memory instructions between
	// memory operations; it controls MPMS.
	GapMean int
	// WriteFrac is the store fraction of memory operations.
	WriteFrac float64

	// BurstPeriodOps, if nonzero, alternates memory-intensive and quiet
	// phases every BurstPeriodOps memory operations (libq/gems "bursty
	// RMHB" behaviour). BurstDuty is the intensive fraction of the
	// period; QuietGapMult scales GapMean in the quiet phase.
	BurstPeriodOps uint64
	BurstDuty      float64
	QuietGapMult   int

	// MLP, if nonzero, caps the workload's effective memory-level
	// parallelism below the core's hardware limit (pointer chasing and
	// dependence chains limit outstanding loads in real programs).
	MLP int
}

// FootprintBytes returns the streamed footprint in bytes.
func (s Spec) FootprintBytes() uint64 { return s.FootprintPages * 4096 }

// rng is a splitmix64 generator: tiny, fast, and deterministic across runs.
//
//nomad:owner core
//nomad:ephemeral deterministic xorshift state; the generated address stream is the observable record
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform integer in [0,n).
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// Stream produces the access sequence of one core running a Spec. Streams
// are infinite; the simulation decides when to stop. Distinct cores use
// distinct seeds so their address phases differ.
//
//nomad:owner core
//nomad:ephemeral synthetic stream cursor; the generated accesses drive every downstream counter
type Stream struct {
	spec Spec
	r    rng

	// streaming-region state
	page      uint64 // current page index within the footprint
	blockInPg int    // next block offset within the page visit
	runLeft   int

	hotBase  uint64 // byte base of the hot region
	warmBase uint64 // byte base of the warm region
	ops      uint64
}

// NewStream builds a stream for spec with the given seed. The virtual layout
// places the streamed footprint at 0 and the hot region immediately above.
func NewStream(spec Spec, seed uint64) *Stream {
	s := &Stream{
		spec:     spec,
		r:        rng{s: seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d},
		hotBase:  spec.FootprintPages * 4096,
		warmBase: (spec.FootprintPages + spec.HotPages) * 4096,
	}
	if s.spec.RunBlocks <= 0 {
		s.spec.RunBlocks = 1
	}
	if s.spec.RunBlocks > 64 {
		s.spec.RunBlocks = 64
	}
	if s.spec.FootprintPages == 0 {
		s.spec.FootprintPages = 1
	}
	s.nextPage()
	return s
}

// Spec returns the stream's (normalized) spec.
func (s *Stream) Spec() Spec { return s.spec }

func (s *Stream) nextPage() {
	sp := &s.spec
	if s.r.float() < sp.SeqPageFrac {
		s.page = (s.page + 1) % sp.FootprintPages
	} else {
		s.page = s.r.intn(sp.FootprintPages)
	}
	s.runLeft = sp.RunBlocks
	if sp.RunBlocks >= 64 {
		s.blockInPg = 0
	} else {
		// Short runs start at a random block so partial-page locality
		// spreads over the page.
		maxStart := 64 - sp.RunBlocks
		s.blockInPg = int(s.r.intn(uint64(maxStart + 1)))
	}
}

// quiet reports whether the stream is in the low-intensity phase of a bursty
// benchmark.
func (s *Stream) quiet() bool {
	sp := &s.spec
	if sp.BurstPeriodOps == 0 {
		return false
	}
	pos := s.ops % sp.BurstPeriodOps
	return float64(pos) >= sp.BurstDuty*float64(sp.BurstPeriodOps)
}

// Next returns the next operation. It never ends.
func (s *Stream) Next() Op {
	sp := &s.spec
	s.ops++

	gapMean := sp.GapMean
	if s.quiet() && sp.QuietGapMult > 1 {
		gapMean *= sp.QuietGapMult
	}
	// Deterministic jitter: uniform in [gapMean/2, 3*gapMean/2].
	gap := uint64(gapMean)
	if gapMean > 1 {
		gap = uint64(gapMean/2) + s.r.intn(uint64(gapMean)+1)
	}

	write := s.r.float() < sp.WriteFrac

	region := s.r.float()
	if sp.HotPages > 0 && region < sp.HotFrac {
		addr := s.hotBase + s.r.intn(sp.HotPages*4096)&^63
		return Op{Gap: gap, Addr: addr, Write: write}
	}
	if sp.WarmPages > 0 && region < sp.HotFrac+sp.WarmFrac {
		addr := s.warmBase + s.r.intn(sp.WarmPages*4096)&^63
		return Op{Gap: gap, Addr: addr, Write: write}
	}

	addr := s.page*4096 + uint64(s.blockInPg)*64
	s.blockInPg++
	s.runLeft--
	if s.runLeft <= 0 || s.blockInPg >= 64 {
		s.nextPage()
	}
	return Op{Gap: gap, Addr: addr, Write: write}
}
