package workload

// Table I surrogates. Footprints are the paper's, scaled by 1/64 so that
// steady state is reached within a few million instructions; the DRAM cache
// is scaled accordingly (128 MB, see internal/system), preserving the
// footprint : DC-capacity regime of every benchmark.
//
// Parameter intuition:
//   - GapMean sets memory intensity (LLC MPMS).
//   - RunBlocks/SeqPageFrac set spatial locality (row-buffer hit rate, and
//     how much of each 4 KB fill is useful).
//   - The streamed footprint drives RMHB (every streamed page revisit is a
//     DC miss because footprint >> DC share).
//   - WarmFrac/WarmPages add LLC-missing but DC-hitting reuse, producing
//     high-MPMS/low-RMHB benchmarks (pr, mcf, sop, tc) and the page-level
//     locality real graph kernels retain even when block-level locality is
//     poor.
//   - Burst* parameters reproduce the bursty-RMHB behaviour of libq and
//     gems that stresses PCSHR occupancy (Figs. 14 and 15).
//
// The paper's measured characteristics, for reference (RMHB GB/s, LLC MPMS,
// footprint GB): cact 43.8/486.6/11.9, sssp 38.8/511.1/2.3,
// bwav 31.7/588.1/4.5, les 26.5/532.8/7.5, libq 25.1/210.6/4.0,
// gems 24.8/269.2/6.3, bfs 23.1/298.5/2.4, cc 13.5/183.1/2.3,
// lbm 12.4/270.5/3.2, mcf 12.2/472.0/2.8, bc 10.8/533.7/1.3,
// ast 6.9/72.1/1.0, pr 3.4/691.9/4.8, sop 1.7/310.2/1.2, tc 1.66/226.3/2.3.
// Class bands relative to the 25.6 GB/s off-package bandwidth are what the
// experiments depend on.

// pagesMB converts a scaled footprint in MB to 4 KB pages.
func pagesMB(mb uint64) uint64 { return mb * 1024 * 1024 / 4096 }

// Specs returns the fifteen Table I benchmark surrogates in the paper's
// order (descending RMHB within class).
func Specs() []Spec {
	return []Spec{
		// ----- Excess: RMHB above available off-package bandwidth -----
		{
			Name: "cactusADM", Abbr: "cact", Class: "Excess", Suite: "SPEC2006",
			FootprintPages: pagesMB(186), // 11.9 GB / 64
			RunBlocks:      48, SeqPageFrac: 0.95,
			GapMean: 11, WriteFrac: 0.30,
			HotPages: 64, HotFrac: 0.10,
		},
		{
			Name: "sssp", Abbr: "sssp", Class: "Excess", Suite: "GAPBS",
			FootprintPages: pagesMB(36),          // 2.3 GB / 64
			RunBlocks:      4, SeqPageFrac: 0.15, // low block-level locality (§IV-B.1)
			GapMean: 13, WriteFrac: 0.10,
			WarmPages: 1024, WarmFrac: 0.85,
			HotPages: 64, HotFrac: 0.05,
		},
		{
			Name: "bwaves", Abbr: "bwav", Class: "Excess", Suite: "SPEC2006",
			FootprintPages: pagesMB(70), // 4.5 GB / 64
			RunBlocks:      56, SeqPageFrac: 0.95,
			GapMean: 11, WriteFrac: 0.25,
			HotPages: 64, HotFrac: 0.12,
		},

		// ----- Tight: RMHB ~ available off-package bandwidth -----
		{
			Name: "leslie3d", Abbr: "les", Class: "Tight", Suite: "SPEC2006",
			FootprintPages: pagesMB(117), // 7.5 GB / 64
			RunBlocks:      56, SeqPageFrac: 0.95,
			GapMean: 15, WriteFrac: 0.25,
			HotPages: 256, HotFrac: 0.25,
			BurstPeriodOps: 20000, BurstDuty: 0.50, QuietGapMult: 4,
		},
		{
			Name: "libquantum", Abbr: "libq", Class: "Tight", Suite: "SPEC2006",
			FootprintPages: pagesMB(62), // 4.0 GB / 64
			RunBlocks:      32, SeqPageFrac: 0.98,
			GapMean: 19, WriteFrac: 0.25,
			HotPages: 128, HotFrac: 0.30,
			BurstPeriodOps: 24000, BurstDuty: 0.40, QuietGapMult: 8,
		},
		{
			Name: "gemsFDTD", Abbr: "gems", Class: "Tight", Suite: "SPEC2006",
			FootprintPages: pagesMB(98), // 6.3 GB / 64
			RunBlocks:      40, SeqPageFrac: 0.95,
			GapMean: 21, WriteFrac: 0.30,
			HotPages: 128, HotFrac: 0.10,
			BurstPeriodOps: 24000, BurstDuty: 0.45, QuietGapMult: 7,
		},
		{
			Name: "bfs", Abbr: "bfs", Class: "Tight", Suite: "GAPBS",
			FootprintPages: pagesMB(37),           // 2.4 GB / 64
			RunBlocks:      16, SeqPageFrac: 0.40, // ~1 KB locality (§IV-B.2)
			GapMean: 17, WriteFrac: 0.10,
			WarmPages: 1024, WarmFrac: 0.77,
			HotPages: 64, HotFrac: 0.05,
		},

		// ----- Loose: RMHB ~ half the off-package bandwidth -----
		{
			Name: "cc", Abbr: "cc", Class: "Loose", Suite: "GAPBS",
			FootprintPages: pagesMB(36), // 2.3 GB / 64
			RunBlocks:      16, SeqPageFrac: 0.40,
			GapMean: 49, WriteFrac: 0.10,
			WarmPages: 1024, WarmFrac: 0.79,
			HotPages: 128, HotFrac: 0.10,
		},
		{
			Name: "lbm", Abbr: "lbm", Class: "Loose", Suite: "SPEC2006",
			FootprintPages: pagesMB(50), // 3.2 GB / 64
			RunBlocks:      64, SeqPageFrac: 0.95,
			GapMean: 25, WriteFrac: 0.40,
			WarmPages: 1024, WarmFrac: 0.45,
		},
		{
			Name: "mcf", Abbr: "mcf", Class: "Loose", Suite: "SPEC2006",
			FootprintPages: pagesMB(44), // 2.8 GB / 64
			RunBlocks:      16, SeqPageFrac: 0.25,
			GapMean: 13, WriteFrac: 0.15,
			WarmPages: 1024, WarmFrac: 0.855,
			HotPages: 64, HotFrac: 0.05,
		},
		{
			Name: "bc", Abbr: "bc", Class: "Loose", Suite: "GAPBS",
			FootprintPages: pagesMB(20),          // 1.3 GB / 64
			RunBlocks:      8, SeqPageFrac: 0.20, // low block-level locality (§IV-B.3)
			GapMean: 13, WriteFrac: 0.10,
			WarmPages: 1024, WarmFrac: 0.952,
		},

		// ----- Few: negligible miss-handling bandwidth -----
		{
			Name: "astar", Abbr: "ast", Class: "Few", Suite: "SPEC2006",
			FootprintPages: pagesMB(16), // 1.0 GB / 64
			RunBlocks:      8, SeqPageFrac: 0.40,
			GapMean: 61, WriteFrac: 0.20,
			WarmPages: 512, WarmFrac: 0.365,
			HotPages: 512, HotFrac: 0.60,
		},
		{
			Name: "pr", Abbr: "pr", Class: "Few", Suite: "GAPBS",
			FootprintPages: pagesMB(75), // 4.8 GB / 64
			RunBlocks:      32, SeqPageFrac: 0.30,
			GapMean: 11, WriteFrac: 0.15,
			WarmPages: 1280, WarmFrac: 0.95,
		},
		{
			Name: "soplex", Abbr: "sop", Class: "Few", Suite: "SPEC2006",
			FootprintPages: pagesMB(19), // 1.2 GB / 64
			RunBlocks:      32, SeqPageFrac: 0.50,
			GapMean: 21, WriteFrac: 0.20,
			WarmPages: 768, WarmFrac: 0.97,
		},
		{
			Name: "tc", Abbr: "tc", Class: "Few", Suite: "GAPBS",
			FootprintPages: pagesMB(36), // 2.3 GB / 64
			RunBlocks:      32, SeqPageFrac: 0.30,
			GapMean: 27, WriteFrac: 0.05,
			WarmPages: 768, WarmFrac: 0.97,
		},
	}
}

// ByAbbr returns the spec with the given abbreviation, or false.
func ByAbbr(abbr string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Abbr == abbr {
			return s, true
		}
	}
	return Spec{}, false
}

// Classes returns the class names in paper order.
func Classes() []string { return []string{"Excess", "Tight", "Loose", "Few"} }

// ByClass returns the specs belonging to one class, in Table I order.
func ByClass(class string) []Spec {
	var out []Spec
	for _, s := range Specs() {
		if s.Class == class {
			out = append(out, s)
		}
	}
	return out
}
