package workload

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	spec, _ := ByAbbr("cact")
	a := NewStream(spec, 42)
	b := NewStream(spec, 42)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at op %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	spec, _ := ByAbbr("cact")
	a := NewStream(spec, 1)
	b := NewStream(spec, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next().Addr == b.Next().Addr {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical addresses", same)
	}
}

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 15 {
		t.Fatalf("Table I has %d surrogates, want 15", len(specs))
	}
	classCount := map[string]int{}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Abbr] {
			t.Fatalf("duplicate abbreviation %q", s.Abbr)
		}
		seen[s.Abbr] = true
		classCount[s.Class]++
		if s.FootprintPages == 0 || s.GapMean <= 0 {
			t.Fatalf("%s: degenerate spec %+v", s.Abbr, s)
		}
		if s.Suite != "SPEC2006" && s.Suite != "GAPBS" {
			t.Fatalf("%s: unknown suite %q", s.Abbr, s.Suite)
		}
		if s.HotFrac+s.WarmFrac >= 1 {
			t.Fatalf("%s: region fractions leave no stream share", s.Abbr)
		}
	}
	// Paper's class sizes: 3 Excess, 4 Tight, 4 Loose, 4 Few.
	want := map[string]int{"Excess": 3, "Tight": 4, "Loose": 4, "Few": 4}
	for c, n := range want {
		if classCount[c] != n {
			t.Fatalf("class %s has %d members, want %d", c, classCount[c], n)
		}
	}
}

func TestByAbbrAndClass(t *testing.T) {
	if _, ok := ByAbbr("cact"); !ok {
		t.Fatal("cact missing")
	}
	if _, ok := ByAbbr("nope"); ok {
		t.Fatal("found nonexistent workload")
	}
	total := 0
	for _, c := range Classes() {
		total += len(ByClass(c))
	}
	if total != 15 {
		t.Fatalf("classes cover %d workloads", total)
	}
}

func TestRegionBounds(t *testing.T) {
	spec := Spec{
		Name: "t", FootprintPages: 100, RunBlocks: 8, SeqPageFrac: 0.5,
		GapMean: 5, HotPages: 10, HotFrac: 0.2, WarmPages: 20, WarmFrac: 0.3,
	}
	s := NewStream(spec, 7)
	streamEnd := spec.FootprintPages * 4096
	hotEnd := streamEnd + spec.HotPages*4096
	warmEnd := hotEnd + spec.WarmPages*4096
	var sawStream, sawHot, sawWarm bool
	for i := 0; i < 50000; i++ {
		op := s.Next()
		switch {
		case op.Addr < streamEnd:
			sawStream = true
		case op.Addr < hotEnd:
			sawHot = true
		case op.Addr < warmEnd:
			sawWarm = true
		default:
			t.Fatalf("address %#x outside all regions", op.Addr)
		}
	}
	if !sawStream || !sawHot || !sawWarm {
		t.Fatalf("regions unvisited: stream=%v hot=%v warm=%v", sawStream, sawHot, sawWarm)
	}
}

func TestRegionFractions(t *testing.T) {
	spec := Spec{
		Name: "t", FootprintPages: 1000, RunBlocks: 1, SeqPageFrac: 0.5,
		GapMean: 5, HotPages: 10, HotFrac: 0.25, WarmPages: 20, WarmFrac: 0.50,
	}
	s := NewStream(spec, 3)
	streamEnd := spec.FootprintPages * 4096
	hotEnd := streamEnd + spec.HotPages*4096
	n := 200000
	hot, warm := 0, 0
	for i := 0; i < n; i++ {
		a := s.Next().Addr
		if a >= streamEnd && a < hotEnd {
			hot++
		} else if a >= hotEnd {
			warm++
		}
	}
	if f := float64(hot) / float64(n); f < 0.22 || f > 0.28 {
		t.Fatalf("hot fraction %.3f, want ~0.25", f)
	}
	if f := float64(warm) / float64(n); f < 0.46 || f > 0.54 {
		t.Fatalf("warm fraction %.3f, want ~0.50", f)
	}
}

func TestWriteFraction(t *testing.T) {
	s := NewStream(Spec{Name: "t", FootprintPages: 10, RunBlocks: 4, GapMean: 3, WriteFrac: 0.4}, 5)
	writes := 0
	n := 100000
	for i := 0; i < n; i++ {
		if s.Next().Write {
			writes++
		}
	}
	if f := float64(writes) / float64(n); f < 0.37 || f > 0.43 {
		t.Fatalf("write fraction %.3f, want ~0.4", f)
	}
}

func TestSequentialRun(t *testing.T) {
	s := NewStream(Spec{Name: "t", FootprintPages: 100, RunBlocks: 64, SeqPageFrac: 1, GapMean: 2}, 1)
	prev := s.Next().Addr
	for i := 1; i < 64; i++ {
		cur := s.Next().Addr
		if cur != prev+64 {
			t.Fatalf("full-page run broke at block %d: %#x -> %#x", i, prev, cur)
		}
		prev = cur
	}
	// Next op starts the following page.
	if next := s.Next().Addr; next != prev+64 {
		t.Fatalf("sequential page advance broken: %#x -> %#x", prev, next)
	}
}

func TestBurstChangesGaps(t *testing.T) {
	spec := Spec{
		Name: "t", FootprintPages: 100, RunBlocks: 64, SeqPageFrac: 1, GapMean: 10,
		BurstPeriodOps: 1000, BurstDuty: 0.5, QuietGapMult: 10,
	}
	s := NewStream(spec, 1)
	var burstGap, quietGap uint64
	for i := 0; i < 1000; i++ {
		op := s.Next()
		if i < 450 {
			burstGap += op.Gap
		} else if i >= 550 {
			quietGap += op.Gap
		}
	}
	if quietGap < burstGap*4 {
		t.Fatalf("quiet phase gaps (%d) should dwarf burst phase (%d)", quietGap, burstGap)
	}
}

func TestGapMean(t *testing.T) {
	s := NewStream(Spec{Name: "t", FootprintPages: 10, RunBlocks: 4, GapMean: 20}, 9)
	var sum uint64
	n := 100000
	for i := 0; i < n; i++ {
		sum += s.Next().Gap
	}
	avg := float64(sum) / float64(n)
	if avg < 18 || avg > 22 {
		t.Fatalf("mean gap %.2f, want ~20", avg)
	}
}

// TestStreamAlwaysValid: any spec (within sane bounds) produces block-aligned
// addresses inside its regions with the requested gap scale.
func TestStreamAlwaysValid(t *testing.T) {
	f := func(fp uint16, run uint8, gap uint8, hotP, warmP uint8, hotF, warmF float64, seed uint64) bool {
		spec := Spec{
			Name:           "q",
			FootprintPages: uint64(fp%2048) + 1,
			RunBlocks:      int(run % 70), // NewStream clamps to 1..64
			GapMean:        int(gap%50) + 1,
			SeqPageFrac:    0.5,
			HotPages:       uint64(hotP),
			WarmPages:      uint64(warmP),
			HotFrac:        clamp01(hotF) * 0.4,
			WarmFrac:       clamp01(warmF) * 0.4,
		}
		s := NewStream(spec, seed)
		limit := (s.Spec().FootprintPages + spec.HotPages + spec.WarmPages) * 4096
		for i := 0; i < 2000; i++ {
			op := s.Next()
			if op.Addr%64 != 0 {
				return false
			}
			if op.Addr >= limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func clamp01(f float64) float64 {
	if f != f || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
