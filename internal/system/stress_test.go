package system

import (
	"testing"

	"nomad/internal/workload"
)

// Stress and edge-condition tests: degenerate geometries and pathological
// resource limits must finish and keep invariants, not hang or panic.

func stressSpec() workload.Spec {
	return workload.Spec{
		Name: "stress", Abbr: "st", Class: "Custom",
		FootprintPages: 512, RunBlocks: 8, SeqPageFrac: 0.5,
		GapMean: 4, WriteFrac: 0.5,
	}
}

func runCfg(t *testing.T, cfg Config, spec workload.Spec) *Result {
	t.Helper()
	m, err := New(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSingleCore(t *testing.T) {
	cfg := smallConfig(SchemeNOMAD)
	cfg.Cores = 1
	r := runCfg(t, cfg, stressSpec())
	if r.Cores != 1 || r.IPC <= 0 {
		t.Fatalf("bad result: %v", r)
	}
}

func TestTinyDRAMCacheDirectReclaim(t *testing.T) {
	// A 128-frame DC against a 512-page footprint churns the free queue
	// constantly; the eviction daemon plus direct reclaim must keep up.
	cfg := smallConfig(SchemeNOMAD)
	cfg.CacheFrames = 128
	cfg.Frontend.EvictionLowWater = 16
	cfg.Frontend.EvictionBatch = 32
	cfg.WarmupInstructions = 20_000
	cfg.ROIInstructions = 50_000
	r := runCfg(t, cfg, stressSpec())
	if r.Evictions == 0 {
		t.Fatal("no evictions despite heavy churn")
	}
}

func TestPathologicalBackend(t *testing.T) {
	// One PCSHR, one sub-entry: everything serializes but must complete.
	cfg := smallConfig(SchemeNOMAD)
	cfg.Backend.PCSHRs = 1
	cfg.Backend.SubEntries = 1
	cfg.WarmupInstructions = 20_000
	cfg.ROIInstructions = 40_000
	r := runCfg(t, cfg, stressSpec())
	if r.IPC <= 0 {
		t.Fatalf("bad result: %v", r)
	}
	if r.AvgTagMgmtLatency <= float64(cfg.Frontend.TagMgmtLatency)/2 {
		t.Fatalf("implausible tag latency %.0f with one PCSHR", r.AvgTagMgmtLatency)
	}
}

func TestSinglePageWorkload(t *testing.T) {
	spec := workload.Spec{
		Name: "one", Abbr: "one", Class: "Custom",
		FootprintPages: 1, RunBlocks: 64, GapMean: 3,
	}
	cfg := smallConfig(SchemeTDC)
	cfg.WarmupInstructions = 5_000
	cfg.ROIInstructions = 20_000
	r := runCfg(t, cfg, spec)
	// One page: at most a handful of tag misses, and IPC should be high
	// (everything LLC-resident after warmup).
	if r.TagMisses > 4 {
		t.Fatalf("tag misses = %d for a one-page workload", r.TagMisses)
	}
}

func TestWriteHeavyWorkload(t *testing.T) {
	spec := stressSpec()
	spec.WriteFrac = 0.95
	for _, s := range []SchemeName{SchemeTiD, SchemeNOMAD} {
		cfg := smallConfig(s)
		cfg.WarmupInstructions = 20_000
		cfg.ROIInstructions = 40_000
		r := runCfg(t, cfg, spec)
		if r.IPC <= 0 {
			t.Fatalf("%s: degenerate result %v", s, r)
		}
	}
}

func TestBurstyWorkloadCompletes(t *testing.T) {
	spec := stressSpec()
	spec.BurstPeriodOps = 500
	spec.BurstDuty = 0.2
	spec.QuietGapMult = 20
	cfg := smallConfig(SchemeNOMAD)
	r := runCfg(t, cfg, spec)
	if r.IPC <= 0 {
		t.Fatalf("bad result: %v", r)
	}
}

func TestWarmupExcludedFromResult(t *testing.T) {
	cfg := smallConfig(SchemeBaseline)
	cfg.WarmupInstructions = 50_000
	cfg.ROIInstructions = 50_000
	m, err := New(cfg, stressSpec())
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles >= m.Engine().Now() {
		t.Fatalf("ROI cycles %d should exclude warmup (engine at %d)", r.Cycles, m.Engine().Now())
	}
	perCore := r.Instructions / uint64(cfg.Cores)
	if perCore < cfg.ROIInstructions {
		t.Fatalf("ROI retired %d per core, want >= %d", perCore, cfg.ROIInstructions)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := smallConfig(SchemeNOMAD)
	cfg.Cores = 0
	if _, err := New(cfg, stressSpec()); err == nil {
		t.Fatal("zero cores accepted")
	}
	cfg = smallConfig("Bogus")
	if _, err := New(cfg, stressSpec()); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestROITimeout(t *testing.T) {
	cfg := smallConfig(SchemeBaseline)
	cfg.MaxCycles = 10 // impossible budget
	m, err := New(cfg, stressSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("impossible cycle budget did not error")
	}
}

func TestMLPOverride(t *testing.T) {
	spec := stressSpec()
	spec.FootprintPages = 8192
	spec.GapMean = 2
	run := func(mlp int) float64 {
		s := spec
		s.MLP = mlp
		cfg := smallConfig(SchemeIdeal)
		cfg.WarmupInstructions = 20_000
		cfg.ROIInstructions = 40_000
		return runCfg(t, cfg, s).IPC
	}
	low, high := run(1), run(6)
	if high <= low {
		t.Fatalf("MLP 6 IPC %.3f should beat MLP 1 %.3f on a streaming workload", high, low)
	}
}
