package system

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"nomad/internal/metrics"
	"nomad/internal/sim"
)

// TestEngineByteIdentical is the scheduler-swap correctness contract: for
// every scheme, with fast-forward both on and off, a run on the timing-wheel
// engine must produce byte-for-byte the same metrics snapshot (counters,
// timeline, trace summary) and the same Perfetto trace as the same run on
// the binary-heap oracle. Together with TestFastForwardByteIdentical this
// pins the full 2x2 engine/fast-forward matrix to one observable behaviour.
func TestEngineByteIdentical(t *testing.T) {
	for _, s := range AllSchemes() {
		s := s
		for _, ff := range []bool{true, false} {
			ff := ff
			t.Run(fmt.Sprintf("%s/ff=%v", s, ff), func(t *testing.T) {
				run := func(kind sim.Kind) ([]byte, []byte) {
					cfg := smallConfig(s)
					cfg.Timeline = true
					cfg.Interval = 20_000
					cfg.TraceDepth = 1 << 12
					cfg.SpanDepth = 1 << 11
					cfg.FastForward = ff
					cfg.Engine = kind
					m, err := New(cfg, smallSpec())
					if err != nil {
						t.Fatalf("New(%s, %s): %v", s, kind, err)
					}
					if got := m.Engine().SchedulerImpl(); fmt.Sprintf("%T", got) == "*sim.HeapScheduler" != (kind == sim.KindHeap) {
						t.Fatalf("engine %q built scheduler %T", kind, got)
					}
					r, err := m.Run()
					if err != nil {
						t.Fatalf("Run(%s, %s): %v", s, kind, err)
					}
					snap, err := json.Marshal(r.Metrics)
					if err != nil {
						t.Fatal(err)
					}
					var trace bytes.Buffer
					if err := metrics.WritePerfetto(&trace, metrics.PerfettoRun{Name: "eng", Dump: r.Trace}); err != nil {
						t.Fatal(err)
					}
					return snap, trace.Bytes()
				}
				wheelSnap, wheelTrace := run(sim.KindWheel)
				heapSnap, heapTrace := run(sim.KindHeap)
				if !bytes.Equal(wheelSnap, heapSnap) {
					t.Errorf("metrics snapshot differs between wheel and heap engines\nwheel: %.400s\nheap:  %.400s", wheelSnap, heapSnap)
				}
				if !bytes.Equal(wheelTrace, heapTrace) {
					t.Error("Perfetto trace differs between wheel and heap engines")
				}
			})
		}
	}
}

// TestEngineUnknownKind pins the configuration error path.
func TestEngineUnknownKind(t *testing.T) {
	cfg := smallConfig(SchemeNOMAD)
	cfg.Engine = "splay"
	if _, err := New(cfg, smallSpec()); err == nil {
		t.Fatal("unknown engine kind accepted")
	}
}
