// Package system assembles the full machine — cores, TLBs, SRAM hierarchy,
// DRAM devices, OS memory manager, and the memory scheme under test — and
// runs warmup + region-of-interest simulations, producing a Result with the
// measurements every paper figure needs.
package system

import (
	"context"
	"fmt"

	"nomad/internal/cache"
	"nomad/internal/core"
	"nomad/internal/cpu"
	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/osmem"
	"nomad/internal/schemes"
	"nomad/internal/sim"
	"nomad/internal/tlb"
	"nomad/internal/workload"
)

// ClockHz is the CPU clock; all cycle counts convert to wall time with it.
const ClockHz = 3.2e9

// DefaultSampleWindow is the metrics time-series sampling period (in cycles)
// used when Config.SampleWindow is zero. It is also the granularity at which
// RunContext checks for cancellation.
const DefaultSampleWindow = 8192

// SchemeName selects the memory scheme under test.
type SchemeName string

const (
	SchemeBaseline SchemeName = "Baseline"
	SchemeTiD      SchemeName = "TiD"
	SchemeTDC      SchemeName = "TDC"
	SchemeNOMAD    SchemeName = "NOMAD"
	SchemeIdeal    SchemeName = "Ideal"
)

// AllSchemes lists the evaluation's schemes in Fig. 9 order.
func AllSchemes() []SchemeName {
	return []SchemeName{SchemeBaseline, SchemeTiD, SchemeTDC, SchemeNOMAD, SchemeIdeal}
}

// Config describes one simulated machine.
//
//nomad:owner host
type Config struct {
	Cores int
	Core  cpu.Config
	L1    cache.Config
	L2    cache.Config
	LLC   cache.Config
	TLB   tlb.Config
	HBM   dram.Config
	DDR   dram.Config
	// CacheFrames is the DRAM cache capacity in 4 KB frames.
	CacheFrames uint64
	Scheme      SchemeName
	Frontend    core.FrontendConfig
	Backend     core.BackendConfig
	TiDMSHRs    int

	// WarmupInstructions/ROIInstructions are per-core retirement targets.
	WarmupInstructions uint64
	ROIInstructions    uint64
	// MaxCycles bounds a run (safety for pathological configurations).
	MaxCycles uint64
	Seed      uint64

	// SampleWindow is the metrics time-series sampling period in cycles;
	// 0 selects DefaultSampleWindow.
	SampleWindow uint64
	// TraceDepth, when positive, enables the typed event-trace ring
	// buffer with that many entries.
	TraceDepth int
	// SpanDepth, when positive, enables per-access latency spans: 1 in
	// SpanSampleEvery loads per core is followed from issue to data
	// return, each hop recorded into a ring of this many spans.
	SpanDepth int
	// SpanSampleEvery is the span sampling period in loads (deterministic,
	// by per-core load sequence number); 0 selects DefaultSpanSampleEvery.
	SpanSampleEvery uint64

	// Timeline enables interval time-series telemetry: every Interval
	// cycles of the measured region, a configurable set of registry
	// metrics is snapshotted into windowed columns (Snapshot.Timeline).
	// The first window starts exactly at the ROI boundary.
	Timeline bool
	// Interval is the interval-hook period in cycles, used by the timeline
	// and progress reporting; 0 selects sim.DefaultInterval (100k).
	Interval uint64
	// TimelineMetrics restricts collected timeline columns to names
	// matching these prefixes; empty collects the full default set.
	TimelineMetrics []string
	// Digests enables interval digest chains: every Interval cycles of the
	// measured region, a chained FNV-1a digest of the full registry is
	// folded into Snapshot.Digests. Chains are byte-identical across
	// engines and fast-forward modes, same-seed, and localize a divergence
	// between two runs to one interval window (see internal/diag).
	Digests bool
	// ROICycleLimit, when positive, ends the measured region successfully
	// after exactly this many ROI cycles even if the retirement target has
	// not been reached. Because the engine lands on the limit cycle
	// exactly (fast-forward never overshoots a bound), the partial run's
	// snapshot is a deterministic prefix of the full run's — the replay
	// knob diag.Bisect uses to re-run just up to a divergent window.
	ROICycleLimit uint64
	// SelfProfile attaches a host-side profiler to the run: wall-clock
	// simulated-cycles/sec, events/sec, heap-in-use, and GC pauses, in
	// Result.Host. Host readings are inherently non-deterministic, so this
	// is off by default and never part of the metrics snapshot.
	SelfProfile bool
	// FastForward enables idle-cycle fast-forward in the engine: when every
	// core is OS-suspended or head-of-ROB stalled and every DRAM channel is
	// drained, the clock jumps straight to the next event or hook boundary
	// with bulk stall accounting. The run's observable output (Snapshot,
	// Timeline, traces) is byte-identical either way; DefaultConfig enables
	// it, and the CLIs expose -no-ff to switch it off.
	FastForward bool
	// Engine selects the event-queue implementation driving the run:
	// sim.KindWheel (the default timing wheel) or sim.KindHeap (the
	// binary-heap oracle). Results are byte-identical across engines; the
	// knob exists for differential testing and performance comparison.
	Engine sim.Kind
	// Workers enables the parallel tick phase: per-core shards (cpu, TLB,
	// L1/L2, workload stream) tick concurrently on this many workers
	// (including the coordinator), with every cross-domain effect deferred
	// to the per-cycle barrier and replayed in deterministic shard order.
	// 0 or 1 runs fully sequentially; results are byte-identical at every
	// worker count (see DESIGN.md, "Parallel engine"). The CLIs expose
	// this as -parallel.
	Workers int
}

// DefaultSpanSampleEvery is the span sampling period used when
// Config.SpanSampleEvery is zero: 1 in 64 loads.
const DefaultSpanSampleEvery = 64

// DefaultConfig returns the Table II-derived evaluation configuration at the
// scaled capacities documented in DESIGN.md: 8 cores, 32 KB L1 / 256 KB L2 /
// 4 MB shared LLC, 128 MB DRAM cache.
func DefaultConfig() Config {
	return Config{
		Cores:              8,
		Core:               cpu.DefaultConfig(),
		L1:                 cache.Config{Name: "L1", Sets: 64, Ways: 8, Latency: 4, MSHRs: 16},
		L2:                 cache.Config{Name: "L2", Sets: 512, Ways: 8, Latency: 12, MSHRs: 32},
		LLC:                cache.Config{Name: "LLC", Sets: 4096, Ways: 16, Latency: 38, MSHRs: 64},
		TLB:                tlb.DefaultConfig(),
		HBM:                dram.HBMConfig(),
		DDR:                dram.DDRConfig(),
		CacheFrames:        32768, // 128 MB
		Scheme:             SchemeNOMAD,
		Frontend:           core.DefaultFrontendConfig(),
		Backend:            core.DefaultBackendConfig(),
		WarmupInstructions: 700_000,
		ROIInstructions:    1_200_000,
		MaxCycles:          400_000_000,
		Seed:               1,
		FastForward:        true,
	}
}

// Machine is one assembled system.
//
//nomad:owner shared
//nomad:ephemeral machine wiring and run-phase bookkeeping; every referenced component registers its own metrics
type Machine struct {
	cfg      Config
	workload string
	eng      *sim.Engine
	// coreEngs[i] is the engine core i's shard components are wired to:
	// the root engine when sequential, a sim shard facade when Workers > 1.
	coreEngs []*sim.Engine
	hbm      *dram.Device
	ddr      *dram.Device
	mm       *osmem.Manager
	scheme   schemes.Scheme
	cores    []*cpu.Core
	tlbs     []*tlb.TLB
	l1s      []*cache.Cache
	l2s      []*cache.Cache
	llc      *cache.Cache
	reg      *metrics.Registry

	// Interval-hook consumers: an optional host-facing progress callback
	// and the host profiler (both nil unless enabled). phase/phaseBase/
	// phaseTarget describe the retirement phase for progress reports.
	progressFn  func(Progress)
	prof        *metrics.HostProfiler
	phase       string
	phaseBase   []uint64
	phaseTarget uint64

	// memOps[coreID] is the freelist of pooled translate-then-access
	// operations (port.Load / port.Store): the per-access TLB callback is a
	// prebuilt closure on a recycled op, so the load/store hot path
	// allocates nothing. The pools are per core so that ports on concurrent
	// tick-phase shards never share a freelist.
	memOps [][]*memOp
	// noteOps[coreID] pools the deferred NoteStore calls a parallel tick
	// phase buffers (sequential runs call the scheme directly).
	noteOps [][]*noteOp
}

// memOp is one pooled in-flight load or store, carried across the TLB
// translation by its prebuilt fn callback.
//
//nomad:owner shared
type memOp struct {
	start  uint64
	vaddr  uint64
	probe  *mem.Probe
	done   func()
	coreID int
	write  bool
	fn     func(tlb.Entry)
}

// getMemOp takes a memOp from the core's freelist, building the instance
// (and its permanent translate callback) only on first use.
func (m *Machine) getMemOp(coreID int) *memOp {
	pool := m.memOps[coreID]
	if n := len(pool); n > 0 {
		op := pool[n-1]
		m.memOps[coreID] = pool[:n-1]
		return op
	}
	op := &memOp{} //nomadlint:ignore poolalloc -- freelist constructor: the one allocation the pool amortizes
	op.fn = func(e tlb.Entry) { m.runMemOp(op, e) }
	return op
}

// noteOp is one pooled deferred store notification: during a parallel tick
// phase the scheme's NoteStore (shared-domain dirty tracking) must not run
// on a worker, so the call is buffered and replayed at the barrier in shard
// order — the exact order sequential core ticks would have produced.
//
//nomad:owner shared
type noteOp struct {
	m      *Machine
	coreID int
	e      tlb.Entry
	fn     func()
}

func (m *Machine) getNoteOp(coreID int) *noteOp {
	pool := m.noteOps[coreID]
	if n := len(pool); n > 0 {
		op := pool[n-1]
		m.noteOps[coreID] = pool[:n-1]
		return op
	}
	op := &noteOp{m: m, coreID: coreID} //nomadlint:ignore poolalloc -- freelist constructor: the one allocation the pool amortizes
	op.fn = func() {
		op.m.scheme.NoteStore(op.coreID, op.e)
		op.m.noteOps[op.coreID] = append(op.m.noteOps[op.coreID], op)
	}
	return op
}

//nomad:port store notification: core-side retirement marks shared dirty state; deferred to the tick barrier in parallel mode
func (m *Machine) noteStore(coreID int, e tlb.Entry) {
	eng := m.coreEngs[coreID]
	if !eng.Deferring() {
		m.scheme.NoteStore(coreID, e)
		return
	}
	op := m.getNoteOp(coreID)
	op.e = e
	eng.Defer(op.fn)
}

// runMemOp continues a load/store after translation. The op is recycled
// first (the L1 access may re-enter Load/Store synchronously), then the
// request proceeds into the SRAM hierarchy.
func (m *Machine) runMemOp(op *memOp, e tlb.Entry) {
	start, vaddr, probe, done := op.start, op.vaddr, op.probe, op.done
	coreID, write := op.coreID, op.write
	op.probe, op.done = nil, nil
	m.memOps[coreID] = append(m.memOps[coreID], op)

	addr := mem.TagSpace(mem.AddrInFrame(e.Frame, mem.PageOffset(vaddr)), e.Space)
	if write {
		m.noteStore(coreID, e)
		req := mem.Request{Addr: addr, Write: true, Core: coreID, Kind: mem.KindDemand}
		m.l1s[coreID].Access(&req, nil)
		return
	}
	if probe != nil {
		probe.Cause = mem.StallSRAM
		if probe.SpanID != 0 {
			sp := metrics.Span{ID: probe.SpanID, Kind: metrics.SpanTLB,
				Core: probe.Core, Start: start, End: m.eng.Now()}
			// The span ring is shared-domain: emit through the barrier when
			// this runs inside a parallel tick (L1-TLB hits resolve
			// synchronously inside the core's tick). Sampled loads only, so
			// the closure is off the per-access hot path.
			if eng := m.coreEngs[coreID]; eng.Deferring() {
				eng.Defer(func() { m.reg.Spans().Emit(sp) })
			} else {
				m.reg.Spans().Emit(sp)
			}
		}
	}
	req := mem.Request{Addr: addr, Core: coreID, Kind: mem.KindDemand, Probe: probe}
	m.l1s[coreID].Access(&req, done)
}

// threadAdapter lets the OS front-end suspend cores without the core
// package importing cpu.
type threadAdapter struct{ c *cpu.Core }

func (t threadAdapter) Block()   { t.c.Block() }
func (t threadAdapter) Unblock() { t.c.Unblock() }

// flusher invalidates a DC frame's lines throughout the SRAM hierarchy
// (L1s and L2s first, then the LLC, so dirty data funnels downward).
type flusher struct{ m *Machine }

//nomad:port migration flush: the channel-side OS engine invalidates core-side SRAM lines; becomes a barrier-synchronized broadcast
func (f flusher) FlushFrame(cfn uint64) {
	addr := mem.TagSpace(mem.FrameAddr(cfn), mem.SpaceCache)
	for _, c := range f.m.l1s {
		c.FlushPage(addr)
	}
	for _, c := range f.m.l2s {
		c.FlushPage(addr)
	}
	f.m.llc.FlushPage(addr)
}

// shootdowner performs real TLB shootdowns for the reclaim-starvation
// fallback (tiny caches where TLB reach rivals DC capacity).
type shootdowner struct{ m *Machine }

func (s shootdowner) Shootdown(coreID int, vpn uint64) {
	s.m.tlbs[coreID].Invalidate(vpn)
}

// walkProxy interposes on the TLB's Walker in parallel mode: a page-table
// walk started inside a core's tick (TLB miss) enters the shared scheme
// front-end, so the call is deferred to the tick barrier. Every scheme's
// walker resolves done through a scheduled event at least WalkLatency cycles
// out, never synchronously, so moving the call to the barrier — same cycle,
// same arguments — is invisible to the core.
type walkProxy struct {
	eng  *sim.Engine
	real tlb.Walker
}

//nomad:port tlb walk: core-side miss enters the shared OS walker; deferred to the tick barrier in parallel mode
func (w walkProxy) Walk(core int, vaddr uint64, done func(tlb.Entry)) {
	if !w.eng.Deferring() {
		w.real.Walk(core, vaddr, done)
		return
	}
	real := w.real
	w.eng.Defer(func() { real.Walk(core, vaddr, done) })
}

// port is one core's path into the memory system: translate, then L1.
type port struct {
	m      *Machine
	coreID int
}

func (p port) Load(coreID int, vaddr uint64, probe *mem.Probe, done func()) {
	if probe != nil {
		probe.Cause = mem.StallTLB
	}
	op := p.m.getMemOp(p.coreID)
	op.start = p.m.eng.Now()
	op.vaddr = vaddr
	op.probe = probe
	op.done = done
	op.coreID = p.coreID
	op.write = false
	p.m.tlbs[p.coreID].Translate(vaddr, op.fn)
}

func (p port) Store(coreID int, vaddr uint64) {
	op := p.m.getMemOp(p.coreID)
	op.vaddr = vaddr
	op.coreID = p.coreID
	op.write = true
	p.m.tlbs[p.coreID].Translate(vaddr, op.fn)
}

// New builds a machine running spec on every core (rate mode, as in the
// paper: one single-threaded program per CPU).
func New(cfg Config, spec workload.Spec) (*Machine, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("system: core count must be positive, got %d", cfg.Cores)
	}
	sched, err := sim.NewScheduler(cfg.Engine)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, workload: spec.Abbr,
		eng: sim.New(sim.WithScheduler(sched), sim.Parallel(cfg.Workers))}
	m.eng.SetFastForward(cfg.FastForward)
	// Channel-domain tickers register on the root engine: the coordinator
	// runs them in registration order before dispatching the core shards
	// (dram.Device.issue writes core-owned probe state and the shared trace
	// ring at tick time, so the devices cannot tick on a worker).
	m.hbm = dram.New(m.eng, cfg.HBM)
	m.ddr = dram.New(m.eng, cfg.DDR)
	m.mm = osmem.New(cfg.Cores, cfg.CacheFrames)
	// Core-domain shards, created in core order — shard tick order must
	// match the registration order a sequential build uses. NewShard returns
	// the root engine itself when Workers <= 1, so the sequential wiring is
	// exactly what it always was.
	m.coreEngs = make([]*sim.Engine, cfg.Cores)
	for i := range m.coreEngs {
		m.coreEngs[i] = m.eng.NewShard()
	}
	m.memOps = make([][]*memOp, cfg.Cores)
	m.noteOps = make([][]*noteOp, cfg.Cores)

	// Cores are built first (the OS front-end needs thread handles), but
	// their memory ports are wired afterwards.
	m.cores = make([]*cpu.Core, cfg.Cores)
	threads := make([]core.Thread, cfg.Cores)
	coreCfg := cfg.Core
	if spec.MLP > 0 && spec.MLP < coreCfg.MaxLoads {
		// Dependence-limited workloads cannot fill the hardware's
		// outstanding-load capacity.
		coreCfg.MaxLoads = spec.MLP
	}
	for i := 0; i < cfg.Cores; i++ {
		stream := workload.NewStream(spec, cfg.Seed+uint64(i)*7919)
		m.cores[i] = cpu.New(i, coreCfg, port{m: m, coreID: i}, stream)
		threads[i] = threadAdapter{m.cores[i]}
	}

	walk := cfg.Frontend.WalkLatency
	if walk == 0 {
		walk = core.DefaultFrontendConfig().WalkLatency
	}
	switch cfg.Scheme {
	case SchemeBaseline:
		m.scheme = schemes.NewBaseline(m.eng, m.ddr, m.mm, walk)
	case SchemeTiD:
		m.scheme = schemes.NewTiD(m.eng, m.hbm, m.ddr, m.mm, walk,
			schemes.TiDConfig{CapacityBytes: cfg.CacheFrames * mem.PageSize, MSHRs: cfg.TiDMSHRs})
	case SchemeTDC:
		m.scheme = schemes.NewTDC(m.eng, m.hbm, m.ddr, m.mm, cfg.Frontend, threads, flusher{m})
	case SchemeNOMAD:
		m.scheme = schemes.NewNOMAD(m.eng, m.hbm, m.ddr, m.mm, cfg.Frontend, cfg.Backend, threads, flusher{m})
	case SchemeIdeal:
		m.scheme = schemes.NewIdeal(m.eng, m.hbm, m.ddr, m.mm, walk)
	default:
		return nil, fmt.Errorf("system: unknown scheme %q", cfg.Scheme)
	}

	m.llc = cache.New(m.eng, cfg.LLC, m.scheme)
	m.l1s = make([]*cache.Cache, cfg.Cores)
	m.l2s = make([]*cache.Cache, cfg.Cores)
	m.tlbs = make([]*tlb.TLB, cfg.Cores)
	dir := m.scheme.Directory()
	for i := 0; i < cfg.Cores; i++ {
		ce := m.coreEngs[i]
		m.l2s[i] = cache.New(ce, cfg.L2, m.llc)
		m.l1s[i] = cache.New(ce, cfg.L1, m.l2s[i])
		wk := m.scheme.Walker()
		if ce != m.eng {
			wk = walkProxy{eng: ce, real: wk}
		}
		m.tlbs[i] = tlb.New(ce, i, cfg.TLB, wk, dir)
		ce.AddTicker(m.cores[i])
	}
	switch sc := m.scheme.(type) {
	case *schemes.NOMAD:
		sc.Frontend().SetShootdowner(shootdowner{m})
	case *schemes.TDC:
		sc.Frontend().SetShootdowner(shootdowner{m})
	case *schemes.Ideal:
		sc.SetShootdowner(shootdowner{m})
	}
	m.registerMetrics()
	return m, nil
}

// Engine exposes the simulation clock (tests).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Metrics exposes the machine's stats registry.
func (m *Machine) Metrics() *metrics.Registry { return m.reg }

// Scheme exposes the scheme under test (tests, stats).
func (m *Machine) Scheme() schemes.Scheme { return m.scheme }

// Cores exposes the core models (tests).
func (m *Machine) Cores() []*cpu.Core { return m.cores }

// Progress is one interval tick's phase report, delivered to the callback
// registered with SetProgress.
type Progress struct {
	// Phase is "warmup" or "roi".
	Phase string
	// Cycle is the current simulated cycle.
	Cycle uint64
	// Done is the slowest core's retired instructions within the phase;
	// Target is the phase's per-core retirement target. Done/Target is the
	// phase's completion fraction (the phase ends when the SLOWEST core
	// reaches the target).
	Done, Target uint64
}

// Fraction returns the phase completion fraction in [0, 1].
func (p Progress) Fraction() float64 {
	if p.Target == 0 {
		return 1
	}
	f := float64(p.Done) / float64(p.Target)
	if f > 1 {
		f = 1
	}
	return f
}

// SetProgress registers fn to receive a Progress report at every interval
// tick (Config.Interval cycles, default sim.DefaultInterval). The callback
// observes simulation state but must not mutate it; it is intended for
// host-side progress/ETA printing and does not perturb determinism.
func (m *Machine) SetProgress(fn func(Progress)) { m.progressFn = fn }

// interval returns the machine's interval-hook period.
func (m *Machine) interval() uint64 {
	if m.cfg.Interval > 0 {
		return m.cfg.Interval
	}
	return sim.DefaultInterval
}

// intervalTick is the engine interval hook: progress first (host-facing),
// then the timeline sample (no-op until BeginTimeline).
func (m *Machine) intervalTick(now uint64) {
	if m.progressFn != nil {
		var done uint64
		for i, c := range m.cores {
			d := c.Stats().Instructions - m.phaseBase[i]
			if i == 0 || d < done {
				done = d
			}
		}
		m.progressFn(Progress{Phase: m.phase, Cycle: now, Done: done, Target: m.phaseTarget})
	}
	m.reg.SampleInterval(now)
}

// setPhase records the retirement phase the interval hook reports against.
func (m *Machine) setPhase(phase string, base []uint64, target uint64) {
	m.phase = phase
	m.phaseBase = base
	m.phaseTarget = target
}

// finishPhase emits one final Progress report the moment a retirement phase
// completes. Phases almost never end exactly on an interval boundary, so
// without this the callback's last observation is the last throttled tick's
// fraction; consumers (ProgressPrinter's 100% line, the obs tracker's done
// state) need the fraction-1 report.
func (m *Machine) finishPhase() {
	if m.progressFn != nil {
		m.progressFn(Progress{Phase: m.phase, Cycle: m.eng.Now(), Done: m.phaseTarget, Target: m.phaseTarget})
	}
}

// runUntilRetired advances until every core has retired at least target
// additional instructions (relative to the given baselines), the absolute
// engine cycle stopAt is reached (0 = no stop cycle; reaching it counts as
// success), or maxCycles pass. It runs in sampling-window-sized chunks,
// checking ctx between chunks, so cancellation is honoured within one
// window of simulated time. Chunks are clamped to stopAt, and the engine
// never oversteps a run bound (fast-forward jumps are bounded the same
// way), so a stopAt run lands on that cycle exactly — the partial run is a
// cycle-accurate prefix of the full one.
// It returns false on timeout and a non-nil error only on cancellation.
func (m *Machine) runUntilRetired(ctx context.Context, base []uint64, target uint64, maxCycles, stopAt uint64) (bool, error) {
	pred := func() bool {
		for i, c := range m.cores {
			if c.Stats().Instructions-base[i] < target {
				return false
			}
		}
		return true
	}
	chunk := m.eng.SampleWindow()
	if chunk == 0 {
		chunk = DefaultSampleWindow
	}
	var elapsed uint64
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		m.prof.MaybeSample(m.eng.Now(), m.eng.Executed())
		step := chunk
		if rem := maxCycles - elapsed; step > rem {
			step = rem
		}
		if stopAt > 0 {
			now := m.eng.Now()
			if now >= stopAt {
				return true, nil
			}
			if rem := stopAt - now; step > rem {
				step = rem
			}
		}
		if m.eng.RunUntil(pred, step) {
			return true, nil
		}
		elapsed += step
		if elapsed >= maxCycles {
			return false, nil
		}
	}
}

// Run performs warmup then the measured region of interest and returns the
// Result. An error is returned only on timeout (MaxCycles exceeded).
func (m *Machine) Run() (*Result, error) {
	return m.RunContext(context.Background())
}

// RunContext is Run with cancellation: ctx is checked at engine
// sampling-window boundaries (Config.SampleWindow cycles, default
// DefaultSampleWindow), so a cancelled run stops within one window of
// simulated time and returns ctx.Err(). A run cancelled inside the measured
// region returns a partial Result alongside the error: the engine stops at a
// deterministic window boundary, so the partial snapshot is a well-formed
// prefix of the full run (harness.Execute keeps it for partial output).
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	// Parallel tick workers (if any) spin between cycles; park them when
	// the run leaves, however it leaves.
	defer m.eng.StopWorkers()
	cfg := m.cfg
	if cfg.SelfProfile && m.prof == nil {
		m.prof = metrics.NewHostProfiler(0)
	}
	base := make([]uint64, len(m.cores))
	if cfg.WarmupInstructions > 0 {
		m.setPhase("warmup", base, cfg.WarmupInstructions)
		ok, err := m.runUntilRetired(ctx, base, cfg.WarmupInstructions, cfg.MaxCycles, 0)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("system: warmup exceeded %d cycles (scheme %s)", cfg.MaxCycles, cfg.Scheme)
		}
		m.finishPhase()
	}
	m.reg.MarkROI(m.eng.Now())
	// Re-anchor the interval hook at the ROI boundary so the first timeline
	// window starts at ROI cycle 0 and every boundary is an exact multiple
	// of the interval from MarkROI.
	m.eng.SetInterval(m.interval(), m.intervalTick)
	if cfg.Timeline {
		m.reg.BeginTimeline(m.eng.Now(), m.interval())
	}
	if cfg.Digests {
		m.reg.BeginDigests(m.eng.Now(), m.interval())
	}
	for i, c := range m.cores {
		base[i] = c.Stats().Instructions
	}
	m.setPhase("roi", base, cfg.ROIInstructions)
	var stopAt uint64
	if cfg.ROICycleLimit > 0 {
		stopAt = m.eng.Now() + cfg.ROICycleLimit
	}
	ok, err := m.runUntilRetired(ctx, base, cfg.ROIInstructions, cfg.MaxCycles, stopAt)
	if err != nil {
		// Cancelled mid-ROI: the registry is consistent at the boundary the
		// engine stopped on, so surface what was measured so far.
		m.reg.FinishTimeline(m.eng.Now())
		return m.result(m.reg.Snapshot(m.eng.Now())), err
	}
	if !ok {
		return nil, fmt.Errorf("system: ROI exceeded %d cycles (scheme %s)", cfg.MaxCycles, cfg.Scheme)
	}
	m.finishPhase()
	m.reg.FinishTimeline(m.eng.Now())
	res := m.result(m.reg.Snapshot(m.eng.Now()))
	if m.prof != nil {
		res.Host = m.prof.Finish(m.eng.Now(), m.eng.Executed())
		// Fast-forward effectiveness (sim.skipped_cycles / sim.jumps) rides
		// with the host report rather than the metrics snapshot: it differs
		// between fast-forward on and off while snapshots must not.
		res.Host.SkippedCycles = m.eng.SkippedCycles()
		res.Host.Jumps = m.eng.Jumps()
	}
	return res, nil
}
