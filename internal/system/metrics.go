package system

import (
	"fmt"

	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/metrics"
	"nomad/internal/schemes"
)

// registerMetrics builds the machine's stats registry and wires every
// component into it. Registration is lazy (closures over live counters), so
// the simulation hot paths are untouched; only histograms and the optional
// trace write during simulation, into fixed pre-allocated storage.
//
// The naming scheme (documented in DESIGN.md) is a dotted lowercase path:
//
//	core.<i>.*     per-CPU retirement and stall counters
//	cache.l1.<i>.* / cache.l2.<i>.* / cache.llc.*   SRAM hierarchy
//	hbm.* / ddr.*  DRAM devices (incl. per-bank row-buffer outcomes)
//	scheme.*       post-LLC access path of the scheme under test
//	frontend.*     OS tag-management routines (TDC, NOMAD)
//	backend.*      PCSHR/copy-buffer hardware (NOMAD)
//	sim.* / os.*   whole-machine time series
func (m *Machine) registerMetrics() {
	window := m.cfg.SampleWindow
	if window == 0 {
		window = DefaultSampleWindow
	}
	reg := metrics.NewRegistry(window)
	m.reg = reg
	// The timeline filter must precede every IntervalFunc registration
	// (components below register their own timeline columns).
	reg.SetTimelineFilter(m.cfg.TimelineMetrics)
	if m.cfg.TraceDepth > 0 {
		reg.EnableTrace(m.cfg.TraceDepth)
	}
	if m.cfg.SpanDepth > 0 {
		reg.EnableSpans(m.cfg.SpanDepth)
		every := m.cfg.SpanSampleEvery
		if every == 0 {
			every = DefaultSpanSampleEvery
		}
		for _, c := range m.cores {
			c.SetSpanTracing(reg.Spans(), every)
		}
	}

	for i, c := range m.cores {
		s := c.Stats()
		p := fmt.Sprintf("core.%d", i)
		reg.CounterFunc(p+".instructions", func() uint64 { return s.Instructions })
		reg.CounterFunc(p+".cycles", func() uint64 { return s.Cycles })
		reg.CounterFunc(p+".loads", func() uint64 { return s.Loads })
		reg.CounterFunc(p+".stores", func() uint64 { return s.Stores })
		reg.CounterFunc(p+".mem_ops", func() uint64 { return s.MemOps })
		reg.CounterFunc(p+".os_blocked_cycles", func() uint64 { return s.OSBlockedCycles })
		reg.CounterFunc(p+".mem_stall_cycles", func() uint64 { return s.MemStallCycles })
		reg.CounterFunc(p+".front_stall_cycles", func() uint64 { return s.FrontStallCycles })
		reg.CounterFunc(p+".os_block_events", func() uint64 { return s.OSBlockEvents })

		// CPI stack (Fig. 11): named buckets that partition every retired
		// ROI cycle. compute absorbs everything the stall counters do not
		// claim; the eight mem.* buckets partition mem_stall_cycles by the
		// cause recorded on the oldest outstanding load each stalled cycle.
		reg.CounterFunc(p+".cpi.compute", func() uint64 {
			return s.Cycles - s.OSBlockedCycles - s.MemStallCycles - s.FrontStallCycles
		})
		reg.CounterFunc(p+".cpi.tag_miss", func() uint64 { return s.OSBlockedCycles })
		reg.CounterFunc(p+".cpi.frontend", func() uint64 { return s.FrontStallCycles })
		for cause := mem.StallCause(0); cause < mem.NumStallCauses; cause++ {
			cause := cause
			reg.CounterFunc(p+".cpi.mem."+cause.String(), func() uint64 {
				return s.MemStallByCause[cause]
			})
		}

		m.tlbs[i].RegisterMetrics(reg, fmt.Sprintf("tlb.%d", i))
	}

	m.llc.RegisterMetrics(reg, "cache.llc")
	m.llc.SetSpans(reg.Spans(), metrics.SpanLLC)
	for i := range m.l1s {
		m.l1s[i].RegisterMetrics(reg, fmt.Sprintf("cache.l1.%d", i))
		m.l2s[i].RegisterMetrics(reg, fmt.Sprintf("cache.l2.%d", i))
		m.l1s[i].SetSpans(reg.Spans(), metrics.SpanL1)
		m.l2s[i].SetSpans(reg.Spans(), metrics.SpanL2)
	}

	m.hbm.RegisterMetrics(reg, "hbm")
	m.ddr.RegisterMetrics(reg, "ddr")
	m.hbm.SetTrace(reg.Trace(), 0)
	m.ddr.SetTrace(reg.Trace(), 1)
	if st, ok := m.scheme.(interface{ SetSpans(*metrics.SpanRing) }); ok {
		st.SetSpans(reg.Spans())
	}

	switch sc := m.scheme.(type) {
	case *schemes.Baseline:
		registerAccess(reg, sc.AccessStats())
	case *schemes.TiD:
		registerAccess(reg, sc.AccessStats())
		t := sc.TiDStats()
		reg.CounterFunc("scheme.tid.hits", func() uint64 { return t.Hits })
		reg.CounterFunc("scheme.tid.misses", func() uint64 { return t.Misses })
		reg.CounterFunc("scheme.tid.coalesced", func() uint64 { return t.Coalesced })
		reg.CounterFunc("scheme.tid.writebacks", func() uint64 { return t.Writebacks })
		reg.CounterFunc("scheme.tid.mshr_stalls", func() uint64 { return t.MSHRStalls })
	case *schemes.TDC:
		registerAccess(reg, sc.AccessStats())
		sc.Frontend().RegisterMetrics(reg, "frontend")
	case *schemes.NOMAD:
		registerAccess(reg, sc.AccessStats())
		sc.Frontend().RegisterMetrics(reg, "frontend")
		sc.Backend().RegisterMetrics(reg, "backend")
	case *schemes.Ideal:
		registerAccess(reg, sc.AccessStats())
		reg.CounterFunc("scheme.tag_misses", func() uint64 { return sc.TagMisses })
		reg.CounterFunc("scheme.would_fill_bytes", func() uint64 { return sc.WouldFillBytes })
	}

	// Whole-machine time series, sampled once per window by the engine.
	var prevInstr, prevCycle uint64
	reg.SeriesFunc("sim.ipc", func(now uint64) float64 {
		var instr uint64
		for _, c := range m.cores {
			instr += c.Stats().Instructions
		}
		d, dc := instr-prevInstr, now-prevCycle
		prevInstr, prevCycle = instr, now
		if dc == 0 {
			return 0
		}
		return float64(d) / float64(dc)
	})
	reg.SeriesFunc("os.free_frames", func(now uint64) float64 {
		return float64(m.mm.FreeFrames())
	})

	// Interval timeline columns (Config.Timeline): the Fig. 14-style
	// transient view. Registration is cheap and sampling is a no-op until
	// BeginTimeline, so these are wired unconditionally; the filter above
	// decides what is kept.
	for i, c := range m.cores {
		s := c.Stats()
		intervalRate(reg, fmt.Sprintf("core.%d.ipc", i), func() uint64 { return s.Instructions })
	}
	intervalRate(reg, "sim.ipc", func() uint64 {
		var instr uint64
		for _, c := range m.cores {
			instr += c.Stats().Instructions
		}
		return instr
	})
	ls := m.llc.Stats()
	intervalRatio(reg, "cache.llc.miss_rate",
		func() uint64 { return ls.Misses },
		func() uint64 { return ls.Hits + ls.Misses })
	reg.IntervalFunc("cache.llc.mshr_occupancy", nil, func(now uint64) float64 {
		return float64(m.llc.OutstandingMSHRs())
	})
	registerDRAMIntervals(reg, "hbm", m.hbm)
	registerDRAMIntervals(reg, "ddr", m.ddr)
	reg.IntervalFunc("os.free_frames", nil, func(now uint64) float64 {
		return float64(m.mm.FreeFrames())
	})

	m.eng.SetSampler(window, reg.Sample)
	m.eng.SetInterval(m.interval(), m.intervalTick)
}

// intervalRate registers a timeline column whose value is read()'s delta per
// cycle over each interval window (per-core IPC, system IPC).
func intervalRate(reg *metrics.Registry, name string, read func() uint64) {
	var prev, prevCyc uint64
	reg.IntervalFunc(name,
		func(now uint64) { prev, prevCyc = read(), now },
		func(now uint64) float64 {
			v, dc := read(), now-prevCyc
			d := v - prev
			prev, prevCyc = v, now
			if dc == 0 {
				return 0
			}
			return float64(d) / float64(dc)
		})
}

// intervalRatio registers a timeline column tracking delta(num)/delta(den)
// over each window (hit/miss/conflict rates). Windows with no den activity
// read 0.
func intervalRatio(reg *metrics.Registry, name string, num, den func() uint64) {
	var pn, pd uint64
	reg.IntervalFunc(name,
		func(now uint64) { pn, pd = num(), den() },
		func(now uint64) float64 {
			n, d := num(), den()
			dn, dd := n-pn, d-pd
			pn, pd = n, d
			if dd == 0 {
				return 0
			}
			return float64(dn) / float64(dd)
		})
}

// intervalGBs registers a timeline column converting read()'s byte delta per
// window into GB/s at the 3.2 GHz clock.
func intervalGBs(reg *metrics.Registry, name string, read func() uint64) {
	var prev, prevCyc uint64
	reg.IntervalFunc(name,
		func(now uint64) { prev, prevCyc = read(), now },
		func(now uint64) float64 {
			v, dc := read(), now-prevCyc
			d := v - prev
			prev, prevCyc = v, now
			if dc == 0 {
				return 0
			}
			return float64(d) / (float64(dc) / ClockHz) / 1e9
		})
}

// registerDRAMIntervals wires one DRAM device's timeline columns: bandwidth
// by traffic category and the row-buffer conflict rate.
func registerDRAMIntervals(reg *metrics.Registry, prefix string, d *dram.Device) {
	s := d.Stats()
	for k := 0; k < mem.NumKinds; k++ {
		k := k
		intervalGBs(reg, fmt.Sprintf("%s.gbs.%s", prefix, mem.Kind(k)),
			func() uint64 { return s.BytesByKind[k] })
	}
	intervalRatio(reg, prefix+".row_conflict_rate",
		func() uint64 { return s.RowConflicts },
		func() uint64 { return s.RowHits + s.RowMisses + s.RowConflicts })
}

// registerAccess exposes the scheme-agnostic post-LLC access counters, plus
// the dc.hit_rate timeline column (fraction of post-LLC reads served from
// cache space per interval — the DC hit rate, scheme-agnostic).
func registerAccess(reg *metrics.Registry, a *schemes.AccessStats) {
	//nomadlint:ignore ownership -- registration-time wiring: runs once at machine construction before any domain is live
	a.Lat = reg.Histogram("scheme.read_latency")
	reg.CounterFunc("scheme.reads", func() uint64 { return a.Reads })
	reg.CounterFunc("scheme.read_latency_sum", func() uint64 { return a.ReadLatencySum })
	reg.CounterFunc("scheme.writes", func() uint64 { return a.Writes })
	reg.CounterFunc("scheme.cache_space_reads", func() uint64 { return a.CacheSpaceReads })
	reg.CounterFunc("scheme.phys_space_reads", func() uint64 { return a.PhysSpaceReads })
	intervalRatio(reg, "dc.hit_rate",
		func() uint64 { return a.CacheSpaceReads },
		func() uint64 { return a.Reads })
}
