package system

import (
	"testing"

	"nomad/internal/workload"
)

// smallConfig returns a fast configuration for tests.
func smallConfig(scheme SchemeName) Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.Scheme = scheme
	cfg.CacheFrames = 2048 // 8 MB DC
	cfg.WarmupInstructions = 60_000
	cfg.ROIInstructions = 120_000
	cfg.MaxCycles = 80_000_000
	return cfg
}

// smallSpec scales a workload down to the test DC size.
func smallSpec() workload.Spec {
	return workload.Spec{
		Name: "test-stream", Abbr: "ts", Class: "Excess",
		FootprintPages: 4096,
		RunBlocks:      64, SeqPageFrac: 0.9,
		GapMean: 8, WriteFrac: 0.25,
	}
}

func runScheme(t *testing.T, scheme SchemeName) *Result {
	t.Helper()
	m, err := New(smallConfig(scheme), smallSpec())
	if err != nil {
		t.Fatalf("New(%s): %v", scheme, err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatalf("Run(%s): %v", scheme, err)
	}
	return r
}

func TestAllSchemesComplete(t *testing.T) {
	for _, s := range AllSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			r := runScheme(t, s)
			if r.IPC <= 0 {
				t.Fatalf("IPC = %v, want > 0", r.IPC)
			}
			if r.Cycles == 0 || r.Instructions == 0 {
				t.Fatalf("empty ROI: %+v", r)
			}
			t.Logf("%s", r)
		})
	}
}

func TestSchemeOrderingOnStreaming(t *testing.T) {
	// On a streaming workload with footprint >> DC, the paper's ordering
	// must hold: Ideal >= NOMAD > TDC, and every DC scheme >= ~Baseline.
	res := map[SchemeName]*Result{}
	for _, s := range AllSchemes() {
		res[s] = runScheme(t, s)
	}
	if res[SchemeIdeal].IPC < res[SchemeNOMAD].IPC*0.98 {
		t.Errorf("Ideal IPC %.3f should be >= NOMAD %.3f", res[SchemeIdeal].IPC, res[SchemeNOMAD].IPC)
	}
	if res[SchemeNOMAD].IPC <= res[SchemeTDC].IPC {
		t.Errorf("NOMAD IPC %.3f should beat blocking TDC %.3f on an Excess-class stream",
			res[SchemeNOMAD].IPC, res[SchemeTDC].IPC)
	}
	for _, s := range AllSchemes() {
		t.Logf("%-8s IPC=%.3f dc=%.0fcyc osStall=%.1f%% tagLat=%.0f bufHit=%.2f",
			s, res[s].IPC, res[s].AvgDCAccessTime, 100*res[s].OSStallRatio,
			res[s].AvgTagMgmtLatency, res[s].BufferHitRate)
	}
}

func TestPCSHRScaling(t *testing.T) {
	// Fig. 12's premise: with one PCSHR, miss handling serializes and tag
	// management queues; more PCSHRs monotonically-ish improve things.
	run := func(n int) *Result {
		cfg := smallConfig(SchemeNOMAD)
		cfg.Backend.PCSHRs = n
		m, err := New(cfg, smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	one, sixteen := run(1), run(16)
	if one.AvgTagMgmtLatency <= sixteen.AvgTagMgmtLatency {
		t.Errorf("tag latency with 1 PCSHR (%.0f) should exceed 16 PCSHRs (%.0f)",
			one.AvgTagMgmtLatency, sixteen.AvgTagMgmtLatency)
	}
	if one.IPC > sixteen.IPC*1.02 {
		t.Errorf("IPC with 1 PCSHR (%.3f) should not beat 16 (%.3f)", one.IPC, sixteen.IPC)
	}
}

func TestDistributedBackendComparable(t *testing.T) {
	// Fig. 16: FIFO allocation spreads commands uniformly, so distributed
	// back-ends perform close to centralized.
	run := func(dist bool) *Result {
		cfg := smallConfig(SchemeNOMAD)
		cfg.Backend.PCSHRs = 16
		cfg.Backend.Distributed = dist
		m, err := New(cfg, smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	c, d := run(false), run(true)
	ratio := d.IPC / c.IPC
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("distributed/centralized IPC = %.3f, want ~1.0", ratio)
	}
}

func TestFig7LatencyOrdering(t *testing.T) {
	// Fig. 7a: in the (hit,hit) case OS-managed schemes see near-ideal DC
	// access time while the HW-based scheme pays for metadata traffic.
	// Compare on a reuse-heavy workload where most accesses are data hits.
	reuse := workload.Spec{
		Name: "reuse", Abbr: "ru", Class: "Few",
		FootprintPages: 4096, RunBlocks: 16, SeqPageFrac: 0.3,
		GapMean: 10, WriteFrac: 0.2,
		WarmPages: 512, WarmFrac: 0.97,
	}
	run := func(s SchemeName) *Result {
		cfg := smallConfig(s)
		m, err := New(cfg, reuse)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	nomad, tid, ideal := run(SchemeNOMAD), run(SchemeTiD), run(SchemeIdeal)
	if nomad.AvgDCAccessTime > ideal.AvgDCAccessTime*1.3 {
		t.Errorf("NOMAD DC access %.0f not near ideal %.0f on a data-hit workload",
			nomad.AvgDCAccessTime, ideal.AvgDCAccessTime)
	}
	if tid.AvgDCAccessTime < nomad.AvgDCAccessTime {
		t.Errorf("TiD DC access %.0f should exceed OS-managed %.0f (metadata bandwidth)",
			tid.AvgDCAccessTime, nomad.AvgDCAccessTime)
	}
}

func TestBufferHitRateHighOnReuseWorkload(t *testing.T) {
	// §III-E / §IV-B.5: on low-RMHB workloads nearly all data misses are
	// the faulting access replaying after tag management, and
	// critical-data-first has already fetched that sub-block.
	spec := workload.Spec{
		Name: "few", Abbr: "fw", Class: "Few",
		FootprintPages: 4096, RunBlocks: 16, SeqPageFrac: 0.3,
		GapMean: 12, WriteFrac: 0.1,
		WarmPages: 512, WarmFrac: 0.96,
	}
	cfg := smallConfig(SchemeNOMAD)
	m, err := New(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.DataMisses > 0 && r.BufferHitRate < 0.5 {
		t.Errorf("buffer hit rate %.2f on a Few-class workload, want high", r.BufferHitRate)
	}
}

func TestVerifyLatencyCost(t *testing.T) {
	// §IV-B.5: one cycle of verification latency costs ~0.1%.
	run := func(v uint64) *Result {
		cfg := smallConfig(SchemeNOMAD)
		cfg.Backend.VerifyLatency = v
		m, err := New(cfg, smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	zero, one := run(0), run(1)
	if drop := 1 - one.IPC/zero.IPC; drop > 0.03 {
		t.Errorf("1-cycle verification cost %.1f%% IPC, want ~0.1%%", 100*drop)
	}
}

func TestNOMADStallsBelowTDC(t *testing.T) {
	n := runScheme(t, SchemeNOMAD)
	d := runScheme(t, SchemeTDC)
	if n.OSStallRatio >= d.OSStallRatio {
		t.Errorf("NOMAD stall ratio %.3f should be below TDC %.3f", n.OSStallRatio, d.OSStallRatio)
	}
}
