package system

import (
	"bytes"
	"encoding/json"
	"testing"

	"nomad/internal/metrics"
)

// TestCPIStackInvariant checks the central accounting property of the stall
// attribution: for every scheme, the named buckets sum exactly to the ROI
// core-cycles — no cycle is double-counted or lost.
func TestCPIStackInvariant(t *testing.T) {
	for _, s := range AllSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			r := runScheme(t, s)
			want := r.Cycles * uint64(r.Cores)
			if got := r.CPIStack.Total(); got != want {
				t.Fatalf("CPI stack total = %d, want %d (cycles %d × cores %d); stack %+v",
					got, want, r.Cycles, r.Cores, r.CPIStack)
			}
			// The mem buckets partition the mem-stall counter exactly.
			var memStall uint64
			for i := 0; i < r.Cores; i++ {
				memStall += r.Metrics.Counter("core." + itoa(i) + ".mem_stall_cycles")
			}
			if got := r.CPIStack.MemTotal(); got != memStall {
				t.Fatalf("mem buckets sum to %d, want mem_stall_cycles %d", got, memStall)
			}
		})
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}

// TestCPIStackNOMADTagMissVsTDC checks the paper's headline contrast
// (Fig. 11): under the blocking OS-managed scheme, tag-miss suspension
// covers the whole miss — PTE update plus fill data movement — and
// dominates the stack on an Excess workload. NOMAD's decoupling releases
// the thread after the PTE update alone, so its suspension bucket is the
// short critical section only, a fraction of TDC's.
func TestCPIStackNOMADTagMissVsTDC(t *testing.T) {
	tdc := runScheme(t, SchemeTDC)
	nomad := runScheme(t, SchemeNOMAD)
	frac := func(r *Result) float64 {
		return float64(r.CPIStack.TagMiss) / float64(r.CPIStack.Total())
	}
	ft, fn := frac(tdc), frac(nomad)
	t.Logf("tag-miss fraction: TDC %.3f NOMAD %.3f", ft, fn)
	if fn > ft/1.5 {
		t.Fatalf("NOMAD tag-miss fraction %.3f, want well below TDC's %.3f", fn, ft)
	}
	if ft < 0.05 {
		t.Fatalf("TDC tag-miss fraction %.3f suspiciously low on an Excess workload", ft)
	}
}

// traceConfig is smallConfig with span/event capture on.
func traceConfig(scheme SchemeName) Config {
	cfg := smallConfig(scheme)
	cfg.TraceDepth = 1 << 14
	cfg.SpanDepth = 1 << 13
	cfg.SpanSampleEvery = 16
	return cfg
}

// TestTraceExportDeterministic runs the same traced configuration twice and
// requires byte-identical Perfetto output.
func TestTraceExportDeterministic(t *testing.T) {
	export := func() []byte {
		m, err := New(traceConfig(SchemeNOMAD), smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Trace == nil {
			t.Fatal("traced run produced no dump")
		}
		var buf bytes.Buffer
		if err := metrics.WritePerfetto(&buf, metrics.PerfettoRun{Name: "t", Dump: r.Trace}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("Perfetto export differs across same-seed runs")
	}
}

// TestTraceExportWellFormed validates the Perfetto JSON shape: per-core and
// per-bank tracks, complete events always carrying a duration, and spans
// covering the access path from the core down to a DRAM device.
func TestTraceExportWellFormed(t *testing.T) {
	m, err := New(traceConfig(SchemeNOMAD), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.Trace == nil || r.Metrics.Trace.Spans == 0 {
		t.Fatalf("snapshot trace summary missing or empty: %+v", r.Metrics.Trace)
	}

	kinds := map[metrics.SpanKind]int{}
	for _, s := range r.Trace.Spans {
		if s.End < s.Start {
			t.Fatalf("span ends before it starts: %+v", s)
		}
		kinds[s.Kind]++
	}
	for _, k := range []metrics.SpanKind{metrics.SpanLoad, metrics.SpanL1, metrics.SpanTLB} {
		if kinds[k] == 0 {
			t.Fatalf("no %s spans captured; kinds = %v", k, kinds)
		}
	}
	if kinds[metrics.SpanHBM] == 0 && kinds[metrics.SpanDDR] == 0 {
		t.Fatalf("no DRAM device spans captured; kinds = %v", kinds)
	}

	var buf bytes.Buffer
	if err := metrics.WritePerfetto(&buf, metrics.PerfettoRun{Name: "t", Dump: r.Trace}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Dur  *uint64         `json:"dur"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}
	var procs, threads, slices int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procs++
			} else {
				threads++
			}
		case "X":
			slices++
			if ev.Dur == nil {
				t.Fatalf("complete event missing dur: %+v", ev)
			}
		case "i":
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if procs != 4 {
		t.Fatalf("process tracks = %d, want 4 (cores/backend/hbm/ddr)", procs)
	}
	if threads == 0 || slices == 0 {
		t.Fatalf("threads = %d slices = %d, want both > 0", threads, slices)
	}
}

// TestTracingDisabledByDefault checks the zero-config path stays clean: no
// dump, no snapshot summary, no probe-driven span work.
func TestTracingDisabledByDefault(t *testing.T) {
	r := runScheme(t, SchemeNOMAD)
	if r.Trace != nil {
		t.Fatal("untraced run carries a trace dump")
	}
	if r.Metrics.Trace != nil {
		t.Fatal("untraced run carries a snapshot trace summary")
	}
	// The CPI stack is attribution, not tracing: always on.
	if r.CPIStack.Total() == 0 {
		t.Fatal("CPI stack empty without tracing")
	}
}

// benchRun measures one full simulation (construction + warmup + ROI).
func benchRun(b *testing.B, cfg Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg, smallSpec())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTracingOff is the default path: stall attribution on (it is
// part of the model), span/event capture off. Compare against
// BenchmarkRunTracingOn to see the capture cost; the off/on gap is the
// budget the observability layer must stay inside (<5%).
func BenchmarkRunTracingOff(b *testing.B) { benchRun(b, smallConfig(SchemeNOMAD)) }

// BenchmarkRunTracingOn enables the event ring and 1-in-16 span sampling.
func BenchmarkRunTracingOn(b *testing.B) { benchRun(b, traceConfig(SchemeNOMAD)) }
