package system

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"nomad/internal/metrics"
)

// parRun executes one instrumented small run (timeline, digests, trace and
// span rings all on) with the given tick-phase worker count and returns the
// marshalled snapshot and the Perfetto trace bytes.
func parRun(t *testing.T, s SchemeName, workers int, cores int) ([]byte, []byte) {
	t.Helper()
	cfg := smallConfig(s)
	cfg.Cores = cores
	cfg.Timeline = true
	cfg.Digests = true
	cfg.Interval = 20_000
	cfg.TraceDepth = 1 << 12
	cfg.SpanDepth = 1 << 11
	cfg.Workers = workers
	m, err := New(cfg, smallSpec())
	if err != nil {
		t.Fatalf("New(%s, workers=%d): %v", s, workers, err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatalf("Run(%s, workers=%d): %v", s, workers, err)
	}
	snap, err := json.Marshal(r.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := metrics.WritePerfetto(&trace, metrics.PerfettoRun{Name: "par", Dump: r.Trace}); err != nil {
		t.Fatal(err)
	}
	return snap, trace.Bytes()
}

// TestParallelByteIdentical is the parallel-mode correctness contract: for
// every scheme, a run with the tick phase sharded over 1, 2, or 4 workers
// must produce byte-for-byte the sequential engine's metrics snapshot
// (counters, timeline, interval digest chains) and Perfetto trace. workers=1
// exercises the full shard/defer/replay machinery without concurrency, so a
// failure there is an ordering bug and a failure only at >1 is a race.
func TestParallelByteIdentical(t *testing.T) {
	const cores = 4
	for _, s := range AllSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			refSnap, refTrace := parRun(t, s, 0, cores)
			var sn metrics.Snapshot
			if err := json.Unmarshal(refSnap, &sn); err != nil {
				t.Fatal(err)
			}
			if sn.Digests.Windows() == 0 {
				t.Fatal("reference run produced no digest chains; the equivalence check would be vacuous")
			}
			for _, workers := range []int{1, 2, 4} {
				snap, trace := parRun(t, s, workers, cores)
				if !bytes.Equal(refSnap, snap) {
					t.Errorf("workers=%d: metrics snapshot differs from sequential\nseq: %.400s\npar: %.400s",
						workers, refSnap, snap)
				}
				if !bytes.Equal(refTrace, trace) {
					t.Errorf("workers=%d: Perfetto trace differs from sequential", workers)
				}
			}
		})
	}
}

// TestParallelFastForwardByteIdentical pins the parallel x fast-forward
// corner: sharded ticking composes with idle-cycle jumps (quiescence polls
// and bulk skip accounting run on the coordinator) without disturbing the
// byte-identity contract.
func TestParallelFastForwardByteIdentical(t *testing.T) {
	for _, ff := range []bool{true, false} {
		t.Run(fmt.Sprintf("ff=%v", ff), func(t *testing.T) {
			run := func(workers int) []byte {
				cfg := smallConfig(SchemeNOMAD)
				cfg.Timeline = true
				cfg.Digests = true
				cfg.Interval = 20_000
				cfg.FastForward = ff
				cfg.Workers = workers
				m, err := New(cfg, smallSpec())
				if err != nil {
					t.Fatal(err)
				}
				r, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				snap, err := json.Marshal(r.Metrics)
				if err != nil {
					t.Fatal(err)
				}
				return snap
			}
			ref := run(0)
			if got := run(4); !bytes.Equal(ref, got) {
				t.Errorf("ff=%v: parallel snapshot differs from sequential", ff)
			}
		})
	}
}
