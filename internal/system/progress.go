package system

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progressMinPeriod throttles ProgressPrinter output: interval ticks arrive
// every ~100k simulated cycles (often thousands per wall second), but a
// human-facing stderr line is useful at most a few times per second.
const progressMinPeriod = 500 * time.Millisecond

// ProgressPrinter returns a Machine.SetProgress callback that renders
// one-line progress reports ("label: roi 42.0% cycle=1.2M eta=3s") to w,
// throttled to one line per half second of wall time per phase, plus one
// final line when a phase completes. The ETA extrapolates the current
// phase's wall-clock rate. label tags the line (run key) and may be empty.
//
// The returned closure serializes its own writes; distinct printers writing
// to the same io.Writer rely on the writer's atomicity (stderr line writes).
func ProgressPrinter(w io.Writer, label string) func(Progress) {
	var (
		mu         sync.Mutex
		phase      string
		phaseStart time.Time
		lastPrint  time.Time
		lastFrac   float64
	)
	prefix := ""
	if label != "" {
		prefix = label + ": "
	}
	return func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		//nomadlint:ignore wallclock -- progress lines are host-facing UX; wall time never feeds simulation state
		now := time.Now()
		if p.Phase != phase {
			phase = p.Phase
			phaseStart = now
			lastPrint = time.Time{}
			lastFrac = 0
		}
		frac := p.Fraction()
		done := frac >= 1 && lastFrac < 1
		if !done && !lastPrint.IsZero() && now.Sub(lastPrint) < progressMinPeriod {
			return
		}
		lastPrint = now
		lastFrac = frac
		eta := "?"
		if elapsed := now.Sub(phaseStart).Seconds(); frac > 0 && elapsed > 0 {
			rem := elapsed * (1 - frac) / frac
			//nomadlint:ignore floatclock -- ETA is a wall-clock display estimate, not simulated time
			eta = (time.Duration(rem*float64(time.Second)) / time.Second * time.Second).String()
		}
		fmt.Fprintf(w, "%s%s %5.1f%% cycle=%s eta=%s\n",
			prefix, p.Phase, 100*frac, fmtCycles(p.Cycle), eta)
	}
}

// fmtCycles renders a cycle count compactly (1.2M, 340k).
func fmtCycles(c uint64) string {
	switch {
	case c >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(c)/1e9)
	case c >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(c)/1e6)
	case c >= 10_000:
		return fmt.Sprintf("%.0fk", float64(c)/1e3)
	default:
		return fmt.Sprintf("%d", c)
	}
}
