package system

import (
	"testing"

	"nomad/internal/workload"
)

// BenchmarkROI measures simulator throughput on the default NOMAD
// configuration (used for profiling; run with -cpuprofile).
func BenchmarkROI(b *testing.B) {
	spec, _ := workload.ByAbbr("cact")
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.WarmupInstructions = 0
		cfg.ROIInstructions = 400_000
		m, err := New(cfg, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
