package system

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"nomad/internal/sim"
)

// digestConfig is smallConfig with digest capture on at a short interval so
// several windows fit in the small ROI.
func digestConfig(scheme SchemeName) Config {
	cfg := smallConfig(scheme)
	cfg.Digests = true
	cfg.Interval = 20_000
	return cfg
}

// TestDigestChainByteIdentical is the digest determinism contract the whole
// diag subsystem rests on: for every scheme, the digest chain must be
// byte-for-byte identical across both engines and fast-forward on/off. A
// digest difference must mean the runs behaved differently — never that the
// host executed them differently.
func TestDigestChainByteIdentical(t *testing.T) {
	for _, s := range AllSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			var ref []byte
			var refVariant string
			for _, kind := range []sim.Kind{sim.KindWheel, sim.KindHeap} {
				for _, ff := range []bool{true, false} {
					cfg := digestConfig(s)
					cfg.Engine = kind
					cfg.FastForward = ff
					m, err := New(cfg, smallSpec())
					if err != nil {
						t.Fatal(err)
					}
					r, err := m.Run()
					if err != nil {
						t.Fatal(err)
					}
					dc := r.Metrics.Digests
					if dc == nil {
						t.Fatal("Config.Digests produced no chain")
					}
					if dc.Windows() == 0 {
						t.Fatal("digest chain is empty")
					}
					enc, err := json.Marshal(dc)
					if err != nil {
						t.Fatal(err)
					}
					variant := fmt.Sprintf("engine=%s/ff=%v", kind, ff)
					if ref == nil {
						ref, refVariant = enc, variant
						continue
					}
					if string(enc) != string(ref) {
						t.Errorf("digest chain differs between %s and %s\n%s: %.300s\n%s: %.300s",
							refVariant, variant, refVariant, ref, variant, enc)
					}
				}
			}
		})
	}
}

// TestDigestChainChangesWithSeed is the other half of the contract: two runs
// that do behave differently must diverge, and the chain property holds —
// once one window differs, every later window differs too.
func TestDigestChainChangesWithSeed(t *testing.T) {
	run := func(seed uint64) *Result {
		cfg := digestConfig(SchemeTDC)
		cfg.Seed = seed
		m, err := New(cfg, smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(1).Metrics.Digests, run(2).Metrics.Digests
	i := a.FirstDivergence(b)
	if i < 0 {
		t.Fatal("different seeds produced identical digest chains")
	}
	n := a.Windows()
	if b.Windows() < n {
		n = b.Windows()
	}
	for j := i; j < n; j++ {
		if a.Digests[j] == b.Digests[j] && a.Cycles[j] == b.Cycles[j] {
			t.Errorf("window %d re-converged after divergence at %d: chaining broken", j, i)
		}
	}
}

// TestDigestsOffByDefault pins the opt-in: without Config.Digests the
// snapshot carries no chain and the JSON encoding is unchanged.
func TestDigestsOffByDefault(t *testing.T) {
	r := runScheme(t, SchemeNOMAD)
	if r.Metrics.Digests != nil {
		t.Error("digest chain present without Config.Digests")
	}
	enc, err := json.Marshal(r.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(enc, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["digests"]; ok {
		t.Error(`"digests" key emitted without Config.Digests`)
	}
}

// TestROICycleLimit pins the partial-replay primitive Bisect relies on: a
// run cut off at cycle N ends at exactly N (ROI-relative), is a
// deterministic prefix of the full run, and behaves identically across
// engines and fast-forward modes.
func TestROICycleLimit(t *testing.T) {
	full := func() *Result {
		cfg := digestConfig(SchemeTDC)
		cfg.Timeline = true
		m, err := New(cfg, smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	fullDC := full.Metrics.Digests
	if fullDC.Windows() < 2 {
		t.Fatalf("full run collected %d windows; test needs >= 2", fullDC.Windows())
	}
	// Cut at the end of the second window.
	stop := fullDC.Cycles[1]

	var ref *Result
	for _, kind := range []sim.Kind{sim.KindWheel, sim.KindHeap} {
		for _, ff := range []bool{true, false} {
			cfg := digestConfig(SchemeTDC)
			cfg.Timeline = true
			cfg.ROICycleLimit = stop
			cfg.Engine = kind
			cfg.FastForward = ff
			m, err := New(cfg, smallSpec())
			if err != nil {
				t.Fatal(err)
			}
			r, err := m.Run()
			if err != nil {
				t.Fatalf("cutoff run (engine=%s ff=%v): %v", kind, ff, err)
			}
			if r.Cycles != stop {
				t.Fatalf("engine=%s ff=%v: cutoff run ended at cycle %d, want exactly %d", kind, ff, r.Cycles, stop)
			}
			// The partial chain must be a prefix of the full run's chain.
			pdc := r.Metrics.Digests
			if pdc.Windows() != 2 {
				t.Fatalf("engine=%s ff=%v: cutoff run collected %d windows, want 2", kind, ff, pdc.Windows())
			}
			for i := 0; i < 2; i++ {
				if pdc.Digests[i] != fullDC.Digests[i] || pdc.Cycles[i] != fullDC.Cycles[i] {
					t.Errorf("engine=%s ff=%v: window %d = (%d, %s), full run has (%d, %s): not a prefix",
						kind, ff, i, pdc.Cycles[i], pdc.Digests[i], fullDC.Cycles[i], fullDC.Digests[i])
				}
			}
			if ref == nil {
				ref = r
				continue
			}
			// Cutoff runs must also be variant-invariant among themselves.
			if !reflect.DeepEqual(r.Metrics, ref.Metrics) {
				t.Errorf("engine=%s ff=%v: cutoff snapshot differs from first variant", kind, ff)
			}
		}
	}
}
