package system

import (
	"strings"
	"testing"
)

// TestProgressPrinterFinalTick: the 100% line must print even when it lands
// inside the throttle window right after another line.
func TestProgressPrinterFinalTick(t *testing.T) {
	var buf strings.Builder
	p := ProgressPrinter(&buf, "run")
	p(Progress{Phase: "roi", Cycle: 100, Done: 10, Target: 100})
	p(Progress{Phase: "roi", Cycle: 150, Done: 50, Target: 100}) // throttled
	p(Progress{Phase: "roi", Cycle: 200, Done: 100, Target: 100})
	out := buf.String()
	if !strings.Contains(out, "100.0%") {
		t.Errorf("final tick did not print:\n%s", out)
	}
	if strings.Contains(out, "50.0%") {
		t.Errorf("throttled tick printed:\n%s", out)
	}
	// A repeated 100% tick inside the window stays throttled.
	lines := strings.Count(out, "\n")
	p(Progress{Phase: "roi", Cycle: 210, Done: 100, Target: 100})
	if got := strings.Count(buf.String(), "\n"); got != lines {
		t.Errorf("duplicate 100%% line printed (%d -> %d lines)", lines, got)
	}
}

// TestRunEmitsFinalProgress: every phase's last report observed by the
// progress callback is the fraction-1 completion report, regardless of
// where interval ticks fell.
func TestRunEmitsFinalProgress(t *testing.T) {
	cfg := smallConfig(SchemeNOMAD)
	m, err := New(cfg, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]Progress{}
	m.SetProgress(func(p Progress) { last[p.Phase] = p })
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"warmup", "roi"} {
		p, ok := last[phase]
		if !ok {
			t.Fatalf("no progress reports for phase %q", phase)
		}
		if p.Fraction() != 1 {
			t.Errorf("%s: final fraction %.3f, want 1", phase, p.Fraction())
		}
		if p.Done != p.Target || p.Target == 0 {
			t.Errorf("%s: final report %+v, want Done == Target > 0", phase, p)
		}
	}
}
