package system

import (
	"encoding/json"
	"testing"
)

func timelineConfig(scheme SchemeName) Config {
	cfg := smallConfig(scheme)
	cfg.Timeline = true
	cfg.Interval = 50_000
	return cfg
}

func runTimelineTest(t *testing.T, cfg Config) *Result {
	t.Helper()
	m, err := New(cfg, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTimelineOffByDefault(t *testing.T) {
	r := runScheme(t, SchemeNOMAD)
	if r.Metrics.Timeline != nil {
		t.Fatalf("timeline captured without Config.Timeline: %+v", r.Metrics.Timeline)
	}
	if r.Host != nil {
		t.Fatalf("host profile attached without Config.SelfProfile: %+v", r.Host)
	}
}

func TestTimelineCapture(t *testing.T) {
	r := runTimelineTest(t, timelineConfig(SchemeNOMAD))
	tl := r.Metrics.Timeline
	if tl == nil {
		t.Fatal("no timeline in snapshot")
	}
	if tl.Interval != 50_000 {
		t.Fatalf("interval = %d, want 50000", tl.Interval)
	}
	if tl.Windows() == 0 {
		t.Fatal("no timeline windows collected")
	}
	// The first full window ends exactly one interval after the ROI mark,
	// and the last window closes at ROI end.
	if tl.Windows() > 1 && tl.Cycles[0] != tl.Interval {
		t.Fatalf("first window ends at %d, want %d (ROI-aligned)", tl.Cycles[0], tl.Interval)
	}
	if last := tl.Cycles[tl.Windows()-1]; last != r.Cycles {
		t.Fatalf("last window ends at %d, ROI spans %d", last, r.Cycles)
	}
	// The whole-run ROI cycle count must equal engine-now − StartCycle,
	// i.e. the timeline is anchored exactly at the MarkROI cycle.
	for _, name := range []string{
		"sim.ipc", "core.0.ipc", "dc.hit_rate", "cache.llc.miss_rate",
		"cache.llc.mshr_occupancy", "hbm.row_conflict_rate",
		"hbm.gbs.fill", "ddr.gbs.fill", "backend.pcshr_highwater", "os.free_frames",
	} {
		col := tl.Metric(name)
		if col == nil {
			t.Errorf("metric %q missing from timeline (have %d columns)", name, len(tl.Metrics))
			continue
		}
		if len(col) != tl.Windows() {
			t.Errorf("metric %q has %d values for %d windows", name, len(col), tl.Windows())
		}
	}
	// Per-window IPC should average out near the scalar IPC.
	var sum float64
	for _, v := range tl.Metric("sim.ipc") {
		sum += v
	}
	avg := sum / float64(tl.Windows())
	if avg < r.IPC/2 || avg > r.IPC*2 {
		t.Fatalf("mean window IPC %.3f far from scalar IPC %.3f", avg, r.IPC)
	}
}

func TestTimelineDeterministic(t *testing.T) {
	capture := func() []byte {
		r := runTimelineTest(t, timelineConfig(SchemeNOMAD))
		data, err := json.Marshal(r.Metrics.Timeline)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := capture(), capture()
	if string(a) != string(b) {
		t.Fatal("same-seed timeline JSON differs between runs")
	}
}

func TestTimelineMetricsFilter(t *testing.T) {
	cfg := timelineConfig(SchemeNOMAD)
	cfg.TimelineMetrics = []string{"sim.", "backend."}
	r := runTimelineTest(t, cfg)
	tl := r.Metrics.Timeline
	if tl.Metric("sim.ipc") == nil || tl.Metric("backend.pcshr_highwater") == nil {
		t.Fatalf("filtered-in metrics missing: %v", tl.Metrics)
	}
	for name := range tl.Metrics {
		if name != "sim.ipc" && name[:8] != "backend." {
			t.Fatalf("metric %q escaped the filter", name)
		}
	}
}

func TestSelfProfileAttachesHost(t *testing.T) {
	cfg := smallConfig(SchemeNOMAD)
	cfg.SelfProfile = true
	r := runTimelineTest(t, cfg)
	if r.Host == nil {
		t.Fatal("no host report despite SelfProfile")
	}
	if r.Host.SimCyclesPerSec <= 0 || r.Host.WallSeconds <= 0 {
		t.Fatalf("degenerate host report: %+v", r.Host)
	}
	if r.Host.SimCycles == 0 || r.Host.EventsExecuted == 0 {
		t.Fatalf("host report missing totals: %+v", r.Host)
	}
	// The host report must never leak into the deterministic snapshot.
	data, err := json.Marshal(r.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if jsonContains(data, "wall_seconds") {
		t.Fatal("host fields leaked into the metrics snapshot")
	}
}

func jsonContains(data []byte, key string) bool {
	return json.Valid(data) && (len(data) > 0 && (string(data) != "" && containsStr(string(data), `"`+key+`"`)))
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestProgressCallback(t *testing.T) {
	cfg := timelineConfig(SchemeNOMAD)
	m, err := New(cfg, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var reports []Progress
	m.SetProgress(func(p Progress) { reports = append(reports, p) })
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("progress callback never fired")
	}
	sawWarmup, sawROI := false, false
	var lastCycle uint64
	for _, p := range reports {
		switch p.Phase {
		case "warmup":
			sawWarmup = true
		case "roi":
			sawROI = true
		default:
			t.Fatalf("unknown phase %q", p.Phase)
		}
		if p.Cycle < lastCycle {
			t.Fatalf("progress cycles not monotonic: %d after %d", p.Cycle, lastCycle)
		}
		lastCycle = p.Cycle
		if f := p.Fraction(); f < 0 || f > 1 {
			t.Fatalf("fraction %v outside [0,1]", f)
		}
	}
	if !sawWarmup || !sawROI {
		t.Fatalf("phases seen: warmup=%v roi=%v, want both", sawWarmup, sawROI)
	}
	// Progress is an observer: it must not perturb the simulation.
	plain := runTimelineTest(t, cfg)
	withProgress, err := func() (*Result, error) {
		m, err := New(cfg, smallSpec())
		if err != nil {
			return nil, err
		}
		m.SetProgress(func(Progress) {})
		return m.Run()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != withProgress.Cycles || plain.Instructions != withProgress.Instructions {
		t.Fatal("progress callback perturbed the simulation")
	}
}
