package system

import (
	"bytes"
	"encoding/json"
	"testing"

	"nomad/internal/metrics"
)

// TestFastForwardByteIdentical is the fast-forward correctness contract: for
// every scheme, a run with idle-cycle fast-forward must produce byte-for-byte
// the same metrics snapshot (counters, timeline, trace summary) and the same
// Perfetto trace as the same run stepped cycle by cycle. Only the host-side
// skip counters may differ.
func TestFastForwardByteIdentical(t *testing.T) {
	anySkipped := false
	for _, s := range AllSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			run := func(ff bool) (*Result, []byte, []byte) {
				cfg := smallConfig(s)
				cfg.Timeline = true
				cfg.Interval = 20_000
				cfg.TraceDepth = 1 << 12
				cfg.SpanDepth = 1 << 11
				cfg.SelfProfile = true
				cfg.FastForward = ff
				m, err := New(cfg, smallSpec())
				if err != nil {
					t.Fatalf("New(%s, ff=%v): %v", s, ff, err)
				}
				r, err := m.Run()
				if err != nil {
					t.Fatalf("Run(%s, ff=%v): %v", s, ff, err)
				}
				snap, err := json.Marshal(r.Metrics)
				if err != nil {
					t.Fatal(err)
				}
				var trace bytes.Buffer
				if err := metrics.WritePerfetto(&trace, metrics.PerfettoRun{Name: "ff", Dump: r.Trace}); err != nil {
					t.Fatal(err)
				}
				return r, snap, trace.Bytes()
			}
			on, onSnap, onTrace := run(true)
			off, offSnap, offTrace := run(false)
			if !bytes.Equal(onSnap, offSnap) {
				t.Errorf("metrics snapshot differs between fast-forward on and off\non:  %.400s\noff: %.400s", onSnap, offSnap)
			}
			if !bytes.Equal(onTrace, offTrace) {
				t.Error("Perfetto trace differs between fast-forward on and off")
			}
			if off.Host.SkippedCycles != 0 || off.Host.Jumps != 0 {
				t.Errorf("stepped run reported skips: %d cycles, %d jumps", off.Host.SkippedCycles, off.Host.Jumps)
			}
			if on.Host.SkippedCycles > 0 {
				anySkipped = true
				if on.Host.Jumps == 0 {
					t.Error("skipped cycles reported without any jumps")
				}
			}
			t.Logf("%s: %d/%d cycles skipped in %d jumps", s, on.Host.SkippedCycles, on.Host.SimCycles, on.Host.Jumps)
		})
	}
	if !anySkipped {
		t.Error("fast-forward never skipped a cycle on any scheme; the engine is inert")
	}
}
