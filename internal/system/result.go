package system

import (
	"fmt"

	"nomad/internal/mem"
	"nomad/internal/metrics"
)

// Result is the measured region-of-interest outcome of one run. All rates
// use the 3.2 GHz clock. The scalar fields are derived views over Metrics,
// the full ROI stats snapshot.
//
//nomad:owner host
type Result struct {
	Scheme   SchemeName
	Workload string
	Cores    int

	Cycles       uint64
	Instructions uint64
	Seconds      float64

	// IPC is system throughput (retired instructions per cycle, summed
	// over cores). Figures normalize it, so the convention cancels.
	IPC float64

	// OSStallRatio is the average fraction of cycles threads were
	// suspended by OS routines (Fig. 11's "application stall cycles").
	OSStallRatio  float64
	MemStallRatio float64

	// AvgDCAccessTime is the mean post-LLC read latency in CPU cycles,
	// measured at the DC controller (Fig. 9, right axis).
	AvgDCAccessTime float64

	LLCMisses uint64
	// LLCMPMS is LLC misses per microsecond (Table I).
	LLCMPMS float64

	// HBMBytesByKind breaks on-package traffic into demand / metadata /
	// fill / writeback (Fig. 10, left axis); HBMRowHitRate is its right
	// axis. HBMUtilization is bus-busy fraction.
	HBMBytesByKind [mem.NumKinds]uint64
	HBMRowHitRate  float64
	HBMUtilization float64
	HBMGBs         float64

	// HBMAvgReadLat / DDRAvgReadLat are device-level mean read latencies
	// (arrival to data), exposing queueing behaviour.
	HBMAvgReadLat float64
	DDRAvgReadLat float64

	DDRBytesByKind [mem.NumKinds]uint64
	DDRUtilization float64
	// OffPkgGBs is total off-package bandwidth consumption (Fig. 12).
	OffPkgGBs float64

	// RMHBGBs is the required miss-handling bandwidth (Table I): for the
	// Ideal scheme the fills that would have been needed; for real
	// schemes the fill traffic actually read from off-package memory.
	RMHBGBs float64

	// Tag management (OS-managed schemes; Figs. 11/14/15/16).
	TagMisses         uint64
	AvgTagMgmtLatency float64
	MaxTagMgmtLatency uint64

	// NOMAD back-end behaviour (§IV-B.5: the paper reports 91.6% of data
	// misses hitting page copy buffers).
	DataHits          uint64
	DataMisses        uint64
	BufferHitRate     float64
	SubEntryOverflows uint64

	Evictions      uint64
	DirtyEvictions uint64

	// CPIStack is the Fig. 11-style stall attribution, summed over cores.
	CPIStack CPIStack

	// Metrics is the full ROI metrics snapshot (counters, gauges,
	// histograms, time series) the fields above are computed from.
	Metrics *metrics.Snapshot

	// Trace is the raw event/span capture for Perfetto export; nil unless
	// Config.TraceDepth, Config.SpanDepth, or Config.Timeline enabled it.
	Trace *metrics.TraceDump

	// Host is the simulator's own performance during this run (wall-clock
	// cycles/sec, events/sec, heap, GC pauses); nil unless
	// Config.SelfProfile. Host readings are non-deterministic by nature
	// and are never part of Metrics.
	Host *metrics.HostReport `json:",omitempty"`
}

// CPIStack partitions every ROI core-cycle into named buckets (Fig. 11).
// The invariant Compute+TagMiss+Frontend+ΣMem == Cycles×Cores holds exactly:
// each stalled cycle is attributed to the oldest outstanding load's current
// position in the memory system, and Compute absorbs the rest.
//
//nomad:owner host
type CPIStack struct {
	// Compute is cycles the core retired work or was limited by issue
	// width, not by the memory system or the OS.
	Compute uint64
	// TagMiss is cycles threads were suspended inside OS tag-management
	// routines (the paper's "application stall cycles").
	TagMiss uint64
	// Frontend is cycles lost to instruction-supply stalls.
	Frontend uint64
	// Mem splits load-retirement stalls by the blocking load's location:
	// indexed by mem.StallCause (sram, tlb, mshr, pcshr, dram_queue,
	// row_conflict, bus, dram_service).
	Mem [mem.NumStallCauses]uint64
}

// Total returns the number of core-cycles the stack accounts for.
func (s CPIStack) Total() uint64 {
	t := s.Compute + s.TagMiss + s.Frontend
	for _, v := range s.Mem {
		t += v
	}
	return t
}

// MemTotal returns the summed memory-stall buckets.
func (s CPIStack) MemTotal() uint64 {
	var t uint64
	for _, v := range s.Mem {
		t += v
	}
	return t
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f dcAccess=%.1fcyc stall=%.1f%% tagLat=%.0fcyc hbm=%.1fGB/s offpkg=%.1fGB/s",
		r.Scheme, r.Workload, r.IPC, r.AvgDCAccessTime, 100*r.OSStallRatio,
		r.AvgTagMgmtLatency, r.HBMGBs, r.OffPkgGBs)
}

// result derives the ROI Result from the registry snapshot. Absent metrics
// (a scheme without a front-end, say) read as zero, which keeps the
// computation scheme-agnostic except where the paper's definitions differ.
func (m *Machine) result(snap *metrics.Snapshot) *Result {
	r := &Result{Scheme: m.cfg.Scheme, Workload: m.workload, Cores: len(m.cores), Metrics: snap}

	cycles := snap.Cycles
	r.Cycles = cycles
	r.Seconds = float64(cycles) / ClockHz

	var osStall, memStall uint64
	for i := range m.cores {
		p := fmt.Sprintf("core.%d", i)
		r.Instructions += snap.Counter(p + ".instructions")
		osStall += snap.Counter(p + ".os_blocked_cycles")
		memStall += snap.Counter(p + ".mem_stall_cycles")
		r.CPIStack.Compute += snap.Counter(p + ".cpi.compute")
		r.CPIStack.TagMiss += snap.Counter(p + ".cpi.tag_miss")
		r.CPIStack.Frontend += snap.Counter(p + ".cpi.frontend")
		for c := mem.StallCause(0); c < mem.NumStallCauses; c++ {
			r.CPIStack.Mem[c] += snap.Counter(p + ".cpi.mem." + c.String())
		}
	}
	r.Trace = m.reg.Dump()
	totalCoreCycles := cycles * uint64(len(m.cores))
	if cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(cycles)
		r.OSStallRatio = float64(osStall) / float64(totalCoreCycles)
		r.MemStallRatio = float64(memStall) / float64(totalCoreCycles)
	}

	// LLC.
	r.LLCMisses = snap.Counter("cache.llc.misses")
	if r.Seconds > 0 {
		r.LLCMPMS = float64(r.LLCMisses) / (r.Seconds * 1e6)
	}

	// DRAM devices.
	for k := 0; k < mem.NumKinds; k++ {
		kind := mem.Kind(k).String()
		r.HBMBytesByKind[k] = snap.Counter("hbm.bytes." + kind)
		r.DDRBytesByKind[k] = snap.Counter("ddr.bytes." + kind)
	}
	hbmBursts := snap.Counter("hbm.row_hits") + snap.Counter("hbm.row_misses") + snap.Counter("hbm.row_conflicts")
	if hbmBursts > 0 {
		r.HBMRowHitRate = float64(snap.Counter("hbm.row_hits")) / float64(hbmBursts)
	}
	if cycles > 0 {
		r.HBMUtilization = float64(snap.Counter("hbm.bus_busy_cycles")) /
			float64(cycles*uint64(m.cfg.HBM.Channels))
		r.DDRUtilization = float64(snap.Counter("ddr.bus_busy_cycles")) /
			float64(cycles*uint64(m.cfg.DDR.Channels))
	}
	if r.Seconds > 0 {
		r.HBMGBs = float64(sumBytes(r.HBMBytesByKind)) / r.Seconds / 1e9
		r.OffPkgGBs = float64(sumBytes(r.DDRBytesByKind)) / r.Seconds / 1e9
	}
	r.HBMAvgReadLat = diffAvg(snap.Counter("hbm.read_latency_sum"), snap.Counter("hbm.read_count"))
	r.DDRAvgReadLat = diffAvg(snap.Counter("ddr.read_latency_sum"), snap.Counter("ddr.read_count"))

	// Post-LLC access path (uniform across schemes).
	r.AvgDCAccessTime = diffAvg(snap.Counter("scheme.read_latency_sum"), snap.Counter("scheme.reads"))

	// Scheme-specific measures.
	switch m.cfg.Scheme {
	case SchemeTDC, SchemeNOMAD:
		r.TagMisses = snap.Counter("frontend.tag_misses")
		r.AvgTagMgmtLatency = diffAvg(snap.Counter("frontend.tag_mgmt_latency_sum"), r.TagMisses)
		//nomadlint:ignore floatclock -- gauge snapshots are float-typed; the max latency is an exact integer well below 2^53
		r.MaxTagMgmtLatency = uint64(snap.Gauge("frontend.tag_mgmt_latency_max"))
		r.Evictions = snap.Counter("frontend.evictions")
		r.DirtyEvictions = snap.Counter("frontend.dirty_evictions")
	case SchemeIdeal:
		r.TagMisses = snap.Counter("scheme.tag_misses")
		if r.Seconds > 0 {
			r.RMHBGBs = float64(snap.Counter("scheme.would_fill_bytes")) / r.Seconds / 1e9
		}
	}
	if m.cfg.Scheme == SchemeNOMAD {
		r.DataHits = snap.Counter("backend.data_hits")
		r.DataMisses = snap.Counter("backend.data_misses")
		if r.DataMisses > 0 {
			r.BufferHitRate = float64(snap.Counter("backend.buffer_hits")) / float64(r.DataMisses)
		}
		r.SubEntryOverflows = snap.Counter("backend.sub_entry_overflows")
	}
	if m.cfg.Scheme != SchemeIdeal && r.Seconds > 0 {
		// Measured miss-handling bandwidth: fill reads from off-package
		// memory.
		r.RMHBGBs = float64(r.DDRBytesByKind[mem.KindFill]) / r.Seconds / 1e9
	}
	return r
}

func sumBytes(b [mem.NumKinds]uint64) uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

func diffAvg(sum, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
