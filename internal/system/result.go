package system

import (
	"fmt"

	"nomad/internal/cache"
	"nomad/internal/core"
	"nomad/internal/cpu"
	"nomad/internal/dram"
	"nomad/internal/mem"
	"nomad/internal/schemes"
)

// Result is the measured region-of-interest outcome of one run. All rates
// use the 3.2 GHz clock.
type Result struct {
	Scheme   SchemeName
	Workload string
	Cores    int

	Cycles       uint64
	Instructions uint64
	Seconds      float64

	// IPC is system throughput (retired instructions per cycle, summed
	// over cores). Figures normalize it, so the convention cancels.
	IPC float64

	// OSStallRatio is the average fraction of cycles threads were
	// suspended by OS routines (Fig. 11's "application stall cycles").
	OSStallRatio  float64
	MemStallRatio float64

	// AvgDCAccessTime is the mean post-LLC read latency in CPU cycles,
	// measured at the DC controller (Fig. 9, right axis).
	AvgDCAccessTime float64

	LLCMisses uint64
	// LLCMPMS is LLC misses per microsecond (Table I).
	LLCMPMS float64

	// HBMBytesByKind breaks on-package traffic into demand / metadata /
	// fill / writeback (Fig. 10, left axis); HBMRowHitRate is its right
	// axis. HBMUtilization is bus-busy fraction.
	HBMBytesByKind [mem.NumKinds]uint64
	HBMRowHitRate  float64
	HBMUtilization float64
	HBMGBs         float64

	// HBMAvgReadLat / DDRAvgReadLat are device-level mean read latencies
	// (arrival to data), exposing queueing behaviour.
	HBMAvgReadLat float64
	DDRAvgReadLat float64

	DDRBytesByKind [mem.NumKinds]uint64
	DDRUtilization float64
	// OffPkgGBs is total off-package bandwidth consumption (Fig. 12).
	OffPkgGBs float64

	// RMHBGBs is the required miss-handling bandwidth (Table I): for the
	// Ideal scheme the fills that would have been needed; for real
	// schemes the fill traffic actually read from off-package memory.
	RMHBGBs float64

	// Tag management (OS-managed schemes; Figs. 11/14/15/16).
	TagMisses         uint64
	AvgTagMgmtLatency float64
	MaxTagMgmtLatency uint64

	// NOMAD back-end behaviour (§IV-B.5: the paper reports 91.6% of data
	// misses hitting page copy buffers).
	DataHits          uint64
	DataMisses        uint64
	BufferHitRate     float64
	SubEntryOverflows uint64

	Evictions      uint64
	DirtyEvictions uint64
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f dcAccess=%.1fcyc stall=%.1f%% tagLat=%.0fcyc hbm=%.1fGB/s offpkg=%.1fGB/s",
		r.Scheme, r.Workload, r.IPC, r.AvgDCAccessTime, 100*r.OSStallRatio,
		r.AvgTagMgmtLatency, r.HBMGBs, r.OffPkgGBs)
}

// snapshot captures all counters at the warmup/ROI boundary so the Result
// reflects only the measured region.
type snapshot struct {
	cores          []cpu.Stats
	hbm            dram.Stats
	ddr            dram.Stats
	llc            cache.Stats
	access         schemes.AccessStats
	frontend       core.FrontendStats
	backend        core.BackendStats
	tid            schemes.TiDStats
	idealFill      uint64
	idealTagMisses uint64
}

func (m *Machine) snapshot() snapshot {
	s := snapshot{
		cores: make([]cpu.Stats, len(m.cores)),
		hbm:   *m.hbm.Stats(),
		ddr:   *m.ddr.Stats(),
		llc:   *m.llc.Stats(),
	}
	for i, c := range m.cores {
		s.cores[i] = *c.Stats()
	}
	switch sc := m.scheme.(type) {
	case *schemes.Baseline:
		s.access = *sc.AccessStats()
	case *schemes.TiD:
		s.access = *sc.AccessStats()
		s.tid = *sc.TiDStats()
	case *schemes.TDC:
		s.access = *sc.AccessStats()
		s.frontend = *sc.Frontend().Stats()
	case *schemes.NOMAD:
		s.access = *sc.AccessStats()
		s.frontend = *sc.Frontend().Stats()
		s.backend = *sc.Backend().Stats()
	case *schemes.Ideal:
		s.access = *sc.AccessStats()
		s.idealFill = sc.WouldFillBytes
		s.idealTagMisses = sc.TagMisses
	}
	return s
}

func sumBytes(b [mem.NumKinds]uint64) uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// result computes the ROI Result as the difference against the snapshot.
func (m *Machine) result(s snapshot) *Result {
	r := &Result{Scheme: m.cfg.Scheme, Workload: m.workload, Cores: len(m.cores)}

	cycles := m.cores[0].Stats().Cycles - s.cores[0].Cycles
	r.Cycles = cycles
	r.Seconds = float64(cycles) / ClockHz

	var osStall, memStall uint64
	for i, c := range m.cores {
		cs := c.Stats()
		r.Instructions += cs.Instructions - s.cores[i].Instructions
		osStall += cs.OSBlockedCycles - s.cores[i].OSBlockedCycles
		memStall += cs.MemStallCycles - s.cores[i].MemStallCycles
	}
	totalCoreCycles := cycles * uint64(len(m.cores))
	if cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(cycles)
		r.OSStallRatio = float64(osStall) / float64(totalCoreCycles)
		r.MemStallRatio = float64(memStall) / float64(totalCoreCycles)
	}

	// LLC.
	llc := m.llc.Stats()
	r.LLCMisses = llc.Misses - s.llc.Misses
	if r.Seconds > 0 {
		r.LLCMPMS = float64(r.LLCMisses) / (r.Seconds * 1e6)
	}

	// DRAM devices.
	hbm, ddr := m.hbm.Stats(), m.ddr.Stats()
	for k := 0; k < mem.NumKinds; k++ {
		r.HBMBytesByKind[k] = hbm.BytesByKind[k] - s.hbm.BytesByKind[k]
		r.DDRBytesByKind[k] = ddr.BytesByKind[k] - s.ddr.BytesByKind[k]
	}
	hbmBursts := (hbm.RowHits + hbm.RowMisses + hbm.RowConflicts) -
		(s.hbm.RowHits + s.hbm.RowMisses + s.hbm.RowConflicts)
	if hbmBursts > 0 {
		r.HBMRowHitRate = float64(hbm.RowHits-s.hbm.RowHits) / float64(hbmBursts)
	}
	if cycles > 0 {
		r.HBMUtilization = float64(hbm.BusBusyCycles-s.hbm.BusBusyCycles) /
			float64(cycles*uint64(m.cfg.HBM.Channels))
		r.DDRUtilization = float64(ddr.BusBusyCycles-s.ddr.BusBusyCycles) /
			float64(cycles*uint64(m.cfg.DDR.Channels))
	}
	if r.Seconds > 0 {
		r.HBMGBs = float64(sumBytes(r.HBMBytesByKind)) / r.Seconds / 1e9
		r.OffPkgGBs = float64(sumBytes(r.DDRBytesByKind)) / r.Seconds / 1e9
	}
	r.HBMAvgReadLat = diffAvg(hbm.ReadLatencySum-s.hbm.ReadLatencySum, hbm.ReadCount-s.hbm.ReadCount)
	r.DDRAvgReadLat = diffAvg(ddr.ReadLatencySum-s.ddr.ReadLatencySum, ddr.ReadCount-s.ddr.ReadCount)

	// Scheme-specific measures.
	switch sc := m.scheme.(type) {
	case *schemes.Baseline:
		a := *sc.AccessStats()
		r.AvgDCAccessTime = diffAvg(a.ReadLatencySum-s.access.ReadLatencySum, a.Reads-s.access.Reads)
	case *schemes.TiD:
		a := *sc.AccessStats()
		r.AvgDCAccessTime = diffAvg(a.ReadLatencySum-s.access.ReadLatencySum, a.Reads-s.access.Reads)
	case *schemes.TDC:
		a := *sc.AccessStats()
		r.AvgDCAccessTime = diffAvg(a.ReadLatencySum-s.access.ReadLatencySum, a.Reads-s.access.Reads)
		f := *sc.Frontend().Stats()
		r.TagMisses = f.TagMisses - s.frontend.TagMisses
		r.AvgTagMgmtLatency = diffAvg(f.TagMgmtLatencySum-s.frontend.TagMgmtLatencySum, r.TagMisses)
		r.MaxTagMgmtLatency = f.TagMgmtLatencyMax
		r.Evictions = f.Evictions - s.frontend.Evictions
		r.DirtyEvictions = f.DirtyEvictions - s.frontend.DirtyEvictions
	case *schemes.NOMAD:
		a := *sc.AccessStats()
		r.AvgDCAccessTime = diffAvg(a.ReadLatencySum-s.access.ReadLatencySum, a.Reads-s.access.Reads)
		f := *sc.Frontend().Stats()
		r.TagMisses = f.TagMisses - s.frontend.TagMisses
		r.AvgTagMgmtLatency = diffAvg(f.TagMgmtLatencySum-s.frontend.TagMgmtLatencySum, r.TagMisses)
		r.MaxTagMgmtLatency = f.TagMgmtLatencyMax
		r.Evictions = f.Evictions - s.frontend.Evictions
		r.DirtyEvictions = f.DirtyEvictions - s.frontend.DirtyEvictions
		b := *sc.Backend().Stats()
		r.DataHits = b.DataHits - s.backend.DataHits
		r.DataMisses = b.DataMisses - s.backend.DataMisses
		if r.DataMisses > 0 {
			r.BufferHitRate = float64(b.BufferHits-s.backend.BufferHits) / float64(r.DataMisses)
		}
		r.SubEntryOverflows = b.SubEntryOverflows - s.backend.SubEntryOverflows
	case *schemes.Ideal:
		a := *sc.AccessStats()
		r.AvgDCAccessTime = diffAvg(a.ReadLatencySum-s.access.ReadLatencySum, a.Reads-s.access.Reads)
		r.TagMisses = sc.TagMisses - s.idealTagMisses
		if r.Seconds > 0 {
			r.RMHBGBs = float64(sc.WouldFillBytes-s.idealFill) / r.Seconds / 1e9
		}
	}
	if m.cfg.Scheme != SchemeIdeal && r.Seconds > 0 {
		// Measured miss-handling bandwidth: fill reads from off-package
		// memory.
		r.RMHBGBs = float64(r.DDRBytesByKind[mem.KindFill]) / r.Seconds / 1e9
	}
	return r
}

func diffAvg(sum, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
