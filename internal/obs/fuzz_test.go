package obs

import (
	"strings"
	"testing"
)

// FuzzValidateExposition feeds arbitrary documents to the exposition
// validator. The properties under test: it never panics, and it is
// deterministic — the same document always yields the same verdict and the
// same error text (the validator is part of CI, where a flaky answer would
// make runs irreproducible).
func FuzzValidateExposition(f *testing.F) {
	f.Add("")
	f.Add("# HELP a b\n# TYPE a counter\na 1\n")
	f.Add("# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 4\nh_count 3\n")
	f.Add("# TYPE a counter\n# TYPE a counter\na 1\n")
	f.Add("a{label=\"v\\\"quoted\\\"\"} 1e9\n")
	f.Add("no trailing newline 1")
	f.Add("# malformed comment\n")
	f.Add("sim_cycles 100\nsim_cycles 100\n")
	f.Add(strings.Repeat("x 1\n", 100))

	f.Fuzz(func(t *testing.T, doc string) {
		err1 := ValidateExposition(strings.NewReader(doc))
		err2 := ValidateExposition(strings.NewReader(doc))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("verdict not deterministic: %v vs %v", err1, err2)
		}
		if err1 != nil && err1.Error() != err2.Error() {
			t.Fatalf("error text not deterministic: %q vs %q", err1, err2)
		}
	})
}
