package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"sort"
	"strings"

	"nomad/internal/metrics"
)

// Prometheus text exposition (version 0.0.4) for the tracker: process-level
// gauges, per-run progress, and each active run's latest registry snapshot
// mapped as labeled families — counters under nomad_sim_counter_total,
// gauges under nomad_sim_gauge, and log2 histograms as cumulative
// nomad_sim_histogram_{bucket,sum,count} with le upper bounds from the
// bucket boundaries.

// expWriter accumulates one exposition document, grouping samples by family
// so every family is declared once and listed contiguously (the format
// forbids interleaving).
type expWriter struct {
	w   io.Writer
	err error
}

func (e *expWriter) family(name, typ, help string) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
}

func (e *expWriter) sample(name, labels string, v float64) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, "%s%s %g\n", name, labels, v)
	}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func labels(kv ...string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, kv[i], escapeLabel(kv[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// writeExposition renders the full /metrics document for the tracker.
func writeExposition(w io.Writer, t *RunTracker) error {
	e := &expWriter{w: w}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.family("nomad_host_heap_inuse_bytes", "gauge", "Go heap in use by this process.")
	e.sample("nomad_host_heap_inuse_bytes", "", float64(ms.HeapInuse))
	e.family("nomad_host_goroutines", "gauge", "Goroutines in this process.")
	e.sample("nomad_host_goroutines", "", float64(runtime.NumGoroutine()))
	e.family("nomad_host_gc_cycles_total", "counter", "Completed GC cycles since process start.")
	e.sample("nomad_host_gc_cycles_total", "", float64(ms.NumGC))
	e.family("nomad_host_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	e.sample("nomad_host_gc_pause_seconds_total", "", float64(ms.PauseTotalNs)/1e9)

	active, completed := t.Counts()
	e.family("nomad_runs_active", "gauge", "Simulations currently running.")
	e.sample("nomad_runs_active", "", float64(active))
	e.family("nomad_runs_completed_total", "counter", "Simulations finished since the tracker started.")
	e.sample("nomad_runs_completed_total", "", float64(completed))

	statuses := t.Statuses()
	type liveRun struct {
		st   RunStatus
		snap *metrics.Snapshot
	}
	var runs []liveRun
	for _, st := range statuses {
		runs = append(runs, liveRun{st: st, snap: t.Handle(st.Key).latest()})
	}

	e.family("nomad_run_progress", "gauge", "Current phase completion fraction of each run.")
	for _, r := range runs {
		e.sample("nomad_run_progress", labels("run", r.st.Key, "phase", r.st.Phase), r.st.Fraction)
	}
	e.family("nomad_run_cycle", "gauge", "Current simulated cycle of each run.")
	for _, r := range runs {
		e.sample("nomad_run_cycle", labels("run", r.st.Key), float64(r.st.Cycle))
	}
	e.family("nomad_run_cycles_per_sec", "gauge", "Simulated-cycle throughput of each run over the last snapshot window.")
	for _, r := range runs {
		if r.st.CyclesPerSec > 0 {
			e.sample("nomad_run_cycles_per_sec", labels("run", r.st.Key), r.st.CyclesPerSec)
		}
	}

	// Registry families. Metric names keep their dotted registry form as a
	// label value (the stable public names from DESIGN.md) rather than being
	// mangled into the sample name.
	e.family("nomad_sim_counter_total", "counter", "Registry counters of active runs (ROI delta), by dotted metric name.")
	for _, r := range runs {
		if r.snap == nil {
			continue
		}
		for _, name := range sortedKeys(r.snap.Counters) {
			e.sample("nomad_sim_counter_total", labels("run", r.st.Key, "metric", name), float64(r.snap.Counters[name]))
		}
	}
	e.family("nomad_sim_gauge", "gauge", "Registry gauges of active runs, by dotted metric name.")
	for _, r := range runs {
		if r.snap == nil {
			continue
		}
		for _, name := range sortedKeys(r.snap.Gauges) {
			e.sample("nomad_sim_gauge", labels("run", r.st.Key, "metric", name), r.snap.Gauges[name])
		}
	}
	e.family("nomad_sim_histogram", "histogram", "Registry log2-bucket histograms of active runs (ROI delta), by dotted metric name.")
	for _, r := range runs {
		if r.snap == nil {
			continue
		}
		for _, name := range sortedKeys(r.snap.Histograms) {
			h := r.snap.Histograms[name]
			var cum uint64
			for _, b := range h.Buckets {
				cum += b.Count
				e.sample("nomad_sim_histogram_bucket",
					labels("run", r.st.Key, "metric", name, "le", fmt.Sprint(b.Hi)), float64(cum))
			}
			e.sample("nomad_sim_histogram_bucket",
				labels("run", r.st.Key, "metric", name, "le", "+Inf"), float64(h.Count))
			e.sample("nomad_sim_histogram_sum", labels("run", r.st.Key, "metric", name), float64(h.Sum))
			e.sample("nomad_sim_histogram_count", labels("run", r.st.Key, "metric", name), float64(h.Count))
		}
	}
	return e.err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sample and comment line shapes of the text exposition format. The value
// grammar accepts decimal/scientific floats, +/-Inf, and NaN.
var (
	sampleLine = regexp.MustCompile(
		`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*",?)*\})? ` +
			`(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)( [0-9]+)?$`)
	helpLine = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeLine = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	nameOf   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
)

// leLabel extracts a _bucket sample's le label value.
var leLabel = regexp.MustCompile(`le="((\\\\|\\"|\\n|[^"\\])*)"`)

// ValidateExposition checks that r is a well-formed Prometheus text
// exposition document: every line is a HELP/TYPE comment or a sample
// matching the format's grammar, every family is declared with TYPE at most
// once and before its samples (histogram samples may use the
// _bucket/_sum/_count suffixes of a declared histogram), every histogram
// family with buckets includes the mandatory le="+Inf" bucket, and at least
// one sample is present. CI and the package tests run it against the live
// /metrics output.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	declared := map[string]string{}
	// bucketFams tracks histogram families that emitted _bucket samples and
	// whether the mandatory +Inf bucket has been seen yet.
	bucketFams := map[string]bool{}
	samples := 0
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		switch {
		case text == "":
		case strings.HasPrefix(text, "#"):
			if m := typeLine.FindStringSubmatch(text); m != nil {
				if _, dup := declared[m[1]]; dup {
					return fmt.Errorf("exposition line %d: duplicate TYPE declaration for %q", line, m[1])
				}
				declared[m[1]] = m[2]
			} else if !helpLine.MatchString(text) {
				return fmt.Errorf("exposition line %d: malformed comment %q", line, text)
			}
		case sampleLine.MatchString(text):
			name := nameOf.FindString(text)
			if !familyDeclared(declared, name) {
				return fmt.Errorf("exposition line %d: sample %q has no preceding TYPE declaration", line, name)
			}
			if base, ok := strings.CutSuffix(name, "_bucket"); ok && declared[base] == "histogram" {
				inf := bucketFams[base]
				if m := leLabel.FindStringSubmatch(text); m != nil && m[1] == "+Inf" {
					inf = true
				}
				bucketFams[base] = inf
			}
			samples++
		default:
			return fmt.Errorf("exposition line %d: malformed sample %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition has no samples")
	}
	var missingInf []string
	for fam, inf := range bucketFams {
		if !inf {
			missingInf = append(missingInf, fam)
		}
	}
	if len(missingInf) > 0 {
		sort.Strings(missingInf)
		return fmt.Errorf("exposition histogram families missing the mandatory le=\"+Inf\" bucket: %s",
			strings.Join(missingInf, ", "))
	}
	return nil
}

// familyDeclared resolves a sample name to a declared family, accepting the
// histogram/summary child suffixes.
func familyDeclared(declared map[string]string, name string) bool {
	if _, ok := declared[name]; ok {
		return true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if typ := declared[base]; typ == "histogram" || typ == "summary" {
			return true
		}
	}
	return false
}
