package obs

import (
	"fmt"
	"testing"
)

// TestTrackerEviction: completed runs beyond the retention bound are evicted
// oldest-first, active runs are never evicted, and Counts stays consistent
// (active by explicit counter, completed cumulative across evictions).
func TestTrackerEviction(t *testing.T) {
	tr := NewRunTracker()
	tr.SetRetention(3)
	live := tr.Start("live", nil)
	for i := 0; i < 10; i++ {
		tr.Start(fmt.Sprintf("r%d", i), nil).Finish()
	}
	if active, completed := tr.Counts(); active != 1 || completed != 10 {
		t.Fatalf("Counts() = (%d, %d), want (1, 10)", active, completed)
	}
	st := tr.Statuses()
	var keys []string
	for _, s := range st {
		keys = append(keys, s.Key)
	}
	want := []string{"live", "r7", "r8", "r9"}
	if len(keys) != len(want) {
		t.Fatalf("retained keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("retained keys = %v, want %v", keys, want)
		}
	}
	if tr.Handle("r0") != nil {
		t.Error("evicted run still addressable")
	}
	if tr.Handle("live") == nil {
		t.Error("active run evicted")
	}
	live.Finish()
	if active, completed := tr.Counts(); active != 0 || completed != 11 {
		t.Fatalf("Counts() after final Finish = (%d, %d), want (0, 11)", active, completed)
	}
}

// TestTrackerDoubleFinish: repeated Finish calls must not double-count or
// underflow the active counter.
func TestTrackerDoubleFinish(t *testing.T) {
	tr := NewRunTracker()
	h := tr.Start("a", nil)
	h.Finish()
	h.Finish()
	if active, completed := tr.Counts(); active != 0 || completed != 1 {
		t.Fatalf("Counts() = (%d, %d), want (0, 1)", active, completed)
	}
	b := tr.Start("b", nil)
	if active, _ := tr.Counts(); active != 1 {
		t.Fatalf("active = %d after new Start, want 1", active)
	}
	b.Finish()
	if active, completed := tr.Counts(); active != 0 || completed != 2 {
		t.Fatalf("Counts() = (%d, %d), want (0, 2)", active, completed)
	}
}

// TestTrackerRetentionTightening: lowering the bound evicts immediately, and
// a negative bound disables eviction.
func TestTrackerRetentionTightening(t *testing.T) {
	tr := NewRunTracker()
	tr.SetRetention(-1)
	for i := 0; i < 5; i++ {
		tr.Start(fmt.Sprintf("r%d", i), nil).Finish()
	}
	if got := len(tr.Statuses()); got != 5 {
		t.Fatalf("unlimited retention kept %d runs, want 5", got)
	}
	tr.SetRetention(1)
	st := tr.Statuses()
	if len(st) != 1 || st[0].Key != "r4" {
		t.Fatalf("tightened retention kept %+v, want just r4", st)
	}
	if _, completed := tr.Counts(); completed != 5 {
		t.Fatalf("completed = %d after eviction, want cumulative 5", completed)
	}
}

// TestTrackerDefaultRetentionBounded: the zero-config tracker must not grow
// without bound as a long-lived server registers runs.
func TestTrackerDefaultRetentionBounded(t *testing.T) {
	tr := NewRunTracker()
	for i := 0; i < DefaultCompletedRetention*2; i++ {
		tr.Start(fmt.Sprintf("r%d", i), nil).Finish()
	}
	if got := len(tr.Statuses()); got != DefaultCompletedRetention {
		t.Fatalf("default tracker retains %d completed runs, want %d", got, DefaultCompletedRetention)
	}
}
