// Package obs is the host-side observability layer: content-addressed run
// manifests, a live tracker of in-flight simulations, and an opt-in HTTP
// introspection server (Prometheus /metrics, /runs, SSE timelines, pprof).
//
// Everything in this package reads the wall clock, allocates freely, and
// serves concurrent HTTP requests — the exact opposites of the model
// packages' determinism contract. The boundary is therefore one-way and
// machine-enforced: obs may import model packages (system, metrics,
// workload) to observe them, but no model package may import obs (the
// nomadlint "obsboundary" rule). Observation never feeds back into
// simulation state; a metrics Snapshot marshals byte-identically whether or
// not a tracker or server is attached.
package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"runtime/debug"
	"sync"

	"nomad/internal/system"
	"nomad/internal/workload"
)

// Manifest is one run's content address: because same-seed simulations are
// byte-identical, a result is fully determined by (resolved config, workload,
// code version), and Address is the SHA-256 over exactly that triple. Two
// processes given the same config and seed on the same build compute the same
// address without running anything — the key a content-addressed result
// cache (ROADMAP: simulation-as-a-service) stores results under.
//
// Host-only knobs that provably do not change results are excluded from the
// hash: Engine, FastForward, and Workers (byte-identity across engines,
// fast-forward modes, and parallel worker counts is the engine's
// load-bearing contract) and SelfProfile (host profiling never touches the
// snapshot). Everything else in system.Config participates, including knobs
// like TraceDepth or Timeline that change which sections a Snapshot carries.
type Manifest struct {
	// Address is "sha256:<hex>" over the canonical config/workload/build
	// JSON (see Canonical).
	Address string `json:"address"`
	// Scheme/Workload/Seed duplicate the config fields a human wants first.
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	// Build stamps the code version the address is relative to.
	Build BuildStamp `json:"build"`

	canonical []byte
}

// BuildStamp identifies the module build a manifest was computed by, from
// runtime/debug.ReadBuildInfo. Test binaries and plain `go build` outside a
// VCS checkout have empty revision fields; the stamp (and so the address)
// is still stable within one build.
type BuildStamp struct {
	Module  string `json:"module,omitempty"`
	Version string `json:"version,omitempty"`
	// Revision/Time/Modified are the vcs.* build settings when present.
	// A modified ("dirty") build hashes like its base revision; the flag
	// is recorded so such addresses are recognizably weaker.
	Revision string `json:"vcs_revision,omitempty"`
	Time     string `json:"vcs_time,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
	// GoVersion is informational only and excluded from the address:
	// determinism is a property of the model code, not the toolchain.
	GoVersion string `json:"go_version,omitempty"`
}

// hashedStamp is the BuildStamp subset that participates in the address.
type hashedStamp struct {
	Module   string `json:"module,omitempty"`
	Version  string `json:"version,omitempty"`
	Revision string `json:"vcs_revision,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
}

// canonicalDoc is the exact document the address hashes.
type canonicalDoc struct {
	Config   system.Config `json:"config"`
	Workload workload.Spec `json:"workload"`
	Build    hashedStamp   `json:"build"`
}

var (
	stampOnce sync.Once
	stamp     BuildStamp
)

// buildStamp reads (once) and returns the process build stamp.
func buildStamp() BuildStamp {
	stampOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		stamp.Module = bi.Main.Path
		stamp.Version = bi.Main.Version
		stamp.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				stamp.Revision = s.Value
			case "vcs.time":
				stamp.Time = s.Value
			case "vcs.modified":
				stamp.Modified = s.Value == "true"
			}
		}
	})
	return stamp
}

// NewManifest computes the manifest of one run from its resolved
// configuration and workload. It never runs a simulation; call it before,
// after, or instead of one.
func NewManifest(cfg system.Config, spec workload.Spec) *Manifest {
	// Zero the result-neutral knobs so equivalent runs collide on purpose:
	// wheel-vs-heap, fast-forward on/off, profiling on/off, and the parallel
	// worker count all produce byte-identical snapshots.
	cfg.Engine = ""
	cfg.FastForward = false
	cfg.SelfProfile = false
	cfg.Workers = 0
	st := buildStamp()
	doc, err := json.Marshal(canonicalDoc{
		Config:   cfg,
		Workload: spec,
		Build:    hashedStamp{Module: st.Module, Version: st.Version, Revision: st.Revision, Modified: st.Modified},
	})
	if err != nil {
		// system.Config and workload.Spec are plain data; Marshal cannot
		// fail on them. Guard anyway so a future unmarshalable field shows
		// up as a distinctive address rather than a panic.
		doc = []byte("unmarshalable:" + err.Error())
	}
	sum := sha256.Sum256(doc)
	return &Manifest{
		Address:   "sha256:" + hex.EncodeToString(sum[:]),
		Scheme:    string(cfg.Scheme),
		Workload:  spec.Abbr,
		Seed:      cfg.Seed,
		Build:     st,
		canonical: doc,
	}
}

// Canonical returns the exact JSON document Address is the SHA-256 of
// (debugging, cache implementations).
func (m *Manifest) Canonical() []byte {
	if m == nil {
		return nil
	}
	return m.canonical
}
