package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// sseKeepalivePeriod spaces the ": keepalive" comment frames an idle SSE
// stream emits so proxies and clients can tell a quiet run from a dead
// connection. A variable (not const) so tests can shrink it.
var sseKeepalivePeriod = 15 * time.Second

// Server is the opt-in HTTP introspection endpoint (-http on the CLIs):
//
//	/metrics              Prometheus text exposition (registry + host stats)
//	/runs                 JSON statuses of tracked runs
//	/runs/{key}/timeline  SSE stream of the run's interval timeline rows
//	/debug/pprof/...      standard net/http/pprof handlers
//
// It reads only the tracker's published copies, never live simulation
// state, so serving cannot perturb a run.
type Server struct {
	tracker *RunTracker
	mux     *http.ServeMux
}

// NewServer builds a server over the tracker.
func NewServer(t *RunTracker) *Server {
	s := &Server{tracker: t, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.metrics)
	s.mux.HandleFunc("/runs", s.runs)
	// Run keys contain slashes (e.g. "NOMAD/cact"), so the per-run routes
	// are parsed by hand rather than with a {key} pattern (which would stop
	// at the first slash).
	s.mux.HandleFunc("/runs/", s.runSub)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/", s.index)
	return s
}

// Handler returns the server's route table (tests, embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (":6060", "127.0.0.1:0", ...) and serves in a
// background goroutine, returning the bound address. Serve errors after a
// successful bind are reported through errf (nil discards them).
func (s *Server) Start(addr string, errf func(error)) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := http.Serve(ln, s.mux); err != nil && errf != nil {
			errf(err)
		}
	}()
	return ln.Addr(), nil
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "nomad introspection server\n\n"+
		"/metrics              Prometheus text exposition\n"+
		"/runs                 run statuses (JSON)\n"+
		"/runs/{key}/timeline  live interval timeline (SSE)\n"+
		"/runs/{key}/digests   interval digest chain (JSON)\n"+
		"/debug/pprof/         Go profiling\n")
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = writeExposition(w, s.tracker)
}

func (s *Server) runs(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	statuses := s.tracker.Statuses()
	if statuses == nil {
		statuses = []RunStatus{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(statuses)
}

// runSub dispatches the per-run routes: /runs/{key}/timeline and
// /runs/{key}/digests, where {key} itself contains slashes.
func (s *Server) runSub(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/runs/")
	if key, ok := strings.CutSuffix(rest, "/timeline"); ok && key != "" {
		s.timeline(w, r, key)
		return
	}
	if key, ok := strings.CutSuffix(rest, "/digests"); ok && key != "" {
		s.digests(w, r, key)
		return
	}
	http.NotFound(w, r)
}

// digests serves /runs/{key}/digests: the run's interval digest chain as
// JSON, from the latest published snapshot. 404 until the run has published
// a snapshot carrying digests (digest capture off, or no tick yet).
func (s *Server) digests(w http.ResponseWriter, r *http.Request, key string) {
	h := s.tracker.Handle(key)
	if h == nil {
		http.Error(w, fmt.Sprintf("unknown run %q", key), http.StatusNotFound)
		return
	}
	snap := h.latest()
	if snap == nil || snap.Digests == nil {
		http.Error(w, fmt.Sprintf("run %q has no digest chain (enable -digests, or wait for the first interval)", key),
			http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap.Digests)
}

// timeline serves /runs/{key}/timeline as Server-Sent Events: one
// "data: {json TimelineRow}" event per interval window, history first, then
// live rows until the run finishes or the client disconnects. Idle streams
// carry ": keepalive" comment frames every sseKeepalivePeriod.
func (s *Server) timeline(w http.ResponseWriter, r *http.Request, key string) {
	h := s.tracker.Handle(key)
	if h == nil {
		http.Error(w, fmt.Sprintf("unknown run %q", key), http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	history, live, cancel := h.Subscribe()
	defer cancel()
	emit := func(row TimelineRow) bool {
		data, err := json.Marshal(row)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, row := range history {
		if r.Context().Err() != nil {
			return
		}
		if !emit(row) {
			return
		}
	}
	keepalive := time.NewTicker(sseKeepalivePeriod)
	defer keepalive.Stop()
	for {
		select {
		case row, ok := <-live:
			if !ok {
				return
			}
			if !emit(row) {
				return
			}
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
