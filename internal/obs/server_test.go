package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nomad/internal/metrics"
	"nomad/internal/system"
)

// observedConfig enables every capture surface so the byte-identity test
// covers Snapshot, Timeline, and Perfetto output at once.
func observedConfig() system.Config {
	cfg := testConfig()
	cfg.Timeline = true
	cfg.Interval = 10_000
	cfg.TraceDepth = 1 << 12
	cfg.SpanDepth = 1 << 10
	return cfg
}

// runMachine runs one machine, optionally observed through a tracker
// handle, and returns its snapshot and Perfetto bytes.
func runMachine(t *testing.T, h *RunHandle) (snapJSON, perfetto []byte) {
	t.Helper()
	m, err := system.New(observedConfig(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if h != nil {
		reg := m.Metrics()
		m.SetProgress(func(p system.Progress) { h.Observe(p, reg) })
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	snapJSON, err = json.Marshal(res.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := metrics.WritePerfetto(&buf, metrics.PerfettoRun{Name: "obs/ts", Dump: res.Trace}); err != nil {
		t.Fatal(err)
	}
	return snapJSON, buf.Bytes()
}

// TestSnapshotByteIdenticalWithServer is the non-perturbation contract: a
// run observed by the tracker — with an introspection server being scraped
// and an SSE subscriber attached while it runs — produces byte-identical
// Snapshot, Timeline, and Perfetto output to an unobserved run.
func TestSnapshotByteIdenticalWithServer(t *testing.T) {
	plainSnap, plainTrace := runMachine(t, nil)

	tracker := NewRunTracker()
	srv := httptest.NewServer(NewServer(tracker).Handler())
	defer srv.Close()
	h := tracker.Start("obs/ts", NewManifest(observedConfig(), testSpec()))

	// Scrape /metrics and /runs continuously while the observed run is in
	// flight, and hold an SSE timeline subscription open.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			for _, p := range []string{"/metrics", "/runs"} {
				resp, err := http.Get(srv.URL + p)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/runs/obs/ts/timeline", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	obsSnap, obsTrace := runMachine(t, h)
	h.Finish()
	cancel()
	wg.Wait()

	if !bytes.Equal(plainSnap, obsSnap) {
		t.Error("snapshot JSON differs between observed and unobserved runs")
	}
	if !bytes.Equal(plainTrace, obsTrace) {
		t.Error("Perfetto bytes differ between observed and unobserved runs")
	}
}

// TestMetricsEndpoint checks the exposition is well-formed and carries the
// tracker and registry families.
func TestMetricsEndpoint(t *testing.T) {
	tracker := NewRunTracker()
	h := tracker.Start("NOMAD/ts", NewManifest(observedConfig(), testSpec()))
	m, err := system.New(observedConfig(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	reg := m.Metrics()
	m.SetProgress(func(p system.Progress) { h.Observe(p, reg) })
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewServer(tracker).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if err := ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"nomad_runs_active", "nomad_runs_completed_total",
		`nomad_run_progress{run="NOMAD/ts",phase="roi"} 1`,
		`nomad_sim_counter_total{run="NOMAD/ts",metric="core.0.instructions"}`,
		"nomad_sim_histogram_bucket", `le="+Inf"`,
		"nomad_host_heap_inuse_bytes",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// After Finish the run's snapshot is released: the exposition stays
	// valid and the status line survives.
	h.Finish()
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid after finish: %v", err)
	}
	if !strings.Contains(string(body), "nomad_runs_completed_total 1") {
		t.Error("completed count not exported")
	}
}

// TestRunsEndpoint checks the /runs JSON shape, key suffixing, and the
// done flag.
func TestRunsEndpoint(t *testing.T) {
	tracker := NewRunTracker()
	man := NewManifest(testConfig(), testSpec())
	h1 := tracker.Start("a", man)
	h2 := tracker.Start("a", man) // duplicate key gets a suffix
	h1.Observe(system.Progress{Phase: "roi", Cycle: 500, Done: 50, Target: 100}, nil)
	h2.Finish()

	srv := httptest.NewServer(NewServer(tracker).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statuses []RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 2 {
		t.Fatalf("got %d statuses, want 2", len(statuses))
	}
	if statuses[0].Key != "a" || statuses[1].Key != "a#2" {
		t.Errorf("keys = %q, %q; want a, a#2", statuses[0].Key, statuses[1].Key)
	}
	if statuses[0].Phase != "roi" || statuses[0].Fraction != 0.5 || statuses[0].Cycle != 500 {
		t.Errorf("status[0] = %+v", statuses[0])
	}
	if statuses[0].Address != man.Address {
		t.Errorf("address %q, want %q", statuses[0].Address, man.Address)
	}
	if !statuses[1].Done || statuses[0].Done {
		t.Errorf("done flags = %v, %v", statuses[0].Done, statuses[1].Done)
	}
}

// TestTimelineSSE drives a handle manually and reads the event stream.
func TestTimelineSSE(t *testing.T) {
	tracker := NewRunTracker()
	h := tracker.Start("x", nil)
	reg := metrics.NewRegistry(0)
	n := 0.0
	reg.IntervalFunc("t.v", nil, func(uint64) float64 { n++; return n })
	reg.BeginTimeline(0, 100)
	reg.SampleInterval(100)
	h.Observe(system.Progress{Phase: "roi", Cycle: 100, Done: 1, Target: 4}, reg)

	srv := httptest.NewServer(NewServer(tracker).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/runs/x/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	rows := make(chan TimelineRow, 16)
	go func() {
		defer close(rows)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			data, ok := strings.CutPrefix(sc.Text(), "data: ")
			if !ok {
				continue
			}
			var row TimelineRow
			if json.Unmarshal([]byte(data), &row) == nil {
				rows <- row
			}
		}
	}()

	read := func() TimelineRow {
		select {
		case row, ok := <-rows:
			if !ok {
				t.Fatal("stream closed early")
			}
			return row
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for SSE row")
		}
		panic("unreachable")
	}
	if row := read(); row.Cycle != 100 || row.Values["t.v"] != 1 {
		t.Fatalf("history row = %+v", row)
	}
	// A later snapshot adds a live row. The second Observe must be outside
	// the throttle window, so force it by backdating the last snapshot.
	h.mu.Lock()
	h.lastSnap = h.lastSnap.Add(-2 * snapshotMinPeriod)
	h.mu.Unlock()
	reg.SampleInterval(200)
	h.Observe(system.Progress{Phase: "roi", Cycle: 200, Done: 2, Target: 4}, reg)
	if row := read(); row.Cycle != 200 || row.Values["t.v"] != 2 {
		t.Fatalf("live row = %+v", row)
	}
	h.Finish()
	if _, ok := <-rows; ok {
		// Draining: the stream must end after Finish.
		for range rows {
		}
	}

	// Unknown run: 404.
	resp2, err := http.Get(srv.URL + "/runs/nope/timeline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run status = %d, want 404", resp2.StatusCode)
	}
}

// TestNilSafety: a nil tracker and its nil handles are inert.
func TestNilSafety(t *testing.T) {
	var tr *RunTracker
	h := tr.Start("k", nil)
	if h != nil {
		t.Fatal("nil tracker returned non-nil handle")
	}
	h.Observe(system.Progress{Phase: "roi", Done: 1, Target: 2}, nil)
	h.Finish()
	if s := h.Status(); s.Key != "" {
		t.Errorf("nil handle status = %+v", s)
	}
	if got := tr.Statuses(); got != nil {
		t.Errorf("nil tracker statuses = %v", got)
	}
	if a, c := tr.Counts(); a != 0 || c != 0 {
		t.Errorf("nil tracker counts = %d, %d", a, c)
	}
	_, live, cancel := h.Subscribe()
	if _, ok := <-live; ok {
		t.Error("nil handle subscription not closed")
	}
	cancel()
}

// TestValidateExposition exercises the checker on handwritten documents.
func TestValidateExposition(t *testing.T) {
	good := `# HELP x_total Things.
# TYPE x_total counter
x_total 3
# HELP lat Latency.
# TYPE lat histogram
lat_bucket{le="1"} 2
lat_bucket{run="a/b",le="+Inf"} 4
lat_sum 9
lat_count 4
# HELP g A gauge.
# TYPE g gauge
g{name="hbm.gbs"} 1.5e+03
`
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("good document rejected: %v", err)
	}
	bad := []struct{ name, doc string }{
		{"garbage line", "# TYPE x gauge\nx 1\nnot a metric\n"},
		{"undeclared family", "y_total 3\n"},
		{"bad type", "# TYPE x banana\nx 1\n"},
		{"no samples", "# HELP x X.\n# TYPE x gauge\n"},
		{"unquoted label", "# TYPE x gauge\nx{a=b} 1\n"},
		{"empty document", ""},
		{"blank lines only", "\n\n\n"},
		{"duplicate TYPE", "# TYPE x gauge\nx 1\n# TYPE x gauge\nx 2\n"},
		{"duplicate TYPE different kind", "# TYPE x gauge\nx 1\n# TYPE x counter\nx 2\n"},
		{"histogram missing +Inf", "# TYPE lat histogram\nlat_bucket{le=\"1\"} 2\nlat_sum 9\nlat_count 4\n"},
	}
	for _, b := range bad {
		if err := ValidateExposition(strings.NewReader(b.doc)); err == nil {
			t.Errorf("%s: accepted", b.name)
		}
	}

	// A histogram family that emits no buckets at all (sum/count only) is
	// legal; the +Inf requirement applies only once buckets appear.
	noBuckets := "# TYPE lat histogram\nlat_sum 9\nlat_count 4\n"
	if err := ValidateExposition(strings.NewReader(noBuckets)); err != nil {
		t.Errorf("bucketless histogram rejected: %v", err)
	}
}

// digestRegistry builds a registry with an active digest chain and one
// sampled window ending at cycle 100.
func digestRegistry(t *testing.T) *metrics.Registry {
	t.Helper()
	reg := metrics.NewRegistry(0)
	reg.Counter("d.c")
	reg.BeginDigests(0, 100)
	reg.SampleInterval(100)
	return reg
}

// TestDigestsEndpoint checks /runs/{key}/digests serves the latest
// snapshot's chain and 404s when there is none.
func TestDigestsEndpoint(t *testing.T) {
	tracker := NewRunTracker()
	h := tracker.Start("x/y", nil)
	srv := httptest.NewServer(NewServer(tracker).Handler())
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	// Unknown run and no-snapshot-yet run both 404.
	if code, _ := get("/runs/nope/digests"); code != http.StatusNotFound {
		t.Errorf("unknown run status = %d, want 404", code)
	}
	if code, _ := get("/runs/x/y/digests"); code != http.StatusNotFound {
		t.Errorf("no-snapshot status = %d, want 404", code)
	}

	// A run publishing digest-less snapshots still 404s.
	plain := metrics.NewRegistry(0)
	plain.Counter("p.c")
	h.Observe(system.Progress{Phase: "roi", Cycle: 100, Done: 1, Target: 4}, plain)
	if code, _ := get("/runs/x/y/digests"); code != http.StatusNotFound {
		t.Errorf("digest-less snapshot status = %d, want 404", code)
	}

	// With digests enabled the chain comes back as JSON.
	h2 := tracker.Start("x/z", nil)
	h2.Observe(system.Progress{Phase: "roi", Cycle: 100, Done: 1, Target: 4}, digestRegistry(t))
	code, body := get("/runs/x/z/digests")
	if code != http.StatusOK {
		t.Fatalf("digests status = %d, want 200: %s", code, body)
	}
	var dc metrics.DigestChain
	if err := json.Unmarshal(body, &dc); err != nil {
		t.Fatalf("digests response not a chain: %v\n%s", err, body)
	}
	if dc.Windows() != 1 || dc.Interval != 100 || dc.Final() == "" {
		t.Errorf("chain = %+v", dc)
	}
}

// TestTimelineKeepalive shrinks the keepalive period and checks an idle
// stream carries ": keepalive" comment frames.
func TestTimelineKeepalive(t *testing.T) {
	saved := sseKeepalivePeriod
	sseKeepalivePeriod = 20 * time.Millisecond
	defer func() { sseKeepalivePeriod = saved }()

	tracker := NewRunTracker()
	h := tracker.Start("x", nil)
	defer h.Finish()
	srv := httptest.NewServer(NewServer(tracker).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/runs/x/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := make(chan string, 16)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before any keepalive")
			}
			if line == ": keepalive" {
				return
			}
		case <-deadline:
			t.Fatal("no keepalive frame within 5s")
		}
	}
}

// TestTimelineClientDisconnect checks a dropped client promptly detaches
// its subscription instead of leaking until the run finishes.
func TestTimelineClientDisconnect(t *testing.T) {
	tracker := NewRunTracker()
	h := tracker.Start("x", nil)
	defer h.Finish()
	srv := httptest.NewServer(NewServer(tracker).Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/runs/x/timeline", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	subs := func() int {
		h.mu.Lock()
		defer h.mu.Unlock()
		return len(h.subs)
	}
	waitFor := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for subs() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: %d subscriptions, want %d", what, subs(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(1, "after connect")
	cancel()
	waitFor(0, "after disconnect")
}
