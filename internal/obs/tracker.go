package obs

import (
	"fmt"
	"sync"
	"time"

	"nomad/internal/metrics"
	"nomad/internal/system"
)

// snapshotMinPeriod throttles live registry snapshots: progress callbacks
// fire every interval tick (often thousands per wall second) but the server
// only needs a fresh snapshot a couple of times per second, and each
// Snapshot() allocates.
const snapshotMinPeriod = 500 * time.Millisecond

// RunTracker is the registry of in-flight (and recently finished) runs an
// introspection server reads. A nil tracker is fully usable — every method,
// and every method of the nil handles it returns, is a no-op — so call sites
// wire observation unconditionally and pay nothing when -http is off.
//
// Publishing side (Start/Observe/Finish) is called from simulation worker
// goroutines; reading side (Statuses, exposition) from HTTP handlers. The
// tracker and each handle carry their own mutex; observation never blocks on
// a slow reader.
type RunTracker struct {
	mu   sync.Mutex
	runs map[string]*RunHandle
	// order lists currently retained keys in registration order; finished
	// lists completed keys oldest-first (the eviction queue).
	order    []string
	finished []string
	// active/completed are explicit counters: completed is cumulative and
	// survives eviction, active never depends on map size.
	active    uint64
	completed uint64
	retain    int
}

// DefaultCompletedRetention bounds how many completed runs a tracker keeps
// by default. Long-lived servers register a run per simulation forever; the
// status lines (and, between Observe throttles, registry snapshots) of
// ancient runs are pure leak, so only the most recent completions stay
// addressable.
const DefaultCompletedRetention = 64

// NewRunTracker returns an empty tracker retaining the last
// DefaultCompletedRetention completed runs.
func NewRunTracker() *RunTracker {
	return &RunTracker{runs: map[string]*RunHandle{}, retain: DefaultCompletedRetention}
}

// SetRetention bounds retained completed runs to the last k, evicting
// oldest-first immediately and on every later Finish. k < 0 disables
// eviction. Active runs are never evicted.
func (t *RunTracker) SetRetention(k int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retain = k
	t.evictLocked()
}

// evictLocked drops the oldest completed runs beyond the retention bound.
func (t *RunTracker) evictLocked() {
	if t.retain < 0 {
		return
	}
	for len(t.finished) > t.retain {
		key := t.finished[0]
		t.finished = t.finished[1:]
		delete(t.runs, key)
		for i, k := range t.order {
			if k == key {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
}

// Start registers a run and returns its handle. Keys repeat across batches
// (experiments reuse scheme/workload keys); repeats get a "#n" suffix so
// both stay addressable. Nil-safe: a nil tracker returns a nil handle.
func (t *RunTracker) Start(key string, man *Manifest) *RunHandle {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := key
	for n := 2; t.runs[key] != nil; n++ {
		key = fmt.Sprintf("%s#%d", base, n)
	}
	h := &RunHandle{t: t, key: key, man: man, started: time.Now()}
	t.runs[key] = h
	t.order = append(t.order, key)
	t.active++
	return h
}

// Handle returns the handle registered under key, or nil.
func (t *RunTracker) Handle(key string) *RunHandle {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.runs[key]
}

// Counts returns the number of active runs and the cumulative number of
// completed runs (including completed runs already evicted from Statuses).
func (t *RunTracker) Counts() (active, completed uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active, t.completed
}

// Statuses returns every tracked run's status in registration order.
func (t *RunTracker) Statuses() []RunStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	handles := make([]*RunHandle, 0, len(t.order))
	for _, k := range t.order {
		handles = append(handles, t.runs[k])
	}
	t.mu.Unlock()
	out := make([]RunStatus, len(handles))
	for i, h := range handles {
		out[i] = h.Status()
	}
	return out
}

// RunStatus is the serializable state of one tracked run (the /runs
// endpoint).
type RunStatus struct {
	Key string `json:"key"`
	// Address is the run's manifest content address.
	Address string `json:"address,omitempty"`
	Phase   string `json:"phase,omitempty"`
	// Fraction is the current phase's completion in [0,1].
	Fraction float64 `json:"fraction"`
	Cycle    uint64  `json:"cycle"`
	// CyclesPerSec is the simulated-cycle rate over the last snapshot
	// window (0 until two snapshots exist).
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	StartedUnix  int64   `json:"started_unix"`
	Done         bool    `json:"done"`
}

// TimelineRow is one interval window of a live run, streamed over SSE.
type TimelineRow struct {
	// Cycle is the window's end, relative to the ROI start.
	Cycle  uint64             `json:"cycle"`
	Values map[string]float64 `json:"values"`
}

// RunHandle publishes one run's progress to the tracker. The simulation's
// progress callback calls Observe synchronously on the sim goroutine; HTTP
// handlers read the published copies under the handle mutex. All methods
// are nil-safe.
type RunHandle struct {
	t       *RunTracker
	key     string
	man     *Manifest
	started time.Time

	mu       sync.Mutex
	phase    string
	frac     float64
	cycle    uint64
	lastSnap time.Time
	hasSnap  bool
	cps      float64
	snap     *metrics.Snapshot
	rows     []TimelineRow
	subs     []chan TimelineRow
	done     bool
}

// Key returns the (possibly suffixed) key the run is tracked under.
func (h *RunHandle) Key() string {
	if h == nil {
		return ""
	}
	return h.key
}

// Manifest returns the run's manifest.
func (h *RunHandle) Manifest() *Manifest {
	if h == nil {
		return nil
	}
	return h.man
}

// Observe publishes one progress tick. The cheap fields (phase, fraction,
// cycle) update every call; a full registry snapshot — the source for
// /metrics and timeline streaming — is taken at most once per
// snapshotMinPeriod. reg may be nil (progress only). Snapshot() only reads
// registry state, so observation cannot perturb the run.
func (h *RunHandle) Observe(p system.Progress, reg *metrics.Registry) {
	if h == nil {
		return
	}
	//nomadlint:ignore wallclock -- obs is host-side by charter; wall time never feeds simulation state
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.phase, h.frac, h.cycle = p.Phase, p.Fraction(), p.Cycle
	if reg == nil || (h.hasSnap && now.Sub(h.lastSnap) < snapshotMinPeriod) {
		return
	}
	if h.hasSnap {
		if dt := now.Sub(h.lastSnap).Seconds(); dt > 0 && h.snap != nil {
			prev := h.snap.Cycles
			cur := reg.Snapshot(p.Cycle)
			if cur.Cycles >= prev {
				h.cps = float64(cur.Cycles-prev) / dt
			}
			h.snap = cur
			h.lastSnap = now
			h.broadcastLocked()
			return
		}
	}
	h.snap = reg.Snapshot(p.Cycle)
	h.hasSnap = true
	h.lastSnap = now
	h.broadcastLocked()
}

// broadcastLocked forwards timeline rows the latest snapshot added beyond
// what was already streamed. Sends never block: a slow subscriber drops
// rows rather than stalling the simulation.
func (h *RunHandle) broadcastLocked() {
	tl := h.snap.Timeline
	if tl == nil {
		return
	}
	for i := len(h.rows); i < len(tl.Cycles); i++ {
		row := TimelineRow{Cycle: tl.Cycles[i], Values: make(map[string]float64, len(tl.Metrics))}
		for name, col := range tl.Metrics {
			if i < len(col) {
				row.Values[name] = col[i]
			}
		}
		h.rows = append(h.rows, row)
		for _, ch := range h.subs {
			select {
			case ch <- row:
			default:
			}
		}
	}
}

// Subscribe returns the rows streamed so far plus a channel of subsequent
// ones; the channel closes when the run finishes. cancel detaches early.
func (h *RunHandle) Subscribe() (history []TimelineRow, live <-chan TimelineRow, cancel func()) {
	if h == nil {
		ch := make(chan TimelineRow)
		close(ch)
		return nil, ch, func() {}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	history = append([]TimelineRow(nil), h.rows...)
	ch := make(chan TimelineRow, 64)
	if h.done {
		close(ch)
		return history, ch, func() {}
	}
	h.subs = append(h.subs, ch)
	return history, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		for i, c := range h.subs {
			if c == ch {
				h.subs = append(h.subs[:i], h.subs[i+1:]...)
				close(c)
				return
			}
		}
	}
}

// Status returns the run's serializable state.
func (h *RunHandle) Status() RunStatus {
	if h == nil {
		return RunStatus{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := RunStatus{
		Key: h.key, Phase: h.phase, Fraction: h.frac, Cycle: h.cycle,
		CyclesPerSec: h.cps, StartedUnix: h.started.Unix(), Done: h.done,
	}
	if h.man != nil {
		s.Address = h.man.Address
	}
	return s
}

// latest returns the last published snapshot (nil before the first tick or
// after Finish).
func (h *RunHandle) latest() *metrics.Snapshot {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snap
}

// Finish marks the run completed, closes subscriber streams, and releases
// the published snapshot (completed runs keep only their status line, and
// only the tracker's most recent completions stay retained at all). Call it
// whether the run succeeded or failed; repeated calls are no-ops.
func (h *RunHandle) Finish() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	for _, ch := range h.subs {
		close(ch)
	}
	h.subs = nil
	h.snap = nil
	h.rows = nil
	h.done = true
	h.mu.Unlock()
	t := h.t
	t.mu.Lock()
	t.active--
	t.completed++
	t.finished = append(t.finished, h.key)
	t.evictLocked()
	t.mu.Unlock()
}
