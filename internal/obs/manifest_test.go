package obs

import (
	"encoding/json"
	"regexp"
	"testing"

	"nomad/internal/sim"
	"nomad/internal/system"
	"nomad/internal/workload"
)

// testConfig is a fast two-core configuration for manifest/run tests.
func testConfig() system.Config {
	cfg := system.DefaultConfig()
	cfg.Cores = 2
	cfg.CacheFrames = 2048
	cfg.WarmupInstructions = 20_000
	cfg.ROIInstructions = 40_000
	cfg.MaxCycles = 80_000_000
	return cfg
}

func testSpec() workload.Spec {
	return workload.Spec{
		Name: "test-stream", Abbr: "ts", Class: "Excess",
		FootprintPages: 4096,
		RunBlocks:      64, SeqPageFrac: 0.9,
		GapMean: 8, WriteFrac: 0.25,
	}
}

// TestManifestStable is the content-address contract: the address is
// identical across repeated computations and across every host-only knob
// (engine, fast-forward, self-profiling, parallel workers) — backed by
// actually running the
// variants and checking their snapshots really are byte-identical — and
// differs as soon as a result-bearing knob changes.
func TestManifestStable(t *testing.T) {
	spec := testSpec()
	base := NewManifest(testConfig(), spec)
	if m := regexp.MustCompile(`^sha256:[0-9a-f]{64}$`); !m.MatchString(base.Address) {
		t.Fatalf("address %q does not match sha256:<hex64>", base.Address)
	}

	variants := []struct {
		name string
		cfg  system.Config
	}{
		{"repeat", testConfig()},
		{"heap engine", func() system.Config {
			c := testConfig()
			c.Engine = sim.KindHeap
			return c
		}()},
		{"no fast-forward", func() system.Config {
			c := testConfig()
			c.FastForward = false
			return c
		}()},
		{"self-profile", func() system.Config {
			c := testConfig()
			c.SelfProfile = true
			return c
		}()},
		{"parallel workers", func() system.Config {
			c := testConfig()
			c.Workers = 4
			return c
		}()},
	}
	var refSnap []byte
	for _, v := range variants {
		man := NewManifest(v.cfg, spec)
		if man.Address != base.Address {
			t.Errorf("%s: address %s, want %s", v.name, man.Address, base.Address)
		}
		m, err := system.New(v.cfg, spec)
		if err != nil {
			t.Fatalf("%s: New: %v", v.name, err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", v.name, err)
		}
		snap, err := json.Marshal(res.Metrics)
		if err != nil {
			t.Fatalf("%s: marshal: %v", v.name, err)
		}
		if refSnap == nil {
			refSnap = snap
		} else if string(snap) != string(refSnap) {
			t.Errorf("%s: snapshot differs from reference despite equal manifest address", v.name)
		}
	}

	diff := []struct {
		name string
		cfg  system.Config
		spec workload.Spec
	}{
		{"seed", func() system.Config { c := testConfig(); c.Seed = 99; return c }(), spec},
		{"scheme", func() system.Config { c := testConfig(); c.Scheme = system.SchemeTiD; return c }(), spec},
		{"roi", func() system.Config { c := testConfig(); c.ROIInstructions++; return c }(), spec},
		{"trace depth", func() system.Config { c := testConfig(); c.TraceDepth = 1024; return c }(), spec},
		{"workload", testConfig(), func() workload.Spec { s := spec; s.GapMean = 9; return s }()},
	}
	for _, d := range diff {
		if man := NewManifest(d.cfg, d.spec); man.Address == base.Address {
			t.Errorf("%s change did not change the address", d.name)
		}
	}
}

// TestManifestFields checks the convenience duplicates and the canonical
// document round-trip.
func TestManifestFields(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 7
	man := NewManifest(cfg, testSpec())
	if man.Scheme != string(cfg.Scheme) || man.Workload != "ts" || man.Seed != 7 {
		t.Errorf("fields = %s/%s/%d, want %s/ts/7", man.Scheme, man.Workload, man.Seed, cfg.Scheme)
	}
	var doc struct {
		Config system.Config `json:"config"`
	}
	if err := json.Unmarshal(man.Canonical(), &doc); err != nil {
		t.Fatalf("canonical does not parse: %v", err)
	}
	if doc.Config.Engine != "" || doc.Config.FastForward || doc.Config.SelfProfile {
		t.Errorf("canonical config retains host-only knobs: %+v", doc.Config)
	}
	if doc.Config.Seed != 7 {
		t.Errorf("canonical seed = %d, want 7", doc.Config.Seed)
	}
	var nilMan *Manifest
	if nilMan.Canonical() != nil {
		t.Error("nil manifest Canonical() should be nil")
	}
}
