//go:build !invariants

package check

// Enabled reports whether the invariants build tag is active. It is a
// constant so disabled assertion blocks are removed at compile time.
const Enabled = false

// Assert is a no-op without the invariants build tag.
func Assert(cond bool, format string, args ...any) {}
