//go:build invariants

package check

import (
	"strings"
	"testing"
)

func TestEnabled(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the invariants build tag")
	}
}

func TestAssertPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assert(false) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violated: bank 3 readyAt regressed") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	Assert(true, "must not fire")
	Assert(false, "bank %d readyAt regressed", 3)
}
