//go:build !invariants

package check

import "testing"

func TestDisabled(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the invariants build tag")
	}
	Assert(false, "must be a no-op without the tag")
}
