//go:build invariants

// Package check is the simulator's runtime-assertion layer: a uniform,
// build-tag-gated complement to the nomadlint static pass. Model components
// state their structural invariants (MSHR occupancy bounds, DRAM bank-state
// monotonicity, PCSHR lifecycle, osmem free-frame accounting) through
// Assert, and `go test -tags invariants ./...` exercises them on every
// simulated workload. Without the tag every call site compiles to nothing:
// guard each call with `if check.Enabled { ... }` so argument evaluation is
// eliminated too.
package check

import "fmt"

// Enabled reports whether the invariants build tag is active. It is a
// constant so disabled assertion blocks are removed at compile time.
const Enabled = true

// Assert panics with a formatted message when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
