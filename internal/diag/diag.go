// Package diag is the divergence-diagnosis and run-comparison layer: typed
// structural diffs of metrics snapshots, timelines, and interval digest
// chains, plus a first-divergence bisection driver (bisect.go) that turns
// "two runs differ" into "they first diverge in interval N; here are the
// metric deltas and event traces of that window".
//
// diag is host-side tooling by charter, like internal/obs: model packages
// must never import it (the nomadlint obsboundary rule enforces this), and
// nothing here feeds back into simulation state. Its inputs — snapshots,
// timelines, digest chains — are the deterministic captures the model
// already produces.
package diag

import (
	"fmt"
	"io"
	"math"
	"sort"

	"nomad/internal/metrics"
)

// MetricDelta is one differing metric between two runs, in whatever float
// encoding the metric natively has (counters and histogram counts/sums are
// exact integers below 2^53).
type MetricDelta struct {
	Name string `json:"name"`
	// A and B are the two runs' values.
	A float64 `json:"a"`
	B float64 `json:"b"`
	// Delta is B - A.
	Delta float64 `json:"delta"`
	// Rel is |Delta| / max(|A|, |B|) — the relative magnitude the ranking
	// sorts by. It is 1 for a metric that is zero on one side.
	Rel float64 `json:"rel"`
}

func (d MetricDelta) String() string {
	return fmt.Sprintf("%-40s %14.6g -> %-14.6g  (delta %+.6g, %.1f%%)",
		d.Name, d.A, d.B, d.Delta, 100*d.Rel)
}

// RankDeltas compares two name→value maps. Metrics with equal values are
// dropped; differing ones are returned ranked by Rel descending (ties by
// name, so the order is deterministic). Names present in only one map are
// returned separately: added (B only) and removed (A only), sorted.
func RankDeltas(a, b map[string]float64) (deltas []MetricDelta, added, removed []string) {
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			removed = append(removed, name)
			continue
		}
		if av == bv {
			continue
		}
		d := MetricDelta{Name: name, A: av, B: bv, Delta: bv - av}
		if m := math.Max(math.Abs(av), math.Abs(bv)); m > 0 {
			d.Rel = math.Abs(d.Delta) / m
		}
		deltas = append(deltas, d)
	}
	for name := range b {
		if _, ok := a[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Rel != deltas[j].Rel {
			return deltas[i].Rel > deltas[j].Rel
		}
		return deltas[i].Name < deltas[j].Name
	})
	return deltas, added, removed
}

// DigestDiff localizes where two digest chains part ways.
type DigestDiff struct {
	WindowsA int `json:"windows_a"`
	WindowsB int `json:"windows_b"`
	// FirstDivergent is the first window index whose digests (or end
	// cycles) differ, the shorter length when one chain is a strict prefix
	// of the other, or -1 for identical chains.
	FirstDivergent int `json:"first_divergent"`
	// WindowStart/WindowEnd bound the first divergent window in
	// ROI-relative cycles (valid when FirstDivergent >= 0 and the window
	// exists in at least one chain; WindowEnd comes from whichever chain
	// has the window).
	WindowStart uint64 `json:"window_start,omitempty"`
	WindowEnd   uint64 `json:"window_end,omitempty"`
	// DigestA/DigestB are the digests at the divergent window ("" when the
	// chain is too short to have it).
	DigestA string `json:"digest_a,omitempty"`
	DigestB string `json:"digest_b,omitempty"`
}

// Identical reports whether the chains agree completely.
func (d *DigestDiff) Identical() bool { return d == nil || d.FirstDivergent < 0 }

// DiffDigests compares two digest chains. Nil chains are treated as empty;
// two nil/empty chains are identical.
func DiffDigests(a, b *metrics.DigestChain) *DigestDiff {
	d := &DigestDiff{
		WindowsA:       a.Windows(),
		WindowsB:       b.Windows(),
		FirstDivergent: a.FirstDivergence(b),
	}
	if i := d.FirstDivergent; i >= 0 {
		ref := a
		if i >= a.Windows() {
			ref = b
		}
		if i < ref.Windows() {
			d.WindowEnd = ref.Cycles[i]
			if i > 0 {
				d.WindowStart = ref.Cycles[i-1]
			}
		}
		if i < a.Windows() {
			d.DigestA = a.Digests[i]
		}
		if i < b.Windows() {
			d.DigestB = b.Digests[i]
		}
	}
	return d
}

// TimelineDiff localizes where two interval timelines part ways and ranks
// the columns that differ in the first divergent window.
type TimelineDiff struct {
	WindowsA int `json:"windows_a"`
	WindowsB int `json:"windows_b"`
	// Added/Removed are column names present in only one timeline.
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
	// FirstDivergent is the earliest window where any shared column (or
	// the window's end cycle) differs, the shorter window count when one
	// timeline is a strict prefix of the other, or -1 when the shared
	// columns agree everywhere.
	FirstDivergent int `json:"first_divergent"`
	// CycleEnd is the divergent window's end in ROI-relative cycles.
	CycleEnd uint64 `json:"cycle_end,omitempty"`
	// Columns ranks the shared columns that differ in the divergent
	// window by relative delta.
	Columns []MetricDelta `json:"columns,omitempty"`
}

// Identical reports whether the timelines agree completely (same columns,
// same windows, same values).
func (t *TimelineDiff) Identical() bool {
	return t == nil || (t.FirstDivergent < 0 && len(t.Added) == 0 && len(t.Removed) == 0)
}

// DiffTimelines compares two interval timelines window by window. Nil
// timelines are treated as empty.
func DiffTimelines(a, b *metrics.TimelineSnapshot) *TimelineDiff {
	t := &TimelineDiff{WindowsA: a.Windows(), WindowsB: b.Windows(), FirstDivergent: -1}
	var shared []string
	seen := map[string]bool{}
	if a != nil {
		for name := range a.Metrics {
			seen[name] = true
			if b.Metric(name) != nil {
				shared = append(shared, name)
			} else {
				t.Removed = append(t.Removed, name)
			}
		}
	}
	if b != nil {
		for name := range b.Metrics {
			if !seen[name] {
				t.Added = append(t.Added, name)
			}
		}
	}
	sort.Strings(shared)
	sort.Strings(t.Added)
	sort.Strings(t.Removed)

	n := t.WindowsA
	if t.WindowsB < n {
		n = t.WindowsB
	}
	for i := 0; i < n; i++ {
		diverged := a.Cycles[i] != b.Cycles[i]
		if !diverged {
			for _, name := range shared {
				if a.Metrics[name][i] != b.Metrics[name][i] {
					diverged = true
					break
				}
			}
		}
		if !diverged {
			continue
		}
		t.FirstDivergent = i
		t.CycleEnd = a.Cycles[i]
		av := make(map[string]float64, len(shared))
		bv := make(map[string]float64, len(shared))
		for _, name := range shared {
			av[name] = a.Metrics[name][i]
			bv[name] = b.Metrics[name][i]
		}
		t.Columns, _, _ = RankDeltas(av, bv)
		return t
	}
	if t.WindowsA != t.WindowsB {
		t.FirstDivergent = n
		if n < t.WindowsA {
			t.CycleEnd = a.Cycles[n]
		} else if n < t.WindowsB {
			t.CycleEnd = b.Cycles[n]
		}
	}
	return t
}

// SnapshotDiff is the structural comparison of two full metrics snapshots:
// scalar metric deltas ranked by relative magnitude, names present in only
// one run, and — when the snapshots carry them — the digest-chain and
// timeline localizations.
type SnapshotDiff struct {
	CyclesA uint64 `json:"cycles_a"`
	CyclesB uint64 `json:"cycles_b"`
	// Added/Removed are metric names present in only one snapshot (B only
	// / A only).
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
	// Deltas ranks the differing shared metrics by relative magnitude.
	// Counters map through unchanged; gauges keep their name; histograms
	// contribute "<name>:count" and "<name>:sum".
	Deltas []MetricDelta `json:"deltas,omitempty"`
	// Digests localizes the divergence when both snapshots carry digest
	// chains (nil when neither does).
	Digests *DigestDiff `json:"digests,omitempty"`
	// Timeline localizes the divergence when both snapshots carry interval
	// timelines (nil when neither does).
	Timeline *TimelineDiff `json:"timeline,omitempty"`
}

// Identical reports whether the two snapshots are behaviorally identical:
// equal ROI spans, no metric deltas, no added/removed names, and agreeing
// digest chains/timelines where present.
func (d *SnapshotDiff) Identical() bool {
	return d.CyclesA == d.CyclesB && len(d.Deltas) == 0 &&
		len(d.Added) == 0 && len(d.Removed) == 0 &&
		d.Digests.Identical() && d.Timeline.Identical()
}

// FirstDivergentInterval returns the earliest interval window the diff can
// pin the divergence to — the digest chain's localization when available,
// the timeline's otherwise — or -1 when neither capture is present or
// neither diverges.
func (d *SnapshotDiff) FirstDivergentInterval() int {
	if d.Digests != nil && d.Digests.FirstDivergent >= 0 {
		return d.Digests.FirstDivergent
	}
	if d.Timeline != nil && d.Timeline.FirstDivergent >= 0 {
		return d.Timeline.FirstDivergent
	}
	return -1
}

// flatten maps a snapshot's scalar metrics into one namespace: counters and
// gauges under their registry names, histograms as "<name>:count" and
// "<name>:sum". Gauge/counter namespaces never collide (the registry claims
// names once), and ":" cannot appear in a registered name.
func flatten(s *metrics.Snapshot) map[string]float64 {
	if s == nil {
		return nil
	}
	out := make(map[string]float64, len(s.Counters)+len(s.Gauges)+2*len(s.Histograms))
	for name, v := range s.Counters {
		out[name] = float64(v)
	}
	for name, v := range s.Gauges {
		out[name] = v
	}
	for name, h := range s.Histograms {
		out[name+":count"] = float64(h.Count)
		out[name+":sum"] = float64(h.Sum)
	}
	return out
}

// DiffSnapshots structurally compares two snapshots: ranked scalar deltas,
// added/removed names, and digest/timeline localization when both sides
// carry those captures.
func DiffSnapshots(a, b *metrics.Snapshot) *SnapshotDiff {
	d := &SnapshotDiff{}
	if a != nil {
		d.CyclesA = a.Cycles
	}
	if b != nil {
		d.CyclesB = b.Cycles
	}
	d.Deltas, d.Added, d.Removed = RankDeltas(flatten(a), flatten(b))
	if (a != nil && a.Digests != nil) || (b != nil && b.Digests != nil) {
		var da, db *metrics.DigestChain
		if a != nil {
			da = a.Digests
		}
		if b != nil {
			db = b.Digests
		}
		d.Digests = DiffDigests(da, db)
	}
	if (a != nil && a.Timeline != nil) || (b != nil && b.Timeline != nil) {
		var ta, tb *metrics.TimelineSnapshot
		if a != nil {
			ta = a.Timeline
		}
		if b != nil {
			tb = b.Timeline
		}
		d.Timeline = DiffTimelines(ta, tb)
	}
	return d
}

// WriteText renders the diff human-readably: localization first, then names
// present on only one side, then the top topK metric deltas (0 = 10).
func (d *SnapshotDiff) WriteText(w io.Writer, topK int) error {
	if topK <= 0 {
		topK = 10
	}
	if d.Identical() {
		_, err := fmt.Fprintln(w, "snapshots are identical")
		return err
	}
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if d.CyclesA != d.CyclesB {
		p("ROI cycles            %d -> %d (%+d)\n", d.CyclesA, d.CyclesB, int64(d.CyclesB)-int64(d.CyclesA))
	}
	if dd := d.Digests; dd != nil && dd.FirstDivergent >= 0 {
		p("first divergent interval  %d (window %d..%d cycles, digest %s vs %s)\n",
			dd.FirstDivergent, dd.WindowStart, dd.WindowEnd, orNone(dd.DigestA), orNone(dd.DigestB))
	} else if td := d.Timeline; td != nil && td.FirstDivergent >= 0 {
		p("first divergent interval  %d (timeline window ending at %d cycles)\n",
			td.FirstDivergent, td.CycleEnd)
	}
	if len(d.Added) > 0 {
		p("added metrics (%d):   %s\n", len(d.Added), joinMax(d.Added, 8))
	}
	if len(d.Removed) > 0 {
		p("removed metrics (%d): %s\n", len(d.Removed), joinMax(d.Removed, 8))
	}
	if len(d.Deltas) > 0 {
		n := topK
		if n > len(d.Deltas) {
			n = len(d.Deltas)
		}
		p("top metric deltas (%d of %d differing):\n", n, len(d.Deltas))
		for _, md := range d.Deltas[:n] {
			p("  %s\n", md)
		}
	}
	if td := d.Timeline; td != nil && td.FirstDivergent >= 0 && len(td.Columns) > 0 {
		n := topK
		if n > len(td.Columns) {
			n = len(td.Columns)
		}
		p("timeline columns diverging in window %d (%d of %d):\n", td.FirstDivergent, n, len(td.Columns))
		for _, md := range td.Columns[:n] {
			p("  %s\n", md)
		}
	}
	return err
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

// joinMax joins up to max names, eliding the rest with a count.
func joinMax(names []string, max int) string {
	if len(names) <= max {
		out := ""
		for i, n := range names {
			if i > 0 {
				out += ", "
			}
			out += n
		}
		return out
	}
	return joinMax(names[:max], max) + fmt.Sprintf(", ... (%d more)", len(names)-max)
}
