// First-divergence bisection: given two run configurations whose results
// differ, localize the earliest interval window where their metric state
// parts ways and re-capture exactly that prefix with full event tracing.
//
// The digest chain makes this a two-pass algorithm rather than a log(N)
// search: pass 1 runs both configs once with digests on and compares the
// chains, which pins the first divergent window directly; pass 2 re-runs
// both configs with ROICycleLimit set to that window's end and trace capture
// forced on, so the emitted Perfetto traces cover the whole prefix up to and
// including the first divergent interval. Determinism makes the replay
// sound: the partial re-run is a cycle-exact prefix of the full run.
package diag

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"

	"nomad/internal/harness"
	"nomad/internal/metrics"
	"nomad/internal/system"
	"nomad/internal/workload"
)

// Default trace depths for the bisection replay, matching the CLIs' -trace
// capture depths: deep enough that one interval window fits without the
// event ring wrapping.
const (
	DefaultTraceDepth = 1 << 16
	DefaultSpanDepth  = 1 << 15
)

// RunSpec names one side of a bisection: a config and workload to execute.
type RunSpec struct {
	// Key labels the run in the report and trace names (e.g. "TDC/cact/1").
	Key  string
	Cfg  system.Config
	Spec workload.Spec
}

// Options tunes Bisect.
type Options struct {
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS); each pass
	// runs its two simulations through the harness pool.
	Parallelism int
	// TraceDepth/SpanDepth size the event and span rings of the replay pass
	// (0 = DefaultTraceDepth/DefaultSpanDepth).
	TraceDepth int
	SpanDepth  int
	// Logger receives host-side progress (pass boundaries, localization);
	// nil discards it.
	Logger *slog.Logger
}

func (o Options) traceDepth() int {
	if o.TraceDepth > 0 {
		return o.TraceDepth
	}
	return DefaultTraceDepth
}

func (o Options) spanDepth() int {
	if o.SpanDepth > 0 {
		return o.SpanDepth
	}
	return DefaultSpanDepth
}

// Report is the outcome of a bisection.
type Report struct {
	KeyA string `json:"key_a"`
	KeyB string `json:"key_b"`
	// Identical is true when the full runs' digest chains agree completely;
	// the replay pass is skipped and only Full is populated.
	Identical bool `json:"identical"`
	// Full diffs the two complete runs (always populated).
	Full *SnapshotDiff `json:"full"`
	// Digests localizes the first divergent window (nil only when digest
	// capture produced no chains at all).
	Digests *DigestDiff `json:"digests,omitempty"`
	// WindowDeltas ranks the timeline columns that differ in the first
	// divergent window.
	WindowDeltas []MetricDelta `json:"window_deltas,omitempty"`
	// Cutoff diffs the two partial re-runs that stop at the divergent
	// window's end — the metric-level state of the divergence itself,
	// uncontaminated by everything that happened after.
	Cutoff *SnapshotDiff `json:"cutoff,omitempty"`
	// TraceA/TraceB are Perfetto trace files (JSON bytes) covering each
	// run's prefix up to the divergent window's end.
	TraceA []byte `json:"-"`
	TraceB []byte `json:"-"`
}

// execPair runs the two specs through the harness pool and returns their
// results. Keys are prefixed so identical spec keys (same config diffed
// against itself, or A/B differing only in Config fields outside the key)
// cannot collide in the harness results map.
func execPair(ctx context.Context, a, b RunSpec, opts Options) (ra, rb *harness.RunResult, err error) {
	hopts := harness.Options{Parallelism: opts.Parallelism, Logger: opts.Logger}
	runs := []harness.Run{
		{Key: "A/" + a.Key, Cfg: a.Cfg, Spec: a.Spec},
		{Key: "B/" + b.Key, Cfg: b.Cfg, Spec: b.Spec},
	}
	results, err := harness.Execute(ctx, hopts, runs)
	if err != nil {
		return nil, nil, err
	}
	ra, rb = results["A/"+a.Key], results["B/"+b.Key]
	if ra == nil || rb == nil {
		return nil, nil, fmt.Errorf("diag: bisection pair did not complete (A=%v B=%v)", ra != nil, rb != nil)
	}
	return ra, rb, nil
}

// windowDeltas ranks the shared timeline columns of window i.
func windowDeltas(a, b *metrics.TimelineSnapshot, i int) []MetricDelta {
	if i < 0 || i >= a.Windows() || i >= b.Windows() {
		return nil
	}
	av := map[string]float64{}
	bv := map[string]float64{}
	for name, col := range a.Metrics {
		if b.Metric(name) != nil {
			av[name] = col[i]
			bv[name] = b.Metrics[name][i]
		}
	}
	deltas, _, _ := RankDeltas(av, bv)
	return deltas
}

// perfetto renders one run's trace dump as Perfetto JSON bytes.
func perfetto(name string, r *harness.RunResult) ([]byte, error) {
	if r.Trace == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := metrics.WritePerfetto(&buf, metrics.PerfettoRun{Name: name, Dump: r.Trace}); err != nil {
		return nil, fmt.Errorf("diag: perfetto export for %s: %w", name, err)
	}
	return buf.Bytes(), nil
}

// Bisect localizes the first divergent interval between two runs.
//
// Pass 1 executes both specs in full with digest chains and timelines forced
// on and diffs the results. If the digest chains agree the report says so
// and stops. Otherwise pass 2 re-executes both specs with ROICycleLimit set
// to the first divergent window's end cycle and event/span tracing forced
// on, attaching per-run Perfetto traces of that prefix plus the ranked
// timeline deltas of the divergent window and a snapshot diff at the cutoff.
//
// Both passes honor ctx; cancellation surfaces as the harness's context
// error.
func Bisect(ctx context.Context, a, b RunSpec, opts Options) (*Report, error) {
	rep := &Report{KeyA: a.Key, KeyB: b.Key}

	// Pass 1: full runs with the localization captures on.
	fa, fb := a, b
	fa.Cfg.Digests, fa.Cfg.Timeline = true, true
	fb.Cfg.Digests, fb.Cfg.Timeline = true, true
	if opts.Logger != nil {
		opts.Logger.Info("bisect pass 1: full runs with digest chains", "a", a.Key, "b", b.Key)
	}
	ra, rb, err := execPair(ctx, fa, fb, opts)
	if err != nil {
		return nil, err
	}
	rep.Full = DiffSnapshots(ra.Metrics, rb.Metrics)
	rep.Digests = rep.Full.Digests
	if rep.Digests.Identical() {
		rep.Identical = true
		if opts.Logger != nil {
			opts.Logger.Info("bisect: digest chains identical", "windows", rep.Digests.WindowsA)
		}
		return rep, nil
	}
	i := rep.Digests.FirstDivergent
	rep.WindowDeltas = windowDeltas(ra.Metrics.Timeline, rb.Metrics.Timeline, i)

	// The divergent window's end in ROI-relative cycles, from whichever
	// chain reaches it. A zero end (divergence at a zero-length chain)
	// leaves nothing to replay.
	stop := rep.Digests.WindowEnd
	if stop == 0 {
		return rep, nil
	}

	// Pass 2: replay just the prefix, tracing everything.
	pa, pb := fa, fb
	for _, cfg := range []*system.Config{&pa.Cfg, &pb.Cfg} {
		cfg.ROICycleLimit = stop
		cfg.TraceDepth = opts.traceDepth()
		cfg.SpanDepth = opts.spanDepth()
	}
	if opts.Logger != nil {
		opts.Logger.Info("bisect pass 2: traced replay of divergent prefix",
			"window", i, "window_start", rep.Digests.WindowStart, "window_end", stop)
	}
	ca, cb, err := execPair(ctx, pa, pb, opts)
	if err != nil {
		return nil, err
	}
	rep.Cutoff = DiffSnapshots(ca.Metrics, cb.Metrics)
	if rep.TraceA, err = perfetto("A/"+a.Key, ca); err != nil {
		return nil, err
	}
	if rep.TraceB, err = perfetto("B/"+b.Key, cb); err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteText renders the bisection report human-readably. topK bounds the
// delta tables (0 = 10).
func (r *Report) WriteText(w io.Writer, topK int) error {
	if topK <= 0 {
		topK = 10
	}
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("bisect %s vs %s\n", r.KeyA, r.KeyB)
	if r.Identical {
		p("digest chains identical (%d windows): runs are behaviorally identical\n", r.Digests.WindowsA)
		return err
	}
	if d := r.Digests; d != nil {
		p("first divergent interval  %d (window %d..%d cycles)\n", d.FirstDivergent, d.WindowStart, d.WindowEnd)
		p("  digest %s vs %s\n", orNone(d.DigestA), orNone(d.DigestB))
	}
	if len(r.WindowDeltas) > 0 {
		n := topK
		if n > len(r.WindowDeltas) {
			n = len(r.WindowDeltas)
		}
		p("timeline deltas in the divergent window (%d of %d):\n", n, len(r.WindowDeltas))
		for _, md := range r.WindowDeltas[:n] {
			p("  %s\n", md)
		}
	}
	if r.Cutoff != nil {
		p("snapshot diff at cutoff (cycle %d):\n", r.Digests.WindowEnd)
		if err == nil {
			err = r.Cutoff.WriteText(w, topK)
		}
	}
	return err
}
