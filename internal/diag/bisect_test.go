package diag

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"nomad/internal/system"
	"nomad/internal/workload"
)

// testSpec is a small workload that fits the shrunken test config.
func testSpec() workload.Spec {
	return workload.Spec{
		Name: "test-stream", Abbr: "ts", Class: "Excess",
		FootprintPages: 4096,
		RunBlocks:      64, SeqPageFrac: 0.9,
		GapMean: 8, WriteFrac: 0.25,
	}
}

func testSpecRun(seed uint64) RunSpec {
	cfg := system.DefaultConfig()
	cfg.Cores = 2
	cfg.Scheme = system.SchemeTDC
	cfg.CacheFrames = 2048
	cfg.WarmupInstructions = 60_000
	cfg.ROIInstructions = 120_000
	cfg.Interval = 20_000
	cfg.Seed = seed
	return RunSpec{Key: "TDC/ts/" + string(rune('0'+seed)), Cfg: cfg, Spec: testSpec()}
}

// TestBisectLocalizesDivergence is the end-to-end contract: two
// different-seed TDC runs diverge; Bisect must localize the first divergent
// interval, produce window deltas and a cutoff diff, and emit two non-empty
// Perfetto traces of the prefix.
func TestBisectLocalizesDivergence(t *testing.T) {
	rep, err := Bisect(context.Background(), testSpecRun(1), testSpecRun(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical {
		t.Fatal("different seeds reported identical")
	}
	d := rep.Digests
	if d == nil || d.FirstDivergent < 0 {
		t.Fatalf("no divergent interval localized: %+v", d)
	}
	if d.WindowEnd == 0 || d.WindowEnd <= d.WindowStart {
		t.Errorf("window bounds = %d..%d", d.WindowStart, d.WindowEnd)
	}
	if len(rep.WindowDeltas) == 0 {
		t.Error("no timeline deltas for the divergent window")
	}
	if rep.Cutoff == nil {
		t.Fatal("no cutoff diff from the replay pass")
	}
	// The replay stops at the divergent window's end on both sides; the
	// cutoff diff must reflect that exact span.
	if rep.Cutoff.CyclesA != d.WindowEnd || rep.Cutoff.CyclesB != d.WindowEnd {
		t.Errorf("cutoff spans = %d/%d, want both exactly %d",
			rep.Cutoff.CyclesA, rep.Cutoff.CyclesB, d.WindowEnd)
	}
	for name, tr := range map[string][]byte{"A": rep.TraceA, "B": rep.TraceB} {
		if len(tr) == 0 {
			t.Errorf("trace %s is empty", name)
			continue
		}
		if !bytes.Contains(tr, []byte("traceEvents")) {
			t.Errorf("trace %s is not a Perfetto document", name)
		}
	}

	var sb strings.Builder
	if err := rep.WriteText(&sb, 5); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "first divergent interval") {
		t.Errorf("rendering missing localization:\n%s", out)
	}
}

// TestBisectIdentical: the same spec against itself short-circuits after
// pass 1 with no replay artifacts.
func TestBisectIdentical(t *testing.T) {
	rep, err := Bisect(context.Background(), testSpecRun(1), testSpecRun(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Fatalf("same spec reported divergent: %+v", rep.Digests)
	}
	if !rep.Full.Identical() {
		t.Error("full diff not identical")
	}
	if rep.Cutoff != nil || rep.TraceA != nil || rep.TraceB != nil {
		t.Error("replay artifacts present for identical runs")
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "identical") {
		t.Errorf("rendering: %s", sb.String())
	}
}
